// Live migration of accelerator state (§4.3): a guest runs an iterative
// kernel workload; halfway through, the VM is suspended, its accelerator
// state (record/replay log + device buffers) is captured, serialized, and
// restored into a fresh API-server session on a "destination host"; the
// guest then finishes the workload there. The final result is identical to
// an unmigrated run, and the guest's handles survive verbatim.
//
//   $ ./build/examples/live_migration
#include <cstdio>
#include <memory>
#include <vector>

#include "src/gen/vcl_hooks.h"
#include "src/migrate/recorder.h"
#include "src/migrate/snapshot.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "vcl_gen.h"

namespace {

constexpr const char* kStepSrc = R"(
__kernel void step(__global float* d, int n) {
  int i = get_global_id(0);
  if (i < n) { d[i] = d[i] * 1.5f + 1.0f; }
}
)";

constexpr int kN = 1 << 16;
constexpr int kTotalSteps = 10;

}  // namespace

int main() {
  // ---- source host ----
  ava::Router source_router;
  auto channel = ava::MakeInProcChannel();
  auto source = std::make_shared<ava::ApiServerSession>(/*vm_id=*/1);
  source->RegisterApi(ava_gen_vcl::kApiId, ava_gen_vcl::MakeVclApiHandler());
  ava::Recorder recorder;
  source->SetRecordSink(&recorder);
  source_router.AttachVm(1, std::move(channel.host), source);
  source_router.Start();

  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(channel.guest), opts);
  auto api = ava_gen_vcl::MakeVclGuestApi(endpoint);

  // Guest sets up state and runs the first half of its workload.
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  std::vector<float> init(kN, 1.0f);
  vcl_mem buf = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, kN * 4,
                                    init.data(), &err);
  vcl_program prog = api.vclCreateProgramWithSource(ctx, kStepSrc, &err);
  api.vclBuildProgram(prog, nullptr);
  vcl_kernel kernel = api.vclCreateKernel(prog, "step", &err);
  int n = kN;
  api.vclSetKernelArgBuffer(kernel, 0, buf);
  api.vclSetKernelArgScalar(kernel, 1, sizeof(int), &n);
  size_t global = kN;
  for (int step = 0; step < kTotalSteps / 2; ++step) {
    api.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr,
                                0, nullptr, nullptr);
  }
  api.vclFinish(queue);
  std::printf("[source] ran %d/%d steps; %zu live objects, %zu recorded "
              "calls\n",
              kTotalSteps / 2, kTotalSteps, source->registry().LiveCount(),
              recorder.LiveCount());

  // ---- migrate ----
  ava::MigrationEngine engine(ava_gen_vcl::MakeVclBufferHooks());
  ava::MigrationTimings timings;
  auto snapshot =
      engine.Capture(&source_router, source.get(), recorder, &timings);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "capture failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  ava::Bytes wire = snapshot->Serialize();
  std::printf("[migrate] suspended; snapshot = %.1f KiB (%zu calls, %zu "
              "buffers) in %.2f ms\n",
              static_cast<double>(wire.size()) / 1024.0,
              snapshot->calls.size(), snapshot->buffers.size(),
              (timings.suspend_ns + timings.snapshot_ns) / 1e6);

  // ---- destination host ----
  auto arrived = ava::VmSnapshot::Deserialize(wire);
  auto target = std::make_shared<ava::ApiServerSession>(/*vm_id=*/1);
  target->RegisterApi(ava_gen_vcl::kApiId, ava_gen_vcl::MakeVclApiHandler());
  if (!engine.Restore(*arrived, target.get(), &timings).ok()) {
    std::fprintf(stderr, "restore failed\n");
    return 1;
  }
  std::printf("[destination] replayed %zu calls in %.2f ms, restored buffers "
              "in %.2f ms\n",
              arrived->calls.size(), timings.replay_ns / 1e6,
              timings.restore_buffers_ns / 1e6);

  ava::Router dest_router;
  auto channel2 = ava::MakeInProcChannel();
  dest_router.AttachVm(1, std::move(channel2.host), target);
  dest_router.Start();
  opts.vm_id = 1;
  auto endpoint2 =
      std::make_shared<ava::GuestEndpoint>(std::move(channel2.guest), opts);
  auto api2 = ava_gen_vcl::MakeVclGuestApi(endpoint2);

  // The guest resumes with the SAME handles it held before migration.
  for (int step = kTotalSteps / 2; step < kTotalSteps; ++step) {
    api2.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr,
                                 0, nullptr, nullptr);
  }
  std::vector<float> result(kN, 0.0f);
  api2.vclEnqueueReadBuffer(queue, buf, VCL_TRUE, 0, kN * 4, result.data(), 0,
                            nullptr, nullptr);

  // Reference: the unmigrated computation.
  float want = 1.0f;
  for (int step = 0; step < kTotalSteps; ++step) {
    want = want * 1.5f + 1.0f;
  }
  bool ok = true;
  for (int i = 0; i < kN; ++i) {
    ok = ok && result[i] == want;
  }
  std::printf("[destination] finished %d/%d steps: result %s (expected "
              "%.4f, got %.4f)\n",
              kTotalSteps, kTotalSteps,
              ok ? "IDENTICAL to unmigrated run" : "MISMATCH", want,
              result[0]);

  endpoint2.reset();
  dest_router.Stop();
  endpoint.reset();
  source_router.Stop();
  return ok ? 0 : 1;
}
