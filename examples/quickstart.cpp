// Quickstart: the whole AvA stack in one file.
//
// An application written against the virtual VCL API runs unchanged in two
// worlds: bound to the vendor silo (native) or bound to the CAvA-generated
// guest library that forwards every call through the hypervisor router to
// the API server (virtualized). This example runs a vector-add both ways
// and shows the router's accounting of the virtualized run.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "vcl_gen.h"

namespace {

constexpr const char* kVaddSrc = R"(
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, int n) {
  int i = get_global_id(0);
  if (i < n) { c[i] = a[i] + b[i]; }
}
)";

// Ordinary accelerator application code: it neither knows nor cares whether
// `api` is the vendor library or the generated remoting stub.
bool RunVectorAdd(const ava_gen_vcl::VclApi& api, int n) {
  std::vector<float> a(n), b(n), c(n);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(2 * i);
  }
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  char name[64] = {0};
  api.vclGetDeviceInfo(device, VCL_DEVICE_NAME, sizeof(name), name, nullptr);
  std::printf("  device: %s\n", name);

  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  vcl_mem da = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, n * 4,
                                   a.data(), &err);
  vcl_mem db = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, n * 4,
                                   b.data(), &err);
  vcl_mem dc = api.vclCreateBuffer(ctx, VCL_MEM_READ_WRITE, n * 4, nullptr,
                                   &err);
  vcl_program prog = api.vclCreateProgramWithSource(ctx, kVaddSrc, &err);
  api.vclBuildProgram(prog, nullptr);
  vcl_kernel kernel = api.vclCreateKernel(prog, "vadd", &err);
  api.vclSetKernelArgBuffer(kernel, 0, da);
  api.vclSetKernelArgBuffer(kernel, 1, db);
  api.vclSetKernelArgBuffer(kernel, 2, dc);
  api.vclSetKernelArgScalar(kernel, 3, sizeof(int), &n);
  size_t global = static_cast<size_t>(n);
  api.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr, 0,
                              nullptr, nullptr);
  api.vclEnqueueReadBuffer(queue, dc, VCL_TRUE, 0, n * 4, c.data(), 0,
                           nullptr, nullptr);
  bool ok = true;
  for (int i = 0; i < n; ++i) {
    ok = ok && c[i] == 3.0f * i;
  }
  api.vclReleaseKernel(kernel);
  api.vclReleaseProgram(prog);
  api.vclReleaseMemObject(da);
  api.vclReleaseMemObject(db);
  api.vclReleaseMemObject(dc);
  api.vclReleaseCommandQueue(queue);
  api.vclReleaseContext(ctx);
  return ok;
}

}  // namespace

int main() {
  std::printf("== native: API table bound to the vendor silo ==\n");
  bool native_ok = RunVectorAdd(ava_gen_vcl::MakeVclNativeApi(), 1 << 16);
  std::printf("  vector add: %s\n\n", native_ok ? "CORRECT" : "WRONG");

  std::printf("== virtualized: CAvA-generated stack ==\n");
  // 1. The hypervisor side: router + a per-VM API server session.
  ava::Router router;
  auto channel = ava::MakeShmRingChannel();
  auto session = std::make_shared<ava::ApiServerSession>(/*vm_id=*/1);
  session->RegisterApi(ava_gen_vcl::kApiId, ava_gen_vcl::MakeVclApiHandler());
  router.AttachVm(1, std::move(channel->host), session);
  router.Start();

  // 2. The guest side: endpoint + generated guest library.
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(channel->guest), opts);
  bool remote_ok = RunVectorAdd(ava_gen_vcl::MakeVclGuestApi(endpoint),
                                1 << 16);
  std::printf("  vector add: %s\n", remote_ok ? "CORRECT" : "WRONG");

  // 3. Interposition dividend: the hypervisor saw everything.
  auto stats = router.StatsFor(1);
  auto guest = endpoint->stats();
  std::printf(
      "  router accounting: %llu calls forwarded, %.1f KiB received, "
      "%.2f Mvns device time\n",
      static_cast<unsigned long long>(stats->calls_forwarded),
      static_cast<double>(stats->bytes_received) / 1024.0,
      static_cast<double>(stats->cost_vns) / 1e6);
  std::printf("  guest endpoint: %llu sync + %llu async calls\n",
              static_cast<unsigned long long>(guest.sync_calls),
              static_cast<unsigned long long>(guest.async_calls));
  endpoint.reset();
  router.Stop();
  return native_ok && remote_ok ? 0 : 1;
}
