// The CAvA developer workflow (paper Figure 2), end to end in one program:
//
//   1. `cava draft`: a preliminary specification is inferred from the
//      unmodified C declarations of a brand-new accelerator API.
//   2. The developer refines it (here: a string literal standing in for the
//      edited file).
//   3. `cava gen`: the refined spec becomes a complete remoting stack —
//      guest library, server dispatch, native binding, and the API table.
//
// This is the paper's headline claim in executable form: "a single
// developer could virtualize a core subset of OpenCL at near-native
// performance in just a few days" — the per-API artifact is a spec file,
// everything else is generated.
//
//   $ ./build/examples/cava_workflow
#include <cstdio>

#include "src/cava/draft.h"
#include "src/cava/lint.h"
#include "src/cava/emit.h"
#include "src/cava/spec_parser.h"

namespace {

// The header of a hypothetical new accelerator ("Crypt Processing Unit"),
// exactly as its vendor ships it.
constexpr const char* kVendorHeader = R"(
typedef struct cpu_ctx_rec* cpu_ctx;
typedef unsigned int cpu_status;
cpu_ctx cpuCreate(int flags, int* errcode);
cpu_status cpuDestroy(cpu_ctx ctx);
cpu_status cpuSetKey(cpu_ctx ctx, const void* key, int key_size);
cpu_status cpuEncrypt(cpu_ctx ctx, const void* plain, int plain_size,
                      void* cipher, int cipher_size);
cpu_status cpuGetCounter(cpu_ctx ctx, long* ops_done);
)";

// What the developer's refinement pass produces: ownership classes,
// sync/async decisions, costs, and migration recording added to the draft.
constexpr const char* kRefinedSpec = R"(
api cpu 7;
include "cpu.h";

type(cpu_status) { scalar; success(0); failure(1); }
type(cpu_ctx) { handle; }

cpu_ctx cpuCreate(int flags, int* errcode) {
  sync;
  record;
  parameter(errcode) { out; element; }
  return { allocates; }
}

cpu_status cpuDestroy(cpu_ctx ctx) {
  async;
  record;
  parameter(ctx) { deallocates; }
}

cpu_status cpuSetKey(cpu_ctx ctx, const void* key, int key_size) {
  async;
  record;
  parameter(key) { in; bytes(key_size); }
}

cpu_status cpuEncrypt(cpu_ctx ctx, const void* plain, int plain_size,
                      void* cipher, int cipher_size) {
  sync;
  parameter(plain) { in; bytes(plain_size); }
  parameter(cipher) { out; bytes(cipher_size); }
  consumes(bandwidth, plain_size + cipher_size);
  consumes(device_time, (long long)plain_size * 4);
}

cpu_status cpuGetCounter(cpu_ctx ctx, long* ops_done) {
  sync;
  parameter(ops_done) { out; element; }
}
)";

}  // namespace

int main() {
  std::printf("=== step 1: cava draft — inferred preliminary spec ===\n\n");
  auto draft = cava::DraftSpecFromHeader(kVendorHeader, "cpu", 7);
  if (!draft.ok()) {
    std::fprintf(stderr, "draft failed: %s\n",
                 draft.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", draft->c_str());

  std::printf(
      "=== step 2: developer refinement (ownership, async, costs) ===\n\n");
  auto spec = cava::ParseSpec(kRefinedSpec);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec rejected: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  int async_count = 0, recorded = 0;
  for (const auto& fn : spec->functions) {
    async_count += fn.is_sync && fn.sync_condition.empty() ? 0 : 1;
    recorded += fn.record ? 1 : 0;
  }
  std::printf("validated: api '%s' (id %u), %zu functions, %d async-capable, "
              "%d recorded for migration\n",
              spec->name.c_str(), spec->api_id, spec->functions.size(),
              async_count, recorded);
  auto findings = cava::LintSpec(*spec);
  std::printf("cava lint: %zu finding(s)\n%s\n", findings.size(),
              cava::FormatFindings(findings).c_str());

  std::printf("=== step 3: cava gen — the generated stack ===\n\n");
  auto files = cava::GenerateStack(*spec);
  if (!files.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 files.status().ToString().c_str());
    return 1;
  }
  std::size_t total = 0;
  for (const auto& [name, content] : *files) {
    std::printf("  %-22s %6zu bytes\n", name.c_str(), content.size());
    total += content.size();
  }
  std::printf(
      "\n%zu bytes of C++ (guest stubs, server dispatch, native binding,\n"
      "API table) from %zu bytes of specification — the compatibility-\n"
      "maintenance burden the paper's automation eliminates.\n",
      total, std::string(kRefinedSpec).size());
  return 0;
}
