// Disaggregated accelerator: the guest application and the API server run
// in SEPARATE PROCESSES, connected by a socket — the paper's "pluggable
// transport layers, allowing VMs to use disaggregated accelerators" (§1,
// §4.1). The child process owns the physical accelerator (the silo) and
// runs the router + API server; the parent is the guest, holding nothing
// but the generated guest library and a socket.
//
//   $ ./build/examples/disaggregated
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "src/workloads/vcl_workloads.h"
#include "vcl_gen.h"

namespace {

int RunServerProcess(ava::TransportPtr transport) {
  // This process is the "accelerator host": silo + router + API server.
  ava::Router router;
  auto session = std::make_shared<ava::ApiServerSession>(/*vm_id=*/1);
  session->RegisterApi(ava_gen_vcl::kApiId, ava_gen_vcl::MakeVclApiHandler());
  if (!router.AttachVm(1, std::move(transport), session).ok()) {
    return 1;
  }
  router.Start();
  // Serve until the guest hangs up (the RX loop exits on transport close);
  // poll the session's progress as a liveness signal.
  std::uint64_t last = 0;
  int idle_rounds = 0;
  while (idle_rounds < 50) {
    usleep(100000);
    const std::uint64_t now = session->stats().calls_executed;
    idle_rounds = now == last ? idle_rounds + 1 : 0;
    last = now;
  }
  router.Stop();
  std::printf("[server %d] served %llu calls, %.2f Mvns device time\n",
              getpid(), static_cast<unsigned long long>(last),
              static_cast<double>(session->stats().cost_vns_total) / 1e6);
  return 0;
}

}  // namespace

int main() {
  // TCP on loopback stands in for the datacenter fabric between the VM host
  // and the machine that physically owns the accelerator.
  constexpr std::uint16_t kPort = 45793;

  pid_t pid = fork();
  if (pid < 0) {
    return 1;
  }
  if (pid == 0) {
    // Child: the remote accelerator host. Owns the silo; listens for the
    // guest's connection.
    auto server_transport = ava::TcpListenAccept(kPort);
    if (!server_transport.ok()) {
      std::fprintf(stderr, "listen failed: %s\n",
                   server_transport.status().ToString().c_str());
      return 1;
    }
    return RunServerProcess(std::move(*server_transport));
  }

  // Parent: the guest. It has no silo of its own — every vcl* call crosses
  // the process boundary over TCP.
  auto guest_transport = ava::TcpConnect("127.0.0.1", kPort);
  if (!guest_transport.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 guest_transport.status().ToString().c_str());
    return 1;
  }
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint = std::make_shared<ava::GuestEndpoint>(
      std::move(*guest_transport), opts);
  auto api = ava_gen_vcl::MakeVclGuestApi(endpoint);

  std::printf("[guest %d] running hotspot on the remote accelerator...\n",
              getpid());
  workloads::WorkloadOptions options;
  ava::Stopwatch watch;
  ava::Status status = workloads::RunHotspot(api, options);
  std::printf("[guest %d] hotspot: %s (%.1f ms, validated against the CPU "
              "reference)\n",
              getpid(), status.ok() ? "CORRECT" : status.ToString().c_str(),
              watch.ElapsedSeconds() * 1e3);

  auto stats = endpoint->stats();
  std::printf("[guest %d] %llu sync + %llu async calls, %.2f MiB sent over "
              "the socket\n",
              getpid(), static_cast<unsigned long long>(stats.sync_calls),
              static_cast<unsigned long long>(stats.async_calls),
              static_cast<double>(stats.bytes_sent) / (1u << 20));
  endpoint.reset();  // closes the socket; the server notices and exits

  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  return status.ok() && WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0 ? 0
                                                                        : 1;
}
