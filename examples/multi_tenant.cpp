// Multi-tenancy: the consolidation story from the paper's introduction.
// Three guest VMs share one accelerator through the router; per-VM policies
// give the "gold" tenant twice the device-time weight, cap the "bronze"
// tenant's device-time allotment, and rate-limit its call stream. Each VM
// runs the same kernel-heavy loop; the router's accounting shows who got
// the device.
//
//   $ ./build/examples/multi_tenant
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "vcl_gen.h"

namespace {

constexpr const char* kSpinSrc = R"(
__kernel void spin(__global float* d, int n, int iters) {
  int i = get_global_id(0);
  if (i >= n) return;
  float acc = d[i];
  for (int k = 0; k < iters; k++) { acc = acc * 1.000001f + 0.5f; }
  d[i] = acc;
}
)";

struct Tenant {
  const char* label;
  ava::VmId vm_id;
  std::shared_ptr<ava::ApiServerSession> session;
  std::shared_ptr<ava::GuestEndpoint> endpoint;
  int launches = 0;
};

void DriveTenant(Tenant* tenant, double seconds) {
  auto api = ava_gen_vcl::MakeVclGuestApi(tenant->endpoint);
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  vcl_mem buf = api.vclCreateBuffer(ctx, 0, 4096 * 4, nullptr, &err);
  vcl_program prog = api.vclCreateProgramWithSource(ctx, kSpinSrc, &err);
  api.vclBuildProgram(prog, nullptr);
  vcl_kernel kernel = api.vclCreateKernel(prog, "spin", &err);
  int n = 4096, iters = 100;
  api.vclSetKernelArgBuffer(kernel, 0, buf);
  api.vclSetKernelArgScalar(kernel, 1, sizeof(int), &n);
  api.vclSetKernelArgScalar(kernel, 2, sizeof(int), &iters);
  size_t global = 4096;
  ava::Stopwatch watch;
  while (watch.ElapsedSeconds() < seconds) {
    api.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, nullptr,
                                0, nullptr, nullptr);
    if (++tenant->launches % 8 == 0) {
      api.vclFinish(queue);
    }
  }
  api.vclFinish(queue);
  api.vclReleaseKernel(kernel);
  api.vclReleaseProgram(prog);
  api.vclReleaseMemObject(buf);
  api.vclReleaseCommandQueue(queue);
  api.vclReleaseContext(ctx);
}

}  // namespace

int main() {
  ava::Router router;
  std::vector<Tenant> tenants = {
      {"gold   (weight 2.0)", 1, nullptr, nullptr},
      {"silver (weight 1.0)", 2, nullptr, nullptr},
      {"bronze (0.5 Mvns/s + 3000 calls/s)", 3, nullptr, nullptr},
  };
  for (auto& tenant : tenants) {
    auto channel = ava::MakeInProcChannel();
    tenant.session = std::make_shared<ava::ApiServerSession>(tenant.vm_id);
    tenant.session->RegisterApi(ava_gen_vcl::kApiId,
                                ava_gen_vcl::MakeVclApiHandler());
    ava::VmPolicy policy;
    if (tenant.vm_id == 1) {
      policy.weight = 2.0;
    } else if (tenant.vm_id == 3) {
      policy.device_vns_per_sec = 0.5e6;
      policy.calls_per_sec = 3000;
    }
    router.AttachVm(tenant.vm_id, std::move(channel.host), tenant.session,
                    policy);
    ava::GuestEndpoint::Options opts;
    opts.vm_id = tenant.vm_id;
    tenant.endpoint =
        std::make_shared<ava::GuestEndpoint>(std::move(channel.guest), opts);
  }
  router.Start();

  std::printf("three tenants contend for one accelerator for 3 seconds...\n");
  std::vector<std::thread> threads;
  for (auto& tenant : tenants) {
    threads.emplace_back([&tenant] { DriveTenant(&tenant, 3.0); });
  }
  for (auto& t : threads) {
    t.join();
  }

  std::int64_t total_cost = 0;
  for (auto& tenant : tenants) {
    total_cost += router.StatsFor(tenant.vm_id)->cost_vns;
  }
  std::printf("\n%-38s %10s %12s %10s %12s\n", "tenant", "launches",
              "device-time", "share", "rl-wait");
  for (auto& tenant : tenants) {
    auto stats = router.StatsFor(tenant.vm_id);
    std::printf("%-38s %10d %9.2f Mvns %8.1f%% %9.0f ms\n", tenant.label,
                tenant.launches,
                static_cast<double>(stats->cost_vns) / 1e6,
                100.0 * static_cast<double>(stats->cost_vns) /
                    static_cast<double>(total_cost),
                static_cast<double>(stats->rate_limit_wait_ns) / 1e6);
  }
  std::printf(
      "\nthe gold tenant gets roughly twice the silver tenant's device time;\n"
      "the bronze tenant is pinned near its allotment regardless of demand.\n");

  for (auto& tenant : tenants) {
    tenant.endpoint.reset();
  }
  router.Stop();
  return 0;
}
