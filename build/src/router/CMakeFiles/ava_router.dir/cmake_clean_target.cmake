file(REMOVE_RECURSE
  "libava_router.a"
)
