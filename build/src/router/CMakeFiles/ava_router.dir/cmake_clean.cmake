file(REMOVE_RECURSE
  "CMakeFiles/ava_router.dir/router.cc.o"
  "CMakeFiles/ava_router.dir/router.cc.o.d"
  "libava_router.a"
  "libava_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
