# Empty dependencies file for ava_router.
# This may be replaced when dependencies are built.
