file(REMOVE_RECURSE
  "CMakeFiles/ava_migrate.dir/recorder.cc.o"
  "CMakeFiles/ava_migrate.dir/recorder.cc.o.d"
  "CMakeFiles/ava_migrate.dir/snapshot.cc.o"
  "CMakeFiles/ava_migrate.dir/snapshot.cc.o.d"
  "libava_migrate.a"
  "libava_migrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_migrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
