# Empty compiler generated dependencies file for ava_migrate.
# This may be replaced when dependencies are built.
