file(REMOVE_RECURSE
  "libava_migrate.a"
)
