file(REMOVE_RECURSE
  "CMakeFiles/ava_proto.dir/wire.cc.o"
  "CMakeFiles/ava_proto.dir/wire.cc.o.d"
  "libava_proto.a"
  "libava_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
