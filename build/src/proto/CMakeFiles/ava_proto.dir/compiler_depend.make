# Empty compiler generated dependencies file for ava_proto.
# This may be replaced when dependencies are built.
