file(REMOVE_RECURSE
  "libava_proto.a"
)
