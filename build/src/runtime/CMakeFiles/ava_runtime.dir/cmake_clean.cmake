file(REMOVE_RECURSE
  "CMakeFiles/ava_runtime.dir/guest_endpoint.cc.o"
  "CMakeFiles/ava_runtime.dir/guest_endpoint.cc.o.d"
  "libava_runtime.a"
  "libava_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
