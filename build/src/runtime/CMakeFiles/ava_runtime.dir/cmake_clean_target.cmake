file(REMOVE_RECURSE
  "libava_runtime.a"
)
