# Empty dependencies file for ava_runtime.
# This may be replaced when dependencies are built.
