file(REMOVE_RECURSE
  "CMakeFiles/ava_qat.dir/codecs.cc.o"
  "CMakeFiles/ava_qat.dir/codecs.cc.o.d"
  "CMakeFiles/ava_qat.dir/silo.cc.o"
  "CMakeFiles/ava_qat.dir/silo.cc.o.d"
  "libava_qat.a"
  "libava_qat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_qat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
