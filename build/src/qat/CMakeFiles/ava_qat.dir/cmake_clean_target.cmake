file(REMOVE_RECURSE
  "libava_qat.a"
)
