# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("vcl")
subdirs("transport")
subdirs("proto")
subdirs("runtime")
subdirs("server")
subdirs("router")
subdirs("migrate")
subdirs("cava")
subdirs("mvnc")
subdirs("qat")
subdirs("gen")
subdirs("workloads")
