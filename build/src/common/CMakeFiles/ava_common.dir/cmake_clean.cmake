file(REMOVE_RECURSE
  "CMakeFiles/ava_common.dir/log.cc.o"
  "CMakeFiles/ava_common.dir/log.cc.o.d"
  "CMakeFiles/ava_common.dir/status.cc.o"
  "CMakeFiles/ava_common.dir/status.cc.o.d"
  "libava_common.a"
  "libava_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
