file(REMOVE_RECURSE
  "libava_common.a"
)
