# Empty dependencies file for ava_common.
# This may be replaced when dependencies are built.
