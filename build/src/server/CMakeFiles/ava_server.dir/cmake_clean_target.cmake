file(REMOVE_RECURSE
  "libava_server.a"
)
