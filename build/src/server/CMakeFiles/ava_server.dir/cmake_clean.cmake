file(REMOVE_RECURSE
  "CMakeFiles/ava_server.dir/api_server.cc.o"
  "CMakeFiles/ava_server.dir/api_server.cc.o.d"
  "CMakeFiles/ava_server.dir/object_registry.cc.o"
  "CMakeFiles/ava_server.dir/object_registry.cc.o.d"
  "CMakeFiles/ava_server.dir/swap_manager.cc.o"
  "CMakeFiles/ava_server.dir/swap_manager.cc.o.d"
  "libava_server.a"
  "libava_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
