# Empty dependencies file for ava_server.
# This may be replaced when dependencies are built.
