file(REMOVE_RECURSE
  "libava_mvnc.a"
)
