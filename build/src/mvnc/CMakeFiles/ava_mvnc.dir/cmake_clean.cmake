file(REMOVE_RECURSE
  "CMakeFiles/ava_mvnc.dir/graph.cc.o"
  "CMakeFiles/ava_mvnc.dir/graph.cc.o.d"
  "CMakeFiles/ava_mvnc.dir/silo.cc.o"
  "CMakeFiles/ava_mvnc.dir/silo.cc.o.d"
  "libava_mvnc.a"
  "libava_mvnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_mvnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
