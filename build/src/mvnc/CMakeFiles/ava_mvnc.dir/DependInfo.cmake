
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mvnc/graph.cc" "src/mvnc/CMakeFiles/ava_mvnc.dir/graph.cc.o" "gcc" "src/mvnc/CMakeFiles/ava_mvnc.dir/graph.cc.o.d"
  "/root/repo/src/mvnc/silo.cc" "src/mvnc/CMakeFiles/ava_mvnc.dir/silo.cc.o" "gcc" "src/mvnc/CMakeFiles/ava_mvnc.dir/silo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ava_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
