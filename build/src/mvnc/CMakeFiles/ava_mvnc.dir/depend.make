# Empty dependencies file for ava_mvnc.
# This may be replaced when dependencies are built.
