
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cava/draft.cc" "src/cava/CMakeFiles/ava_cava.dir/draft.cc.o" "gcc" "src/cava/CMakeFiles/ava_cava.dir/draft.cc.o.d"
  "/root/repo/src/cava/emit.cc" "src/cava/CMakeFiles/ava_cava.dir/emit.cc.o" "gcc" "src/cava/CMakeFiles/ava_cava.dir/emit.cc.o.d"
  "/root/repo/src/cava/lint.cc" "src/cava/CMakeFiles/ava_cava.dir/lint.cc.o" "gcc" "src/cava/CMakeFiles/ava_cava.dir/lint.cc.o.d"
  "/root/repo/src/cava/spec_lexer.cc" "src/cava/CMakeFiles/ava_cava.dir/spec_lexer.cc.o" "gcc" "src/cava/CMakeFiles/ava_cava.dir/spec_lexer.cc.o.d"
  "/root/repo/src/cava/spec_parser.cc" "src/cava/CMakeFiles/ava_cava.dir/spec_parser.cc.o" "gcc" "src/cava/CMakeFiles/ava_cava.dir/spec_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ava_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
