file(REMOVE_RECURSE
  "CMakeFiles/ava_cava.dir/draft.cc.o"
  "CMakeFiles/ava_cava.dir/draft.cc.o.d"
  "CMakeFiles/ava_cava.dir/emit.cc.o"
  "CMakeFiles/ava_cava.dir/emit.cc.o.d"
  "CMakeFiles/ava_cava.dir/lint.cc.o"
  "CMakeFiles/ava_cava.dir/lint.cc.o.d"
  "CMakeFiles/ava_cava.dir/spec_lexer.cc.o"
  "CMakeFiles/ava_cava.dir/spec_lexer.cc.o.d"
  "CMakeFiles/ava_cava.dir/spec_parser.cc.o"
  "CMakeFiles/ava_cava.dir/spec_parser.cc.o.d"
  "libava_cava.a"
  "libava_cava.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_cava.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
