file(REMOVE_RECURSE
  "libava_cava.a"
)
