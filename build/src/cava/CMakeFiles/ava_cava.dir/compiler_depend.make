# Empty compiler generated dependencies file for ava_cava.
# This may be replaced when dependencies are built.
