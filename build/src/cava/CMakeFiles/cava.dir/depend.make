# Empty dependencies file for cava.
# This may be replaced when dependencies are built.
