file(REMOVE_RECURSE
  "CMakeFiles/cava.dir/cava_main.cc.o"
  "CMakeFiles/cava.dir/cava_main.cc.o.d"
  "cava"
  "cava.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cava.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
