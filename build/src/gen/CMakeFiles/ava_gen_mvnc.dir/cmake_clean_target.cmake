file(REMOVE_RECURSE
  "libava_gen_mvnc.a"
)
