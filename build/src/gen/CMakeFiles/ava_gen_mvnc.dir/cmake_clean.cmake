file(REMOVE_RECURSE
  "../../gen/mvnc_gen.h"
  "../../gen/mvnc_gen_guest.cc"
  "../../gen/mvnc_gen_native.cc"
  "../../gen/mvnc_gen_server.cc"
  "CMakeFiles/ava_gen_mvnc.dir/__/__/gen/mvnc_gen_guest.cc.o"
  "CMakeFiles/ava_gen_mvnc.dir/__/__/gen/mvnc_gen_guest.cc.o.d"
  "CMakeFiles/ava_gen_mvnc.dir/__/__/gen/mvnc_gen_native.cc.o"
  "CMakeFiles/ava_gen_mvnc.dir/__/__/gen/mvnc_gen_native.cc.o.d"
  "CMakeFiles/ava_gen_mvnc.dir/__/__/gen/mvnc_gen_server.cc.o"
  "CMakeFiles/ava_gen_mvnc.dir/__/__/gen/mvnc_gen_server.cc.o.d"
  "libava_gen_mvnc.a"
  "libava_gen_mvnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_gen_mvnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
