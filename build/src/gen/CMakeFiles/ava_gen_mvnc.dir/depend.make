# Empty dependencies file for ava_gen_mvnc.
# This may be replaced when dependencies are built.
