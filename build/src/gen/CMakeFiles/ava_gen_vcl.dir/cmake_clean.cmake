file(REMOVE_RECURSE
  "../../gen/vcl_gen.h"
  "../../gen/vcl_gen_guest.cc"
  "../../gen/vcl_gen_native.cc"
  "../../gen/vcl_gen_server.cc"
  "CMakeFiles/ava_gen_vcl.dir/__/__/gen/vcl_gen_guest.cc.o"
  "CMakeFiles/ava_gen_vcl.dir/__/__/gen/vcl_gen_guest.cc.o.d"
  "CMakeFiles/ava_gen_vcl.dir/__/__/gen/vcl_gen_native.cc.o"
  "CMakeFiles/ava_gen_vcl.dir/__/__/gen/vcl_gen_native.cc.o.d"
  "CMakeFiles/ava_gen_vcl.dir/__/__/gen/vcl_gen_server.cc.o"
  "CMakeFiles/ava_gen_vcl.dir/__/__/gen/vcl_gen_server.cc.o.d"
  "libava_gen_vcl.a"
  "libava_gen_vcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_gen_vcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
