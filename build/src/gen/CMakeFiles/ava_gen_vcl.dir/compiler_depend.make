# Empty compiler generated dependencies file for ava_gen_vcl.
# This may be replaced when dependencies are built.
