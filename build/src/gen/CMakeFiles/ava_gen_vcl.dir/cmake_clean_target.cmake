file(REMOVE_RECURSE
  "libava_gen_vcl.a"
)
