file(REMOVE_RECURSE
  "CMakeFiles/ava_vcl_hooks.dir/vcl_hooks.cc.o"
  "CMakeFiles/ava_vcl_hooks.dir/vcl_hooks.cc.o.d"
  "libava_vcl_hooks.a"
  "libava_vcl_hooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_vcl_hooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
