file(REMOVE_RECURSE
  "libava_vcl_hooks.a"
)
