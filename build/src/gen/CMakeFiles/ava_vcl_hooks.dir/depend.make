# Empty dependencies file for ava_vcl_hooks.
# This may be replaced when dependencies are built.
