file(REMOVE_RECURSE
  "../../gen/qat_gen.h"
  "../../gen/qat_gen_guest.cc"
  "../../gen/qat_gen_native.cc"
  "../../gen/qat_gen_server.cc"
  "CMakeFiles/ava_gen_qat.dir/__/__/gen/qat_gen_guest.cc.o"
  "CMakeFiles/ava_gen_qat.dir/__/__/gen/qat_gen_guest.cc.o.d"
  "CMakeFiles/ava_gen_qat.dir/__/__/gen/qat_gen_native.cc.o"
  "CMakeFiles/ava_gen_qat.dir/__/__/gen/qat_gen_native.cc.o.d"
  "CMakeFiles/ava_gen_qat.dir/__/__/gen/qat_gen_server.cc.o"
  "CMakeFiles/ava_gen_qat.dir/__/__/gen/qat_gen_server.cc.o.d"
  "libava_gen_qat.a"
  "libava_gen_qat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_gen_qat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
