# Empty compiler generated dependencies file for ava_gen_qat.
# This may be replaced when dependencies are built.
