file(REMOVE_RECURSE
  "libava_gen_qat.a"
)
