
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/inproc.cc" "src/transport/CMakeFiles/ava_transport.dir/inproc.cc.o" "gcc" "src/transport/CMakeFiles/ava_transport.dir/inproc.cc.o.d"
  "/root/repo/src/transport/shm_ring.cc" "src/transport/CMakeFiles/ava_transport.dir/shm_ring.cc.o" "gcc" "src/transport/CMakeFiles/ava_transport.dir/shm_ring.cc.o.d"
  "/root/repo/src/transport/socket.cc" "src/transport/CMakeFiles/ava_transport.dir/socket.cc.o" "gcc" "src/transport/CMakeFiles/ava_transport.dir/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ava_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
