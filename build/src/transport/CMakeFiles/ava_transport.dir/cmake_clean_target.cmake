file(REMOVE_RECURSE
  "libava_transport.a"
)
