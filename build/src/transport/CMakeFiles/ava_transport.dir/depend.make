# Empty dependencies file for ava_transport.
# This may be replaced when dependencies are built.
