file(REMOVE_RECURSE
  "CMakeFiles/ava_transport.dir/inproc.cc.o"
  "CMakeFiles/ava_transport.dir/inproc.cc.o.d"
  "CMakeFiles/ava_transport.dir/shm_ring.cc.o"
  "CMakeFiles/ava_transport.dir/shm_ring.cc.o.d"
  "CMakeFiles/ava_transport.dir/socket.cc.o"
  "CMakeFiles/ava_transport.dir/socket.cc.o.d"
  "libava_transport.a"
  "libava_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
