file(REMOVE_RECURSE
  "libava_vcl.a"
)
