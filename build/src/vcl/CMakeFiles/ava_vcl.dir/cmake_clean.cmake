file(REMOVE_RECURSE
  "CMakeFiles/ava_vcl.dir/api.cc.o"
  "CMakeFiles/ava_vcl.dir/api.cc.o.d"
  "CMakeFiles/ava_vcl.dir/compiler/codegen.cc.o"
  "CMakeFiles/ava_vcl.dir/compiler/codegen.cc.o.d"
  "CMakeFiles/ava_vcl.dir/compiler/lexer.cc.o"
  "CMakeFiles/ava_vcl.dir/compiler/lexer.cc.o.d"
  "CMakeFiles/ava_vcl.dir/compiler/parser.cc.o"
  "CMakeFiles/ava_vcl.dir/compiler/parser.cc.o.d"
  "CMakeFiles/ava_vcl.dir/compiler/vm.cc.o"
  "CMakeFiles/ava_vcl.dir/compiler/vm.cc.o.d"
  "CMakeFiles/ava_vcl.dir/device.cc.o"
  "CMakeFiles/ava_vcl.dir/device.cc.o.d"
  "CMakeFiles/ava_vcl.dir/silo.cc.o"
  "CMakeFiles/ava_vcl.dir/silo.cc.o.d"
  "libava_vcl.a"
  "libava_vcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_vcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
