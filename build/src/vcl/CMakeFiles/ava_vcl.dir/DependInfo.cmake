
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vcl/api.cc" "src/vcl/CMakeFiles/ava_vcl.dir/api.cc.o" "gcc" "src/vcl/CMakeFiles/ava_vcl.dir/api.cc.o.d"
  "/root/repo/src/vcl/compiler/codegen.cc" "src/vcl/CMakeFiles/ava_vcl.dir/compiler/codegen.cc.o" "gcc" "src/vcl/CMakeFiles/ava_vcl.dir/compiler/codegen.cc.o.d"
  "/root/repo/src/vcl/compiler/lexer.cc" "src/vcl/CMakeFiles/ava_vcl.dir/compiler/lexer.cc.o" "gcc" "src/vcl/CMakeFiles/ava_vcl.dir/compiler/lexer.cc.o.d"
  "/root/repo/src/vcl/compiler/parser.cc" "src/vcl/CMakeFiles/ava_vcl.dir/compiler/parser.cc.o" "gcc" "src/vcl/CMakeFiles/ava_vcl.dir/compiler/parser.cc.o.d"
  "/root/repo/src/vcl/compiler/vm.cc" "src/vcl/CMakeFiles/ava_vcl.dir/compiler/vm.cc.o" "gcc" "src/vcl/CMakeFiles/ava_vcl.dir/compiler/vm.cc.o.d"
  "/root/repo/src/vcl/device.cc" "src/vcl/CMakeFiles/ava_vcl.dir/device.cc.o" "gcc" "src/vcl/CMakeFiles/ava_vcl.dir/device.cc.o.d"
  "/root/repo/src/vcl/silo.cc" "src/vcl/CMakeFiles/ava_vcl.dir/silo.cc.o" "gcc" "src/vcl/CMakeFiles/ava_vcl.dir/silo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ava_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
