# Empty compiler generated dependencies file for ava_vcl.
# This may be replaced when dependencies are built.
