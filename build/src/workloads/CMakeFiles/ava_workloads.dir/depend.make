# Empty dependencies file for ava_workloads.
# This may be replaced when dependencies are built.
