file(REMOVE_RECURSE
  "libava_workloads.a"
)
