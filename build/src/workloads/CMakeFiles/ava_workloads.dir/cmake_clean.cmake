file(REMOVE_RECURSE
  "CMakeFiles/ava_workloads.dir/backprop.cc.o"
  "CMakeFiles/ava_workloads.dir/backprop.cc.o.d"
  "CMakeFiles/ava_workloads.dir/bfs.cc.o"
  "CMakeFiles/ava_workloads.dir/bfs.cc.o.d"
  "CMakeFiles/ava_workloads.dir/common.cc.o"
  "CMakeFiles/ava_workloads.dir/common.cc.o.d"
  "CMakeFiles/ava_workloads.dir/gaussian.cc.o"
  "CMakeFiles/ava_workloads.dir/gaussian.cc.o.d"
  "CMakeFiles/ava_workloads.dir/hotspot.cc.o"
  "CMakeFiles/ava_workloads.dir/hotspot.cc.o.d"
  "CMakeFiles/ava_workloads.dir/inception.cc.o"
  "CMakeFiles/ava_workloads.dir/inception.cc.o.d"
  "CMakeFiles/ava_workloads.dir/nn.cc.o"
  "CMakeFiles/ava_workloads.dir/nn.cc.o.d"
  "CMakeFiles/ava_workloads.dir/nw.cc.o"
  "CMakeFiles/ava_workloads.dir/nw.cc.o.d"
  "CMakeFiles/ava_workloads.dir/pathfinder.cc.o"
  "CMakeFiles/ava_workloads.dir/pathfinder.cc.o.d"
  "CMakeFiles/ava_workloads.dir/srad.cc.o"
  "CMakeFiles/ava_workloads.dir/srad.cc.o.d"
  "libava_workloads.a"
  "libava_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
