
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/backprop.cc" "src/workloads/CMakeFiles/ava_workloads.dir/backprop.cc.o" "gcc" "src/workloads/CMakeFiles/ava_workloads.dir/backprop.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/workloads/CMakeFiles/ava_workloads.dir/bfs.cc.o" "gcc" "src/workloads/CMakeFiles/ava_workloads.dir/bfs.cc.o.d"
  "/root/repo/src/workloads/common.cc" "src/workloads/CMakeFiles/ava_workloads.dir/common.cc.o" "gcc" "src/workloads/CMakeFiles/ava_workloads.dir/common.cc.o.d"
  "/root/repo/src/workloads/gaussian.cc" "src/workloads/CMakeFiles/ava_workloads.dir/gaussian.cc.o" "gcc" "src/workloads/CMakeFiles/ava_workloads.dir/gaussian.cc.o.d"
  "/root/repo/src/workloads/hotspot.cc" "src/workloads/CMakeFiles/ava_workloads.dir/hotspot.cc.o" "gcc" "src/workloads/CMakeFiles/ava_workloads.dir/hotspot.cc.o.d"
  "/root/repo/src/workloads/inception.cc" "src/workloads/CMakeFiles/ava_workloads.dir/inception.cc.o" "gcc" "src/workloads/CMakeFiles/ava_workloads.dir/inception.cc.o.d"
  "/root/repo/src/workloads/nn.cc" "src/workloads/CMakeFiles/ava_workloads.dir/nn.cc.o" "gcc" "src/workloads/CMakeFiles/ava_workloads.dir/nn.cc.o.d"
  "/root/repo/src/workloads/nw.cc" "src/workloads/CMakeFiles/ava_workloads.dir/nw.cc.o" "gcc" "src/workloads/CMakeFiles/ava_workloads.dir/nw.cc.o.d"
  "/root/repo/src/workloads/pathfinder.cc" "src/workloads/CMakeFiles/ava_workloads.dir/pathfinder.cc.o" "gcc" "src/workloads/CMakeFiles/ava_workloads.dir/pathfinder.cc.o.d"
  "/root/repo/src/workloads/srad.cc" "src/workloads/CMakeFiles/ava_workloads.dir/srad.cc.o" "gcc" "src/workloads/CMakeFiles/ava_workloads.dir/srad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/ava_gen_vcl.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/ava_gen_mvnc.dir/DependInfo.cmake"
  "/root/repo/build/src/vcl/CMakeFiles/ava_vcl.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ava_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ava_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/ava_server.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ava_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mvnc/CMakeFiles/ava_mvnc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ava_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
