file(REMOVE_RECURSE
  "CMakeFiles/abl_transport.dir/abl_transport.cc.o"
  "CMakeFiles/abl_transport.dir/abl_transport.cc.o.d"
  "abl_transport"
  "abl_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
