file(REMOVE_RECURSE
  "CMakeFiles/sec5_api_coverage.dir/sec5_api_coverage.cc.o"
  "CMakeFiles/sec5_api_coverage.dir/sec5_api_coverage.cc.o.d"
  "sec5_api_coverage"
  "sec5_api_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_api_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
