# Empty dependencies file for sec5_api_coverage.
# This may be replaced when dependencies are built.
