file(REMOVE_RECURSE
  "CMakeFiles/abl_swap.dir/abl_swap.cc.o"
  "CMakeFiles/abl_swap.dir/abl_swap.cc.o.d"
  "abl_swap"
  "abl_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
