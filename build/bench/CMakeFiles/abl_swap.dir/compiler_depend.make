# Empty compiler generated dependencies file for abl_swap.
# This may be replaced when dependencies are built.
