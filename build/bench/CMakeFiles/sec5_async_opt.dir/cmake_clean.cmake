file(REMOVE_RECURSE
  "CMakeFiles/sec5_async_opt.dir/sec5_async_opt.cc.o"
  "CMakeFiles/sec5_async_opt.dir/sec5_async_opt.cc.o.d"
  "sec5_async_opt"
  "sec5_async_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_async_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
