# Empty compiler generated dependencies file for sec5_async_opt.
# This may be replaced when dependencies are built.
