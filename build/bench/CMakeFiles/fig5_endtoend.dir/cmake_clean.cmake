file(REMOVE_RECURSE
  "CMakeFiles/fig5_endtoend.dir/fig5_endtoend.cc.o"
  "CMakeFiles/fig5_endtoend.dir/fig5_endtoend.cc.o.d"
  "fig5_endtoend"
  "fig5_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
