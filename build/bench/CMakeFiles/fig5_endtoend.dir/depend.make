# Empty dependencies file for fig5_endtoend.
# This may be replaced when dependencies are built.
