# Empty compiler generated dependencies file for micro_call.
# This may be replaced when dependencies are built.
