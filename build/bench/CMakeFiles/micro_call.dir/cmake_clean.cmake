file(REMOVE_RECURSE
  "CMakeFiles/micro_call.dir/micro_call.cc.o"
  "CMakeFiles/micro_call.dir/micro_call.cc.o.d"
  "micro_call"
  "micro_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
