# Empty compiler generated dependencies file for abl_batching.
# This may be replaced when dependencies are built.
