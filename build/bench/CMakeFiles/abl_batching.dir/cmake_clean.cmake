file(REMOVE_RECURSE
  "CMakeFiles/abl_batching.dir/abl_batching.cc.o"
  "CMakeFiles/abl_batching.dir/abl_batching.cc.o.d"
  "abl_batching"
  "abl_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
