file(REMOVE_RECURSE
  "CMakeFiles/cava_workflow.dir/cava_workflow.cpp.o"
  "CMakeFiles/cava_workflow.dir/cava_workflow.cpp.o.d"
  "cava_workflow"
  "cava_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cava_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
