# Empty dependencies file for cava_workflow.
# This may be replaced when dependencies are built.
