# Empty compiler generated dependencies file for disaggregated.
# This may be replaced when dependencies are built.
