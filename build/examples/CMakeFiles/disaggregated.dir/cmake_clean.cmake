file(REMOVE_RECURSE
  "CMakeFiles/disaggregated.dir/disaggregated.cpp.o"
  "CMakeFiles/disaggregated.dir/disaggregated.cpp.o.d"
  "disaggregated"
  "disaggregated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaggregated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
