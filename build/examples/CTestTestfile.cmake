# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_tenant "/root/repo/build/examples/multi_tenant")
set_tests_properties(example_multi_tenant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_disaggregated "/root/repo/build/examples/disaggregated")
set_tests_properties(example_disaggregated PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_migration "/root/repo/build/examples/live_migration")
set_tests_properties(example_live_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cava_workflow "/root/repo/build/examples/cava_workflow")
set_tests_properties(example_cava_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
