file(REMOVE_RECURSE
  "CMakeFiles/swap_test.dir/swap_test.cc.o"
  "CMakeFiles/swap_test.dir/swap_test.cc.o.d"
  "swap_test"
  "swap_test.pdb"
  "swap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
