# Empty dependencies file for cava_test.
# This may be replaced when dependencies are built.
