file(REMOVE_RECURSE
  "CMakeFiles/cava_test.dir/cava_test.cc.o"
  "CMakeFiles/cava_test.dir/cava_test.cc.o.d"
  "cava_test"
  "cava_test.pdb"
  "cava_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cava_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
