# Empty compiler generated dependencies file for vcl_api_test.
# This may be replaced when dependencies are built.
