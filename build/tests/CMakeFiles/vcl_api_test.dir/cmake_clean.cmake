file(REMOVE_RECURSE
  "CMakeFiles/vcl_api_test.dir/vcl_api_test.cc.o"
  "CMakeFiles/vcl_api_test.dir/vcl_api_test.cc.o.d"
  "vcl_api_test"
  "vcl_api_test.pdb"
  "vcl_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
