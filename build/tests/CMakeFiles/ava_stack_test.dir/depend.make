# Empty dependencies file for ava_stack_test.
# This may be replaced when dependencies are built.
