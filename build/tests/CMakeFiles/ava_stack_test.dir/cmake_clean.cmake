file(REMOVE_RECURSE
  "CMakeFiles/ava_stack_test.dir/ava_stack_test.cc.o"
  "CMakeFiles/ava_stack_test.dir/ava_stack_test.cc.o.d"
  "ava_stack_test"
  "ava_stack_test.pdb"
  "ava_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ava_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
