# Empty compiler generated dependencies file for vcl_compiler_test.
# This may be replaced when dependencies are built.
