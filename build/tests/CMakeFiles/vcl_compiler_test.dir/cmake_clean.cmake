file(REMOVE_RECURSE
  "CMakeFiles/vcl_compiler_test.dir/vcl_compiler_test.cc.o"
  "CMakeFiles/vcl_compiler_test.dir/vcl_compiler_test.cc.o.d"
  "vcl_compiler_test"
  "vcl_compiler_test.pdb"
  "vcl_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcl_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
