file(REMOVE_RECURSE
  "CMakeFiles/mvnc_test.dir/mvnc_test.cc.o"
  "CMakeFiles/mvnc_test.dir/mvnc_test.cc.o.d"
  "mvnc_test"
  "mvnc_test.pdb"
  "mvnc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvnc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
