# Empty dependencies file for mvnc_test.
# This may be replaced when dependencies are built.
