# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/vcl_compiler_test[1]_include.cmake")
include("/root/repo/build/tests/vcl_api_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/cava_test[1]_include.cmake")
include("/root/repo/build/tests/ava_stack_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/swap_test[1]_include.cmake")
include("/root/repo/build/tests/mvnc_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/qat_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
