// Property/round-trip tests for the serialization stack: ByteWriter /
// ByteReader primitives, the marshal.h helpers generated code composes, and
// sealed wire frames. Three properties, each driven by seeded (SplitMix64)
// randomized programs:
//
//   1. Round trip: any sequence of typed writes reads back exactly.
//   2. Truncation: every strict prefix of an encoding fails with a clean
//      sticky Status — never an over-read (run under -DAVA_SANITIZE= too).
//   3. Corruption: single-bit flips anywhere in a frame either decode to
//      (possibly different) in-bounds values or fail cleanly; sealed frames
//      are rejected by the CRC check.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serial.h"
#include "src/proto/marshal.h"
#include "src/proto/wire.h"

namespace ava {
namespace {

// One randomly typed value, rememberable for the read-back comparison.
struct Op {
  enum Kind { kU8, kU16, kU32, kU64, kI32, kI64, kF64, kBool, kBlob, kString };
  Kind kind;
  std::uint64_t scalar = 0;
  double real = 0.0;
  Bytes blob;
  std::string text;
};

Op RandomOp(Rng* rng) {
  Op op;
  op.kind = static_cast<Op::Kind>(rng->NextBelow(10));
  switch (op.kind) {
    case Op::kU8:
      op.scalar = rng->NextU64() & 0xFF;
      break;
    case Op::kU16:
      op.scalar = rng->NextU64() & 0xFFFF;
      break;
    case Op::kU32:
      op.scalar = rng->NextU64() & 0xFFFFFFFF;
      break;
    case Op::kU64:
    case Op::kI32:
    case Op::kI64:
      op.scalar = rng->NextU64();
      break;
    case Op::kF64:
      op.real = static_cast<double>(rng->NextU64()) * 1e-3;
      break;
    case Op::kBool:
      op.scalar = rng->NextU64() & 1;
      break;
    case Op::kBlob: {
      op.blob.resize(rng->NextBelow(200));
      for (auto& b : op.blob) {
        b = static_cast<std::uint8_t>(rng->NextU64());
      }
      break;
    }
    case Op::kString: {
      op.text.resize(rng->NextBelow(64));
      for (auto& c : op.text) {
        c = static_cast<char>('a' + rng->NextBelow(26));
      }
      break;
    }
  }
  return op;
}

void WriteOp(ByteWriter* w, const Op& op) {
  switch (op.kind) {
    case Op::kU8:
      w->PutU8(static_cast<std::uint8_t>(op.scalar));
      break;
    case Op::kU16:
      w->PutU16(static_cast<std::uint16_t>(op.scalar));
      break;
    case Op::kU32:
      w->PutU32(static_cast<std::uint32_t>(op.scalar));
      break;
    case Op::kU64:
      w->PutU64(op.scalar);
      break;
    case Op::kI32:
      w->PutI32(static_cast<std::int32_t>(op.scalar));
      break;
    case Op::kI64:
      w->PutI64(static_cast<std::int64_t>(op.scalar));
      break;
    case Op::kF64:
      w->PutF64(op.real);
      break;
    case Op::kBool:
      w->PutBool(op.scalar != 0);
      break;
    case Op::kBlob:
      w->PutBlob(op.blob.data(), op.blob.size());
      break;
    case Op::kString:
      w->PutString(op.text);
      break;
  }
}

// Reads one op and checks the value when `verify` (full-buffer round trips);
// truncated/corrupt reads only exercise the access pattern.
void ReadOp(ByteReader* r, const Op& op, bool verify) {
  switch (op.kind) {
    case Op::kU8: {
      auto v = r->GetU8();
      if (verify) EXPECT_EQ(v, static_cast<std::uint8_t>(op.scalar));
      break;
    }
    case Op::kU16: {
      auto v = r->GetU16();
      if (verify) EXPECT_EQ(v, static_cast<std::uint16_t>(op.scalar));
      break;
    }
    case Op::kU32: {
      auto v = r->GetU32();
      if (verify) EXPECT_EQ(v, static_cast<std::uint32_t>(op.scalar));
      break;
    }
    case Op::kU64: {
      auto v = r->GetU64();
      if (verify) EXPECT_EQ(v, op.scalar);
      break;
    }
    case Op::kI32: {
      auto v = r->GetI32();
      if (verify) EXPECT_EQ(v, static_cast<std::int32_t>(op.scalar));
      break;
    }
    case Op::kI64: {
      auto v = r->GetI64();
      if (verify) EXPECT_EQ(v, static_cast<std::int64_t>(op.scalar));
      break;
    }
    case Op::kF64: {
      auto v = r->GetF64();
      if (verify) EXPECT_EQ(v, op.real);
      break;
    }
    case Op::kBool: {
      auto v = r->GetBool();
      if (verify) EXPECT_EQ(v, op.scalar != 0);
      break;
    }
    case Op::kBlob: {
      auto v = r->GetBlob();
      if (verify) EXPECT_EQ(v, op.blob);
      break;
    }
    case Op::kString: {
      auto v = r->GetString();
      if (verify) EXPECT_EQ(v, op.text);
      break;
    }
  }
}

// Copies an encoding into an exactly-sized heap allocation so that any
// over-read past the logical end trips ASan instead of silently reading
// the vector's spare capacity.
struct TightBuffer {
  explicit TightBuffer(const Bytes& src)
      : size(src.size()), data(new std::uint8_t[src.size() ? src.size() : 1]) {
    if (!src.empty()) {
      std::memcpy(data.get(), src.data(), src.size());
    }
  }
  std::size_t size;
  std::unique_ptr<std::uint8_t[]> data;
};

TEST(SerialPropertyTest, RandomProgramsRoundTripExactly) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const std::size_t count = 1 + rng.NextBelow(40);
    std::vector<Op> program;
    ByteWriter w;
    for (std::size_t i = 0; i < count; ++i) {
      program.push_back(RandomOp(&rng));
      WriteOp(&w, program.back());
    }
    TightBuffer buf(w.bytes());
    ByteReader r(buf.data.get(), buf.size);
    for (const Op& op : program) {
      ReadOp(&r, op, /*verify=*/true);
    }
    EXPECT_FALSE(r.failed()) << "seed " << seed;
    EXPECT_EQ(r.remaining(), 0u) << "seed " << seed;
    EXPECT_TRUE(r.status().ok());
  }
}

TEST(SerialPropertyTest, EveryTruncationFailsCleanlyWithoutOverread) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const std::size_t count = 1 + rng.NextBelow(12);
    std::vector<Op> program;
    ByteWriter w;
    for (std::size_t i = 0; i < count; ++i) {
      program.push_back(RandomOp(&rng));
      WriteOp(&w, program.back());
    }
    const Bytes& full = w.bytes();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      TightBuffer buf(Bytes(full.begin(), full.begin() + cut));
      ByteReader r(buf.data.get(), buf.size);
      for (const Op& op : program) {
        ReadOp(&r, op, /*verify=*/false);
      }
      // A strict prefix always cuts at least the final value short: the
      // reader must end failed (sticky), with a classified Status and a
      // remaining() that reads as zero rather than underflowing.
      EXPECT_TRUE(r.failed()) << "seed " << seed << " cut " << cut;
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
      EXPECT_EQ(r.remaining(), 0u);
    }
  }
}

TEST(SerialPropertyTest, SingleBitFlipsNeverOverread) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const std::size_t count = 1 + rng.NextBelow(10);
    std::vector<Op> program;
    ByteWriter w;
    for (std::size_t i = 0; i < count; ++i) {
      program.push_back(RandomOp(&rng));
      WriteOp(&w, program.back());
    }
    const Bytes& full = w.bytes();
    for (std::size_t bit = 0; bit < full.size() * 8; ++bit) {
      Bytes mutated = full;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      TightBuffer buf(mutated);
      ByteReader r(buf.data.get(), buf.size);
      for (const Op& op : program) {
        ReadOp(&r, op, /*verify=*/false);
      }
      // Flipping a length prefix can inflate a blob beyond the buffer; the
      // reader must classify, not over-read. Any terminal state is legal as
      // long as the Status is coherent with it.
      if (r.failed()) {
        EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
      } else {
        EXPECT_TRUE(r.status().ok());
      }
    }
  }
}

TEST(SerialPropertyTest, GetBlobIntoRejectsOversizedPayload) {
  ByteWriter w;
  const std::uint8_t payload[16] = {1, 2, 3};
  w.PutBlob(payload, sizeof(payload));
  std::uint8_t small[8] = {};
  ByteReader r(w.bytes());
  r.GetBlobInto(small, sizeof(small));
  EXPECT_TRUE(r.failed());
}

// ---------------------------------------------------------------------------
// marshal.h helpers.

TEST(MarshalPropertyTest, OptionalBytesAndOutDescRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    Bytes data(rng.NextBelow(300));
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.NextU64());
    }
    const bool present = rng.NextBool(0.7);
    const std::uint64_t capacity = rng.NextU64() & 0xFFFF;

    ByteWriter w;
    PutOptionalBytes(&w, present ? data.data() : nullptr, data.size());
    PutOutDesc(&w, present ? data.data() : nullptr, capacity);
    PutOutBytes(&w, present, data.data(), data.size());

    ByteReader r(w.bytes());
    if (present) {
      EXPECT_TRUE(r.GetBool());
      EXPECT_EQ(r.GetBlob(), data);
    } else {
      EXPECT_FALSE(r.GetBool());
    }
    OutDesc desc = GetOutDesc(&r);
    EXPECT_EQ(desc.wanted, present);
    EXPECT_EQ(desc.capacity, capacity);
    Bytes sink(data.size() + 32, 0);
    const std::size_t copied = GetOutBytes(&r, sink.data(), sink.size());
    EXPECT_EQ(copied, present ? data.size() : 0u);
    EXPECT_FALSE(r.failed());
  }
}

TEST(MarshalPropertyTest, GetOutBytesHonorsCapacity) {
  ByteWriter w;
  const std::uint8_t payload[32] = {9, 9, 9};
  PutOutBytes(&w, true, payload, sizeof(payload));
  std::uint8_t small[8] = {};
  ByteReader r(w.bytes());
  // Capacity caps the copy; the extra wire bytes are consumed, not leaked
  // into the next field.
  EXPECT_EQ(GetOutBytes(&r, small, sizeof(small)), sizeof(small));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(MarshalPropertyTest, ArenaDescRoundTripsAndRejectsTruncation) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    ArenaDesc d;
    d.arena_id = static_cast<std::uint32_t>(rng.NextU64());
    d.slot = static_cast<std::uint32_t>(rng.NextU64());
    d.length = rng.NextU64();
    d.generation = static_cast<std::uint32_t>(rng.NextU64());
    ByteWriter w;
    PutArenaDesc(&w, d);
    ASSERT_EQ(w.size(), 20u);  // the compact wire form: 4+4+8+4

    ByteReader r(w.bytes());
    ArenaDesc back = GetArenaDesc(&r);
    EXPECT_EQ(back.arena_id, d.arena_id);
    EXPECT_EQ(back.slot, d.slot);
    EXPECT_EQ(back.length, d.length);
    EXPECT_EQ(back.generation, d.generation);
    EXPECT_FALSE(r.failed());

    for (std::size_t cut = 0; cut < w.size(); ++cut) {
      TightBuffer buf(Bytes(w.bytes().begin(), w.bytes().begin() + cut));
      ByteReader tr(buf.data.get(), buf.size);
      (void)GetArenaDesc(&tr);
      EXPECT_TRUE(tr.failed()) << "cut " << cut;
    }
  }
}

// ---------------------------------------------------------------------------
// Sealed frames: random payloads survive seal/check; any single-bit flip in
// the sealed frame is rejected by the CRC.

TEST(FramePropertyTest, SealedFramesDetectEverySingleBitFlip) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    ByteWriter w = BeginCall(7, static_cast<std::uint32_t>(seed));
    Bytes payload(1 + rng.NextBelow(120));
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.NextU64());
    }
    w.PutBlob(payload.data(), payload.size());
    Bytes frame = std::move(w).TakeBytes();
    SealFrame(&frame);

    Bytes clean = frame;
    ASSERT_TRUE(CheckAndStripFrame(&clean).ok());

    for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
      Bytes mutated = frame;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_FALSE(CheckAndStripFrame(&mutated).ok())
          << "seed " << seed << " bit " << bit;
    }
  }
}

TEST(FramePropertyTest, PeekCallBulkBytesMatchesPatchedHeader) {
  ByteWriter w = BeginCall(7, 3);
  w.PutU8(kBulkArena);
  w.PatchAt<std::uint64_t>(kCallBulkBytesOffset, 123456789ull);
  Bytes frame = std::move(w).TakeBytes();
  auto peeked = PeekCallBulkBytes(frame);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(*peeked, 123456789ull);
  // Too-short frames are rejected, not over-read.
  Bytes stub(frame.begin(), frame.begin() + 8);
  EXPECT_FALSE(PeekCallBulkBytes(stub).ok());
}

}  // namespace
}  // namespace ava
