// End-to-end integration tests of the full AvA stack: CAvA-generated guest
// stubs -> GuestEndpoint -> transport -> Router (verify/rate-limit/schedule)
// -> ApiServerSession -> CAvA-generated handlers -> the VCL silo.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/proto/marshal.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "vcl_gen.h"

namespace {

using ava_gen_vcl::MakeVclApiHandler;
using ava_gen_vcl::MakeVclGuestApi;
using ava_gen_vcl::MakeVclNativeApi;
using ava_gen_vcl::VclApi;

constexpr const char* kVaddSrc =
    "__kernel void vadd(__global const float* a, __global const float* b,"
    "                   __global float* c, int n) {"
    "  int i = get_global_id(0);"
    "  if (i < n) { c[i] = a[i] + b[i]; }"
    "}";

// One guest VM attached to a router and server over a chosen transport.
struct GuestVm {
  std::shared_ptr<ava::ApiServerSession> session;
  std::shared_ptr<ava::GuestEndpoint> endpoint;
  VclApi api;
};

class StackFixture {
 public:
  explicit StackFixture(vcl::SiloConfig silo_config = {}) {
    vcl::ResetDefaultSilo(silo_config);
    router_ = std::make_unique<ava::Router>();
    router_->Start();
  }

  ~StackFixture() {
    // Endpoints close their transports; stop the router before sessions die.
    vms_.clear();
    router_->Stop();
  }

  GuestVm& AddVm(ava::VmId vm_id, ava::ChannelPair pair,
                 ava::GuestEndpoint::Options opts = {},
                 ava::VmPolicy policy = {}) {
    opts.vm_id = vm_id;
    auto vm = std::make_unique<GuestVm>();
    vm->session = std::make_shared<ava::ApiServerSession>(vm_id);
    vm->session->RegisterApi(ava_gen_vcl::kApiId, MakeVclApiHandler());
    EXPECT_TRUE(
        router_->AttachVm(vm_id, std::move(pair.host), vm->session, policy)
            .ok());
    vm->endpoint =
        std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
    vm->api = MakeVclGuestApi(vm->endpoint);
    vms_.push_back(std::move(vm));
    return *vms_.back();
  }

  GuestVm& AddInProcVm(ava::VmId vm_id, ava::GuestEndpoint::Options opts = {},
                       ava::VmPolicy policy = {}) {
    return AddVm(vm_id, ava::MakeInProcChannel(), opts, policy);
  }

  ava::Router& router() { return *router_; }

 private:
  std::unique_ptr<ava::Router> router_;
  std::vector<std::unique_ptr<GuestVm>> vms_;
};

// Runs the canonical vector-add workload through `api`; returns the result.
std::vector<float> RunVadd(const VclApi& api, int n) {
  std::vector<float> a(n), b(n), c(n, -1.0f);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(3 * i);
  }
  vcl_platform_id platform = nullptr;
  EXPECT_EQ(api.vclGetPlatformIDs(1, &platform, nullptr), VCL_SUCCESS);
  vcl_device_id device = nullptr;
  EXPECT_EQ(api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device,
                                nullptr),
            VCL_SUCCESS);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  EXPECT_EQ(err, VCL_SUCCESS);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  EXPECT_EQ(err, VCL_SUCCESS);
  vcl_mem da = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, n * 4,
                                   a.data(), &err);
  vcl_mem db = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, n * 4,
                                   b.data(), &err);
  vcl_mem dc = api.vclCreateBuffer(ctx, VCL_MEM_READ_WRITE, n * 4, nullptr,
                                   &err);
  EXPECT_EQ(err, VCL_SUCCESS);
  vcl_program prog = api.vclCreateProgramWithSource(ctx, kVaddSrc, &err);
  EXPECT_EQ(err, VCL_SUCCESS);
  EXPECT_EQ(api.vclBuildProgram(prog, nullptr), VCL_SUCCESS);
  vcl_kernel kernel = api.vclCreateKernel(prog, "vadd", &err);
  EXPECT_EQ(err, VCL_SUCCESS);
  EXPECT_EQ(api.vclSetKernelArgBuffer(kernel, 0, da), VCL_SUCCESS);
  EXPECT_EQ(api.vclSetKernelArgBuffer(kernel, 1, db), VCL_SUCCESS);
  EXPECT_EQ(api.vclSetKernelArgBuffer(kernel, 2, dc), VCL_SUCCESS);
  EXPECT_EQ(api.vclSetKernelArgScalar(kernel, 3, sizeof(int), &n),
            VCL_SUCCESS);
  size_t global = n;
  EXPECT_EQ(api.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                        nullptr, 0, nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(api.vclEnqueueReadBuffer(queue, dc, VCL_TRUE, 0, n * 4, c.data(),
                                     0, nullptr, nullptr),
            VCL_SUCCESS);
  api.vclReleaseKernel(kernel);
  api.vclReleaseProgram(prog);
  api.vclReleaseMemObject(da);
  api.vclReleaseMemObject(db);
  api.vclReleaseMemObject(dc);
  api.vclReleaseCommandQueue(queue);
  api.vclReleaseContext(ctx);
  return c;
}

TEST(AvaStackTest, NativeVadd) {
  vcl::ResetDefaultSilo({});
  VclApi api = MakeVclNativeApi();
  auto c = RunVadd(api, 256);
  for (int i = 0; i < 256; ++i) {
    ASSERT_FLOAT_EQ(c[i], 4.0f * i);
  }
}

TEST(AvaStackTest, RemotedVaddMatchesNative) {
  StackFixture stack;
  GuestVm& vm = stack.AddInProcVm(1);
  auto c = RunVadd(vm.api, 512);
  for (int i = 0; i < 512; ++i) {
    ASSERT_FLOAT_EQ(c[i], 4.0f * i) << "at " << i;
  }
  // Async calls actually flowed: SetKernelArg*/Release* are async-annotated.
  EXPECT_GT(vm.endpoint->stats().async_calls, 0u);
  EXPECT_GT(vm.endpoint->stats().sync_calls, 0u);
  EXPECT_EQ(vm.endpoint->ConsumeAsyncError(), 0);
}

TEST(AvaStackTest, RemotedOverShmRing) {
  StackFixture stack;
  auto channel = ava::MakeShmRingChannel(1u << 16);  // small ring: streaming
  ASSERT_TRUE(channel.ok());
  GuestVm& vm = stack.AddVm(1, std::move(*channel));
  auto c = RunVadd(vm.api, 300);
  for (int i = 0; i < 300; ++i) {
    ASSERT_FLOAT_EQ(c[i], 4.0f * i);
  }
}

TEST(AvaStackTest, RemotedOverSocketPair) {
  StackFixture stack;
  auto channel = ava::MakeSocketPairChannel();
  ASSERT_TRUE(channel.ok());
  GuestVm& vm = stack.AddVm(1, std::move(*channel));
  auto c = RunVadd(vm.api, 128);
  for (int i = 0; i < 128; ++i) {
    ASSERT_FLOAT_EQ(c[i], 4.0f * i);
  }
}

TEST(AvaStackTest, ForceSyncModeStillCorrect) {
  StackFixture stack;
  ava::GuestEndpoint::Options opts;
  opts.force_sync = true;  // the §5 "unoptimized specification" ablation
  GuestVm& vm = stack.AddInProcVm(1, opts);
  auto c = RunVadd(vm.api, 200);
  for (int i = 0; i < 200; ++i) {
    ASSERT_FLOAT_EQ(c[i], 4.0f * i);
  }
  EXPECT_EQ(vm.endpoint->stats().async_calls, 0u);
}

TEST(AvaStackTest, BatchingModeStillCorrect) {
  StackFixture stack;
  ava::GuestEndpoint::Options opts;
  opts.batch_max_calls = 16;
  GuestVm& vm = stack.AddInProcVm(1, opts);
  auto c = RunVadd(vm.api, 200);
  for (int i = 0; i < 200; ++i) {
    ASSERT_FLOAT_EQ(c[i], 4.0f * i);
  }
  // Batching shrinks the number of transport messages below the call count.
  auto s = vm.endpoint->stats();
  EXPECT_LT(s.messages_sent, s.sync_calls + s.async_calls);
}

TEST(AvaStackTest, DeviceInfoStringsCrossTheWire) {
  StackFixture stack;
  GuestVm& vm = stack.AddInProcVm(1);
  vcl_platform_id platform = nullptr;
  ASSERT_EQ(vm.api.vclGetPlatformIDs(1, &platform, nullptr), VCL_SUCCESS);
  char name[64] = {0};
  size_t name_size = 0;
  ASSERT_EQ(vm.api.vclGetPlatformInfo(platform, VCL_PLATFORM_NAME,
                                      sizeof(name), name, &name_size),
            VCL_SUCCESS);
  EXPECT_EQ(std::string(name), "AvA VCL Platform");
  EXPECT_EQ(name_size, std::string("AvA VCL Platform").size() + 1);
  vcl_device_id device = nullptr;
  ASSERT_EQ(vm.api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_ALL, 1, &device,
                                   nullptr),
            VCL_SUCCESS);
  vcl_ulong mem = 0;
  ASSERT_EQ(vm.api.vclGetDeviceInfo(device, VCL_DEVICE_GLOBAL_MEM_SIZE,
                                    sizeof(mem), &mem, nullptr),
            VCL_SUCCESS);
  EXPECT_GT(mem, 0u);
}

TEST(AvaStackTest, NonBlockingReadDeliversViaShadowBuffer) {
  StackFixture stack;
  GuestVm& vm = stack.AddInProcVm(1);
  const VclApi& api = vm.api;
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  std::vector<std::uint32_t> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint32_t>(i * 13);
  }
  vcl_mem buf = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, 1024,
                                    data.data(), &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  std::vector<std::uint32_t> readback(256, 0);
  // Non-blocking read, no event: forwarded asynchronously; the data arrives
  // as a shadow-buffer update on the next synchronous reply.
  ASSERT_EQ(api.vclEnqueueReadBuffer(queue, buf, VCL_FALSE, 0, 1024,
                                     readback.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  ASSERT_EQ(api.vclFinish(queue), VCL_SUCCESS);
  EXPECT_EQ(readback, data);
  EXPECT_GE(vm.endpoint->stats().shadow_updates, 1u);
  api.vclReleaseMemObject(buf);
  api.vclReleaseCommandQueue(queue);
  api.vclReleaseContext(ctx);
}

TEST(AvaStackTest, AsyncErrorIsLatchedAndDeliveredLater) {
  StackFixture stack;
  GuestVm& vm = stack.AddInProcVm(1);
  const VclApi& api = vm.api;
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);  // sync: establishes session
  // Async release of a handle this VM never created: the server cannot
  // report it synchronously (§4.2); it is latched...
  vcl_mem bogus = ava::WireToHandle<vcl_mem>(0x12345);
  EXPECT_EQ(api.vclReleaseMemObject(bogus), VCL_SUCCESS);  // async "success"
  // ...and surfaces after the next synchronous call.
  vcl_uint n = 0;
  EXPECT_EQ(api.vclGetPlatformIDs(0, nullptr, &n), VCL_SUCCESS);
  EXPECT_NE(vm.endpoint->ConsumeAsyncError(), 0);
}

TEST(AvaStackTest, CrossVmHandleIsolation) {
  StackFixture stack;
  GuestVm& vm1 = stack.AddInProcVm(1);
  GuestVm& vm2 = stack.AddInProcVm(2);
  // VM1 creates a context.
  vcl_platform_id platform = nullptr;
  vm1.api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  vm1.api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx1 = vm1.api.vclCreateContext(&device, 1, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  ASSERT_NE(ctx1, nullptr);
  // VM2 attempts to use VM1's wire handle: rejected by VM2's registry.
  vcl_int err2 = VCL_SUCCESS;
  vcl_mem stolen = vm2.api.vclCreateBuffer(ctx1, 0, 64, nullptr, &err2);
  EXPECT_EQ(stolen, nullptr);
  vm1.api.vclReleaseContext(ctx1);
}

TEST(AvaStackTest, RouterCountsAndCostAccounting) {
  StackFixture stack;
  GuestVm& vm = stack.AddInProcVm(7);
  RunVadd(vm.api, 128);
  auto stats = stack.router().StatsFor(7);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->calls_forwarded, 10u);
  EXPECT_GT(stats->bytes_received, 1000u);
  EXPECT_GT(stats->cost_vns, 0);  // consumes(...) annotations flowed through
  EXPECT_EQ(stats->calls_rejected, 0u);
}

TEST(AvaStackTest, RateLimitThrottlesCallStream) {
  StackFixture stack;
  ava::VmPolicy policy;
  policy.calls_per_sec = 200.0;
  GuestVm& vm = stack.AddInProcVm(1, {}, policy);
  vcl_platform_id platform = nullptr;
  vm.api.vclGetPlatformIDs(1, &platform, nullptr);
  ava::Stopwatch watch;
  // Burst is 200 tokens; issue ~400 calls => at least ~1s of throttling.
  for (int i = 0; i < 400; ++i) {
    vcl_uint n = 0;
    vm.api.vclGetPlatformIDs(0, nullptr, &n);
  }
  EXPECT_GT(watch.ElapsedSeconds(), 0.8);
  auto stats = stack.router().StatsFor(1);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->rate_limit_wait_ns, 0);
}

TEST(AvaStackTest, SessionRegistryTracksLiveObjects) {
  StackFixture stack;
  GuestVm& vm = stack.AddInProcVm(1);
  const VclApi& api = vm.api;
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  const std::size_t base = vm.session->registry().LiveCount();
  vcl_mem buf = api.vclCreateBuffer(ctx, 0, 256, nullptr, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  EXPECT_EQ(vm.session->registry().LiveCount(), base + 1);
  api.vclReleaseMemObject(buf);
  api.vclFinish(nullptr);  // harmless sync to drain async release
  // Releasing drops the entry (async call already executed by FIFO order).
  vcl_uint n = 0;
  api.vclGetPlatformIDs(0, nullptr, &n);  // one more sync round trip
  EXPECT_EQ(vm.session->registry().LiveCount(), base);
  api.vclReleaseContext(ctx);
}

}  // namespace

namespace {

// Consolidation stress: four VMs run full workloads concurrently against
// one silo; every VM's results stay correct and isolated.
TEST(AvaStackTest, FourVmsConcurrently) {
  StackFixture stack;
  std::vector<GuestVm*> vms;
  for (ava::VmId id = 1; id <= 4; ++id) {
    vms.push_back(&stack.AddInProcVm(id));
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      auto c = RunVadd(vms[static_cast<std::size_t>(i)]->api, 256 + i * 16);
      for (std::size_t j = 0; j < c.size(); ++j) {
        if (c[j] != 4.0f * static_cast<float>(j)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (ava::VmId id = 1; id <= 4; ++id) {
    auto stats = stack.router().StatsFor(id);
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(stats->calls_forwarded, 10u);
    EXPECT_EQ(stats->calls_rejected, 0u);
  }
}

}  // namespace
