// Unit tests for src/obs: histogram percentile math, registry aggregation,
// concurrent counter updates, trace-context propagation through the wire
// format, and chrome-trace emission/validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/trace_check.h"
#include "src/proto/wire.h"

namespace ava {
namespace {

// ------------------------------ histograms ---------------------------------

TEST(HistogramTest, EmptyReportsZeros) {
  obs::Histogram h;
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleSampleIsExactAtEveryPercentile) {
  obs::Histogram h;
  h.Record(12345);
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 12345);
  EXPECT_EQ(snap.max, 12345);
  for (double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(snap.Percentile(p), 12345.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(snap.Mean(), 12345.0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds v <= 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::Histogram::BucketFor(-5), 0);
  EXPECT_EQ(obs::Histogram::BucketFor(0), 0);
  EXPECT_EQ(obs::Histogram::BucketFor(1), 1);
  EXPECT_EQ(obs::Histogram::BucketFor(2), 2);
  EXPECT_EQ(obs::Histogram::BucketFor(3), 2);
  EXPECT_EQ(obs::Histogram::BucketFor(4), 3);
  EXPECT_EQ(obs::Histogram::BucketFor(1023), 10);
  EXPECT_EQ(obs::Histogram::BucketFor(1024), 11);
  EXPECT_EQ(obs::Histogram::BucketFor(std::numeric_limits<std::int64_t>::max()),
            obs::kHistogramBuckets - 1);
  for (int b = 1; b < obs::kHistogramBuckets - 1; ++b) {
    EXPECT_EQ(obs::Histogram::BucketFor(obs::Histogram::BucketLow(b)), b);
    EXPECT_EQ(obs::Histogram::BucketFor(obs::Histogram::BucketHigh(b)), b);
  }
}

TEST(HistogramTest, PercentilesAreMonotoneAndBounded) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i);
  }
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  double prev = 0.0;
  for (double p : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    const double v = snap.Percentile(p);
    EXPECT_GE(v, static_cast<double>(snap.min));
    EXPECT_LE(v, static_cast<double>(snap.max));
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  // With power-of-two buckets the p50 must land inside the bucket holding
  // the true median (512 -> [512, 1023]), and p100 is the exact max.
  EXPECT_GE(snap.Percentile(50), 256.0);
  EXPECT_LE(snap.Percentile(50), 1023.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 1000.0);
}

TEST(HistogramTest, TailSampleDominatesHighPercentilesOnly) {
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.Record(10);
  }
  h.Record(1000000);
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_LT(snap.Percentile(50), 16.0);   // inside 10's bucket [8, 15]
  EXPECT_LT(snap.Percentile(99), 16.0);   // rank 99 is still a 10
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 1000000.0);
}

TEST(HistogramTest, MergeCombinesCountsAndRange) {
  obs::Histogram a;
  obs::Histogram b;
  a.Record(4);
  b.Record(400);
  obs::HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.min, 4);
  EXPECT_EQ(merged.max, 400);
  EXPECT_EQ(merged.sum, 404);
}

// ------------------------------ registry -----------------------------------

TEST(MetricRegistryTest, ConcurrentCounterIncrements) {
  auto counter = obs::NewCounter("obs_test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricRegistryTest, SameNameCellsStayPerInstanceButAggregateInDump) {
  auto a = obs::NewCounter("obs_test.shared_name");
  auto b = obs::NewCounter("obs_test.shared_name");
  a->Increment(3);
  b->Increment(4);
  // Distinct cells: per-owner values are exact.
  EXPECT_EQ(a->Value(), 3u);
  EXPECT_EQ(b->Value(), 4u);
  // The dump aggregates live cells by name.
  const std::string dump = obs::MetricRegistry::Default().Dump();
  EXPECT_NE(dump.find("obs_test.shared_name = 7"), std::string::npos) << dump;
}

TEST(MetricRegistryTest, GaugeSetAndAdd) {
  auto gauge = obs::NewGauge("obs_test.gauge");
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 7);
}

TEST(MetricRegistryTest, DeadCellsFoldIntoRetiredAggregate) {
  {
    auto counter = obs::NewCounter("obs_test.retired_counter");
    counter->Increment(41);
    auto histogram = obs::NewHistogram("obs_test.retired_histogram");
    histogram->Record(1000);
  }  // owners destroyed — values must survive in the dump
  auto counter = obs::NewCounter("obs_test.retired_counter");
  counter->Increment(1);
  const std::string dump = obs::MetricRegistry::Default().Dump();
  EXPECT_NE(dump.find("obs_test.retired_counter = 42"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("obs_test.retired_histogram count=1"),
            std::string::npos)
      << dump;
}

TEST(MetricRegistryTest, SamplingFlagToggles) {
  const bool initial = obs::SamplingEnabled();
  obs::SetSamplingEnabled(true);
  EXPECT_TRUE(obs::SamplingEnabled());
  obs::SetSamplingEnabled(false);
  EXPECT_FALSE(obs::SamplingEnabled());
  obs::SetSamplingEnabled(initial);
}

// --------------------- trace context on the wire ---------------------------

TEST(TraceWireTest, CallTraceFieldsRoundTrip) {
  CallHeader header;
  header.api_id = 7;
  header.func_id = 42;
  Bytes message = EncodeCall(header, {1, 2, 3});
  PatchCallIdentity(&message, /*call_id=*/9, /*vm_id=*/5, /*flags=*/0);
  PatchCallTrace(&message, /*trace_id=*/0xABCDEF, /*t_send_ns=*/777);

  auto decoded = DecodeCall(message);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.call_id, 9u);
  EXPECT_EQ(decoded->header.vm_id, 5u);
  EXPECT_EQ(decoded->header.trace_id, 0xABCDEFu);
  EXPECT_EQ(decoded->header.t_send_ns, 777);
  ASSERT_EQ(decoded->payload.size(), 3u);
}

TEST(TraceWireTest, ReplyTraceFieldsRoundTripWithRouterPatch) {
  ReplyHeader header;
  header.call_id = 11;
  header.vm_id = 5;
  header.trace_id = 0x1234;
  header.t_exec_start_ns = 300;
  header.t_exec_end_ns = 400;
  ReplyBuilder builder(header);
  builder.SetPayload({9});
  builder.SetCost(55);
  Bytes message = std::move(builder).Finish();

  auto peeked = PeekReplyTraceId(message);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(*peeked, 0x1234u);

  // The router back-patches its hops into the encoded reply.
  PatchReplyRouterTrace(&message, /*t_rx_ns=*/100, /*t_dispatch_ns=*/200);

  auto decoded = DecodeReply(message);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.trace_id, 0x1234u);
  EXPECT_EQ(decoded->header.t_rx_ns, 100);
  EXPECT_EQ(decoded->header.t_dispatch_ns, 200);
  EXPECT_EQ(decoded->header.t_exec_start_ns, 300);
  EXPECT_EQ(decoded->header.t_exec_end_ns, 400);
  EXPECT_EQ(decoded->header.cost_vns, 55);
}

TEST(TraceWireTest, PatchHelpersIgnoreShortOrForeignMessages) {
  Bytes tiny = {2, 0};
  PatchCallTrace(&tiny, 1, 1);  // must not write out of bounds
  PatchReplyRouterTrace(&tiny, 1, 2);
  EXPECT_FALSE(PeekReplyTraceId(tiny).ok());
  Bytes call = EncodeCall(CallHeader{}, {});
  EXPECT_FALSE(PeekReplyTraceId(call).ok());  // not a reply
}

TEST(TraceWireTest, UntracedCallCarriesZeroTraceContext) {
  Bytes message = EncodeCall(CallHeader{}, {});
  auto decoded = DecodeCall(message);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.trace_id, 0u);
  EXPECT_EQ(decoded->header.t_send_ns, 0);
}

// ----------------------------- tracer / JSON -------------------------------

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(obs::ParseJson("{} trailing").ok());
  EXPECT_FALSE(obs::ParseJson("\"unterminated").ok());
  auto ok = obs::ParseJson(R"({"a": [1, -2.5e3, true, null, "s\n"]})");
  ASSERT_TRUE(ok.ok());
  const obs::JsonValue* a = ok->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->array.size(), 5u);
  EXPECT_DOUBLE_EQ(a->array[1].number, -2500.0);
}

TEST(TracerTest, SerializedSpansPassTheChromeTraceCheck) {
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.EnableForTest();  // no output path: flush-at-exit is a no-op
  tracer.Clear();

  const std::uint64_t id = tracer.NextTraceId();
  EXPECT_NE(id, 0u);
  tracer.RecordSpan(obs::TraceLane::kRouter, "router.queue", /*vm_id=*/1, id,
                    200, 250, {{"queue_wait_ns", 50}});
  tracer.RecordSpan(obs::TraceLane::kServer, "server.exec", /*vm_id=*/1, id,
                    260, 330, {{"func_id", 4}, {"async", 0}});
  tracer.RecordSpan(obs::TraceLane::kGuest, "call.sync", /*vm_id=*/1, id, 100,
                    400,
                    {{"t_send_ns", 100},
                     {"t_rx_ns", 200},
                     {"t_dispatch_ns", 250},
                     {"t_exec_start_ns", 260},
                     {"t_exec_end_ns", 330},
                     {"t_wake_ns", 400},
                     {"call_id", 1},
                     {"cost_vns", 70}});
  EXPECT_EQ(tracer.event_count(), 3u);

  const std::string json = tracer.SerializeJson();
  auto report = obs::CheckChromeTrace(json, /*min_hops=*/5);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->guest_spans, 1u);
  EXPECT_EQ(report->complete_spans, 1u);
  EXPECT_EQ(report->router_spans, 1u);
  EXPECT_EQ(report->server_spans, 1u);
  tracer.Clear();
}

TEST(TracerTest, IncompleteGuestSpanIsCountedButNotComplete) {
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.EnableForTest();
  tracer.Clear();
  const std::uint64_t id = tracer.NextTraceId();
  // Hops collapse to two distinct values and there is no router/server span.
  tracer.RecordSpan(obs::TraceLane::kGuest, "call.sync", 1, id, 100, 400,
                    {{"t_send_ns", 100},
                     {"t_rx_ns", 100},
                     {"t_dispatch_ns", 100},
                     {"t_exec_start_ns", 100},
                     {"t_exec_end_ns", 100},
                     {"t_wake_ns", 400}});
  auto report = obs::CheckChromeTrace(tracer.SerializeJson(), 5);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->guest_spans, 1u);
  EXPECT_EQ(report->complete_spans, 0u);
  tracer.Clear();
}

}  // namespace
}  // namespace ava
