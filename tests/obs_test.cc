// Unit tests for src/obs: histogram percentile math, registry aggregation,
// concurrent counter updates, trace-context propagation through the wire
// format, chrome-trace emission/validation, and the introspection plane
// (metrics snapshots, admin channel framing, flight recorder, ledger).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/admin.h"
#include "src/obs/flight.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/trace_check.h"
#include "src/proto/wire.h"

namespace ava {
namespace {

// ------------------------------ histograms ---------------------------------

TEST(HistogramTest, EmptyReportsZeros) {
  obs::Histogram h;
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleSampleIsExactAtEveryPercentile) {
  obs::Histogram h;
  h.Record(12345);
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 12345);
  EXPECT_EQ(snap.max, 12345);
  for (double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(snap.Percentile(p), 12345.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(snap.Mean(), 12345.0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds v <= 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::Histogram::BucketFor(-5), 0);
  EXPECT_EQ(obs::Histogram::BucketFor(0), 0);
  EXPECT_EQ(obs::Histogram::BucketFor(1), 1);
  EXPECT_EQ(obs::Histogram::BucketFor(2), 2);
  EXPECT_EQ(obs::Histogram::BucketFor(3), 2);
  EXPECT_EQ(obs::Histogram::BucketFor(4), 3);
  EXPECT_EQ(obs::Histogram::BucketFor(1023), 10);
  EXPECT_EQ(obs::Histogram::BucketFor(1024), 11);
  EXPECT_EQ(obs::Histogram::BucketFor(std::numeric_limits<std::int64_t>::max()),
            obs::kHistogramBuckets - 1);
  for (int b = 1; b < obs::kHistogramBuckets - 1; ++b) {
    EXPECT_EQ(obs::Histogram::BucketFor(obs::Histogram::BucketLow(b)), b);
    EXPECT_EQ(obs::Histogram::BucketFor(obs::Histogram::BucketHigh(b)), b);
  }
}

TEST(HistogramTest, PercentilesAreMonotoneAndBounded) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i);
  }
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  double prev = 0.0;
  for (double p : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0}) {
    const double v = snap.Percentile(p);
    EXPECT_GE(v, static_cast<double>(snap.min));
    EXPECT_LE(v, static_cast<double>(snap.max));
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  // With power-of-two buckets the p50 must land inside the bucket holding
  // the true median (512 -> [512, 1023]), and p100 is the exact max.
  EXPECT_GE(snap.Percentile(50), 256.0);
  EXPECT_LE(snap.Percentile(50), 1023.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 1000.0);
}

TEST(HistogramTest, TailSampleDominatesHighPercentilesOnly) {
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.Record(10);
  }
  h.Record(1000000);
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_LT(snap.Percentile(50), 16.0);   // inside 10's bucket [8, 15]
  EXPECT_LT(snap.Percentile(99), 16.0);   // rank 99 is still a 10
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 1000000.0);
}

TEST(HistogramTest, MergeCombinesCountsAndRange) {
  obs::Histogram a;
  obs::Histogram b;
  a.Record(4);
  b.Record(400);
  obs::HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.min, 4);
  EXPECT_EQ(merged.max, 400);
  EXPECT_EQ(merged.sum, 404);
}

// ------------------------------ registry -----------------------------------

TEST(MetricRegistryTest, ConcurrentCounterIncrements) {
  auto counter = obs::NewCounter("obs_test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricRegistryTest, SameNameCellsStayPerInstanceButAggregateInDump) {
  auto a = obs::NewCounter("obs_test.shared_name");
  auto b = obs::NewCounter("obs_test.shared_name");
  a->Increment(3);
  b->Increment(4);
  // Distinct cells: per-owner values are exact.
  EXPECT_EQ(a->Value(), 3u);
  EXPECT_EQ(b->Value(), 4u);
  // The dump aggregates live cells by name.
  const std::string dump = obs::MetricRegistry::Default().Dump();
  EXPECT_NE(dump.find("obs_test.shared_name = 7"), std::string::npos) << dump;
}

TEST(MetricRegistryTest, GaugeSetAndAdd) {
  auto gauge = obs::NewGauge("obs_test.gauge");
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 7);
}

TEST(MetricRegistryTest, DeadCellsFoldIntoRetiredAggregate) {
  {
    auto counter = obs::NewCounter("obs_test.retired_counter");
    counter->Increment(41);
    auto histogram = obs::NewHistogram("obs_test.retired_histogram");
    histogram->Record(1000);
  }  // owners destroyed — values must survive in the dump
  auto counter = obs::NewCounter("obs_test.retired_counter");
  counter->Increment(1);
  const std::string dump = obs::MetricRegistry::Default().Dump();
  EXPECT_NE(dump.find("obs_test.retired_counter = 42"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("obs_test.retired_histogram count=1"),
            std::string::npos)
      << dump;
}

TEST(MetricRegistryTest, SamplingFlagToggles) {
  const bool initial = obs::SamplingEnabled();
  obs::SetSamplingEnabled(true);
  EXPECT_TRUE(obs::SamplingEnabled());
  obs::SetSamplingEnabled(false);
  EXPECT_FALSE(obs::SamplingEnabled());
  obs::SetSamplingEnabled(initial);
}

// --------------------- trace context on the wire ---------------------------

TEST(TraceWireTest, CallTraceFieldsRoundTrip) {
  CallHeader header;
  header.api_id = 7;
  header.func_id = 42;
  Bytes message = EncodeCall(header, {1, 2, 3});
  PatchCallIdentity(&message, /*call_id=*/9, /*vm_id=*/5, /*flags=*/0);
  PatchCallTrace(&message, /*trace_id=*/0xABCDEF, /*t_send_ns=*/777);

  auto decoded = DecodeCall(message);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.call_id, 9u);
  EXPECT_EQ(decoded->header.vm_id, 5u);
  EXPECT_EQ(decoded->header.trace_id, 0xABCDEFu);
  EXPECT_EQ(decoded->header.t_send_ns, 777);
  ASSERT_EQ(decoded->payload.size(), 3u);
}

TEST(TraceWireTest, ReplyTraceFieldsRoundTripWithRouterPatch) {
  ReplyHeader header;
  header.call_id = 11;
  header.vm_id = 5;
  header.trace_id = 0x1234;
  header.t_exec_start_ns = 300;
  header.t_exec_end_ns = 400;
  ReplyBuilder builder(header);
  builder.SetPayload({9});
  builder.SetCost(55);
  Bytes message = std::move(builder).Finish();

  auto peeked = PeekReplyTraceId(message);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(*peeked, 0x1234u);

  // The router back-patches its hops into the encoded reply.
  PatchReplyRouterTrace(&message, /*t_rx_ns=*/100, /*t_dispatch_ns=*/200);

  auto decoded = DecodeReply(message);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.trace_id, 0x1234u);
  EXPECT_EQ(decoded->header.t_rx_ns, 100);
  EXPECT_EQ(decoded->header.t_dispatch_ns, 200);
  EXPECT_EQ(decoded->header.t_exec_start_ns, 300);
  EXPECT_EQ(decoded->header.t_exec_end_ns, 400);
  EXPECT_EQ(decoded->header.cost_vns, 55);
}

TEST(TraceWireTest, PatchHelpersIgnoreShortOrForeignMessages) {
  Bytes tiny = {2, 0};
  PatchCallTrace(&tiny, 1, 1);  // must not write out of bounds
  PatchReplyRouterTrace(&tiny, 1, 2);
  EXPECT_FALSE(PeekReplyTraceId(tiny).ok());
  Bytes call = EncodeCall(CallHeader{}, {});
  EXPECT_FALSE(PeekReplyTraceId(call).ok());  // not a reply
}

TEST(TraceWireTest, UntracedCallCarriesZeroTraceContext) {
  Bytes message = EncodeCall(CallHeader{}, {});
  auto decoded = DecodeCall(message);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.trace_id, 0u);
  EXPECT_EQ(decoded->header.t_send_ns, 0);
}

// ----------------------------- tracer / JSON -------------------------------

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(obs::ParseJson("{} trailing").ok());
  EXPECT_FALSE(obs::ParseJson("\"unterminated").ok());
  auto ok = obs::ParseJson(R"({"a": [1, -2.5e3, true, null, "s\n"]})");
  ASSERT_TRUE(ok.ok());
  const obs::JsonValue* a = ok->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->array.size(), 5u);
  EXPECT_DOUBLE_EQ(a->array[1].number, -2500.0);
}

TEST(TracerTest, SerializedSpansPassTheChromeTraceCheck) {
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.EnableForTest();  // no output path: flush-at-exit is a no-op
  tracer.Clear();

  const std::uint64_t id = tracer.NextTraceId();
  EXPECT_NE(id, 0u);
  tracer.RecordSpan(obs::TraceLane::kRouter, "router.queue", /*vm_id=*/1, id,
                    200, 250, {{"queue_wait_ns", 50}});
  tracer.RecordSpan(obs::TraceLane::kServer, "server.exec", /*vm_id=*/1, id,
                    260, 330, {{"func_id", 4}, {"async", 0}});
  tracer.RecordSpan(obs::TraceLane::kGuest, "call.sync", /*vm_id=*/1, id, 100,
                    400,
                    {{"t_send_ns", 100},
                     {"t_rx_ns", 200},
                     {"t_dispatch_ns", 250},
                     {"t_exec_start_ns", 260},
                     {"t_exec_end_ns", 330},
                     {"t_wake_ns", 400},
                     {"call_id", 1},
                     {"cost_vns", 70}});
  EXPECT_EQ(tracer.event_count(), 3u);

  const std::string json = tracer.SerializeJson();
  auto report = obs::CheckChromeTrace(json, /*min_hops=*/5);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->guest_spans, 1u);
  EXPECT_EQ(report->complete_spans, 1u);
  EXPECT_EQ(report->router_spans, 1u);
  EXPECT_EQ(report->server_spans, 1u);
  tracer.Clear();
}

TEST(TracerTest, IncompleteGuestSpanIsCountedButNotComplete) {
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.EnableForTest();
  tracer.Clear();
  const std::uint64_t id = tracer.NextTraceId();
  // Hops collapse to two distinct values and there is no router/server span.
  tracer.RecordSpan(obs::TraceLane::kGuest, "call.sync", 1, id, 100, 400,
                    {{"t_send_ns", 100},
                     {"t_rx_ns", 100},
                     {"t_dispatch_ns", 100},
                     {"t_exec_start_ns", 100},
                     {"t_exec_end_ns", 100},
                     {"t_wake_ns", 400}});
  auto report = obs::CheckChromeTrace(tracer.SerializeJson(), 5);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->guest_spans, 1u);
  EXPECT_EQ(report->complete_spans, 0u);
  tracer.Clear();
}

// --------------------------- metrics snapshot ------------------------------

TEST(MetricsSnapshotTest, EntriesAreDeterministicallyNameSorted) {
  // Register in shuffled order; the snapshot must come back name-sorted and
  // identical across repeated takes (stable operator text for diffing).
  auto z = obs::NewCounter("obs_test.sort.zz");
  auto a = obs::NewCounter("obs_test.sort.aa");
  auto m = obs::NewGauge("obs_test.sort.mm");
  auto h = obs::NewHistogram("obs_test.sort.hh");
  z->Increment(1);
  a->Increment(2);
  m->Set(3);
  h->Record(4);

  const obs::MetricsSnapshot snap = obs::MetricRegistry::Default().Snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.entries.begin(), snap.entries.end(),
      [](const obs::MetricsSnapshot::Entry& x,
         const obs::MetricsSnapshot::Entry& y) { return x.name < y.name; }));

  const obs::MetricsSnapshot::Entry* aa = snap.Find("obs_test.sort.aa");
  ASSERT_NE(aa, nullptr);
  EXPECT_TRUE(aa->has_counter);
  EXPECT_EQ(aa->counter_sum, 2u);
  const obs::MetricsSnapshot::Entry* mm = snap.Find("obs_test.sort.mm");
  ASSERT_NE(mm, nullptr);
  EXPECT_TRUE(mm->has_gauge);
  EXPECT_EQ(mm->gauge_sum, 3);
  EXPECT_EQ(snap.Find("obs_test.sort.nope"), nullptr);

  // Determinism: two takes with no updates in between render byte-identical.
  EXPECT_EQ(snap.HumanText(),
            obs::MetricRegistry::Default().Snapshot().HumanText());
  // Dump() is the human rendering of the same snapshot.
  EXPECT_EQ(obs::MetricRegistry::Default().Dump(),
            obs::MetricRegistry::Default().Snapshot().HumanText());
}

TEST(MetricsSnapshotTest, PrometheusTextRendersAllCellKinds) {
  auto c = obs::NewCounter("obs_test.prom.counter");
  auto g = obs::NewGauge("obs_test.prom-gauge");  // '-' must sanitize to '_'
  auto h = obs::NewHistogram("obs_test.prom.hist");
  c->Increment(5);
  g->Set(-7);
  for (int i = 1; i <= 100; ++i) {
    h->Record(i);
  }
  const std::string text =
      obs::MetricRegistry::Default().Snapshot().PrometheusText();
  EXPECT_NE(text.find("# TYPE ava_obs_test_prom_counter counter\n"
                      "ava_obs_test_prom_counter 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE ava_obs_test_prom_gauge gauge\n"
                      "ava_obs_test_prom_gauge -7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE ava_obs_test_prom_hist summary\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ava_obs_test_prom_hist{quantile=\"0.5\"} "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ava_obs_test_prom_hist{quantile=\"0.99\"} "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ava_obs_test_prom_hist_sum 5050\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("ava_obs_test_prom_hist_count 100\n"),
            std::string::npos)
      << text;
}

// ----------------------------- flight recorder -----------------------------

TEST(FlightRecorderTest, RingKeepsLastDepthRecordsInTicketOrder) {
  obs::FlightRecorder ring(64);
  EXPECT_EQ(ring.depth(), 64u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ring.RecordEvent(obs::FlightKind::kEvent, /*vm_id=*/7, /*trace_id=*/i,
                     /*call_id=*/i, /*arg=*/i * 3, /*code=*/2);
  }
  EXPECT_EQ(ring.records_written(), 100u);
  const auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 64u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const obs::FlightRecord& r = snap[i];
    EXPECT_EQ(r.ticket, 36 + i);  // the oldest 36 were overwritten
    EXPECT_EQ(r.call_id, r.ticket);
    EXPECT_EQ(r.trace_id, r.ticket);
    EXPECT_EQ(r.arg, r.ticket * 3);
    EXPECT_EQ(r.vm_id, 7u);
    EXPECT_EQ(r.kind, static_cast<std::uint16_t>(obs::FlightKind::kEvent));
    EXPECT_EQ(r.code, 2u);
    EXPECT_GT(r.t_ns, 0u);
  }
}

TEST(FlightRecorderTest, DumpParseRoundTripAndRendering) {
  obs::FlightRecorder ring(64);
  ring.RecordEvent(obs::FlightKind::kExecBegin, 1, 0xAB, 9,
                   (std::uint64_t{7} << 32) | 42, 0);
  ring.RecordEvent(obs::FlightKind::kExecEnd, 1, 0xAB, 9, 1234, 0);

  const std::string path =
      "/tmp/ava_obs_flight_test." + std::to_string(::getpid()) + ".bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(ring.DumpToFd(fileno(f)));
    std::fclose(f);
  }
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  ::unlink(path.c_str());
  ASSERT_EQ(bytes.size(), 24u + ring.depth() * sizeof(obs::FlightRecord));

  std::vector<obs::FlightRecord> parsed;
  ASSERT_TRUE(obs::ParseFlightDump(bytes, &parsed));
  ASSERT_EQ(parsed.size(), 2u);  // empty slots dropped
  EXPECT_EQ(parsed[0].kind,
            static_cast<std::uint16_t>(obs::FlightKind::kExecBegin));
  EXPECT_EQ(parsed[0].arg, (std::uint64_t{7} << 32) | 42);
  EXPECT_EQ(parsed[1].kind,
            static_cast<std::uint16_t>(obs::FlightKind::kExecEnd));
  EXPECT_EQ(parsed[1].arg, 1234u);

  const std::string text = obs::RenderFlightRecords(parsed);
  EXPECT_NE(text.find("2 records"), std::string::npos) << text;
  EXPECT_NE(text.find("exec_begin"), std::string::npos) << text;
  EXPECT_NE(text.find("exec_end"), std::string::npos) << text;
  EXPECT_EQ(ring.Text(), text);

  // Bad magic / truncated header: parser refuses instead of misreading.
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(obs::ParseFlightDump(bytes, &parsed));
  const std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(obs::ParseFlightDump(tiny, &parsed));
}

TEST(FlightRecorderTest, ConcurrentRecordAndSnapshotNeverTear) {
  // 4 writers hammer a tiny ring (maximum slot reuse) while a reader
  // snapshots continuously. Every surfaced record must satisfy the writer's
  // cross-field invariant — a torn slot would break it.
  obs::FlightRecorder ring(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&ring, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ring.RecordEvent(obs::FlightKind::kEvent,
                         static_cast<std::uint32_t>(t), /*trace_id=*/i,
                         /*call_id=*/i, /*arg=*/i * 2 + 1, /*code=*/1);
        ++i;
      }
    });
  }
  // Don't start reading until the ring has wrapped at least once — the
  // snapshot loop can outrun writer-thread startup otherwise.
  while (ring.records_written() < 2 * ring.depth()) {
    std::this_thread::yield();
  }
  std::size_t seen = 0;
  for (int iter = 0; iter < 200; ++iter) {
    for (const obs::FlightRecord& r : ring.Snapshot()) {
      EXPECT_EQ(r.arg, r.call_id * 2 + 1)
          << "torn record at ticket " << r.ticket;
      EXPECT_EQ(r.trace_id, r.call_id);
      ++seen;
    }
  }
  stop.store(true);
  for (auto& w : writers) {
    w.join();
  }
  EXPECT_GT(seen, 0u);
}

// ------------------------------ ledger -------------------------------------

TEST(LedgerTest, RecordCallFoldsAcrossThreadsAndClampsStatus) {
  obs::VmAccount account(21);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&account] {
      for (int i = 0; i < kPerThread; ++i) {
        account.RecordCall(/*cost_vns=*/10, /*wire_bytes=*/100,
                           /*cached_bytes=*/7, /*status=*/0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  account.RecordCall(5, 50, 0, /*status=*/14);   // kCacheMiss
  account.RecordCall(-1, 0, 0, /*status=*/200);  // clamps to the last slot
  const obs::VmAccountSnapshot snap = account.Snapshot();
  EXPECT_EQ(snap.vm_id, 21u);
  EXPECT_EQ(snap.calls, kThreads * kPerThread + 2u);
  EXPECT_EQ(snap.ok_calls, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.cost_vns, kThreads * kPerThread * 10u + 5u);
  EXPECT_EQ(snap.wire_bytes, kThreads * kPerThread * 100u + 50u);
  EXPECT_EQ(snap.cached_bytes, kThreads * kPerThread * 7u);
  EXPECT_EQ(snap.status_counts[0],
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.status_counts[14], 1u);
  EXPECT_EQ(snap.status_counts[obs::kLedgerStatusSlots - 1], 1u);
}

TEST(LedgerTest, EwmaRatesRiseWithLoadAndDecayWhenIdle) {
  obs::VmAccount account(22);
  const std::int64_t t0 = 1'000'000'000;  // injected clock: decays are exact
  account.RecordCall(1000, 4000, 0, 0);
  obs::VmAccountSnapshot snap = account.Snapshot(t0);
  EXPECT_DOUBLE_EQ(snap.vns_rate_1s, 0.0);  // first observation = baseline

  // +1000 vns and +4000 bytes over exactly 1 s: interval rate 1000 vns/s,
  // EWMA(1 s) pulls 1-exp(-1) of the way there.
  account.RecordCall(1000, 4000, 0, 0);
  snap = account.Snapshot(t0 + 1'000'000'000);
  EXPECT_NEAR(snap.vns_rate_1s, 1000.0 * (1.0 - std::exp(-1.0)), 1.0);
  EXPECT_NEAR(snap.vns_rate_10s, 1000.0 * (1.0 - std::exp(-0.1)), 1.0);
  EXPECT_NEAR(snap.wire_rate_1s, 4000.0 * (1.0 - std::exp(-1.0)), 1.0);
  const double rate_after_load = snap.vns_rate_1s;

  // 10 idle seconds: the 1 s rate all but vanishes, the 10 s rate lingers.
  snap = account.Snapshot(t0 + 11'000'000'000);
  EXPECT_LT(snap.vns_rate_1s, rate_after_load * 0.01);
  EXPECT_GT(snap.vns_rate_10s, snap.vns_rate_1s);
  // Totals are cumulative and unaffected by decay.
  EXPECT_EQ(snap.cost_vns, 2000u);
  EXPECT_EQ(snap.wire_bytes, 8000u);
}

TEST(LedgerTest, SnapshotRefreshesRegistryGauges) {
  obs::VmAccount account(23);
  account.RecordCall(111, 222, 33, 0);
  (void)account.Snapshot();
  const obs::MetricsSnapshot metrics =
      obs::MetricRegistry::Default().Snapshot();
  const obs::MetricsSnapshot::Entry* cost =
      metrics.Find("ledger.vm23.cost_vns");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->gauge_sum, 111);
  const obs::MetricsSnapshot::Entry* calls = metrics.Find("ledger.vm23.calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(calls->gauge_sum, 1);
}

TEST(LedgerTest, CollectionIsOrderedSharedAndRendered) {
  obs::AccountingLedger ledger;
  auto b = ledger.AccountFor(31);
  auto a = ledger.AccountFor(30);
  EXPECT_EQ(ledger.AccountFor(31).get(), b.get());  // create-or-get
  a->RecordCall(10, 100, 0, 0);
  b->RecordCall(20, 200, 0, 14);
  const auto snaps = ledger.SnapshotAll();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].vm_id, 30u);  // ordered by vm id
  EXPECT_EQ(snaps[1].vm_id, 31u);
  const std::string text = ledger.Text();
  EXPECT_NE(text.find("vm calls ok cost_vns"), std::string::npos) << text;
  EXPECT_NE(text.find("\n30 1 1 10 100 0 "), std::string::npos) << text;
  EXPECT_NE(text.find("OK=1"), std::string::npos) << text;
  EXPECT_NE(text.find("CACHE_MISS=1"), std::string::npos) << text;
}

// ---------------------------- admin channel --------------------------------

std::string TestSocketPath(const char* tag) {
  return std::string("/tmp/ava_admin_test.") + tag + "." +
         std::to_string(::getpid()) + ".sock";
}

TEST(AdminChannelTest, ServeQueryRoundTripWithDotStuffing) {
  obs::AdminChannel channel;
  channel.RegisterCommand(
      "echo", [](const std::string& args) { return "you said: " + args; });
  channel.RegisterCommand("dotty", [](const std::string&) {
    // Lines starting with '.' must survive the SMTP-style framing.
    return std::string(".leading\n..double\nplain\n");
  });
  const std::string path = TestSocketPath("roundtrip");
  ASSERT_TRUE(channel.Serve(path).ok());
  EXPECT_TRUE(channel.serving());
  // Double-serve is refused, not silently rebound.
  EXPECT_FALSE(channel.Serve(path).ok());

  auto pong = obs::AdminQuery(path, "ping");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, "pong\n");

  auto echoed = obs::AdminQuery(path, "echo live introspection");
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(*echoed, "you said: live introspection\n");

  auto dotty = obs::AdminQuery(path, "dotty");
  ASSERT_TRUE(dotty.ok());
  EXPECT_EQ(*dotty, ".leading\n..double\nplain\n");

  // Built-in metrics handler speaks Prometheus.
  auto counter = obs::NewCounter("obs_test.admin.visible");
  counter->Increment(9);
  auto metrics = obs::AdminQuery(path, "metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("ava_obs_test_admin_visible 9"), std::string::npos);

  auto unknown = obs::AdminQuery(path, "frobnicate");
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().ToString().find("unknown command"),
            std::string::npos);

  channel.Stop();
  EXPECT_FALSE(channel.serving());
  EXPECT_FALSE(obs::AdminQuery(path, "ping").ok());  // socket unlinked
}

TEST(AdminChannelTest, QueryAgainstMissingSocketFailsFast) {
  auto reply = obs::AdminQuery(TestSocketPath("absent"), "ping");
  EXPECT_FALSE(reply.ok());
}

}  // namespace
}  // namespace ava
