// Seeded property and adversarial-peer tests for the SQ/CQ record-ring
// transport (src/transport/sqcq_ring.cc). Three families:
//
//  1. Round-trip properties: random message sizes sweeping every encoding
//     cutoff (empty, sub-slot, multi-slot kWhole, fragmented), and traffic
//     that carries the 64-bit cursor space across its wraparound boundary.
//  2. Protocol-edge properties: full-vs-empty disambiguation at exact
//     capacity, torn doorbells (rung before the record is fully published),
//     and stale doorbells (rung with nothing pending).
//  3. Malicious-peer properties: using the SqcqRaw test view to play a peer
//     that forges header fields, cursors, and sequence numbers. The
//     invariant under attack: the consumer never over-reads, never
//     double-completes, and every call returns a clean status — ok,
//     NotFound, Unavailable, DeadlineExceeded, or DataLoss — never UB.
//     These cases are deliberately single-threaded so the sanitizer runs
//     (ASan+UBSan, TSan) check memory safety, not scheduling luck.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/transport/sqcq_ring.h"
#include "src/transport/transport.h"

namespace ava {
namespace {

Bytes PatternMessage(std::size_t size, std::uint8_t seed) {
  Bytes m(size);
  for (std::size_t i = 0; i < size; ++i) {
    m[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return m;
}

// Statuses a consumer may legally surface, no matter what a malicious peer
// writes into the shared mapping.
bool CleanStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kNotFound:
    case StatusCode::kUnavailable:
    case StatusCode::kDataLoss:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

// Geometry used throughout: depth 8 x 64-byte slots = 32-byte payloads,
// wave = 2 slots, so whole records cover <= 64 bytes and anything larger
// fragments. Small enough that every test laps the ring many times.
SqcqConfig SmallConfig() {
  SqcqConfig config;
  config.depth = 8;
  config.slot_bytes = 64;
  return config;
}
constexpr std::size_t kPayload = 32;    // slot_bytes - kSlotHdrBytes
constexpr std::size_t kWaveBytes = 64;  // (depth/4) * payload

// --------------------------------------------------------------------------
// 1. Round-trip properties.

TEST(SqcqPropertyTest, RandomSizesSweepEveryEncodingCutoff) {
  auto channel = MakeSqcqChannel(SmallConfig());
  ASSERT_TRUE(channel.ok());
  Rng rng(11);
  std::vector<Bytes> sent;
  // Bias toward the interesting boundaries: 0, payload edge, wave edge,
  // then a tail of arbitrary fragmented sizes.
  const std::size_t edges[] = {0,  1,  kPayload - 1, kPayload, kPayload + 1,
                               kWaveBytes - 1, kWaveBytes, kWaveBytes + 1};
  for (std::size_t e : edges) {
    sent.push_back(PatternMessage(e, static_cast<std::uint8_t>(e)));
  }
  for (int i = 0; i < 200; ++i) {
    sent.push_back(PatternMessage(rng.NextBelow(2000),
                                  static_cast<std::uint8_t>(rng.NextU64())));
  }
  std::thread sender([&] {
    for (const Bytes& m : sent) {
      ASSERT_TRUE(channel->guest->Send(m).ok());
    }
  });
  for (const Bytes& m : sent) {
    auto got = channel->host->Recv();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(*got, m);
  }
  sender.join();
}

TEST(SqcqPropertyTest, CursorWrapsAcrossIndexSpaceBoundary) {
  // Start both cursors 40 positions below 2^64; a few hundred multi-slot
  // messages carry claim/head/seq across the wraparound. The protocol uses
  // equality-only comparisons on u64 positions, so the lap must be
  // invisible — same bytes, same order, both directions.
  SqcqConfig config;
  config.depth = 16;
  config.slot_bytes = 64;
  config.initial_cursor = UINT64_MAX - 40;
  auto channel = MakeSqcqChannel(config);
  ASSERT_TRUE(channel.ok());
  Rng rng(23);
  std::vector<Bytes> sent;
  for (int i = 0; i < 300; ++i) {
    sent.push_back(PatternMessage(rng.NextBelow(500),
                                  static_cast<std::uint8_t>(rng.NextU64())));
  }
  std::thread sender([&] {
    for (const Bytes& m : sent) {
      ASSERT_TRUE(channel->guest->Send(m).ok());
    }
  });
  for (const Bytes& m : sent) {
    auto got = channel->host->Recv();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(*got, m);
  }
  sender.join();
  // The reply direction wraps too.
  for (int i = 0; i < 50; ++i) {
    Bytes m = PatternMessage(100 + i, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(channel->host->Send(m).ok());
    auto got = channel->guest->Recv();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, m);
  }
}

// --------------------------------------------------------------------------
// 2. Protocol-edge properties.

TEST(SqcqPropertyTest, FullAndEmptyAreDistinguishedAtExactCapacity) {
  // depth 4 -> wave is a single slot, so <=32-byte messages take exactly
  // one slot each. Fill all 4 slots without consuming: claim == head+depth
  // is "full", which the Vyukov seq gate must not confuse with "empty"
  // (claim == head) — the same physical configuration a plain head==tail
  // ring cannot tell apart.
  SqcqConfig config;
  config.depth = 4;
  config.slot_bytes = 64;
  auto channel = MakeSqcqChannel(config);
  ASSERT_TRUE(channel.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(channel->guest->Send(PatternMessage(
                    8, static_cast<std::uint8_t>(i))).ok());
  }
  // Ring full: the next Send must BLOCK (not drop, not overwrite), and
  // complete as soon as one slot frees.
  std::atomic<bool> fifth_done{false};
  std::thread fifth([&] {
    ASSERT_TRUE(channel->guest->Send(PatternMessage(8, 99)).ok());
    fifth_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(fifth_done.load()) << "send into a full ring must block";
  auto first = channel->host->TryRecv();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, PatternMessage(8, 0));
  fifth.join();
  EXPECT_TRUE(fifth_done.load());
  // Drain the remaining 4 in order, then the ring must read empty — the
  // freed-and-refilled slots must not replay.
  for (int i = 1; i < 4; ++i) {
    auto got = channel->host->TryRecv();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, PatternMessage(8, static_cast<std::uint8_t>(i)));
  }
  auto fifth_msg = channel->host->TryRecv();
  ASSERT_TRUE(fifth_msg.ok());
  EXPECT_EQ(*fifth_msg, PatternMessage(8, 99));
  auto empty = channel->host->TryRecv();
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kNotFound);
}

TEST(SqcqPropertyTest, StaleDoorbellDrainsToNotFound) {
  auto channel = MakeSqcqChannel(SmallConfig());
  ASSERT_TRUE(channel.ok());
  // Ring the host's doorbell with nothing pending (a stale or duplicated
  // wakeup from a confused peer). The drain protocol must land on NotFound
  // and leave the channel fully usable.
  const std::uint64_t one = 1;
  ASSERT_EQ(write(channel->host->readiness_fd(), &one, sizeof(one)),
            static_cast<ssize_t>(sizeof(one)));
  channel->host->AckReadiness();
  auto nothing = channel->host->TryRecv();
  ASSERT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.status().code(), StatusCode::kNotFound);
  Bytes m = PatternMessage(48, 7);
  ASSERT_TRUE(channel->guest->Send(m).ok());
  auto got = channel->host->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, m);
}

TEST(SqcqPropertyTest, TornDoorbellParksPartialRecordThenCompletes) {
  // A peer claims a two-slot record, publishes only the first slot, and
  // rings the doorbell — the wakeup arrives before the record is whole
  // (torn). The consumer must park (NotFound, no over-read of the
  // unpublished slot) and deliver byte-exact once the rest lands: record
  // rings resynchronize where byte streams cannot.
  SqcqRaw raw;
  auto channel = MakeSqcqChannel(SmallConfig(), &raw);
  ASSERT_TRUE(channel.ok());
  Bytes m = PatternMessage(40, 3);  // 40 > payload(32): two slots
  const std::uint64_t pos =
      raw.g2h.hdr->claim.fetch_add(2, std::memory_order_relaxed);
  sqcq::SlotHdr* first = raw.g2h.slot(pos);
  first->frag_len = 40;
  first->flags = sqcq::kWhole;
  first->total_len = 40;
  std::memcpy(raw.g2h.slot_payload(pos), m.data(), kPayload);
  first->seq.store(pos + 1, std::memory_order_release);
  const std::uint64_t one = 1;
  ASSERT_EQ(write(channel->host->readiness_fd(), &one, sizeof(one)),
            static_cast<ssize_t>(sizeof(one)));
  channel->host->AckReadiness();
  auto parked = channel->host->TryRecv();
  ASSERT_FALSE(parked.ok());
  EXPECT_EQ(parked.status().code(), StatusCode::kNotFound);
  // Second slot lands; the parked record completes.
  std::memcpy(raw.g2h.slot_payload(pos + 1), m.data() + kPayload,
              m.size() - kPayload);
  raw.g2h.slot(pos + 1)->seq.store(pos + 2, std::memory_order_release);
  auto got = channel->host->TryRecv();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, m);
}

// --------------------------------------------------------------------------
// 3. Malicious-peer properties (single-threaded by design).

// Publishes one record with the given header fields at the current claim
// cursor of `ring` (payload zeroed), exactly as a hostile producer would.
std::uint64_t ForgeRecord(const SqcqRawRing& ring, std::uint32_t frag_len,
                          std::uint16_t flags, std::uint64_t total_len,
                          std::size_t claimed_slots = 1) {
  const std::uint64_t pos =
      ring.hdr->claim.fetch_add(claimed_slots, std::memory_order_relaxed);
  sqcq::SlotHdr* slot = ring.slot(pos);
  slot->frag_len = frag_len;
  slot->flags = flags;
  slot->total_len = total_len;
  slot->seq.store(pos + 1, std::memory_order_release);
  return pos;
}

TEST(SqcqPropertyTest, OversizedFragLenPoisonsInsteadOfOverReading) {
  SqcqRaw raw;
  auto channel = MakeSqcqChannel(SmallConfig(), &raw);
  ASSERT_TRUE(channel.ok());
  // frag_len far beyond the wave bound: honoring it would walk the consumer
  // off the mapped slot array. The consumer must refuse before touching any
  // payload: sticky DataLoss, ring closed.
  ForgeRecord(raw.g2h, /*frag_len=*/0x40000000u, sqcq::kWhole,
              /*total_len=*/0x40000000u);
  auto got = channel->host->TryRecv();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  auto again = channel->host->TryRecv();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kDataLoss)
      << "poison must be sticky";
  // The poisoned channel refuses further sends cleanly too.
  EXPECT_EQ(channel->guest->Send(PatternMessage(8, 1)).code(),
            StatusCode::kUnavailable);
}

TEST(SqcqPropertyTest, ForgedRoleAndLengthFieldsPoisonCleanly) {
  struct Case {
    std::uint32_t frag_len;
    std::uint16_t flags;
    std::uint64_t total_len;
    const char* why;
  };
  const Case cases[] = {
      {8, 9, 8, "flags beyond kEnd"},
      {8, sqcq::kWhole, 16, "kWhole total_len != frag_len"},
      {8, sqcq::kStart, 4, "kStart total_len <= frag_len"},
      {8, sqcq::kMid, 100, "kMid with no stream open"},
      {8, sqcq::kEnd, 100, "kEnd with no stream open"},
      {8, sqcq::kWhole, UINT64_MAX, "total_len beyond max_message_bytes"},
  };
  for (const Case& c : cases) {
    SqcqRaw raw;
    auto channel = MakeSqcqChannel(SmallConfig(), &raw);
    ASSERT_TRUE(channel.ok());
    ForgeRecord(raw.g2h, c.frag_len, c.flags, c.total_len);
    auto got = channel->host->TryRecv();
    ASSERT_FALSE(got.ok()) << c.why;
    EXPECT_EQ(got.status().code(), StatusCode::kDataLoss) << c.why;
  }
}

TEST(SqcqPropertyTest, ForgedClaimCursorNeverFabricatesMessages) {
  SqcqRaw raw;
  auto channel = MakeSqcqChannel(SmallConfig(), &raw);
  ASSERT_TRUE(channel.ok());
  // A hostile guest advances the shared claim cursor by a wild amount
  // without publishing anything. The consumer keys off per-slot sequence
  // numbers, never the cursor, so it must report empty — not deliver
  // uninitialized slots.
  raw.g2h.hdr->claim.fetch_add(1000, std::memory_order_relaxed);
  auto got = channel->host->TryRecv();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  // And once the guest goes away, the claimed-but-never-published range is
  // skipped: close surfaces as Unavailable, not a hang.
  channel->guest->Close();
  auto after_close = channel->host->TryRecv();
  ASSERT_FALSE(after_close.ok());
  EXPECT_EQ(after_close.status().code(), StatusCode::kUnavailable);
}

TEST(SqcqPropertyTest, ForgedHeadMirrorIsIgnoredByTheConsumer) {
  SqcqRaw raw;
  auto channel = MakeSqcqChannel(SmallConfig(), &raw);
  ASSERT_TRUE(channel.ok());
  // hdr->head is a diagnostic mirror; a forged value must not move the
  // consumer's private cursor (no skip, no rewind, no over-read).
  raw.g2h.hdr->head.store(UINT64_MAX - 3, std::memory_order_relaxed);
  Bytes m = PatternMessage(24, 5);
  ASSERT_TRUE(channel->guest->Send(m).ok());
  auto got = channel->host->TryRecv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, m);
}

TEST(SqcqPropertyTest, RepublishedStaleSeqNeverDoubleCompletes) {
  SqcqRaw raw;
  auto channel = MakeSqcqChannel(SmallConfig(), &raw);
  ASSERT_TRUE(channel.ok());
  Bytes m = PatternMessage(16, 9);
  ASSERT_TRUE(channel->guest->Send(m).ok());
  auto got = channel->host->TryRecv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, m);
  // The peer re-publishes the already-consumed slot (stale cqe index). The
  // consumer's private head has moved past it: no redelivery.
  raw.g2h.slot(0)->seq.store(1, std::memory_order_release);
  auto replay = channel->host->TryRecv();
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kNotFound);
  // Fresh traffic still flows (next claim position is unaffected).
  Bytes m2 = PatternMessage(20, 13);
  ASSERT_TRUE(channel->guest->Send(m2).ok());
  auto got2 = channel->host->TryRecv();
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(*got2, m2);
}

TEST(SqcqPropertyTest, ClaimWithoutPublishThenCloseIsSkippedNotHung) {
  // The transport-level half of the crash-recovery story: a producer dies
  // between slot claim and publish. The record can never complete; once the
  // ring is closed the consumer must classify the channel as gone in
  // bounded time (skip-unpublished-sqe), and a blocked Recv must wake.
  SqcqRaw raw;
  auto channel = MakeSqcqChannel(SmallConfig(), &raw);
  ASSERT_TRUE(channel.ok());
  raw.g2h.hdr->claim.fetch_add(2, std::memory_order_relaxed);
  auto pending = channel->host->RecvTimeout(2'000'000);  // 2ms
  ASSERT_FALSE(pending.ok());
  EXPECT_EQ(pending.status().code(), StatusCode::kDeadlineExceeded);
  std::atomic<bool> woke{false};
  std::thread blocked([&] {
    auto got = channel->host->Recv();
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  channel->guest->Close();
  blocked.join();
  EXPECT_TRUE(woke.load());
}

TEST(SqcqPropertyTest, SeededFuzzStormYieldsOnlyCleanStatuses) {
  // Randomized adversary: each round builds a fresh channel (sometimes at a
  // wraparound cursor), sends a few legitimate messages, applies one random
  // corruption through the raw view, then drains. Whatever the corruption,
  // every call must return a clean status and every delivered message must
  // have a sane size; after close the terminal status must be Unavailable
  // or DataLoss. Single-threaded so sanitizers check memory, not luck.
  Rng rng(0xABCDEF);
  for (int round = 0; round < 150; ++round) {
    SqcqConfig config = SmallConfig();
    if (rng.NextBool(0.3)) {
      config.initial_cursor = UINT64_MAX - rng.NextBelow(24);
    }
    SqcqRaw raw;
    auto channel = MakeSqcqChannel(config, &raw);
    ASSERT_TRUE(channel.ok());
    // Nobody drains while we enqueue, so the batch must fit the 8-slot
    // ring or Send would rightly block: one possibly-fragmented message
    // (<=100 B -> <=4 slots) plus up to two single-slot ones.
    const int sends = static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < sends; ++i) {
      const std::size_t size =
          i == 0 ? rng.NextBelow(100) : rng.NextBelow(kPayload);
      ASSERT_TRUE(channel->guest
                      ->Send(PatternMessage(size, static_cast<std::uint8_t>(i)))
                      .ok());
    }
    switch (rng.NextBelow(6)) {
      case 0:
        break;  // control round: no corruption
      case 1: {  // stale doorbell
        const std::uint64_t one = 1;
        (void)!write(channel->host->readiness_fd(), &one, sizeof(one));
        break;
      }
      case 2:  // forged claim cursor
        raw.g2h.hdr->claim.fetch_add(rng.NextBelow(64),
                                     std::memory_order_relaxed);
        break;
      case 3:  // forged head mirror
        raw.g2h.hdr->head.store(rng.NextU64(), std::memory_order_relaxed);
        break;
      case 4:  // garbage record at the claim cursor
        ForgeRecord(raw.g2h, rng.NextU32(),
                    static_cast<std::uint16_t>(rng.NextBelow(16)),
                    rng.NextU64());
        break;
      case 5: {  // random seq scribble on a random slot
        const std::uint64_t p = rng.NextBelow(raw.g2h.depth);
        raw.g2h.slot(p)->seq.store(rng.NextU64(), std::memory_order_release);
        break;
      }
    }
    // Drain until dry or terminal; bounded so a protocol bug that livelocks
    // fails the test instead of hanging it.
    std::vector<Bytes> reaped;
    Status terminal = OkStatus();
    for (int step = 0; step < 64; ++step) {
      reaped.clear();
      auto n = channel->host->TryRecvBatch(&reaped, 8);
      if (!n.ok()) {
        ASSERT_TRUE(CleanStatus(n.status())) << n.status().ToString();
        terminal = n.status();
        break;
      }
      for (const Bytes& m : reaped) {
        ASSERT_LE(m.size(), config.max_message_bytes);
      }
      if (*n < 8) {
        break;  // went dry (armed); stop reaping
      }
    }
    // Close and confirm the channel winds down to a terminal status.
    channel->guest->Close();
    for (int step = 0; step < 64; ++step) {
      auto got = channel->host->TryRecv();
      if (got.ok()) {
        ASSERT_LE(got->size(), config.max_message_bytes);
        continue;
      }
      ASSERT_TRUE(CleanStatus(got.status())) << got.status().ToString();
      if (got.status().code() != StatusCode::kNotFound) {
        terminal = got.status();
        break;
      }
    }
    EXPECT_TRUE(terminal.code() == StatusCode::kUnavailable ||
                terminal.code() == StatusCode::kDataLoss)
        << "round " << round << ": " << terminal.ToString();
  }
}

}  // namespace
}  // namespace ava
