// Tests for the MVNC silo: graph serialization, the inference engine's layer
// math (against hand-computed references), the NCSDK-shaped API, and the
// CAvA-remoted stack producing bit-identical inference results.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "mvnc_gen.h"
#include "src/mvnc/graph.h"
#include "src/mvnc/silo.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"

namespace {

using ava_gen_mvnc::MakeMvncApiHandler;
using ava_gen_mvnc::MakeMvncGuestApi;
using ava_gen_mvnc::MakeMvncNativeApi;
using ava_gen_mvnc::MvncApi;

// ------------------------------ engine math --------------------------------

TEST(MvncEngineTest, DenseLayerHandComputed) {
  mvnc::GraphDef def;
  def.input_c = 1;
  def.input_h = 1;
  def.input_w = 3;
  mvnc::Layer dense;
  dense.kind = mvnc::LayerKind::kDense;
  dense.units = 2;
  dense.weights = {1.0f, 2.0f, 3.0f,   // unit 0
                   -1.0f, 0.0f, 1.0f}; // unit 1
  dense.bias = {0.5f, -0.5f};
  dense.relu = false;
  def.layers.push_back(dense);

  mvnc::Tensor in = mvnc::Tensor::Chw(1, 1, 3);
  in.data = {1.0f, 2.0f, 3.0f};
  std::uint64_t flops = 0;
  auto out = def.Run(in, &flops);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->data.size(), 2u);
  EXPECT_FLOAT_EQ(out->data[0], 1 + 4 + 9 + 0.5f);   // 14.5
  EXPECT_FLOAT_EQ(out->data[1], -1 + 0 + 3 - 0.5f);  // 1.5
  EXPECT_GT(flops, 0u);
}

TEST(MvncEngineTest, ReluClampsNegatives) {
  mvnc::GraphDef def;
  def.input_c = 1;
  def.input_h = 1;
  def.input_w = 2;
  mvnc::Layer dense;
  dense.kind = mvnc::LayerKind::kDense;
  dense.units = 1;
  dense.weights = {1.0f, 1.0f};
  dense.bias = {-100.0f};
  dense.relu = true;
  def.layers.push_back(dense);
  mvnc::Tensor in = mvnc::Tensor::Chw(1, 1, 2);
  in.data = {1.0f, 2.0f};
  auto out = def.Run(in, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->data[0], 0.0f);
}

TEST(MvncEngineTest, Conv2dIdentityKernel) {
  // A 1x1 conv with weight 1 and bias 0 is the identity.
  mvnc::GraphDef def;
  def.input_c = 1;
  def.input_h = 3;
  def.input_w = 3;
  mvnc::Layer conv;
  conv.kind = mvnc::LayerKind::kConv2d;
  conv.out_channels = 1;
  conv.kernel = 1;
  conv.stride = 1;
  conv.same_padding = true;
  conv.weights = {1.0f};
  conv.bias = {0.0f};
  conv.relu = false;
  def.layers.push_back(conv);
  mvnc::Tensor in = mvnc::Tensor::Chw(1, 3, 3);
  std::iota(in.data.begin(), in.data.end(), 1.0f);
  auto out = def.Run(in, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->data, in.data);
}

TEST(MvncEngineTest, Conv2dSumKernelHandComputed) {
  // 3x3 all-ones kernel, same padding: center output = sum of neighborhood.
  mvnc::GraphDef def;
  def.input_c = 1;
  def.input_h = 3;
  def.input_w = 3;
  mvnc::Layer conv;
  conv.kind = mvnc::LayerKind::kConv2d;
  conv.out_channels = 1;
  conv.kernel = 3;
  conv.stride = 1;
  conv.same_padding = true;
  conv.weights.assign(9, 1.0f);
  conv.bias = {0.0f};
  def.layers.push_back(conv);
  mvnc::Tensor in = mvnc::Tensor::Chw(1, 3, 3);
  std::iota(in.data.begin(), in.data.end(), 1.0f);  // 1..9
  auto out = def.Run(in, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->data[4], 45.0f);           // full 3x3 sum at center
  EXPECT_FLOAT_EQ(out->data[0], 1 + 2 + 4 + 5);   // top-left corner
}

TEST(MvncEngineTest, MaxPoolHandComputed) {
  mvnc::GraphDef def;
  def.input_c = 1;
  def.input_h = 4;
  def.input_w = 4;
  mvnc::Layer pool;
  pool.kind = mvnc::LayerKind::kMaxPool;
  pool.kernel = 2;
  pool.stride = 2;
  def.layers.push_back(pool);
  mvnc::Tensor in = mvnc::Tensor::Chw(1, 4, 4);
  std::iota(in.data.begin(), in.data.end(), 1.0f);  // 1..16 row-major
  auto out = def.Run(in, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->data, (std::vector<float>{6, 8, 14, 16}));
}

TEST(MvncEngineTest, SoftmaxNormalizes) {
  mvnc::GraphDef def;
  def.input_c = 1;
  def.input_h = 1;
  def.input_w = 4;
  mvnc::Layer dense;
  dense.kind = mvnc::LayerKind::kDense;
  dense.units = 4;
  dense.weights.assign(16, 0.0f);
  for (int i = 0; i < 4; ++i) {
    dense.weights[static_cast<std::size_t>(i * 4 + i)] = 1.0f;  // identity
  }
  dense.bias.assign(4, 0.0f);
  dense.relu = false;
  def.layers.push_back(dense);
  mvnc::Layer softmax;
  softmax.kind = mvnc::LayerKind::kSoftmax;
  def.layers.push_back(softmax);
  mvnc::Tensor in = mvnc::Tensor::Chw(1, 1, 4);
  in.data = {1.0f, 2.0f, 3.0f, 4.0f};
  auto out = def.Run(in, nullptr);
  ASSERT_TRUE(out.ok());
  float sum = 0.0f;
  for (float v : out->data) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
  // Monotonic: larger logits -> larger probabilities.
  EXPECT_LT(out->data[0], out->data[3]);
}

TEST(MvncEngineTest, GraphFileRoundTrip) {
  auto file = mvnc::GraphBuilder(3, 16, 16, /*seed=*/7)
                  .Named("tiny")
                  .Conv2d(8, 3)
                  .MaxPool(2)
                  .Dense(10)
                  .Softmax()
                  .BuildFile();
  auto def = mvnc::GraphDef::Deserialize(file.data(), file.size());
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->name, "tiny");
  EXPECT_EQ(def->layers.size(), 4u);
  auto out_elems = def->OutputElements();
  ASSERT_TRUE(out_elems.ok());
  EXPECT_EQ(*out_elems, 10u);
  // Same seed => same serialized bytes (deterministic builder).
  auto file2 = mvnc::GraphBuilder(3, 16, 16, 7)
                   .Named("tiny")
                   .Conv2d(8, 3)
                   .MaxPool(2)
                   .Dense(10)
                   .Softmax()
                   .BuildFile();
  EXPECT_EQ(file, file2);
}

TEST(MvncEngineTest, MalformedGraphFilesRejected) {
  EXPECT_FALSE(mvnc::GraphDef::Deserialize("junk", 4).ok());
  ava::Bytes empty;
  EXPECT_FALSE(mvnc::GraphDef::Deserialize(empty.data(), 0).ok());
  // Corrupted weights (wrong length for the declared shape).
  mvnc::GraphDef bad;
  bad.input_c = 1;
  bad.input_h = 2;
  bad.input_w = 2;
  mvnc::Layer dense;
  dense.kind = mvnc::LayerKind::kDense;
  dense.units = 3;
  dense.weights = {1.0f};  // should be 12
  dense.bias = {0, 0, 0};
  bad.layers.push_back(dense);
  ava::Bytes wire = bad.Serialize();
  EXPECT_FALSE(mvnc::GraphDef::Deserialize(wire.data(), wire.size()).ok());
}

// ------------------------------- native API --------------------------------

class MvncApiTest : public ::testing::Test {
 protected:
  void SetUp() override { mvnc::ResetMvncSilo({}); }
};

TEST_F(MvncApiTest, DeviceEnumerationAndOpenClose) {
  char name[32];
  ASSERT_EQ(mvncGetDeviceName(0, name, sizeof(name)), MVNC_OK);
  EXPECT_EQ(std::string(name), "ncs0");
  EXPECT_EQ(mvncGetDeviceName(5, name, sizeof(name)), MVNC_DEVICE_NOT_FOUND);
  mvnc_device dev = nullptr;
  ASSERT_EQ(mvncOpenDevice(name, &dev), MVNC_OK);
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(mvncCloseDevice(dev), MVNC_OK);
  EXPECT_EQ(mvncCloseDevice(dev), MVNC_INVALID_HANDLE);  // stale
  EXPECT_EQ(mvncOpenDevice("gpu0", &dev), MVNC_DEVICE_NOT_FOUND);
}

TEST_F(MvncApiTest, InferenceRoundTrip) {
  mvnc_device dev = nullptr;
  ASSERT_EQ(mvncOpenDevice("ncs0", &dev), MVNC_OK);
  auto file = mvnc::GraphBuilder(1, 8, 8, 3).Conv2d(4, 3).Dense(5).Softmax()
                  .BuildFile();
  mvnc_graph graph = nullptr;
  ASSERT_EQ(mvncAllocateGraph(dev, &graph, file.data(),
                              static_cast<std::uint32_t>(file.size())),
            MVNC_OK);
  // Closing a device with a loaded graph is refused.
  EXPECT_EQ(mvncCloseDevice(dev), MVNC_BUSY);

  std::vector<float> input(64, 0.5f);
  ASSERT_EQ(mvncLoadTensor(graph, input.data(), 64 * sizeof(float)), MVNC_OK);
  std::vector<float> result(5, 0.0f);
  std::uint32_t result_size = 0;
  ASSERT_EQ(mvncGetResult(graph, result.data(), 5 * sizeof(float),
                          &result_size),
            MVNC_OK);
  EXPECT_EQ(result_size, 5 * sizeof(float));
  float sum = 0.0f;
  for (float v : result) {
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);

  std::int32_t iterations = 0;
  std::uint32_t opt_size = 0;
  ASSERT_EQ(mvncGetGraphOption(graph, MVNC_ITERATIONS, &iterations,
                               sizeof(iterations), &opt_size),
            MVNC_OK);
  EXPECT_EQ(iterations, 1);
  float time_ms = 0.0f;
  ASSERT_EQ(mvncGetGraphOption(graph, MVNC_TIME_TAKEN, &time_ms,
                               sizeof(time_ms), &opt_size),
            MVNC_OK);
  EXPECT_GT(time_ms, 0.0f);

  ASSERT_EQ(mvncDeallocateGraph(graph), MVNC_OK);
  EXPECT_EQ(mvncCloseDevice(dev), MVNC_OK);
}

TEST_F(MvncApiTest, ErrorsAreReported) {
  mvnc_device dev = nullptr;
  ASSERT_EQ(mvncOpenDevice("ncs0", &dev), MVNC_OK);
  mvnc_graph graph = nullptr;
  // Garbage graph file.
  EXPECT_EQ(mvncAllocateGraph(dev, &graph, "nope", 4),
            MVNC_UNSUPPORTED_GRAPH_FILE);
  auto file = mvnc::GraphBuilder(1, 4, 4, 1).Dense(2).BuildFile();
  ASSERT_EQ(mvncAllocateGraph(dev, &graph, file.data(),
                              static_cast<std::uint32_t>(file.size())),
            MVNC_OK);
  // Wrong tensor size.
  float small = 0.0f;
  EXPECT_EQ(mvncLoadTensor(graph, &small, sizeof(small)),
            MVNC_INVALID_PARAMETERS);
  // GetResult with nothing queued returns NO_DATA instead of hanging.
  float out[2];
  std::uint32_t out_size = 0;
  EXPECT_EQ(mvncGetResult(graph, out, sizeof(out), &out_size), MVNC_NO_DATA);
  mvncDeallocateGraph(graph);
  mvncCloseDevice(dev);
}

TEST_F(MvncApiTest, GraphMemoryBudgetEnforced) {
  mvnc::MvncConfig config;
  config.device_memory_bytes = 64u << 10;  // 64 KiB of weights
  mvnc::ResetMvncSilo(config);
  mvnc_device dev = nullptr;
  ASSERT_EQ(mvncOpenDevice("ncs0", &dev), MVNC_OK);
  // ~16x16x64 dense weights = 64K floats = 256 KiB > budget.
  auto big = mvnc::GraphBuilder(1, 32, 32, 2).Dense(64).BuildFile();
  mvnc_graph graph = nullptr;
  EXPECT_EQ(mvncAllocateGraph(dev, &graph, big.data(),
                              static_cast<std::uint32_t>(big.size())),
            MVNC_OUT_OF_MEMORY);
  mvncCloseDevice(dev);
}

// ------------------------------ remoted stack ------------------------------

TEST(MvncStackTest, RemotedInferenceMatchesNative) {
  mvnc::ResetMvncSilo({});
  auto file = mvnc::GraphBuilder(3, 16, 16, 11)
                  .Conv2d(8, 3)
                  .MaxPool(2)
                  .Dense(10)
                  .Softmax()
                  .BuildFile();
  std::vector<float> input(3 * 16 * 16);
  ava::Rng rng(5);
  for (auto& v : input) {
    v = rng.NextFloat(-1.0f, 1.0f);
  }

  auto run = [&](const MvncApi& api) {
    mvnc_device dev = nullptr;
    EXPECT_EQ(api.mvncOpenDevice("ncs0", &dev), MVNC_OK);
    mvnc_graph graph = nullptr;
    EXPECT_EQ(api.mvncAllocateGraph(dev, &graph, file.data(),
                                    static_cast<std::uint32_t>(file.size())),
              MVNC_OK);
    EXPECT_EQ(api.mvncLoadTensor(
                  graph, input.data(),
                  static_cast<std::uint32_t>(input.size() * sizeof(float))),
              MVNC_OK);
    std::vector<float> out(10, 0.0f);
    std::uint32_t out_size = 0;
    EXPECT_EQ(api.mvncGetResult(graph, out.data(), 10 * sizeof(float),
                                &out_size),
              MVNC_OK);
    EXPECT_EQ(api.mvncDeallocateGraph(graph), MVNC_OK);
    EXPECT_EQ(api.mvncCloseDevice(dev), MVNC_OK);
    return out;
  };

  auto native = run(MakeMvncNativeApi());

  auto router = std::make_unique<ava::Router>();
  router->Start();
  auto pair = ava::MakeInProcChannel();
  auto session = std::make_shared<ava::ApiServerSession>(1);
  session->RegisterApi(ava_gen_mvnc::kApiId, MakeMvncApiHandler());
  ASSERT_TRUE(router->AttachVm(1, std::move(pair.host), session).ok());
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
  auto remoted = run(MakeMvncGuestApi(endpoint));
  endpoint.reset();
  router->Stop();

  ASSERT_EQ(native.size(), remoted.size());
  for (std::size_t i = 0; i < native.size(); ++i) {
    ASSERT_FLOAT_EQ(native[i], remoted[i]) << "at " << i;
  }
}

}  // namespace
