// Soak test (ctest configuration "soak", excluded from the default run):
// multi-threaded call churn through the full stack with ~1% injected faults
// for a configurable duration. Passes when every call terminates classified,
// no thread wedges (a watchdog aborts the run otherwise), and the stack's
// failure counters stay monotone.
//
// Usage: soak_test [duration_seconds]   (default 30)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/vclock.h"
#include "src/proto/wire.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/faulty.h"
#include "src/transport/transport.h"

namespace {

constexpr std::uint16_t kApi = 42;

ava::ApiHandler MakeHandler() {
  return [](ava::ServerContext* ctx, std::uint32_t, ava::ByteReader* args,
            bool, ava::ByteWriter* reply) -> ava::Status {
    ctx->ChargeCost(1000);
    reply->PutU32(args->GetU32());
    return ava::OkStatus();
  };
}

// Transport-classified failures plus the breaker's fast-fail: the complete
// set of legal error outcomes for a faulted but well-formed call.
bool Classified(const ava::Status& status) {
  switch (status.code()) {
    case ava::StatusCode::kUnavailable:
    case ava::StatusCode::kDeadlineExceeded:
    case ava::StatusCode::kDataLoss:
      return true;
    default:
      return false;
  }
}

struct Vm {
  std::shared_ptr<ava::ApiServerSession> session;
  std::shared_ptr<ava::GuestEndpoint> endpoint;
};

}  // namespace

int main(int argc, char** argv) {
  const int duration_s = argc > 1 ? std::atoi(argv[1]) : 30;
  if (duration_s <= 0) {
    std::fprintf(stderr, "soak_test: bad duration '%s'\n", argv[1]);
    return 2;
  }

  // Hard watchdog: if shutdown wedges, crash loudly instead of timing out
  // silently under ctest.
  std::atomic<bool> done{false};
  std::thread watchdog([&] {
    const auto limit = std::chrono::seconds(duration_s + 120);
    const auto t0 = std::chrono::steady_clock::now();
    while (!done.load()) {
      if (std::chrono::steady_clock::now() - t0 > limit) {
        std::fprintf(stderr, "soak_test: watchdog fired, aborting\n");
        std::abort();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  });

  ava::Router router;
  router.Start();

  // Three VMs, one per transport flavor, each behind a lossy link.
  std::vector<Vm> vms;
  for (ava::VmId vm_id = 1; vm_id <= 3; ++vm_id) {
    ava::ChannelPair channel;
    if (vm_id == 1) {
      channel = ava::MakeInProcChannel(64);
    } else if (vm_id == 2) {
      auto c = ava::MakeShmRingChannel(1u << 16);
      if (!c.ok()) {
        std::fprintf(stderr, "shm channel: %s\n", c.status().ToString().c_str());
        return 2;
      }
      channel = std::move(*c);
    } else {
      auto c = ava::MakeSocketPairChannel();
      if (!c.ok()) {
        std::fprintf(stderr, "socket channel: %s\n",
                     c.status().ToString().c_str());
        return 2;
      }
      channel = std::move(*c);
    }
    ava::FaultSpec spec;
    spec.drop = 0.01;
    spec.corrupt = 0.005;
    spec.delay_us = 20;
    spec.seed = 1000 + vm_id;
    ava::TransportPtr faulty =
        ava::MakeFaultyTransport(std::move(channel.guest), spec);

    Vm vm;
    vm.session = std::make_shared<ava::ApiServerSession>(vm_id);
    vm.session->RegisterApi(kApi, MakeHandler());
    if (!router.AttachVm(vm_id, std::move(channel.host), vm.session).ok()) {
      std::fprintf(stderr, "AttachVm %llu failed\n",
                   static_cast<unsigned long long>(vm_id));
      return 2;
    }
    ava::GuestEndpoint::Options opts;
    opts.vm_id = vm_id;
    opts.call_deadline_ms = 100;
    opts.max_retries = 2;
    opts.retry_backoff_us = 100;
    vm.endpoint =
        std::make_shared<ava::GuestEndpoint>(std::move(faulty), opts);
    vms.push_back(std::move(vm));
  }

  std::atomic<std::uint64_t> ok_calls{0};
  std::atomic<std::uint64_t> classified_errors{0};
  std::atomic<std::uint64_t> unclassified_errors{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (auto& vm : vms) {
    for (int t = 0; t < 2; ++t) {
      workers.emplace_back([&vm, t, &ok_calls, &classified_errors,
                            &unclassified_errors, &stop] {
        std::uint32_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          ava::ByteWriter w = ava::BeginCall(kApi, 0);
          w.PutU32(++i);
          auto reply = vm.endpoint->CallSyncPrepared(
              std::move(w).TakeBytes(), /*retriable=*/true);
          if (reply.ok()) {
            ok_calls.fetch_add(1, std::memory_order_relaxed);
          } else if (Classified(reply.status())) {
            classified_errors.fetch_add(1, std::memory_order_relaxed);
          } else {
            unclassified_errors.fetch_add(1, std::memory_order_relaxed);
            std::fprintf(stderr, "unclassified: %s\n",
                         reply.status().ToString().c_str());
          }
          if ((t & 1) != 0) {
            // Odd workers also exercise the async/batch path under faults.
            (void)vm.endpoint->CallAsync(kApi, 0, {});
          }
        }
      });
    }
  }

  // Main thread samples counters once a second and checks monotonicity.
  bool monotone = true;
  std::uint64_t last_sent = 0;
  std::uint64_t last_reaped = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(duration_s);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    std::uint64_t sent = 0;
    for (const auto& vm : vms) {
      sent += vm.endpoint->stats().messages_sent;
    }
    const std::uint64_t reaped = router.sessions_reaped();
    if (sent < last_sent || reaped < last_reaped) {
      monotone = false;
      std::fprintf(stderr, "counter regression: sent %llu->%llu reaped %llu->%llu\n",
                   static_cast<unsigned long long>(last_sent),
                   static_cast<unsigned long long>(sent),
                   static_cast<unsigned long long>(last_reaped),
                   static_cast<unsigned long long>(reaped));
    }
    last_sent = sent;
    last_reaped = reaped;
  }

  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  // Endpoints close their transports; the router drains and stops cleanly.
  for (auto& vm : vms) {
    vm.endpoint.reset();
  }
  router.Stop();
  done.store(true);
  watchdog.join();

  const std::uint64_t ok = ok_calls.load();
  const std::uint64_t classified = classified_errors.load();
  const std::uint64_t unclassified = unclassified_errors.load();
  std::fprintf(stderr,
               "soak: %llus, %llu ok, %llu classified errors, "
               "%llu unclassified\n",
               static_cast<unsigned long long>(duration_s),
               static_cast<unsigned long long>(ok),
               static_cast<unsigned long long>(classified),
               static_cast<unsigned long long>(unclassified));

  if (ok == 0) {
    std::fprintf(stderr, "soak_test: no call ever succeeded\n");
    return 1;
  }
  if (unclassified != 0 || !monotone) {
    return 1;
  }
  std::puts("soak_test OK");
  return 0;
}
