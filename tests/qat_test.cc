// Tests for the QAT silo (the QuickAssist-style future-work API): codec
// engines (round-trip property tests, known CRC vectors), the session API,
// and equality of native vs remoted results through the generated stack.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "qat_gen.h"
#include "src/common/rng.h"
#include "src/qat/codecs.h"
#include "src/qat/silo.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"

namespace {

using ava_gen_qat::MakeQatApiHandler;
using ava_gen_qat::MakeQatGuestApi;
using ava_gen_qat::MakeQatNativeApi;
using ava_gen_qat::QatApi;

// ------------------------------- codecs ------------------------------------

TEST(LzssTest, EmptyAndTinyInputs) {
  ava::Bytes empty = qat::LzssCompress(nullptr, 0);
  auto back = qat::LzssDecompress(empty.data(), empty.size());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());

  const std::uint8_t one = 'x';
  ava::Bytes c = qat::LzssCompress(&one, 1);
  auto d = qat::LzssDecompress(c.data(), c.size());
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->size(), 1u);
  EXPECT_EQ((*d)[0], 'x');
}

TEST(LzssTest, CompressesRepetitiveData) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "the quick brown fox jumps over the lazy dog. ";
  }
  ava::Bytes c = qat::LzssCompress(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  EXPECT_LT(c.size(), text.size() / 3) << "repetitive text should compress";
  auto d = qat::LzssDecompress(c.data(), c.size());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(std::string(d->begin(), d->end()), text);
}

TEST(LzssTest, RandomDataRoundTripsWithinBound) {
  ava::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t size = rng.NextBelow(5000);
    ava::Bytes data(size);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.NextBelow(trial % 2 ? 4 : 256));
    }
    ava::Bytes c = qat::LzssCompress(data.data(), data.size());
    EXPECT_LE(c.size(), qat::LzssBound(size));
    auto d = qat::LzssDecompress(c.data(), c.size());
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    ASSERT_EQ(*d, data) << "trial " << trial;
  }
}

TEST(LzssTest, CompressIntoMatchesAllocatingPath) {
  ava::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t size = rng.NextBelow(4000);
    ava::Bytes data(size);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.NextBelow(trial % 2 ? 8 : 256));
    }
    const ava::Bytes via_alloc = qat::LzssCompress(data.data(), data.size());
    ava::Bytes dst(qat::LzssBound(size));
    const std::size_t n =
        qat::LzssCompressInto(data.data(), data.size(), dst.data(), dst.size());
    ASSERT_EQ(n, via_alloc.size()) << "trial " << trial;
    dst.resize(n);
    EXPECT_EQ(dst, via_alloc);
    auto d = qat::LzssDecompress(dst.data(), dst.size());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, data);
  }
}

TEST(LzssTest, CompressIntoRejectsUndersizedDestination) {
  std::string text = "destination too small, report zero, write nothing";
  ava::Bytes dst(qat::LzssBound(text.size()) - 1, 0xEE);
  const std::size_t n = qat::LzssCompressInto(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size(),
      dst.data(), dst.size());
  EXPECT_EQ(n, 0u);
}

TEST(LzssTest, RejectsCorruptStreams) {
  std::string text = "hello hello hello hello hello hello";
  ava::Bytes c = qat::LzssCompress(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  // Truncation.
  EXPECT_FALSE(qat::LzssDecompress(c.data(), c.size() / 2).ok());
  // Declared size beyond any plausible stream.
  ava::Bytes huge = c;
  huge[0] = 0xFF;
  huge[1] = 0xFF;
  huge[2] = 0xFF;
  huge[3] = 0x7F;
  EXPECT_FALSE(qat::LzssDecompress(huge.data(), huge.size()).ok());
}

TEST(Crc64Test, KnownVectors) {
  // CRC-64/XZ check value for "123456789".
  const char* check = "123456789";
  EXPECT_EQ(qat::Crc64(reinterpret_cast<const std::uint8_t*>(check), 9),
            0x995DC9BBDF1939FAull);
  EXPECT_EQ(qat::Crc64(nullptr, 0), 0u);
}

TEST(XteaCtrTest, SelfInverseAndKeySensitive) {
  const std::uint32_t key[4] = {1, 2, 3, 4};
  const std::uint32_t other_key[4] = {1, 2, 3, 5};
  ava::Rng rng(5);
  ava::Bytes plain(1000);
  for (auto& b : plain) {
    b = static_cast<std::uint8_t>(rng.NextU64());
  }
  ava::Bytes cipher(plain.size()), back(plain.size()), wrong(plain.size());
  qat::XteaCtr(key, 42, plain.data(), cipher.data(), plain.size());
  EXPECT_NE(cipher, plain);
  qat::XteaCtr(key, 42, cipher.data(), back.data(), cipher.size());
  EXPECT_EQ(back, plain);
  qat::XteaCtr(other_key, 42, cipher.data(), wrong.data(), cipher.size());
  EXPECT_NE(wrong, plain);
}

// ------------------------------ session API --------------------------------

class QatApiTest : public ::testing::Test {
 protected:
  void SetUp() override { qat::ResetQatSilo(); }
};

TEST_F(QatApiTest, CompressionRoundTrip) {
  qat_session session = nullptr;
  ASSERT_EQ(qatOpenSession(QAT_SVC_COMPRESSION, &session), QAT_OK);
  std::string text(4096, 'a');
  std::vector<std::uint8_t> compressed(qat::LzssBound(text.size()));
  std::uint32_t c_size = 0;
  ASSERT_EQ(qatCompress(session, text.data(),
                        static_cast<std::uint32_t>(text.size()),
                        compressed.data(),
                        static_cast<std::uint32_t>(compressed.size()),
                        &c_size),
            QAT_OK);
  EXPECT_LT(c_size, text.size() / 4);
  std::vector<char> out(text.size());
  std::uint32_t d_size = 0;
  ASSERT_EQ(qatDecompress(session, compressed.data(), c_size, out.data(),
                          static_cast<std::uint32_t>(out.size()), &d_size),
            QAT_OK);
  EXPECT_EQ(std::string(out.begin(), out.end()), text);
  std::uint64_t processed = 0;
  ASSERT_EQ(qatGetStats(session, &processed), QAT_OK);
  EXPECT_EQ(processed, text.size() + c_size);
  EXPECT_EQ(qatCloseSession(session), QAT_OK);
  EXPECT_EQ(qatCloseSession(session), QAT_INVALID_SESSION);
}

TEST_F(QatApiTest, CryptoRequiresKeyAndService) {
  qat_session comp = nullptr, crypto = nullptr;
  ASSERT_EQ(qatOpenSession(QAT_SVC_COMPRESSION, &comp), QAT_OK);
  ASSERT_EQ(qatOpenSession(QAT_SVC_CRYPTO, &crypto), QAT_OK);
  std::uint8_t data[32] = {1, 2, 3};
  std::uint8_t out[32];
  std::uint32_t out_size = 0;
  // Encrypt on a compression session / without a key.
  EXPECT_EQ(qatEncrypt(comp, data, 32, out, 32, &out_size),
            QAT_INVALID_PARAM);
  EXPECT_EQ(qatEncrypt(crypto, data, 32, out, 32, &out_size), QAT_NO_KEY);
  std::uint8_t key[16] = {9};
  EXPECT_EQ(qatSetKey(crypto, key, 8), QAT_INVALID_PARAM);  // wrong size
  ASSERT_EQ(qatSetKey(crypto, key, 16), QAT_OK);
  ASSERT_EQ(qatEncrypt(crypto, data, 32, out, 32, &out_size), QAT_OK);
  std::uint8_t back[32];
  ASSERT_EQ(qatEncrypt(crypto, out, 32, back, 32, &out_size), QAT_OK);
  EXPECT_EQ(std::memcmp(back, data, 32), 0);
  qatCloseSession(comp);
  qatCloseSession(crypto);
}

TEST_F(QatApiTest, BufferTooSmallReportsNeededSize) {
  qat_session session = nullptr;
  ASSERT_EQ(qatOpenSession(QAT_SVC_COMPRESSION, &session), QAT_OK);
  ava::Rng rng(3);
  std::vector<std::uint8_t> noise(1024);
  for (auto& b : noise) {
    b = static_cast<std::uint8_t>(rng.NextU64());
  }
  std::uint8_t tiny[8];
  std::uint32_t needed = 0;
  EXPECT_EQ(qatCompress(session, noise.data(), 1024, tiny, sizeof(tiny),
                        &needed),
            QAT_BUFFER_TOO_SMALL);
  EXPECT_GT(needed, sizeof(tiny));
  qatCloseSession(session);
}

// ----------------------------- remoted stack -------------------------------

TEST(QatStackTest, RemotedMatchesNative) {
  qat::ResetQatSilo();
  ava::Rng rng(11);
  std::vector<std::uint8_t> payload(20000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i % 97);  // compressible
  }

  auto run = [&](const QatApi& api, ava::Bytes* compressed,
                 std::uint64_t* crc) {
    qat_session session = nullptr;
    EXPECT_EQ(api.qatOpenSession(QAT_SVC_COMPRESSION, &session), QAT_OK);
    std::vector<std::uint8_t> out(qat::LzssBound(payload.size()));
    std::uint32_t c_size = 0;
    EXPECT_EQ(api.qatCompress(session, payload.data(),
                              static_cast<std::uint32_t>(payload.size()),
                              out.data(),
                              static_cast<std::uint32_t>(out.size()),
                              &c_size),
              QAT_OK);
    compressed->assign(out.begin(), out.begin() + c_size);
    EXPECT_EQ(api.qatChecksum(session, payload.data(),
                              static_cast<std::uint32_t>(payload.size()),
                              crc),
              QAT_OK);
    std::vector<std::uint8_t> round(payload.size());
    std::uint32_t d_size = 0;
    EXPECT_EQ(api.qatDecompress(session, compressed->data(),
                                static_cast<std::uint32_t>(compressed->size()),
                                round.data(),
                                static_cast<std::uint32_t>(round.size()),
                                &d_size),
              QAT_OK);
    EXPECT_EQ(round, payload);
    EXPECT_EQ(api.qatCloseSession(session), QAT_OK);
  };

  ava::Bytes native_compressed;
  std::uint64_t native_crc = 0;
  run(MakeQatNativeApi(), &native_compressed, &native_crc);

  auto router = std::make_unique<ava::Router>();
  router->Start();
  auto pair = ava::MakeInProcChannel();
  auto session = std::make_shared<ava::ApiServerSession>(1);
  session->RegisterApi(ava_gen_qat::kApiId, MakeQatApiHandler());
  ASSERT_TRUE(router->AttachVm(1, std::move(pair.host), session).ok());
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
  ava::Bytes remote_compressed;
  std::uint64_t remote_crc = 0;
  run(MakeQatGuestApi(endpoint), &remote_compressed, &remote_crc);
  endpoint.reset();
  router->Stop();

  // Byte-identical artifacts either way.
  EXPECT_EQ(native_compressed, remote_compressed);
  EXPECT_EQ(native_crc, remote_crc);
}

TEST(QatStackTest, SessionKeySurvivesMigrationReplay) {
  // qatSetKey is `record`ed: after replay into a fresh session, encryption
  // still works with the same key (the §4.3 "object modification" class).
  qat::ResetQatSilo();
  auto router = std::make_unique<ava::Router>();
  router->Start();
  auto pair = ava::MakeInProcChannel();
  auto session = std::make_shared<ava::ApiServerSession>(1);
  session->RegisterApi(ava_gen_qat::kApiId, MakeQatApiHandler());
  ASSERT_TRUE(router->AttachVm(1, std::move(pair.host), session).ok());
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
  auto api = MakeQatGuestApi(endpoint);

  // (Recording requires a sink; this test drives Replay directly via the
  // session API instead, using captured calls from a scripted sequence.)
  qat_session s = nullptr;
  ASSERT_EQ(api.qatOpenSession(QAT_SVC_CRYPTO, &s), QAT_OK);
  std::uint8_t key[16] = {4, 4, 4, 4};
  ASSERT_EQ(api.qatSetKey(s, key, 16), QAT_OK);
  std::uint8_t plain[16] = {'m', 'i', 'g', 'r', 'a', 't', 'e'};
  std::uint8_t cipher[16];
  std::uint32_t n = 0;
  ASSERT_EQ(api.qatEncrypt(s, plain, 16, cipher, 16, &n), QAT_OK);
  std::uint8_t back[16];
  ASSERT_EQ(api.qatEncrypt(s, cipher, 16, back, 16, &n), QAT_OK);
  EXPECT_EQ(std::memcmp(back, plain, 16), 0);
  ASSERT_EQ(api.qatCloseSession(s), QAT_OK);
  endpoint.reset();
  router->Stop();
}

}  // namespace
