// TransportConformance: ONE parameterized contract suite every transport
// must pass — ordered duplex delivery, ring-seam sweeps, zero-length
// interleave, RecvTimeout semantics, close/shutdown behavior, batch
// reaping, and arena capability agreement. A new transport earns full
// coverage by adding one TransportParam to the INSTANTIATE list in
// transport_test.cc; nothing here is specific to any implementation.
//
// TEST_P bodies live in a header so the parameter list stays in exactly one
// translation unit — include this from ONE .cc only (transport_test.cc).
#ifndef AVA_TESTS_TRANSPORT_CONFORMANCE_H_
#define AVA_TESTS_TRANSPORT_CONFORMANCE_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/transport/transport.h"

namespace ava {
namespace conformance {

inline Bytes MakeMessage(std::size_t size, std::uint8_t seed) {
  Bytes m(size);
  for (std::size_t i = 0; i < size; ++i) {
    m[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return m;
}

using ChannelFactory = std::function<ChannelPair()>;

struct TransportParam {
  const char* name;
  ChannelFactory factory;
  // Whether both endpoints are expected to negotiate a (shared, non-null)
  // bulk-buffer arena. Shared-memory transports say yes; transports that
  // share no pages say no. Decorators inherit the inner transport's answer.
  bool expect_arena = false;
};

class TransportConformance : public ::testing::TestWithParam<TransportParam> {
 protected:
  ChannelPair MakeChannel() { return GetParam().factory(); }
};

TEST_P(TransportConformance, PingPong) {
  ChannelPair channel = MakeChannel();
  Bytes ping = MakeMessage(64, 1);
  ASSERT_TRUE(channel.guest->Send(ping).ok());
  auto got = channel.host->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ping);
  Bytes pong = MakeMessage(32, 9);
  ASSERT_TRUE(channel.host->Send(pong).ok());
  auto got2 = channel.guest->Recv();
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(*got2, pong);
}

TEST_P(TransportConformance, PreservesOrderAndContent) {
  ChannelPair channel = MakeChannel();
  constexpr int kCount = 200;
  std::thread sender([&] {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(
          channel.guest->Send(MakeMessage(1 + (i * 7) % 512,
                                          static_cast<std::uint8_t>(i)))
              .ok());
    }
  });
  for (int i = 0; i < kCount; ++i) {
    auto got = channel.host->Recv();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, MakeMessage(1 + (i * 7) % 512,
                                static_cast<std::uint8_t>(i)));
  }
  sender.join();
}

TEST_P(TransportConformance, EmptyMessage) {
  ChannelPair channel = MakeChannel();
  ASSERT_TRUE(channel.guest->Send({}).ok());
  auto got = channel.host->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_P(TransportConformance, LargeMessageStreamsThrough) {
  ChannelPair channel = MakeChannel();
  Bytes big = MakeMessage(3u << 20, 42);  // 3 MiB > any test ring size
  std::thread sender([&] { ASSERT_TRUE(channel.guest->Send(big).ok()); });
  auto got = channel.host->Recv();
  sender.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
}

TEST_P(TransportConformance, TryRecvNonBlocking) {
  ChannelPair channel = MakeChannel();
  auto nothing = channel.host->TryRecv();
  EXPECT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(channel.guest->Send(MakeMessage(16, 5)).ok());
  // May need a beat on socket transports.
  for (int i = 0; i < 1000; ++i) {
    auto got = channel.host->TryRecv();
    if (got.ok()) {
      EXPECT_EQ(*got, MakeMessage(16, 5));
      return;
    }
    usleep(1000);
  }
  FAIL() << "message never became available";
}

// Batch reaping is part of the contract since the SQ/CQ transport: pending
// messages drain in order, a dry batch is NotFound, a closed-and-drained
// channel is Unavailable — on every transport, default adapter or not.
TEST_P(TransportConformance, TryRecvBatchDrainsInOrder) {
  ChannelPair channel = MakeChannel();
  std::vector<Bytes> out;
  auto dry = channel.host->TryRecvBatch(&out, 8);
  ASSERT_FALSE(dry.ok());
  EXPECT_EQ(dry.status().code(), StatusCode::kNotFound);

  constexpr int kCount = 5;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        channel.guest->Send(MakeMessage(48 + i, static_cast<std::uint8_t>(i)))
            .ok());
  }
  // Socket transports may deliver asynchronously; reap until all arrive.
  for (int spin = 0; spin < 1000 && out.size() < kCount; ++spin) {
    auto got = channel.host->TryRecvBatch(&out, kCount - out.size());
    if (!got.ok()) {
      ASSERT_EQ(got.status().code(), StatusCode::kNotFound);
      usleep(1000);
    }
  }
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(out[i], MakeMessage(48 + i, static_cast<std::uint8_t>(i)));
  }
  channel.guest->Close();
  out.clear();
  for (int spin = 0; spin < 1000; ++spin) {
    auto closed = channel.host->TryRecvBatch(&out, 8);
    if (!closed.ok() && closed.status().code() == StatusCode::kUnavailable) {
      break;
    }
    ASSERT_TRUE(out.empty());
    usleep(1000);
  }
  EXPECT_EQ(channel.host->TryRecvBatch(&out, 8).status().code(),
            StatusCode::kUnavailable);
}

TEST_P(TransportConformance, CloseWakesReceiver) {
  ChannelPair channel = MakeChannel();
  std::thread closer([&] {
    usleep(20000);
    channel.guest->Close();
  });
  auto got = channel.host->Recv();
  closer.join();
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST_P(TransportConformance, ConcurrentSendersDoNotInterleave) {
  ChannelPair channel = MakeChannel();
  constexpr int kPerSender = 50;
  auto send_loop = [&](std::uint8_t seed) {
    for (int i = 0; i < kPerSender; ++i) {
      ASSERT_TRUE(channel.guest->Send(MakeMessage(128, seed)).ok());
    }
  };
  std::thread t1(send_loop, 11);
  std::thread t2(send_loop, 77);
  int seen11 = 0, seen77 = 0;
  for (int i = 0; i < 2 * kPerSender; ++i) {
    auto got = channel.host->Recv();
    ASSERT_TRUE(got.ok());
    if (*got == MakeMessage(128, 11)) {
      ++seen11;
    } else if (*got == MakeMessage(128, 77)) {
      ++seen77;
    } else {
      FAIL() << "corrupted message " << i;
    }
  }
  t1.join();
  t2.join();
  EXPECT_EQ(seen11, kPerSender);
  EXPECT_EQ(seen77, kPerSender);
}

TEST_P(TransportConformance, RecvTimeoutExpiresCleanlyThenDelivers) {
  ChannelPair channel = MakeChannel();
  const auto t0 = std::chrono::steady_clock::now();
  auto got = channel.host->RecvTimeout(50LL * 1000000);  // 50 ms
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
  // A clean timeout (no frame bytes consumed) must not poison the channel:
  // the next message still comes through intact.
  ASSERT_TRUE(channel.guest->Send(MakeMessage(64, 5)).ok());
  got = channel.host->RecvTimeout(2000LL * 1000000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, MakeMessage(64, 5));
}

TEST_P(TransportConformance, RecvTimeoutReturnsPendingImmediately) {
  ChannelPair channel = MakeChannel();
  ASSERT_TRUE(channel.guest->Send(MakeMessage(128, 9)).ok());
  auto got = channel.host->RecvTimeout(5000LL * 1000000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, MakeMessage(128, 9));
}

TEST_P(TransportConformance, RecvTimeoutShorterThanSpinBudgetExpires) {
  // Regression: a deadline that expires inside a transport's internal
  // polling phase (e.g. the SQ/CQ ring's spin-before-arm budget,
  // AVA_SQCQ_SPIN_US = 60us by default) used to leave a negative remaining
  // time that became poll(fd, -1) — an unbounded sleep only a future
  // doorbell could break. A watchdog closes the channel after ~2s so a
  // recurrence fails visibly (Unavailable) instead of wedging the suite.
  ChannelPair channel = MakeChannel();
  std::atomic<bool> done{false};
  std::thread watchdog([&] {
    for (int i = 0; i < 200 && !done.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!done.load()) {
      channel.guest->Close();
    }
  });
  auto got = channel.host->RecvTimeout(20LL * 1000);  // 20 us
  done = true;
  watchdog.join();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_P(TransportConformance, RecvTimeoutZeroBudgetExpiresImmediately) {
  ChannelPair channel = MakeChannel();
  auto got = channel.host->RecvTimeout(0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_P(TransportConformance, RecvTimeoutOnClosedChannelUnavailable) {
  ChannelPair channel = MakeChannel();
  channel.guest->Close();
  auto got = channel.host->RecvTimeout(2000LL * 1000000);
  ASSERT_FALSE(got.ok());
  // Closed beats expired: a dead channel is Unavailable, not a timeout.
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST_P(TransportConformance, RecvTimeoutDrainsBeforeReportingClosed) {
  ChannelPair channel = MakeChannel();
  ASSERT_TRUE(channel.guest->Send(MakeMessage(32, 2)).ok());
  channel.guest->Close();
  auto got = channel.host->RecvTimeout(2000LL * 1000000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, MakeMessage(32, 2));
  got = channel.host->RecvTimeout(2000LL * 1000000);
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

// ---- Close/shutdown audit ----

TEST_P(TransportConformance, PeerCloseWakesSenderBlockedOnFullChannel) {
  ChannelPair channel = MakeChannel();
  std::atomic<bool> send_failed{false};
  std::thread sender([&] {
    // Far more data than any transport buffers: the sender must block, and
    // the peer's Close() must wake it with a failure rather than leave it
    // wedged forever.
    for (int i = 0; i < 100000; ++i) {
      if (!channel.guest->Send(MakeMessage(1024, 1)).ok()) {
        send_failed = true;
        return;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  channel.host->Close();
  sender.join();
  EXPECT_TRUE(send_failed.load());
}

TEST_P(TransportConformance, ConcurrentAndDoubleCloseDuringRecvIsSafe) {
  ChannelPair channel = MakeChannel();
  std::thread receiver([&] {
    auto got = channel.host->Recv();
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Two threads race to close the endpoint the receiver is blocked on; each
  // closes twice. Must neither crash, double-free, nor strand the receiver.
  std::thread closer1([&] {
    channel.host->Close();
    channel.host->Close();
  });
  std::thread closer2([&] {
    channel.host->Close();
    channel.host->Close();
  });
  closer1.join();
  closer2.join();
  receiver.join();
  // The already-closed endpoint stays in a terminal, non-blocking state.
  EXPECT_FALSE(channel.host->Recv().ok());
  EXPECT_FALSE(channel.guest->Send({1}).ok());
}

TEST_P(TransportConformance, SendAfterOwnCloseFailsCleanly) {
  ChannelPair channel = MakeChannel();
  channel.guest->Close();
  auto status = channel.guest->Send(MakeMessage(8, 4));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

// Messages sized right around a 64 KiB ring capacity (the shm factory in
// transport_test.cc uses one): one byte under, exactly at, one byte over,
// and a multiple — every wrap/streaming seam. For other transports these
// are simply large messages; the contract is identical.
TEST_P(TransportConformance, BoundarySizedMessagesSweepTheRingSeam) {
  ChannelPair channel = MakeChannel();
  constexpr std::size_t kCap = 1u << 16;
  const std::size_t sizes[] = {kCap - 65, kCap - 1,  kCap,
                               kCap + 1,  kCap + 63, 2 * kCap + 5};
  std::thread sender([&] {
    std::uint8_t seed = 0;
    for (std::size_t size : sizes) {
      ASSERT_TRUE(channel.guest->Send(MakeMessage(size, ++seed)).ok());
    }
  });
  std::uint8_t seed = 0;
  for (std::size_t size : sizes) {
    auto got = channel.host->Recv();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, MakeMessage(size, ++seed)) << "size " << size;
  }
  sender.join();
}

// Odd-sized messages march a ring's write offset through every alignment
// (977 is prime, so offsets mod any power-of-two capacity cycle through all
// residues), catching header-split and payload-split wrap bugs.
TEST_P(TransportConformance, OddSizedStreamWrapsAtEveryOffset) {
  ChannelPair channel = MakeChannel();
  constexpr int kCount = 300;
  constexpr std::size_t kSize = 977;
  std::thread sender([&] {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(
          channel.guest->Send(MakeMessage(kSize, static_cast<std::uint8_t>(i)))
              .ok());
    }
  });
  for (int i = 0; i < kCount; ++i) {
    auto got = channel.host->Recv();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, MakeMessage(kSize, static_cast<std::uint8_t>(i)));
  }
  sender.join();
}

// Full duplex: both directions stream concurrently without cross-talk (the
// guest's TX ring is the host's RX ring and vice versa — a shared-cursor bug
// would corrupt one direction under simultaneous load).
TEST_P(TransportConformance, FullDuplexConcurrentTraffic) {
  ChannelPair channel = MakeChannel();
  constexpr int kCount = 150;
  auto pump = [&](Transport* tx, std::uint8_t seed) {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(
          tx->Send(MakeMessage(64 + i, static_cast<std::uint8_t>(seed + i)))
              .ok());
    }
  };
  auto drain = [&](Transport* rx, std::uint8_t seed) {
    for (int i = 0; i < kCount; ++i) {
      auto got = rx->Recv();
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got,
                MakeMessage(64 + i, static_cast<std::uint8_t>(seed + i)));
    }
  };
  std::thread guest_tx(pump, channel.guest.get(), 1);
  std::thread host_tx(pump, channel.host.get(), 101);
  std::thread guest_rx(drain, channel.guest.get(), 101);
  drain(channel.host.get(), 1);
  guest_tx.join();
  host_tx.join();
  guest_rx.join();
}

// Zero-length sends interleaved with data: empties are real messages with
// their own place in the order, not dropped or merged.
TEST_P(TransportConformance, ZeroLengthInterleavedWithData) {
  ChannelPair channel = MakeChannel();
  constexpr int kPairs = 30;
  std::thread sender([&] {
    for (int i = 0; i < kPairs; ++i) {
      ASSERT_TRUE(channel.guest->Send({}).ok());
      ASSERT_TRUE(
          channel.guest->Send(MakeMessage(40, static_cast<std::uint8_t>(i)))
              .ok());
    }
  });
  for (int i = 0; i < kPairs; ++i) {
    auto empty = channel.host->Recv();
    ASSERT_TRUE(empty.ok());
    EXPECT_TRUE(empty->empty());
    auto data = channel.host->Recv();
    ASSERT_TRUE(data.ok());
    ASSERT_EQ(*data, MakeMessage(40, static_cast<std::uint8_t>(i)));
  }
  sender.join();
}

// Capability negotiation: the two endpoints of a channel must agree on the
// out-of-band buffer arena — same arena object on both ends, or none on
// either.
TEST_P(TransportConformance, EndpointsAgreeOnArenaCapability) {
  ChannelPair channel = MakeChannel();
  EXPECT_EQ(channel.guest->arena(), channel.host->arena());
  if (GetParam().expect_arena) {
    EXPECT_NE(channel.guest->arena(), nullptr);
  } else {
    EXPECT_EQ(channel.guest->arena(), nullptr);
  }
}

}  // namespace conformance
}  // namespace ava

#endif  // AVA_TESTS_TRANSPORT_CONFORMANCE_H_
