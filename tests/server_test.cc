// Unit tests for the server-side substrate in isolation: the per-VM object
// registry (isolation, refcounts, capture, forced-id replay), the recorder's
// tombstoning, and the swap manager's pin/evict mechanics with scripted
// hooks (no silo involved).
#include <gtest/gtest.h>

#include <memory>

#include "src/migrate/recorder.h"
#include "src/server/object_registry.h"
#include "src/server/swap_manager.h"

namespace ava {
namespace {

constexpr std::uint32_t kBufTag = 7;
constexpr std::uint32_t kCtxTag = 8;

TEST(ObjectRegistryTest, InsertTranslateTypeChecked) {
  ObjectRegistry registry(1);
  int real = 42;
  WireHandle id = registry.Insert(kBufTag, &real);
  EXPECT_NE(id, 0u);
  auto ok = registry.Translate(kBufTag, id);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, &real);
  // Wrong type tag is rejected (confused-deputy defense).
  EXPECT_FALSE(registry.Translate(kCtxTag, id).ok());
  // Unknown id is rejected.
  EXPECT_FALSE(registry.Translate(kBufTag, id + 100).ok());
  EXPECT_FALSE(registry.Translate(kBufTag, 0).ok());
}

TEST(ObjectRegistryTest, RefcountLifecycle) {
  ObjectRegistry registry(1);
  int real = 1;
  WireHandle id = registry.Insert(kBufTag, &real);
  ASSERT_TRUE(registry.Retain(id).ok());
  void* removed = nullptr;
  auto r1 = registry.Release(id, &removed);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(*r1);  // refcount 2 -> 1: still alive
  auto r2 = registry.Release(id, &removed);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
  EXPECT_EQ(removed, &real);
  EXPECT_FALSE(registry.Translate(kBufTag, id).ok());
  EXPECT_FALSE(registry.Release(id, nullptr).ok());
}

TEST(ObjectRegistryTest, InternedHandlesDedupAndIgnoreRefcounts) {
  ObjectRegistry registry(1);
  int real = 5;
  WireHandle a = registry.InternOrFind(kCtxTag, &real);
  WireHandle b = registry.InternOrFind(kCtxTag, &real);
  EXPECT_EQ(a, b);
  auto released = registry.Release(a, nullptr);
  ASSERT_TRUE(released.ok());
  EXPECT_FALSE(*released);  // interned: never removed
  EXPECT_TRUE(registry.Translate(kCtxTag, a).ok());
}

TEST(ObjectRegistryTest, CallCaptureAndForcedIds) {
  ObjectRegistry registry(1);
  int x = 1, y = 2;
  registry.BeginCallCapture();
  WireHandle id1 = registry.Insert(kBufTag, &x);
  WireHandle id2 = registry.Insert(kBufTag, &y);
  auto created = registry.TakeCreated();
  EXPECT_EQ(created, (std::vector<WireHandle>{id1, id2}));

  // Replay into a fresh registry with forced ids reproduces the id space.
  ObjectRegistry fresh(1);
  fresh.PushForcedIds(created);
  int x2 = 3, y2 = 4;
  EXPECT_EQ(fresh.Insert(kBufTag, &x2), id1);
  EXPECT_EQ(fresh.Insert(kBufTag, &y2), id2);
  // Post-replay inserts do not collide with forced ids.
  int z = 5;
  WireHandle id3 = fresh.Insert(kBufTag, &z);
  EXPECT_GT(id3, id2);
}

TEST(ObjectRegistryTest, MetadataAndIteration) {
  ObjectRegistry registry(1);
  int a = 1, b = 2;
  WireHandle ida = registry.Insert(kBufTag, &a);
  WireHandle idb = registry.Insert(kBufTag, &b);
  registry.Insert(kCtxTag, &a);
  registry.SetMeta(ida, /*parent=*/99, /*size=*/1024);
  int count = 0;
  std::uint64_t sizes = 0;
  registry.ForEach(kBufTag, [&](WireHandle id, ObjectRegistry::Entry& entry) {
    ++count;
    sizes += entry.size;
  });
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sizes, 1024u);
  EXPECT_EQ(registry.LiveCount(), 3u);
  EXPECT_EQ(registry.Find(ida)->parent, 99u);
  EXPECT_EQ(registry.Find(idb)->size, 0u);
}

TEST(RecorderTest, TombstonesFullyDestroyedCreators) {
  Recorder recorder;
  CallHeader make;
  make.func_id = 1;
  CallHeader kill;
  kill.func_id = 2;
  recorder.OnRecordedCall(make, {0xAA}, /*created=*/{10}, /*destroyed=*/{});
  recorder.OnRecordedCall(make, {0xBB}, {11}, {});
  EXPECT_EQ(recorder.LiveCount(), 2u);
  // Destroying object 10 drops its create record; the destroy record itself
  // stays (it is a no-op at replay because 10 no longer exists).
  recorder.OnRecordedCall(kill, {0xCC}, {}, {10});
  auto live = recorder.LiveLog();
  bool has_aa = false, has_bb = false;
  for (const auto& call : live) {
    has_aa = has_aa || (!call.payload.empty() && call.payload[0] == 0xAA);
    has_bb = has_bb || (!call.payload.empty() && call.payload[0] == 0xBB);
  }
  EXPECT_FALSE(has_aa);
  EXPECT_TRUE(has_bb);
  EXPECT_EQ(recorder.TotalRecorded(), 3u);
}

TEST(RecorderTest, MultiObjectCreatorSurvivesPartialDestroy) {
  Recorder recorder;
  CallHeader make;
  recorder.OnRecordedCall(make, {1}, {20, 21}, {});
  recorder.OnRecordedCall(make, {2}, {}, {20});
  // One of its two objects is alive: the creator must stay.
  auto live = recorder.LiveLog();
  bool has_creator = false;
  for (const auto& call : live) {
    has_creator = has_creator || (!call.payload.empty() && call.payload[0] == 1);
  }
  EXPECT_TRUE(has_creator);
  recorder.OnRecordedCall(make, {3}, {}, {21});
  live = recorder.LiveLog();
  for (const auto& call : live) {
    EXPECT_FALSE(!call.payload.empty() && call.payload[0] == 1);
  }
}

// ---- SwapManager with scripted hooks (no silo) ----

struct FakeDevice {
  std::size_t capacity = 100;
  std::size_t used = 0;
  int evictions = 0;
  int restores = 0;
};

BufferHooks MakeFakeHooks(FakeDevice* device) {
  BufferHooks hooks;
  hooks.buffer_type_tag = kBufTag;
  hooks.read_back = [device](ObjectRegistry*, WireHandle,
                             ObjectRegistry::Entry& entry,
                             Bytes* out) -> Status {
    out->assign(entry.size, 0xDD);
    return OkStatus();
  };
  hooks.free_buffer = [device](ObjectRegistry*, ObjectRegistry::Entry& entry) {
    device->used -= entry.size;
    ++device->evictions;
  };
  hooks.realloc_buffer = [device](ObjectRegistry*, WireHandle,
                                  ObjectRegistry::Entry& entry,
                                  const Bytes& contents) -> void* {
    if (device->used + entry.size > device->capacity) {
      return nullptr;
    }
    device->used += entry.size;
    ++device->restores;
    return reinterpret_cast<void*>(0xF00D);
  };
  hooks.write_back = [](ObjectRegistry*, WireHandle, ObjectRegistry::Entry&,
                        const Bytes&) -> Status { return OkStatus(); };
  return hooks;
}

TEST(SwapManagerTest, EvictsLruUnpinnedAndRestores) {
  FakeDevice device;
  SwapManager swap(MakeFakeHooks(&device));
  ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);

  // Three resident buffers of 40 each on a 100-capacity device (device
  // accounting is external here; we seed `used` accordingly).
  int realA = 0, realB = 0, realC = 0;
  WireHandle a = registry.Insert(kBufTag, &realA);
  registry.SetMeta(a, 0, 40);
  WireHandle b = registry.Insert(kBufTag, &realB);
  registry.SetMeta(b, 0, 40);
  device.used = 80;
  // Touch order: a older than b.
  registry.Touch(a);
  registry.Touch(b);

  // Make room for 40 more: the LRU (a) is evicted.
  std::size_t freed = swap.MakeRoom(40, &registry);
  EXPECT_GE(freed, 40u);
  EXPECT_EQ(device.evictions, 1);
  EXPECT_TRUE(registry.Find(a)->swapped);
  EXPECT_FALSE(registry.Find(b)->swapped);
  EXPECT_EQ(registry.Find(a)->swap_copy.size(), 40u);

  // Translating the swapped buffer swaps it back in and pins it.
  auto real = swap.TranslatePinned(&registry, a);
  ASSERT_TRUE(real.ok()) << real.status().ToString();
  EXPECT_EQ(device.restores, 1);
  EXPECT_FALSE(registry.Find(a)->swapped);
  EXPECT_EQ(registry.Find(a)->pinned, 1);
  // Pinned buffers are never evicted.
  EXPECT_EQ(swap.MakeRoom(1000, &registry), 40u);  // only b is evictable
  EXPECT_FALSE(registry.Find(a)->swapped);
  swap.UnpinAll(&registry);
  EXPECT_EQ(registry.Find(a)->pinned, 0);
  (void)realC;

  auto stats = swap.stats();
  EXPECT_EQ(stats.swap_outs, 2u);
  EXPECT_EQ(stats.swap_ins, 1u);
  swap.DetachRegistry(&registry);
}

TEST(SwapManagerTest, TranslateUnknownIdFails) {
  FakeDevice device;
  SwapManager swap(MakeFakeHooks(&device));
  ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);
  EXPECT_FALSE(swap.TranslatePinned(&registry, 999).ok());
  swap.DetachRegistry(&registry);
}

}  // namespace
}  // namespace ava
