// Fault-injection matrix: every transport × every fault class × retry
// on/off. The invariant under test is the PR's headline guarantee — a call
// under injected faults always terminates with a classified status (or a
// successful retried call), never a hang or an unclassified error.
//
// The peer mirrors the router's framing exactly (CRC-check + strip on
// receive, seal on send), so corruption exercises the real rejection path.
//
// The buffer-arena cells of the matrix — corrupt/forged/stale descriptors
// answered with sealed error replies, exhaustion falling back to inline
// marshaling — live in tests/arena_test.cc (same `fault` ctest label): they
// need the real router + ApiServerSession rather than this echo peer. The
// transfer-cache cells — forged digests, eviction mid-flight, corrupt
// kBulkCached descriptors, install digest mismatches — live in
// tests/xfer_cache_test.cc for the same reason.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/flight.h"
#include "src/proto/wire.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/faulty.h"
#include "src/transport/transport.h"

namespace ava {
namespace {

constexpr std::uint16_t kApi = 42;

// Aborts the whole process if a cell wedges: a hang is the one failure mode
// this suite exists to rule out, so it must not be mistaken for a slow test.
class Watchdog {
 public:
  explicit Watchdog(std::chrono::seconds limit) {
    thread_ = std::thread([this, limit] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!cv_.wait_for(lock, limit, [this] { return disarmed_; })) {
        std::fprintf(stderr, "fault-matrix watchdog fired: cell hung\n");
        std::abort();
      }
    });
  }
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

// Router-faithful echo peer: CRC-checks and strips incoming frames (silently
// dropping corrupt ones, as the router does), echoes sync call payloads back
// in sealed replies.
class EchoPeer {
 public:
  explicit EchoPeer(TransportPtr transport) : transport_(std::move(transport)) {
    thread_ = std::thread([this] {
      while (true) {
        auto message = transport_->Recv();
        if (!message.ok()) {
          return;
        }
        if (!CheckAndStripFrame(&*message).ok()) {
          continue;  // corrupt frame: nothing in it can be trusted
        }
        auto call = DecodeCall(*message);
        if (!call.ok() || call->header.is_async()) {
          continue;
        }
        ReplyHeader header;
        header.call_id = call->header.call_id;
        header.vm_id = call->header.vm_id;
        ReplyBuilder builder(header);
        builder.SetPayload(Bytes(call->payload.begin(), call->payload.end()));
        Bytes frame = std::move(builder).Finish();
        SealFrame(&frame);
        (void)transport_->Send(frame);
      }
    });
  }
  ~EchoPeer() {
    transport_->Close();
    thread_.join();
  }

 private:
  TransportPtr transport_;
  std::thread thread_;
};

ChannelPair MakeChannelByName(const std::string& name) {
  if (name == "inproc") {
    return MakeInProcChannel(64);
  }
  if (name == "shm_ring") {
    auto c = MakeShmRingChannel(1u << 16);
    EXPECT_TRUE(c.ok());
    return std::move(*c);
  }
  auto c = MakeSocketPairChannel();
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

// A retriable prepared call, the way a CAvA stub for an `idempotent;`
// function issues it.
Result<Bytes> Call(GuestEndpoint* endpoint, bool retriable) {
  ByteWriter w = BeginCall(kApi, 1);
  w.PutU32(0xC0FFEE);
  return endpoint->CallSyncPrepared(std::move(w).TakeBytes(), retriable);
}

// Transport-classified outcomes a faulted call may legally end in.
bool Classified(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kDataLoss;
}

// What a deterministic (probability 0/1) fault spec must produce.
enum class Expect {
  kOk,                    // fault is pure latency: call succeeds
  kDeadline,              // request never arrives intact: deadline expires
  kUnavailableAfterWarm,  // first call fine, channel then hard-fails
};

struct FaultCase {
  const char* name;
  const char* spec;
  Expect expect;
};

constexpr FaultCase kFaultCases[] = {
    {"drop", "drop=1,seed=9", Expect::kDeadline},
    {"delay", "delay_us=2000,jitter_us=500,seed=9", Expect::kOk},
    {"corrupt", "corrupt=1,seed=9", Expect::kDeadline},
    {"disconnect", "disconnect_after=1,seed=9",
     Expect::kUnavailableAfterWarm},
};

class FaultMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, FaultCase, bool>> {};

TEST_P(FaultMatrixTest, CallTerminatesClassified) {
  Watchdog watchdog(std::chrono::seconds(60));
  const auto& [transport_name, fault, retry] = GetParam();

  ChannelPair channel = MakeChannelByName(transport_name);
  auto spec = ParseFaultSpec(fault.spec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  TransportPtr faulty =
      MakeFaultyTransport(std::move(channel.guest), *spec);

  EchoPeer peer(std::move(channel.host));
  GuestEndpoint::Options opts;
  opts.vm_id = 1;
  opts.call_deadline_ms = 150;  // bounds lost-request cells
  opts.max_retries = retry ? 2 : 0;
  opts.retry_backoff_us = 100;
  opts.breaker_threshold = 0;  // breaker behavior has its own tests
  GuestEndpoint endpoint(std::move(faulty), opts);

  if (fault.expect == Expect::kUnavailableAfterWarm) {
    auto warm = Call(&endpoint, retry);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }
  auto reply = Call(&endpoint, retry);
  switch (fault.expect) {
    case Expect::kOk:
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      break;
    case Expect::kDeadline:
      ASSERT_FALSE(reply.ok());
      EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
          << reply.status().ToString();
      break;
    case Expect::kUnavailableAfterWarm:
      ASSERT_FALSE(reply.ok());
      EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable)
          << reply.status().ToString();
      break;
  }
  if (!reply.ok()) {
    EXPECT_TRUE(Classified(reply.status())) << reply.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, FaultMatrixTest,
    ::testing::Combine(::testing::Values("inproc", "shm_ring", "socketpair"),
                       ::testing::ValuesIn(kFaultCases),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<FaultMatrixTest::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param).name +
             (std::get<2>(info.param) ? "_retry" : "_noretry");
    });

// The same matrix with four application threads multiplexing one endpoint:
// the guarantee must survive the concurrent-caller reply demux. Outcomes are
// per-caller — under a fault one blocked caller may classify DeadlineExceeded
// while the stream poisoning it triggered surfaces to the others as
// Unavailable — so the invariant here is "every caller terminates OK or
// classified", plus the deterministic all-succeed / all-fail split.
class ConcurrentFaultMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, FaultCase, bool>> {};

TEST_P(ConcurrentFaultMatrixTest, EveryCallerTerminatesClassified) {
  Watchdog watchdog(std::chrono::seconds(60));
  const auto& [transport_name, fault, retry] = GetParam();
  constexpr int kCallers = 4;
  constexpr int kCallsPerCaller = 2;

  ChannelPair channel = MakeChannelByName(transport_name);
  auto spec = ParseFaultSpec(fault.spec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  TransportPtr faulty = MakeFaultyTransport(std::move(channel.guest), *spec);

  EchoPeer peer(std::move(channel.host));
  GuestEndpoint::Options opts;
  opts.vm_id = 1;
  opts.call_deadline_ms = 150;
  opts.max_retries = retry ? 2 : 0;
  opts.retry_backoff_us = 100;
  opts.breaker_threshold = 0;
  GuestEndpoint endpoint(std::move(faulty), opts);

  if (fault.expect == Expect::kUnavailableAfterWarm) {
    auto warm = Call(&endpoint, retry);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }

  std::atomic<int> ok_count{0};
  std::atomic<int> classified_count{0};
  std::atomic<int> unclassified_count{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      for (int c = 0; c < kCallsPerCaller; ++c) {
        auto reply = Call(&endpoint, retry);
        if (reply.ok()) {
          ok_count.fetch_add(1);
        } else if (Classified(reply.status())) {
          classified_count.fetch_add(1);
        } else {
          unclassified_count.fetch_add(1);
          ADD_FAILURE() << "unclassified: " << reply.status().ToString();
        }
      }
    });
  }
  for (std::thread& caller : callers) {
    caller.join();
  }

  EXPECT_EQ(unclassified_count.load(), 0);
  const int total = kCallers * kCallsPerCaller;
  if (fault.expect == Expect::kOk) {
    EXPECT_EQ(ok_count.load(), total);  // pure latency: everyone succeeds
  } else {
    EXPECT_EQ(classified_count.load(), total)
        << "deterministic fault let " << ok_count.load()
        << " concurrent calls through";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, ConcurrentFaultMatrixTest,
    ::testing::Combine(::testing::Values("inproc", "shm_ring", "socketpair"),
                       ::testing::ValuesIn(kFaultCases),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<ConcurrentFaultMatrixTest::ParamType>&
           info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param).name +
             (std::get<2>(info.param) ? "_retry" : "_noretry");
    });

// ---------------------------------------------------------------------------
// Retry behavior (deterministic, via seed search against the same RNG the
// FaultyTransport draws from: one NextBool per send when only `drop` is set).

std::uint64_t SeedDroppingOnlyFirstSend() {
  for (std::uint64_t seed = 1; seed < 100000; ++seed) {
    Rng rng(seed);
    if (rng.NextBool(0.5) && !rng.NextBool(0.5) && !rng.NextBool(0.5)) {
      return seed;
    }
  }
  ADD_FAILURE() << "no suitable seed below 100000";
  return 1;
}

TEST(FaultRetryTest, RetrySucceedsAfterSingleDrop) {
  Watchdog watchdog(std::chrono::seconds(60));
  auto channel = MakeInProcChannel(64);
  FaultSpec spec;
  spec.drop = 0.5;
  spec.seed = SeedDroppingOnlyFirstSend();
  TransportPtr faulty = MakeFaultyTransport(std::move(channel.guest), spec);
  EchoPeer peer(std::move(channel.host));
  GuestEndpoint::Options opts;
  opts.call_deadline_ms = 100;
  opts.max_retries = 2;
  opts.retry_backoff_us = 100;
  GuestEndpoint endpoint(std::move(faulty), opts);
  auto reply = Call(&endpoint, /*retriable=*/true);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  // First attempt dropped + one successful retry = exactly two sends.
  EXPECT_EQ(endpoint.stats().messages_sent, 2u);
}

TEST(FaultRetryTest, NonRetriableCallNeverResent) {
  Watchdog watchdog(std::chrono::seconds(60));
  auto channel = MakeInProcChannel(64);
  FaultSpec spec;
  spec.drop = 1.0;
  TransportPtr faulty = MakeFaultyTransport(std::move(channel.guest), spec);
  EchoPeer peer(std::move(channel.host));
  GuestEndpoint::Options opts;
  opts.call_deadline_ms = 100;
  opts.max_retries = 5;  // available but must not be used
  GuestEndpoint endpoint(std::move(faulty), opts);
  auto reply = Call(&endpoint, /*retriable=*/false);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(endpoint.stats().messages_sent, 1u);
}

TEST(FaultRetryTest, RetriableCallExhaustsAttempts) {
  Watchdog watchdog(std::chrono::seconds(60));
  auto channel = MakeInProcChannel(64);
  FaultSpec spec;
  spec.drop = 1.0;
  TransportPtr faulty = MakeFaultyTransport(std::move(channel.guest), spec);
  EchoPeer peer(std::move(channel.host));
  GuestEndpoint::Options opts;
  opts.call_deadline_ms = 50;
  opts.max_retries = 2;
  opts.retry_backoff_us = 100;
  opts.breaker_threshold = 0;
  GuestEndpoint endpoint(std::move(faulty), opts);
  auto reply = Call(&endpoint, /*retriable=*/true);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(endpoint.stats().messages_sent, 3u);  // 1 try + 2 retries
}

// ---------------------------------------------------------------------------
// Circuit breaker.

TEST(CircuitBreakerTest, OpensAfterThresholdAndFailsFast) {
  Watchdog watchdog(std::chrono::seconds(60));
  auto channel = MakeInProcChannel(64);
  channel.host->Close();  // every send fails Unavailable immediately
  GuestEndpoint::Options opts;
  opts.breaker_threshold = 3;
  opts.breaker_cooldown_ms = 60000;  // stays open for the rest of the test
  opts.max_retries = 0;
  GuestEndpoint endpoint(std::move(channel.guest), opts);
  for (int i = 0; i < 3; ++i) {
    auto reply = Call(&endpoint, false);
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(endpoint.stats().messages_sent, 3u);
  // Breaker now open: calls fail fast without touching the transport.
  auto reply = Call(&endpoint, false);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(endpoint.stats().messages_sent, 3u);
}

TEST(CircuitBreakerTest, HalfOpenProbesAfterCooldown) {
  Watchdog watchdog(std::chrono::seconds(60));
  auto channel = MakeInProcChannel(64);
  channel.host->Close();
  GuestEndpoint::Options opts;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown_ms = 20;
  opts.max_retries = 0;
  GuestEndpoint endpoint(std::move(channel.guest), opts);
  for (int i = 0; i < 2; ++i) {
    ASSERT_FALSE(Call(&endpoint, false).ok());
  }
  EXPECT_EQ(endpoint.stats().messages_sent, 2u);
  ASSERT_FALSE(Call(&endpoint, false).ok());  // fast-failed
  EXPECT_EQ(endpoint.stats().messages_sent, 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // Cooldown elapsed: the next call is admitted as the half-open probe and
  // reaches the (still dead) transport again.
  ASSERT_FALSE(Call(&endpoint, false).ok());
  EXPECT_EQ(endpoint.stats().messages_sent, 3u);
}

// ---------------------------------------------------------------------------
// Overload / admission control. These cells run the real router, not the
// echo peer: a VM whose bounded ingress queue is full is answered
// ResourceExhausted, which is retryable-with-backoff for idempotent calls
// and must never trip the transport circuit breaker — overload is the
// server saying "try later", not a channel fault. Every reject lands in
// the router's counters, the per-VM ledger, and the flight recorder, and
// the three books must agree.

struct OverloadRig {
  Router router;
  std::shared_ptr<ApiServerSession> session;
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> entered{0};

  explicit OverloadRig(VmId vm_id) {
    router.Start();
    session = std::make_shared<ApiServerSession>(vm_id);
    session->RegisterApi(
        kApi, [this](ServerContext*, std::uint32_t, ByteReader*, bool,
                     ByteWriter* reply) -> Status {
          entered.fetch_add(1);
          std::unique_lock<std::mutex> lock(gate_mutex);
          gate_cv.wait(lock, [this] { return gate_open; });
          reply->PutU32(1);
          return OkStatus();
        });
  }

  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(gate_mutex);
      gate_open = true;
    }
    gate_cv.notify_all();
  }

  // Parks one call in the (only) worker slot and fills the depth-1 ingress
  // queue behind it, sequenced so neither filler is itself rejected: the
  // second frame goes out only after the first is verifiably executing,
  // and returns only after the router has drained the second into the
  // queue — the next arrival must hit admission control.
  void FillQueue(GuestEndpoint* endpoint, VmId vm_id) {
    ByteWriter first = BeginCall(kApi, 1);
    first.PutU32(0);
    ASSERT_TRUE(endpoint->CallAsyncPrepared(std::move(first).TakeBytes()).ok());
    while (entered.load() < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ByteWriter second = BeginCall(kApi, 1);
    second.PutU32(1);
    ASSERT_TRUE(
        endpoint->CallAsyncPrepared(std::move(second).TakeBytes()).ok());
    while (true) {
      auto stats = router.StatsFor(vm_id);
      ASSERT_TRUE(stats.ok());
      if (stats->messages_received >= 2) {
        return;  // one executing, one queued: the queue is full
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

// Metric cells are global to the process and keyed by vm id, so every
// (test, transport) cell gets a distinct vm id — counts from one cell must
// not leak into the next when several run in one process.
VmId VmIdFor(VmId base, const std::string& transport_name) {
  if (transport_name == "inproc") {
    return base;
  }
  if (transport_name == "shm_ring") {
    return base + 100;
  }
  return base + 200;
}

std::size_t CountFlightRejects(VmId vm_id) {
  std::size_t n = 0;
  for (const auto& record : obs::FlightRecorder::Default().Snapshot()) {
    if (record.kind == static_cast<std::uint16_t>(obs::FlightKind::kReject) &&
        record.vm_id == static_cast<std::uint32_t>(vm_id) &&
        record.code ==
            static_cast<std::uint16_t>(StatusCode::kResourceExhausted)) {
      ++n;
    }
  }
  return n;
}

class OverloadMatrixTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OverloadMatrixTest, QueueFullRejectsResourceExhaustedAndBooksAgree) {
  Watchdog watchdog(std::chrono::seconds(60));
  const VmId kVm = VmIdFor(77, GetParam());
  OverloadRig rig(kVm);
  ChannelPair channel = MakeChannelByName(GetParam());
  VmPolicy policy;
  policy.queue_depth = 1;
  policy.max_parallelism = 1;
  ASSERT_TRUE(
      rig.router.AttachVm(kVm, std::move(channel.host), rig.session, policy)
          .ok());
  GuestEndpoint::Options opts;
  opts.vm_id = kVm;
  opts.call_deadline_ms = 10000;
  opts.max_retries = 0;
  GuestEndpoint endpoint(std::move(channel.guest), opts);
  const std::size_t flight_before = CountFlightRejects(kVm);

  rig.FillQueue(&endpoint, kVm);
  auto reply = Call(&endpoint, /*retriable=*/false);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted)
      << reply.status().ToString();

  // The books agree: router counters, per-VM ledger, flight recorder.
  auto stats = rig.router.StatsFor(kVm);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->calls_rejected, 1u);
  bool found_account = false;
  for (const auto& snap : rig.router.ledger().SnapshotAll()) {
    if (snap.vm_id != kVm) {
      continue;
    }
    found_account = true;
    EXPECT_EQ(snap.status_counts[static_cast<std::size_t>(
                  StatusCode::kResourceExhausted)],
              1u);
  }
  EXPECT_TRUE(found_account);
  EXPECT_EQ(CountFlightRejects(kVm) - flight_before, 1u);

  // Overload is transient by design: once the gate opens and the backlog
  // drains, the same call is admitted and succeeds. Wait for the second
  // filler to leave the depth-1 queue (forwarded counts at dispatch) so
  // the probe races nothing — under TSan the drain is slow enough to lose.
  rig.OpenGate();
  for (int i = 0; i < 500; ++i) {
    auto drained = rig.router.StatsFor(kVm);
    ASSERT_TRUE(drained.ok());
    if (drained->calls_forwarded >= 2) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  auto after = Call(&endpoint, /*retriable=*/false);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
  rig.router.Stop();
}

TEST_P(OverloadMatrixTest, IdempotentRetryRidesThroughOverload) {
  Watchdog watchdog(std::chrono::seconds(60));
  const VmId kVm = VmIdFor(78, GetParam());
  OverloadRig rig(kVm);
  ChannelPair channel = MakeChannelByName(GetParam());
  VmPolicy policy;
  policy.queue_depth = 1;
  policy.max_parallelism = 1;
  ASSERT_TRUE(
      rig.router.AttachVm(kVm, std::move(channel.host), rig.session, policy)
          .ok());
  GuestEndpoint::Options opts;
  opts.vm_id = kVm;
  opts.call_deadline_ms = 10000;
  opts.max_retries = 5;
  opts.retry_backoff_us = 2000;
  // One transport-classified failure would open this breaker and fail the
  // retry fast with Unavailable — so a final OK proves admission rejects
  // are exempt from breaker accounting.
  opts.breaker_threshold = 1;
  GuestEndpoint endpoint(std::move(channel.guest), opts);

  rig.FillQueue(&endpoint, kVm);
  // Open the gate as soon as the first admission reject lands, so one of
  // the backed-off retries finds the queue drained.
  std::thread opener([&] {
    while (true) {
      auto stats = rig.router.StatsFor(kVm);
      if (stats.ok() && stats->calls_rejected >= 1) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    rig.OpenGate();
  });
  auto reply = Call(&endpoint, /*retriable=*/true);
  opener.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  auto stats = rig.router.StatsFor(kVm);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->calls_rejected, 1u);
  // 2 async fillers + the rejected attempt + at least one retry.
  EXPECT_GE(endpoint.stats().messages_sent, 4u);
  rig.router.Stop();
}

INSTANTIATE_TEST_SUITE_P(AllTransports, OverloadMatrixTest,
                         ::testing::Values("inproc", "shm_ring",
                                           "socketpair"),
                         [](const ::testing::TestParamInfo<const char*>&
                                info) { return std::string(info.param); });

// ---------------------------------------------------------------------------
// FaultyTransport unit behavior.

TEST(FaultyTransportTest, DropAllDeliversNothing) {
  auto channel = MakeInProcChannel(64);
  FaultSpec spec;
  spec.drop = 1.0;
  TransportPtr faulty = MakeFaultyTransport(std::move(channel.guest), spec);
  ASSERT_TRUE(faulty->Send({1, 2, 3}).ok());  // lossy link: sender sees OK
  auto got = channel.host->TryRecv();
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(FaultyTransportTest, CorruptAllFlipsExactlyOneByte) {
  auto channel = MakeInProcChannel(64);
  FaultSpec spec;
  spec.corrupt = 1.0;
  TransportPtr faulty = MakeFaultyTransport(std::move(channel.guest), spec);
  const Bytes original(33, 0x5A);
  ASSERT_TRUE(faulty->Send(original).ok());
  auto got = channel.host->Recv();
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), original.size());
  int diffs = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    diffs += (*got)[i] != original[i];
  }
  EXPECT_EQ(diffs, 1);
}

TEST(FaultyTransportTest, DisconnectAfterZeroFailsFirstSend) {
  auto channel = MakeInProcChannel(64);
  FaultSpec spec;
  spec.disconnect_after = 0;
  TransportPtr faulty = MakeFaultyTransport(std::move(channel.guest), spec);
  auto status = faulty->Send({1});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // The inner transport is closed too: the peer observes Unavailable.
  auto got = channel.host->Recv();
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(FaultyTransportTest, RecvSidePassesThrough) {
  auto channel = MakeInProcChannel(64);
  FaultSpec spec;
  spec.drop = 1.0;  // faults never touch the receive path
  TransportPtr faulty = MakeFaultyTransport(std::move(channel.guest), spec);
  ASSERT_TRUE(channel.host->Send({9, 9}).ok());
  auto got = faulty->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 2u);
}

// ---------------------------------------------------------------------------
// Fault-spec grammar.

TEST(FaultSpecTest, ParsesFullGrammar) {
  auto spec = ParseFaultSpec(
      "drop=0.01,delay_us=500,corrupt=0.001,jitter_us=50,"
      "disconnect_after=10,seed=77");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec->drop, 0.01);
  EXPECT_DOUBLE_EQ(spec->corrupt, 0.001);
  EXPECT_EQ(spec->delay_us, 500);
  EXPECT_EQ(spec->jitter_us, 50);
  EXPECT_EQ(spec->disconnect_after, 10);
  EXPECT_EQ(spec->seed, 77u);
  EXPECT_TRUE(spec->Enabled());
}

TEST(FaultSpecTest, EmptySpecIsDisabled) {
  auto spec = ParseFaultSpec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->Enabled());
}

TEST(FaultSpecTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseFaultSpec("drop").ok());            // missing '='
  EXPECT_FALSE(ParseFaultSpec("frobnicate=1").ok());    // unknown key
  EXPECT_FALSE(ParseFaultSpec("drop=abc").ok());        // non-numeric
  EXPECT_FALSE(ParseFaultSpec("drop=1.5").ok());        // out of range
  EXPECT_FALSE(ParseFaultSpec("delay_us=-4").ok());     // negative
  EXPECT_FALSE(ParseFaultSpec("drop=0.1x").ok());       // trailing garbage
}

TEST(FaultSpecTest, EnvWrapperRespectsUnsetAndMalformed) {
  ::unsetenv("AVA_FAULT_SPEC");
  auto disabled = FaultSpecFromEnv();
  ASSERT_TRUE(disabled.ok());
  EXPECT_FALSE(disabled->Enabled());

  ::setenv("AVA_FAULT_SPEC", "drop=0.25,seed=3", 1);
  auto enabled = FaultSpecFromEnv();
  ASSERT_TRUE(enabled.ok());
  EXPECT_TRUE(enabled->Enabled());

  // A malformed env spec must not silently produce a faulting transport.
  ::setenv("AVA_FAULT_SPEC", "drop=oops", 1);
  auto channel = MakeInProcChannel(4);
  TransportPtr wrapped = WrapFaultyFromEnv(std::move(channel.guest));
  EXPECT_EQ(wrapped->name().rfind("faulty:", 0), std::string::npos);
  ::unsetenv("AVA_FAULT_SPEC");
}

}  // namespace
}  // namespace ava
