// Tests for §4.3 buffer-object-granularity memory swapping: a VM whose
// allocation would fail gets room made by transparently evicting LRU buffers
// (including other VMs'), which are restored on next use with contents
// intact. Guests never observe the contention as OOM.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/gen/vcl_hooks.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "vcl_gen.h"

namespace {

using ava_gen_vcl::MakeVclApiHandler;
using ava_gen_vcl::MakeVclBufferHooks;
using ava_gen_vcl::MakeVclGuestApi;
using ava_gen_vcl::VclApi;

struct SwapVm {
  std::shared_ptr<ava::ApiServerSession> session;
  std::shared_ptr<ava::GuestEndpoint> endpoint;
  VclApi api;
  vcl_context ctx = nullptr;
  vcl_command_queue queue = nullptr;
};

class SwapFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    vcl::SiloConfig config;
    config.device_global_mem_bytes = 8u << 20;  // 8 MiB device
    vcl::ResetDefaultSilo(config);
    swap_ = std::make_shared<ava::SwapManager>(MakeVclBufferHooks());
    router_ = std::make_unique<ava::Router>();
    router_->Start();
  }

  void TearDown() override {
    vms_.clear();
    router_->Stop();
    swap_.reset();
  }

  SwapVm& AddVm(ava::VmId vm_id) {
    auto pair = ava::MakeInProcChannel();
    auto vm = std::make_unique<SwapVm>();
    vm->session = std::make_shared<ava::ApiServerSession>(vm_id, swap_);
    vm->session->RegisterApi(ava_gen_vcl::kApiId, MakeVclApiHandler());
    EXPECT_TRUE(
        router_->AttachVm(vm_id, std::move(pair.host), vm->session).ok());
    ava::GuestEndpoint::Options opts;
    opts.vm_id = vm_id;
    vm->endpoint =
        std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
    vm->api = MakeVclGuestApi(vm->endpoint);
    // Standard setup.
    vcl_platform_id platform = nullptr;
    vm->api.vclGetPlatformIDs(1, &platform, nullptr);
    vcl_device_id device = nullptr;
    vm->api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device,
                            nullptr);
    vcl_int err = VCL_SUCCESS;
    vm->ctx = vm->api.vclCreateContext(&device, 1, &err);
    vm->queue = vm->api.vclCreateCommandQueue(vm->ctx, device, 0, &err);
    vms_.push_back(std::move(vm));
    return *vms_.back();
  }

  std::shared_ptr<ava::SwapManager> swap_;
  std::unique_ptr<ava::Router> router_;
  std::vector<std::unique_ptr<SwapVm>> vms_;
};

vcl_mem FillBuffer(const VclApi& api, vcl_context ctx, vcl_command_queue q,
                   std::size_t bytes, std::uint32_t pattern) {
  std::vector<std::uint32_t> data(bytes / 4, pattern);
  vcl_int err = VCL_SUCCESS;
  vcl_mem buf = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, bytes,
                                    data.data(), &err);
  EXPECT_EQ(err, VCL_SUCCESS) << "allocation failed for " << bytes;
  return buf;
}

bool CheckBuffer(const VclApi& api, vcl_command_queue q, vcl_mem buf,
                 std::size_t bytes, std::uint32_t pattern) {
  std::vector<std::uint32_t> data(bytes / 4, 0);
  if (api.vclEnqueueReadBuffer(q, buf, VCL_TRUE, 0, bytes, data.data(), 0,
                               nullptr, nullptr) != VCL_SUCCESS) {
    return false;
  }
  for (auto v : data) {
    if (v != pattern) {
      return false;
    }
  }
  return true;
}

TEST_F(SwapFixture, OversubscriptionTriggersSwapInsteadOfOom) {
  SwapVm& vm1 = AddVm(1);
  SwapVm& vm2 = AddVm(2);

  // VM1 fills most of the 8 MiB device.
  constexpr std::size_t kChunk = 2u << 20;
  std::vector<vcl_mem> vm1_bufs;
  for (int i = 0; i < 3; ++i) {
    vm1_bufs.push_back(FillBuffer(vm1.api, vm1.ctx, vm1.queue, kChunk,
                                  0x1000u + static_cast<std::uint32_t>(i)));
  }
  // VM2 now asks for 4 MiB: without swapping this would fail.
  vcl_mem vm2_buf = FillBuffer(vm2.api, vm2.ctx, vm2.queue, 2 * kChunk,
                               0x2222);
  ASSERT_NE(vm2_buf, nullptr);
  auto stats = swap_->stats();
  EXPECT_GE(stats.swap_outs, 1u);

  // VM1's swapped buffers transparently swap back in on access, with
  // contents intact (which may in turn evict others).
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(CheckBuffer(vm1.api, vm1.queue, vm1_bufs[i], kChunk,
                            0x1000u + static_cast<std::uint32_t>(i)))
        << "buffer " << i;
  }
  EXPECT_GE(swap_->stats().swap_ins, 1u);
  // And VM2's data also survived the shuffle.
  EXPECT_TRUE(CheckBuffer(vm2.api, vm2.queue, vm2_buf, 2 * kChunk, 0x2222));
}

TEST_F(SwapFixture, SingleVmCanOversubscribeItsOwnMemory) {
  SwapVm& vm = AddVm(1);
  constexpr std::size_t kChunk = 3u << 20;
  // 4 x 3 MiB = 12 MiB through an 8 MiB device.
  std::vector<vcl_mem> bufs;
  for (int i = 0; i < 4; ++i) {
    bufs.push_back(FillBuffer(vm.api, vm.ctx, vm.queue, kChunk,
                              0x7000u + static_cast<std::uint32_t>(i)));
    ASSERT_NE(bufs.back(), nullptr);
  }
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(CheckBuffer(vm.api, vm.queue, bufs[i], kChunk,
                              0x7000u + static_cast<std::uint32_t>(i)))
          << "round " << round << " buffer " << i;
    }
  }
  EXPECT_GE(swap_->stats().swap_outs, 2u);
}

TEST_F(SwapFixture, KernelsRunAgainstSwappedInBuffers) {
  SwapVm& vm = AddVm(1);
  const int n = 1 << 18;  // 1 MiB of floats
  std::vector<float> ones(n, 1.0f);
  vcl_int err = VCL_SUCCESS;
  vcl_mem data = vm.api.vclCreateBuffer(vm.ctx, VCL_MEM_COPY_HOST_PTR, n * 4,
                                        ones.data(), &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  // Blow the data buffer out of the device with filler allocations.
  std::vector<vcl_mem> filler;
  for (int i = 0; i < 4; ++i) {
    filler.push_back(FillBuffer(vm.api, vm.ctx, vm.queue, 2u << 20, 0xF));
  }
  EXPECT_GE(swap_->stats().swap_outs, 1u);
  // Launch a kernel against the (possibly swapped) buffer: the swap-aware
  // translate path restores it first.
  vcl_program prog = vm.api.vclCreateProgramWithSource(
      vm.ctx,
      "__kernel void inc(__global float* d, int n) {"
      "  int i = get_global_id(0); if (i < n) { d[i] = d[i] + 1.0f; } }",
      &err);
  ASSERT_EQ(vm.api.vclBuildProgram(prog, nullptr), VCL_SUCCESS);
  vcl_kernel kernel = vm.api.vclCreateKernel(prog, "inc", &err);
  vm.api.vclSetKernelArgBuffer(kernel, 0, data);
  vm.api.vclSetKernelArgScalar(kernel, 1, sizeof(int), &n);
  size_t global = n;
  ASSERT_EQ(vm.api.vclEnqueueNDRangeKernel(vm.queue, kernel, 1, nullptr,
                                           &global, nullptr, 0, nullptr,
                                           nullptr),
            VCL_SUCCESS);
  std::vector<float> out(n, 0.0f);
  ASSERT_EQ(vm.api.vclEnqueueReadBuffer(vm.queue, data, VCL_TRUE, 0, n * 4,
                                        out.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  for (int i = 0; i < n; i += 997) {
    ASSERT_FLOAT_EQ(out[i], 2.0f) << "at " << i;
  }
}

TEST_F(SwapFixture, TrulyImpossibleAllocationStillFails) {
  SwapVm& vm = AddVm(1);
  vcl_int err = VCL_SUCCESS;
  // 64 MiB cannot fit in an 8 MiB device no matter what gets evicted.
  vcl_mem huge = vm.api.vclCreateBuffer(vm.ctx, 0, 64u << 20, nullptr, &err);
  EXPECT_EQ(huge, nullptr);
  EXPECT_EQ(err, VCL_MEM_OBJECT_ALLOCATION_FAILURE);
}

}  // namespace
