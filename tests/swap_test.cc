// Tests for §4.3 buffer-object-granularity memory swapping: a VM whose
// allocation would fail gets room made by transparently evicting LRU buffers
// (including other VMs'), which are restored on next use with contents
// intact. Guests never observe the contention as OOM.
//
// The second half exercises the tiered hierarchy underneath (host arena →
// LZSS-compressed pages → disk spill), its fault cells (truncated/corrupt
// spill data and failed decompression seal DataLoss without taking the
// server down), the async write-back and prefetch machinery, a 4-lane +
// demotion-thread storm (the TSan target), and a SIGKILL-mid-write-back
// crash cell.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/gen/vcl_hooks.h"
#include "src/migrate/access_trace.h"
#include "src/obs/metrics.h"
#include "src/qat/codecs.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/server/swap_manager.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "vcl_gen.h"

namespace {

using ava_gen_vcl::MakeVclApiHandler;
using ava_gen_vcl::MakeVclBufferHooks;
using ava_gen_vcl::MakeVclGuestApi;
using ava_gen_vcl::VclApi;

struct SwapVm {
  std::shared_ptr<ava::ApiServerSession> session;
  std::shared_ptr<ava::GuestEndpoint> endpoint;
  VclApi api;
  vcl_context ctx = nullptr;
  vcl_command_queue queue = nullptr;
};

class SwapFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    vcl::SiloConfig config;
    config.device_global_mem_bytes = 8u << 20;  // 8 MiB device
    vcl::ResetDefaultSilo(config);
    swap_ = std::make_shared<ava::SwapManager>(MakeVclBufferHooks());
    router_ = std::make_unique<ava::Router>();
    router_->Start();
  }

  void TearDown() override {
    vms_.clear();
    router_->Stop();
    swap_.reset();
  }

  SwapVm& AddVm(ava::VmId vm_id) {
    auto pair = ava::MakeInProcChannel();
    auto vm = std::make_unique<SwapVm>();
    vm->session = std::make_shared<ava::ApiServerSession>(vm_id, swap_);
    vm->session->RegisterApi(ava_gen_vcl::kApiId, MakeVclApiHandler());
    EXPECT_TRUE(
        router_->AttachVm(vm_id, std::move(pair.host), vm->session).ok());
    ava::GuestEndpoint::Options opts;
    opts.vm_id = vm_id;
    vm->endpoint =
        std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
    vm->api = MakeVclGuestApi(vm->endpoint);
    // Standard setup.
    vcl_platform_id platform = nullptr;
    vm->api.vclGetPlatformIDs(1, &platform, nullptr);
    vcl_device_id device = nullptr;
    vm->api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device,
                            nullptr);
    vcl_int err = VCL_SUCCESS;
    vm->ctx = vm->api.vclCreateContext(&device, 1, &err);
    vm->queue = vm->api.vclCreateCommandQueue(vm->ctx, device, 0, &err);
    vms_.push_back(std::move(vm));
    return *vms_.back();
  }

  std::shared_ptr<ava::SwapManager> swap_;
  std::unique_ptr<ava::Router> router_;
  std::vector<std::unique_ptr<SwapVm>> vms_;
};

vcl_mem FillBuffer(const VclApi& api, vcl_context ctx, vcl_command_queue q,
                   std::size_t bytes, std::uint32_t pattern) {
  std::vector<std::uint32_t> data(bytes / 4, pattern);
  vcl_int err = VCL_SUCCESS;
  vcl_mem buf = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, bytes,
                                    data.data(), &err);
  EXPECT_EQ(err, VCL_SUCCESS) << "allocation failed for " << bytes;
  return buf;
}

bool CheckBuffer(const VclApi& api, vcl_command_queue q, vcl_mem buf,
                 std::size_t bytes, std::uint32_t pattern) {
  std::vector<std::uint32_t> data(bytes / 4, 0);
  if (api.vclEnqueueReadBuffer(q, buf, VCL_TRUE, 0, bytes, data.data(), 0,
                               nullptr, nullptr) != VCL_SUCCESS) {
    return false;
  }
  for (auto v : data) {
    if (v != pattern) {
      return false;
    }
  }
  return true;
}

TEST_F(SwapFixture, OversubscriptionTriggersSwapInsteadOfOom) {
  SwapVm& vm1 = AddVm(1);
  SwapVm& vm2 = AddVm(2);

  // VM1 fills most of the 8 MiB device.
  constexpr std::size_t kChunk = 2u << 20;
  std::vector<vcl_mem> vm1_bufs;
  for (int i = 0; i < 3; ++i) {
    vm1_bufs.push_back(FillBuffer(vm1.api, vm1.ctx, vm1.queue, kChunk,
                                  0x1000u + static_cast<std::uint32_t>(i)));
  }
  // VM2 now asks for 4 MiB: without swapping this would fail.
  vcl_mem vm2_buf = FillBuffer(vm2.api, vm2.ctx, vm2.queue, 2 * kChunk,
                               0x2222);
  ASSERT_NE(vm2_buf, nullptr);
  auto stats = swap_->stats();
  EXPECT_GE(stats.swap_outs, 1u);

  // VM1's swapped buffers transparently swap back in on access, with
  // contents intact (which may in turn evict others).
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(CheckBuffer(vm1.api, vm1.queue, vm1_bufs[i], kChunk,
                            0x1000u + static_cast<std::uint32_t>(i)))
        << "buffer " << i;
  }
  EXPECT_GE(swap_->stats().swap_ins, 1u);
  // And VM2's data also survived the shuffle.
  EXPECT_TRUE(CheckBuffer(vm2.api, vm2.queue, vm2_buf, 2 * kChunk, 0x2222));
}

TEST_F(SwapFixture, SingleVmCanOversubscribeItsOwnMemory) {
  SwapVm& vm = AddVm(1);
  constexpr std::size_t kChunk = 3u << 20;
  // 4 x 3 MiB = 12 MiB through an 8 MiB device.
  std::vector<vcl_mem> bufs;
  for (int i = 0; i < 4; ++i) {
    bufs.push_back(FillBuffer(vm.api, vm.ctx, vm.queue, kChunk,
                              0x7000u + static_cast<std::uint32_t>(i)));
    ASSERT_NE(bufs.back(), nullptr);
  }
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(CheckBuffer(vm.api, vm.queue, bufs[i], kChunk,
                              0x7000u + static_cast<std::uint32_t>(i)))
          << "round " << round << " buffer " << i;
    }
  }
  EXPECT_GE(swap_->stats().swap_outs, 2u);
}

TEST_F(SwapFixture, KernelsRunAgainstSwappedInBuffers) {
  SwapVm& vm = AddVm(1);
  const int n = 1 << 18;  // 1 MiB of floats
  std::vector<float> ones(n, 1.0f);
  vcl_int err = VCL_SUCCESS;
  vcl_mem data = vm.api.vclCreateBuffer(vm.ctx, VCL_MEM_COPY_HOST_PTR, n * 4,
                                        ones.data(), &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  // Blow the data buffer out of the device with filler allocations.
  std::vector<vcl_mem> filler;
  for (int i = 0; i < 4; ++i) {
    filler.push_back(FillBuffer(vm.api, vm.ctx, vm.queue, 2u << 20, 0xF));
  }
  EXPECT_GE(swap_->stats().swap_outs, 1u);
  // Launch a kernel against the (possibly swapped) buffer: the swap-aware
  // translate path restores it first.
  vcl_program prog = vm.api.vclCreateProgramWithSource(
      vm.ctx,
      "__kernel void inc(__global float* d, int n) {"
      "  int i = get_global_id(0); if (i < n) { d[i] = d[i] + 1.0f; } }",
      &err);
  ASSERT_EQ(vm.api.vclBuildProgram(prog, nullptr), VCL_SUCCESS);
  vcl_kernel kernel = vm.api.vclCreateKernel(prog, "inc", &err);
  vm.api.vclSetKernelArgBuffer(kernel, 0, data);
  vm.api.vclSetKernelArgScalar(kernel, 1, sizeof(int), &n);
  size_t global = n;
  ASSERT_EQ(vm.api.vclEnqueueNDRangeKernel(vm.queue, kernel, 1, nullptr,
                                           &global, nullptr, 0, nullptr,
                                           nullptr),
            VCL_SUCCESS);
  std::vector<float> out(n, 0.0f);
  ASSERT_EQ(vm.api.vclEnqueueReadBuffer(vm.queue, data, VCL_TRUE, 0, n * 4,
                                        out.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  for (int i = 0; i < n; i += 997) {
    ASSERT_FLOAT_EQ(out[i], 2.0f) << "at " << i;
  }
}

TEST_F(SwapFixture, TrulyImpossibleAllocationStillFails) {
  SwapVm& vm = AddVm(1);
  vcl_int err = VCL_SUCCESS;
  // 64 MiB cannot fit in an 8 MiB device no matter what gets evicted.
  vcl_mem huge = vm.api.vclCreateBuffer(vm.ctx, 0, 64u << 20, nullptr, &err);
  EXPECT_EQ(huge, nullptr);
  EXPECT_EQ(err, VCL_MEM_OBJECT_ALLOCATION_FAILURE);
}

TEST_F(SwapFixture, TierResidencyIsVisibleThroughLedgerAndSessions) {
  SwapVm& vm1 = AddVm(1);
  SwapVm& vm2 = AddVm(2);
  constexpr std::size_t kChunk = 2u << 20;
  std::vector<vcl_mem> bufs;
  for (int i = 0; i < 3; ++i) {
    bufs.push_back(FillBuffer(vm1.api, vm1.ctx, vm1.queue, kChunk, 0x51u + i));
  }
  FillBuffer(vm2.api, vm2.ctx, vm2.queue, 2 * kChunk, 0x2222);
  ASSERT_GE(swap_->stats().swap_outs, 1u);

  // stats() refreshes the swap.vm<id>.* gauges; evicted pages land in the
  // host tier (64 MiB default budget, nothing demotes further here).
  const ava::SwapManager::Stats stats = swap_->stats();
  EXPECT_GT(stats.host_tier_bytes, 0u);
  EXPECT_GT(stats.resident_bytes, 0u);
  const ava::obs::MetricsSnapshot metrics =
      ava::obs::MetricRegistry::Default().Snapshot();
  const auto* vm1_host = metrics.Find("swap.vm1.host_bytes");
  ASSERT_NE(vm1_host, nullptr);
  EXPECT_TRUE(vm1_host->has_gauge);
  EXPECT_GT(vm1_host->gauge_sum, 0);

  // The same gauges surface as columns in `avactl sessions` and the
  // accounting ledger, per VM.
  const std::string sessions = router_->SessionsText();
  EXPECT_NE(sessions.find("dev_bytes host_bytes comp_bytes disk_bytes"),
            std::string::npos)
      << sessions;
  const std::string account = router_->ledger().Text();
  EXPECT_NE(account.find("dev_bytes host_bytes comp_bytes disk_bytes"),
            std::string::npos)
      << account;
}

// ---- tiered hierarchy with scripted hooks (no silo) ----
//
// A content-tracking fake device: realloc hands out opaque ids and remembers
// the bytes, read_back returns them, free forgets them. Thread-safe so the
// storm test can run 4 lanes against the background demotion thread.

constexpr std::uint32_t kTag = 7;

struct TierFakeDevice {
  explicit TierFakeDevice(std::size_t cap) : capacity(cap) {}

  void* Alloc(const ava::Bytes& content) {
    std::lock_guard<std::mutex> lock(m);
    if (used + content.size() > capacity) {
      return nullptr;
    }
    used += content.size();
    void* p = reinterpret_cast<void*>(next++);
    mem[p] = content;
    return p;
  }

  ava::Bytes Contents(void* p) {
    std::lock_guard<std::mutex> lock(m);
    auto it = mem.find(p);
    return it == mem.end() ? ava::Bytes{} : it->second;
  }

  const std::size_t capacity;
  std::mutex m;
  std::size_t used = 0;
  std::uintptr_t next = 0x1000;
  std::unordered_map<void*, ava::Bytes> mem;
  std::atomic<int> read_backs{0};
};

ava::BufferHooks MakeTierHooks(TierFakeDevice* dev) {
  ava::BufferHooks hooks;
  hooks.buffer_type_tag = kTag;
  hooks.read_back = [dev](ava::ObjectRegistry*, ava::WireHandle,
                          ava::ObjectRegistry::Entry& entry,
                          ava::Bytes* out) -> ava::Status {
    std::lock_guard<std::mutex> lock(dev->m);
    auto it = dev->mem.find(entry.real);
    if (it == dev->mem.end()) {
      return ava::Internal("read_back of unknown fake buffer");
    }
    *out = it->second;
    dev->read_backs.fetch_add(1);
    return ava::OkStatus();
  };
  hooks.free_buffer = [dev](ava::ObjectRegistry*,
                            ava::ObjectRegistry::Entry& entry) {
    std::lock_guard<std::mutex> lock(dev->m);
    dev->mem.erase(entry.real);
    dev->used -= entry.size;
  };
  hooks.realloc_buffer = [dev](ava::ObjectRegistry*, ava::WireHandle,
                               ava::ObjectRegistry::Entry&,
                               const ava::Bytes& contents) -> void* {
    return dev->Alloc(contents);
  };
  hooks.write_back = [dev](ava::ObjectRegistry*, ava::WireHandle,
                           ava::ObjectRegistry::Entry& entry,
                           const ava::Bytes& contents) -> ava::Status {
    std::lock_guard<std::mutex> lock(dev->m);
    dev->mem[entry.real] = contents;
    return ava::OkStatus();
  };
  return hooks;
}

ava::Bytes Pattern(std::size_t n, std::uint8_t seed, bool compressible) {
  ava::Bytes out(n);
  if (compressible) {
    std::memset(out.data(), seed, n);
  } else {
    std::mt19937 rng(seed);
    for (auto& b : out) {
      b = static_cast<std::uint8_t>(rng());
    }
  }
  return out;
}

ava::WireHandle MakeBuf(TierFakeDevice* dev, ava::ObjectRegistry* reg,
                        const ava::Bytes& content) {
  void* p = dev->Alloc(content);
  EXPECT_NE(p, nullptr);
  ava::WireHandle id = reg->Insert(kTag, p);
  reg->SetMeta(id, 0, content.size());
  return id;
}

std::string FreshSpillDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name + "." +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Options for deterministic tests: no background thread (TickForTest drives
// the passes by hand).
ava::SwapManager::Options TierOptions(std::size_t host_bytes, bool compress,
                                      std::string spill_dir) {
  ava::SwapManager::Options options;
  options.host_tier_bytes = host_bytes;
  options.compress = compress;
  options.spill_dir = std::move(spill_dir);
  options.demote_interval_ms = 0;
  return options;
}

TEST(TieredSwapTest, DemotionCompressesThenSpillsAndRestores) {
  TierFakeDevice dev(256u << 10);
  ava::SwapManager swap(MakeTierHooks(&dev),
                        TierOptions(8u << 10, /*compress=*/true,
                                    FreshSpillDir("tier_spill")));
  ava::ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);

  std::vector<ava::WireHandle> ids;
  std::vector<ava::Bytes> contents;
  for (int i = 0; i < 4; ++i) {
    contents.push_back(
        Pattern(32u << 10, static_cast<std::uint8_t>(0xA0 + i), true));
    ids.push_back(MakeBuf(&dev, &registry, contents.back()));
  }
  // Evict everything: 128 KiB of raw pages in an 8 KiB host budget.
  EXPECT_EQ(swap.MakeRoom(1u << 20, &registry), 128u << 10);
  swap.TickForTest();

  auto stats = swap.stats();
  EXPECT_GE(stats.demoted_compressed, 1u);
  EXPECT_GE(stats.demoted_disk, 1u);
  EXPECT_GT(stats.disk_tier_bytes, 0u);
  bool saw_disk = false;
  for (ava::WireHandle id : ids) {
    saw_disk |= registry.Find(id)->tier == ava::SwapTier::kDisk;
  }
  EXPECT_TRUE(saw_disk);

  // Every page restores bit-exact through decompression + spill read + crc.
  for (int i = 0; i < 4; ++i) {
    auto real = swap.TranslatePinned(&registry, ids[i]);
    ASSERT_TRUE(real.ok()) << real.status().ToString();
    EXPECT_EQ(dev.Contents(*real), contents[i]) << "buffer " << i;
    swap.UnpinAll(&registry);
  }
  EXPECT_EQ(swap.stats().data_loss_sealed, 0u);
  swap.DetachRegistry(&registry);
}

TEST(TieredSwapTest, IncompressiblePagesAreRejectedNotMangled) {
  TierFakeDevice dev(256u << 10);
  ava::SwapManager swap(
      MakeTierHooks(&dev),
      TierOptions(1u << 10, /*compress=*/true, /*spill_dir=*/""));
  ava::ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);

  const ava::Bytes noise = Pattern(32u << 10, 0x3C, /*compressible=*/false);
  ava::WireHandle id = MakeBuf(&dev, &registry, noise);
  EXPECT_EQ(swap.MakeRoom(1u << 20, &registry), noise.size());
  swap.TickForTest();

  // The sample probe finds random bytes incompressible: the page stays a
  // raw host page (no disk tier configured) and is counted, not retried.
  EXPECT_GE(swap.stats().compress_rejects, 1u);
  EXPECT_EQ(registry.Find(id)->tier, ava::SwapTier::kHost);
  swap.TickForTest();
  EXPECT_EQ(swap.stats().compress_rejects, 1u);  // no re-probe

  auto real = swap.TranslatePinned(&registry, id);
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(dev.Contents(*real), noise);
  swap.UnpinAll(&registry);
  swap.DetachRegistry(&registry);
}

TEST(TieredSwapTest, AsyncWriteBackLetsEvictionSkipReadBack) {
  TierFakeDevice dev(256u << 10);
  ava::SwapManager swap(MakeTierHooks(&dev),
                        TierOptions(64u << 20, true, ""));
  ava::ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);

  const ava::Bytes a_bytes = Pattern(16u << 10, 0x11, true);
  const ava::Bytes b_bytes = Pattern(16u << 10, 0x22, true);
  ava::WireHandle a = MakeBuf(&dev, &registry, a_bytes);
  ava::WireHandle b = MakeBuf(&dev, &registry, b_bytes);

  // Pass 1 clears the creation-time reference bits; pass 2 sees both
  // buffers cold and captures clean copies.
  swap.TickForTest();
  swap.TickForTest();
  EXPECT_GE(swap.stats().writeback_clean, 2u);
  const int read_backs_before = dev.read_backs.load();

  // Eviction under pressure now uses the clean copies: no device read-back.
  EXPECT_EQ(swap.MakeRoom(1u << 20, &registry), 32u << 10);
  EXPECT_EQ(dev.read_backs.load(), read_backs_before);
  EXPECT_GE(swap.stats().writeback_hits, 2u);

  // A pin invalidates the clean copy (the call may write the buffer), so
  // the next eviction must read back.
  auto real = swap.TranslatePinned(&registry, a);
  ASSERT_TRUE(real.ok());
  swap.UnpinAll(&registry);
  swap.TickForTest();  // re-arm: clears ref bit
  swap.TickForTest();  // captures a fresh clean copy
  auto real2 = swap.TranslatePinned(&registry, a);  // invalidates it again
  ASSERT_TRUE(real2.ok());
  EXPECT_FALSE(registry.Find(a)->clean_valid);
  swap.UnpinAll(&registry);

  // Contents survive the clean-copy eviction path bit-exact.
  auto restored = swap.TranslatePinned(&registry, b);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(dev.Contents(*restored), b_bytes);
  swap.UnpinAll(&registry);
  swap.DetachRegistry(&registry);
}

TEST(TieredSwapTest, PrefetchPromotesPredictedSuccessor) {
  TierFakeDevice dev(256u << 10);
  ava::SwapManager swap(MakeTierHooks(&dev),
                        TierOptions(1u << 10, true, ""));
  ava::ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);

  ava::WireHandle a = MakeBuf(&dev, &registry, Pattern(16u << 10, 0x11, true));
  ava::WireHandle b = MakeBuf(&dev, &registry, Pattern(16u << 10, 0x22, true));

  // Train the access trace: a is always followed by b.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(swap.TranslatePinned(&registry, a).ok());
    ASSERT_TRUE(swap.TranslatePinned(&registry, b).ok());
    swap.UnpinAll(&registry);
  }
  // Push both down to the compressed tier (1 KiB host budget, no disk).
  EXPECT_EQ(swap.MakeRoom(1u << 20, &registry), 32u << 10);
  swap.TickForTest();
  ASSERT_EQ(registry.Find(a)->tier, ava::SwapTier::kCompressed);
  ASSERT_EQ(registry.Find(b)->tier, ava::SwapTier::kCompressed);

  // Demand swap-in of a predicts b; the next pass promotes b from the
  // compressed tier to a raw host page ahead of its use.
  ASSERT_TRUE(swap.TranslatePinned(&registry, a).ok());
  swap.UnpinAll(&registry);
  EXPECT_GE(swap.stats().prefetch_issued, 1u);
  swap.TickForTest();
  EXPECT_EQ(registry.Find(b)->tier, ava::SwapTier::kHost);
  EXPECT_TRUE(registry.Find(b)->prefetched);

  // Touching b now is a prefetch hit (host-tier swap-in, no decompress).
  ASSERT_TRUE(swap.TranslatePinned(&registry, b).ok());
  swap.UnpinAll(&registry);
  EXPECT_GE(swap.stats().prefetch_hits, 1u);
  swap.DetachRegistry(&registry);
}

TEST(TieredSwapTest, ResourceExhaustionKeepsSwappedDataSafe) {
  TierFakeDevice dev(64u << 10);
  ava::SwapManager swap(MakeTierHooks(&dev),
                        TierOptions(64u << 20, true, ""));
  ava::ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);

  const ava::Bytes a_bytes = Pattern(32u << 10, 0x77, true);
  ava::WireHandle a = MakeBuf(&dev, &registry, a_bytes);
  ava::WireHandle b = MakeBuf(&dev, &registry, Pattern(32u << 10, 0x88, true));
  EXPECT_GE(swap.MakeRoom(32u << 10, &registry), 32u << 10);  // evicts a
  ASSERT_TRUE(registry.Find(a)->swapped);

  // Pin everything resident, then fill the device: a cannot come back.
  ASSERT_TRUE(swap.TranslatePinned(&registry, b).ok());
  ava::WireHandle c = MakeBuf(&dev, &registry, Pattern(32u << 10, 0x99, true));
  ASSERT_TRUE(swap.TranslatePinned(&registry, c).ok());

  auto blocked = swap.TranslatePinned(&registry, a);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), ava::StatusCode::kResourceExhausted);
  // The data is parked, not lost: still swapped, bytes intact.
  EXPECT_TRUE(registry.Find(a)->swapped);
  EXPECT_NE(registry.Find(a)->tier, ava::SwapTier::kLost);

  // Release the pins and the same translate succeeds with contents intact.
  swap.UnpinAll(&registry);
  auto real = swap.TranslatePinned(&registry, a);
  ASSERT_TRUE(real.ok()) << real.status().ToString();
  EXPECT_EQ(dev.Contents(*real), a_bytes);
  swap.UnpinAll(&registry);
  swap.DetachRegistry(&registry);
}

// ---- fault cells: integrity failures seal DataLoss, server stays up ----

TEST(TieredSwapFaultTest, TruncatedSpillFileSealsDataLoss) {
  const std::string dir = FreshSpillDir("tier_trunc");
  TierFakeDevice dev(256u << 10);
  ava::SwapManager swap(MakeTierHooks(&dev),
                        TierOptions(0, /*compress=*/false, dir));
  ava::ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);

  ava::WireHandle a = MakeBuf(&dev, &registry, Pattern(32u << 10, 0xAA, true));
  const ava::Bytes b_bytes = Pattern(32u << 10, 0xBB, true);
  ava::WireHandle b = MakeBuf(&dev, &registry, b_bytes);
  EXPECT_GE(swap.MakeRoom(32u << 10, &registry), 32u << 10);  // evicts a
  swap.TickForTest();                                         // spills a
  ASSERT_EQ(registry.Find(a)->tier, ava::SwapTier::kDisk);

  for (const auto& f : std::filesystem::directory_iterator(dir)) {
    ASSERT_EQ(::truncate(f.path().c_str(), 0), 0);
  }
  auto lost = swap.TranslatePinned(&registry, a);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), ava::StatusCode::kDataLoss);
  EXPECT_EQ(registry.Find(a)->tier, ava::SwapTier::kLost);
  EXPECT_GE(swap.stats().data_loss_sealed, 1u);
  // Sealed means sealed: the same answer again, no crash, no retry loop.
  EXPECT_EQ(swap.TranslatePinned(&registry, a).status().code(),
            ava::StatusCode::kDataLoss);
  // And the server keeps serving the healthy buffer.
  auto fine = swap.TranslatePinned(&registry, b);
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(dev.Contents(*fine), b_bytes);
  swap.UnpinAll(&registry);
  swap.DetachRegistry(&registry);
}

TEST(TieredSwapFaultTest, CorruptSpillPayloadSealsDataLoss) {
  const std::string dir = FreshSpillDir("tier_corrupt");
  TierFakeDevice dev(256u << 10);
  ava::SwapManager swap(MakeTierHooks(&dev),
                        TierOptions(0, /*compress=*/false, dir));
  ava::ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);

  ava::WireHandle a = MakeBuf(&dev, &registry, Pattern(32u << 10, 0xAB, true));
  MakeBuf(&dev, &registry, Pattern(32u << 10, 0xCD, true));
  EXPECT_GE(swap.MakeRoom(32u << 10, &registry), 32u << 10);
  swap.TickForTest();
  ASSERT_EQ(registry.Find(a)->tier, ava::SwapTier::kDisk);

  // Flip bytes inside the spilled payload: the record crc must catch it.
  const std::uint64_t offset = registry.Find(a)->disk_offset;
  std::string spill_path;
  for (const auto& f : std::filesystem::directory_iterator(dir)) {
    spill_path = f.path().string();
  }
  ASSERT_FALSE(spill_path.empty());
  const int fd = ::open(spill_path.c_str(), O_WRONLY);
  ASSERT_GE(fd, 0);
  const std::uint8_t garbage[8] = {0x00, 0xFF, 0x00, 0xFF,
                                   0x00, 0xFF, 0x00, 0xFF};
  ASSERT_EQ(::pwrite(fd, garbage, sizeof(garbage),
                     static_cast<off_t>(offset) + 16 + 100),
            static_cast<ssize_t>(sizeof(garbage)));
  ::close(fd);

  auto lost = swap.TranslatePinned(&registry, a);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), ava::StatusCode::kDataLoss);
  EXPECT_EQ(registry.Find(a)->tier, ava::SwapTier::kLost);
  EXPECT_GE(swap.stats().data_loss_sealed, 1u);
  swap.DetachRegistry(&registry);
}

TEST(TieredSwapFaultTest, FailedDecompressSealsDataLoss) {
  TierFakeDevice dev(256u << 10);
  ava::SwapManager swap(MakeTierHooks(&dev), TierOptions(0, true, ""));
  ava::ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);

  ava::WireHandle a = MakeBuf(&dev, &registry, Pattern(32u << 10, 0xEE, true));
  EXPECT_GE(swap.MakeRoom(1u << 20, &registry), 32u << 10);
  swap.TickForTest();
  ASSERT_EQ(registry.Find(a)->tier, ava::SwapTier::kCompressed);

  // Mangle the compressed page in place.
  registry.Find(a)->swap_copy.resize(3);
  auto lost = swap.TranslatePinned(&registry, a);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), ava::StatusCode::kDataLoss);
  EXPECT_EQ(registry.Find(a)->tier, ava::SwapTier::kLost);
  EXPECT_GE(swap.stats().data_loss_sealed, 1u);
  swap.DetachRegistry(&registry);
}

// ---- snapshot materialization across tiers (migration integration) ----

TEST(TieredSwapTest, SnapshotMaterializesFromEveryTier) {
  const std::string dir = FreshSpillDir("tier_snap");
  TierFakeDevice dev(256u << 10);
  ava::SwapManager swap(MakeTierHooks(&dev), TierOptions(0, true, dir));
  ava::ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);

  const ava::Bytes raw = Pattern(32u << 10, 0x42, true);
  ava::WireHandle a = MakeBuf(&dev, &registry, raw);
  EXPECT_GE(swap.MakeRoom(1u << 20, &registry), 32u << 10);

  // Host tier: both the manager path and the manager-free fallback work.
  auto host_copy = ava::MaterializeSwappedCopy(*registry.Find(a));
  ASSERT_TRUE(host_copy.ok());
  EXPECT_EQ(*host_copy, raw);

  swap.TickForTest();  // -> compressed, then spilled (budget 0)
  ASSERT_EQ(registry.Find(a)->tier, ava::SwapTier::kDisk);
  // Disk tier requires the owning manager (spill file); the free function
  // says so instead of guessing.
  EXPECT_EQ(ava::MaterializeSwappedCopy(*registry.Find(a)).status().code(),
            ava::StatusCode::kFailedPrecondition);
  auto disk_copy = swap.MaterializeSwapped(*registry.Find(a));
  ASSERT_TRUE(disk_copy.ok()) << disk_copy.status().ToString();
  EXPECT_EQ(*disk_copy, raw);
  swap.DetachRegistry(&registry);
}

// ---- concurrency: 4 lanes + the background demotion thread (TSan) ----

TEST(TieredSwapStormTest, ConcurrentLanesSwapStorm) {
  TierFakeDevice dev(256u << 10);
  ava::SwapManager::Options options;
  options.host_tier_bytes = 64u << 10;
  options.compress = true;
  options.spill_dir = FreshSpillDir("tier_storm");
  options.prefetch = true;
  options.demote_interval_ms = 1;  // aggressive background churn
  ava::SwapManager swap(MakeTierHooks(&dev), options);

  // Two VMs, two lanes each: fast-path state shards across the two
  // registries while eviction policy and the demoter contend globally.
  ava::ObjectRegistry reg0(1), reg1(2);
  swap.AttachRegistry(&reg0);
  swap.AttachRegistry(&reg1);

  constexpr int kThreads = 4;
  constexpr int kBuffersPerThread = 4;
  constexpr int kIters = 200;
  constexpr std::size_t kBufBytes = 32u << 10;  // 512 KiB total, 2x oversub

  struct Owned {
    ava::WireHandle id;
    ava::Bytes content;
  };
  std::vector<std::vector<Owned>> owned(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ava::ObjectRegistry* reg = t < 2 ? &reg0 : &reg1;
    for (int i = 0; i < kBuffersPerThread; ++i) {
      ava::Bytes content = Pattern(
          kBufBytes, static_cast<std::uint8_t>(t * 16 + i + 1), i % 2 == 0);
      // The device can't hold everything at once: make room as we go, like
      // the generated alloc path does.
      void* p = dev.Alloc(content);
      if (p == nullptr) {
        swap.MakeRoom(kBufBytes, reg);
        p = dev.Alloc(content);
      }
      ASSERT_NE(p, nullptr);
      ava::WireHandle id = reg->Insert(kTag, p);
      reg->SetMeta(id, 0, content.size());
      swap.NoteCreated(reg, id);
      owned[t].push_back(Owned{id, std::move(content)});
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> lanes;
  for (int t = 0; t < kThreads; ++t) {
    lanes.emplace_back([&, t] {
      ava::ObjectRegistry* reg = t < 2 ? &reg0 : &reg1;
      std::mt19937 rng(t);
      for (int iter = 0; iter < kIters; ++iter) {
        const Owned& pick = owned[t][rng() % kBuffersPerThread];
        auto real = swap.TranslatePinned(reg, pick.id);
        if (!real.ok()) {
          // Transient device-full is legal under 4 concurrent pinners;
          // anything else (DataLoss, NotFound) is a bug.
          if (real.status().code() != ava::StatusCode::kResourceExhausted) {
            failures.fetch_add(1);
          }
          swap.UnpinAll(reg);
          continue;
        }
        if (dev.Contents(*real) != pick.content) {
          failures.fetch_add(1);
        }
        if (iter % 16 == 0) {
          swap.MakeRoom(kBufBytes, reg);
        }
        swap.UnpinAll(reg);
        if (iter % 32 == 0) {
          (void)swap.stats();
        }
      }
    });
  }
  for (auto& lane : lanes) {
    lane.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: every buffer still restores bit-exact through the hierarchy.
  for (int t = 0; t < kThreads; ++t) {
    ava::ObjectRegistry* reg = t < 2 ? &reg0 : &reg1;
    for (const Owned& o : owned[t]) {
      auto real = swap.TranslatePinned(reg, o.id);
      ASSERT_TRUE(real.ok()) << real.status().ToString();
      EXPECT_EQ(dev.Contents(*real), o.content);
      swap.UnpinAll(reg);
      swap.MakeRoom(kBufBytes, reg);  // keep room for the next one
    }
  }
  EXPECT_EQ(swap.stats().data_loss_sealed, 0u);
  swap.DetachRegistry(&reg0);
  swap.DetachRegistry(&reg1);
}

// ---- crash cell: SIGKILL mid-write-back, re-attach on the same dir ----

TEST(TieredSwapCrashTest, SigkillMidWriteBackLeavesNoTornState) {
  const std::string dir = FreshSpillDir("tier_crash");
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: churn the full hierarchy (evict → compress → spill → swap-in)
    // as fast as possible until SIGKILLed mid-flight.
    TierFakeDevice dev(256u << 10);
    ava::SwapManager swap(MakeTierHooks(&dev), TierOptions(0, true, dir));
    ava::ObjectRegistry registry(1);
    swap.AttachRegistry(&registry);
    std::vector<ava::WireHandle> ids;
    for (int i = 0; i < 4; ++i) {
      ids.push_back(
          MakeBuf(&dev, &registry, Pattern(32u << 10, 0x10 + i, true)));
    }
    for (;;) {
      swap.MakeRoom(1u << 20, &registry);
      swap.TickForTest();  // async write-back + spill, repeatedly
      for (ava::WireHandle id : ids) {
        if (swap.TranslatePinned(&registry, id).ok()) {
          swap.UnpinAll(&registry);
        }
      }
    }
    ::_exit(0);  // unreachable
  }
  ::usleep(150 * 1000);
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The kill leaves an orphaned spill file behind (unlink happens only in
  // the destructor). A fresh manager on the same directory must come up
  // clean and run the full hierarchy with no torn state.
  EXPECT_FALSE(std::filesystem::is_empty(dir));
  TierFakeDevice dev(256u << 10);
  ava::SwapManager swap(MakeTierHooks(&dev), TierOptions(0, true, dir));
  ava::ObjectRegistry registry(1);
  swap.AttachRegistry(&registry);
  const ava::Bytes content = Pattern(32u << 10, 0x5A, true);
  ava::WireHandle id = MakeBuf(&dev, &registry, content);
  EXPECT_GE(swap.MakeRoom(1u << 20, &registry), content.size());
  swap.TickForTest();
  ASSERT_EQ(registry.Find(id)->tier, ava::SwapTier::kDisk);
  auto real = swap.TranslatePinned(&registry, id);
  ASSERT_TRUE(real.ok()) << real.status().ToString();
  EXPECT_EQ(dev.Contents(*real), content);
  EXPECT_EQ(swap.stats().data_loss_sealed, 0u);
  swap.UnpinAll(&registry);
  swap.DetachRegistry(&registry);
}

// ---- access-trace + options plumbing ----

TEST(AccessTraceTest, LearnsSuccessorChainsPerVm) {
  ava::AccessTrace trace(64);
  trace.NoteTouch(1, 10);
  trace.NoteTouch(1, 11);
  trace.NoteTouch(1, 12);
  auto next = trace.PredictNext(1, 10, 2);
  ASSERT_EQ(next.size(), 2u);
  EXPECT_EQ(next[0], 11u);
  EXPECT_EQ(next[1], 12u);
  // Transitions are per VM: vm 2 has no history for handle 10.
  EXPECT_TRUE(trace.PredictNext(2, 10).empty());
  // Re-training overwrites: 10 -> 99 now.
  trace.NoteTouch(1, 10);
  trace.NoteTouch(1, 99);
  EXPECT_EQ(trace.PredictNext(1, 10, 1).at(0), 99u);
}

TEST(SwapOptionsTest, FromEnvParsesTheKnobs) {
  ::setenv("AVA_SWAP_HOST_BYTES", "12345678", 1);
  ::setenv("AVA_SWAP_COMPRESS", "0", 1);
  ::setenv("AVA_SWAP_SPILL_DIR", "/tmp/ava-swap-test", 1);
  ::setenv("AVA_SWAP_PREFETCH", "off", 1);
  auto options = ava::SwapManager::Options::FromEnv();
  EXPECT_EQ(options.host_tier_bytes, 12345678u);
  EXPECT_FALSE(options.compress);
  EXPECT_EQ(options.spill_dir, "/tmp/ava-swap-test");
  EXPECT_FALSE(options.prefetch);
  ::unsetenv("AVA_SWAP_HOST_BYTES");
  ::unsetenv("AVA_SWAP_COMPRESS");
  ::unsetenv("AVA_SWAP_SPILL_DIR");
  ::unsetenv("AVA_SWAP_PREFETCH");
  auto defaults = ava::SwapManager::Options::FromEnv();
  EXPECT_EQ(defaults.host_tier_bytes, 64u << 20);
  EXPECT_TRUE(defaults.compress);
  EXPECT_TRUE(defaults.spill_dir.empty());
  EXPECT_TRUE(defaults.prefetch);
}

}  // namespace
