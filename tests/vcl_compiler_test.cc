// Tests for the VCL kernel-language compiler and VM: lexing, parsing,
// codegen diagnostics, end-to-end kernel execution, barriers, traps, and
// differential property tests against C++ reference implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/vcl/compiler/codegen.h"
#include "src/vcl/compiler/lexer.h"
#include "src/vcl/compiler/parser.h"
#include "src/vcl/compiler/vm.h"

namespace vcl {
namespace {

// ------------------------------ helpers ------------------------------------

template <typename T>
KernelArg BufferArgT(std::vector<T>& data) {
  KernelArg arg;
  arg.kind = KernelArg::Kind::kBuffer;
  arg.buffer_data = reinterpret_cast<std::uint8_t*>(data.data());
  arg.buffer_size = data.size() * sizeof(T);
  return arg;
}

KernelArg IntArg(std::int32_t v) {
  KernelArg arg;
  arg.kind = KernelArg::Kind::kScalar;
  arg.scalar_cell = static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
  return arg;
}

KernelArg LocalArg(std::size_t bytes) {
  KernelArg arg;
  arg.kind = KernelArg::Kind::kLocal;
  arg.local_size = bytes;
  return arg;
}

const CompiledKernel& MustCompile(const std::string& src,
                                  CompiledProgram* storage,
                                  const std::string& name) {
  auto result = CompileSource(src);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  *storage = std::move(result).value();
  const CompiledKernel* k = storage->FindKernel(name);
  EXPECT_NE(k, nullptr);
  return *k;
}

// ------------------------------- lexer -------------------------------------

TEST(LexerTest, TokenizesOperatorsAndLiterals) {
  auto toks = Lex("x += 42 * 3.5f; // comment\n y <<= 1");
  ASSERT_TRUE(toks.ok());
  // x += 42 * 3.5f ; y << = 1 EOF   (no <<= token: lexes as << then =)
  EXPECT_EQ((*toks)[0].kind, TokKind::kIdent);
  EXPECT_EQ((*toks)[1].kind, TokKind::kPlusAssign);
  EXPECT_EQ((*toks)[2].kind, TokKind::kIntLit);
  EXPECT_EQ((*toks)[2].int_value, 42);
  EXPECT_EQ((*toks)[3].kind, TokKind::kStar);
  EXPECT_EQ((*toks)[4].kind, TokKind::kFloatLit);
  EXPECT_FLOAT_EQ((*toks)[4].float_value, 3.5f);
  EXPECT_EQ((*toks)[5].kind, TokKind::kSemi);
}

TEST(LexerTest, HexAndExponentLiterals) {
  auto toks = Lex("0xFF 1e3 2.5e-2 7u");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].int_value, 255);
  EXPECT_FLOAT_EQ((*toks)[1].float_value, 1000.0f);
  EXPECT_FLOAT_EQ((*toks)[2].float_value, 0.025f);
  EXPECT_EQ((*toks)[3].int_value, 7);
}

TEST(LexerTest, BlockCommentsAndKeywords) {
  auto toks = Lex("__kernel /* a\nmulti\nline */ void");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokKind::kKwKernel);
  EXPECT_EQ((*toks)[1].kind, TokKind::kKwVoid);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Lex("int a = $;").ok());
  EXPECT_FALSE(Lex("/* unterminated").ok());
}

TEST(LexerTest, TracksLineNumbers) {
  auto toks = Lex("a\nb\n  c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[1].line, 2);
  EXPECT_EQ((*toks)[2].line, 3);
  EXPECT_EQ((*toks)[2].column, 3);
}

// ------------------------------- parser ------------------------------------

TEST(ParserTest, ParsesMinimalKernel) {
  auto prog = ParseProgram("__kernel void f(__global float* a) { a[0] = 1.0f; }");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_EQ(prog->kernels.size(), 1u);
  EXPECT_EQ(prog->kernels[0].name, "f");
  ASSERT_EQ(prog->kernels[0].params.size(), 1u);
  EXPECT_TRUE(prog->kernels[0].params[0].type.IsPointer());
}

TEST(ParserTest, ParsesMultipleKernels) {
  auto prog = ParseProgram(
      "__kernel void f(int n) {}\n__kernel void g(float x) {}");
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->kernels.size(), 2u);
}

TEST(ParserTest, RejectsMissingBrace) {
  EXPECT_FALSE(ParseProgram("__kernel void f(int n) {").ok());
}

TEST(ParserTest, RejectsEmptyProgram) {
  EXPECT_FALSE(ParseProgram("   ").ok());
}

TEST(ParserTest, RejectsPointerWithoutSpace) {
  EXPECT_FALSE(ParseProgram("__kernel void f(float* a) {}").ok());
}

TEST(ParserTest, RejectsReturnWithValue) {
  EXPECT_FALSE(
      ParseProgram("__kernel void f(int n) { return n; }").ok());
}

TEST(ParserTest, MultiDeclaratorsStayInScope) {
  auto prog = ParseProgram(
      "__kernel void f(__global int* a) { int i = 1, j = 2; a[0] = i + j; }");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
}

// ----------------------------- codegen diagnostics -------------------------

TEST(CodegenTest, RejectsUndeclaredIdentifier) {
  auto r = CompileSource("__kernel void f(__global int* a) { a[0] = zz; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("undeclared"), std::string::npos);
}

TEST(CodegenTest, RejectsUnknownFunction) {
  auto r = CompileSource("__kernel void f(__global float* a) { a[0] = tan(1.0f); }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown function"), std::string::npos);
}

TEST(CodegenTest, RejectsRedeclaration) {
  auto r = CompileSource("__kernel void f(int n) { int n = 2; int x; int x; }");
  EXPECT_FALSE(r.ok());
}

TEST(CodegenTest, RejectsBreakOutsideLoop) {
  auto r = CompileSource("__kernel void f(int n) { break; }");
  EXPECT_FALSE(r.ok());
}

TEST(CodegenTest, RejectsFloatModulo) {
  auto r = CompileSource(
      "__kernel void f(__global float* a) { a[0] = 1.5f % 2.0f; }");
  EXPECT_FALSE(r.ok());
}

TEST(CodegenTest, RejectsAssignToArrayName) {
  auto r = CompileSource(
      "__kernel void f(int n) { float tmp[4]; tmp = 1.0f; }");
  EXPECT_FALSE(r.ok());
}

TEST(CodegenTest, RejectsDuplicateKernelNames) {
  auto r = CompileSource("__kernel void f(int n) {}\n__kernel void f(int m) {}");
  EXPECT_FALSE(r.ok());
}

TEST(CodegenTest, CountsParamsAndBarriers) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void f(__global float* a, __local float* tile, int n) {"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "}",
      &prog, "f");
  EXPECT_EQ(k.params.size(), 3u);
  EXPECT_EQ(k.params[0].kind, ParamKind::kGlobalPtr);
  EXPECT_EQ(k.params[1].kind, ParamKind::kLocalPtr);
  EXPECT_EQ(k.params[2].kind, ParamKind::kScalar);
  EXPECT_EQ(k.num_barriers, 2);
  ASSERT_EQ(k.local_blocks.size(), 1u);
  EXPECT_EQ(k.local_blocks[0].param_index, 1);
}

// ----------------------------- end-to-end execution ------------------------

TEST(VmTest, VectorAdd) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void vadd(__global const float* a, __global const float* b,"
      "                   __global float* c, int n) {"
      "  int i = get_global_id(0);"
      "  if (i < n) { c[i] = a[i] + b[i]; }"
      "}",
      &prog, "vadd");
  const int n = 1000;
  std::vector<float> a(n), b(n), c(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(2 * i);
  }
  LaunchConfig cfg;
  cfg.global_size[0] = n;
  cfg.local_size[0] = 50;
  std::vector<KernelArg> args = {BufferArgT(a), BufferArgT(b), BufferArgT(c),
                                 IntArg(n)};
  auto stats = ExecuteKernel(k, cfg, args);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->work_items, static_cast<std::uint64_t>(n));
  EXPECT_GT(stats->instructions, 0u);
  for (int i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(c[i], 3.0f * static_cast<float>(i)) << "at " << i;
  }
}

TEST(VmTest, ControlFlowLoopsAndConditionals) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void collatz_len(__global const int* in, __global int* out,"
      "                          int n) {"
      "  int i = get_global_id(0);"
      "  if (i >= n) return;"
      "  int x = in[i];"
      "  int steps = 0;"
      "  while (x != 1) {"
      "    if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }"
      "    steps++;"
      "  }"
      "  out[i] = steps;"
      "}",
      &prog, "collatz_len");
  std::vector<std::int32_t> in = {1, 2, 3, 6, 7, 27};
  std::vector<std::int32_t> out(in.size(), -1);
  LaunchConfig cfg;
  cfg.global_size[0] = in.size();
  cfg.local_size[0] = in.size();
  std::vector<KernelArg> args = {BufferArgT(in), BufferArgT(out),
                                 IntArg(static_cast<int>(in.size()))};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  auto collatz = [](int x) {
    int s = 0;
    while (x != 1) {
      x = (x % 2 == 0) ? x / 2 : 3 * x + 1;
      ++s;
    }
    return s;
  };
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], collatz(in[i]));
  }
}

TEST(VmTest, ForLoopTernaryAndCompoundAssign) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void poly(__global float* out, int n) {"
      "  int i = get_global_id(0);"
      "  float acc = 0.0f;"
      "  for (int j = 0; j < n; j++) {"
      "    acc += (j % 2 == 0) ? 1.5f : -0.5f;"
      "  }"
      "  out[i] = acc;"
      "}",
      &prog, "poly");
  std::vector<float> out(4, 0.0f);
  LaunchConfig cfg;
  cfg.global_size[0] = 4;
  cfg.local_size[0] = 4;
  std::vector<KernelArg> args = {BufferArgT(out), IntArg(7)};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  // 4 even (j=0,2,4,6) * 1.5 + 3 odd * -0.5 = 6.0 - 1.5 = 4.5
  for (float v : out) {
    EXPECT_FLOAT_EQ(v, 4.5f);
  }
}

TEST(VmTest, BarriersWithLocalMemoryReduction) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void block_sum(__global const float* in, __global float* out,"
      "                        __local float* scratch) {"
      "  int lid = get_local_id(0);"
      "  int gid = get_global_id(0);"
      "  int lsz = get_local_size(0);"
      "  scratch[lid] = in[gid];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  for (int stride = lsz / 2; stride > 0; stride = stride / 2) {"
      "    if (lid < stride) {"
      "      scratch[lid] = scratch[lid] + scratch[lid + stride];"
      "    }"
      "    barrier(CLK_LOCAL_MEM_FENCE);"
      "  }"
      "  if (lid == 0) { out[get_group_id(0)] = scratch[0]; }"
      "}",
      &prog, "block_sum");
  const int groups = 8, lsz = 64, n = groups * lsz;
  std::vector<float> in(n), out(groups, 0.0f);
  for (int i = 0; i < n; ++i) {
    in[i] = 1.0f;
  }
  LaunchConfig cfg;
  cfg.global_size[0] = n;
  cfg.local_size[0] = lsz;
  std::vector<KernelArg> args = {BufferArgT(in), BufferArgT(out),
                                 LocalArg(lsz * sizeof(float))};
  auto stats = ExecuteKernel(k, cfg, args);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (int g = 0; g < groups; ++g) {
    EXPECT_FLOAT_EQ(out[g], static_cast<float>(lsz));
  }
}

TEST(VmTest, FixedLocalArrayAndPrivateArray) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void windows(__global const int* in, __global int* out) {"
      "  __local int tile[16];"
      "  int priv[4];"
      "  int lid = get_local_id(0);"
      "  tile[lid] = in[get_global_id(0)];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  for (int j = 0; j < 4; j++) {"
      "    priv[j] = tile[(lid + j) % 16];"
      "  }"
      "  int acc = 0;"
      "  for (int j = 0; j < 4; j++) { acc += priv[j]; }"
      "  out[get_global_id(0)] = acc;"
      "}",
      &prog, "windows");
  std::vector<std::int32_t> in(16), out(16, 0);
  for (int i = 0; i < 16; ++i) {
    in[i] = i;
  }
  LaunchConfig cfg;
  cfg.global_size[0] = 16;
  cfg.local_size[0] = 16;
  std::vector<KernelArg> args = {BufferArgT(in), BufferArgT(out)};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  for (int i = 0; i < 16; ++i) {
    int expect = 0;
    for (int j = 0; j < 4; ++j) {
      expect += (i + j) % 16;
    }
    EXPECT_EQ(out[i], expect);
  }
}

TEST(VmTest, TwoDimensionalNDRange) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void idx2d(__global int* out, int width) {"
      "  int x = get_global_id(0);"
      "  int y = get_global_id(1);"
      "  out[y * width + x] = x * 100 + y;"
      "}",
      &prog, "idx2d");
  const int w = 8, h = 4;
  std::vector<std::int32_t> out(w * h, -1);
  LaunchConfig cfg;
  cfg.work_dim = 2;
  cfg.global_size[0] = w;
  cfg.global_size[1] = h;
  cfg.local_size[0] = 4;
  cfg.local_size[1] = 2;
  std::vector<KernelArg> args = {BufferArgT(out), IntArg(w)};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      EXPECT_EQ(out[y * w + x], x * 100 + y);
    }
  }
}

TEST(VmTest, MathBuiltins) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void mathy(__global float* out) {"
      "  out[0] = sqrt(16.0f);"
      "  out[1] = fabs(-2.5f);"
      "  out[2] = exp(0.0f);"
      "  out[3] = fmax(1.0f, 2.0f);"
      "  out[4] = fmin(1.0f, 2.0f);"
      "  out[5] = pow(2.0f, 10.0f);"
      "  out[6] = floor(1.9f);"
      "  out[7] = ceil(1.1f);"
      "  out[8] = (float)min(3, 5);"
      "  out[9] = (float)max(3, 5);"
      "  out[10] = (float)abs(-7);"
      "  out[11] = log(1.0f);"
      "}",
      &prog, "mathy");
  std::vector<float> out(12, -1.0f);
  LaunchConfig cfg;
  std::vector<KernelArg> args = {BufferArgT(out)};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  EXPECT_FLOAT_EQ(out[0], 4.0f);
  EXPECT_FLOAT_EQ(out[1], 2.5f);
  EXPECT_FLOAT_EQ(out[2], 1.0f);
  EXPECT_FLOAT_EQ(out[3], 2.0f);
  EXPECT_FLOAT_EQ(out[4], 1.0f);
  EXPECT_FLOAT_EQ(out[5], 1024.0f);
  EXPECT_FLOAT_EQ(out[6], 1.0f);
  EXPECT_FLOAT_EQ(out[7], 2.0f);
  EXPECT_FLOAT_EQ(out[8], 3.0f);
  EXPECT_FLOAT_EQ(out[9], 5.0f);
  EXPECT_FLOAT_EQ(out[10], 7.0f);
  EXPECT_FLOAT_EQ(out[11], 0.0f);
}

TEST(VmTest, IntegerOpsAndUintLoads) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void bits(__global const uint* in, __global uint* out) {"
      "  int i = get_global_id(0);"
      "  uint x = in[i];"
      "  out[i] = ((x << 3) | (x >> 2)) ^ (x & 0xF);"
      "}",
      &prog, "bits");
  std::vector<std::uint32_t> in = {1, 2, 0xFF, 12345};
  std::vector<std::uint32_t> out(4, 0);
  LaunchConfig cfg;
  cfg.global_size[0] = 4;
  cfg.local_size[0] = 4;
  std::vector<KernelArg> args = {BufferArgT(in), BufferArgT(out)};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  for (int i = 0; i < 4; ++i) {
    std::uint64_t x = in[static_cast<std::size_t>(i)];
    std::uint32_t expect =
        static_cast<std::uint32_t>(((x << 3) | (x >> 2)) ^ (x & 0xF));
    EXPECT_EQ(out[static_cast<std::size_t>(i)], expect);
  }
}

TEST(VmTest, DoWhileAndPrefixPostfix) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void counting(__global int* out) {"
      "  int i = 0;"
      "  int sum = 0;"
      "  do { sum += i++; } while (i < 5);"
      "  out[0] = sum;"          // 0+1+2+3+4 = 10
      "  int j = 10;"
      "  out[1] = --j;"          // 9
      "  out[2] = j++;"          // 9, j becomes 10
      "  out[3] = j;"            // 10
      "}",
      &prog, "counting");
  std::vector<std::int32_t> out(4, -1);
  LaunchConfig cfg;
  std::vector<KernelArg> args = {BufferArgT(out)};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 9);
  EXPECT_EQ(out[2], 9);
  EXPECT_EQ(out[3], 10);
}

TEST(VmTest, BreakAndContinue) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void bc(__global int* out) {"
      "  int sum = 0;"
      "  for (int i = 0; i < 100; i++) {"
      "    if (i % 2 == 0) continue;"
      "    if (i > 10) break;"
      "    sum += i;"
      "  }"
      "  out[0] = sum;"  // 1+3+5+7+9 = 25
      "}",
      &prog, "bc");
  std::vector<std::int32_t> out(1, 0);
  LaunchConfig cfg;
  std::vector<KernelArg> args = {BufferArgT(out)};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  EXPECT_EQ(out[0], 25);
}

// ------------------------------- traps -------------------------------------

TEST(VmTrapTest, OutOfBoundsStoreTraps) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void oob(__global int* out) { out[9999] = 1; }", &prog, "oob");
  std::vector<std::int32_t> out(4, 0);
  LaunchConfig cfg;
  std::vector<KernelArg> args = {BufferArgT(out)};
  auto r = ExecuteKernel(k, cfg, args);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out-of-bounds"), std::string::npos);
}

TEST(VmTrapTest, NegativeIndexTraps) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void neg(__global int* out) { out[-1] = 1; }", &prog, "neg");
  std::vector<std::int32_t> out(4, 0);
  LaunchConfig cfg;
  std::vector<KernelArg> args = {BufferArgT(out)};
  EXPECT_FALSE(ExecuteKernel(k, cfg, args).ok());
}

TEST(VmTrapTest, DivisionByZeroTraps) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void dz(__global int* out, int d) { out[0] = 10 / d; }",
      &prog, "dz");
  std::vector<std::int32_t> out(1, 0);
  LaunchConfig cfg;
  std::vector<KernelArg> args = {BufferArgT(out), IntArg(0)};
  auto r = ExecuteKernel(k, cfg, args);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("division by zero"), std::string::npos);
}

TEST(VmTrapTest, InfiniteLoopHitsBudget) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void spin(__global int* out) { while (1) { out[0] = 1; } }",
      &prog, "spin");
  std::vector<std::int32_t> out(1, 0);
  LaunchConfig cfg;
  std::vector<KernelArg> args = {BufferArgT(out)};
  auto r = ExecuteKernel(k, cfg, args, /*max_instructions_per_item=*/10000);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("budget"), std::string::npos);
}

TEST(VmTrapTest, BarrierDivergenceTraps) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void div(__global int* out) {"
      "  if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }"
      "  out[get_global_id(0)] = 1;"
      "}",
      &prog, "div");
  std::vector<std::int32_t> out(4, 0);
  LaunchConfig cfg;
  cfg.global_size[0] = 4;
  cfg.local_size[0] = 4;
  std::vector<KernelArg> args = {BufferArgT(out)};
  auto r = ExecuteKernel(k, cfg, args);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("divergence"), std::string::npos);
}

TEST(VmTrapTest, MissingArgumentFailsPrecondition) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void f(__global int* out, int n) { out[0] = n; }", &prog, "f");
  std::vector<std::int32_t> out(1, 0);
  LaunchConfig cfg;
  std::vector<KernelArg> args = {BufferArgT(out), KernelArg{}};
  EXPECT_FALSE(ExecuteKernel(k, cfg, args).ok());
}

TEST(VmTrapTest, NonDivisibleLocalSizeRejected) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void f(__global int* out) { out[0] = 1; }", &prog, "f");
  std::vector<std::int32_t> out(1, 0);
  LaunchConfig cfg;
  cfg.global_size[0] = 10;
  cfg.local_size[0] = 3;
  std::vector<KernelArg> args = {BufferArgT(out)};
  EXPECT_FALSE(ExecuteKernel(k, cfg, args).ok());
}

// ----------------------- differential property tests -----------------------

// Property: a random arithmetic expression over ints evaluated by the VM
// matches the same expression evaluated in C++. The expression is generated
// structurally so it is valid in both languages.
class ExprGen {
 public:
  explicit ExprGen(ava::Rng* rng) : rng_(rng) {}

  // Returns a pair (source, evaluator) for an int expression over variable v.
  std::string Gen(int depth, std::vector<std::int64_t>* consts) {
    if (depth == 0 || rng_->NextBelow(4) == 0) {
      if (rng_->NextBool()) {
        std::int64_t c = rng_->NextInRange(1, 50);
        consts->push_back(c);
        return std::to_string(c);
      }
      return "v";
    }
    std::string a = Gen(depth - 1, consts);
    std::string b = Gen(depth - 1, consts);
    static const char* ops[] = {"+", "-", "*"};
    const char* op = ops[rng_->NextBelow(3)];
    return "(" + a + " " + op + " " + b + ")";
  }

 private:
  ava::Rng* rng_;
};

std::int64_t EvalExpr(const std::string& expr, std::size_t* pos,
                      std::int64_t v) {
  // Tiny recursive evaluator for the generated parenthesized grammar.
  if (expr[*pos] == '(') {
    ++*pos;  // (
    std::int64_t a = EvalExpr(expr, pos, v);
    ++*pos;  // space
    char op = expr[*pos];
    *pos += 2;  // op + space
    std::int64_t b = EvalExpr(expr, pos, v);
    ++*pos;  // )
    switch (op) {
      case '+':
        return a + b;
      case '-':
        return a - b;
      case '*':
        return a * b;
    }
    return 0;
  }
  if (expr[*pos] == 'v') {
    ++*pos;
    return v;
  }
  std::size_t start = *pos;
  while (*pos < expr.size() && isdigit(expr[*pos])) {
    ++*pos;
  }
  return std::stoll(expr.substr(start, *pos - start));
}

TEST(VmPropertyTest, RandomIntExpressionsMatchCpp) {
  ava::Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    ExprGen gen(&rng);
    std::vector<std::int64_t> consts;
    std::string expr = gen.Gen(4, &consts);
    std::string src = "__kernel void f(__global int* out, int v) { out[0] = " +
                      expr + "; }";
    auto compiled = CompileSource(src);
    ASSERT_TRUE(compiled.ok()) << src << "\n" << compiled.status().ToString();
    const CompiledKernel* k = compiled->FindKernel("f");
    ASSERT_NE(k, nullptr);
    for (int vi = -3; vi <= 3; ++vi) {
      std::vector<std::int32_t> out(1, 0);
      LaunchConfig cfg;
      std::vector<KernelArg> args = {BufferArgT(out), IntArg(vi)};
      ASSERT_TRUE(ExecuteKernel(*k, cfg, args).ok());
      std::size_t pos = 0;
      std::int64_t expect = EvalExpr(expr, &pos, vi);
      ASSERT_EQ(out[0], static_cast<std::int32_t>(expect))
          << expr << " with v=" << vi;
    }
  }
}

// Property: prefix-sum style loops over random data match C++ reference.
TEST(VmPropertyTest, RandomDataScanMatchesCpp) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void scan_serial(__global const int* in, __global int* out,"
      "                          int n) {"
      "  if (get_global_id(0) != 0) return;"
      "  int acc = 0;"
      "  for (int i = 0; i < n; i++) { acc += in[i]; out[i] = acc; }"
      "}",
      &prog, "scan_serial");
  ava::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.NextBelow(200)) + 1;
    std::vector<std::int32_t> in(n), out(n, 0), expect(n);
    std::int32_t acc = 0;
    for (int i = 0; i < n; ++i) {
      in[i] = static_cast<std::int32_t>(rng.NextInRange(-100, 100));
      acc += in[i];
      expect[i] = acc;
    }
    LaunchConfig cfg;
    std::vector<KernelArg> args = {BufferArgT(in), BufferArgT(out), IntArg(n)};
    ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
    ASSERT_EQ(out, expect);
  }
}

}  // namespace
}  // namespace vcl

namespace vcl {
namespace {

// Differential property test over float arithmetic: random expression trees
// evaluated by the VM must match the same float operations in C++ (both are
// IEEE-754 single precision in identical order).
struct FExpr {
  // 0 literal, 1 var, 2 add, 3 sub, 4 mul
  int kind = 0;
  float lit = 0.0f;
  std::unique_ptr<FExpr> a, b;

  std::string Source() const {
    switch (kind) {
      case 0: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9gf", lit);
        std::string s = buf;
        // Ensure the literal lexes as float (e.g. "3f" -> "3.0f").
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos) {
          s.insert(s.size() - 1, ".0");
        }
        return s;
      }
      case 1:
        return "v";
      case 2:
        return "(" + a->Source() + " + " + b->Source() + ")";
      case 3:
        return "(" + a->Source() + " - " + b->Source() + ")";
      default:
        return "(" + a->Source() + " * " + b->Source() + ")";
    }
  }

  float Eval(float v) const {
    switch (kind) {
      case 0:
        return lit;
      case 1:
        return v;
      case 2:
        return a->Eval(v) + b->Eval(v);
      case 3:
        return a->Eval(v) - b->Eval(v);
      default:
        return a->Eval(v) * b->Eval(v);
    }
  }
};

std::unique_ptr<FExpr> GenF(ava::Rng* rng, int depth) {
  auto e = std::make_unique<FExpr>();
  if (depth == 0 || rng->NextBelow(3) == 0) {
    if (rng->NextBool()) {
      e->kind = 0;
      e->lit = rng->NextFloat(-4.0f, 4.0f);
    } else {
      e->kind = 1;
    }
    return e;
  }
  e->kind = 2 + static_cast<int>(rng->NextBelow(3));
  e->a = GenF(rng, depth - 1);
  e->b = GenF(rng, depth - 1);
  return e;
}

TEST(VmPropertyTest, RandomFloatExpressionsMatchCpp) {
  ava::Rng rng(424242);
  for (int trial = 0; trial < 40; ++trial) {
    auto expr = GenF(&rng, 4);
    std::string src =
        "__kernel void f(__global float* out, float v) { out[0] = " +
        expr->Source() + "; }";
    auto compiled = CompileSource(src);
    ASSERT_TRUE(compiled.ok()) << src << "\n" << compiled.status().ToString();
    const CompiledKernel* k = compiled->FindKernel("f");
    for (float v : {-2.5f, 0.0f, 1.0f, 3.25f}) {
      std::vector<float> out(1, -1.0f);
      LaunchConfig cfg;
      std::vector<KernelArg> args = {BufferArgT(out), [&] {
                                       KernelArg a;
                                       a.kind = KernelArg::Kind::kScalar;
                                       std::uint32_t bits;
                                       std::memcpy(&bits, &v, 4);
                                       a.scalar_cell = bits;
                                       return a;
                                     }()};
      ASSERT_TRUE(ExecuteKernel(*k, cfg, args).ok()) << src;
      const float want = expr->Eval(v);
      ASSERT_EQ(out[0], want) << src << " with v=" << v;
    }
  }
}

TEST(VmTest, ThreeDimensionalNDRange) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void idx3(__global int* out, int w, int h) {"
      "  int x = get_global_id(0);"
      "  int y = get_global_id(1);"
      "  int z = get_global_id(2);"
      "  out[(z * h + y) * w + x] = x + 10 * y + 100 * z;"
      "}",
      &prog, "idx3");
  const int w = 4, h = 3, d = 2;
  std::vector<std::int32_t> out(static_cast<std::size_t>(w) * h * d, -1);
  LaunchConfig cfg;
  cfg.work_dim = 3;
  cfg.global_size[0] = w;
  cfg.global_size[1] = h;
  cfg.global_size[2] = d;
  cfg.local_size[0] = 2;
  cfg.local_size[1] = 1;
  cfg.local_size[2] = 1;
  std::vector<KernelArg> args = {BufferArgT(out), IntArg(w), IntArg(h)};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  for (int z = 0; z < d; ++z) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        EXPECT_EQ(out[static_cast<std::size_t>((z * h + y) * w + x)],
                  x + 10 * y + 100 * z);
      }
    }
  }
}

TEST(VmTest, GlobalOffsetRespected) {
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void off(__global int* out) {"
      "  int i = get_global_id(0);"
      "  out[i] = i;"
      "}",
      &prog, "off");
  std::vector<std::int32_t> out(16, -1);
  LaunchConfig cfg;
  cfg.global_offset[0] = 8;
  cfg.global_size[0] = 8;
  cfg.local_size[0] = 4;
  std::vector<KernelArg> args = {BufferArgT(out)};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], -1);      // untouched
    EXPECT_EQ(out[static_cast<std::size_t>(8 + i)], 8 + i);
  }
}

TEST(VmTest, MultipleBarrierPhases) {
  // Two barrier-separated phases: phase 1 writes local memory, phase 2
  // rotates it, phase 3 reads — classic three-stage pipeline in one group.
  CompiledProgram prog;
  const CompiledKernel& k = MustCompile(
      "__kernel void rot(__global const int* in, __global int* out,"
      "                  __local int* t1, __local int* t2) {"
      "  int lid = get_local_id(0);"
      "  int lsz = get_local_size(0);"
      "  t1[lid] = in[get_global_id(0)];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  t2[(lid + 1) % lsz] = t1[lid];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  out[get_global_id(0)] = t2[lid];"
      "}",
      &prog, "rot");
  const int n = 8;
  std::vector<std::int32_t> in(n), out(n, -1);
  for (int i = 0; i < n; ++i) {
    in[static_cast<std::size_t>(i)] = i * 11;
  }
  LaunchConfig cfg;
  cfg.global_size[0] = n;
  cfg.local_size[0] = n;
  std::vector<KernelArg> args = {BufferArgT(in), BufferArgT(out),
                                 LocalArg(n * 4), LocalArg(n * 4)};
  ASSERT_TRUE(ExecuteKernel(k, cfg, args).ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)],
              in[static_cast<std::size_t>((i + n - 1) % n)]);
  }
}

}  // namespace
}  // namespace vcl
