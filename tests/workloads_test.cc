// Validates every Figure 5 workload both native and fully remoted: each
// workload self-checks against its CPU reference, so a pass here means the
// kernels, the VM, and the remoting stack all computed the right answer.
#include <gtest/gtest.h>

#include <memory>

#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "src/mvnc/silo.h"
#include "src/workloads/inception.h"
#include "src/workloads/vcl_workloads.h"

namespace {

using workloads::AllVclWorkloads;
using workloads::WorkloadOptions;

class RemotedApi {
 public:
  RemotedApi() {
    router_ = std::make_unique<ava::Router>();
    router_->Start();
    auto pair = ava::MakeInProcChannel();
    session_ = std::make_shared<ava::ApiServerSession>(1);
    session_->RegisterApi(ava_gen_vcl::kApiId,
                          ava_gen_vcl::MakeVclApiHandler());
    session_->RegisterApi(ava_gen_mvnc::kApiId,
                          ava_gen_mvnc::MakeMvncApiHandler());
    EXPECT_TRUE(router_->AttachVm(1, std::move(pair.host), session_).ok());
    ava::GuestEndpoint::Options opts;
    opts.vm_id = 1;
    endpoint_ =
        std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
  }

  ~RemotedApi() {
    endpoint_.reset();
    router_->Stop();
  }

  ava_gen_vcl::VclApi vcl() { return ava_gen_vcl::MakeVclGuestApi(endpoint_); }
  ava_gen_mvnc::MvncApi mvnc() {
    return ava_gen_mvnc::MakeMvncGuestApi(endpoint_);
  }

 private:
  std::unique_ptr<ava::Router> router_;
  std::shared_ptr<ava::ApiServerSession> session_;
  std::shared_ptr<ava::GuestEndpoint> endpoint_;
};

class VclWorkloadTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VclWorkloadTest, NativeProducesCorrectResults) {
  vcl::ResetDefaultSilo({});
  const auto& workload = AllVclWorkloads()[GetParam()];
  WorkloadOptions options;
  ava::Status status = workload.run(ava_gen_vcl::MakeVclNativeApi(), options);
  EXPECT_TRUE(status.ok()) << workload.name << ": " << status.ToString();
}

TEST_P(VclWorkloadTest, RemotedProducesCorrectResults) {
  vcl::ResetDefaultSilo({});
  const auto& workload = AllVclWorkloads()[GetParam()];
  RemotedApi remote;
  WorkloadOptions options;
  ava::Status status = workload.run(remote.vcl(), options);
  EXPECT_TRUE(status.ok()) << workload.name << ": " << status.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, VclWorkloadTest,
    ::testing::Range<std::size_t>(0, 8),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return workloads::AllVclWorkloads()[info.param].name;
    });

TEST(InceptionWorkloadTest, NativeAndRemotedMatchReference) {
  mvnc::ResetMvncSilo({});
  WorkloadOptions options;
  ava::Status native = workloads::RunInception(
      ava_gen_mvnc::MakeMvncNativeApi(), options, /*images=*/3);
  EXPECT_TRUE(native.ok()) << native.ToString();
  RemotedApi remote;
  ava::Status remoted =
      workloads::RunInception(remote.mvnc(), options, /*images=*/3);
  EXPECT_TRUE(remoted.ok()) << remoted.ToString();
}

}  // namespace
