// Tests for §4.3 VM migration: record/replay of state-establishing calls,
// device-buffer snapshot/restore, tombstoning of destroyed objects, and
// end-to-end equivalence of a workload migrated mid-flight.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/gen/vcl_hooks.h"
#include "src/proto/marshal.h"
#include "src/migrate/recorder.h"
#include "src/migrate/snapshot.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "vcl_gen.h"

namespace {

using ava_gen_vcl::MakeVclApiHandler;
using ava_gen_vcl::MakeVclBufferHooks;
using ava_gen_vcl::MakeVclGuestApi;
using ava_gen_vcl::VclApi;

constexpr const char* kScaleSrc =
    "__kernel void scale(__global float* data, float k, int n) {"
    "  int i = get_global_id(0);"
    "  if (i < n) { data[i] = data[i] * k; }"
    "}";

// A migratable guest: session + recorder + endpoint, attached to a router.
struct MigratableVm {
  std::shared_ptr<ava::ApiServerSession> session;
  std::unique_ptr<ava::Recorder> recorder;
  std::shared_ptr<ava::GuestEndpoint> endpoint;
  VclApi api;
};

class MigrationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    vcl::ResetDefaultSilo({});
    router_ = std::make_unique<ava::Router>();
    router_->Start();
  }

  void TearDown() override {
    vms_.clear();
    router_->Stop();
    router_.reset();
  }

  MigratableVm& AddVm(ava::VmId vm_id) {
    auto pair = ava::MakeInProcChannel();
    auto vm = std::make_unique<MigratableVm>();
    vm->session = std::make_shared<ava::ApiServerSession>(vm_id);
    vm->session->RegisterApi(ava_gen_vcl::kApiId, MakeVclApiHandler());
    vm->recorder = std::make_unique<ava::Recorder>();
    vm->session->SetRecordSink(vm->recorder.get());
    EXPECT_TRUE(
        router_->AttachVm(vm_id, std::move(pair.host), vm->session).ok());
    ava::GuestEndpoint::Options opts;
    opts.vm_id = vm_id;
    vm->endpoint =
        std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
    vm->api = MakeVclGuestApi(vm->endpoint);
    vms_.push_back(std::move(vm));
    return *vms_.back();
  }

  // A fresh destination session not attached to any router (restore target).
  std::shared_ptr<ava::ApiServerSession> MakeTarget(ava::VmId vm_id) {
    auto session = std::make_shared<ava::ApiServerSession>(vm_id);
    session->RegisterApi(ava_gen_vcl::kApiId, MakeVclApiHandler());
    return session;
  }

  std::unique_ptr<ava::Router> router_;
  std::vector<std::unique_ptr<MigratableVm>> vms_;
};

TEST_F(MigrationFixture, RecorderCapturesStateEstablishingCalls) {
  MigratableVm& vm = AddVm(1);
  vcl_platform_id platform = nullptr;
  vm.api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  vm.api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = vm.api.vclCreateContext(&device, 1, &err);
  vcl_command_queue q = vm.api.vclCreateCommandQueue(ctx, device, 0, &err);
  vcl_mem buf = vm.api.vclCreateBuffer(ctx, 0, 1024, nullptr, &err);
  vm.api.vclFinish(q);  // drain async releases below
  EXPECT_GE(vm.recorder->LiveCount(), 5u);  // discovery + creates
  // Destroying the buffer tombstones its create record.
  const std::size_t before = vm.recorder->LiveCount();
  vm.api.vclReleaseMemObject(buf);
  vm.api.vclFinish(q);
  // The create record AND the release record both leave the live log
  // (release of a fully-destroyed object has nothing to replay).
  EXPECT_LT(vm.recorder->LiveCount(), before + 1);
  vm.api.vclReleaseCommandQueue(q);
  vm.api.vclReleaseContext(ctx);
}

TEST_F(MigrationFixture, SnapshotSerializationRoundTrip) {
  ava::VmSnapshot snap;
  snap.vm_id = 17;
  ava::RecordedCall call;
  call.header.api_id = 1;
  call.header.func_id = 4;
  call.header.call_id = 99;
  call.header.vm_id = 17;
  call.payload = {1, 2, 3};
  call.created = {11, 12};
  snap.calls.push_back(call);
  snap.buffers.emplace_back(12, ava::Bytes{9, 9, 9, 9});

  ava::Bytes wire = snap.Serialize();
  auto restored = ava::VmSnapshot::Deserialize(wire);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->vm_id, 17u);
  ASSERT_EQ(restored->calls.size(), 1u);
  EXPECT_EQ(restored->calls[0].header.func_id, 4u);
  EXPECT_EQ(restored->calls[0].created, (std::vector<ava::WireHandle>{11, 12}));
  ASSERT_EQ(restored->buffers.size(), 1u);
  EXPECT_EQ(restored->buffers[0].second, ava::Bytes({9, 9, 9, 9}));
  EXPECT_EQ(restored->TotalBufferBytes(), 4u);

  EXPECT_FALSE(ava::VmSnapshot::Deserialize({1, 2}).ok());
}

TEST_F(MigrationFixture, MidWorkloadMigrationPreservesResults) {
  MigratableVm& vm = AddVm(1);
  const VclApi& api = vm.api;
  const int n = 1000;

  // Phase 1 on the source: set up and run half the iterations.
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  std::vector<float> init(n, 1.0f);
  vcl_mem buf = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, n * 4,
                                    init.data(), &err);
  vcl_program prog = api.vclCreateProgramWithSource(ctx, kScaleSrc, &err);
  ASSERT_EQ(api.vclBuildProgram(prog, nullptr), VCL_SUCCESS);
  vcl_kernel kernel = api.vclCreateKernel(prog, "scale", &err);
  float k = 2.0f;
  api.vclSetKernelArgBuffer(kernel, 0, buf);
  api.vclSetKernelArgScalar(kernel, 1, sizeof(float), &k);
  api.vclSetKernelArgScalar(kernel, 2, sizeof(int), &n);
  size_t global = n;
  for (int iter = 0; iter < 3; ++iter) {
    ASSERT_EQ(api.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                          nullptr, 0, nullptr, nullptr),
              VCL_SUCCESS);
  }
  ASSERT_EQ(api.vclFinish(queue), VCL_SUCCESS);

  // Migrate: suspend + capture on the source, restore into a fresh session.
  ava::MigrationEngine engine(MakeVclBufferHooks());
  ava::MigrationTimings timings;
  auto snapshot = engine.Capture(router_.get(), vm.session.get(),
                                 *vm.recorder, &timings);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_GE(snapshot->TotalBufferBytes(), static_cast<std::size_t>(n * 4));
  EXPECT_GT(timings.snapshot_ns, 0);

  // Serialize across the "migration" boundary.
  ava::Bytes wire = snapshot->Serialize();
  auto arrived = ava::VmSnapshot::Deserialize(wire);
  ASSERT_TRUE(arrived.ok());

  auto target = MakeTarget(1);
  ASSERT_TRUE(engine.Restore(*arrived, target.get(), &timings).ok());
  EXPECT_GT(timings.replay_ns, 0);

  // Phase 2 on the destination: attach the SAME guest endpoint state to the
  // restored session via a new channel, and finish the workload. Handles the
  // guest still holds (ctx/queue/buf/kernel ids) must remain valid.
  auto pair2 = ava::MakeInProcChannel();
  auto router2 = std::make_unique<ava::Router>();
  router2->Start();
  ASSERT_TRUE(router2->AttachVm(1, std::move(pair2.host), target).ok());
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint2 =
      std::make_shared<ava::GuestEndpoint>(std::move(pair2.guest), opts);
  VclApi api2 = MakeVclGuestApi(endpoint2);

  for (int iter = 0; iter < 3; ++iter) {
    ASSERT_EQ(api2.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                           nullptr, 0, nullptr, nullptr),
              VCL_SUCCESS);
  }
  std::vector<float> result(n, 0.0f);
  ASSERT_EQ(api2.vclEnqueueReadBuffer(queue, buf, VCL_TRUE, 0, n * 4,
                                      result.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  // 6 total doublings of 1.0 = 64.0 — identical to an unmigrated run.
  for (int i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(result[i], 64.0f) << "at " << i;
  }
  api2.vclReleaseKernel(kernel);
  api2.vclReleaseProgram(prog);
  api2.vclReleaseMemObject(buf);
  api2.vclReleaseCommandQueue(queue);
  api2.vclReleaseContext(ctx);
  endpoint2.reset();
  router2->Stop();
}

TEST_F(MigrationFixture, ReplaySkipsCallsReferencingDeadObjects) {
  MigratableVm& vm = AddVm(1);
  const VclApi& api = vm.api;
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue q = api.vclCreateCommandQueue(ctx, device, 0, &err);
  // Create and destroy a buffer: its create is tombstoned; the release call
  // that destroyed it is skipped at replay (references a dead id).
  vcl_mem temp = api.vclCreateBuffer(ctx, 0, 512, nullptr, &err);
  api.vclReleaseMemObject(temp);
  // Keep one live buffer.
  vcl_mem keep = api.vclCreateBuffer(ctx, 0, 256, nullptr, &err);
  api.vclFinish(q);

  ava::MigrationEngine engine(MakeVclBufferHooks());
  auto snapshot =
      engine.Capture(router_.get(), vm.session.get(), *vm.recorder, nullptr);
  ASSERT_TRUE(snapshot.ok());
  // Only the live buffer is snapshotted.
  ASSERT_EQ(snapshot->buffers.size(), 1u);
  EXPECT_EQ(snapshot->buffers[0].second.size(), 256u);

  auto target = MakeTarget(1);
  ASSERT_TRUE(engine.Restore(*snapshot, target.get(), nullptr).ok());
  // The live buffer's wire id resolves in the restored registry.
  auto real = target->registry().Translate(
      ava_gen_vcl::kTag_vcl_mem, ava::HandleToWire(keep));
  EXPECT_TRUE(real.ok()) << real.status().ToString();
  // The destroyed buffer's id does not.
  auto dead = target->registry().Translate(ava_gen_vcl::kTag_vcl_mem,
                                           ava::HandleToWire(temp));
  EXPECT_FALSE(dead.ok());
}

TEST_F(MigrationFixture, KernelArgBindingsSurviveMigration) {
  MigratableVm& vm = AddVm(1);
  const VclApi& api = vm.api;
  const int n = 64;
  vcl_platform_id platform = nullptr;
  api.vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  std::vector<float> data(n, 3.0f);
  vcl_mem buf = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, n * 4,
                                    data.data(), &err);
  vcl_program prog = api.vclCreateProgramWithSource(ctx, kScaleSrc, &err);
  api.vclBuildProgram(prog, nullptr);
  vcl_kernel kernel = api.vclCreateKernel(prog, "scale", &err);
  float k = 10.0f;
  // Bind args BEFORE migration; launch only AFTER restore.
  api.vclSetKernelArgBuffer(kernel, 0, buf);
  api.vclSetKernelArgScalar(kernel, 1, sizeof(float), &k);
  api.vclSetKernelArgScalar(kernel, 2, sizeof(int), &n);
  api.vclFinish(queue);

  ava::MigrationEngine engine(MakeVclBufferHooks());
  auto snapshot =
      engine.Capture(router_.get(), vm.session.get(), *vm.recorder, nullptr);
  ASSERT_TRUE(snapshot.ok());
  auto target = MakeTarget(1);
  ASSERT_TRUE(engine.Restore(*snapshot, target.get(), nullptr).ok());

  auto pair2 = ava::MakeInProcChannel();
  auto router2 = std::make_unique<ava::Router>();
  router2->Start();
  ASSERT_TRUE(router2->AttachVm(1, std::move(pair2.host), target).ok());
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint2 =
      std::make_shared<ava::GuestEndpoint>(std::move(pair2.guest), opts);
  VclApi api2 = MakeVclGuestApi(endpoint2);
  size_t global = n;
  ASSERT_EQ(api2.vclEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global,
                                         nullptr, 0, nullptr, nullptr),
            VCL_SUCCESS);
  std::vector<float> out(n, 0.0f);
  ASSERT_EQ(api2.vclEnqueueReadBuffer(queue, buf, VCL_TRUE, 0, n * 4,
                                      out.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  for (int i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(out[i], 30.0f);
  }
  endpoint2.reset();
  router2->Stop();
}

}  // namespace
