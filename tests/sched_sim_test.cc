// Deterministic scheduler property suite (`ctest -L sched`): a seeded
// simulator drives the real WFQ core and lane bookkeeping — the exact code
// the router runs — through thousands of virtual sessions with zero real
// threads and a hand-advanced clock, so every property below is exactly
// reproducible from its seed.
//
// Properties:
//   (a) under sustained backlog, per-tenant service shares converge to the
//       configured weights within 2 points;
//   (b) an idle-then-bursty tenant claims at most one deficit round of
//       credit, no matter how long it idled;
//   (c) dispatch order within a (vm, lane) pair is strictly FIFO even with
//       intra-VM parallelism and interleaved completions;
//   (d) at thousand-session scale every backlogged session keeps making
//       progress and weight-normalized service stays near-perfectly fair
//       (Jain index).
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/router/wfq.h"

namespace {

class FakeClock final : public ava::SchedClock {
 public:
  std::int64_t NowNs() const override { return now_ns_; }
  void Advance(std::int64_t ns) { now_ns_ += ns; }

 private:
  std::int64_t now_ns_ = 1;
};

constexpr std::int64_t kMinCostVns = 5000;
constexpr std::int64_t kMaxCostVns = 15000;

// One simulated dispatch: the winner executes for a seeded device cost,
// which is charged and consumes wall time (single-device model).
std::uint64_t DispatchOnce(ava::WfqScheduler* sched, FakeClock* clock,
                           ava::Rng* rng, std::int64_t* cost_out) {
  std::uint64_t vm = 0;
  EXPECT_TRUE(sched->PickNext(&vm)) << "backlogged scheduler went idle";
  const std::int64_t cost = rng->NextInRange(kMinCostVns, kMaxCostVns);
  sched->Charge(vm, cost);
  clock->Advance(cost);
  if (cost_out != nullptr) {
    *cost_out = cost;
  }
  return vm;
}

// (a) Weighted shares: four always-backlogged tenants with 1:2:4:8 weights.
// Over any window long enough to amortize DRR's quantum granularity, each
// tenant's share of total charged vns must match its weight share ±2 points.
TEST(SchedSimTest, WeightedSharesConvergeToWeights) {
  const std::vector<double> weights = {1.0, 2.0, 4.0, 8.0};
  double total_weight = 0.0;
  for (const double w : weights) {
    total_weight += w;
  }
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    FakeClock clock;
    ava::WfqScheduler sched(&clock);
    ava::Rng rng(seed * 0x9e37ULL + 1);
    std::vector<double> charged(weights.size(), 0.0);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      sched.AddTenant(i + 1, weights[i], /*allot_vns_per_sec=*/0.0);
      sched.SetRunnable(i + 1, true);
    }
    constexpr int kIterations = 1000;
    double total = 0.0;
    for (int iter = 0; iter < kIterations; ++iter) {
      std::int64_t cost = 0;
      const std::uint64_t vm = DispatchOnce(&sched, &clock, &rng, &cost);
      charged[vm - 1] += static_cast<double>(cost);
      total += static_cast<double>(cost);
    }
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double share = charged[i] / total;
      const double expected = weights[i] / total_weight;
      EXPECT_NEAR(share, expected, 0.02)
          << "seed " << seed << " tenant " << i + 1;
    }
  }
}

// (b) No banked credit: tenant B idles past the activity window (its
// vruntime snaps to the active floor on wake), then returns with a deep
// backlog. Its uninterrupted head start before the incumbent runs again is
// bounded by one deficit round — quantum x weight plus a single post-paid
// overdraft — regardless of how long it idled.
TEST(SchedSimTest, IdleThenBurstyClaimsAtMostOneDeficitRound) {
  FakeClock clock;
  ava::WfqScheduler sched(&clock);
  ava::Rng rng(0xb0251ULL);
  const double quantum = ava::WfqOptions{}.quantum_vns;
  sched.AddTenant(1, 1.0, 0.0);  // incumbent A
  sched.AddTenant(2, 1.0, 0.0);  // idle-then-bursty B
  sched.SetRunnable(1, true);
  constexpr int kIterations = 1000;
  for (int iter = 0; iter < kIterations; ++iter) {
    // A runs alone for a while.
    const int alone = static_cast<int>(rng.NextInRange(3, 20));
    for (int i = 0; i < alone; ++i) {
      EXPECT_EQ(DispatchOnce(&sched, &clock, &rng, nullptr), 1u);
    }
    // B stays idle past the activity window — sometimes much longer.
    clock.Advance(rng.NextInRange(50'000'000, 400'000'000));
    sched.SetRunnable(2, true);
    // Let A finish whatever deficit it still holds, then measure B's
    // uninterrupted burst until A is served again.
    std::uint64_t vm = 0;
    std::int64_t cost = 0;
    do {
      vm = DispatchOnce(&sched, &clock, &rng, &cost);
    } while (vm == 1);
    double burst = static_cast<double>(cost);
    while ((vm = DispatchOnce(&sched, &clock, &rng, &cost)) == 2) {
      burst += static_cast<double>(cost);
      ASSERT_LE(burst, quantum + static_cast<double>(kMaxCostVns))
          << "iteration " << iter
          << ": idle tenant claimed more than one deficit round";
    }
    sched.SetRunnable(2, false);  // B's backlog drains; back to idle
  }
}

// (c) FIFO within (vm, lane): every VM runs up to two calls concurrently
// (the lane model's parallelism), lanes interleave freely, completions land
// out of order across VMs — yet each (vm, lane) pair must pop in exactly
// the order it was pushed.
TEST(SchedSimTest, FifoWithinVmLanePairs) {
  struct SimCall {
    std::uint64_t lane = 0;
    int seq = 0;
    std::int64_t cost = 0;
  };
  constexpr int kVms = 4;
  constexpr int kLanes = 3;
  constexpr int kCallsPerVm = 24;
  constexpr int kParallelism = 2;
  constexpr int kIterations = 1000;
  for (std::uint64_t seed = 0; seed < kIterations; ++seed) {
    FakeClock clock;
    ava::WfqScheduler sched(&clock);
    ava::Rng rng(seed ^ 0xf1f0ULL);
    ava::LaneSet<SimCall> lanes[kVms + 1];
    int in_flight[kVms + 1] = {};
    int pushed_seq[kVms + 1][kLanes] = {};
    int popped_seq[kVms + 1][kLanes] = {};
    for (std::uint64_t vm = 1; vm <= kVms; ++vm) {
      sched.AddTenant(vm, 1.0, 0.0);
      for (int i = 0; i < kCallsPerVm; ++i) {
        SimCall call;
        call.lane = rng.NextBelow(kLanes);
        call.seq = pushed_seq[vm][call.lane]++;
        call.cost = rng.NextInRange(kMinCostVns, kMaxCostVns);
        ASSERT_TRUE(lanes[vm].Push(call.lane, call));
      }
    }
    auto update_runnable = [&](std::uint64_t vm) {
      sched.SetRunnable(vm, lanes[vm].HasReady() &&
                                in_flight[vm] < kParallelism);
    };
    for (std::uint64_t vm = 1; vm <= kVms; ++vm) {
      update_runnable(vm);
    }
    // (finish_ns, vm, lane), soonest first.
    using Completion = std::tuple<std::int64_t, std::uint64_t, std::uint64_t>;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions;
    int done = 0;
    while (done < kVms * kCallsPerVm) {
      std::uint64_t vm = 0;
      if (sched.PickNext(&vm)) {
        std::uint64_t lane = 0;
        SimCall call;
        ASSERT_TRUE(lanes[vm].PopReady(&lane, &call));
        ASSERT_EQ(call.seq, popped_seq[vm][lane]++)
            << "seed " << seed << " vm " << vm << " lane " << lane
            << ": FIFO order broken";
        ++in_flight[vm];
        sched.Charge(vm, call.cost);
        completions.emplace(clock.NowNs() + call.cost, vm, lane);
        update_runnable(vm);
        continue;
      }
      ASSERT_FALSE(completions.empty())
          << "seed " << seed << ": scheduler stuck with work outstanding";
      const auto [finish_ns, cvm, clane] = completions.top();
      completions.pop();
      if (finish_ns > clock.NowNs()) {
        clock.Advance(finish_ns - clock.NowNs());
      }
      lanes[cvm].FinishLane(clane);
      --in_flight[cvm];
      ++done;
      update_runnable(cvm);
    }
  }
}

// (d) Thousand-session scale: 1000 backlogged sessions in three weight
// classes on one simulated device. Every session keeps making progress and
// the Jain index over weight-normalized service stays near 1.
TEST(SchedSimTest, ThousandSessionsStayFairAndLive) {
  constexpr int kSessions = 1000;
  FakeClock clock;
  ava::WfqScheduler sched(&clock);
  ava::Rng rng(0x5ca1eULL);
  std::vector<double> weights(kSessions);
  std::vector<double> charged(kSessions, 0.0);
  for (int i = 0; i < kSessions; ++i) {
    weights[i] = static_cast<double>(1 << (i % 3));  // 1, 2, 4
    sched.AddTenant(static_cast<std::uint64_t>(i) + 1, weights[i], 0.0);
    sched.SetRunnable(static_cast<std::uint64_t>(i) + 1, true);
  }
  // ~10 full DRR rounds over the whole ring, so per-session service
  // amortizes the quantum granularity.
  constexpr int kDispatches = 120000;
  for (int iter = 0; iter < kDispatches; ++iter) {
    std::int64_t cost = 0;
    const std::uint64_t vm = DispatchOnce(&sched, &clock, &rng, &cost);
    charged[vm - 1] += static_cast<double>(cost);
  }
  std::vector<double> normalized(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    ASSERT_GT(charged[i], 0.0) << "session " << i + 1 << " starved";
    normalized[i] = charged[i] / weights[i];
  }
  EXPECT_GE(ava::JainIndex(normalized), 0.99);
}

// Admission at the lane layer: a bounded LaneSet refuses pushes past its
// capacity and recovers headroom as items complete.
TEST(SchedSimTest, BoundedLaneSetRefusesBeyondCapacity) {
  ava::LaneSet<int> lanes;
  lanes.set_capacity(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(lanes.Full());
    EXPECT_TRUE(lanes.Push(static_cast<std::uint64_t>(i % 2), i));
  }
  EXPECT_TRUE(lanes.Full());
  EXPECT_FALSE(lanes.Push(0, 99));
  EXPECT_EQ(lanes.queued(), 4u);
  std::uint64_t lane = 0;
  int item = 0;
  ASSERT_TRUE(lanes.PopReady(&lane, &item));
  EXPECT_FALSE(lanes.Full());
  EXPECT_TRUE(lanes.Push(lane, 100));
  EXPECT_TRUE(lanes.Full());
}

}  // namespace
