// Shared-memory buffer-arena tests: slot lifecycle and descriptor
// validation at the unit level, then the negotiated out-of-band bulk path
// end-to-end through the real stack (CAvA stubs -> GuestEndpoint ->
// shm ring -> Router -> ApiServerSession -> handlers), including the
// fault-matrix cases: corrupt descriptors must yield a clean sealed error
// reply (never a crash or out-of-bounds read) and arena exhaustion must
// fall back to inline marshaling.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "src/proto/marshal.h"
#include "src/proto/wire.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/arena.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "vcl_gen.h"

namespace ava {
namespace {

// ---------------------------------------------------------------------------
// BufferArena unit behavior.

TEST(BufferArenaTest, AcquireProvidesAlignedSlotResolveMatches) {
  auto arena = BufferArena::Create(4096, 4);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  BufferArena::Slot slot;
  ASSERT_TRUE((*arena)->Acquire(100, &slot));
  ASSERT_NE(slot.data, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slot.data) % 64, 0u);
  std::memset(slot.data, 0xAB, 100);
  auto span = (*arena)->Resolve((*arena)->DescFor(slot, 100));
  ASSERT_TRUE(span.ok()) << span.status().ToString();
  ASSERT_EQ(span->size(), 100u);
  EXPECT_EQ(span->data(), slot.data);
  EXPECT_EQ((*span)[99], 0xAB);
  (*arena)->Release(slot.slot, slot.generation);
  EXPECT_EQ((*arena)->SlotsInUse(), 0u);
}

TEST(BufferArenaTest, OversizedAcquireFails) {
  auto arena = BufferArena::Create(4096, 2);
  ASSERT_TRUE(arena.ok());
  BufferArena::Slot slot;
  EXPECT_FALSE((*arena)->Acquire((*arena)->slot_bytes() + 1, &slot));
  EXPECT_EQ((*arena)->SlotsInUse(), 0u);
}

TEST(BufferArenaTest, ExhaustionAndReleaseCycle) {
  auto arena = BufferArena::Create(1024, 3);
  ASSERT_TRUE(arena.ok());
  BufferArena::Slot slots[3];
  for (auto& s : slots) {
    ASSERT_TRUE((*arena)->Acquire(64, &s));
  }
  EXPECT_EQ((*arena)->SlotsInUse(), 3u);
  BufferArena::Slot extra;
  EXPECT_FALSE((*arena)->Acquire(64, &extra));  // exhausted, not an error
  (*arena)->Release(slots[1].slot, slots[1].generation);
  ASSERT_TRUE((*arena)->Acquire(64, &extra));
  EXPECT_EQ(extra.slot, slots[1].slot);
  EXPECT_EQ((*arena)->SlotsInUse(), 3u);
}

TEST(BufferArenaTest, ReleaseIsGenerationCheckedAndIdempotent) {
  auto arena = BufferArena::Create(1024, 1);
  ASSERT_TRUE(arena.ok());
  BufferArena::Slot first;
  ASSERT_TRUE((*arena)->Acquire(16, &first));
  (*arena)->Release(first.slot, first.generation);
  (*arena)->Release(first.slot, first.generation);  // double release: no-op
  BufferArena::Slot second;
  ASSERT_TRUE((*arena)->Acquire(16, &second));
  EXPECT_GT(second.generation, first.generation);
  // A stale release (the old generation) must not free the new holder.
  (*arena)->Release(first.slot, first.generation);
  EXPECT_EQ((*arena)->SlotsInUse(), 1u);
  BufferArena::Slot third;
  EXPECT_FALSE((*arena)->Acquire(16, &third));
  // Out-of-range slot indices are ignored outright.
  (*arena)->Release(99, 1);
}

TEST(BufferArenaTest, ResolveRejectsCorruptDescriptors) {
  auto arena = BufferArena::Create(4096, 4);
  ASSERT_TRUE(arena.ok());
  BufferArena::Slot slot;
  ASSERT_TRUE((*arena)->Acquire(256, &slot));
  const ArenaDesc good = (*arena)->DescFor(slot, 256);

  ArenaDesc wrong_arena = good;
  wrong_arena.arena_id += 1;
  EXPECT_EQ((*arena)->Resolve(wrong_arena).status().code(),
            StatusCode::kInvalidArgument);

  ArenaDesc bad_slot = good;
  bad_slot.slot = (*arena)->slot_count() + 7;
  EXPECT_EQ((*arena)->Resolve(bad_slot).status().code(),
            StatusCode::kInvalidArgument);

  ArenaDesc too_long = good;
  too_long.length = (*arena)->slot_bytes() + 1;
  EXPECT_EQ((*arena)->Resolve(too_long).status().code(),
            StatusCode::kInvalidArgument);

  ArenaDesc stale = good;
  stale.generation -= 1;
  EXPECT_EQ((*arena)->Resolve(stale).status().code(),
            StatusCode::kInvalidArgument);

  // A descriptor for a slot nobody holds is rejected even when everything
  // else lines up (release-then-resolve, the use-after-free shape).
  (*arena)->Release(slot.slot, slot.generation);
  EXPECT_EQ((*arena)->Resolve(good).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// End-to-end over the real stack.

struct GuestVm {
  std::shared_ptr<ApiServerSession> session;
  std::shared_ptr<GuestEndpoint> endpoint;
  ava_gen_vcl::VclApi api;
};

class ArenaStack {
 public:
  ArenaStack() {
    vcl::ResetDefaultSilo({});
    router_ = std::make_unique<Router>();
    router_->Start();
  }
  ~ArenaStack() {
    vms_.clear();
    router_->Stop();
  }

  GuestVm& AddVm(VmId vm_id, ChannelPair pair,
                 GuestEndpoint::Options opts = {}) {
    opts.vm_id = vm_id;
    if (opts.call_deadline_ms < 0) {
      opts.call_deadline_ms = 20000;  // bound any wedge; never expected
    }
    auto vm = std::make_unique<GuestVm>();
    vm->session = std::make_shared<ApiServerSession>(vm_id);
    vm->session->RegisterApi(ava_gen_vcl::kApiId,
                             ava_gen_vcl::MakeVclApiHandler());
    EXPECT_TRUE(
        router_->AttachVm(vm_id, std::move(pair.host), vm->session).ok());
    vm->endpoint =
        std::make_shared<GuestEndpoint>(std::move(pair.guest), opts);
    vm->api = ava_gen_vcl::MakeVclGuestApi(vm->endpoint);
    vms_.push_back(std::move(vm));
    return *vms_.back();
  }

 private:
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<GuestVm>> vms_;
};

ChannelPair MustShm() {
  auto c = MakeShmRingChannel(1u << 16);
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

// Writes `bytes` of patterned data into a fresh device buffer and reads it
// back through the forwarded API; returns true when the round trip is
// byte-exact.
bool WriteReadRoundTrip(GuestVm& vm, std::size_t bytes) {
  auto& api = vm.api;
  vcl_platform_id platform = nullptr;
  EXPECT_EQ(api.vclGetPlatformIDs(1, &platform, nullptr), VCL_SUCCESS);
  vcl_device_id device = nullptr;
  EXPECT_EQ(
      api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr),
      VCL_SUCCESS);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  EXPECT_EQ(err, VCL_SUCCESS);
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  EXPECT_EQ(err, VCL_SUCCESS);
  vcl_mem mem = api.vclCreateBuffer(ctx, VCL_MEM_READ_WRITE, bytes, nullptr,
                                    &err);
  EXPECT_EQ(err, VCL_SUCCESS);

  std::vector<std::uint8_t> out(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  std::vector<std::uint8_t> in(bytes, 0);
  EXPECT_EQ(api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, bytes,
                                      out.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(api.vclEnqueueReadBuffer(queue, mem, VCL_TRUE, 0, bytes,
                                     in.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  const bool match = in == out;

  api.vclReleaseMemObject(mem);
  api.vclReleaseCommandQueue(queue);
  api.vclReleaseContext(ctx);
  return match;
}

TEST(ArenaStackTest, LargeBuffersTravelThroughArena) {
  ArenaStack stack;
  GuestEndpoint::Options opts;
  opts.arena_threshold_bytes = 4096;
  GuestVm& vm = stack.AddVm(1, MustShm(), opts);
  ASSERT_NE(vm.endpoint->bulk_arena(), nullptr)
      << "shm transport must negotiate an arena";
  EXPECT_TRUE(WriteReadRoundTrip(vm, 256u << 10));
  // Both the 256 KiB write (bulk in) and the read (bulk out) cross the
  // threshold: the bytes moved out-of-band, not through the ring.
  EXPECT_GE(vm.endpoint->arena_allocs(), 2u);
  EXPECT_EQ(vm.endpoint->arena_fallbacks(), 0u);
  // Every slot went back to the pool once the replies were consumed.
  EXPECT_EQ(vm.endpoint->bulk_arena()->SlotsInUse(), 0u);
}

TEST(ArenaStackTest, SmallBuffersStayInline) {
  ArenaStack stack;
  GuestEndpoint::Options opts;
  opts.arena_threshold_bytes = 4096;
  GuestVm& vm = stack.AddVm(1, MustShm(), opts);
  EXPECT_TRUE(WriteReadRoundTrip(vm, 512));  // below threshold
  EXPECT_EQ(vm.endpoint->arena_allocs(), 0u);
}

TEST(ArenaStackTest, ZeroThresholdDisablesArenaPath) {
  ArenaStack stack;
  GuestEndpoint::Options opts;
  opts.arena_threshold_bytes = 0;
  GuestVm& vm = stack.AddVm(1, MustShm(), opts);
  EXPECT_EQ(vm.endpoint->bulk_arena(), nullptr);
  EXPECT_TRUE(WriteReadRoundTrip(vm, 256u << 10));
  EXPECT_EQ(vm.endpoint->arena_allocs(), 0u);
}

TEST(ArenaStackTest, ExhaustedArenaFallsBackInline) {
  ArenaStack stack;
  GuestEndpoint::Options opts;
  opts.arena_threshold_bytes = 4096;
  GuestVm& vm = stack.AddVm(1, MustShm(), opts);
  const auto& arena = vm.endpoint->bulk_arena();
  ASSERT_NE(arena, nullptr);
  // Hold every slot so the stub's Acquire fails and it marshals inline.
  std::vector<BufferArena::Slot> hostage;
  BufferArena::Slot s;
  while (arena->Acquire(1, &s)) {
    hostage.push_back(s);
  }
  ASSERT_EQ(arena->SlotsInUse(), arena->slot_count());
  EXPECT_TRUE(WriteReadRoundTrip(vm, 256u << 10));
  EXPECT_EQ(vm.endpoint->arena_allocs(), 0u);
  EXPECT_GE(vm.endpoint->arena_fallbacks(), 2u);  // write in + read out
  for (const auto& h : hostage) {
    arena->Release(h.slot, h.generation);
  }
}

TEST(ArenaStackTest, RecordedCallsMarshalInlineForReplayFidelity) {
  ArenaStack stack;
  GuestEndpoint::Options opts;
  opts.arena_threshold_bytes = 4096;
  GuestVm& vm = stack.AddVm(1, MustShm(), opts);
  auto& api = vm.api;
  vcl_platform_id platform = nullptr;
  ASSERT_EQ(api.vclGetPlatformIDs(1, &platform, nullptr), VCL_SUCCESS);
  vcl_device_id device = nullptr;
  ASSERT_EQ(
      api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr),
      VCL_SUCCESS);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = api.vclCreateContext(&device, 1, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  // vclCreateBuffer is `record;`-annotated: its 256 KiB initializer must
  // travel inline even above the threshold, so a migration replay of the
  // recorded payload never dereferences a long-recycled arena slot.
  std::vector<std::uint8_t> init(256u << 10, 0x5C);
  vcl_mem mem = api.vclCreateBuffer(ctx, VCL_MEM_COPY_HOST_PTR, init.size(),
                                    init.data(), &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  EXPECT_EQ(vm.endpoint->arena_allocs(), 0u);
  // The data still arrived: read it back (reads are unrecorded, so this leg
  // may use the arena).
  vcl_command_queue queue = api.vclCreateCommandQueue(ctx, device, 0, &err);
  std::vector<std::uint8_t> back(init.size(), 0);
  EXPECT_EQ(api.vclEnqueueReadBuffer(queue, mem, VCL_TRUE, 0, back.size(),
                                     back.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(back, init);
  api.vclReleaseMemObject(mem);
  api.vclReleaseCommandQueue(queue);
  api.vclReleaseContext(ctx);
}

// ---------------------------------------------------------------------------
// Fault matrix: corrupt descriptors through the full router path. A custom
// API handler decodes one bulk in-parameter the way generated handlers do,
// so a forged ArenaDesc hits ServerContext::ReadBulkIn -> Resolve and the
// resulting InvalidArgument must come back as a sealed error reply that
// leaves the channel usable.

constexpr std::uint16_t kBulkEchoApi = 99;

ApiHandler MakeBulkEchoHandler() {
  return [](ServerContext* ctx, std::uint32_t, ByteReader* args, bool,
            ByteWriter* reply) -> Status {
    ServerContext::BulkIn in;
    AVA_RETURN_IF_ERROR(ctx->ReadBulkIn(args, &in));
    reply->PutU64(in.size);
    return OkStatus();
  };
}

// One raw bulk-echo call carrying `payload_fn`-written bulk bytes.
Result<Bytes> RawBulkCall(GuestEndpoint* ep,
                          const std::function<void(ByteWriter*)>& payload_fn) {
  ByteWriter w = BeginCall(kBulkEchoApi, 1);
  payload_fn(&w);
  return ep->CallSyncPrepared(std::move(w).TakeBytes(), /*retriable=*/false);
}

class ArenaFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vcl::ResetDefaultSilo({});
    router_.Start();
  }
  void TearDown() override {
    endpoint_.reset();
    router_.Stop();
  }

  void Attach(ChannelPair pair) {
    session_ = std::make_shared<ApiServerSession>(7);
    session_->RegisterApi(kBulkEchoApi, MakeBulkEchoHandler());
    ASSERT_TRUE(router_.AttachVm(7, std::move(pair.host), session_).ok());
    GuestEndpoint::Options opts;
    opts.vm_id = 7;
    opts.call_deadline_ms = 20000;
    opts.arena_threshold_bytes = 4096;
    endpoint_ =
        std::make_shared<GuestEndpoint>(std::move(pair.guest), opts);
  }

  // The channel survived: a well-formed inline call still round-trips.
  void ExpectChannelUsable() {
    auto ok_reply = RawBulkCall(endpoint_.get(), [](ByteWriter* w) {
      w->PutU8(kBulkInline);
      const std::uint8_t blob[3] = {1, 2, 3};
      w->PutBlob(blob, sizeof(blob));
    });
    ASSERT_TRUE(ok_reply.ok()) << ok_reply.status().ToString();
    ByteReader r(*ok_reply);
    EXPECT_EQ(r.GetU64(), 3u);
  }

  Router router_;
  std::shared_ptr<ApiServerSession> session_;
  std::shared_ptr<GuestEndpoint> endpoint_;
};

TEST_F(ArenaFaultTest, CorruptDescriptorsYieldSealedErrorReplies) {
  Attach(MustShm());
  const auto& arena = endpoint_->bulk_arena();
  ASSERT_NE(arena, nullptr);
  BufferArena::Slot slot;
  ASSERT_TRUE(arena->Acquire(64, &slot));
  const ArenaDesc good = arena->DescFor(slot, 64);

  struct Corruption {
    const char* name;
    ArenaDesc desc;
  };
  ArenaDesc wrong_arena = good;
  wrong_arena.arena_id += 13;
  ArenaDesc bad_slot = good;
  bad_slot.slot = 1u << 20;
  ArenaDesc huge_len = good;
  huge_len.length = ~0ull;
  ArenaDesc stale_gen = good;
  stale_gen.generation += 9;
  const Corruption kCorruptions[] = {{"wrong_arena", wrong_arena},
                                     {"bad_slot", bad_slot},
                                     {"huge_len", huge_len},
                                     {"stale_gen", stale_gen}};
  for (const auto& c : kCorruptions) {
    auto reply = RawBulkCall(endpoint_.get(), [&c](ByteWriter* w) {
      w->PutU8(kBulkArena);
      PutArenaDesc(w, c.desc);
    });
    ASSERT_FALSE(reply.ok()) << c.name;
    EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument) << c.name;
    ExpectChannelUsable();
  }
  arena->Release(slot.slot, slot.generation);
  EXPECT_GE(session_->stats().dispatch_errors, 4u);
}

TEST_F(ArenaFaultTest, DescriptorForReleasedSlotRejected) {
  Attach(MustShm());
  const auto& arena = endpoint_->bulk_arena();
  ASSERT_NE(arena, nullptr);
  BufferArena::Slot slot;
  ASSERT_TRUE(arena->Acquire(64, &slot));
  const ArenaDesc desc = arena->DescFor(slot, 64);
  arena->Release(slot.slot, slot.generation);
  auto reply = RawBulkCall(endpoint_.get(), [&desc](ByteWriter* w) {
    w->PutU8(kBulkArena);
    PutArenaDesc(w, desc);
  });
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  ExpectChannelUsable();
}

TEST_F(ArenaFaultTest, ArenalessSessionRejectsDescriptors) {
  // Inproc transports share no memory: a descriptor arriving there is by
  // definition forged and must bounce, not crash.
  Attach(MakeInProcChannel(64));
  ASSERT_EQ(endpoint_->bulk_arena(), nullptr);
  ArenaDesc forged;
  forged.arena_id = 1;
  forged.slot = 0;
  forged.length = 64;
  forged.generation = 1;
  auto reply = RawBulkCall(endpoint_.get(), [&forged](ByteWriter* w) {
    w->PutU8(kBulkArena);
    PutArenaDesc(w, forged);
  });
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  ExpectChannelUsable();
}

TEST_F(ArenaFaultTest, UnknownBulkMarkerRejected) {
  Attach(MustShm());
  auto reply = RawBulkCall(endpoint_.get(),
                           [](ByteWriter* w) { w->PutU8(7); });
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  ExpectChannelUsable();
}

TEST_F(ArenaFaultTest, TruncatedDescriptorRejected) {
  Attach(MustShm());
  auto reply = RawBulkCall(endpoint_.get(), [](ByteWriter* w) {
    w->PutU8(kBulkArena);
    w->PutU32(1);  // arena_id only; the rest of the ArenaDesc is missing
  });
  ASSERT_FALSE(reply.ok());
  // The truncated read fails the reader; either classification is a clean
  // rejection, never an over-read.
  EXPECT_TRUE(reply.status().code() == StatusCode::kInvalidArgument ||
              reply.status().code() == StatusCode::kDataLoss)
      << reply.status().ToString();
  ExpectChannelUsable();
}

}  // namespace
}  // namespace ava
