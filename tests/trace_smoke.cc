// End-to-end trace smoke test: runs the quickstart example (argv[1]) with
// AVA_TRACE pointing at a scratch file, then validates the emitted chrome
// trace — well-formed JSON, and one complete span (>= 5 distinct hop
// timestamps plus matching router and server spans) for every forwarded
// synchronous call.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/trace_check.h"

namespace {

int Fail(const std::string& why) {
  std::fprintf(stderr, "trace_smoke: FAIL: %s\n", why.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: trace_smoke <path-to-quickstart>");
  }
  const std::string trace_path = "trace_smoke_quickstart.json";
  std::remove(trace_path.c_str());

  ::setenv("AVA_TRACE", trace_path.c_str(), /*overwrite=*/1);
  const std::string command = std::string(argv[1]) + " > /dev/null 2>&1";
  const int rc = std::system(command.c_str());
  if (rc != 0) {
    return Fail("quickstart exited with status " + std::to_string(rc));
  }

  std::ifstream in(trace_path);
  if (!in) {
    return Fail("quickstart produced no trace file at " + trace_path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  auto report = ava::obs::CheckChromeTrace(json, /*min_hops=*/5);
  if (!report.ok()) {
    return Fail("trace validation: " + report.status().ToString());
  }
  if (report->guest_spans == 0) {
    return Fail("no guest roundtrip spans recorded");
  }
  if (report->complete_spans != report->guest_spans) {
    return Fail("only " + std::to_string(report->complete_spans) + " of " +
                std::to_string(report->guest_spans) +
                " guest spans are complete");
  }
  if (report->router_spans == 0 || report->server_spans == 0) {
    return Fail("router/server spans missing");
  }

  std::printf(
      "trace_smoke: OK — %zu events, %zu complete guest spans, "
      "%zu router, %zu server\n",
      report->events, report->complete_spans, report->router_spans,
      report->server_spans);
  std::remove(trace_path.c_str());
  return 0;
}
