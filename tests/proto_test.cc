// Tests for the wire protocol: call/reply/batch encoding, shadow updates,
// cost back-patching, and malformed-input rejection.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/proto/marshal.h"
#include "src/proto/wire.h"

namespace ava {
namespace {

TEST(WireTest, CallRoundTrip) {
  CallHeader header;
  header.api_id = 3;
  header.func_id = 17;
  header.call_id = 999;
  header.vm_id = 42;
  header.flags = kCallFlagAsync;
  Bytes payload = {1, 2, 3, 4, 5};
  Bytes message = EncodeCall(header, payload);

  auto kind = PeekKind(message);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, MsgKind::kCall);

  auto decoded = DecodeCall(message);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.api_id, 3);
  EXPECT_EQ(decoded->header.func_id, 17u);
  EXPECT_EQ(decoded->header.call_id, 999u);
  EXPECT_EQ(decoded->header.vm_id, 42u);
  EXPECT_TRUE(decoded->header.is_async());
  EXPECT_EQ(Bytes(decoded->payload.begin(), decoded->payload.end()), payload);
}

TEST(WireTest, ReplyRoundTripWithShadows) {
  ReplyHeader header;
  header.call_id = 5;
  header.vm_id = 2;
  header.status_code = 0;
  ReplyBuilder builder(header);
  Bytes payload = {9, 8, 7};
  builder.SetPayload(payload);
  builder.AddShadow(11, Bytes{1, 1, 1});
  builder.AddShadow(22, Bytes{2, 2});
  builder.SetCost(123456);
  Bytes message = std::move(builder).Finish();

  auto cost = PeekReplyCost(message);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(*cost, 123456);

  auto decoded = DecodeReply(message);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.call_id, 5u);
  EXPECT_EQ(decoded->header.cost_vns, 123456);
  EXPECT_EQ(Bytes(decoded->payload.begin(), decoded->payload.end()), payload);
  ASSERT_EQ(decoded->shadows.size(), 2u);
  EXPECT_EQ(decoded->shadows[0].shadow_id, 11u);
  EXPECT_EQ(decoded->shadows[0].data.size(), 3u);
  EXPECT_EQ(decoded->shadows[1].shadow_id, 22u);
}

TEST(WireTest, EmptyReply) {
  ReplyHeader header;
  header.call_id = 1;
  ReplyBuilder builder(header);
  Bytes message = std::move(builder).Finish();
  auto decoded = DecodeReply(message);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());
  EXPECT_TRUE(decoded->shadows.empty());
}

TEST(WireTest, BatchRoundTrip) {
  std::vector<Bytes> calls;
  for (int i = 0; i < 5; ++i) {
    CallHeader h;
    h.func_id = static_cast<std::uint32_t>(i);
    h.flags = kCallFlagAsync;
    calls.push_back(EncodeCall(h, Bytes(static_cast<std::size_t>(i), 0xAA)));
  }
  Bytes batch = EncodeBatch(calls);
  auto kind = PeekKind(batch);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, MsgKind::kBatch);
  auto decoded = DecodeBatch(batch);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto call = DecodeCall((*decoded)[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(call.ok());
    EXPECT_EQ(call->header.func_id, static_cast<std::uint32_t>(i));
  }
}

TEST(WireTest, MalformedMessagesRejected) {
  EXPECT_FALSE(PeekKind({}).ok());
  EXPECT_FALSE(PeekKind({99}).ok());
  EXPECT_FALSE(DecodeCall({1, 2}).ok());       // truncated call
  EXPECT_FALSE(DecodeReply({1}).ok());         // call kind, not reply
  EXPECT_FALSE(DecodeBatch({2}).ok());         // reply kind, not batch
  EXPECT_FALSE(PeekReplyCost({2, 0}).ok());    // too short
  Bytes truncated_reply = {2, 0, 0, 0};
  EXPECT_FALSE(DecodeReply(truncated_reply).ok());
}

TEST(FrameChecksumTest, SealAndCheckRoundTrip) {
  CallHeader header;
  header.api_id = 3;
  header.func_id = 14;
  Bytes frame = EncodeCall(header, {1, 2, 3, 4, 5});
  const Bytes original = frame;
  SealFrame(&frame);
  ASSERT_EQ(frame.size(), original.size() + 4);
  ASSERT_TRUE(CheckAndStripFrame(&frame).ok());
  EXPECT_EQ(frame, original);
}

TEST(FrameChecksumTest, DetectsEverySingleByteFlip) {
  CallHeader header;
  Bytes sealed = EncodeCall(header, {7, 7, 7});
  SealFrame(&sealed);
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    Bytes mangled = sealed;
    mangled[i] ^= 0xFF;
    auto status = CheckAndStripFrame(&mangled);
    ASSERT_FALSE(status.ok()) << "flip at byte " << i << " went undetected";
    EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  }
}

TEST(FrameChecksumTest, ShortFrameRejected) {
  Bytes tiny = {1, 2, 3};
  EXPECT_EQ(CheckAndStripFrame(&tiny).code(), StatusCode::kDataLoss);
}

TEST(FrameChecksumTest, Crc32MatchesKnownVector) {
  // The standard CRC-32C (Castagnoli) check value for "123456789". Pins the
  // polynomial: the hardware and software paths must both produce this, or
  // mixed-host deployments would reject every frame.
  EXPECT_EQ(Crc32("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(WireTest, PeekReplyStatusReadsCodeWithoutDecoding) {
  ReplyHeader header;
  header.call_id = 8;
  header.status_code = static_cast<std::int32_t>(StatusCode::kUnavailable);
  ReplyBuilder builder(header);
  Bytes message = std::move(builder).Finish();
  auto code = PeekReplyStatus(message);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, static_cast<std::int32_t>(StatusCode::kUnavailable));
  EXPECT_FALSE(PeekReplyStatus({2, 0, 0}).ok());  // too short
}

TEST(WireTest, ReplyWithErrorStatus) {
  ReplyHeader header;
  header.call_id = 77;
  header.status_code = static_cast<std::int32_t>(StatusCode::kPermissionDenied);
  ReplyBuilder builder(header);
  Bytes message = std::move(builder).Finish();
  auto decoded = DecodeReply(message);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.status_code,
            static_cast<std::int32_t>(StatusCode::kPermissionDenied));
}

TEST(MarshalTest, OptionalBytesAndStrings) {
  ByteWriter w;
  PutOptionalBytes(&w, nullptr, 100);
  const char data[4] = {1, 2, 3, 4};
  PutOptionalBytes(&w, data, 4);
  PutOptionalCString(&w, nullptr);
  PutOptionalCString(&w, "hi");

  ByteReader r(w.bytes());
  EXPECT_FALSE(r.GetBool());
  EXPECT_TRUE(r.GetBool());
  EXPECT_EQ(r.GetBlob(), Bytes({1, 2, 3, 4}));
  EXPECT_FALSE(r.GetBool());
  EXPECT_TRUE(r.GetBool());
  EXPECT_EQ(r.GetString(), "hi");
  EXPECT_FALSE(r.failed());
}

TEST(MarshalTest, OutDescAndOutBytes) {
  ByteWriter w;
  int dummy = 0;
  PutOutDesc(&w, &dummy, 4);
  PutOutDesc(&w, nullptr, 0);
  ByteReader r(w.bytes());
  OutDesc d1 = GetOutDesc(&r);
  EXPECT_TRUE(d1.wanted);
  EXPECT_EQ(d1.capacity, 4u);
  OutDesc d2 = GetOutDesc(&r);
  EXPECT_FALSE(d2.wanted);

  ByteWriter w2;
  std::uint32_t value = 0xBEEF;
  PutOutBytes(&w2, true, &value, sizeof(value));
  PutOutBytes(&w2, false, nullptr, 0);
  ByteReader r2(w2.bytes());
  std::uint32_t out = 0;
  EXPECT_EQ(GetOutBytes(&r2, &out, sizeof(out)), sizeof(out));
  EXPECT_EQ(out, 0xBEEFu);
  EXPECT_EQ(GetOutBytes(&r2, &out, sizeof(out)), 0u);
}

TEST(MarshalTest, HandleWireConversion) {
  struct Opaque;
  auto* fake = reinterpret_cast<Opaque*>(static_cast<std::uintptr_t>(0xABCD));
  WireHandle wire = HandleToWire(fake);
  EXPECT_EQ(wire, 0xABCDu);
  EXPECT_EQ(WireToHandle<Opaque*>(wire), fake);
  EXPECT_EQ(WireToHandle<Opaque*>(0), nullptr);
}

// Property: random reply shapes decode losslessly.
TEST(WirePropertyTest, RandomRepliesRoundTrip) {
  Rng rng(31337);
  for (int trial = 0; trial < 100; ++trial) {
    ReplyHeader header;
    header.call_id = rng.NextU64();
    header.vm_id = rng.NextU64();
    header.status_code = static_cast<std::int32_t>(rng.NextBelow(14));
    ReplyBuilder builder(header);
    Bytes payload(rng.NextBelow(300));
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.NextU64());
    }
    builder.SetPayload(payload);
    const int shadows = static_cast<int>(rng.NextBelow(5));
    std::vector<std::pair<std::uint64_t, Bytes>> expect;
    for (int i = 0; i < shadows; ++i) {
      Bytes data(rng.NextBelow(64));
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(rng.NextU64());
      }
      std::uint64_t id = rng.NextU64() | 1;  // nonzero
      builder.AddShadow(id, data);
      expect.emplace_back(id, data);
    }
    builder.SetCost(static_cast<std::int64_t>(rng.NextU64() >> 2));
    Bytes message = std::move(builder).Finish();
    auto decoded = DecodeReply(message);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->header.call_id, header.call_id);
    ASSERT_EQ(Bytes(decoded->payload.begin(), decoded->payload.end()),
              payload);
    ASSERT_EQ(decoded->shadows.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_EQ(decoded->shadows[i].shadow_id, expect[i].first);
      ASSERT_EQ(Bytes(decoded->shadows[i].data.begin(),
                      decoded->shadows[i].data.end()),
                expect[i].second);
    }
  }
}

}  // namespace
}  // namespace ava
