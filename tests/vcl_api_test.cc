// Tests for the 39-function VCL public API: discovery, object lifecycle,
// command queues, transfers, kernel execution, events/profiling, and error
// paths. This exercises the silo exactly the way the AvA API server does.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/vcl/silo.h"
#include "src/vcl/vcl.h"

namespace {

const char* kVaddSrc =
    "__kernel void vadd(__global const float* a, __global const float* b,"
    "                   __global float* c, int n) {"
    "  int i = get_global_id(0);"
    "  if (i < n) { c[i] = a[i] + b[i]; }"
    "}";

class VclApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vcl::SiloConfig config;
    config.device_global_mem_bytes = 32u << 20;
    vcl::ResetDefaultSilo(config);
    ASSERT_EQ(vclGetPlatformIDs(1, &platform_, nullptr), VCL_SUCCESS);
    ASSERT_EQ(vclGetDeviceIDs(platform_, VCL_DEVICE_TYPE_GPU, 1, &device_,
                              nullptr),
              VCL_SUCCESS);
    vcl_int err = VCL_SUCCESS;
    context_ = vclCreateContext(&device_, 1, &err);
    ASSERT_EQ(err, VCL_SUCCESS);
    queue_ = vclCreateCommandQueue(context_, device_,
                                   VCL_QUEUE_PROFILING_ENABLE, &err);
    ASSERT_EQ(err, VCL_SUCCESS);
  }

  void TearDown() override {
    if (queue_ != nullptr) {
      vclReleaseCommandQueue(queue_);
    }
    if (context_ != nullptr) {
      vclReleaseContext(context_);
    }
  }

  vcl_kernel BuildKernel(const char* src, const char* name) {
    vcl_int err = VCL_SUCCESS;
    vcl_program program = vclCreateProgramWithSource(context_, src, &err);
    EXPECT_EQ(err, VCL_SUCCESS);
    EXPECT_EQ(vclBuildProgram(program, nullptr), VCL_SUCCESS);
    vcl_kernel kernel = vclCreateKernel(program, name, &err);
    EXPECT_EQ(err, VCL_SUCCESS);
    vclReleaseProgram(program);  // kernel keeps the program alive
    return kernel;
  }

  vcl_platform_id platform_ = nullptr;
  vcl_device_id device_ = nullptr;
  vcl_context context_ = nullptr;
  vcl_command_queue queue_ = nullptr;
};

TEST_F(VclApiTest, PlatformDiscovery) {
  vcl_uint n = 0;
  EXPECT_EQ(vclGetPlatformIDs(0, nullptr, &n), VCL_SUCCESS);
  EXPECT_EQ(n, 1u);
  char name[64];
  size_t name_size = 0;
  EXPECT_EQ(vclGetPlatformInfo(platform_, VCL_PLATFORM_NAME, sizeof(name),
                               name, &name_size),
            VCL_SUCCESS);
  EXPECT_GT(name_size, 0u);
  EXPECT_EQ(std::string(name), "AvA VCL Platform");
  EXPECT_EQ(vclGetPlatformInfo(nullptr, VCL_PLATFORM_NAME, sizeof(name), name,
                               nullptr),
            VCL_INVALID_PLATFORM);
}

TEST_F(VclApiTest, DeviceInfoQueries) {
  vcl_ulong mem = 0;
  EXPECT_EQ(vclGetDeviceInfo(device_, VCL_DEVICE_GLOBAL_MEM_SIZE, sizeof(mem),
                             &mem, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(mem, 32u << 20);
  vcl_uint cus = 0;
  EXPECT_EQ(vclGetDeviceInfo(device_, VCL_DEVICE_MAX_COMPUTE_UNITS,
                             sizeof(cus), &cus, nullptr),
            VCL_SUCCESS);
  EXPECT_GT(cus, 0u);
  size_t wg = 0;
  EXPECT_EQ(vclGetDeviceInfo(device_, VCL_DEVICE_MAX_WORK_GROUP_SIZE,
                             sizeof(wg), &wg, nullptr),
            VCL_SUCCESS);
  EXPECT_GT(wg, 0u);
  // Undersized output buffer is rejected.
  char tiny[2];
  EXPECT_EQ(vclGetDeviceInfo(device_, VCL_DEVICE_NAME, sizeof(tiny), tiny,
                             nullptr),
            VCL_INVALID_VALUE);
}

TEST_F(VclApiTest, BufferWriteReadRoundTrip) {
  vcl_int err = VCL_SUCCESS;
  const size_t n = 4096;
  vcl_mem buf = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, n, nullptr, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  std::vector<std::uint8_t> src(n), dst(n, 0);
  for (size_t i = 0; i < n; ++i) {
    src[i] = static_cast<std::uint8_t>(i * 7);
  }
  ASSERT_EQ(vclEnqueueWriteBuffer(queue_, buf, VCL_TRUE, 0, n, src.data(), 0,
                                  nullptr, nullptr),
            VCL_SUCCESS);
  ASSERT_EQ(vclEnqueueReadBuffer(queue_, buf, VCL_TRUE, 0, n, dst.data(), 0,
                                 nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(src, dst);
  EXPECT_EQ(vclReleaseMemObject(buf), VCL_SUCCESS);
}

TEST_F(VclApiTest, CopyHostPtrInitializesBuffer) {
  std::vector<float> init = {1.0f, 2.0f, 3.0f, 4.0f};
  vcl_int err = VCL_SUCCESS;
  vcl_mem buf = vclCreateBuffer(context_,
                                VCL_MEM_READ_ONLY | VCL_MEM_COPY_HOST_PTR,
                                init.size() * sizeof(float), init.data(), &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  std::vector<float> out(4, 0.0f);
  ASSERT_EQ(vclEnqueueReadBuffer(queue_, buf, VCL_TRUE, 0, 16, out.data(), 0,
                                 nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(out, init);
  vclReleaseMemObject(buf);
}

TEST_F(VclApiTest, PartialOffsetReadWrite) {
  vcl_int err = VCL_SUCCESS;
  vcl_mem buf = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 64, nullptr, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  std::uint32_t value = 0xCAFEBABE;
  ASSERT_EQ(vclEnqueueWriteBuffer(queue_, buf, VCL_TRUE, 16, 4, &value, 0,
                                  nullptr, nullptr),
            VCL_SUCCESS);
  std::uint32_t readback = 0;
  ASSERT_EQ(vclEnqueueReadBuffer(queue_, buf, VCL_TRUE, 16, 4, &readback, 0,
                                 nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(readback, value);
  // Out-of-range access is rejected at enqueue.
  EXPECT_EQ(vclEnqueueReadBuffer(queue_, buf, VCL_TRUE, 62, 4, &readback, 0,
                                 nullptr, nullptr),
            VCL_INVALID_VALUE);
  vclReleaseMemObject(buf);
}

TEST_F(VclApiTest, FillAndCopyBuffer) {
  vcl_int err = VCL_SUCCESS;
  vcl_mem a = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 64, nullptr, &err);
  vcl_mem b = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 64, nullptr, &err);
  std::uint32_t pattern = 0x01020304;
  ASSERT_EQ(vclEnqueueFillBuffer(queue_, a, &pattern, 4, 0, 64, 0, nullptr,
                                 nullptr),
            VCL_SUCCESS);
  ASSERT_EQ(vclEnqueueCopyBuffer(queue_, a, b, 0, 0, 64, 0, nullptr, nullptr),
            VCL_SUCCESS);
  ASSERT_EQ(vclFinish(queue_), VCL_SUCCESS);
  std::vector<std::uint32_t> out(16, 0);
  ASSERT_EQ(vclEnqueueReadBuffer(queue_, b, VCL_TRUE, 0, 64, out.data(), 0,
                                 nullptr, nullptr),
            VCL_SUCCESS);
  for (auto v : out) {
    EXPECT_EQ(v, pattern);
  }
  vclReleaseMemObject(a);
  vclReleaseMemObject(b);
}

TEST_F(VclApiTest, DeviceMemoryExhaustion) {
  vcl_int err = VCL_SUCCESS;
  vcl_mem big = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 30u << 20,
                                nullptr, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  vcl_mem too_big = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 4u << 20,
                                    nullptr, &err);
  EXPECT_EQ(too_big, nullptr);
  EXPECT_EQ(err, VCL_MEM_OBJECT_ALLOCATION_FAILURE);
  // Releasing frees budget for a new allocation.
  vclReleaseMemObject(big);
  vcl_mem again = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 4u << 20,
                                  nullptr, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  vclReleaseMemObject(again);
}

TEST_F(VclApiTest, ProgramBuildFailureHasLog) {
  vcl_int err = VCL_SUCCESS;
  vcl_program program = vclCreateProgramWithSource(
      context_, "__kernel void broken( { }", &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  EXPECT_EQ(vclBuildProgram(program, nullptr), VCL_BUILD_PROGRAM_FAILURE);
  vcl_int status = VCL_BUILD_NONE;
  EXPECT_EQ(vclGetProgramBuildInfo(program, VCL_PROGRAM_BUILD_STATUS,
                                   sizeof(status), &status, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(status, VCL_BUILD_ERROR);
  char log[512];
  size_t log_size = 0;
  EXPECT_EQ(vclGetProgramBuildInfo(program, VCL_PROGRAM_BUILD_LOG, sizeof(log),
                                   log, &log_size),
            VCL_SUCCESS);
  EXPECT_GT(log_size, 1u);
  // Creating a kernel from an unbuilt program fails.
  vcl_kernel kernel = vclCreateKernel(program, "broken", &err);
  EXPECT_EQ(kernel, nullptr);
  EXPECT_EQ(err, VCL_INVALID_PROGRAM_EXECUTABLE);
  vclReleaseProgram(program);
}

TEST_F(VclApiTest, KernelEndToEnd) {
  vcl_kernel kernel = BuildKernel(kVaddSrc, "vadd");
  const int n = 512;
  std::vector<float> a(n), b(n), c(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = 1.0f;
  }
  vcl_int err = VCL_SUCCESS;
  vcl_mem da = vclCreateBuffer(context_, VCL_MEM_COPY_HOST_PTR, n * 4,
                               a.data(), &err);
  vcl_mem db = vclCreateBuffer(context_, VCL_MEM_COPY_HOST_PTR, n * 4,
                               b.data(), &err);
  vcl_mem dc = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, n * 4, nullptr,
                               &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  ASSERT_EQ(vclSetKernelArgBuffer(kernel, 0, da), VCL_SUCCESS);
  ASSERT_EQ(vclSetKernelArgBuffer(kernel, 1, db), VCL_SUCCESS);
  ASSERT_EQ(vclSetKernelArgBuffer(kernel, 2, dc), VCL_SUCCESS);
  ASSERT_EQ(vclSetKernelArgScalar(kernel, 3, sizeof(int), &n), VCL_SUCCESS);
  size_t global = n;
  vcl_event ev = nullptr;
  ASSERT_EQ(vclEnqueueNDRangeKernel(queue_, kernel, 1, nullptr, &global,
                                    nullptr, 0, nullptr, &ev),
            VCL_SUCCESS);
  ASSERT_EQ(vclWaitForEvents(1, &ev), VCL_SUCCESS);
  // Event is complete; profiling timestamps are ordered.
  vcl_ulong t_queued = 0, t_start = 0, t_end = 0;
  EXPECT_EQ(vclGetEventProfilingInfo(ev, VCL_PROFILING_COMMAND_QUEUED,
                                     sizeof(t_queued), &t_queued, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(vclGetEventProfilingInfo(ev, VCL_PROFILING_COMMAND_START,
                                     sizeof(t_start), &t_start, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(vclGetEventProfilingInfo(ev, VCL_PROFILING_COMMAND_END,
                                     sizeof(t_end), &t_end, nullptr),
            VCL_SUCCESS);
  EXPECT_LE(t_queued, t_start);
  EXPECT_LT(t_start, t_end);
  vcl_int status = 0;
  EXPECT_EQ(vclGetEventInfo(ev, VCL_EVENT_COMMAND_EXECUTION_STATUS,
                            sizeof(status), &status, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(status, VCL_COMPLETE);
  vclReleaseEvent(ev);
  ASSERT_EQ(vclEnqueueReadBuffer(queue_, dc, VCL_TRUE, 0, n * 4, c.data(), 0,
                                 nullptr, nullptr),
            VCL_SUCCESS);
  for (int i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(c[i], static_cast<float>(i) + 1.0f);
  }
  vclReleaseMemObject(da);
  vclReleaseMemObject(db);
  vclReleaseMemObject(dc);
  vclReleaseKernel(kernel);
}

TEST_F(VclApiTest, KernelArgValidation) {
  vcl_kernel kernel = BuildKernel(kVaddSrc, "vadd");
  int n = 4;
  // Wrong arg kinds.
  EXPECT_EQ(vclSetKernelArgScalar(kernel, 0, sizeof(int), &n),
            VCL_INVALID_VALUE);
  EXPECT_EQ(vclSetKernelArgLocal(kernel, 3, 16), VCL_INVALID_VALUE);
  // Bad index.
  EXPECT_EQ(vclSetKernelArgScalar(kernel, 9, sizeof(int), &n),
            VCL_INVALID_ARG_INDEX);
  // Bad size for int parameter.
  std::int64_t big = 1;
  EXPECT_EQ(vclSetKernelArgScalar(kernel, 3, sizeof(big), &big),
            VCL_INVALID_ARG_SIZE);
  // Launch with unset args is rejected.
  size_t global = 4;
  EXPECT_EQ(vclEnqueueNDRangeKernel(queue_, kernel, 1, nullptr, &global,
                                    nullptr, 0, nullptr, nullptr),
            VCL_INVALID_KERNEL_ARGS);
  vclReleaseKernel(kernel);
}

TEST_F(VclApiTest, UnknownKernelNameRejected) {
  vcl_int err = VCL_SUCCESS;
  vcl_program program = vclCreateProgramWithSource(context_, kVaddSrc, &err);
  ASSERT_EQ(vclBuildProgram(program, nullptr), VCL_SUCCESS);
  vcl_kernel kernel = vclCreateKernel(program, "nope", &err);
  EXPECT_EQ(kernel, nullptr);
  EXPECT_EQ(err, VCL_INVALID_KERNEL_NAME);
  vclReleaseProgram(program);
}

TEST_F(VclApiTest, KernelTrapSurfacesOnEvent) {
  vcl_kernel kernel = BuildKernel(
      "__kernel void oob(__global int* out) { out[123456] = 1; }", "oob");
  vcl_int err = VCL_SUCCESS;
  vcl_mem buf = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 16, nullptr,
                                &err);
  ASSERT_EQ(vclSetKernelArgBuffer(kernel, 0, buf), VCL_SUCCESS);
  size_t global = 1;
  vcl_event ev = nullptr;
  ASSERT_EQ(vclEnqueueNDRangeKernel(queue_, kernel, 1, nullptr, &global,
                                    nullptr, 0, nullptr, &ev),
            VCL_SUCCESS);
  EXPECT_EQ(vclWaitForEvents(1, &ev), VCL_KERNEL_TRAP);
  vcl_int status = 0;
  EXPECT_EQ(vclGetEventInfo(ev, VCL_EVENT_COMMAND_EXECUTION_STATUS,
                            sizeof(status), &status, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(status, VCL_KERNEL_TRAP);
  vclReleaseEvent(ev);
  vclReleaseMemObject(buf);
  vclReleaseKernel(kernel);
}

TEST_F(VclApiTest, EventWaitListChainsCommands) {
  vcl_int err = VCL_SUCCESS;
  vcl_mem buf = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 16, nullptr,
                                &err);
  std::uint32_t one = 1, two = 2;
  vcl_event e1 = nullptr;
  ASSERT_EQ(vclEnqueueWriteBuffer(queue_, buf, VCL_FALSE, 0, 4, &one, 0,
                                  nullptr, &e1),
            VCL_SUCCESS);
  vcl_event e2 = nullptr;
  ASSERT_EQ(vclEnqueueWriteBuffer(queue_, buf, VCL_FALSE, 0, 4, &two, 1, &e1,
                                  &e2),
            VCL_SUCCESS);
  ASSERT_EQ(vclWaitForEvents(1, &e2), VCL_SUCCESS);
  std::uint32_t out = 0;
  ASSERT_EQ(vclEnqueueReadBuffer(queue_, buf, VCL_TRUE, 0, 4, &out, 0, nullptr,
                                 nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(out, 2u);
  vclReleaseEvent(e1);
  vclReleaseEvent(e2);
  vclReleaseMemObject(buf);
}

TEST_F(VclApiTest, StaleHandleRejected) {
  vcl_int err = VCL_SUCCESS;
  vcl_mem buf = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 16, nullptr,
                                &err);
  ASSERT_EQ(vclReleaseMemObject(buf), VCL_SUCCESS);
  // The handle is now dangling; the registry rejects it.
  EXPECT_EQ(vclRetainMemObject(buf), VCL_INVALID_MEM_OBJECT);
  std::uint32_t x = 0;
  EXPECT_EQ(vclEnqueueReadBuffer(queue_, buf, VCL_TRUE, 0, 4, &x, 0, nullptr,
                                 nullptr),
            VCL_INVALID_MEM_OBJECT);
}

TEST_F(VclApiTest, RetainReleaseKeepsObjectAlive) {
  vcl_int err = VCL_SUCCESS;
  vcl_mem buf = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 16, nullptr,
                                &err);
  ASSERT_EQ(vclRetainMemObject(buf), VCL_SUCCESS);
  ASSERT_EQ(vclReleaseMemObject(buf), VCL_SUCCESS);
  // Still alive due to the extra reference.
  vcl_uint refs = 0;
  EXPECT_EQ(vclGetMemObjectInfo(buf, VCL_MEM_REFERENCE_COUNT, sizeof(refs),
                                &refs, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(refs, 1u);
  EXPECT_EQ(vclReleaseMemObject(buf), VCL_SUCCESS);
}

TEST_F(VclApiTest, LocalMemoryKernelThroughApi) {
  vcl_kernel kernel = BuildKernel(
      "__kernel void bsum(__global const float* in, __global float* out,"
      "                   __local float* scratch) {"
      "  int lid = get_local_id(0);"
      "  scratch[lid] = in[get_global_id(0)];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  if (lid == 0) {"
      "    float acc = 0.0f;"
      "    for (int i = 0; i < get_local_size(0); i++) { acc += scratch[i]; }"
      "    out[get_group_id(0)] = acc;"
      "  }"
      "}",
      "bsum");
  const int groups = 4, lsz = 32, n = groups * lsz;
  std::vector<float> in(n, 2.0f), out(groups, 0.0f);
  vcl_int err = VCL_SUCCESS;
  vcl_mem din = vclCreateBuffer(context_, VCL_MEM_COPY_HOST_PTR, n * 4,
                                in.data(), &err);
  vcl_mem dout = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, groups * 4,
                                 nullptr, &err);
  ASSERT_EQ(vclSetKernelArgBuffer(kernel, 0, din), VCL_SUCCESS);
  ASSERT_EQ(vclSetKernelArgBuffer(kernel, 1, dout), VCL_SUCCESS);
  ASSERT_EQ(vclSetKernelArgLocal(kernel, 2, lsz * sizeof(float)), VCL_SUCCESS);
  size_t global = n, local = lsz;
  ASSERT_EQ(vclEnqueueNDRangeKernel(queue_, kernel, 1, nullptr, &global,
                                    &local, 0, nullptr, nullptr),
            VCL_SUCCESS);
  ASSERT_EQ(vclEnqueueReadBuffer(queue_, dout, VCL_TRUE, 0, groups * 4,
                                 out.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  for (int g = 0; g < groups; ++g) {
    EXPECT_FLOAT_EQ(out[g], 2.0f * lsz);
  }
  vclReleaseMemObject(din);
  vclReleaseMemObject(dout);
  vclReleaseKernel(kernel);
}

TEST_F(VclApiTest, WorkGroupInfoQueries) {
  vcl_kernel kernel = BuildKernel(
      "__kernel void f(__global int* a) { __local float tile[32]; "
      " tile[0] = 0.0f; a[0] = (int)tile[0]; }",
      "f");
  size_t wg = 0;
  EXPECT_EQ(vclGetKernelWorkGroupInfo(kernel, device_,
                                      VCL_KERNEL_WORK_GROUP_SIZE, sizeof(wg),
                                      &wg, nullptr),
            VCL_SUCCESS);
  EXPECT_GT(wg, 0u);
  vcl_ulong local_bytes = 0;
  EXPECT_EQ(vclGetKernelWorkGroupInfo(kernel, device_,
                                      VCL_KERNEL_LOCAL_MEM_SIZE,
                                      sizeof(local_bytes), &local_bytes,
                                      nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(local_bytes, 32 * sizeof(float));
  vclReleaseKernel(kernel);
}

TEST_F(VclApiTest, SiloCountersAdvance) {
  auto before = vcl::DefaultSilo().Counters();
  vcl_int err = VCL_SUCCESS;
  vcl_mem buf = vclCreateBuffer(context_, VCL_MEM_READ_WRITE, 1024, nullptr,
                                &err);
  std::vector<std::uint8_t> data(1024, 1);
  ASSERT_EQ(vclEnqueueWriteBuffer(queue_, buf, VCL_TRUE, 0, 1024, data.data(),
                                  0, nullptr, nullptr),
            VCL_SUCCESS);
  auto after = vcl::DefaultSilo().Counters();
  EXPECT_GT(after.commands_executed, before.commands_executed);
  EXPECT_GE(after.bytes_transferred, before.bytes_transferred + 1024);
  EXPECT_GT(after.virtual_time_ns, before.virtual_time_ns);
  vclReleaseMemObject(buf);
}

TEST_F(VclApiTest, EnqueueBarrierAndFlushSucceed) {
  EXPECT_EQ(vclEnqueueBarrier(queue_), VCL_SUCCESS);
  EXPECT_EQ(vclFlush(queue_), VCL_SUCCESS);
  EXPECT_EQ(vclFinish(queue_), VCL_SUCCESS);
}

TEST_F(VclApiTest, InvalidHandlesEverywhere) {
  EXPECT_EQ(vclRetainContext(nullptr), VCL_INVALID_CONTEXT);
  EXPECT_EQ(vclFinish(nullptr), VCL_INVALID_COMMAND_QUEUE);
  EXPECT_EQ(vclBuildProgram(nullptr, nullptr), VCL_INVALID_PROGRAM);
  EXPECT_EQ(vclRetainKernel(nullptr), VCL_INVALID_KERNEL);
  EXPECT_EQ(vclRetainEvent(nullptr), VCL_INVALID_EVENT);
  EXPECT_EQ(vclWaitForEvents(0, nullptr), VCL_INVALID_VALUE);
  vcl_int err = VCL_SUCCESS;
  EXPECT_EQ(vclCreateBuffer(nullptr, 0, 16, nullptr, &err), nullptr);
  EXPECT_EQ(err, VCL_INVALID_CONTEXT);
  EXPECT_EQ(vclCreateContext(nullptr, 0, &err), nullptr);
  EXPECT_EQ(err, VCL_INVALID_VALUE);
}

}  // namespace

namespace {

TEST(VclSiloConfigTest, MultipleDevicesEnumerate) {
  vcl::SiloConfig config;
  config.num_devices = 3;
  vcl::ResetDefaultSilo(config);
  vcl_platform_id platform = nullptr;
  ASSERT_EQ(vclGetPlatformIDs(1, &platform, nullptr), VCL_SUCCESS);
  vcl_uint n = 0;
  vcl_device_id devices[3] = {nullptr, nullptr, nullptr};
  ASSERT_EQ(vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_ALL, 3, devices, &n),
            VCL_SUCCESS);
  EXPECT_EQ(n, 3u);
  EXPECT_NE(devices[0], devices[1]);
  EXPECT_NE(devices[1], devices[2]);
  // Each device has its own memory budget and queue machinery.
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = vclCreateContext(&devices[1], 1, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  vcl_command_queue q = vclCreateCommandQueue(ctx, devices[1], 0, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  EXPECT_EQ(vclFinish(q), VCL_SUCCESS);
  // A queue on a device outside the context is rejected.
  vcl_command_queue bad = vclCreateCommandQueue(ctx, devices[0], 0, &err);
  EXPECT_EQ(bad, nullptr);
  EXPECT_EQ(err, VCL_INVALID_DEVICE);
  vclReleaseCommandQueue(q);
  vclReleaseContext(ctx);
}

TEST(VclSiloConfigTest, DefaultLocalSizePicksDivisor) {
  vcl::SiloConfig config;
  config.max_work_group_size = 64;
  vcl::ResetDefaultSilo(config);
  vcl_platform_id platform = nullptr;
  vclGetPlatformIDs(1, &platform, nullptr);
  vcl_device_id device = nullptr;
  vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = vclCreateContext(&device, 1, &err);
  vcl_command_queue q = vclCreateCommandQueue(ctx, device, 0, &err);
  vcl_program prog = vclCreateProgramWithSource(
      ctx, "__kernel void f(__global int* o) { o[get_global_id(0)] = 1; }",
      &err);
  vclBuildProgram(prog, nullptr);
  vcl_kernel k = vclCreateKernel(prog, "f", &err);
  // A prime global size (97) has no divisor <= 64 except 1: the default
  // local-size heuristic must still produce a legal launch.
  vcl_mem buf = vclCreateBuffer(ctx, 0, 97 * 4, nullptr, &err);
  vclSetKernelArgBuffer(k, 0, buf);
  size_t global = 97;
  ASSERT_EQ(vclEnqueueNDRangeKernel(q, k, 1, nullptr, &global, nullptr, 0,
                                    nullptr, nullptr),
            VCL_SUCCESS);
  ASSERT_EQ(vclFinish(q), VCL_SUCCESS);
  std::vector<std::int32_t> out(97, 0);
  ASSERT_EQ(vclEnqueueReadBuffer(q, buf, VCL_TRUE, 0, 97 * 4, out.data(), 0,
                                 nullptr, nullptr),
            VCL_SUCCESS);
  for (auto v : out) {
    EXPECT_EQ(v, 1);
  }
  vclReleaseMemObject(buf);
  vclReleaseKernel(k);
  vclReleaseProgram(prog);
  vclReleaseCommandQueue(q);
  vclReleaseContext(ctx);
}

}  // namespace
