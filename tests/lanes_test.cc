// Intra-VM parallel dispatch: per-object execution lanes (router) and the
// concurrent-caller reply demux (guest endpoint).
//
// Property under test, seeded and iterated: for every object, the server
// observes that object's calls in exactly the order the guest issued them —
// regardless of how many application threads multiplex the channel, how
// calls on *different* objects interleave, and whether the calls traveled
// sync, async, or batched. Cross-object calls, by contrast, genuinely
// overlap when the VM's parallelism bound allows it, and never overlap when
// it is 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/vclock.h"
#include "src/obs/metrics.h"
#include "src/proto/wire.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"

namespace {

constexpr std::uint16_t kApi = 42;
constexpr std::uint32_t kFnRecord = 0;      // record (object, seq), spin
constexpr std::uint32_t kFnRendezvous = 1;  // block until N callers inside

// Server-side observation log, shared by all handler invocations.
struct ExecLog {
  std::mutex mutex;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> order;

  std::atomic<int> in_exec{0};
  std::atomic<int> max_concurrent{0};

  // Rendezvous state for the overlap proof.
  std::mutex rv_mutex;
  std::condition_variable rv_cv;
  int rv_arrived = 0;
  int rv_target = 0;

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex);
    order.clear();
  }
};

ava::ApiHandler MakeLaneHandler(ExecLog* log) {
  return [log](ava::ServerContext* ctx, std::uint32_t func_id,
               ava::ByteReader* args, bool, ava::ByteWriter* reply)
             -> ava::Status {
    const int now = log->in_exec.fetch_add(1) + 1;
    int prev = log->max_concurrent.load();
    while (now > prev &&
           !log->max_concurrent.compare_exchange_weak(prev, now)) {
    }
    ava::Status result = ava::OkStatus();
    if (func_id == kFnRecord) {
      const std::uint64_t object = args->GetU64();
      const std::uint32_t seq = args->GetU32();
      const std::uint32_t spin_ns = args->GetU32();
      if (spin_ns > 0) {
        const std::int64_t until = ava::MonotonicNowNs() + spin_ns;
        while (ava::MonotonicNowNs() < until) {
        }
      }
      {
        std::lock_guard<std::mutex> lock(log->mutex);
        log->order[object].push_back(seq);
      }
      reply->PutU32(seq);
    } else if (func_id == kFnRendezvous) {
      // Block until rv_target callers are inside simultaneously (bounded
      // wait). Only genuinely concurrent lanes can all arrive; a serial
      // executor would run the callers one at a time and each would time
      // out alone.
      std::unique_lock<std::mutex> lock(log->rv_mutex);
      ++log->rv_arrived;
      log->rv_cv.notify_all();
      const bool met = log->rv_cv.wait_for(
          lock, std::chrono::seconds(5),
          [log] { return log->rv_arrived >= log->rv_target; });
      reply->PutU32(met ? 1 : 0);
    } else {
      result = ava::InvalidArgument("unknown func");
    }
    log->in_exec.fetch_sub(1);
    ctx->ChargeCost(500);
    return result;
  };
}

// Full stack: one VM behind an in-proc channel, parallelism per test.
struct LaneStack {
  ava::Router router;
  std::shared_ptr<ava::ApiServerSession> session;
  std::shared_ptr<ava::GuestEndpoint> endpoint;
  ExecLog log;

  explicit LaneStack(int parallelism, std::size_t batch_max_calls = 0) {
    auto channel = ava::MakeInProcChannel(256);
    session = std::make_shared<ava::ApiServerSession>(1);
    session->RegisterApi(kApi, MakeLaneHandler(&log));
    ava::VmPolicy policy;
    policy.max_parallelism = parallelism;
    if (!router.AttachVm(1, std::move(channel.host), session, policy).ok()) {
      std::abort();
    }
    router.Start();
    ava::GuestEndpoint::Options opts;
    opts.vm_id = 1;
    opts.batch_max_calls = batch_max_calls;
    endpoint =
        std::make_shared<ava::GuestEndpoint>(std::move(channel.guest), opts);
  }

  ~LaneStack() {
    endpoint.reset();
    router.Stop();
  }
};

ava::Bytes MakeRecordCall(std::uint64_t object, std::uint32_t seq,
                          std::uint32_t spin_ns) {
  ava::ByteWriter w = ava::BeginCall(kApi, kFnRecord);
  w.PutU64(object);
  w.PutU32(seq);
  w.PutU32(spin_ns);
  ava::Bytes message = std::move(w).TakeBytes();
  // What the generated stubs do via lane(param)/first-handle derivation:
  // key the call's execution lane by the object it touches.
  ava::PatchCallLaneKey(&message, object);
  return message;
}

void ExpectPerObjectOrder(ExecLog* log, std::uint64_t object,
                          std::uint32_t expect_count) {
  std::lock_guard<std::mutex> lock(log->mutex);
  const auto it = log->order.find(object);
  ASSERT_NE(it, log->order.end()) << "object " << object << " never executed";
  ASSERT_EQ(it->second.size(), expect_count) << "object " << object;
  for (std::uint32_t i = 0; i < expect_count; ++i) {
    ASSERT_EQ(it->second[i], i)
        << "object " << object << " executed out of order at position " << i;
  }
}

// The headline property, 1000 seeded iterations: concurrent application
// threads, each interleaving sync calls across its own objects in a
// seeded-shuffled order, always observe per-object FIFO at the server.
TEST(LanesTest, PerObjectOrderHolds1000SeededIterations) {
  constexpr int kIterations = 1000;
  constexpr int kThreads = 4;
  constexpr int kObjectsPerThread = 2;
  constexpr std::uint32_t kCallsPerObject = 3;
  LaneStack stack(/*parallelism=*/4);
  auto resolved = stack.router.ParallelismFor(1);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 4);

  for (int iter = 0; iter < kIterations; ++iter) {
    stack.log.Clear();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&stack, iter, t] {
        std::mt19937 rng(0x1a7eu + 9973u * static_cast<unsigned>(iter) +
                         131u * static_cast<unsigned>(t));
        // Issue plan: each of this thread's objects appears kCallsPerObject
        // times, in a shuffled interleaving; seq increases per object.
        std::vector<std::uint64_t> plan;
        for (int o = 0; o < kObjectsPerThread; ++o) {
          const std::uint64_t object =
              static_cast<std::uint64_t>(t * kObjectsPerThread + o + 1);
          for (std::uint32_t c = 0; c < kCallsPerObject; ++c) {
            plan.push_back(object);
          }
        }
        std::shuffle(plan.begin(), plan.end(), rng);
        std::unordered_map<std::uint64_t, std::uint32_t> next_seq;
        for (const std::uint64_t object : plan) {
          const std::uint32_t seq = next_seq[object]++;
          const std::uint32_t spin_ns = (rng() % 4 == 0) ? 20000 : 0;
          auto reply = stack.endpoint->CallSyncPrepared(
              MakeRecordCall(object, seq, spin_ns));
          ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      for (int o = 0; o < kObjectsPerThread; ++o) {
        ExpectPerObjectOrder(
            &stack.log,
            static_cast<std::uint64_t>(t * kObjectsPerThread + o + 1),
            kCallsPerObject);
      }
    }
  }
}

// Async + batched calls split onto their objects' lanes at the router and
// still execute per-object FIFO; a sync call on the same object acts as a
// lane barrier (it queues behind the object's async calls).
TEST(LanesTest, AsyncBatchedCallsKeepPerObjectOrder) {
  constexpr int kIterations = 200;
  constexpr std::uint64_t kObjects = 4;
  constexpr std::uint32_t kAsyncPerObject = 6;
  LaneStack stack(/*parallelism=*/4, /*batch_max_calls=*/4);

  for (int iter = 0; iter < kIterations; ++iter) {
    stack.log.Clear();
    std::mt19937 rng(0xbeefu + 7919u * static_cast<unsigned>(iter));
    std::vector<std::uint64_t> plan;
    for (std::uint64_t object = 1; object <= kObjects; ++object) {
      for (std::uint32_t c = 0; c < kAsyncPerObject; ++c) {
        plan.push_back(object);
      }
    }
    std::shuffle(plan.begin(), plan.end(), rng);
    std::unordered_map<std::uint64_t, std::uint32_t> next_seq;
    for (const std::uint64_t object : plan) {
      const std::uint32_t seq = next_seq[object]++;
      const std::uint32_t spin_ns = (rng() % 8 == 0) ? 10000 : 0;
      ASSERT_TRUE(stack.endpoint
                      ->CallAsyncPrepared(MakeRecordCall(object, seq, spin_ns))
                      .ok());
    }
    ASSERT_TRUE(stack.endpoint->Flush().ok());
    // Per-object sync barriers: each queues behind its object's async
    // calls, so its reply proves the whole lane drained.
    for (std::uint64_t object = 1; object <= kObjects; ++object) {
      const std::uint32_t seq = next_seq[object]++;
      auto reply =
          stack.endpoint->CallSyncPrepared(MakeRecordCall(object, seq, 0));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    }
    for (std::uint64_t object = 1; object <= kObjects; ++object) {
      ExpectPerObjectOrder(&stack.log, object, kAsyncPerObject + 1);
    }
  }
}

// Overlap proof: with parallelism 2, two calls on distinct objects meet
// inside the server simultaneously — a rendezvous a serial executor could
// never satisfy (each caller would wait alone and time out).
TEST(LanesTest, DistinctObjectsGenuinelyOverlap) {
  LaneStack stack(/*parallelism=*/2);
  {
    std::lock_guard<std::mutex> lock(stack.log.rv_mutex);
    stack.log.rv_target = 2;
  }
  std::atomic<int> met{0};
  std::vector<std::thread> threads;
  for (std::uint64_t object = 1; object <= 2; ++object) {
    threads.emplace_back([&stack, &met, object] {
      ava::ByteWriter w = ava::BeginCall(kApi, kFnRendezvous);
      ava::Bytes message = std::move(w).TakeBytes();
      ava::PatchCallLaneKey(&message, object);
      auto reply = stack.endpoint->CallSyncPrepared(std::move(message));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      ava::ByteReader r(*reply);
      if (r.GetU32() == 1) {
        met.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(met.load(), 2);
  EXPECT_GE(stack.log.max_concurrent.load(), 2);
}

// Parallelism 1 restores the classic strictly-serial executor: no two calls
// ever overlap, even with concurrent callers spinning inside the handler.
TEST(LanesTest, ParallelismOneNeverOverlaps) {
  LaneStack stack(/*parallelism=*/1);
  auto resolved = stack.router.ParallelismFor(1);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&stack, t] {
      for (std::uint32_t seq = 0; seq < 16; ++seq) {
        auto reply = stack.endpoint->CallSyncPrepared(MakeRecordCall(
            static_cast<std::uint64_t>(t + 1), seq, /*spin_ns=*/20000));
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(stack.log.max_concurrent.load(), 1);
  for (std::uint64_t object = 1; object <= 4; ++object) {
    ExpectPerObjectOrder(&stack.log, object, 16);
  }
}

// Parallelism resolution: explicit policy wins; AVA_VM_PARALLELISM covers
// the auto case; malformed values fall back to hardware/VM-count.
TEST(LanesTest, ResolveVmParallelism) {
  EXPECT_EQ(ava::ResolveVmParallelism(3, 1), 3);
  ::setenv("AVA_VM_PARALLELISM", "5", 1);
  EXPECT_EQ(ava::ResolveVmParallelism(0, 1), 5);
  EXPECT_EQ(ava::ResolveVmParallelism(2, 1), 2);  // explicit still wins
  ::setenv("AVA_VM_PARALLELISM", "nonsense", 1);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  EXPECT_EQ(ava::ResolveVmParallelism(0, 1), static_cast<int>(hw));
  EXPECT_EQ(ava::ResolveVmParallelism(0, 2 * hw), 1);  // floor at 1
  ::unsetenv("AVA_VM_PARALLELISM");
}

// The new observability cells exist and registered.
TEST(LanesTest, LaneMetricsRegistered) {
  LaneStack stack(/*parallelism=*/2);
  auto reply = stack.endpoint->CallSyncPrepared(MakeRecordCall(1, 0, 0));
  ASSERT_TRUE(reply.ok());
  const std::string dump = ava::obs::MetricRegistry::Default().Dump();
  EXPECT_NE(dump.find("router.lanes_active"), std::string::npos);
  EXPECT_NE(dump.find("router.lane_queue_depth"), std::string::npos);
  EXPECT_NE(dump.find("guest.concurrent_callers"), std::string::npos);
}

}  // namespace
