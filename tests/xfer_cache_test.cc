// Content-addressed transfer-cache tests: Hash64 and TransferCache at the
// unit level, then the cache lifecycle end-to-end through the real stack
// (CAvA `reusable;` stubs -> GuestEndpoint -> Router -> ApiServerSession):
// install -> hit -> evict -> transparent miss-retry-reinstall, the
// mutation-rehash regression (a guest flipping one byte between sends must
// never alias a stale digest), per-VM isolation, and the fault cells —
// forged digests, corrupt kBulkCached descriptors, and install digest
// mismatches all end in classified errors with the channel still usable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/hash64.h"
#include "src/proto/marshal.h"
#include "src/proto/wire.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/server/xfer_cache.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "vcl_gen.h"

namespace ava {
namespace {

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 131 + seed);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Hash64 unit behavior.

TEST(Hash64Test, DeterministicAndContentSensitive) {
  const auto a = Pattern(4096, 1);
  auto b = a;
  EXPECT_EQ(Hash64(a.data(), a.size()), Hash64(b.data(), b.size()));
  b[1234] ^= 1;  // one flipped bit must change the digest
  EXPECT_NE(Hash64(a.data(), a.size()), Hash64(b.data(), b.size()));
  EXPECT_NE(Hash64(a.data(), 4095), Hash64(a.data(), 4096));
}

TEST(Hash64Test, ScalarAndDispatchedAgreeOnAllTailShapes) {
  // Stripe boundary (32) and every tail length around it, plus sizes large
  // enough to take the SIMD path when present.
  const auto data = Pattern(3000, 7);
  for (std::size_t n = 0; n <= 70; ++n) {
    EXPECT_EQ(Hash64(data.data(), n), Hash64Scalar(data.data(), n)) << n;
  }
  for (std::size_t n : {511u, 512u, 513u, 1024u, 2999u}) {
    EXPECT_EQ(Hash64(data.data(), n), Hash64Scalar(data.data(), n)) << n;
  }
  const auto big = Pattern(1u << 20, 3);
  EXPECT_EQ(Hash64(big.data(), big.size()),
            Hash64Scalar(big.data(), big.size()));
}

TEST(Hash64Test, EmptyAndUnalignedInputs) {
  const auto data = Pattern(256, 9);
  EXPECT_EQ(Hash64(data.data(), 0), Hash64Scalar(data.data(), 0));
  // Misaligned base pointer: memcpy-based loads must not care.
  EXPECT_EQ(Hash64(data.data() + 1, 100), Hash64Scalar(data.data() + 1, 100));
}

// ---------------------------------------------------------------------------
// TransferCache unit behavior.

std::span<const std::uint8_t> AsSpan(const std::vector<std::uint8_t>& v) {
  return std::span<const std::uint8_t>(v.data(), v.size());
}

TEST(TransferCacheTest, InstallThenLookupHit) {
  TransferCache cache(1u << 20);
  const auto payload = Pattern(1000, 1);
  const std::uint64_t h = Hash64(payload.data(), payload.size());
  EXPECT_EQ(cache.Lookup(h, payload.size()), nullptr);  // never installed
  const auto installed = cache.Install(h, AsSpan(payload));
  EXPECT_TRUE(installed.installed);
  EXPECT_NE(installed.slot, 0u);
  auto entry = cache.Lookup(h, payload.size());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(*entry, payload);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().installs, 1u);
  EXPECT_EQ(cache.stats().bytes_saved, payload.size());
}

TEST(TransferCacheTest, LengthMismatchIsMiss) {
  // Same 64-bit digest, different length: treated as a miss, never served.
  TransferCache cache(1u << 20);
  const auto payload = Pattern(1000, 2);
  const std::uint64_t h = Hash64(payload.data(), payload.size());
  ASSERT_TRUE(cache.Install(h, AsSpan(payload)).installed);
  EXPECT_EQ(cache.Lookup(h, payload.size() + 1), nullptr);
}

TEST(TransferCacheTest, LruEvictionUnderByteBudget) {
  TransferCache cache(2500);
  const auto a = Pattern(1000, 1);
  const auto b = Pattern(1000, 2);
  const auto c = Pattern(1000, 3);
  const std::uint64_t ha = Hash64(a.data(), a.size());
  const std::uint64_t hb = Hash64(b.data(), b.size());
  const std::uint64_t hc = Hash64(c.data(), c.size());
  ASSERT_TRUE(cache.Install(ha, AsSpan(a)).installed);
  ASSERT_TRUE(cache.Install(hb, AsSpan(b)).installed);
  // Touch A so B is the least recently used, then overflow the budget.
  ASSERT_NE(cache.Lookup(ha, a.size()), nullptr);
  ASSERT_TRUE(cache.Install(hc, AsSpan(c)).installed);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Lookup(ha, a.size()), nullptr);
  EXPECT_EQ(cache.Lookup(hb, b.size()), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(hc, c.size()), nullptr);
  EXPECT_LE(cache.size_bytes(), 2500u);
}

TEST(TransferCacheTest, ReinstallRefreshesInPlace) {
  TransferCache cache(1u << 20);
  const auto payload = Pattern(500, 4);
  const std::uint64_t h = Hash64(payload.data(), payload.size());
  const auto first = cache.Install(h, AsSpan(payload));
  const auto second = cache.Install(h, AsSpan(payload));
  EXPECT_TRUE(second.installed);
  EXPECT_EQ(second.slot, first.slot);  // same identity, refreshed recency
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.size_bytes(), payload.size());
}

TEST(TransferCacheTest, RefreshOfLruTailLargerThanRemainingBudget) {
  // Regression: re-installing a resident digest with a larger payload while
  // it sat at the LRU tail under a tight budget used to let EvictToFit evict
  // the very entry being refreshed — a use-after-free on the freed map/list
  // nodes plus a double size subtraction that underflowed size_bytes_ and
  // poisoned all later accounting. Run under ASan (ctest default config).
  TransferCache cache(100);
  const auto a_old = Pattern(10, 1);
  const auto b = Pattern(80, 2);
  const auto a_new = Pattern(30, 3);  // same digest key, grown contents
  const std::uint64_t ha = Hash64(a_old.data(), a_old.size());
  const std::uint64_t hb = Hash64(b.data(), b.size());
  const auto first = cache.Install(ha, AsSpan(a_old));
  ASSERT_TRUE(first.installed);
  ASSERT_TRUE(cache.Install(hb, AsSpan(b)).installed);
  // A is now the LRU tail, and its refresh overflows the 10B of headroom.
  const auto refreshed = cache.Install(ha, AsSpan(a_new));
  EXPECT_TRUE(refreshed.installed);
  EXPECT_EQ(refreshed.slot, first.slot);  // refresh keeps the entry identity
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.size_bytes(), a_new.size());
  EXPECT_EQ(cache.Lookup(hb, b.size()), nullptr);  // B evicted to make room
  auto entry = cache.Lookup(ha, a_new.size());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(*entry, a_new);
}

TEST(TransferCacheTest, ZeroBudgetDisablesInstalls) {
  TransferCache cache(0);
  const auto payload = Pattern(100, 5);
  const std::uint64_t h = Hash64(payload.data(), payload.size());
  EXPECT_FALSE(cache.Install(h, AsSpan(payload)).installed);
  EXPECT_EQ(cache.Lookup(h, payload.size()), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(TransferCacheTest, OversizedPayloadNotInstalled) {
  TransferCache cache(100);
  const auto payload = Pattern(101, 6);
  EXPECT_FALSE(
      cache.Install(Hash64(payload.data(), payload.size()), AsSpan(payload))
          .installed);
}

TEST(TransferCacheTest, ReconfigureShrinksByEvictingLru) {
  TransferCache cache(4000);
  const auto a = Pattern(1000, 1);
  const auto b = Pattern(1000, 2);
  const std::uint64_t ha = Hash64(a.data(), a.size());
  const std::uint64_t hb = Hash64(b.data(), b.size());
  ASSERT_TRUE(cache.Install(ha, AsSpan(a)).installed);
  ASSERT_TRUE(cache.Install(hb, AsSpan(b)).installed);
  cache.Reconfigure(1500);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.Lookup(ha, a.size()), nullptr);  // older entry went first
  EXPECT_NE(cache.Lookup(hb, b.size()), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(TransferCacheTest, EntrySurvivesEvictionWhilePinned) {
  // The shared_ptr contract ServerContext::call_cache_refs_ relies on: an
  // entry serving an in-flight call stays valid after an install-triggered
  // eviction removes it from the cache.
  TransferCache cache(1200);
  const auto a = Pattern(1000, 1);
  const std::uint64_t ha = Hash64(a.data(), a.size());
  ASSERT_TRUE(cache.Install(ha, AsSpan(a)).installed);
  auto pinned = cache.Lookup(ha, a.size());
  ASSERT_NE(pinned, nullptr);
  const auto b = Pattern(1000, 2);
  ASSERT_TRUE(cache.Install(Hash64(b.data(), b.size()), AsSpan(b)).installed);
  EXPECT_EQ(cache.Lookup(ha, a.size()), nullptr);  // evicted from the cache
  EXPECT_EQ(*pinned, a);                           // but the bytes live on
}

// ---------------------------------------------------------------------------
// End-to-end over the real stack, via the `reusable;` vcl stub.

struct GuestVm {
  std::shared_ptr<ApiServerSession> session;
  std::shared_ptr<GuestEndpoint> endpoint;
  ava_gen_vcl::VclApi api;
};

// A raw echo API for descriptor-level tests: one bool (fail request), one
// bulk in-parameter; replies with the received size and content digest so a
// test can prove which bytes reached the server.
constexpr std::uint16_t kCacheEchoApi = 98;

ApiHandler MakeCacheEchoHandler() {
  return [](ServerContext* ctx, std::uint32_t, ByteReader* args, bool,
            ByteWriter* reply) -> Status {
    const bool fail = args->GetBool();
    ServerContext::BulkIn in;
    AVA_RETURN_IF_ERROR(ctx->ReadBulkIn(args, &in));
    if (fail) {
      return InvalidArgument("echo handler failure requested");
    }
    reply->PutU64(in.size);
    reply->PutU64(in.present ? Hash64(in.data, in.size) : 0);
    return OkStatus();
  };
}

class CacheStack {
 public:
  CacheStack() {
    vcl::ResetDefaultSilo({});
    router_ = std::make_unique<Router>();
    router_->Start();
  }
  ~CacheStack() {
    vms_.clear();
    router_->Stop();
  }

  GuestVm& AddVm(VmId vm_id, ChannelPair pair,
                 GuestEndpoint::Options opts = {},
                 const VmPolicy& policy = {}) {
    opts.vm_id = vm_id;
    if (opts.call_deadline_ms < 0) {
      opts.call_deadline_ms = 20000;  // bound any wedge; never expected
    }
    auto vm = std::make_unique<GuestVm>();
    vm->session = std::make_shared<ApiServerSession>(vm_id);
    vm->session->RegisterApi(ava_gen_vcl::kApiId,
                             ava_gen_vcl::MakeVclApiHandler());
    vm->session->RegisterApi(kCacheEchoApi, MakeCacheEchoHandler());
    EXPECT_TRUE(
        router_->AttachVm(vm_id, std::move(pair.host), vm->session, policy)
            .ok());
    vm->endpoint =
        std::make_shared<GuestEndpoint>(std::move(pair.guest), opts);
    vm->api = ava_gen_vcl::MakeVclGuestApi(vm->endpoint);
    vms_.push_back(std::move(vm));
    return *vms_.back();
  }

  Router& router() { return *router_; }

 private:
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<GuestVm>> vms_;
};

ChannelPair MustShm() {
  auto c = MakeShmRingChannel(1u << 16);
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

GuestEndpoint::Options CacheOpts(std::int64_t min_bytes = 4096) {
  GuestEndpoint::Options opts;
  opts.arena_threshold_bytes = 4096;
  opts.xfer_cache_min_bytes = min_bytes;
  return opts;
}

struct VclHandles {
  vcl_command_queue queue = nullptr;
  vcl_mem mem = nullptr;
  vcl_context ctx = nullptr;
};

VclHandles SetupBuffer(GuestVm& vm, std::size_t bytes) {
  auto& api = vm.api;
  VclHandles h;
  vcl_platform_id platform = nullptr;
  EXPECT_EQ(api.vclGetPlatformIDs(1, &platform, nullptr), VCL_SUCCESS);
  vcl_device_id device = nullptr;
  EXPECT_EQ(
      api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device, nullptr),
      VCL_SUCCESS);
  vcl_int err = VCL_SUCCESS;
  h.ctx = vm.api.vclCreateContext(&device, 1, &err);
  EXPECT_EQ(err, VCL_SUCCESS);
  h.queue = api.vclCreateCommandQueue(h.ctx, device, 0, &err);
  EXPECT_EQ(err, VCL_SUCCESS);
  h.mem = api.vclCreateBuffer(h.ctx, VCL_MEM_READ_WRITE, bytes, nullptr, &err);
  EXPECT_EQ(err, VCL_SUCCESS);
  return h;
}

void Teardown(GuestVm& vm, VclHandles& h) {
  vm.api.vclReleaseMemObject(h.mem);
  vm.api.vclReleaseCommandQueue(h.queue);
  vm.api.vclReleaseContext(h.ctx);
}

std::vector<std::uint8_t> ReadBack(GuestVm& vm, VclHandles& h,
                                   std::size_t bytes) {
  std::vector<std::uint8_t> back(bytes, 0);
  EXPECT_EQ(vm.api.vclEnqueueReadBuffer(h.queue, h.mem, VCL_TRUE, 0, bytes,
                                        back.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  return back;
}

TEST(CacheStackTest, RepeatedIdenticalSendGraduatesToDescriptor) {
  CacheStack stack;
  GuestVm& vm = stack.AddVm(1, MustShm(), CacheOpts());
  constexpr std::size_t kBytes = 64u << 10;
  VclHandles h = SetupBuffer(vm, kBytes);
  const auto payload = Pattern(kBytes, 1);

  // First sighting: the payload travels plain (install gating keeps cold
  // streams cheap) — nothing installed anywhere yet.
  ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0, kBytes,
                                         payload.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(vm.endpoint->xfer_installs(), 0u);
  EXPECT_EQ(vm.endpoint->xfer_resident_count(), 0u);
  EXPECT_EQ(vm.session->context().xfer_cache().entries(), 0u);

  // Second sighting: the send carries an install request; the ack on the
  // reply makes the digest resident on both sides.
  ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0, kBytes,
                                         payload.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(vm.endpoint->xfer_installs(), 1u);
  EXPECT_EQ(vm.endpoint->xfer_hits(), 0u);
  EXPECT_EQ(vm.endpoint->xfer_resident_count(), 1u);
  EXPECT_EQ(vm.session->context().xfer_cache().entries(), 1u);

  // Third sighting: a 24-byte descriptor instead of the bytes.
  ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0, kBytes,
                                         payload.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(vm.endpoint->xfer_installs(), 1u);
  EXPECT_EQ(vm.endpoint->xfer_hits(), 1u);
  EXPECT_EQ(vm.session->context().xfer_cache().stats().hits, 1u);

  EXPECT_EQ(ReadBack(vm, h, kBytes), payload);
  Teardown(vm, h);
}

// Satellite regression: a guest that mutates the buffer between calls must
// never alias a stale digest — PutIn re-hashes at every send, so flipping
// one byte turns the would-be hit into a fresh install and the NEW contents
// arrive at the server.
TEST(CacheStackTest, MutatedBufferIsRehashedNeverAliased) {
  CacheStack stack;
  GuestVm& vm = stack.AddVm(1, MustShm(), CacheOpts());
  constexpr std::size_t kBytes = 64u << 10;
  VclHandles h = SetupBuffer(vm, kBytes);
  auto payload = Pattern(kBytes, 2);

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0,
                                           kBytes, payload.data(), 0, nullptr,
                                           nullptr),
              VCL_SUCCESS);
  }
  ASSERT_EQ(vm.endpoint->xfer_hits(), 1u);  // the cache path is active

  // Mutate a byte OUTSIDE the 4 KiB prefix probe: the sighting filter
  // still matches, so the full-payload re-hash is what must notice the
  // change — the hardest aliasing shape.
  payload[12345] ^= 0xFF;
  ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0, kBytes,
                                         payload.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  // The re-hash produced a fresh digest: an install of the NEW bytes, never
  // a stale hit against the old entry.
  EXPECT_EQ(vm.endpoint->xfer_hits(), 1u);
  EXPECT_EQ(vm.endpoint->xfer_installs(), 2u);
  EXPECT_EQ(ReadBack(vm, h, kBytes), payload);
  // Mutating INSIDE the prefix makes the payload brand-new to the filter:
  // it travels plain, and still lands byte-exact.
  payload[100] ^= 0xFF;
  ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0, kBytes,
                                         payload.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(vm.endpoint->xfer_installs(), 2u);
  EXPECT_EQ(ReadBack(vm, h, kBytes), payload);
  Teardown(vm, h);
}

// Lifecycle: install -> hit -> server-side eviction -> the next descriptor
// send misses, and the endpoint transparently re-sends inline exactly once
// (re-installing the digest) — the caller only ever sees VCL_SUCCESS.
TEST(CacheStackTest, EvictionTriggersTransparentMissRetryAndReinstall) {
  CacheStack stack;
  GuestVm& vm = stack.AddVm(1, MustShm(), CacheOpts());
  constexpr std::size_t kBytes = 64u << 10;
  VclHandles h = SetupBuffer(vm, kBytes);
  const auto payload = Pattern(kBytes, 3);

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0,
                                           kBytes, payload.data(), 0, nullptr,
                                           nullptr),
              VCL_SUCCESS);
  }
  ASSERT_EQ(vm.endpoint->xfer_hits(), 1u);

  // Model an eviction/restart the guest has not heard about.
  vm.session->context().xfer_cache().Clear();

  const std::uint64_t saved_before_miss = vm.endpoint->xfer_bytes_saved();
  ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0, kBytes,
                                         payload.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(vm.endpoint->xfer_miss_retries(), 1u);
  // The retried send's payload traveled inline after all: it settles as
  // neither a hit nor saved bytes, matching what was actually on the wire.
  EXPECT_EQ(vm.endpoint->xfer_hits(), 1u);
  EXPECT_EQ(vm.endpoint->xfer_bytes_saved(), saved_before_miss);
  EXPECT_EQ(ReadBack(vm, h, kBytes), payload);
  // The retry re-installed the digest: the next send is a clean hit again.
  EXPECT_EQ(vm.session->context().xfer_cache().entries(), 1u);
  ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0, kBytes,
                                         payload.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(vm.endpoint->xfer_hits(), 2u);
  EXPECT_EQ(vm.endpoint->xfer_miss_retries(), 1u);
  Teardown(vm, h);
}

TEST(CacheStackTest, LruEvictionThroughTheStack) {
  CacheStack stack;
  GuestVm& vm = stack.AddVm(1, MustShm(), CacheOpts());
  constexpr std::size_t kBytes = 64u << 10;
  VclHandles h = SetupBuffer(vm, kBytes);
  // Budget for one payload: installing B evicts A.
  vm.session->context().xfer_cache().Reconfigure(kBytes + 1024);
  const auto a = Pattern(kBytes, 4);
  const auto b = Pattern(kBytes, 5);
  for (int i = 0; i < 2; ++i) {  // second sighting installs A
    ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0,
                                           kBytes, a.data(), 0, nullptr,
                                           nullptr),
              VCL_SUCCESS);
  }
  ASSERT_EQ(vm.session->context().xfer_cache().entries(), 1u);
  for (int i = 0; i < 2; ++i) {  // installing B overflows the budget
    ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0,
                                           kBytes, b.data(), 0, nullptr,
                                           nullptr),
              VCL_SUCCESS);
  }
  EXPECT_EQ(vm.session->context().xfer_cache().entries(), 1u);
  EXPECT_GE(vm.session->context().xfer_cache().stats().evictions, 1u);
  // Re-sending A (whose digest the guest still believes resident) misses,
  // retries inline, and lands the right bytes.
  ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0, kBytes,
                                         a.data(), 0, nullptr, nullptr),
            VCL_SUCCESS);
  EXPECT_EQ(vm.endpoint->xfer_miss_retries(), 1u);
  EXPECT_EQ(ReadBack(vm, h, kBytes), a);
  Teardown(vm, h);
}

TEST(CacheStackTest, PerVmCachesAreIsolated) {
  CacheStack stack;
  GuestVm& a = stack.AddVm(1, MustShm(), CacheOpts());
  GuestVm& b = stack.AddVm(2, MustShm(), CacheOpts());
  constexpr std::size_t kBytes = 64u << 10;
  VclHandles ha = SetupBuffer(a, kBytes);
  const auto payload = Pattern(kBytes, 6);
  for (int i = 0; i < 2; ++i) {  // second sighting installs into A's cache
    ASSERT_EQ(a.api.vclEnqueueWriteBuffer(ha.queue, ha.mem, VCL_TRUE, 0,
                                          kBytes, payload.data(), 0, nullptr,
                                          nullptr),
              VCL_SUCCESS);
  }
  ASSERT_EQ(a.session->context().xfer_cache().entries(), 1u);
  EXPECT_EQ(b.session->context().xfer_cache().entries(), 0u);

  // VM B naming VM A's digest raw on the wire gets a classified kCacheMiss:
  // A's installs are invisible to B's session.
  CachedDesc desc;
  desc.hash = Hash64(payload.data(), payload.size());
  desc.length = payload.size();
  ByteWriter w = BeginCall(kCacheEchoApi, 1);
  w.PutBool(false);
  w.PutU8(kBulkCached);
  PutCachedDesc(&w, desc);
  auto reply = b.endpoint->CallSyncPrepared(std::move(w).TakeBytes());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kCacheMiss);

  // VM B sending the same bytes through the stub installs into B's own
  // cache — never a cross-VM hit.
  VclHandles hb = SetupBuffer(b, kBytes);
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(b.api.vclEnqueueWriteBuffer(hb.queue, hb.mem, VCL_TRUE, 0,
                                          kBytes, payload.data(), 0, nullptr,
                                          nullptr),
              VCL_SUCCESS);
  }
  EXPECT_EQ(b.endpoint->xfer_hits(), 0u);
  EXPECT_EQ(b.session->context().xfer_cache().entries(), 1u);
  Teardown(a, ha);
  Teardown(b, hb);
}

// kCacheMiss under concurrency: four application threads, each with its own
// queue/buffer (own execution lane) and its own resident digest, all hit a
// wiped server cache at once. Every caller's miss must be spliced and
// re-sent transparently — replies and miss errors arriving out of issue
// order across the shared channel must never cross wires between callers.
TEST(CacheStackTest, ConcurrentCallersMissRetryTransparently) {
  CacheStack stack;
  VmPolicy policy;
  policy.max_parallelism = 4;
  GuestVm& vm = stack.AddVm(1, MustShm(), CacheOpts(), policy);
  constexpr int kThreads = 4;
  constexpr std::size_t kBytes = 16u << 10;
  std::vector<VclHandles> handles;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int t = 0; t < kThreads; ++t) {
    handles.push_back(SetupBuffer(vm, kBytes));
    payloads.push_back(Pattern(kBytes, static_cast<std::uint8_t>(40 + t)));
  }
  // Graduate every thread's payload to resident: sighting, install, hit.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(handles[t].queue, handles[t].mem,
                                             VCL_TRUE, 0, kBytes,
                                             payloads[t].data(), 0, nullptr,
                                             nullptr),
                VCL_SUCCESS);
    }
  }
  ASSERT_EQ(vm.endpoint->xfer_miss_retries(), 0u);
  // Wipe the server cache: every digest the guest believes resident is now
  // a guaranteed miss.
  vm.session->context().xfer_cache().Reconfigure(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&vm, &handles, &payloads, t] {
      EXPECT_EQ(vm.api.vclEnqueueWriteBuffer(handles[t].queue, handles[t].mem,
                                             VCL_TRUE, 0, kBytes,
                                             payloads[t].data(), 0, nullptr,
                                             nullptr),
                VCL_SUCCESS);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // One transparent retry per caller, and every buffer holds its own
  // caller's bytes (no cross-caller splice).
  EXPECT_EQ(vm.endpoint->xfer_miss_retries(),
            static_cast<std::uint64_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ReadBack(vm, handles[t], kBytes), payloads[t]) << "caller " << t;
    Teardown(vm, handles[t]);
  }
}

TEST(CacheStackTest, GuestPathDisabledByZeroMin) {
  CacheStack stack;
  GuestVm& vm = stack.AddVm(1, MustShm(), CacheOpts(/*min_bytes=*/0));
  constexpr std::size_t kBytes = 64u << 10;
  VclHandles h = SetupBuffer(vm, kBytes);
  const auto payload = Pattern(kBytes, 7);
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0,
                                           kBytes, payload.data(), 0, nullptr,
                                           nullptr),
              VCL_SUCCESS);
  }
  EXPECT_EQ(vm.endpoint->xfer_installs(), 0u);
  EXPECT_EQ(vm.endpoint->xfer_hits(), 0u);
  EXPECT_EQ(vm.session->context().xfer_cache().entries(), 0u);
  EXPECT_EQ(ReadBack(vm, h, kBytes), payload);
  Teardown(vm, h);
}

TEST(CacheStackTest, SmallPayloadsBypassTheCache) {
  CacheStack stack;
  GuestVm& vm = stack.AddVm(1, MustShm(), CacheOpts(/*min_bytes=*/4096));
  constexpr std::size_t kBytes = 512;  // below the cache minimum
  VclHandles h = SetupBuffer(vm, kBytes);
  const auto payload = Pattern(kBytes, 8);
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(h.queue, h.mem, VCL_TRUE, 0,
                                           kBytes, payload.data(), 0, nullptr,
                                           nullptr),
              VCL_SUCCESS);
  }
  EXPECT_EQ(vm.endpoint->xfer_installs(), 0u);
  EXPECT_EQ(vm.endpoint->xfer_hits(), 0u);
  Teardown(vm, h);
}

// Install acks ride the reply even when the call itself fails: the installs
// happened regardless of the handler's outcome, and forgetting them would
// only cost redundant re-installs.
TEST(CacheStackTest, InstallAcksDeliveredOnErrorReplies) {
  CacheStack stack;
  GuestVm& vm = stack.AddVm(1, MustShm(), CacheOpts());
  const auto payload = Pattern(32u << 10, 9);
  CachedDesc desc;
  desc.hash = Hash64(payload.data(), payload.size());
  desc.length = payload.size();

  ByteWriter w = BeginCall(kCacheEchoApi, 1);
  w.PutBool(true);  // handler fails after unmarshaling (and installing)
  w.PutU8(kBulkCachedInstall);
  PutCachedDesc(&w, desc);
  w.PutU8(kBulkInline);
  w.PutBlob(payload.data(), payload.size());
  auto reply = vm.endpoint->CallSyncPrepared(std::move(w).TakeBytes());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);

  // The digest is resident on both sides despite the error reply.
  EXPECT_EQ(vm.endpoint->xfer_resident_count(), 1u);
  EXPECT_EQ(vm.session->context().xfer_cache().entries(), 1u);
  ByteWriter w2 = BeginCall(kCacheEchoApi, 1);
  w2.PutBool(false);
  w2.PutU8(kBulkCached);
  PutCachedDesc(&w2, desc);
  auto hit = vm.endpoint->CallSyncPrepared(std::move(w2).TakeBytes());
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ByteReader r(*hit);
  EXPECT_EQ(r.GetU64(), payload.size());
  EXPECT_EQ(r.GetU64(), desc.hash);
}

// PR 2 reattach path: the server-side cache belongs to the session, so a
// guest reconnecting after a channel death finds its installs still
// resident — a raw descriptor lookup succeeds without re-sending bytes.
TEST(CacheStackTest, CacheSurvivesChannelDeathAndReattach) {
  vcl::ResetDefaultSilo({});
  constexpr VmId kVm = 5;
  Router router;
  router.Start();
  auto session = std::make_shared<ApiServerSession>(kVm);
  session->RegisterApi(kCacheEchoApi, MakeCacheEchoHandler());

  const auto payload = Pattern(32u << 10, 10);
  CachedDesc desc;
  desc.hash = Hash64(payload.data(), payload.size());
  desc.length = payload.size();

  auto channel = MakeInProcChannel();
  ASSERT_TRUE(router.AttachVm(kVm, std::move(channel.host), session).ok());
  {
    GuestEndpoint::Options opts;
    opts.vm_id = kVm;
    opts.call_deadline_ms = 20000;
    GuestEndpoint endpoint(std::move(channel.guest), opts);
    ByteWriter w = BeginCall(kCacheEchoApi, 1);
    w.PutBool(false);
    w.PutU8(kBulkCachedInstall);
    PutCachedDesc(&w, desc);
    w.PutU8(kBulkInline);
    w.PutBlob(payload.data(), payload.size());
    auto reply = endpoint.CallSyncPrepared(std::move(w).TakeBytes());
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }  // endpoint destroyed: transport closed, channel drains and dies

  for (int i = 0; i < 500 && router.sessions_reaped() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(router.sessions_reaped(), 1u);
  ASSERT_EQ(session->context().xfer_cache().entries(), 1u);

  // Reattach the SAME session on a fresh channel: the digest still serves.
  auto channel2 = MakeInProcChannel();
  ASSERT_TRUE(router.AttachVm(kVm, std::move(channel2.host), session).ok());
  GuestEndpoint::Options opts;
  opts.vm_id = kVm;
  opts.call_deadline_ms = 20000;
  GuestEndpoint endpoint2(std::move(channel2.guest), opts);
  ByteWriter w = BeginCall(kCacheEchoApi, 1);
  w.PutBool(false);
  w.PutU8(kBulkCached);
  PutCachedDesc(&w, desc);
  auto reply = endpoint2.CallSyncPrepared(std::move(w).TakeBytes());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ByteReader r(*reply);
  EXPECT_EQ(r.GetU64(), payload.size());
  router.Stop();
}

// ---------------------------------------------------------------------------
// Fault cells: forged digests, corrupt descriptors, digest mismatches. All
// classified errors or clean rejections; the channel stays usable.

class CacheFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vcl::ResetDefaultSilo({});
    router_.Start();
  }
  void TearDown() override {
    endpoint_.reset();
    router_.Stop();
  }

  void Attach(ChannelPair pair) {
    session_ = std::make_shared<ApiServerSession>(7);
    session_->RegisterApi(kCacheEchoApi, MakeCacheEchoHandler());
    ASSERT_TRUE(router_.AttachVm(7, std::move(pair.host), session_).ok());
    GuestEndpoint::Options opts;
    opts.vm_id = 7;
    opts.call_deadline_ms = 20000;
    opts.xfer_cache_min_bytes = 4096;
    endpoint_ = std::make_shared<GuestEndpoint>(std::move(pair.guest), opts);
  }

  Result<Bytes> RawCall(const std::function<void(ByteWriter*)>& payload_fn) {
    ByteWriter w = BeginCall(kCacheEchoApi, 1);
    w.PutBool(false);
    payload_fn(&w);
    return endpoint_->CallSyncPrepared(std::move(w).TakeBytes());
  }

  void ExpectChannelUsable() {
    auto ok_reply = RawCall([](ByteWriter* w) {
      w->PutU8(kBulkInline);
      const std::uint8_t blob[3] = {1, 2, 3};
      w->PutBlob(blob, sizeof(blob));
    });
    ASSERT_TRUE(ok_reply.ok()) << ok_reply.status().ToString();
    ByteReader r(*ok_reply);
    EXPECT_EQ(r.GetU64(), 3u);
  }

  Router router_;
  std::shared_ptr<ApiServerSession> session_;
  std::shared_ptr<GuestEndpoint> endpoint_;
};

TEST_F(CacheFaultTest, ForgedDigestYieldsClassifiedCacheMiss) {
  Attach(MustShm());
  CachedDesc forged;
  forged.hash = 0xDEADBEEFCAFEF00Dull;
  forged.length = 4096;
  forged.slot = 42;
  auto reply = RawCall([&forged](ByteWriter* w) {
    w->PutU8(kBulkCached);
    PutCachedDesc(w, forged);
  });
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kCacheMiss);
  ExpectChannelUsable();
  EXPECT_GE(session_->stats().dispatch_errors, 1u);
}

TEST_F(CacheFaultTest, TruncatedCachedDescriptorRejected) {
  Attach(MustShm());
  auto reply = RawCall([](ByteWriter* w) {
    w->PutU8(kBulkCached);
    w->PutU32(7);  // 4 bytes where a 24-byte CachedDesc belongs
  });
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().code() == StatusCode::kInvalidArgument ||
              reply.status().code() == StatusCode::kDataLoss)
      << reply.status().ToString();
  ExpectChannelUsable();
}

TEST_F(CacheFaultTest, InstallDigestMismatchRejectedAndNotInstalled) {
  Attach(MustShm());
  const auto payload = Pattern(8192, 11);
  CachedDesc lying;
  lying.hash = Hash64(payload.data(), payload.size()) ^ 1;  // wrong digest
  lying.length = payload.size();
  auto reply = RawCall([&](ByteWriter* w) {
    w->PutU8(kBulkCachedInstall);
    PutCachedDesc(w, lying);
    w->PutU8(kBulkInline);
    w->PutBlob(payload.data(), payload.size());
  });
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session_->context().xfer_cache().entries(), 0u);
  ExpectChannelUsable();
}

TEST_F(CacheFaultTest, InstallLengthMismatchRejected) {
  Attach(MustShm());
  const auto payload = Pattern(8192, 12);
  CachedDesc lying;
  lying.hash = Hash64(payload.data(), payload.size());
  lying.length = payload.size() - 1;  // right hash, wrong length
  auto reply = RawCall([&](ByteWriter* w) {
    w->PutU8(kBulkCachedInstall);
    PutCachedDesc(w, lying);
    w->PutU8(kBulkInline);
    w->PutBlob(payload.data(), payload.size());
  });
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  ExpectChannelUsable();
}

TEST_F(CacheFaultTest, NestedCacheMarkersRejected) {
  // A hostile frame nesting cache markers inside an install must bounce —
  // the inner payload may only be inline or arena.
  Attach(MustShm());
  const auto payload = Pattern(8192, 13);
  CachedDesc desc;
  desc.hash = Hash64(payload.data(), payload.size());
  desc.length = payload.size();
  auto reply = RawCall([&](ByteWriter* w) {
    w->PutU8(kBulkCachedInstall);
    PutCachedDesc(w, desc);
    w->PutU8(kBulkCached);  // nested cache marker: invalid
    PutCachedDesc(w, desc);
  });
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  ExpectChannelUsable();
}

TEST_F(CacheFaultTest, ZeroBudgetServerNeverInstallsButCallsSucceed) {
  Attach(MustShm());
  session_->context().xfer_cache().Reconfigure(0);
  const auto payload = Pattern(8192, 14);
  CachedDesc desc;
  desc.hash = Hash64(payload.data(), payload.size());
  desc.length = payload.size();
  auto reply = RawCall([&](ByteWriter* w) {
    w->PutU8(kBulkCachedInstall);
    PutCachedDesc(w, desc);
    w->PutU8(kBulkInline);
    w->PutBlob(payload.data(), payload.size());
  });
  // The payload traveled with the install request: the call succeeds even
  // though the disabled cache refused to keep the bytes.
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ByteReader r(*reply);
  EXPECT_EQ(r.GetU64(), payload.size());
  EXPECT_EQ(r.GetU64(), desc.hash);
  EXPECT_EQ(session_->context().xfer_cache().entries(), 0u);
  // No ack means the guest never marks the digest resident.
  EXPECT_EQ(endpoint_->xfer_resident_count(), 0u);
}

}  // namespace
}  // namespace ava
