// Router unit tests: verification, WFQ weights under backlog, device-time
// allotment, pause/resume, and stats plumbing, using a synthetic API so the
// router's behavior is isolated from the silo.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/router/rate_limiter.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/sqcq_ring.h"
#include "src/transport/transport.h"

namespace {

constexpr std::uint16_t kTestApi = 42;

// Handler that sleeps `busy_us` (simulating execution) and charges
// `cost_vns` to the scheduler.
ava::ApiHandler MakeSyntheticHandler(int busy_us, std::int64_t cost_vns) {
  return [busy_us, cost_vns](ava::ServerContext* ctx, std::uint32_t func_id,
                             ava::ByteReader* args, bool is_async,
                             ava::ByteWriter* reply) -> ava::Status {
    if (busy_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(busy_us));
    }
    ctx->ChargeCost(cost_vns);
    reply->PutU32(777);
    return ava::OkStatus();
  };
}

struct TestVm {
  std::shared_ptr<ava::ApiServerSession> session;
  std::shared_ptr<ava::GuestEndpoint> endpoint;
};

TestVm Attach(ava::Router* router, ava::VmId vm_id, ava::VmPolicy policy,
              int busy_us = 0, std::int64_t cost_vns = 1000) {
  auto pair = ava::MakeInProcChannel();
  TestVm vm;
  vm.session = std::make_shared<ava::ApiServerSession>(vm_id);
  vm.session->RegisterApi(kTestApi, MakeSyntheticHandler(busy_us, cost_vns));
  EXPECT_TRUE(
      router->AttachVm(vm_id, std::move(pair.host), vm.session, policy).ok());
  ava::GuestEndpoint::Options opts;
  opts.vm_id = vm_id;
  vm.endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
  return vm;
}

TEST(RouterTest, SyncCallRoundTrip) {
  ava::Router router;
  router.Start();
  TestVm vm = Attach(&router, 1, {});
  auto reply = vm.endpoint->CallSync(kTestApi, 0, {});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ava::ByteReader r(*reply);
  EXPECT_EQ(r.GetU32(), 777u);
  auto stats = router.StatsFor(1);
  EXPECT_EQ(stats->calls_forwarded, 1u);
  EXPECT_EQ(stats->cost_vns, 1000);
  vm.endpoint.reset();
  router.Stop();
}

TEST(RouterTest, UnknownApiRejectedCleanly) {
  ava::Router router;
  router.Start();
  TestVm vm = Attach(&router, 1, {});
  auto reply = vm.endpoint->CallSync(kTestApi + 1, 0, {});
  EXPECT_FALSE(reply.ok());  // dispatch error surfaces as non-OK status
  vm.endpoint.reset();
  router.Stop();
}

TEST(RouterTest, SpoofedVmIdRejected) {
  ava::Router router;
  router.Start();
  // Endpoint claims vm 9 on a channel attached as vm 1.
  auto pair = ava::MakeInProcChannel();
  auto session = std::make_shared<ava::ApiServerSession>(1);
  session->RegisterApi(kTestApi, MakeSyntheticHandler(0, 0));
  ASSERT_TRUE(router.AttachVm(1, std::move(pair.host), session).ok());
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 9;  // lie
  auto endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
  auto reply = endpoint->CallSync(kTestApi, 0, {});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ava::StatusCode::kPermissionDenied);
  auto stats = router.StatsFor(1);
  EXPECT_EQ(stats->calls_rejected, 1u);
  EXPECT_EQ(stats->calls_forwarded, 0u);
  endpoint.reset();
  router.Stop();
}

TEST(RouterTest, WfqWeightsShapeDispatchUnderBacklog) {
  ava::Router router;
  router.Start();
  ava::VmPolicy heavy, light;
  heavy.weight = 3.0;
  light.weight = 1.0;
  TestVm vm1 = Attach(&router, 1, heavy, /*busy_us=*/200, /*cost=*/100000);
  TestVm vm2 = Attach(&router, 2, light, /*busy_us=*/200, /*cost=*/100000);
  auto flood = [](ava::GuestEndpoint* ep, double seconds) {
    ava::Stopwatch watch;
    while (watch.ElapsedSeconds() < seconds) {
      (void)ep->CallAsync(kTestApi, 0, {});
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };
  std::thread t1([&] { flood(vm1.endpoint.get(), 1.0); });
  std::thread t2([&] { flood(vm2.endpoint.get(), 1.0); });
  t1.join();
  t2.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto s1 = router.StatsFor(1);
  auto s2 = router.StatsFor(2);
  const double ratio = static_cast<double>(s1->cost_vns) /
                       static_cast<double>(std::max<std::int64_t>(
                           s2->cost_vns, 1));
  EXPECT_GT(ratio, 2.0) << "weights 3:1 should shape dispatch";
  EXPECT_LT(ratio, 4.5);
  vm1.endpoint.reset();
  vm2.endpoint.reset();
  router.Stop();
}

TEST(RouterTest, DeviceTimeAllotmentThrottles) {
  ava::Router router;
  router.Start();
  ava::VmPolicy capped;
  capped.device_vns_per_sec = 200000;  // each call costs 100k vns
  TestVm vm = Attach(&router, 1, capped, /*busy_us=*/0, /*cost=*/100000);
  ava::Stopwatch watch;
  // 8 calls x 100k vns at 200k vns/s should take >= ~3 s unthrottled-free;
  // run 6 calls and require at least ~2 s.
  for (int i = 0; i < 6; ++i) {
    auto reply = vm.endpoint->CallSync(kTestApi, 0, {});
    ASSERT_TRUE(reply.ok());
  }
  EXPECT_GT(watch.ElapsedSeconds(), 1.8);
  vm.endpoint.reset();
  router.Stop();
}

TEST(RouterTest, PauseDrainsAndBlocksDispatch) {
  ava::Router router;
  router.Start();
  TestVm vm = Attach(&router, 1, {}, /*busy_us=*/1000);
  // Async call keeps the exec thread busy ~1ms; pause must drain it.
  ASSERT_TRUE(vm.endpoint->CallAsync(kTestApi, 0, {}).ok());
  // Wait until the call actually started or finished executing before
  // pausing (the router has no obligation to dispatch instantly).
  for (int i = 0; i < 1000 && vm.session->stats().calls_executed == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(router.PauseVm(1).ok());
  // Queue another call while paused: it must not run.
  ASSERT_TRUE(vm.endpoint->CallAsync(kTestApi, 0, {}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(vm.session->stats().calls_executed, 1u);
  ASSERT_TRUE(router.ResumeVm(1).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(vm.session->stats().calls_executed, 2u);
  vm.endpoint.reset();
  router.Stop();
}

TEST(RouterTest, PauseUnknownVmFails) {
  ava::Router router;
  router.Start();
  EXPECT_FALSE(router.PauseVm(77).ok());
  EXPECT_FALSE(router.ResumeVm(77).ok());
  EXPECT_FALSE(router.StatsFor(77).ok());
  router.Stop();
}

TEST(RouterTest, DuplicateAttachRejected) {
  ava::Router router;
  auto pair1 = ava::MakeInProcChannel();
  auto pair2 = ava::MakeInProcChannel();
  auto session = std::make_shared<ava::ApiServerSession>(1);
  EXPECT_TRUE(router.AttachVm(1, std::move(pair1.host), session).ok());
  EXPECT_FALSE(router.AttachVm(1, std::move(pair2.host), session).ok());
  EXPECT_FALSE(router.AttachVm(2, nullptr, session).ok());
}

TEST(RouterTest, ParkDuringFullReapStillDrainsLeftoverFrames) {
  // Regression: a rate-limit park coinciding with a reap that hit the
  // per-visit frame cap used to strand the channel forever. AckReadiness
  // had drained the doorbell eventfd and disarmed the ring, the capped
  // TryRecvBatch never re-armed it, and the park muted epoll — so after
  // RetryParked won its tokens, no doorbell and no epoll event existed to
  // trigger a drain of the leftover frames. RetryParked must force one.
  auto pair = ava::MakeSqcqChannel();
  ASSERT_TRUE(pair.ok());
  auto session = std::make_shared<ava::ApiServerSession>(1);
  session->RegisterApi(kTestApi, MakeSyntheticHandler(0, 1));
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  auto endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(pair->guest), opts);
  // Queue well more than one per-visit reap cap (64 frames) BEFORE the
  // router attaches, so its very first drain is guaranteed to hit the cap
  // AND exhaust the token burst (40 < 64) in the same pass — the exact
  // stall coincidence — with frames still left on the ring.
  constexpr std::uint64_t kCalls = 120;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    ASSERT_TRUE(endpoint->CallAsync(kTestApi, 0, {}).ok());
  }
  ava::Router router;
  router.Start();
  ava::VmPolicy policy;
  policy.calls_per_sec = 40.0;  // burst = 40 tokens
  ASSERT_TRUE(
      router.AttachVm(1, std::move(pair->host), session, policy).ok());
  // 120 calls at 40/s refill after the initial burst is ~2s; allow 15s.
  for (int i = 0; i < 1500 && session->stats().calls_executed < kCalls; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(session->stats().calls_executed, kCalls);
  endpoint.reset();
  router.Stop();
}

TEST(RouterTest, BatchCountsAsMultipleCalls) {
  ava::Router router;
  router.Start();
  TestVm vm = Attach(&router, 1, {});
  ava::GuestEndpoint::Options opts;
  // Re-create endpoint with batching on the same channel is complex; use a
  // fresh vm with batching instead.
  auto pair = ava::MakeInProcChannel();
  auto session = std::make_shared<ava::ApiServerSession>(2);
  session->RegisterApi(kTestApi, MakeSyntheticHandler(0, 10));
  ASSERT_TRUE(router.AttachVm(2, std::move(pair.host), session).ok());
  opts.vm_id = 2;
  opts.batch_max_calls = 8;
  auto endpoint =
      std::make_shared<ava::GuestEndpoint>(std::move(pair.guest), opts);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(endpoint->CallAsync(kTestApi, 0, {}).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(session->stats().calls_executed, 8u);
  auto stats = router.StatsFor(2);
  EXPECT_EQ(stats->messages_received, 1u);  // one batch message
  endpoint.reset();
  vm.endpoint.reset();
  router.Stop();
}

}  // namespace

namespace {

// Robustness: garbage and adversarial messages must never crash the router
// or the server — they are dropped or rejected, and the channel stays
// usable for well-formed traffic afterwards.
TEST(RouterRobustnessTest, GarbageMessagesAreSurvivable) {
  ava::Router router;
  router.Start();
  auto pair = ava::MakeInProcChannel();
  auto session = std::make_shared<ava::ApiServerSession>(1);
  session->RegisterApi(kTestApi, MakeSyntheticHandler(0, 1));
  ASSERT_TRUE(router.AttachVm(1, std::move(pair.host), session).ok());

  ava::Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    ava::Bytes junk(rng.NextBelow(200));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.NextU64());
    }
    ASSERT_TRUE(pair.guest->Send(junk).ok());
  }
  // Truncated-but-valid-kind messages.
  ASSERT_TRUE(pair.guest->Send({1}).ok());            // call kind, no header
  ASSERT_TRUE(pair.guest->Send({3, 0, 0}).ok());      // batch, bad count
  ASSERT_TRUE(pair.guest->Send({2, 0, 0, 0}).ok());   // reply to the router!?

  // The channel still works for a real call.
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  ava::GuestEndpoint endpoint(std::move(pair.guest), opts);
  auto reply = endpoint.CallSync(kTestApi, 0, {});
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  router.Stop();
}

// Malformed *arguments* inside a well-formed call reach the generated
// handler's bounds-checked reader and come back as a clean dispatch error.
TEST(RouterRobustnessTest, TruncatedArgumentsRejectedCleanly) {
  ava::Router router;
  router.Start();
  auto pair = ava::MakeInProcChannel();
  auto session = std::make_shared<ava::ApiServerSession>(1);
  // Handler that reads more than the payload holds.
  session->RegisterApi(
      kTestApi, [](ava::ServerContext*, std::uint32_t, ava::ByteReader* args,
                   bool, ava::ByteWriter*) -> ava::Status {
        args->GetU64();
        args->GetU64();
        if (args->failed()) {
          return ava::DataLoss("malformed arguments");
        }
        return ava::OkStatus();
      });
  ASSERT_TRUE(router.AttachVm(1, std::move(pair.host), session).ok());
  ava::GuestEndpoint::Options opts;
  opts.vm_id = 1;
  ava::GuestEndpoint endpoint(std::move(pair.guest), opts);
  auto reply = endpoint.CallSync(kTestApi, 0, ava::Bytes{1, 2, 3});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ava::StatusCode::kDataLoss);
  router.Stop();
}

// ---------------------------------------------------------------------------
// TokenBucket thread safety. The router reconfigures buckets on hot attach
// while its RX threads are drawing from them, so Configure must be safe
// under concurrent Acquire/TryAcquire — including disabling (rate 0), which
// must release a blocked waiter instead of stranding it.

TEST(TokenBucketTest, ConfigureToZeroReleasesBlockedAcquire) {
  ava::TokenBucket bucket(/*rate_per_sec=*/1.0, /*burst=*/1.0);
  bucket.Acquire(1.0);  // drain the initial burst
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    bucket.Acquire(50.0);  // ~50 s at rate 1 — must not actually wait
    released = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  bucket.Configure(0.0);  // disable mid-wait
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(TokenBucketTest, OversizedRequestAdmittedAtSaturationWithDebt) {
  ava::TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/10.0);
  // Larger than burst capacity: the plain variant can never admit it — the
  // bucket physically cannot hold 25 tokens.
  EXPECT_FALSE(bucket.TryAcquire(25.0));
  // The saturating variant admits it once the bucket is full (it starts
  // full), going into debt instead of starving forever.
  EXPECT_TRUE(bucket.TryAcquireSaturating(25.0));
  // The debt throttles everything after it until refills pay it off.
  EXPECT_FALSE(bucket.TryAcquire(1.0));
  EXPECT_FALSE(bucket.TryAcquireSaturating(25.0));
}

TEST(TokenBucketTest, ReconfigureUnderConcurrentAcquireIsSafe) {
  ava::TokenBucket bucket(/*rate_per_sec=*/1e6, /*burst=*/1e6);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> acquisitions{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        bucket.Acquire(1.0);
        bucket.TryAcquire(2.0);
        (void)bucket.enabled();
        acquisitions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Hammer Configure with alternating rates, including transient disables,
  // while the workers draw. Pre-fix this raced on rate_/tokens_ (torn
  // doubles, lost refills); now every transition must stay coherent and the
  // workers must never wedge. Keep churning until every worker has made
  // real progress under reconfiguration (so the overlap actually happened).
  for (int i = 0; acquisitions.load(std::memory_order_relaxed) < 1000 ||
                  i < 2000;
       ++i) {
    bucket.Configure(i % 3 == 0 ? 0.0 : 1e6, 1e6);
  }
  bucket.Configure(0.0);  // leave disabled so blocked workers drain out
  stop = true;
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_GT(acquisitions.load(), 0u);
}

}  // namespace
