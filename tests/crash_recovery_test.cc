// End-to-end crash recovery: a real child process stands in for the API
// server's silo work. It is SIGKILLed mid-call, and the stack must (a) give
// the guest a classified Unavailable well within its deadline, (b) let the
// router reap the dead session, and (c) serve a fresh session for the same
// VM id afterwards. This is the paper's failure story in miniature: the
// interposition layer turns a dead backend into an API-level error instead
// of a wedged guest.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/vclock.h"
#include "src/migrate/live.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/server/swap_manager.h"
#include "src/transport/sqcq_ring.h"
#include "src/transport/transport.h"

namespace ava {
namespace {

constexpr std::uint16_t kTestApi = 42;
constexpr std::uint32_t kOpEcho = 1;
constexpr std::uint32_t kOpHang = 0xDD;  // child swallows the request

// Child side of the backhaul: a minimal silo worker. Echoes requests, or
// goes silent on kOpHang (simulating work in flight when the kill lands).
[[noreturn]] void ChildServerLoop(Transport* backhaul) {
  while (true) {
    auto request = backhaul->Recv();
    if (!request.ok()) {
      _exit(0);
    }
    if (!request->empty() && (*request)[0] == 0xDD) {
      ::pause();  // never replies; parent SIGKILLs us here
    }
    if (!backhaul->Send(*request).ok()) {
      _exit(0);
    }
  }
}

// Parent-side handler: forwards each call over the backhaul to the child
// process and waits (bounded) for its answer. A dead or silent child
// classifies as Unavailable — the session itself keeps functioning.
ApiHandler MakeProxyHandler(Transport* backhaul) {
  return [backhaul](ServerContext*, std::uint32_t, ByteReader* args, bool,
                    ByteWriter* reply) -> Status {
    const std::uint32_t op = args->GetU32();
    Bytes request = {static_cast<std::uint8_t>(op)};
    AVA_RETURN_IF_ERROR(backhaul->Send(request));
    auto echo = backhaul->RecvTimeout(500LL * 1000000);  // 500 ms
    if (!echo.ok()) {
      return Unavailable("api server process unreachable: " +
                         echo.status().ToString());
    }
    reply->PutU32(1);
    return OkStatus();
  };
}

ApiHandler MakeLocalEchoHandler() {
  return [](ServerContext*, std::uint32_t, ByteReader* args, bool,
            ByteWriter* reply) -> Status {
    reply->PutU32(args->GetU32());
    return OkStatus();
  };
}

Result<Bytes> CallOp(GuestEndpoint* endpoint, std::uint32_t op) {
  ByteWriter args;
  args.PutU32(op);
  return endpoint->CallSync(kTestApi, 0, std::move(args).TakeBytes());
}

TEST(CrashRecoveryTest, ServerDeathClassifiesReapsAndRecovers) {
  // The backhaul must exist before the fork; nothing else may (no threads
  // cross fork()).
  auto backhaul = MakeSocketPairChannel();
  ASSERT_TRUE(backhaul.ok());
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ChildServerLoop(backhaul->guest.get());  // never returns
  }

  constexpr VmId kVm = 7;
  Router router;
  router.Start();
  auto session = std::make_shared<ApiServerSession>(kVm);
  session->RegisterApi(kTestApi, MakeProxyHandler(backhaul->host.get()));
  auto channel = MakeInProcChannel();
  ASSERT_TRUE(
      router.AttachVm(kVm, std::move(channel.host), session).ok());
  GuestEndpoint::Options opts;
  opts.vm_id = kVm;
  opts.call_deadline_ms = 2000;
  opts.max_retries = 0;
  auto endpoint =
      std::make_unique<GuestEndpoint>(std::move(channel.guest), opts);

  // Warm call proves the full guest -> router -> session -> child path.
  auto warm = CallOp(endpoint.get(), kOpEcho);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // Kill the child mid-call: the request is in its hands when SIGKILL lands.
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_EQ(kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
  });
  const std::int64_t t0 = MonotonicNowNs();
  auto dead = CallOp(endpoint.get(), kOpHang);
  const std::int64_t elapsed_ms = (MonotonicNowNs() - t0) / 1000000;
  killer.join();
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable)
      << dead.status().ToString();
  // Classified well within the guest's own deadline: the handler's bounded
  // backhaul wait (500 ms) is what answered, not the guest giving up.
  EXPECT_LT(elapsed_ms, opts.call_deadline_ms);

  // The session survives its backend: a further call classifies again
  // rather than wedging the channel.
  auto again = CallOp(endpoint.get(), kOpEcho);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kUnavailable);

  // Guest goes away -> the router notices the drained channel and reaps it.
  endpoint.reset();
  std::size_t reaped = 0;
  for (int i = 0; i < 500 && reaped == 0; ++i) {
    reaped = router.ReapDeadVms();
    if (reaped == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(reaped, 1u);
  EXPECT_GE(router.sessions_reaped(), 1u);

  // Same VM id attaches fresh and completes a call: full recovery.
  auto session2 = std::make_shared<ApiServerSession>(kVm);
  session2->RegisterApi(kTestApi, MakeLocalEchoHandler());
  auto channel2 = MakeInProcChannel();
  ASSERT_TRUE(
      router.AttachVm(kVm, std::move(channel2.host), session2).ok());
  GuestEndpoint endpoint2(std::move(channel2.guest), opts);
  auto fresh = CallOp(&endpoint2, 1234);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ByteReader r(*fresh);
  EXPECT_EQ(r.GetU32(), 1234u);
  router.Stop();
}

// A dead channel is also replaced transparently when AttachVm() reuses the
// id without an explicit reap — the hot-reattach path.
TEST(CrashRecoveryTest, AttachVmReplacesDeadChannelInPlace) {
  constexpr VmId kVm = 3;
  Router router;
  router.Start();
  auto session = std::make_shared<ApiServerSession>(kVm);
  session->RegisterApi(kTestApi, MakeLocalEchoHandler());
  auto channel = MakeInProcChannel();
  ASSERT_TRUE(router.AttachVm(kVm, std::move(channel.host), session).ok());
  {
    GuestEndpoint::Options opts;
    opts.vm_id = kVm;
    GuestEndpoint endpoint(std::move(channel.guest), opts);
    ASSERT_TRUE(CallOp(&endpoint, 1).ok());
  }  // endpoint destroyed: transport closed, channel drains and dies

  // Wait for the router to mark the session dead (visible via the counter),
  // then re-attach the same id without calling ReapDeadVms() first.
  for (int i = 0; i < 500 && router.sessions_reaped() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(router.sessions_reaped(), 1u);

  auto session2 = std::make_shared<ApiServerSession>(kVm);
  session2->RegisterApi(kTestApi, MakeLocalEchoHandler());
  auto channel2 = MakeInProcChannel();
  ASSERT_TRUE(
      router.AttachVm(kVm, std::move(channel2.host), session2).ok());
  GuestEndpoint::Options opts;
  opts.vm_id = kVm;
  GuestEndpoint endpoint2(std::move(channel2.guest), opts);
  auto reply = CallOp(&endpoint2, 2);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  router.Stop();
}

// The SQ/CQ ring's crash window: a guest dies BETWEEN claiming a submission
// slot (claim.fetch_add) and publishing it (seq release-store). The claimed
// slot can never complete, so the router's consumer must park — not block,
// not fabricate an sqe — while every other VM keeps calling; once the dead
// guest's side is closed, the unpublished sqe is skipped, the drain
// classifies the channel Unavailable, and the session is reaped through the
// ordinary event-loop path. A fresh attach for the same VM id then works.
TEST(CrashRecoveryTest, SqcqGuestDeathBetweenClaimAndPublishSkipsAndReaps) {
  // Channel (and its raw view) must exist before the fork so the child
  // shares the mapping; the child touches ONLY the shared atomics — no
  // locks, no allocation — because router threads do not cross fork().
  SqcqRaw raw;
  auto channel_a = MakeSqcqChannel(SqcqConfig{}, &raw);
  ASSERT_TRUE(channel_a.ok());
  auto channel_b = MakeSqcqChannel();
  ASSERT_TRUE(channel_b.ok());

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // The dying guest: claim an sqe slot, never publish it, die mid-call.
    raw.g2h.hdr->claim.fetch_add(1, std::memory_order_relaxed);
    kill(getpid(), SIGKILL);
    _exit(99);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  constexpr VmId kVmA = 11;
  constexpr VmId kVmB = 12;
  Router router;
  router.Start();
  auto session_a = std::make_shared<ApiServerSession>(kVmA);
  session_a->RegisterApi(kTestApi, MakeLocalEchoHandler());
  ASSERT_TRUE(
      router.AttachVm(kVmA, std::move(channel_a->host), session_a).ok());
  auto session_b = std::make_shared<ApiServerSession>(kVmB);
  session_b->RegisterApi(kTestApi, MakeLocalEchoHandler());
  ASSERT_TRUE(
      router.AttachVm(kVmB, std::move(channel_b->host), session_b).ok());

  GuestEndpoint::Options opts;
  opts.vm_id = kVmB;
  GuestEndpoint endpoint_b(std::move(channel_b->guest), opts);

  // Other VMs are unaffected by A's wedged ring: B's calls complete while
  // the router's consumer is parked on A's unpublished slot.
  for (int i = 0; i < 20; ++i) {
    auto reply = CallOp(&endpoint_b, 100 + i);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }

  // A frame submitted BEHIND the dead guest's hole stays parked: FIFO is
  // preserved (the router may not reorder around an incomplete sqe), so the
  // caller's own deadline classifies it — the stack must not wedge.
  GuestEndpoint::Options opts_a;
  opts_a.vm_id = kVmA;
  opts_a.call_deadline_ms = 300;
  opts_a.max_retries = 0;
  auto endpoint_a =
      std::make_unique<GuestEndpoint>(std::move(channel_a->guest), opts_a);
  auto behind_hole = CallOp(endpoint_a.get(), 1);
  ASSERT_FALSE(behind_hole.ok());
  EXPECT_EQ(behind_hole.status().code(), StatusCode::kDeadlineExceeded)
      << behind_hole.status().ToString();

  // The guest side goes away entirely -> closed ring. The consumer now
  // skips the unpublished sqe (Unavailable instead of waiting forever) and
  // the event loop reaps the session.
  endpoint_a.reset();
  std::size_t reaped = 0;
  for (int i = 0; i < 500 && reaped == 0; ++i) {
    reaped = router.ReapDeadVms();
    if (reaped == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(reaped, 1u);

  // B never noticed; A re-attaches fresh over a new ring and completes.
  auto still_fine = CallOp(&endpoint_b, 7);
  ASSERT_TRUE(still_fine.ok()) << still_fine.status().ToString();
  auto channel_a2 = MakeSqcqChannel();
  ASSERT_TRUE(channel_a2.ok());
  auto session_a2 = std::make_shared<ApiServerSession>(kVmA);
  session_a2->RegisterApi(kTestApi, MakeLocalEchoHandler());
  ASSERT_TRUE(
      router.AttachVm(kVmA, std::move(channel_a2->host), session_a2).ok());
  opts_a.call_deadline_ms = 2000;
  GuestEndpoint endpoint_a2(std::move(channel_a2->guest), opts_a);
  auto recovered = CallOp(&endpoint_a2, 55);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  router.Stop();
}

// ---------------------------------------------------------------------------
// Live-migration crash cells: a real process dies mid-migration. The
// survivor must end in a classified state — the standby serves from its
// last committed pre-copy round, or the source keeps serving and can
// retry against a fresh target. Never a wedge, never silent data damage.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kMigBufTag = 21;
constexpr std::size_t kMigBufBytes = 8192;
constexpr int kMigBufCount = 4;

// Content-tracking fake device (same idiom as the live migration suite).
struct MigDevice {
  void* Alloc(const Bytes& content) {
    std::lock_guard<std::mutex> lock(m);
    void* p = reinterpret_cast<void*>(next++);
    mem[p] = content;
    return p;
  }

  std::mutex m;
  std::uintptr_t next = 0x1000;
  std::unordered_map<void*, Bytes> mem;
};

BufferHooks MigHooks(MigDevice* dev) {
  BufferHooks hooks;
  hooks.buffer_type_tag = kMigBufTag;
  hooks.read_back = [dev](ObjectRegistry*, WireHandle,
                          ObjectRegistry::Entry& entry, Bytes* out) -> Status {
    std::lock_guard<std::mutex> lock(dev->m);
    auto it = dev->mem.find(entry.real);
    if (it == dev->mem.end()) {
      return Internal("read_back of unknown fake buffer");
    }
    *out = it->second;
    return OkStatus();
  };
  hooks.free_buffer = [dev](ObjectRegistry*, ObjectRegistry::Entry& entry) {
    std::lock_guard<std::mutex> lock(dev->m);
    dev->mem.erase(entry.real);
  };
  hooks.realloc_buffer = [dev](ObjectRegistry*, WireHandle,
                               ObjectRegistry::Entry&,
                               const Bytes& contents) -> void* {
    return dev->Alloc(contents);
  };
  hooks.write_back = [dev](ObjectRegistry*, WireHandle,
                           ObjectRegistry::Entry& entry,
                           const Bytes& contents) -> Status {
    std::lock_guard<std::mutex> lock(dev->m);
    dev->mem[entry.real] = contents;
    return OkStatus();
  };
  return hooks;
}

// Deterministic buffer content both processes can compute independently.
Bytes MigPattern(std::size_t n, std::uint64_t seed) {
  Bytes out(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (auto& b : out) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return out;
}

std::vector<WireHandle> MigSeed(MigDevice* dev, ObjectRegistry* registry) {
  std::vector<WireHandle> ids;
  for (int i = 0; i < kMigBufCount; ++i) {
    void* p = dev->Alloc(MigPattern(kMigBufBytes, 7000 + i));
    WireHandle id = registry->Insert(kMigBufTag, p);
    registry->SetMeta(id, 0, kMigBufBytes);
    ids.push_back(id);
  }
  return ids;
}

// Every buffer the session holds, materialized and sorted by content (the
// killed peer's ids are not visible here, so compare as a content set).
std::vector<Bytes> MigContents(ApiServerSession* session, MigDevice* dev) {
  std::vector<Bytes> all;
  session->registry().ForEach(
      kMigBufTag, [&](WireHandle, ObjectRegistry::Entry& entry) {
        if (entry.swapped) {
          auto raw = MaterializeSwappedCopy(entry);
          all.push_back(raw.ok() ? *std::move(raw) : Bytes{});
          return;
        }
        std::lock_guard<std::mutex> lock(dev->m);
        auto it = dev->mem.find(entry.real);
        all.push_back(it == dev->mem.end() ? Bytes{} : it->second);
      });
  std::sort(all.begin(), all.end());
  return all;
}

// The SOURCE process is SIGKILLed inside the stop-and-copy window: the VM
// is frozen, one pre-copy round is committed on the standby, the final
// manifest never arrives. The standby must take over from the committed
// round — every buffer restored bit-exact to the round-1 state.
TEST(CrashRecoveryTest, SourceDeathMidStopAndCopyFailsOverToCommittedRound) {
  // Channel before the fork; the child builds its whole stack after it (a
  // fresh single-threaded process, so no locks cross the fork).
  auto wire = MakeSocketPairChannel();
  ASSERT_TRUE(wire.ok());
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // NOTE: do not reset wire->host here — the transport's Close() is a
    // socket-wide shutdown() that would also kill the parent's copy.
    MigDevice dev;
    auto session = std::make_shared<ApiServerSession>(5);
    MigSeed(&dev, &session->registry());
    LiveMigrateOptions options;
    options.chunk_bytes = 4096;
    options.copy_rate_bytes_per_sec = 1e9;
    // The kill lands in this window: frozen, committed, not yet final.
    options.stop_copy_delay_ms = 30000;
    LiveMigrationSource source(MigHooks(&dev), options);
    if (Status s = source.Bind(nullptr, session.get(), nullptr); !s.ok()) {
      std::fprintf(stderr, "child Bind: %s\n", s.ToString().c_str());
      _exit(2);
    }
    if (Status s = source.Connect(std::move(wire->guest)); !s.ok()) {
      std::fprintf(stderr, "child Connect: %s\n", s.ToString().c_str());
      _exit(2);
    }
    if (auto round = source.RunRound(); !round.ok()) {
      std::fprintf(stderr, "child RunRound: %s\n",
                   round.status().ToString().c_str());
      _exit(3);
    }
    (void)source.StopAndCopy();  // parent kills us inside the delay
    _exit(4);                    // survived the window: test misfired
  }

  MigDevice standby_dev;
  auto standby_session = std::make_shared<ApiServerSession>(5);
  LiveMigrateOptions standby_options;
  standby_options.chunk_bytes = 4096;
  LiveMigrationTarget standby(MigHooks(&standby_dev), standby_options);
  Status serve_status;
  std::thread serve([&] {
    serve_status = standby.Serve(std::move(wire->host),
                                 standby_session.get());
  });

  // Round 1 checkpointed -> the child is now parked in stop-and-copy.
  int early_status = 0;
  for (int i = 0; i < 1000 && standby.committed_rounds() < 1; ++i) {
    ASSERT_EQ(waitpid(child, &early_status, WNOHANG), 0)
        << "source child died before committing a round: signaled="
        << WIFSIGNALED(early_status) << " exit="
        << (WIFEXITED(early_status) ? WEXITSTATUS(early_status) : -1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(standby.committed_rounds(), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << WEXITSTATUS(status);
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  // Our inherited copy of the dead source's end kept the socket open;
  // dropping it now (socket-wide shutdown) delivers the EOF to Serve.
  wire->guest.reset();

  // The dead wire classifies the serve loop; the checkpoint survives it.
  serve.join();
  ASSERT_FALSE(serve_status.ok());
  ASSERT_GE(standby.committed_rounds(), 1);

  // Warm failover: the standby installs the last committed round.
  ASSERT_TRUE(standby.TakeOver().ok());
  EXPECT_EQ(standby.phase(), MigratePhase::kFailover);
  std::vector<Bytes> expected;
  for (int i = 0; i < kMigBufCount; ++i) {
    expected.push_back(MigPattern(kMigBufBytes, 7000 + i));
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(MigContents(standby_session.get(), &standby_dev), expected);
}

// The TARGET process is SIGKILLed mid-pre-copy. The source's next round
// classifies (Aborted, not a wedge), the source keeps serving its own
// registry, and a retry against a fresh target completes bit-exact.
TEST(CrashRecoveryTest, TargetDeathMidPreCopyClassifiesAndSourceRetries) {
  auto wire = MakeSocketPairChannel();
  ASSERT_TRUE(wire.ok());
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // (no wire->guest.reset(): Close() is a socket-wide shutdown that
    // would sever the parent's copy too)
    MigDevice dev;
    auto session = std::make_shared<ApiServerSession>(6);
    LiveMigrateOptions options;
    options.chunk_bytes = 4096;
    LiveMigrationTarget target(MigHooks(&dev), options);
    (void)target.Serve(std::move(wire->host), session.get());
    ::pause();  // hold the wire open until the SIGKILL lands
    _exit(2);
  }

  MigDevice dev;
  auto session = std::make_shared<ApiServerSession>(6);
  auto ids = MigSeed(&dev, &session->registry());
  LiveMigrateOptions options;
  options.chunk_bytes = 4096;
  options.copy_rate_bytes_per_sec = 1.0;  // never converges: rounds continue
  options.frame_timeout_ms = 2000;
  auto source = std::make_unique<LiveMigrationSource>(MigHooks(&dev),
                                                      options);
  ASSERT_TRUE(source->Bind(nullptr, session.get(), nullptr).ok());
  ASSERT_TRUE(source->Connect(std::move(wire->guest)).ok());
  ASSERT_TRUE(source->RunRound().ok());

  ASSERT_EQ(kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  // Drop our inherited copy of the dead target's end so the source's next
  // send sees the broken pipe instead of waiting out the frame timeout.
  wire->host.reset();

  // Dirty a buffer so the next round has work, then watch it classify.
  auto real = session->registry().Translate(kMigBufTag, ids[0]);
  ASSERT_TRUE(real.ok());
  {
    std::lock_guard<std::mutex> lock(dev.m);
    dev.mem[*real] = MigPattern(kMigBufBytes, 9999);
  }
  auto dead_round = source->RunRound();
  ASSERT_FALSE(dead_round.ok());
  EXPECT_EQ(dead_round.status().code(), StatusCode::kAborted)
      << dead_round.status().ToString();
  EXPECT_EQ(source->phase(), MigratePhase::kAborted);

  // The source was never the casualty: its registry still resolves, and a
  // fresh engine migrates the live state to a fresh standby bit-exact.
  ASSERT_TRUE(session->registry().Translate(kMigBufTag, ids[0]).ok());
  source.reset();  // releases the touch observer slot

  auto retry_wire = MakeInProcChannel();
  MigDevice standby_dev;
  auto standby_session = std::make_shared<ApiServerSession>(6);
  LiveMigrationTarget standby(MigHooks(&standby_dev), options);
  Status serve_status;
  std::thread serve([&] {
    serve_status = standby.Serve(std::move(retry_wire.host),
                                 standby_session.get());
  });
  LiveMigrationSource retry(MigHooks(&dev), options);
  ASSERT_TRUE(retry.Bind(nullptr, session.get(), nullptr).ok());
  ASSERT_TRUE(retry.Connect(std::move(retry_wire.guest)).ok());
  ASSERT_TRUE(retry.Run().ok());
  ASSERT_TRUE(retry.FinishCutover().ok());
  serve.join();
  ASSERT_TRUE(serve_status.ok()) << serve_status.ToString();
  EXPECT_EQ(MigContents(standby_session.get(), &standby_dev),
            MigContents(session.get(), &dev));
}

}  // namespace
}  // namespace ava
