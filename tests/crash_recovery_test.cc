// End-to-end crash recovery: a real child process stands in for the API
// server's silo work. It is SIGKILLed mid-call, and the stack must (a) give
// the guest a classified Unavailable well within its deadline, (b) let the
// router reap the dead session, and (c) serve a fresh session for the same
// VM id afterwards. This is the paper's failure story in miniature: the
// interposition layer turns a dead backend into an API-level error instead
// of a wedged guest.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "src/common/vclock.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/sqcq_ring.h"
#include "src/transport/transport.h"

namespace ava {
namespace {

constexpr std::uint16_t kTestApi = 42;
constexpr std::uint32_t kOpEcho = 1;
constexpr std::uint32_t kOpHang = 0xDD;  // child swallows the request

// Child side of the backhaul: a minimal silo worker. Echoes requests, or
// goes silent on kOpHang (simulating work in flight when the kill lands).
[[noreturn]] void ChildServerLoop(Transport* backhaul) {
  while (true) {
    auto request = backhaul->Recv();
    if (!request.ok()) {
      _exit(0);
    }
    if (!request->empty() && (*request)[0] == 0xDD) {
      ::pause();  // never replies; parent SIGKILLs us here
    }
    if (!backhaul->Send(*request).ok()) {
      _exit(0);
    }
  }
}

// Parent-side handler: forwards each call over the backhaul to the child
// process and waits (bounded) for its answer. A dead or silent child
// classifies as Unavailable — the session itself keeps functioning.
ApiHandler MakeProxyHandler(Transport* backhaul) {
  return [backhaul](ServerContext*, std::uint32_t, ByteReader* args, bool,
                    ByteWriter* reply) -> Status {
    const std::uint32_t op = args->GetU32();
    Bytes request = {static_cast<std::uint8_t>(op)};
    AVA_RETURN_IF_ERROR(backhaul->Send(request));
    auto echo = backhaul->RecvTimeout(500LL * 1000000);  // 500 ms
    if (!echo.ok()) {
      return Unavailable("api server process unreachable: " +
                         echo.status().ToString());
    }
    reply->PutU32(1);
    return OkStatus();
  };
}

ApiHandler MakeLocalEchoHandler() {
  return [](ServerContext*, std::uint32_t, ByteReader* args, bool,
            ByteWriter* reply) -> Status {
    reply->PutU32(args->GetU32());
    return OkStatus();
  };
}

Result<Bytes> CallOp(GuestEndpoint* endpoint, std::uint32_t op) {
  ByteWriter args;
  args.PutU32(op);
  return endpoint->CallSync(kTestApi, 0, std::move(args).TakeBytes());
}

TEST(CrashRecoveryTest, ServerDeathClassifiesReapsAndRecovers) {
  // The backhaul must exist before the fork; nothing else may (no threads
  // cross fork()).
  auto backhaul = MakeSocketPairChannel();
  ASSERT_TRUE(backhaul.ok());
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ChildServerLoop(backhaul->guest.get());  // never returns
  }

  constexpr VmId kVm = 7;
  Router router;
  router.Start();
  auto session = std::make_shared<ApiServerSession>(kVm);
  session->RegisterApi(kTestApi, MakeProxyHandler(backhaul->host.get()));
  auto channel = MakeInProcChannel();
  ASSERT_TRUE(
      router.AttachVm(kVm, std::move(channel.host), session).ok());
  GuestEndpoint::Options opts;
  opts.vm_id = kVm;
  opts.call_deadline_ms = 2000;
  opts.max_retries = 0;
  auto endpoint =
      std::make_unique<GuestEndpoint>(std::move(channel.guest), opts);

  // Warm call proves the full guest -> router -> session -> child path.
  auto warm = CallOp(endpoint.get(), kOpEcho);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // Kill the child mid-call: the request is in its hands when SIGKILL lands.
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_EQ(kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
  });
  const std::int64_t t0 = MonotonicNowNs();
  auto dead = CallOp(endpoint.get(), kOpHang);
  const std::int64_t elapsed_ms = (MonotonicNowNs() - t0) / 1000000;
  killer.join();
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable)
      << dead.status().ToString();
  // Classified well within the guest's own deadline: the handler's bounded
  // backhaul wait (500 ms) is what answered, not the guest giving up.
  EXPECT_LT(elapsed_ms, opts.call_deadline_ms);

  // The session survives its backend: a further call classifies again
  // rather than wedging the channel.
  auto again = CallOp(endpoint.get(), kOpEcho);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kUnavailable);

  // Guest goes away -> the router notices the drained channel and reaps it.
  endpoint.reset();
  std::size_t reaped = 0;
  for (int i = 0; i < 500 && reaped == 0; ++i) {
    reaped = router.ReapDeadVms();
    if (reaped == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(reaped, 1u);
  EXPECT_GE(router.sessions_reaped(), 1u);

  // Same VM id attaches fresh and completes a call: full recovery.
  auto session2 = std::make_shared<ApiServerSession>(kVm);
  session2->RegisterApi(kTestApi, MakeLocalEchoHandler());
  auto channel2 = MakeInProcChannel();
  ASSERT_TRUE(
      router.AttachVm(kVm, std::move(channel2.host), session2).ok());
  GuestEndpoint endpoint2(std::move(channel2.guest), opts);
  auto fresh = CallOp(&endpoint2, 1234);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ByteReader r(*fresh);
  EXPECT_EQ(r.GetU32(), 1234u);
  router.Stop();
}

// A dead channel is also replaced transparently when AttachVm() reuses the
// id without an explicit reap — the hot-reattach path.
TEST(CrashRecoveryTest, AttachVmReplacesDeadChannelInPlace) {
  constexpr VmId kVm = 3;
  Router router;
  router.Start();
  auto session = std::make_shared<ApiServerSession>(kVm);
  session->RegisterApi(kTestApi, MakeLocalEchoHandler());
  auto channel = MakeInProcChannel();
  ASSERT_TRUE(router.AttachVm(kVm, std::move(channel.host), session).ok());
  {
    GuestEndpoint::Options opts;
    opts.vm_id = kVm;
    GuestEndpoint endpoint(std::move(channel.guest), opts);
    ASSERT_TRUE(CallOp(&endpoint, 1).ok());
  }  // endpoint destroyed: transport closed, channel drains and dies

  // Wait for the router to mark the session dead (visible via the counter),
  // then re-attach the same id without calling ReapDeadVms() first.
  for (int i = 0; i < 500 && router.sessions_reaped() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(router.sessions_reaped(), 1u);

  auto session2 = std::make_shared<ApiServerSession>(kVm);
  session2->RegisterApi(kTestApi, MakeLocalEchoHandler());
  auto channel2 = MakeInProcChannel();
  ASSERT_TRUE(
      router.AttachVm(kVm, std::move(channel2.host), session2).ok());
  GuestEndpoint::Options opts;
  opts.vm_id = kVm;
  GuestEndpoint endpoint2(std::move(channel2.guest), opts);
  auto reply = CallOp(&endpoint2, 2);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  router.Stop();
}

// The SQ/CQ ring's crash window: a guest dies BETWEEN claiming a submission
// slot (claim.fetch_add) and publishing it (seq release-store). The claimed
// slot can never complete, so the router's consumer must park — not block,
// not fabricate an sqe — while every other VM keeps calling; once the dead
// guest's side is closed, the unpublished sqe is skipped, the drain
// classifies the channel Unavailable, and the session is reaped through the
// ordinary event-loop path. A fresh attach for the same VM id then works.
TEST(CrashRecoveryTest, SqcqGuestDeathBetweenClaimAndPublishSkipsAndReaps) {
  // Channel (and its raw view) must exist before the fork so the child
  // shares the mapping; the child touches ONLY the shared atomics — no
  // locks, no allocation — because router threads do not cross fork().
  SqcqRaw raw;
  auto channel_a = MakeSqcqChannel(SqcqConfig{}, &raw);
  ASSERT_TRUE(channel_a.ok());
  auto channel_b = MakeSqcqChannel();
  ASSERT_TRUE(channel_b.ok());

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // The dying guest: claim an sqe slot, never publish it, die mid-call.
    raw.g2h.hdr->claim.fetch_add(1, std::memory_order_relaxed);
    kill(getpid(), SIGKILL);
    _exit(99);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  constexpr VmId kVmA = 11;
  constexpr VmId kVmB = 12;
  Router router;
  router.Start();
  auto session_a = std::make_shared<ApiServerSession>(kVmA);
  session_a->RegisterApi(kTestApi, MakeLocalEchoHandler());
  ASSERT_TRUE(
      router.AttachVm(kVmA, std::move(channel_a->host), session_a).ok());
  auto session_b = std::make_shared<ApiServerSession>(kVmB);
  session_b->RegisterApi(kTestApi, MakeLocalEchoHandler());
  ASSERT_TRUE(
      router.AttachVm(kVmB, std::move(channel_b->host), session_b).ok());

  GuestEndpoint::Options opts;
  opts.vm_id = kVmB;
  GuestEndpoint endpoint_b(std::move(channel_b->guest), opts);

  // Other VMs are unaffected by A's wedged ring: B's calls complete while
  // the router's consumer is parked on A's unpublished slot.
  for (int i = 0; i < 20; ++i) {
    auto reply = CallOp(&endpoint_b, 100 + i);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }

  // A frame submitted BEHIND the dead guest's hole stays parked: FIFO is
  // preserved (the router may not reorder around an incomplete sqe), so the
  // caller's own deadline classifies it — the stack must not wedge.
  GuestEndpoint::Options opts_a;
  opts_a.vm_id = kVmA;
  opts_a.call_deadline_ms = 300;
  opts_a.max_retries = 0;
  auto endpoint_a =
      std::make_unique<GuestEndpoint>(std::move(channel_a->guest), opts_a);
  auto behind_hole = CallOp(endpoint_a.get(), 1);
  ASSERT_FALSE(behind_hole.ok());
  EXPECT_EQ(behind_hole.status().code(), StatusCode::kDeadlineExceeded)
      << behind_hole.status().ToString();

  // The guest side goes away entirely -> closed ring. The consumer now
  // skips the unpublished sqe (Unavailable instead of waiting forever) and
  // the event loop reaps the session.
  endpoint_a.reset();
  std::size_t reaped = 0;
  for (int i = 0; i < 500 && reaped == 0; ++i) {
    reaped = router.ReapDeadVms();
    if (reaped == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(reaped, 1u);

  // B never noticed; A re-attaches fresh over a new ring and completes.
  auto still_fine = CallOp(&endpoint_b, 7);
  ASSERT_TRUE(still_fine.ok()) << still_fine.status().ToString();
  auto channel_a2 = MakeSqcqChannel();
  ASSERT_TRUE(channel_a2.ok());
  auto session_a2 = std::make_shared<ApiServerSession>(kVmA);
  session_a2->RegisterApi(kTestApi, MakeLocalEchoHandler());
  ASSERT_TRUE(
      router.AttachVm(kVmA, std::move(channel_a2->host), session_a2).ok());
  opts_a.call_deadline_ms = 2000;
  GuestEndpoint endpoint_a2(std::move(channel_a2->guest), opts_a);
  auto recovered = CallOp(&endpoint_a2, 55);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  router.Stop();
}

}  // namespace
}  // namespace ava
