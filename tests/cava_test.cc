// Tests for CAvA: spec lexing/parsing, type-based inference, validation
// diagnostics, code generation structure, and the draft-from-header flow.
#include <gtest/gtest.h>

#include <string>

#include "src/cava/draft.h"
#include "src/cava/lint.h"
#include "src/cava/emit.h"
#include "src/cava/spec_parser.h"

namespace cava {
namespace {

constexpr const char* kMiniSpec = R"(
api toy 9;
include "toy.h";

type(toy_int) { scalar; success(TOY_OK); failure(TOY_FAIL); }
type(toy_ctx) { handle; }
type(toy_buf) { handle; swappable; }

toy_ctx toyCreate(toy_int flags, toy_int* errcode) {
  sync;
  record;
  parameter(errcode) { out; element; }
  return { allocates; }
}

toy_int toyWrite(toy_ctx ctx, toy_buf buf, size_t size, const void* data) {
  async;
  parameter(data) { in; bytes(size); }
  consumes(bandwidth, size);
}

toy_int toyDestroy(toy_ctx ctx) {
  async;
  record;
  parameter(ctx) { deallocates; }
}
)";

TEST(SpecParserTest, ParsesMiniSpec) {
  auto spec = ParseSpec(kMiniSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "toy");
  EXPECT_EQ(spec->api_id, 9);
  ASSERT_EQ(spec->functions.size(), 3u);
  EXPECT_EQ(spec->includes.size(), 1u);

  const FunctionSpec& create = spec->functions[0];
  EXPECT_EQ(create.name, "toyCreate");
  EXPECT_TRUE(create.is_sync);
  EXPECT_TRUE(create.record);
  EXPECT_EQ(create.return_alloc, AllocClass::kAllocates);
  ASSERT_EQ(create.params.size(), 2u);
  EXPECT_EQ(create.params[1].direction, ParamDirection::kOut);
  EXPECT_EQ(create.params[1].shape, ParamShape::kElement);

  const FunctionSpec& write = spec->functions[1];
  EXPECT_FALSE(write.is_sync);
  EXPECT_EQ(write.cost_bandwidth, "size");
  EXPECT_EQ(write.params[3].shape, ParamShape::kBytesBuffer);
  EXPECT_EQ(write.params[3].direction, ParamDirection::kIn);

  const FunctionSpec& destroy = spec->functions[2];
  EXPECT_EQ(destroy.params[0].alloc, AllocClass::kDeallocates);
}

TEST(SpecParserTest, TypeBasedInference) {
  auto spec = ParseSpec(R"(
api t 2;
type(h) { handle; }
int f(const float* input, float* output, const char* name, h obj) {
  sync;
  parameter(input) { buffer(4); }
  parameter(output) { buffer(4); }
}
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const FunctionSpec& fn = spec->functions[0];
  // const float* => in (inferred from constness).
  EXPECT_EQ(fn.params[0].direction, ParamDirection::kIn);
  // float* => out.
  EXPECT_EQ(fn.params[1].direction, ParamDirection::kOut);
  // const char* => string, in.
  EXPECT_EQ(fn.params[2].shape, ParamShape::kString);
  EXPECT_EQ(fn.params[2].direction, ParamDirection::kIn);
  // handle by value.
  EXPECT_EQ(fn.params[3].shape, ParamShape::kHandle);
}

TEST(SpecParserTest, ConditionalSyncCaptured) {
  auto spec = ParseSpec(R"(
api t 2;
type(e) { handle; complete_hook {{ return true; }} }
int f(int blocking, float* out, int n, e* ev) {
  if (blocking == 1 || ev != nullptr) sync; else async;
  parameter(out) { out; buffer(n); shadow_on(ev); }
  parameter(ev) { out; element; allocates; }
}
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->functions[0].sync_condition,
            "blocking == 1 || ev != nullptr");
  EXPECT_EQ(spec->functions[0].params[1].shadow_on, "ev");
}

TEST(SpecParserTest, Diagnostics) {
  // Missing api decl.
  EXPECT_FALSE(ParseSpec("int f(int x) { sync; }").ok());
  // Unknown type.
  EXPECT_FALSE(ParseSpec("api t 1; int f(mystery x) { sync; }").ok());
  // void* without bytes().
  EXPECT_FALSE(ParseSpec("api t 1; int f(const void* p) { sync; }").ok());
  // Unknown annotation.
  EXPECT_FALSE(ParseSpec("api t 1; int f(int x) { frobnicate; }").ok());
  // parameter() on undeclared name.
  EXPECT_FALSE(
      ParseSpec("api t 1; int f(int x) { parameter(y) { in; } }").ok());
  // shadow_on must target an out handle with complete_hook.
  EXPECT_FALSE(ParseSpec(R"(
api t 1;
type(e) { handle; }
int f(float* out, int n, e* ev) {
  sync;
  parameter(out) { out; buffer(n); shadow_on(ev); }
  parameter(ev) { out; element; }
}
)")
                   .ok());
  // buffer() without a count.
  EXPECT_FALSE(
      ParseSpec("api t 1; int f(const float* p) { parameter(p) { buffer(); } }")
          .ok());
  // Multi-level pointers unsupported.
  EXPECT_FALSE(ParseSpec("api t 1; int f(char** argv) { sync; }").ok());
}

TEST(SpecParserTest, VerbatimHooksRoundTrip) {
  auto spec = ParseSpec(R"(
api t 3;
type(ev) {
  handle;
  retain_hook {{ do_retain(h); }}
  release_hook {{ do_release(h); }}
  complete_hook {{ return is_done(h); }}
}
int f(ev e) { sync; }
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const TypeDecl* t = spec->FindType("ev");
  ASSERT_NE(t, nullptr);
  EXPECT_NE(t->retain_hook.find("do_retain(h);"), std::string::npos);
  EXPECT_NE(t->complete_hook.find("is_done"), std::string::npos);
}

TEST(EmitTest, GeneratesAllFourFiles) {
  auto spec = ParseSpec(kMiniSpec);
  ASSERT_TRUE(spec.ok());
  auto files = GenerateStack(*spec);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  ASSERT_EQ(files->size(), 4u);
  EXPECT_TRUE(files->count("toy_gen.h"));
  EXPECT_TRUE(files->count("toy_gen_guest.cc"));
  EXPECT_TRUE(files->count("toy_gen_server.cc"));
  EXPECT_TRUE(files->count("toy_gen_native.cc"));

  const std::string& header = files->at("toy_gen.h");
  EXPECT_NE(header.find("struct ToyApi"), std::string::npos);
  EXPECT_NE(header.find("kFid_toyCreate = 0"), std::string::npos);
  EXPECT_NE(header.find("kApiId = 9"), std::string::npos);
  EXPECT_NE(header.find("kSwappableTypeTag = kTag_toy_buf"),
            std::string::npos);

  const std::string& guest = files->at("toy_gen_guest.cc");
  // Async function returns the annotated success value immediately.
  EXPECT_NE(guest.find("CallAsync"), std::string::npos);
  EXPECT_NE(guest.find("TOY_OK"), std::string::npos);
  // Sync transport failures return the annotated failure value.
  EXPECT_NE(guest.find("TOY_FAIL"), std::string::npos);

  const std::string& server = files->at("toy_gen_server.cc");
  EXPECT_NE(server.find("RecordCurrentCall"), std::string::npos);
  EXPECT_NE(server.find("registry().Release"), std::string::npos);
  EXPECT_NE(server.find("ChargeCost"), std::string::npos);
  // Swappable handles translate through the swap-aware path.
  EXPECT_NE(server.find("TranslateSwappable"), std::string::npos);
}

TEST(EmitTest, EmptySpecRejected) {
  ApiSpec empty;
  empty.name = "x";
  EXPECT_FALSE(GenerateStack(empty).ok());
}

TEST(DraftTest, InfersFromHeaderDeclarations) {
  const char* header = R"(
typedef struct ctx_rec* ctx_t;
typedef unsigned int u32;
ctx_t create_context(int flags, int* errcode);
int write_data(ctx_t ctx, const float* data, int data_size);
int read_name(ctx_t ctx, char* name_out, int size);
int set_label(ctx_t ctx, const char* label);
)";
  auto draft = DraftSpecFromHeader(header, "demo", 5);
  ASSERT_TRUE(draft.ok()) << draft.status().ToString();
  const std::string& text = *draft;
  EXPECT_NE(text.find("api demo 5;"), std::string::npos);
  EXPECT_NE(text.find("type(ctx_t) { handle; }"), std::string::npos);
  EXPECT_NE(text.find("type(u32) { scalar; }"), std::string::npos);
  // const float* with sibling data_size => in buffer(data_size).
  EXPECT_NE(text.find("parameter(data) { in; buffer(data_size); }"),
            std::string::npos);
  // char* out with a generic size param.
  EXPECT_NE(text.find("parameter(name_out) { out;"), std::string::npos);
  // const char* => string.
  EXPECT_NE(text.find("parameter(label) { in; string; }"), std::string::npos);
  // Handle-returning function drafted as allocating.
  EXPECT_NE(text.find("return { allocates; }"), std::string::npos);
  // The draft itself must parse after minimal cleanup? It parses as-is.
  auto reparsed = ParseSpec(text);
  EXPECT_TRUE(reparsed.ok()) << reparsed.status().ToString();
}

TEST(DraftTest, RejectsMalformedHeader) {
  EXPECT_FALSE(DraftSpecFromHeader("int f(", "x", 1).ok());
  EXPECT_FALSE(DraftSpecFromHeader("typedef struct a b;", "x", 1).ok());
}

// The real vcl.ava must stay parseable with exactly 39 functions — the
// paper's "39 commonly used OpenCL functions".
TEST(SpecParserTest, VclSpecHas39Functions) {
  // The spec file is read from the source tree.
  FILE* f = std::fopen(AVA_SPECS_DIR "/vcl.ava", "rb");
  ASSERT_NE(f, nullptr);
  std::string source;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    source.append(buf, n);
  }
  std::fclose(f);
  auto spec = ParseSpec(source);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->functions.size(), 39u);
  EXPECT_EQ(spec->name, "vcl");
  // The headline Figure-4 function keeps its conditional-sync annotation.
  const FunctionSpec* read = nullptr;
  for (const auto& fn : spec->functions) {
    if (fn.name == "vclEnqueueReadBuffer") {
      read = &fn;
    }
  }
  ASSERT_NE(read, nullptr);
  EXPECT_FALSE(read->sync_condition.empty());
  EXPECT_EQ(read->FindParam("ptr")->shadow_on, "event");
}

TEST(LintTest, CleanSpecProducesNoWarnings) {
  auto spec = ParseSpec(kMiniSpec);
  ASSERT_TRUE(spec.ok());
  auto findings = LintSpec(*spec);
  for (const auto& finding : findings) {
    EXPECT_NE(finding.severity, LintFinding::Severity::kWarning)
        << finding.function << ": " << finding.message;
  }
}

TEST(LintTest, FlagsUnshadowedAsyncOutParam) {
  auto spec = ParseSpec(R"(
api t 1;
type(st) { scalar; success(0); }
st f(float* out, int n) {
  async;
  parameter(out) { out; buffer(n); }
}
)");
  ASSERT_TRUE(spec.ok());
  auto findings = LintSpec(*spec);
  bool found = false;
  for (const auto& finding : findings) {
    found = found || (finding.severity == LintFinding::Severity::kWarning &&
                      finding.message.find("shadow") != std::string::npos);
  }
  EXPECT_TRUE(found) << FormatFindings(findings);
}

TEST(LintTest, SyncConditionGuardSuppressesShadowWarning) {
  auto spec = ParseSpec(R"(
api t 1;
type(st) { scalar; success(0); }
st f(float* out, int n) {
  if (out != nullptr) sync; else async;
  parameter(out) { out; buffer(n); }
}
)");
  ASSERT_TRUE(spec.ok());
  for (const auto& finding : LintSpec(*spec)) {
    EXPECT_EQ(finding.message.find("shadow"), std::string::npos)
        << finding.message;
  }
}

TEST(LintTest, FlagsUnrecordedAllocator) {
  auto spec = ParseSpec(R"(
api t 1;
type(st) { scalar; success(0); }
type(h) { handle; }
h make(st flags) {
  sync;
  return { allocates; }
}
)");
  ASSERT_TRUE(spec.ok());
  auto findings = LintSpec(*spec);
  bool found = false;
  for (const auto& finding : findings) {
    found = found || finding.message.find("record") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(LintTest, TransientTypesAreExempt) {
  auto spec = ParseSpec(R"(
api t 1;
type(st) { scalar; success(0); }
type(ev) { handle; transient; complete_hook {{ return true; }} }
st wait_free(ev e) {
  async;
  parameter(e) { deallocates; }
}
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  for (const auto& finding : LintSpec(*spec)) {
    EXPECT_EQ(finding.message.find("lifetime"), std::string::npos)
        << finding.message;
  }
}

TEST(LintTest, FlagsSwappableAllocatorWithoutMeta) {
  auto spec = ParseSpec(R"(
api t 1;
type(st) { scalar; success(0); }
type(buf) { handle; swappable; }
buf alloc(st n) {
  sync;
  record;
  return { allocates; }
}
)");
  ASSERT_TRUE(spec.ok());
  auto findings = LintSpec(*spec);
  bool found = false;
  for (const auto& finding : findings) {
    found = found ||
            (finding.severity == LintFinding::Severity::kWarning &&
             finding.message.find("registry_meta") != std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(SpecParserTest, IdempotentAnnotationCaptured) {
  auto spec = ParseSpec(R"(
api t 1;
int f(int x) { sync; idempotent; }
int g(int x) { sync; }
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->functions.size(), 2u);
  EXPECT_TRUE(spec->functions[0].idempotent);
  EXPECT_FALSE(spec->functions[1].idempotent);
}

TEST(EmitTest, IdempotentCallsEmitRetriableStubs) {
  auto spec = ParseSpec(R"(
api t 1;
type(t_int) { scalar; success(0); failure(-1); }
t_int f(t_int x) { sync; idempotent; }
t_int g(t_int x) { sync; }
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto files = GenerateStack(*spec);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  const std::string& guest = files->at("t_gen_guest.cc");
  // The idempotent function's stub opts into transport-level retry; the
  // unannotated one must not.
  const std::size_t f_at = guest.find("stub_f");
  const std::size_t g_at = guest.find("stub_g");
  ASSERT_NE(f_at, std::string::npos);
  ASSERT_NE(g_at, std::string::npos);
  const std::string f_body = guest.substr(f_at, g_at - f_at);
  const std::string g_body = guest.substr(g_at);
  EXPECT_NE(f_body.find("/*retriable=*/true"), std::string::npos) << f_body;
  EXPECT_EQ(g_body.find("/*retriable=*/true"), std::string::npos) << g_body;
}

TEST(LintTest, IdempotentSubmissionCallWarns) {
  auto spec = ParseSpec(R"(
api t 1;
int fooSubmit(int x) { sync; idempotent; }
)");
  ASSERT_TRUE(spec.ok());
  bool warned = false;
  for (const auto& finding : LintSpec(*spec)) {
    warned = warned ||
             (finding.severity == LintFinding::Severity::kWarning &&
              finding.message.find("re-execute") != std::string::npos);
  }
  EXPECT_TRUE(warned);
}

TEST(LintTest, IdempotentOnAsyncOnlyFunctionAdvises) {
  auto spec = ParseSpec(R"(
api t 1;
int f(int x) { async; idempotent; }
)");
  ASSERT_TRUE(spec.ok());
  bool advised = false;
  for (const auto& finding : LintSpec(*spec)) {
    advised = advised ||
              (finding.severity == LintFinding::Severity::kAdvice &&
               finding.message.find("no effect") != std::string::npos);
  }
  EXPECT_TRUE(advised);
}

TEST(SpecParserTest, LaneAnnotationCaptured) {
  auto spec = ParseSpec(R"(
api t 1;
type(t_ctx) { handle; }
type(t_buf) { handle; }
int f(t_ctx ctx, t_buf buf) { sync; lane(buf); }
int g(t_ctx ctx) { sync; }
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->functions[0].lane_param, "buf");
  EXPECT_TRUE(spec->functions[1].lane_param.empty());
}

TEST(SpecParserTest, LaneRejectedOnInvalidPlacements) {
  // Unknown parameter name.
  auto unknown = ParseSpec(R"(
api t 1;
type(t_ctx) { handle; }
int f(t_ctx ctx) { sync; lane(nope); }
)");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().ToString().find("does not name"),
            std::string::npos);
  // Not a handle type: the lane key is the handle's wire id.
  auto scalar = ParseSpec(R"(
api t 1;
int f(int x) { sync; lane(x); }
)");
  ASSERT_FALSE(scalar.ok());
  EXPECT_NE(scalar.status().ToString().find("by-value handle"),
            std::string::npos);
  // Pointer-to-handle is guest memory, not a marshaled handle value.
  auto pointer = ParseSpec(R"(
api t 1;
type(t_ev) { handle; }
int f(t_ev* ev) { sync; parameter(ev) { out; element; allocates; } lane(ev); }
)");
  ASSERT_FALSE(pointer.ok());
  EXPECT_NE(pointer.status().ToString().find("by-value handle"),
            std::string::npos);
}

TEST(EmitTest, LaneKeyStampedInGuestStubs) {
  auto spec = ParseSpec(R"(
api t 1;
type(t_int) { scalar; success(0); failure(-1); }
type(t_ctx) { handle; }
type(t_buf) { handle; }
t_int annotated(t_ctx ctx, t_buf buf) { sync; lane(buf); }
t_int inferred(t_ctx ctx, t_buf buf) { sync; }
t_int handleless(t_int x) { sync; }
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto files = GenerateStack(*spec);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  const std::string& guest = files->at("t_gen_guest.cc");
  const std::size_t annotated_at = guest.find("stub_annotated");
  const std::size_t inferred_at = guest.find("stub_inferred");
  const std::size_t handleless_at = guest.find("stub_handleless");
  ASSERT_NE(annotated_at, std::string::npos);
  ASSERT_NE(inferred_at, std::string::npos);
  ASSERT_NE(handleless_at, std::string::npos);
  const std::string annotated_body =
      guest.substr(annotated_at, inferred_at - annotated_at);
  const std::string inferred_body =
      guest.substr(inferred_at, handleless_at - inferred_at);
  const std::string handleless_body = guest.substr(handleless_at);
  // lane(buf) overrides the first-handle default...
  EXPECT_NE(annotated_body.find(
                "ava::kCallLaneKeyOffset, ava::HandleToWire(buf)"),
            std::string::npos)
      << annotated_body;
  // ...which otherwise picks the first by-value handle parameter...
  EXPECT_NE(inferred_body.find(
                "ava::kCallLaneKeyOffset, ava::HandleToWire(ctx)"),
            std::string::npos)
      << inferred_body;
  // ...and a handle-free call stays on the shared default lane.
  EXPECT_EQ(handleless_body.find("kCallLaneKeyOffset"), std::string::npos)
      << handleless_body;
}

TEST(LintTest, AmbiguousLaneAdvisesAndAnnotationSilences) {
  auto ambiguous = ParseSpec(R"(
api t 1;
type(t_ctx) { handle; }
type(t_buf) { handle; }
int f(t_ctx ctx, t_buf buf) { sync; }
)");
  ASSERT_TRUE(ambiguous.ok());
  bool advised = false;
  for (const auto& finding : LintSpec(*ambiguous)) {
    advised = advised ||
              (finding.severity == LintFinding::Severity::kAdvice &&
               finding.message.find("lane(") != std::string::npos);
  }
  EXPECT_TRUE(advised);

  auto annotated = ParseSpec(R"(
api t 1;
type(t_ctx) { handle; }
type(t_buf) { handle; }
int f(t_ctx ctx, t_buf buf) { sync; lane(buf); }
)");
  ASSERT_TRUE(annotated.ok());
  for (const auto& finding : LintSpec(*annotated)) {
    EXPECT_EQ(finding.message.find("lane("), std::string::npos)
        << finding.message;
  }
}

TEST(SpecParserTest, ReusableAnnotationCaptured) {
  auto spec = ParseSpec(R"(
api t 1;
int f(size_t size, const void* data) {
  sync;
  parameter(data) { in; bytes(size); reusable; }
}
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const ParamSpec* data = spec->functions[0].FindParam("data");
  ASSERT_NE(data, nullptr);
  EXPECT_TRUE(data->reusable);
}

TEST(SpecParserTest, ReusableRejectedOnInvalidPlacements) {
  // Not an in-parameter: the cache deduplicates guest-supplied payloads.
  EXPECT_FALSE(ParseSpec(R"(
api t 1;
int f(float* out, int n) {
  sync;
  parameter(out) { out; buffer(n); reusable; }
}
)")
                   .ok());
  // Not a buffer shape.
  EXPECT_FALSE(ParseSpec(R"(
api t 1;
int f(int* x) {
  sync;
  parameter(x) { in; element; reusable; }
}
)")
                   .ok());
  // `record;` functions replay from the log; a cached descriptor recorded
  // today would dangle after migration.
  EXPECT_FALSE(ParseSpec(R"(
api t 1;
int f(size_t size, const void* data) {
  sync;
  record;
  parameter(data) { in; bytes(size); reusable; }
}
)")
                   .ok());
}

TEST(EmitTest, ReusableParamsRouteThroughTransferCache) {
  auto spec = ParseSpec(R"(
api t 1;
type(t_int) { scalar; success(0); failure(-1); }
t_int fEnqueue(size_t size, const void* data) {
  sync;
  parameter(data) { in; bytes(size); reusable; }
  consumes(bandwidth, size);
}
t_int g(size_t size, const void* data) {
  sync;
  parameter(data) { in; bytes(size); }
  consumes(bandwidth, size);
}
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto files = GenerateStack(*spec);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  const std::string& guest = files->at("t_gen_guest.cc");
  const std::size_t f_at = guest.find("stub_fEnqueue");
  const std::size_t g_at = guest.find("stub_g");
  ASSERT_NE(f_at, std::string::npos);
  ASSERT_NE(g_at, std::string::npos);
  const std::string f_body = guest.substr(f_at, g_at - f_at);
  const std::string g_body = guest.substr(g_at);
  // The annotated stub opts its payload into the cache, patches the
  // cached-bytes header field, and hands the scope to CallSyncPrepared so
  // a kCacheMiss can be retried with the bytes spliced back in.
  EXPECT_NE(f_body.find("/*reusable=*/true"), std::string::npos) << f_body;
  EXPECT_NE(f_body.find("kCallCachedBytesOffset"), std::string::npos);
  EXPECT_NE(f_body.find("&bulk__"), std::string::npos);
  // The unannotated stub takes none of that machinery.
  EXPECT_EQ(g_body.find("/*reusable=*/true"), std::string::npos) << g_body;
  EXPECT_EQ(g_body.find("kCallCachedBytesOffset"), std::string::npos);
  EXPECT_EQ(g_body.find("&bulk__"), std::string::npos);
}

TEST(LintTest, MissingReusableOnSubmissionInBufferAdvises) {
  auto spec = ParseSpec(R"(
api t 1;
int fooEnqueue(size_t size, const void* data) {
  sync;
  parameter(data) { in; bytes(size); }
  consumes(bandwidth, size);
}
)");
  ASSERT_TRUE(spec.ok());
  bool advised = false;
  for (const auto& finding : LintSpec(*spec)) {
    advised = advised ||
              (finding.severity == LintFinding::Severity::kAdvice &&
               finding.message.find("transfer-cache candidate") !=
                   std::string::npos);
  }
  EXPECT_TRUE(advised);
}

TEST(LintTest, ReusableOnAsyncOnlyFunctionWarns) {
  auto spec = ParseSpec(R"(
api t 1;
int f(size_t size, const void* data) {
  async;
  parameter(data) { in; bytes(size); reusable; }
  consumes(bandwidth, size);
}
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  bool warned = false;
  for (const auto& finding : LintSpec(*spec)) {
    warned = warned ||
             (finding.severity == LintFinding::Severity::kWarning &&
              finding.message.find("cache-miss handshake") !=
                  std::string::npos);
  }
  EXPECT_TRUE(warned);
}

// The shipped specs must stay warning-free (advisories allowed).
TEST(LintTest, ShippedSpecsHaveNoWarnings) {
  for (const char* name : {"/vcl.ava", "/mvnc.ava", "/qat.ava"}) {
    FILE* f = std::fopen((std::string(AVA_SPECS_DIR) + name).c_str(), "rb");
    ASSERT_NE(f, nullptr) << name;
    std::string source;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      source.append(buf, n);
    }
    std::fclose(f);
    auto spec = ParseSpec(source);
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.status().ToString();
    for (const auto& finding : LintSpec(*spec)) {
      EXPECT_NE(finding.severity, LintFinding::Severity::kWarning)
          << name << ": " << finding.function << ": " << finding.message;
    }
  }
}

}  // namespace
}  // namespace cava
