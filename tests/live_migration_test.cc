// Deterministic test layer for live migration + warm failover (§4.3 live).
//
// The source/target pair runs over an in-process channel with a scripted
// fake device (no silo), so every byte that travels is a pure function of
// the seeds used: convergence decisions come from the modeled copy rate
// (LiveMigrateOptions.copy_rate_bytes_per_sec), dirtiness from a seeded
// workload generator that writes through the registry (firing the same
// touch observer a real call's argument translation fires). Fault cells
// wrap the migration channel in FaultyTransport or hand-speak the wire
// protocol; every cell must end classified — source keeps serving, the
// migration reports Aborted/DataLoss/Unavailable — never wedged, never
// with silent data damage.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/hash64.h"
#include "src/migrate/live.h"
#include "src/migrate/recorder.h"
#include "src/migrate/snapshot.h"
#include "src/obs/admin.h"
#include "src/proto/wire.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/server/swap_manager.h"
#include "src/transport/faulty.h"
#include "src/transport/transport.h"

namespace ava {
namespace {

constexpr std::uint32_t kBufTag = 7;
constexpr std::size_t kChunk = 4096;

// Content-tracking fake device (same idiom as the tiered swap tests).
struct FakeDevice {
  void* Alloc(const Bytes& content) {
    std::lock_guard<std::mutex> lock(m);
    void* p = reinterpret_cast<void*>(next++);
    mem[p] = content;
    return p;
  }
  Bytes Contents(void* p) {
    std::lock_guard<std::mutex> lock(m);
    auto it = mem.find(p);
    return it == mem.end() ? Bytes{} : it->second;
  }

  std::mutex m;
  std::uintptr_t next = 0x1000;
  std::unordered_map<void*, Bytes> mem;
};

BufferHooks MakeHooks(FakeDevice* dev) {
  BufferHooks hooks;
  hooks.buffer_type_tag = kBufTag;
  hooks.read_back = [dev](ObjectRegistry*, WireHandle,
                          ObjectRegistry::Entry& entry,
                          Bytes* out) -> Status {
    std::lock_guard<std::mutex> lock(dev->m);
    auto it = dev->mem.find(entry.real);
    if (it == dev->mem.end()) {
      return Internal("read_back of unknown fake buffer");
    }
    *out = it->second;
    return OkStatus();
  };
  hooks.free_buffer = [dev](ObjectRegistry*, ObjectRegistry::Entry& entry) {
    std::lock_guard<std::mutex> lock(dev->m);
    dev->mem.erase(entry.real);
  };
  hooks.realloc_buffer = [dev](ObjectRegistry*, WireHandle,
                               ObjectRegistry::Entry&,
                               const Bytes& contents) -> void* {
    return dev->Alloc(contents);
  };
  hooks.write_back = [dev](ObjectRegistry*, WireHandle,
                           ObjectRegistry::Entry& entry,
                           const Bytes& contents) -> Status {
    std::lock_guard<std::mutex> lock(dev->m);
    dev->mem[entry.real] = contents;
    return OkStatus();
  };
  return hooks;
}

Bytes Pattern(std::size_t n, std::uint64_t seed) {
  Bytes out(n);
  std::mt19937_64 rng(seed);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng());
  }
  return out;
}

WireHandle MakeBuf(FakeDevice* dev, ObjectRegistry* reg,
                   const Bytes& content) {
  void* p = dev->Alloc(content);
  WireHandle id = reg->Insert(kBufTag, p);
  reg->SetMeta(id, 0, content.size());
  return id;
}

// Seeded dirty-page workload: each Step() rewrites a deterministic subset
// of the buffers through Translate — the same registry path a real call's
// argument translation takes, so the touch observer fires exactly as it
// would in production. Same seed => byte-identical dirtying schedule,
// independent of machine speed.
class DirtyWorkload {
 public:
  DirtyWorkload(FakeDevice* dev, ObjectRegistry* reg,
                std::vector<WireHandle> ids, std::uint64_t seed,
                double dirty_fraction)
      : dev_(dev),
        reg_(reg),
        ids_(std::move(ids)),
        rng_(seed),
        dirty_fraction_(dirty_fraction) {}

  // Rewrites ~dirty_fraction of the working set with fresh seeded bytes.
  // Returns how many buffers were written.
  int Step() {
    int written = 0;
    for (WireHandle id : ids_) {
      const double coin =
          static_cast<double>(rng_()) /
          static_cast<double>(std::mt19937_64::max());
      if (coin >= dirty_fraction_) {
        continue;
      }
      auto real = reg_->Translate(kBufTag, id);  // fires the touch observer
      if (!real.ok()) {
        continue;
      }
      std::lock_guard<std::mutex> lock(dev_->m);
      Bytes& content = dev_->mem[*real];
      content = Pattern(content.size(), rng_());
      ++written;
    }
    return written;
  }

 private:
  FakeDevice* dev_;
  ObjectRegistry* reg_;
  std::vector<WireHandle> ids_;
  std::mt19937_64 rng_;
  double dirty_fraction_;
};

Bytes SourceBytes(FakeDevice* dev, ApiServerSession* session, WireHandle id) {
  Bytes out;
  Status with = session->registry().WithEntry(
      id, [&](ObjectRegistry::Entry& entry) {
        if (entry.swapped) {
          auto raw = MaterializeSwappedCopy(entry);
          if (raw.ok()) {
            out = *std::move(raw);
          }
          return;
        }
        out = dev->Contents(entry.real);
      });
  EXPECT_TRUE(with.ok()) << with.ToString();
  return out;
}

// Imported buffers land as swapped host-tier entries (the scripted sessions
// replay no calls, so nothing recreates them on the fake device).
Bytes TargetBytes(ApiServerSession* session, WireHandle id) {
  Bytes out;
  Status with = session->registry().WithEntry(
      id, [&](ObjectRegistry::Entry& entry) {
        if (entry.swapped) {
          auto raw = MaterializeSwappedCopy(entry);
          ASSERT_TRUE(raw.ok()) << raw.status().ToString();
          out = *std::move(raw);
          return;
        }
        out = Bytes{};  // device-resident on the target: caller reads dev
      });
  EXPECT_TRUE(with.ok()) << with.ToString();
  return out;
}

// One migration pair over an in-process channel. The target serves on its
// own thread (it blocks in Recv); the source is driven by the test thread.
struct LivePair {
  explicit LivePair(LiveMigrateOptions options = DefaultOptions()) {
    src_session = std::make_shared<ApiServerSession>(1);
    dst_session = std::make_shared<ApiServerSession>(1);
    source = std::make_unique<LiveMigrationSource>(MakeHooks(&src_dev),
                                                   options);
    target = std::make_unique<LiveMigrationTarget>(MakeHooks(&dst_dev),
                                                   options);
  }

  ~LivePair() {
    source.reset();  // closes the channel, unblocking Serve
    JoinServe();
  }

  static LiveMigrateOptions DefaultOptions() {
    LiveMigrateOptions options;
    options.chunk_bytes = kChunk;
    options.frame_timeout_ms = 5000;
    // Modeled rate so convergence is machine-independent arithmetic.
    options.copy_rate_bytes_per_sec = 1e9;
    return options;
  }

  std::vector<WireHandle> Seed(int count, std::size_t size,
                               std::uint64_t seed) {
    std::vector<WireHandle> ids;
    for (int i = 0; i < count; ++i) {
      ids.push_back(MakeBuf(&src_dev, &src_session->registry(),
                            Pattern(size, seed + static_cast<unsigned>(i))));
    }
    return ids;
  }

  // Binds (no router), starts Serve on the target thread, handshakes.
  Status Start(TransportPtr src_end = nullptr, TransportPtr dst_end = nullptr) {
    if (src_end == nullptr) {
      auto pair = MakeInProcChannel();
      src_end = std::move(pair.guest);
      dst_end = std::move(pair.host);
    }
    AVA_RETURN_IF_ERROR(
        source->Bind(nullptr, src_session.get(), /*recorder=*/nullptr));
    serve_thread = std::thread(
        [this, t = std::move(dst_end)]() mutable {
          serve_status = target->Serve(std::move(t), dst_session.get());
        });
    return source->Connect(std::move(src_end));
  }

  void JoinServe() {
    if (serve_thread.joinable()) {
      serve_thread.join();
    }
  }

  FakeDevice src_dev;
  FakeDevice dst_dev;
  std::shared_ptr<ApiServerSession> src_session;
  std::shared_ptr<ApiServerSession> dst_session;
  std::unique_ptr<LiveMigrationSource> source;
  std::unique_ptr<LiveMigrationTarget> target;
  std::thread serve_thread;
  Status serve_status;
};

// ---------------------------------------------------------------------------
// Tentpole behavior
// ---------------------------------------------------------------------------

TEST(LiveMigrationTest, FullMigrationMovesEveryBufferBitExact) {
  LivePair pair;
  auto ids = pair.Seed(8, 3 * kChunk + 123, /*seed=*/42);
  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->Run().ok());
  EXPECT_EQ(pair.source->phase(), MigratePhase::kCutover);
  ASSERT_TRUE(pair.source->FinishCutover().ok());
  EXPECT_EQ(pair.source->phase(), MigratePhase::kDone);
  pair.JoinServe();
  ASSERT_TRUE(pair.serve_status.ok()) << pair.serve_status.ToString();
  EXPECT_EQ(pair.target->phase(), MigratePhase::kDone);

  for (WireHandle id : ids) {
    EXPECT_EQ(TargetBytes(pair.dst_session.get(), id),
              SourceBytes(&pair.src_dev, pair.src_session.get(), id))
        << "buffer " << id;
  }
  const LiveMigrateStats& stats = pair.source->stats();
  EXPECT_GE(stats.rounds, 1);
  EXPECT_GT(stats.bytes_shipped, 0u);
  EXPECT_GT(stats.downtime_ns, 0);
}

TEST(LiveMigrationTest, DeltaRoundShipsOnlyDirtiedObjects) {
  LivePair pair;
  auto ids = pair.Seed(8, 2 * kChunk, /*seed=*/7);
  ASSERT_TRUE(pair.Start().ok());
  auto round1 = pair.source->RunRound();
  ASSERT_TRUE(round1.ok()) << round1.status().ToString();
  EXPECT_EQ(round1->dirty_objects, 8u);
  EXPECT_EQ(round1->bytes_shipped, 8u * 2 * kChunk);

  // Dirty exactly two buffers; the next round must ship only their chunks.
  DirtyWorkload workload(&pair.src_dev, &pair.src_session->registry(),
                         {ids[2], ids[5]}, /*seed=*/99, /*fraction=*/1.0);
  ASSERT_EQ(workload.Step(), 2);
  auto round2 = pair.source->RunRound();
  ASSERT_TRUE(round2.ok());
  EXPECT_EQ(round2->dirty_objects, 2u);
  EXPECT_EQ(round2->bytes_shipped, 2u * 2 * kChunk);
  EXPECT_TRUE(pair.source->Abort("test done").ok());
}

TEST(LiveMigrationTest, SubChunkWriteShipsOnlyTheChangedChunk) {
  LivePair pair;
  auto ids = pair.Seed(1, 4 * kChunk, /*seed=*/11);
  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->RunRound().ok());

  // Rewrite one chunk's worth in the middle of the buffer, via the
  // observer-firing path.
  auto real = pair.src_session->registry().Translate(kBufTag, ids[0]);
  ASSERT_TRUE(real.ok());
  {
    std::lock_guard<std::mutex> lock(pair.src_dev.m);
    Bytes& content = pair.src_dev.mem[*real];
    Bytes fresh = Pattern(kChunk, 1234);
    std::memcpy(content.data() + kChunk, fresh.data(), kChunk);
  }
  auto round2 = pair.source->RunRound();
  ASSERT_TRUE(round2.ok());
  // Whole object rescanned (object-granular tracker), one chunk shipped.
  EXPECT_EQ(round2->dirty_objects, 1u);
  EXPECT_EQ(round2->bytes_shipped, kChunk);
  EXPECT_TRUE(pair.source->Abort("test done").ok());
}

TEST(LiveMigrationTest, TwinBuffersDedupAcrossTheWorkingSet) {
  LivePair pair;
  // 8 buffers, only 4 distinct contents: a >=50%-redundant working set.
  std::vector<WireHandle> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(MakeBuf(&pair.src_dev, &pair.src_session->registry(),
                          Pattern(4 * kChunk, 500 + (i % 4))));
  }
  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->Run().ok());
  pair.JoinServe();
  ASSERT_TRUE(pair.serve_status.ok());

  const LiveMigrateStats& stats = pair.source->stats();
  // Pre-copy must ship measurably fewer bytes than a naive full copy.
  EXPECT_EQ(stats.bytes_scanned, 8u * 4 * kChunk);
  EXPECT_EQ(stats.bytes_shipped, 4u * 4 * kChunk);
  EXPECT_GE(stats.bytes_deduped, 4u * 4 * kChunk);
  for (WireHandle id : ids) {
    EXPECT_EQ(TargetBytes(pair.dst_session.get(), id),
              SourceBytes(&pair.src_dev, pair.src_session.get(), id));
  }
}

TEST(LiveMigrationTest, RewriteWithIdenticalContentShipsNothing) {
  LivePair pair;
  auto ids = pair.Seed(2, 2 * kChunk, /*seed=*/31);
  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->RunRound().ok());
  // Touch a buffer without changing its bytes: it is re-scanned (the
  // tracker is conservative) but its digests are already target-side.
  ASSERT_TRUE(pair.src_session->registry().Translate(kBufTag, ids[0]).ok());
  auto round2 = pair.source->RunRound();
  ASSERT_TRUE(round2.ok());
  EXPECT_EQ(round2->dirty_objects, 1u);
  EXPECT_EQ(round2->bytes_shipped, 0u);
  EXPECT_TRUE(pair.source->Abort("test done").ok());
}

TEST(LiveMigrationTest, ConvergenceIsPureArithmeticOnTheModeledRate) {
  // Slow modeled link: 1 byte/sec means any residual predicts hours of
  // downtime — never converges, so the round cap must trigger. Residual is
  // measured at round END against writes that landed DURING the round, so
  // the victim's device keeps writing mid-scan: its read_back mutates the
  // bytes first, re-marks through the translate path (the touch observer a
  // real concurrent call would fire), then returns the fresh contents.
  LiveMigrateOptions slow = LivePair::DefaultOptions();
  slow.copy_rate_bytes_per_sec = 1.0;
  slow.max_rounds = 3;
  LivePair pair(slow);
  auto ids = pair.Seed(4, 2 * kChunk, /*seed=*/77);
  const WireHandle victim = ids[0];
  BufferHooks hooks = MakeHooks(&pair.src_dev);
  auto inner_read = hooks.read_back;
  auto writes = std::make_shared<std::uint64_t>(0);
  FakeDevice* dev = &pair.src_dev;
  hooks.read_back = [inner_read, victim, writes, dev](
                        ObjectRegistry* registry, WireHandle id,
                        ObjectRegistry::Entry& entry, Bytes* out) -> Status {
    if (id == victim) {
      {
        std::lock_guard<std::mutex> lock(dev->m);
        Bytes& content = dev->mem[entry.real];
        content = Pattern(content.size(), 1000 + ++*writes);
      }
      (void)registry->Translate(kBufTag, id);  // fires the touch observer
    }
    return inner_read(registry, id, entry, out);
  };
  pair.source = std::make_unique<LiveMigrationSource>(hooks, slow);

  ASSERT_TRUE(pair.Start().ok());
  for (int round = 1; round <= 3; ++round) {
    auto report = pair.source->RunRound();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->residual_dirty_bytes, 2 * kChunk) << "round " << round;
    EXPECT_FALSE(pair.source->last_report().converged);
    if (round < 3) {
      EXPECT_FALSE(pair.source->ShouldStop());
    }
  }
  // Round cap reached: stop-and-copy runs regardless and ships the rest.
  EXPECT_TRUE(pair.source->ShouldStop());
  ASSERT_TRUE(pair.source->StopAndCopy().ok());
  pair.JoinServe();
  ASSERT_TRUE(pair.serve_status.ok());
  for (WireHandle id : ids) {
    EXPECT_EQ(TargetBytes(pair.dst_session.get(), id),
              SourceBytes(&pair.src_dev, pair.src_session.get(), id));
  }
  EXPECT_EQ(pair.source->stats().rounds, 3);
}

TEST(LiveMigrationTest, FastModeledRateConvergesInOneRound) {
  LivePair pair;  // 1 GB/s modeled: everything converges immediately
  pair.Seed(4, 2 * kChunk, /*seed=*/13);
  ASSERT_TRUE(pair.Start().ok());
  auto report = pair.source->RunRound();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_TRUE(pair.source->ShouldStop());
  EXPECT_TRUE(pair.source->Abort("test done").ok());
}

// Two identical seeded runs produce byte-identical shipping decisions —
// the reproducibility contract of the whole test layer.
TEST(LiveMigrationTest, SeededRunsAreByteExactReproducible) {
  auto run_once = [](LiveMigrateStats* out) {
    LiveMigrateOptions options = LivePair::DefaultOptions();
    options.copy_rate_bytes_per_sec = 1.0;  // never converges
    options.max_rounds = 4;
    LivePair pair(options);
    auto ids = pair.Seed(6, 3 * kChunk, /*seed=*/2024);
    ASSERT_TRUE(pair.Start().ok());
    DirtyWorkload workload(&pair.src_dev, &pair.src_session->registry(), ids,
                           /*seed=*/606, /*fraction=*/0.5);
    ASSERT_TRUE(pair.source->RunRound().ok());
    for (int i = 0; i < 3; ++i) {
      workload.Step();
      ASSERT_TRUE(pair.source->RunRound().ok());
    }
    ASSERT_TRUE(pair.source->StopAndCopy().ok());
    pair.JoinServe();
    ASSERT_TRUE(pair.serve_status.ok());
    *out = pair.source->stats();
  };
  LiveMigrateStats a, b;
  run_once(&a);
  run_once(&b);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.objects_scanned, b.objects_scanned);
  EXPECT_EQ(a.bytes_scanned, b.bytes_scanned);
  EXPECT_EQ(a.bytes_offered, b.bytes_offered);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_EQ(a.bytes_deduped, b.bytes_deduped);
  EXPECT_EQ(a.chunks_shipped, b.chunks_shipped);
  EXPECT_EQ(a.residual_bytes, b.residual_bytes);
}

// ---------------------------------------------------------------------------
// Registry export/import: swap tiers, pins, snapshot equivalence
// ---------------------------------------------------------------------------

std::string FreshSpillDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name + "." +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(LiveMigrationTest, ExportCoversEverySwapTier) {
  LivePair pair;
  ObjectRegistry& registry = pair.src_session->registry();
  // Five buffers spread across ALL FOUR tiers by the real swap machinery:
  // one stays on-device; four get evicted to the host tier (128 KiB), and
  // one demotion pass under an 80 KiB budget walks coldest-first — each
  // page is compressed, then ALSO spilled while usage is still over
  // budget (the pass may additionally capture a clean write-back copy of
  // the on-device page, +32 KiB). So the coldest land on disk, the one
  // whose compression crosses the budget line stays compressed, and the
  // warmest is never walked and stays raw in host memory.
  std::vector<WireHandle> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(MakeBuf(&pair.src_dev, &registry,
                          Bytes(8 * kChunk,
                                static_cast<std::uint8_t>(0x41 + i))));
  }

  SwapManager::Options swap_options;
  swap_options.host_tier_bytes = 20 * kChunk;  // < evicted 32*kChunk
  swap_options.compress = true;
  swap_options.spill_dir = FreshSpillDir("live_migrate_tiers");
  swap_options.demote_interval_ms = 0;  // TickForTest drives demotion
  SwapManager swap(MakeHooks(&pair.src_dev), swap_options);
  swap.AttachRegistry(&registry);
  pair.source->SetSwapManager(&swap);

  // Snapshot the expected contents BEFORE eviction (eviction's read_back +
  // free consumes the fake device copy).
  std::vector<Bytes> expected;
  for (WireHandle id : ids) {
    expected.push_back(SourceBytes(&pair.src_dev, pair.src_session.get(), id));
  }
  registry.Touch(ids[0]);  // most recent: LRU keeps it on-device
  ASSERT_GE(swap.MakeRoom(32 * kChunk, &registry), 32u * kChunk);
  swap.TickForTest();  // over budget: compress / spill the host pages

  std::set<SwapTier> tiers;
  std::string tier_dump;
  for (WireHandle id : ids) {
    ObjectRegistry::Entry* entry = registry.Find(id);
    ASSERT_NE(entry, nullptr);
    tiers.insert(entry->tier);
    tier_dump += " id" + std::to_string(id) + "=" +
                 std::to_string(static_cast<int>(entry->tier));
  }
  EXPECT_TRUE(tiers.count(SwapTier::kDevice) == 1) << "ids[0] was evicted";
  EXPECT_TRUE(tiers.count(SwapTier::kHost) == 1) << tier_dump;
  EXPECT_TRUE(tiers.count(SwapTier::kCompressed) == 1) << tier_dump;
  EXPECT_TRUE(tiers.count(SwapTier::kDisk) == 1) << tier_dump;
  ASSERT_GE(tiers.size(), 4u)
      << "demotion did not spread the working set across tiers:" << tier_dump;

  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->Run().ok());
  pair.JoinServe();
  ASSERT_TRUE(pair.serve_status.ok()) << pair.serve_status.ToString();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(TargetBytes(pair.dst_session.get(), ids[i]), expected[i])
        << "buffer " << ids[i];
  }
}

TEST(LiveMigrationTest, PinnedObjectAbortsStopAndCopy) {
  LivePair pair;
  auto ids = pair.Seed(2, 2 * kChunk, /*seed=*/55);
  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->RunRound().ok());

  // A pin surviving into the stop-and-copy window is a correctness hazard
  // (the device could mutate bytes after they were declared final).
  bool swapped_out = false;
  ASSERT_NE(pair.src_session->registry().PinIfResident(kBufTag, ids[1],
                                                       &swapped_out),
            nullptr);
  Status stop = pair.source->StopAndCopy();
  ASSERT_FALSE(stop.ok());
  EXPECT_EQ(stop.code(), StatusCode::kAborted) << stop.ToString();
  EXPECT_NE(stop.message().find("pin"), std::string::npos) << stop.ToString();
  EXPECT_EQ(pair.source->phase(), MigratePhase::kAborted);
  // The source keeps serving: its registry still resolves the buffers.
  EXPECT_TRUE(pair.src_session->registry().Translate(kBufTag, ids[0]).ok());
  pair.JoinServe();
  EXPECT_FALSE(pair.serve_status.ok());
}

TEST(LiveMigrationTest, LiveImportMatchesOfflineSnapshotAtFreezePoint) {
  LivePair pair;
  auto ids = pair.Seed(5, 3 * kChunk, /*seed=*/321);
  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->RunRound().ok());
  DirtyWorkload workload(&pair.src_dev, &pair.src_session->registry(), ids,
                         /*seed=*/42, /*fraction=*/0.6);
  workload.Step();
  ASSERT_TRUE(pair.source->StopAndCopy().ok());
  pair.JoinServe();
  ASSERT_TRUE(pair.serve_status.ok());

  // At the freeze point the source is quiescent: an offline snapshot taken
  // NOW is the ground truth the live migration must have reproduced.
  MigrationEngine offline(MakeHooks(&pair.src_dev));
  Recorder empty;
  auto snapshot = offline.Capture(nullptr, pair.src_session.get(), empty);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_EQ(snapshot->buffers.size(), ids.size());
  for (const auto& [id, offline_bytes] : snapshot->buffers) {
    EXPECT_EQ(TargetBytes(pair.dst_session.get(), id), offline_bytes)
        << "live-migrated buffer " << id
        << " diverges from the offline snapshot";
  }
}

TEST(LiveMigrationTest, FreedBufferDropsOutOfLaterRounds) {
  LivePair pair;
  auto ids = pair.Seed(3, 2 * kChunk, /*seed=*/66);
  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->RunRound().ok());
  // Free one buffer between rounds; the manifest must stop naming it.
  void* removed = nullptr;
  ASSERT_TRUE(pair.src_session->registry().Release(ids[1], &removed).ok());
  ASSERT_TRUE(pair.source->StopAndCopy().ok());
  pair.JoinServe();
  ASSERT_TRUE(pair.serve_status.ok());
  EXPECT_TRUE(pair.dst_session->registry().Find(ids[0]) != nullptr);
  EXPECT_TRUE(pair.dst_session->registry().Find(ids[1]) == nullptr);
  EXPECT_TRUE(pair.dst_session->registry().Find(ids[2]) != nullptr);
}

// ---------------------------------------------------------------------------
// Fault cells: every one must end classified, never wedged
// ---------------------------------------------------------------------------

TEST(LiveMigrationFaultTest, DroppedFramesAbortTheHandshake) {
  LiveMigrateOptions options = LivePair::DefaultOptions();
  options.frame_timeout_ms = 100;
  LivePair pair(options);
  pair.Seed(2, 2 * kChunk, /*seed=*/1);
  auto channel = MakeInProcChannel();
  FaultSpec drop_all;
  drop_all.drop = 1.0;
  Status connected = pair.Start(
      MakeFaultyTransport(std::move(channel.guest), drop_all),
      std::move(channel.host));
  ASSERT_FALSE(connected.ok());
  EXPECT_EQ(connected.code(), StatusCode::kAborted) << connected.ToString();
  // Source still serves its state after the failed migration attempt.
  EXPECT_EQ(pair.src_session->registry().LiveCount(), 2u);
}

TEST(LiveMigrationFaultTest, CorruptFramesClassifyAsDataLossOnTheTarget) {
  LivePair pair;
  pair.Seed(2, 2 * kChunk, /*seed=*/2);
  auto channel = MakeInProcChannel();
  FaultSpec corrupt_all;
  corrupt_all.corrupt = 1.0;
  corrupt_all.seed = 9;
  Status connected = pair.Start(
      MakeFaultyTransport(std::move(channel.guest), corrupt_all),
      std::move(channel.host));
  // The target rejects the corrupt HELLO at the CRC and answers ABORT, so
  // the source's handshake fails classified.
  ASSERT_FALSE(connected.ok());
  EXPECT_EQ(connected.code(), StatusCode::kAborted) << connected.ToString();
  pair.JoinServe();
  EXPECT_EQ(pair.serve_status.code(), StatusCode::kDataLoss)
      << pair.serve_status.ToString();
}

TEST(LiveMigrationFaultTest, DelayedTargetRepliesTimeOutTheSource) {
  LiveMigrateOptions options = LivePair::DefaultOptions();
  options.frame_timeout_ms = 50;
  LivePair pair(options);
  pair.Seed(2, 2 * kChunk, /*seed=*/3);
  auto channel = MakeInProcChannel();
  FaultSpec slow;
  slow.delay_us = 300000;  // every target reply arrives 300ms late
  Status connected =
      pair.Start(std::move(channel.guest),
                 MakeFaultyTransport(std::move(channel.host), slow));
  ASSERT_FALSE(connected.ok());
  EXPECT_EQ(connected.code(), StatusCode::kAborted) << connected.ToString();
}

TEST(LiveMigrationFaultTest, MidRoundDisconnectAbortsAndSourceKeepsServing) {
  LivePair pair;
  auto ids = pair.Seed(4, 4 * kChunk, /*seed=*/4);
  auto channel = MakeInProcChannel();
  FaultSpec cut;
  cut.disconnect_after = 6;  // survives the handshake, dies mid-shipping
  Status connected = pair.Start(
      MakeFaultyTransport(std::move(channel.guest), cut),
      std::move(channel.host));
  ASSERT_TRUE(connected.ok()) << connected.ToString();
  auto round = pair.source->RunRound();
  ASSERT_FALSE(round.ok());
  EXPECT_EQ(round.status().code(), StatusCode::kAborted)
      << round.status().ToString();
  EXPECT_EQ(pair.source->phase(), MigratePhase::kAborted);
  // No wedge, no data loss: the source's working set is fully intact.
  for (WireHandle id : ids) {
    EXPECT_FALSE(
        SourceBytes(&pair.src_dev, pair.src_session.get(), id).empty());
  }
}

// Hand-spoken protocol cells: a raw endpoint plays a malicious/broken
// source against a real target.
void SendSealed(Transport* transport, Bytes frame) {
  SealFrame(&frame);
  ASSERT_TRUE(transport->Send(frame).ok());
}

Bytes HelloFrame(VmId vm_id, std::uint64_t chunk_bytes) {
  ByteWriter w;
  w.PutU8(1);  // kHello
  w.PutU32(0x4156414d);
  w.PutU32(1);
  w.PutU64(vm_id);
  w.PutU64(chunk_bytes);
  return std::move(w).TakeBytes();
}

struct RawTarget {
  RawTarget() {
    session = std::make_shared<ApiServerSession>(1);
    engine = std::make_unique<LiveMigrationTarget>(MakeHooks(&dev));
    auto pair = MakeInProcChannel();
    wire = std::move(pair.guest);
    thread = std::thread([this, t = std::move(pair.host)]() mutable {
      status = engine->Serve(std::move(t), session.get());
    });
  }
  ~RawTarget() {
    wire.reset();
    if (thread.joinable()) {
      thread.join();
    }
  }
  Status Handshake() {
    SendSealed(wire.get(), HelloFrame(1, kChunk));
    auto ack = wire->RecvTimeout(2000LL * 1000000);
    AVA_RETURN_IF_ERROR(ack.status());
    Bytes frame = *std::move(ack);
    AVA_RETURN_IF_ERROR(CheckAndStripFrame(&frame));
    ByteReader r(frame);
    if (r.GetU8() != 2 || !r.GetBool()) {
      return Aborted("handshake rejected");
    }
    return OkStatus();
  }

  FakeDevice dev;
  std::shared_ptr<ApiServerSession> session;
  std::unique_ptr<LiveMigrationTarget> engine;
  TransportPtr wire;
  std::thread thread;
  Status status;
};

TEST(LiveMigrationFaultTest, ForgedChunkDigestIsRejectedAtInstall) {
  RawTarget target;
  ASSERT_TRUE(target.Handshake().ok());
  const Bytes payload = Pattern(kChunk, 77);
  const std::uint64_t honest = Hash64(payload.data(), payload.size());
  const std::uint64_t forged = honest ^ 0xDEADBEEF;
  {
    ByteWriter offer;
    offer.PutU8(3);  // kOffer
    offer.PutU32(1);
    offer.PutU32(1);
    offer.PutU64(forged);
    offer.PutU32(static_cast<std::uint32_t>(payload.size()));
    SendSealed(target.wire.get(), std::move(offer).TakeBytes());
  }
  auto need = target.wire->RecvTimeout(2000LL * 1000000);
  ASSERT_TRUE(need.ok());
  {
    ByteWriter chunk;
    chunk.PutU8(5);  // kChunk: bytes that do NOT hash to the claimed digest
    chunk.PutU64(forged);
    chunk.PutBlob(payload.data(), payload.size());
    SendSealed(target.wire.get(), std::move(chunk).TakeBytes());
  }
  target.wire.reset();  // our side is done; let Serve surface its verdict
  target.thread.join();
  EXPECT_EQ(target.status.code(), StatusCode::kDataLoss)
      << target.status.ToString();
  EXPECT_EQ(target.engine->chunk_bytes_received(), 0u);
}

TEST(LiveMigrationFaultTest, ManifestNamingUnshippedChunkIsRejected) {
  RawTarget target;
  ASSERT_TRUE(target.Handshake().ok());
  // A manifest that references a digest the target never received must be
  // rejected in COMMIT, not imported with holes.
  ByteWriter body;
  body.PutU64(1);   // vm_id
  body.PutU32(0);   // calls
  body.PutU32(1);   // objects
  body.PutU64(10);  // id
  body.PutU32(kBufTag);
  body.PutU64(0);        // parent
  body.PutU64(kChunk);   // size
  body.PutU32(1);        // refcount
  body.PutU8(0);         // interned
  body.PutU8(1);         // tier: host
  body.PutU32(0);        // pinned
  body.PutU32(1);        // chunks
  body.PutU64(0x1234);   // never-shipped digest
  body.PutU32(static_cast<std::uint32_t>(kChunk));
  Bytes body_bytes = std::move(body).TakeBytes();
  ByteWriter manifest;
  manifest.PutU8(6);  // kManifest
  manifest.PutU32(1);
  manifest.PutU8(0);  // non-final
  manifest.PutBlob(body_bytes.data(), body_bytes.size());
  SendSealed(target.wire.get(), std::move(manifest).TakeBytes());

  auto commit = target.wire->RecvTimeout(2000LL * 1000000);
  ASSERT_TRUE(commit.ok());
  Bytes frame = *std::move(commit);
  ASSERT_TRUE(CheckAndStripFrame(&frame).ok());
  ByteReader r(frame);
  EXPECT_EQ(r.GetU8(), 7u);  // kCommit
  r.GetU32();
  EXPECT_FALSE(r.GetBool());  // rejected
  target.wire.reset();
  target.thread.join();
  EXPECT_EQ(target.status.code(), StatusCode::kAborted)
      << target.status.ToString();
  // The rejected round is NOT a failover checkpoint.
  EXPECT_EQ(target.engine->committed_rounds(), 0);
}

TEST(LiveMigrationFaultTest, PinnedObjectInManifestIsRejectedByTarget) {
  RawTarget target;
  ASSERT_TRUE(target.Handshake().ok());
  ByteWriter body;
  body.PutU64(1);
  body.PutU32(0);
  body.PutU32(1);
  body.PutU64(10);
  body.PutU32(kBufTag);
  body.PutU64(0);
  body.PutU64(0);  // size 0, no chunks: the pin alone must reject it
  body.PutU32(1);
  body.PutU8(0);
  body.PutU8(1);
  body.PutU32(3);  // pinned = 3
  body.PutU32(0);  // chunks
  Bytes body_bytes = std::move(body).TakeBytes();
  ByteWriter manifest;
  manifest.PutU8(6);
  manifest.PutU32(1);
  manifest.PutU8(0);
  manifest.PutBlob(body_bytes.data(), body_bytes.size());
  SendSealed(target.wire.get(), std::move(manifest).TakeBytes());
  // Read the COMMIT rejection before closing our end, so Serve's verdict is
  // the validation failure and not a send error.
  auto commit = target.wire->RecvTimeout(2000LL * 1000000);
  ASSERT_TRUE(commit.ok());
  Bytes frame = *std::move(commit);
  ASSERT_TRUE(CheckAndStripFrame(&frame).ok());
  ByteReader r(frame);
  EXPECT_EQ(r.GetU8(), 7u);  // kCommit
  r.GetU32();
  EXPECT_FALSE(r.GetBool());
  target.wire.reset();
  target.thread.join();
  EXPECT_EQ(target.status.code(), StatusCode::kAborted)
      << target.status.ToString();
  EXPECT_NE(target.status.message().find("pinned"),
            std::string_view::npos);
}

TEST(LiveMigrationFaultTest, TruncatedManifestsNeverWedgeOrImport) {
  // Sweep truncation points of a syntactically valid manifest. Every prefix
  // must end the Serve loop classified — parse rejection, commit rejection,
  // or channel death — and never import partial state.
  ByteWriter body;
  body.PutU64(1);
  body.PutU32(0);
  body.PutU32(1);
  body.PutU64(10);
  body.PutU32(kBufTag);
  body.PutU64(0);
  body.PutU64(kChunk);
  body.PutU32(1);
  body.PutU8(0);
  body.PutU8(1);
  body.PutU32(0);
  body.PutU32(1);
  body.PutU64(0x9999);
  body.PutU32(static_cast<std::uint32_t>(kChunk));
  const Bytes full = std::move(body).TakeBytes();
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{11},
                          full.size() / 2, full.size() - 1}) {
    RawTarget target;
    ASSERT_TRUE(target.Handshake().ok());
    Bytes truncated(full.begin(),
                    full.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteWriter manifest;
    manifest.PutU8(6);
    manifest.PutU32(1);
    manifest.PutU8(1);  // final: a parse of garbage must not import
    manifest.PutBlob(truncated.data(), truncated.size());
    SendSealed(target.wire.get(), std::move(manifest).TakeBytes());
    target.wire.reset();
    target.thread.join();
    EXPECT_FALSE(target.status.ok()) << "cut=" << cut;
    EXPECT_EQ(target.session->registry().LiveCount(), 0u) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Warm failover
// ---------------------------------------------------------------------------

TEST(LiveMigrationFailoverTest, StandbyTakesOverFromCommittedRound) {
  LivePair pair;
  auto ids = pair.Seed(4, 3 * kChunk, /*seed=*/404);
  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->RunRound().ok());
  // Checkpoint contents = state at round 1.
  std::vector<Bytes> at_round1;
  for (WireHandle id : ids) {
    at_round1.push_back(
        SourceBytes(&pair.src_dev, pair.src_session.get(), id));
  }
  // The source dirties more state, then "dies" (channel drops with no
  // ABORT — exactly what a crash looks like to the standby).
  DirtyWorkload workload(&pair.src_dev, &pair.src_session->registry(), ids,
                         /*seed=*/8, /*fraction=*/1.0);
  workload.Step();
  pair.source.reset();
  pair.JoinServe();
  EXPECT_FALSE(pair.serve_status.ok());
  ASSERT_EQ(pair.target->committed_rounds(), 1);

  ASSERT_TRUE(pair.target->TakeOver().ok());
  EXPECT_EQ(pair.target->phase(), MigratePhase::kFailover);
  // The survivor holds the last COMMITTED state — not the uncommitted
  // writes that died with the source.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(TargetBytes(pair.dst_session.get(), ids[i]), at_round1[i]);
  }
}

TEST(LiveMigrationFailoverTest, TakeOverWithoutCommittedRoundReportsUnsynced) {
  LivePair pair;
  pair.Seed(2, 2 * kChunk, /*seed=*/405);
  ASSERT_TRUE(pair.Start().ok());
  pair.source.reset();  // dies after the handshake, before any commit
  pair.JoinServe();
  EXPECT_FALSE(pair.serve_status.ok());
  Status takeover = pair.target->TakeOver();
  ASSERT_FALSE(takeover.ok());
  EXPECT_EQ(takeover.code(), StatusCode::kFailedPrecondition)
      << takeover.ToString();
  EXPECT_NE(takeover.message().find("unsynced"), std::string::npos);
}

TEST(LiveMigrationFailoverTest, DeliberateAbortInvalidatesTheCheckpoint) {
  LivePair pair;
  pair.Seed(2, 2 * kChunk, /*seed=*/406);
  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->RunRound().ok());
  ASSERT_TRUE(pair.source->Abort("operator cancelled").ok());
  pair.JoinServe();
  EXPECT_EQ(pair.serve_status.code(), StatusCode::kAborted);
  // An abort means the source is alive and owns the state: the standby
  // must NOT be willing to take over from the stale checkpoint.
  Status takeover = pair.target->TakeOver();
  EXPECT_EQ(takeover.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Cutover: freeze, re-point the guest over hot re-attach, in-flight calls
// ---------------------------------------------------------------------------

constexpr std::uint16_t kTestApi = 42;

ApiHandler MakeEchoHandler() {
  return [](ServerContext*, std::uint32_t, ByteReader* args, bool,
            ByteWriter* reply) -> Status {
    reply->PutU32(args->GetU32());
    return OkStatus();
  };
}

Result<Bytes> EchoCall(GuestEndpoint* endpoint, std::uint32_t value,
                       bool retriable) {
  CallHeader header;
  header.api_id = kTestApi;
  header.func_id = 1;
  ByteWriter args;
  args.PutU32(value);
  return endpoint->CallSyncPrepared(
      EncodeCall(header, std::move(args).TakeBytes()), retriable);
}

TEST(LiveMigrationCutoverTest, GuestRepointsAndInFlightCallsReplayOrFailClean) {
  constexpr VmId kVm = 5;
  FakeDevice src_dev;
  FakeDevice dst_dev;

  Router router_a;
  router_a.Start();
  auto src_session = std::make_shared<ApiServerSession>(kVm);
  src_session->RegisterApi(kTestApi, MakeEchoHandler());
  auto guest_channel = MakeInProcChannel();
  ASSERT_TRUE(
      router_a.AttachVm(kVm, std::move(guest_channel.host), src_session)
          .ok());
  GuestEndpoint::Options guest_options;
  guest_options.vm_id = kVm;
  guest_options.call_deadline_ms = 5000;
  guest_options.max_retries = 2;
  auto endpoint = std::make_shared<GuestEndpoint>(
      std::move(guest_channel.guest), guest_options);
  auto ids = std::vector<WireHandle>{
      MakeBuf(&src_dev, &src_session->registry(), Pattern(2 * kChunk, 1)),
      MakeBuf(&src_dev, &src_session->registry(), Pattern(2 * kChunk, 2))};

  // Warm call across the full source stack.
  auto warm = EchoCall(endpoint.get(), 111, /*retriable=*/false);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // Live-migrate with the router bound: StopAndCopy quiesces the lanes.
  auto dst_session = std::make_shared<ApiServerSession>(kVm);
  dst_session->RegisterApi(kTestApi, MakeEchoHandler());
  LiveMigrationSource source(MakeHooks(&src_dev), LivePair::DefaultOptions());
  LiveMigrationTarget target(MakeHooks(&dst_dev), LivePair::DefaultOptions());
  ASSERT_TRUE(source.Bind(&router_a, src_session.get(), nullptr).ok());
  auto migrate_channel = MakeInProcChannel();
  Status serve_status;
  std::thread serve_thread(
      [&, t = std::move(migrate_channel.host)]() mutable {
        serve_status = target.Serve(std::move(t), dst_session.get());
      });
  ASSERT_TRUE(source.Connect(std::move(migrate_channel.guest)).ok());
  ASSERT_TRUE(source.RunRound().ok());
  ASSERT_TRUE(source.StopAndCopy().ok());
  // VM is frozen in kCutover: calls issued NOW sit in the paused queue.
  Result<Bytes> retriable_result = Bytes{};
  Result<Bytes> oneshot_result = Bytes{};
  std::thread retriable_caller([&] {
    retriable_result = EchoCall(endpoint.get(), 222, /*retriable=*/true);
  });
  std::thread oneshot_caller([&] {
    oneshot_result = EchoCall(endpoint.get(), 333, /*retriable=*/false);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Re-point: attach the target session to a fresh router and swap the
  // guest's transport over the hot re-attach path.
  Router router_b;
  router_b.Start();
  auto fresh_channel = MakeInProcChannel();
  ASSERT_TRUE(
      router_b.AttachVm(kVm, std::move(fresh_channel.host), dst_session)
          .ok());
  ASSERT_TRUE(endpoint->ReplaceTransport(std::move(fresh_channel.guest)).ok());
  ASSERT_TRUE(source.FinishCutover().ok());
  serve_thread.join();
  ASSERT_TRUE(serve_status.ok()) << serve_status.ToString();

  retriable_caller.join();
  oneshot_caller.join();
  // The idempotent in-flight call replayed on the survivor; the
  // non-idempotent one failed with a clean Unavailable (never executed
  // twice, never wedged).
  ASSERT_TRUE(retriable_result.ok()) << retriable_result.status().ToString();
  ByteReader echoed(*retriable_result);
  EXPECT_EQ(echoed.GetU32(), 222u);
  ASSERT_FALSE(oneshot_result.ok());
  EXPECT_EQ(oneshot_result.status().code(), StatusCode::kUnavailable)
      << oneshot_result.status().ToString();

  // Steady-state on the survivor.
  auto after = EchoCall(endpoint.get(), 444, /*retriable=*/false);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  // And the migrated buffers arrived.
  for (WireHandle id : ids) {
    EXPECT_EQ(TargetBytes(dst_session.get(), id),
              SourceBytes(&src_dev, src_session.get(), id));
  }
  endpoint.reset();
  router_b.Stop();
  router_a.Stop();
}

// ---------------------------------------------------------------------------
// Knobs + observability
// ---------------------------------------------------------------------------

TEST(LiveMigrationTest, OptionsFromEnvParsesAndRejectsMalformedKnobs) {
  ::setenv("AVA_MIGRATE_CHUNK", "8192", 1);
  ::setenv("AVA_MIGRATE_MAX_ROUNDS", "5", 1);
  ::setenv("AVA_MIGRATE_DOWNTIME_MS", "75", 1);
  ::setenv("AVA_MIGRATE_TIMEOUT_MS", "1234", 1);
  LiveMigrateOptions options = LiveMigrateOptions::FromEnv();
  EXPECT_EQ(options.chunk_bytes, 8192u);
  EXPECT_EQ(options.max_rounds, 5);
  EXPECT_EQ(options.downtime_target_ms, 75);
  EXPECT_EQ(options.frame_timeout_ms, 1234);
  ::setenv("AVA_MIGRATE_CHUNK", "banana", 1);
  ::setenv("AVA_MIGRATE_MAX_ROUNDS", "-3", 1);
  LiveMigrateOptions fallback = LiveMigrateOptions::FromEnv();
  EXPECT_EQ(fallback.chunk_bytes, LiveMigrateOptions().chunk_bytes);
  EXPECT_EQ(fallback.max_rounds, LiveMigrateOptions().max_rounds);
  ::unsetenv("AVA_MIGRATE_CHUNK");
  ::unsetenv("AVA_MIGRATE_MAX_ROUNDS");
  ::unsetenv("AVA_MIGRATE_DOWNTIME_MS");
  ::unsetenv("AVA_MIGRATE_TIMEOUT_MS");
}

TEST(LiveMigrationTest, AdminVerbReportsMigrationStatus) {
  LivePair pair;
  pair.Seed(2, 2 * kChunk, /*seed=*/70);
  ASSERT_TRUE(pair.Start().ok());
  ASSERT_TRUE(pair.source->Run().ok());
  ASSERT_TRUE(pair.source->FinishCutover().ok());
  pair.JoinServe();

  const std::string sock =
      ::testing::TempDir() + "/live_migrate_admin." +
      std::to_string(::getpid()) + ".sock";
  obs::AdminChannel& admin = obs::AdminChannel::Default();
  if (!admin.serving()) {
    ASSERT_TRUE(admin.Serve(sock).ok());
  }
  auto reply = obs::AdminQuery(admin.path(), "migrate");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_NE(reply->find("phase"), std::string::npos) << *reply;
  EXPECT_NE(reply->find("bytes_shipped"), std::string::npos) << *reply;
}

}  // namespace
}  // namespace ava
