// Unit tests for src/common: Status/Result, serialization, RNG, clocks.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/serial.h"
#include "src/common/status.h"
#include "src/common/vclock.h"

namespace ava {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad size");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad size");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDenied("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgument("a"), InvalidArgument("a"));
  EXPECT_FALSE(InvalidArgument("a") == InvalidArgument("b"));
  EXPECT_FALSE(InvalidArgument("a") == NotFound("a"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return InvalidArgument("not positive");
  }
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Doubled(int x) {
  AVA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(SerialTest, ScalarRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI32(-42);
  w.PutI64(-1234567890123ll);
  w.PutF32(3.5f);
  w.PutF64(-2.25);
  w.PutBool(true);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU16(), 0xBEEF);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetI32(), -42);
  EXPECT_EQ(r.GetI64(), -1234567890123ll);
  EXPECT_EQ(r.GetF32(), 3.5f);
  EXPECT_EQ(r.GetF64(), -2.25);
  EXPECT_TRUE(r.GetBool());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.failed());
}

TEST(SerialTest, BlobAndStringRoundTrip) {
  ByteWriter w;
  w.PutString("hello");
  Bytes blob = {1, 2, 3, 4, 5};
  w.PutBlob(blob.data(), blob.size());
  w.PutString("");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_EQ(r.GetBlob(), blob);
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.failed());
}

TEST(SerialTest, TruncatedReadFailsSticky) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU64(), 0u);  // needs 8 bytes, only 4 available
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.GetU32(), 0u);  // sticky failure
  EXPECT_FALSE(r.status().ok());
}

TEST(SerialTest, OversizedBlobLengthFails) {
  ByteWriter w;
  w.PutU64(1u << 30);  // blob length far past the end
  ByteReader r(w.bytes());
  auto view = r.GetBlobView();
  EXPECT_TRUE(view.empty());
  EXPECT_TRUE(r.failed());
}

TEST(SerialTest, GetBlobIntoRejectsOverflow) {
  ByteWriter w;
  Bytes blob(16, 0x5A);
  w.PutBlob(blob.data(), blob.size());
  ByteReader r(w.bytes());
  std::uint8_t small[8];
  r.GetBlobInto(small, sizeof(small));
  EXPECT_TRUE(r.failed());
}

TEST(SerialTest, PatchAtBackfillsLength) {
  ByteWriter w;
  w.PutU32(0);  // placeholder
  w.PutU8(9);
  w.PatchAt<std::uint32_t>(0, 77);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU32(), 77u);
  EXPECT_EQ(r.GetU8(), 9);
}

// Property: random sequences of writes read back identically.
TEST(SerialTest, RandomRoundTripProperty) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    ByteWriter w;
    std::vector<std::uint64_t> u64s;
    std::vector<std::string> strings;
    std::vector<int> order;
    int ops = static_cast<int>(rng.NextBelow(20)) + 1;
    for (int i = 0; i < ops; ++i) {
      if (rng.NextBool()) {
        std::uint64_t v = rng.NextU64();
        u64s.push_back(v);
        w.PutU64(v);
        order.push_back(0);
      } else {
        std::string s(rng.NextBelow(64), 'x');
        for (auto& c : s) {
          c = static_cast<char>('a' + rng.NextBelow(26));
        }
        strings.push_back(s);
        w.PutString(s);
        order.push_back(1);
      }
    }
    ByteReader r(w.bytes());
    std::size_t ui = 0, si = 0;
    for (int op : order) {
      if (op == 0) {
        ASSERT_EQ(r.GetU64(), u64s[ui++]);
      } else {
        ASSERT_EQ(r.GetString(), strings[si++]);
      }
    }
    ASSERT_FALSE(r.failed());
    ASSERT_EQ(r.remaining(), 0u);
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, RangesRespectBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    auto v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextInRange(3, 3), 3);
}

TEST(VClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowNs(), 0);
  clock.Advance(100);
  clock.Advance(250);
  EXPECT_EQ(clock.NowNs(), 350);
  clock.Reset();
  EXPECT_EQ(clock.NowNs(), 0);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedNs(), 0);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(LogTest, LevelGating) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Should be compiled & skipped without side effects.
  AVA_LOG(DEBUG) << "invisible";
  SetLogLevel(old);
}

TEST(LogTest, ShouldLogEveryNEmitsFirstAndEveryNth) {
  std::atomic<std::uint64_t> counter{0};
  // n = 3: occurrences 0, 3, 6, ... log.
  std::vector<bool> decisions;
  for (int i = 0; i < 7; ++i) {
    decisions.push_back(log_internal::ShouldLogEveryN(&counter, 3));
  }
  EXPECT_EQ(decisions,
            (std::vector<bool>{true, false, false, true, false, false, true}));
  EXPECT_EQ(counter.load(), 7u);
}

TEST(LogTest, ShouldLogEveryNSmallNAlwaysLogs) {
  std::atomic<std::uint64_t> ones{0};
  std::atomic<std::uint64_t> zeros{0};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(log_internal::ShouldLogEveryN(&ones, 1));
    EXPECT_TRUE(log_internal::ShouldLogEveryN(&zeros, 0));
  }
}

TEST(LogTest, LogEveryNMacroCompilesAndGates) {
  LogLevel old = GetLogLevel();
  // Below the active level the per-site counter must not even advance.
  SetLogLevel(LogLevel::kNone);
  for (int i = 0; i < 10; ++i) {
    AVA_LOG_EVERY_N(WARNING, 4) << "suppressed " << i;
  }
  // At an enabled level the macro emits (to stderr) without crashing and
  // dangles correctly as a statement inside unbraced control flow.
  SetLogLevel(LogLevel::kError);
  if (true)
    AVA_LOG_EVERY_N(ERROR, 1000000) << "rate-limited but first occurrence";
  else
    AVA_LOG(ERROR) << "never";
  SetLogLevel(old);
}

}  // namespace
}  // namespace ava
