// Live introspection plane, end-to-end: the admin channel served by a
// running router answers `metrics` / `sessions` / `account` / `flight`
// queries with live data while calls are in flight; the flight recorder's
// SIGSEGV handler writes a parseable post-mortem dump that contains the
// crashing call's exec-begin record; a transfer-cache miss resend is
// stitched to its original attempt under ONE trace id; and the metric
// registry survives register/retire churn from four threads concurrent
// with snapshot scrapes.
//
// Custom main: `introspect_test --crash-child` turns the binary into the
// crash victim (build a stack, install the handler, dispatch a call whose
// handler dereferences null) so the gtest parent can fork+exec itself.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/admin.h"
#include "src/obs/flight.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/trace_check.h"
#include "src/proto/marshal.h"
#include "src/proto/wire.h"
#include "src/router/router.h"
#include "src/runtime/guest_endpoint.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"
#include "src/vcl/silo.h"
#include "vcl_gen.h"

namespace ava {
namespace {

// The crash victim API: func kCrashFunc dereferences null mid-handler, so
// the flight ring holds its exec_begin with no matching exec_end.
constexpr std::uint16_t kCrashApi = 97;
constexpr std::uint32_t kCrashFunc = 77;

ApiHandler MakeCrashHandler() {
  return [](ServerContext*, std::uint32_t func_id, ByteReader*, bool,
            ByteWriter* reply) -> Status {
    if (func_id == kCrashFunc) {
      volatile int* null_pointer = nullptr;
      *null_pointer = 1;  // SIGSEGV on the dispatch thread
    }
    reply->PutU64(0);
    return OkStatus();
  };
}

struct GuestVm {
  std::shared_ptr<ApiServerSession> session;
  std::shared_ptr<GuestEndpoint> endpoint;
  ava_gen_vcl::VclApi api;
};

ChannelPair MustShm() {
  auto channel = MakeShmRingChannel(1u << 16);
  EXPECT_TRUE(channel.ok());
  return std::move(*channel);
}

// Minimal real-stack harness (mirrors the xfer-cache suite's shape).
class IntroStack {
 public:
  IntroStack() {
    vcl::ResetDefaultSilo({});
    router_ = std::make_unique<Router>();
    router_->Start();
  }
  ~IntroStack() {
    vms_.clear();
    router_->Stop();
  }

  GuestVm& AddVm(VmId vm_id, GuestEndpoint::Options opts = {},
                 const VmPolicy& policy = {}) {
    ChannelPair pair = MustShm();
    opts.vm_id = vm_id;
    if (opts.call_deadline_ms < 0) {
      opts.call_deadline_ms = 20000;
    }
    auto vm = std::make_unique<GuestVm>();
    vm->session = std::make_shared<ApiServerSession>(vm_id);
    vm->session->RegisterApi(ava_gen_vcl::kApiId,
                             ava_gen_vcl::MakeVclApiHandler());
    vm->session->RegisterApi(kCrashApi, MakeCrashHandler());
    EXPECT_TRUE(
        router_->AttachVm(vm_id, std::move(pair.host), vm->session, policy)
            .ok());
    vm->endpoint =
        std::make_shared<GuestEndpoint>(std::move(pair.guest), opts);
    vm->api = ava_gen_vcl::MakeVclGuestApi(vm->endpoint);
    vms_.push_back(std::move(vm));
    return *vms_.back();
  }

  Router& router() { return *router_; }

 private:
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<GuestVm>> vms_;
};

GuestEndpoint::Options CacheOpts() {
  GuestEndpoint::Options opts;
  opts.arena_threshold_bytes = 4096;
  opts.xfer_cache_min_bytes = 4096;
  return opts;
}

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 131 + seed);
  }
  return v;
}

std::string TempPath(const char* tag) {
  return std::string("/tmp/ava_introspect.") + tag + "." +
         std::to_string(::getpid());
}

// ---------------------------------------------------------------------------
// Tentpole acceptance: avactl's four verbs answer with LIVE data from a
// router under load — the stack keeps running before, during, and after
// every query.

TEST(AdminPlaneTest, LiveQueriesUnderLoad) {
  ASSERT_EQ(
      ::setenv("AVA_ADMIN_SOCK", (TempPath("admin") + ".sock").c_str(), 1),
      0);
  IntroStack stack;  // Router::Start serves the admin channel from the env
  ASSERT_TRUE(obs::AdminChannel::Default().serving());
  const std::string sock = obs::AdminChannel::Default().path();
  ASSERT_FALSE(sock.empty());
  GuestVm& vm = stack.AddVm(1);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> calls_done{0};
  std::thread load([&vm, &stop, &calls_done] {
    vcl_platform_id platform = nullptr;
    while (!stop.load(std::memory_order_relaxed)) {
      if (vm.api.vclGetPlatformIDs(1, &platform, nullptr) == VCL_SUCCESS) {
        calls_done.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Ensure real traffic has flowed before the first scrape.
  while (calls_done.load(std::memory_order_relaxed) < 100) {
    std::this_thread::yield();
  }

  auto ping = obs::AdminQuery(sock, "ping");
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ(*ping, "pong\n");

  // `account`: the ledger row for vm 1 shows forwarded calls and bytes.
  auto account = obs::AdminQuery(sock, "account");
  ASSERT_TRUE(account.ok()) << account.status().ToString();
  EXPECT_NE(account->find("vm calls ok cost_vns"), std::string::npos)
      << *account;
  EXPECT_NE(account->find("\n1 "), std::string::npos) << *account;
  EXPECT_NE(account->find("OK="), std::string::npos) << *account;

  // `metrics`: Prometheus text with router counters AND the ledger gauges
  // the `account` snapshot just refreshed.
  auto metrics = obs::AdminQuery(sock, "metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("ava_"), std::string::npos);
  EXPECT_NE(metrics->find("ava_ledger_vm1_calls"), std::string::npos)
      << metrics->substr(0, 2000);

  // `sessions`: vm 1 is running, with live queue/cache columns.
  auto sessions = obs::AdminQuery(sock, "sessions");
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  EXPECT_NE(sessions->find("vm state lanes"), std::string::npos) << *sessions;
  EXPECT_NE(sessions->find("\n1 running "), std::string::npos) << *sessions;

  // `flight`: the ring carries exec records for the forwarded calls.
  auto flight = obs::AdminQuery(sock, "flight");
  ASSERT_TRUE(flight.ok()) << flight.status().ToString();
  EXPECT_NE(flight->find("exec_begin"), std::string::npos);
  EXPECT_NE(flight->find("exec_end"), std::string::npos);

  const std::uint64_t before = calls_done.load(std::memory_order_relaxed);
  stop.store(true);
  load.join();
  // The stack survived every query and kept forwarding: still answerable
  // and the load made progress past the first scrape.
  EXPECT_GE(calls_done.load(std::memory_order_relaxed), before);
  vcl_platform_id platform = nullptr;
  EXPECT_EQ(vm.api.vclGetPlatformIDs(1, &platform, nullptr), VCL_SUCCESS);
  ASSERT_TRUE(obs::AdminQuery(sock, "ping").ok());
  ::unsetenv("AVA_ADMIN_SOCK");
}

#ifdef AVA_AVACTL_PATH
// The real avactl binary (not just its AdminQuery library path) against a
// live router: `sessions` over the env-configured socket, `flight` decode
// of a binary dump, and the usage error path.
TEST(AdminPlaneTest, AvactlBinaryTalksToLiveRouter) {
  ASSERT_EQ(
      ::setenv("AVA_ADMIN_SOCK", (TempPath("avactl") + ".sock").c_str(), 1),
      0);
  IntroStack stack;
  ASSERT_TRUE(obs::AdminChannel::Default().serving());
  // The default channel is a leaked singleton: when several tests run in
  // one process it keeps the FIRST path it ever bound, so ask it.
  const std::string sock = obs::AdminChannel::Default().path();
  ASSERT_FALSE(sock.empty());
  GuestVm& vm = stack.AddVm(2);
  vcl_platform_id platform = nullptr;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(vm.api.vclGetPlatformIDs(1, &platform, nullptr), VCL_SUCCESS);
  }

  const std::string cmd =
      std::string(AVA_AVACTL_PATH) + " -s " + sock + " sessions 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string out;
  char chunk[512];
  while (std::fgets(chunk, sizeof(chunk), pipe) != nullptr) {
    out += chunk;
  }
  EXPECT_EQ(::pclose(pipe), 0) << out;
  EXPECT_NE(out.find("vm state lanes"), std::string::npos) << out;
  EXPECT_NE(out.find("\n2 running "), std::string::npos) << out;

  // `avactl flight <dump.bin>` decodes a binary dump offline.
  const std::string dump = TempPath("avactl_dump") + ".bin";
  {
    std::FILE* f = std::fopen(dump.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(obs::FlightRecorder::Default().DumpToFd(fileno(f)));
    std::fclose(f);
  }
  const std::string decode_cmd =
      std::string(AVA_AVACTL_PATH) + " flight " + dump + " 2>&1";
  pipe = ::popen(decode_cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  out.clear();
  while (std::fgets(chunk, sizeof(chunk), pipe) != nullptr) {
    out += chunk;
  }
  EXPECT_EQ(::pclose(pipe), 0) << out;
  EXPECT_NE(out.find("flight recorder"), std::string::npos) << out;
  EXPECT_NE(out.find("exec_begin"), std::string::npos) << out;
  ::unlink(dump.c_str());

  // No subcommand: usage on stderr, exit 2.
  const std::string usage_cmd = std::string(AVA_AVACTL_PATH) + " 2>/dev/null";
  pipe = ::popen(usage_cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  while (std::fgets(chunk, sizeof(chunk), pipe) != nullptr) {
  }
  const int usage_status = ::pclose(pipe);
  EXPECT_TRUE(WIFEXITED(usage_status) && WEXITSTATUS(usage_status) == 2);
  ::unsetenv("AVA_ADMIN_SOCK");
}
#endif  // AVA_AVACTL_PATH

TEST(AdminPlaneTest, AccountLedgerChargesCostAndCacheSavings) {
  IntroStack stack;
  GuestVm& vm = stack.AddVm(5, CacheOpts());
  constexpr std::size_t kBytes = 64u << 10;
  const auto payload = Pattern(kBytes, 11);

  // Graduate the payload to a descriptor send (sighting, install, hit).
  vcl_platform_id platform = nullptr;
  ASSERT_EQ(vm.api.vclGetPlatformIDs(1, &platform, nullptr), VCL_SUCCESS);
  vcl_device_id device = nullptr;
  ASSERT_EQ(
      vm.api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1, &device,
                             nullptr),
      VCL_SUCCESS);
  vcl_int err = VCL_SUCCESS;
  vcl_context ctx = vm.api.vclCreateContext(&device, 1, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  vcl_command_queue queue = vm.api.vclCreateCommandQueue(ctx, device, 0, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  vcl_mem mem =
      vm.api.vclCreateBuffer(ctx, VCL_MEM_READ_WRITE, kBytes, nullptr, &err);
  ASSERT_EQ(err, VCL_SUCCESS);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, kBytes,
                                           payload.data(), 0, nullptr,
                                           nullptr),
              VCL_SUCCESS);
  }
  ASSERT_EQ(vm.endpoint->xfer_hits(), 1u);

  auto account = stack.router().ledger().AccountFor(5);
  const obs::VmAccountSnapshot snap = account->Snapshot();
  EXPECT_GT(snap.calls, 0u);
  EXPECT_EQ(snap.calls, snap.ok_calls);
  EXPECT_GT(snap.cost_vns, 0u);
  // The two inline sends crossed the wire; the third (descriptor hit) was
  // charged as cached bytes instead.
  EXPECT_GT(snap.wire_bytes, 2 * kBytes);
  EXPECT_GE(snap.cached_bytes, kBytes);
  EXPECT_EQ(snap.status_counts[0], snap.calls);

  vm.api.vclReleaseMemObject(mem);
  vm.api.vclReleaseCommandQueue(queue);
  vm.api.vclReleaseContext(ctx);
}

// ---------------------------------------------------------------------------
// Satellite: a kCacheMiss splice-and-resend is the SAME logical call — the
// resent attempt reuses the original trace id and marks itself retry=1, and
// the trace checker can stitch the two server executions together.

TEST(TraceRetryTest, CacheMissResendKeepsTraceIdAndMarksRetry) {
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.EnableForTest();  // before the stack: endpoints sample at ctor
  tracer.Clear();
  {
    IntroStack stack;
    GuestVm& vm = stack.AddVm(1, CacheOpts());
    constexpr std::size_t kBytes = 64u << 10;
    const auto payload = Pattern(kBytes, 3);
    vcl_platform_id platform = nullptr;
    ASSERT_EQ(vm.api.vclGetPlatformIDs(1, &platform, nullptr), VCL_SUCCESS);
    vcl_device_id device = nullptr;
    ASSERT_EQ(vm.api.vclGetDeviceIDs(platform, VCL_DEVICE_TYPE_GPU, 1,
                                     &device, nullptr),
              VCL_SUCCESS);
    vcl_int err = VCL_SUCCESS;
    vcl_context ctx = vm.api.vclCreateContext(&device, 1, &err);
    ASSERT_EQ(err, VCL_SUCCESS);
    vcl_command_queue queue =
        vm.api.vclCreateCommandQueue(ctx, device, 0, &err);
    ASSERT_EQ(err, VCL_SUCCESS);
    vcl_mem mem = vm.api.vclCreateBuffer(ctx, VCL_MEM_READ_WRITE, kBytes,
                                         nullptr, &err);
    ASSERT_EQ(err, VCL_SUCCESS);
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, kBytes,
                                             payload.data(), 0, nullptr,
                                             nullptr),
                VCL_SUCCESS);
    }
    ASSERT_EQ(vm.endpoint->xfer_hits(), 1u);

    // Wipe the server cache behind the guest's back: the next descriptor
    // send comes back kCacheMiss and is spliced + resent transparently.
    vm.session->context().xfer_cache().Clear();
    ASSERT_EQ(vm.api.vclEnqueueWriteBuffer(queue, mem, VCL_TRUE, 0, kBytes,
                                           payload.data(), 0, nullptr,
                                           nullptr),
              VCL_SUCCESS);
    ASSERT_EQ(vm.endpoint->xfer_miss_retries(), 1u);
    vm.api.vclReleaseMemObject(mem);
    vm.api.vclReleaseCommandQueue(queue);
    vm.api.vclReleaseContext(ctx);
  }

  auto report = obs::CheckChromeTrace(tracer.SerializeJson(), /*min_hops=*/5);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The miss attempt recorded a retry=0 span, the resend a retry=1 span,
  // and both server executions carry the one trace id: stitched, not
  // disconnected.
  EXPECT_GE(report->retried_spans, 1u);
  EXPECT_GE(report->linked_retries, 1u);
  tracer.Clear();
}

// ---------------------------------------------------------------------------
// Satellite: registry churn — cells registering and retiring from four
// threads while a scraper loops Snapshot()/PrometheusText(). Run under TSan
// via the fault label; here we also assert ordering invariants hold on
// every mid-churn snapshot and retired totals survive.

TEST(RegistryChurnTest, SnapshotStaysSortedDuringRegisterRetireStorm) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> churned{0};
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([t, &stop, &churned] {
      std::uint64_t i = 0;
      const std::string base = "churn.t" + std::to_string(t) + ".";
      while (!stop.load(std::memory_order_relaxed)) {
        auto counter =
            obs::NewCounter(base + "c" + std::to_string(i & 7));
        counter->Increment();
        auto gauge = obs::NewGauge(base + "g" + std::to_string(i & 7));
        gauge->Set(static_cast<std::int64_t>(i));
        auto histogram =
            obs::NewHistogram(base + "h" + std::to_string(i & 7));
        histogram->Record(static_cast<std::int64_t>(i & 1023));
        ++i;  // all three cells retire here, folding into the registry
        churned.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // An anchor cell (outside the churn.* namespace counted below) plus a
  // wait for the first churn iteration: the scrape loop must observe a
  // non-empty registry even if it wins the race against thread startup.
  auto anchor = obs::NewCounter("churn_anchor.scraper");
  anchor->Increment();
  while (churned.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  std::size_t scrapes = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const obs::MetricsSnapshot snap =
        obs::MetricRegistry::Default().Snapshot();
    EXPECT_TRUE(std::is_sorted(
        snap.entries.begin(), snap.entries.end(),
        [](const obs::MetricsSnapshot::Entry& x,
           const obs::MetricsSnapshot::Entry& y) { return x.name < y.name; }));
    const std::string prom = snap.PrometheusText();
    EXPECT_FALSE(prom.empty());
    ++scrapes;
  }
  stop.store(true);
  for (auto& thread : churners) {
    thread.join();
  }
  EXPECT_GT(scrapes, 0u);
  EXPECT_GT(churned.load(), 0u);

  // Retired cells folded: every churned counter increment is still counted.
  std::uint64_t total = 0;
  const obs::MetricsSnapshot snap = obs::MetricRegistry::Default().Snapshot();
  for (const obs::MetricsSnapshot::Entry& entry : snap.entries) {
    if (entry.name.rfind("churn.", 0) == 0 && entry.has_counter) {
      total += entry.counter_sum;
    }
  }
  EXPECT_EQ(total, churned.load());
}

// ---------------------------------------------------------------------------
// Crash acceptance: a SIGSEGV mid-handler produces a parseable flight dump
// that contains the crashing call's exec_begin — and no exec_end for it.

TEST(FlightCrashTest, SigsegvChildWritesParseableDumpWithCrashingCall) {
  const std::string dump = TempPath("crash") + ".bin";
  ::unlink(dump.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("AVA_FLIGHT_DUMP", dump.c_str(), 1);
    ::unsetenv("AVA_ADMIN_SOCK");
    ::unsetenv("AVA_TRACE");
    struct rlimit no_core {0, 0};
    ::setrlimit(RLIMIT_CORE, &no_core);  // the dump is the artifact we want
    ::execl("/proc/self/exe", "introspect_test", "--crash-child",
            static_cast<char*>(nullptr));
    ::_exit(99);  // exec failed
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  // The handler re-raises with default disposition, so the child dies by
  // SIGSEGV (sanitizer builds may intercept and exit non-zero instead —
  // either way it must NOT look like success).
  EXPECT_FALSE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  if (WIFSIGNALED(status)) {
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  }

  std::ifstream in(dump, std::ios::binary);
  ASSERT_TRUE(in.good()) << "crash handler wrote no dump at " << dump;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  std::vector<obs::FlightRecord> records;
  ASSERT_TRUE(obs::ParseFlightDump(bytes, &records));
  ASSERT_FALSE(records.empty());

  const std::uint64_t crash_sig =
      (std::uint64_t{kCrashApi} << 32) | kCrashFunc;
  bool begin_found = false;
  for (const obs::FlightRecord& r : records) {
    if (r.arg == crash_sig &&
        r.kind == static_cast<std::uint16_t>(obs::FlightKind::kExecBegin)) {
      begin_found = true;
      EXPECT_EQ(r.vm_id, 1u);
      EXPECT_NE(r.call_id, 0u);
    }
  }
  EXPECT_TRUE(begin_found)
      << "dump lacks the crashing call's exec_begin:\n"
      << obs::RenderFlightRecords(records);

  // The crashing call never completed: walking backwards, the newest
  // exec_begin is the crash signature and no exec_end comes after it.
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->kind == static_cast<std::uint16_t>(obs::FlightKind::kExecEnd)) {
      ADD_FAILURE() << "exec_end recorded after the crashing exec_begin:\n"
                    << obs::RenderFlightRecords(records);
      break;
    }
    if (it->kind ==
        static_cast<std::uint16_t>(obs::FlightKind::kExecBegin)) {
      EXPECT_EQ(it->arg, crash_sig);
      break;
    }
  }
  ::unlink(dump.c_str());
}

}  // namespace

// --crash-child: the victim half of FlightCrashTest. Outside the anonymous
// namespace so main() below can reach it.
int RunCrashChild() {
  obs::InstallCrashHandler();
  vcl::ResetDefaultSilo({});
  Router router;
  router.Start();
  auto session = std::make_shared<ApiServerSession>(1);
  session->RegisterApi(ava_gen_vcl::kApiId, ava_gen_vcl::MakeVclApiHandler());
  session->RegisterApi(kCrashApi, MakeCrashHandler());
  auto pair = MakeShmRingChannel(1u << 16);
  if (!pair.ok()) {
    return 3;
  }
  if (!router.AttachVm(1, std::move(pair->host), session, {}).ok()) {
    return 3;
  }
  GuestEndpoint::Options opts;
  opts.vm_id = 1;
  opts.call_deadline_ms = 20000;
  auto endpoint =
      std::make_shared<GuestEndpoint>(std::move(pair->guest), opts);

  // A few healthy calls first so the ring holds begin/end pairs before the
  // fatal one.
  for (int i = 0; i < 4; ++i) {
    ByteWriter w = BeginCall(kCrashApi, /*func_id=*/1);
    if (!endpoint->CallSyncPrepared(std::move(w).TakeBytes()).ok()) {
      return 3;
    }
  }
  ByteWriter w = BeginCall(kCrashApi, kCrashFunc);
  (void)endpoint->CallSyncPrepared(std::move(w).TakeBytes());
  return 4;  // the dispatch above must never return
}

}  // namespace ava

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--crash-child") == 0) {
    return ava::RunCrashChild();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
