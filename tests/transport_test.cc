// Transport tests: instantiates the shared TransportConformance fixture
// (tests/transport_conformance.h) for every transport — in-process channel,
// shared-memory byte ring, socket pair, SQ/CQ record ring, and a
// faulty-wrapped ring (the decorator must preserve the full contract when
// no faults are enabled) — plus cross-fork, readiness, and shm-specific
// wrap-around tests that don't generalize.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/router/event_loop.h"
#include "src/transport/faulty.h"
#include "src/transport/sqcq_ring.h"
#include "src/transport/transport.h"
#include "tests/transport_conformance.h"

namespace ava {
namespace {

using conformance::ChannelFactory;
using conformance::MakeMessage;
using conformance::TransportParam;
using conformance::TransportConformance;

ChannelPair MustShm() {
  auto c = MakeShmRingChannel(1u << 16);
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

ChannelPair MustSocket() {
  auto c = MakeSocketPairChannel();
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

ChannelPair MustSqcq() {
  // Small ring (64 slots) so conformance traffic laps the index space many
  // times; the defaults are exercised by the bench/router paths.
  SqcqConfig config;
  config.depth = 64;
  config.slot_bytes = 256;
  auto c = MakeSqcqChannel(config);
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

// The fault decorator with an all-zero spec must be a perfect pass-through:
// wrapping the SQ/CQ ring also proves batch reaping survives decoration.
ChannelPair MustFaultySqcq() {
  ChannelPair inner = MustSqcq();
  FaultSpec spec;
  ChannelPair wrapped;
  wrapped.guest = MakeFaultyTransport(std::move(inner.guest), spec);
  wrapped.host = MakeFaultyTransport(std::move(inner.host), spec);
  return wrapped;
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportConformance,
    ::testing::Values(
        TransportParam{"inproc", ChannelFactory([] {
                         return MakeInProcChannel(64);
                       }),
                       /*expect_arena=*/false},
        TransportParam{"shm_ring", ChannelFactory(&MustShm),
                       /*expect_arena=*/true},
        TransportParam{"socketpair", ChannelFactory(&MustSocket),
                       /*expect_arena=*/false},
        TransportParam{"sqcq", ChannelFactory(&MustSqcq),
                       /*expect_arena=*/true},
        TransportParam{"faulty_sqcq", ChannelFactory(&MustFaultySqcq),
                       /*expect_arena=*/true}),
    [](const ::testing::TestParamInfo<TransportConformance::ParamType>& info) {
      return info.param.name;
    });

// Fork-based test: the shm ring works across processes (the VM boundary).
TEST(ShmRingForkTest, CrossProcessRoundTrip) {
  auto channel = MakeShmRingChannel(1u << 14);
  ASSERT_TRUE(channel.ok());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child = guest: send 50 messages, expect doubled replies.
    for (int i = 0; i < 50; ++i) {
      Bytes m = MakeMessage(100 + i, static_cast<std::uint8_t>(i));
      if (!channel->guest->Send(m).ok()) {
        _exit(1);
      }
      auto reply = channel->guest->Recv();
      if (!reply.ok() || reply->size() != m.size() * 2) {
        _exit(2);
      }
    }
    _exit(0);
  }
  for (int i = 0; i < 50; ++i) {
    auto got = channel->host->Recv();
    ASSERT_TRUE(got.ok());
    Bytes doubled(got->size() * 2);
    ASSERT_TRUE(channel->host->Send(doubled).ok());
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// Same lifecycle for the record ring: the mapping, slot sequence protocol,
// and doorbells all survive fork() (pair created first, then split).
TEST(SqcqForkTest, CrossProcessRoundTrip) {
  SqcqConfig config;
  config.depth = 32;
  config.slot_bytes = 128;
  auto channel = MakeSqcqChannel(config);
  ASSERT_TRUE(channel.ok());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    for (int i = 0; i < 50; ++i) {
      Bytes m = MakeMessage(100 + i, static_cast<std::uint8_t>(i));
      if (!channel->guest->Send(m).ok()) {
        _exit(1);
      }
      auto reply = channel->guest->Recv();
      if (!reply.ok() || reply->size() != m.size() * 2) {
        _exit(2);
      }
    }
    _exit(0);
  }
  for (int i = 0; i < 50; ++i) {
    auto got = channel->host->Recv();
    ASSERT_TRUE(got.ok());
    Bytes doubled(got->size() * 2);
    ASSERT_TRUE(channel->host->Send(doubled).ok());
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(SocketPairForkTest, CrossProcessRoundTrip) {
  auto channel = MakeSocketPairChannel();
  ASSERT_TRUE(channel.ok());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Bytes m = MakeMessage(4096, 3);
    _exit(channel->guest->Send(m).ok() && channel->guest->Recv().ok() ? 0 : 1);
  }
  auto got = channel->host->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 4096u);
  ASSERT_TRUE(channel->host->Send(*got).ok());
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// Property test: random message sizes survive the shm ring byte-exactly,
// including sizes around the ring capacity (wrap-around paths).
TEST(ShmRingPropertyTest, RandomSizesRoundTrip) {
  auto channel = MakeShmRingChannel(4096);
  ASSERT_TRUE(channel.ok());
  Rng rng(7);
  std::vector<Bytes> sent;
  for (int i = 0; i < 100; ++i) {
    sent.push_back(MakeMessage(rng.NextBelow(10000),
                               static_cast<std::uint8_t>(rng.NextU64())));
  }
  std::thread sender([&] {
    for (const auto& m : sent) {
      ASSERT_TRUE(channel->guest->Send(m).ok());
    }
  });
  for (const auto& m : sent) {
    auto got = channel->host->Recv();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, m);
  }
  sender.join();
}

// ---------------------------------------------------------------------------
// Readiness contract: the event-driven router front end multiplexes every
// transport that exposes a readiness fd (socket fd, shm doorbell, sqcq
// doorbell) on one epoll loop and drains it with AckReadiness + TryRecv.
// These tests pin the behaviors that loop depends on: a spurious wakeup
// drains cleanly to NotFound, and a dead peer surfaces through the loop so
// the fd can be reaped.

class ReadinessContractTest
    : public ::testing::TestWithParam<std::pair<const char*, ChannelFactory>> {
 protected:
  ChannelPair MakeChannel() { return GetParam().second(); }
};

// Waits until the loop reports `token` readable (several Wait rounds are
// legal: readiness may be ack'd and re-raised).
bool WaitForToken(EventLoop* loop, std::uint64_t token, int rounds = 50) {
  for (int i = 0; i < rounds; ++i) {
    for (const auto& event : loop->Wait(100)) {
      if (event.token == token) {
        return true;
      }
    }
  }
  return false;
}

TEST_P(ReadinessContractTest, SpuriousWakeupDrainsToNotFound) {
  ChannelPair channel = MakeChannel();
  ASSERT_GE(channel.host->readiness_fd(), 0);
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  ASSERT_TRUE((*loop)->Add(channel.host->readiness_fd(), 7).ok());

  // Nothing pending: the level-triggered drain protocol must land on
  // NotFound, not block or fabricate a message.
  channel.host->AckReadiness();
  auto nothing = channel.host->TryRecv();
  ASSERT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.status().code(), StatusCode::kNotFound);

  // A real arrival raises readiness; the drain yields exactly one message
  // and then NotFound again — the extra TryRecv after the queue empties is
  // the everyday "spurious" case the loop must absorb.
  Bytes m = MakeMessage(512, 5);
  ASSERT_TRUE(channel.guest->Send(m).ok());
  ASSERT_TRUE(WaitForToken(loop->get(), 7));
  channel.host->AckReadiness();
  auto got = channel.host->TryRecv();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, m);
  auto empty = channel.host->TryRecv();
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kNotFound);
  (*loop)->Remove(channel.host->readiness_fd());
}

TEST_P(ReadinessContractTest, DeadPeerSurfacesThroughEventLoop) {
  ChannelPair channel = MakeChannel();
  ASSERT_GE(channel.host->readiness_fd(), 0);
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  ASSERT_TRUE((*loop)->Add(channel.host->readiness_fd(), 9).ok());

  channel.guest->Close();
  // The close must wake the loop (EOF readability or doorbell), and the
  // drain must classify the channel as gone so the router reaps the fd.
  ASSERT_TRUE(WaitForToken(loop->get(), 9));
  channel.host->AckReadiness();
  Status dead = OkStatus();
  for (int i = 0; i < 50; ++i) {
    auto got = channel.host->TryRecv();
    if (!got.ok() && got.status().code() != StatusCode::kNotFound) {
      dead = got.status();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(dead.code(), StatusCode::kUnavailable) << dead.ToString();
  (*loop)->Remove(channel.host->readiness_fd());
  // After the reap, the loop must go quiet: no stale events for the token.
  for (const auto& event : (*loop)->Wait(20)) {
    EXPECT_NE(event.token, 9u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ReadinessTransports, ReadinessContractTest,
    ::testing::Values(
        std::make_pair("shm_ring",
                       ChannelFactory([] {
                         auto c = MakeShmRingChannel(1u << 16);
                         EXPECT_TRUE(c.ok());
                         return std::move(*c);
                       })),
        std::make_pair("socketpair",
                       ChannelFactory([] {
                         auto c = MakeSocketPairChannel();
                         EXPECT_TRUE(c.ok());
                         return std::move(*c);
                       })),
        std::make_pair("sqcq", ChannelFactory([] {
                         auto c = MakeSqcqChannel();
                         EXPECT_TRUE(c.ok());
                         return std::move(*c);
                       }))),
    [](const ::testing::TestParamInfo<ReadinessContractTest::ParamType>&
           info) { return std::string(info.param.first); });

// A frame that arrives in pieces must park as partial state and complete
// once the rest lands — never block the loop, never tear the message. Raw
// fd writes simulate a slow sender mid-frame.
TEST(ReadinessPartialFrameTest, PartialFrameParksThenCompletes) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  TransportPtr host = MakeSocketTransportFromFd(fds[0], "test-host");
  ASSERT_NE(host, nullptr);
  ASSERT_GE(host->readiness_fd(), 0);

  Bytes m = MakeMessage(1024, 9);
  const std::uint32_t len = static_cast<std::uint32_t>(m.size());
  // Length prefix plus the first half of the body.
  ASSERT_EQ(write(fds[1], &len, sizeof(len)),
            static_cast<ssize_t>(sizeof(len)));
  ASSERT_EQ(write(fds[1], m.data(), 512), 512);

  host->AckReadiness();
  auto partial = host->TryRecv();
  ASSERT_FALSE(partial.ok());
  EXPECT_EQ(partial.status().code(), StatusCode::kNotFound)
      << "partial frame must park, not error: "
      << partial.status().ToString();

  // The rest arrives; the parked frame completes byte-exact.
  ASSERT_EQ(write(fds[1], m.data() + 512, 512), 512);
  auto got = host->TryRecv();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, m);

  // And a mid-length-prefix split parks too (the hardest boundary).
  Bytes m2 = MakeMessage(64, 17);
  const std::uint32_t len2 = static_cast<std::uint32_t>(m2.size());
  ASSERT_EQ(write(fds[1], &len2, 2), 2);
  auto half_prefix = host->TryRecv();
  ASSERT_FALSE(half_prefix.ok());
  EXPECT_EQ(half_prefix.status().code(), StatusCode::kNotFound);
  ASSERT_EQ(write(fds[1], reinterpret_cast<const char*>(&len2) + 2, 2), 2);
  ASSERT_EQ(write(fds[1], m2.data(), m2.size()),
            static_cast<ssize_t>(m2.size()));
  auto got2 = host->TryRecv();
  ASSERT_TRUE(got2.ok()) << got2.status().ToString();
  EXPECT_EQ(*got2, m2);
  close(fds[1]);
}

}  // namespace
}  // namespace ava
