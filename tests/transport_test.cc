// Transport conformance suite: one parameterized fixture run against every
// pluggable transport (in-process channel, shared-memory ring, socket pair),
// plus shm-specific cross-fork and wrap-around tests. All transports must
// satisfy the same contract: ordered, length-delimited, duplex message
// delivery; clean timeout/close semantics; and agreement between the two
// endpoints on the negotiated bulk-buffer arena capability.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/router/event_loop.h"
#include "src/transport/transport.h"

namespace ava {
namespace {

Bytes MakeMessage(std::size_t size, std::uint8_t seed) {
  Bytes m(size);
  for (std::size_t i = 0; i < size; ++i) {
    m[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return m;
}

using ChannelFactory = std::function<ChannelPair()>;

class TransportContractTest
    : public ::testing::TestWithParam<std::pair<const char*, ChannelFactory>> {
 protected:
  ChannelPair MakeChannel() { return GetParam().second(); }
};

TEST_P(TransportContractTest, PingPong) {
  ChannelPair channel = MakeChannel();
  Bytes ping = MakeMessage(64, 1);
  ASSERT_TRUE(channel.guest->Send(ping).ok());
  auto got = channel.host->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, ping);
  Bytes pong = MakeMessage(32, 9);
  ASSERT_TRUE(channel.host->Send(pong).ok());
  auto got2 = channel.guest->Recv();
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(*got2, pong);
}

TEST_P(TransportContractTest, PreservesOrderAndContent) {
  ChannelPair channel = MakeChannel();
  constexpr int kCount = 200;
  std::thread sender([&] {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(
          channel.guest->Send(MakeMessage(1 + (i * 7) % 512,
                                          static_cast<std::uint8_t>(i)))
              .ok());
    }
  });
  for (int i = 0; i < kCount; ++i) {
    auto got = channel.host->Recv();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, MakeMessage(1 + (i * 7) % 512,
                                static_cast<std::uint8_t>(i)));
  }
  sender.join();
}

TEST_P(TransportContractTest, EmptyMessage) {
  ChannelPair channel = MakeChannel();
  ASSERT_TRUE(channel.guest->Send({}).ok());
  auto got = channel.host->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_P(TransportContractTest, LargeMessageStreamsThrough) {
  ChannelPair channel = MakeChannel();
  Bytes big = MakeMessage(3u << 20, 42);  // 3 MiB > shm ring size
  std::thread sender([&] { ASSERT_TRUE(channel.guest->Send(big).ok()); });
  auto got = channel.host->Recv();
  sender.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
}

TEST_P(TransportContractTest, TryRecvNonBlocking) {
  ChannelPair channel = MakeChannel();
  auto nothing = channel.host->TryRecv();
  EXPECT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(channel.guest->Send(MakeMessage(16, 5)).ok());
  // May need a beat on socket transports.
  for (int i = 0; i < 1000; ++i) {
    auto got = channel.host->TryRecv();
    if (got.ok()) {
      EXPECT_EQ(*got, MakeMessage(16, 5));
      return;
    }
    usleep(1000);
  }
  FAIL() << "message never became available";
}

TEST_P(TransportContractTest, CloseWakesReceiver) {
  ChannelPair channel = MakeChannel();
  std::thread closer([&] {
    usleep(20000);
    channel.guest->Close();
  });
  auto got = channel.host->Recv();
  closer.join();
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST_P(TransportContractTest, ConcurrentSendersDoNotInterleave) {
  ChannelPair channel = MakeChannel();
  constexpr int kPerSender = 50;
  auto send_loop = [&](std::uint8_t seed) {
    for (int i = 0; i < kPerSender; ++i) {
      ASSERT_TRUE(channel.guest->Send(MakeMessage(128, seed)).ok());
    }
  };
  std::thread t1(send_loop, 11);
  std::thread t2(send_loop, 77);
  int seen11 = 0, seen77 = 0;
  for (int i = 0; i < 2 * kPerSender; ++i) {
    auto got = channel.host->Recv();
    ASSERT_TRUE(got.ok());
    if (*got == MakeMessage(128, 11)) {
      ++seen11;
    } else if (*got == MakeMessage(128, 77)) {
      ++seen77;
    } else {
      FAIL() << "corrupted message " << i;
    }
  }
  t1.join();
  t2.join();
  EXPECT_EQ(seen11, kPerSender);
  EXPECT_EQ(seen77, kPerSender);
}

TEST_P(TransportContractTest, RecvTimeoutExpiresCleanlyThenDelivers) {
  ChannelPair channel = MakeChannel();
  const auto t0 = std::chrono::steady_clock::now();
  auto got = channel.host->RecvTimeout(50LL * 1000000);  // 50 ms
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
  // A clean timeout (no frame bytes consumed) must not poison the channel:
  // the next message still comes through intact.
  ASSERT_TRUE(channel.guest->Send(MakeMessage(64, 5)).ok());
  got = channel.host->RecvTimeout(2000LL * 1000000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, MakeMessage(64, 5));
}

TEST_P(TransportContractTest, RecvTimeoutReturnsPendingImmediately) {
  ChannelPair channel = MakeChannel();
  ASSERT_TRUE(channel.guest->Send(MakeMessage(128, 9)).ok());
  auto got = channel.host->RecvTimeout(5000LL * 1000000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, MakeMessage(128, 9));
}

TEST_P(TransportContractTest, RecvTimeoutZeroBudgetExpiresImmediately) {
  ChannelPair channel = MakeChannel();
  auto got = channel.host->RecvTimeout(0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_P(TransportContractTest, RecvTimeoutOnClosedChannelUnavailable) {
  ChannelPair channel = MakeChannel();
  channel.guest->Close();
  auto got = channel.host->RecvTimeout(2000LL * 1000000);
  ASSERT_FALSE(got.ok());
  // Closed beats expired: a dead channel is Unavailable, not a timeout.
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST_P(TransportContractTest, RecvTimeoutDrainsBeforeReportingClosed) {
  ChannelPair channel = MakeChannel();
  ASSERT_TRUE(channel.guest->Send(MakeMessage(32, 2)).ok());
  channel.guest->Close();
  auto got = channel.host->RecvTimeout(2000LL * 1000000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, MakeMessage(32, 2));
  got = channel.host->RecvTimeout(2000LL * 1000000);
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

// ---- Close/shutdown audit (regression tests for the PR's close fixes) ----

TEST_P(TransportContractTest, PeerCloseWakesSenderBlockedOnFullChannel) {
  ChannelPair channel = MakeChannel();
  std::atomic<bool> send_failed{false};
  std::thread sender([&] {
    // Far more data than any transport buffers: the sender must block, and
    // the peer's Close() must wake it with a failure rather than leave it
    // wedged forever.
    for (int i = 0; i < 100000; ++i) {
      if (!channel.guest->Send(MakeMessage(1024, 1)).ok()) {
        send_failed = true;
        return;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  channel.host->Close();
  sender.join();
  EXPECT_TRUE(send_failed.load());
}

TEST_P(TransportContractTest, ConcurrentAndDoubleCloseDuringRecvIsSafe) {
  ChannelPair channel = MakeChannel();
  std::thread receiver([&] {
    auto got = channel.host->Recv();
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Two threads race to close the endpoint the receiver is blocked on; each
  // closes twice. Must neither crash, double-free, nor strand the receiver.
  std::thread closer1([&] {
    channel.host->Close();
    channel.host->Close();
  });
  std::thread closer2([&] {
    channel.host->Close();
    channel.host->Close();
  });
  closer1.join();
  closer2.join();
  receiver.join();
  // The already-closed endpoint stays in a terminal, non-blocking state.
  EXPECT_FALSE(channel.host->Recv().ok());
  EXPECT_FALSE(channel.guest->Send({1}).ok());
}

TEST_P(TransportContractTest, SendAfterOwnCloseFailsCleanly) {
  ChannelPair channel = MakeChannel();
  channel.guest->Close();
  auto status = channel.guest->Send(MakeMessage(8, 4));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

// Messages sized right around the shm ring's capacity (the factories below
// use a 64 KiB ring): one byte under, exactly at, one byte over, and a
// multiple — every wrap/streaming seam. For the non-ring transports these
// are simply large messages; the contract is identical.
TEST_P(TransportContractTest, BoundarySizedMessagesSweepTheRingSeam) {
  ChannelPair channel = MakeChannel();
  constexpr std::size_t kCap = 1u << 16;
  const std::size_t sizes[] = {kCap - 65, kCap - 1,  kCap,
                               kCap + 1,  kCap + 63, 2 * kCap + 5};
  std::thread sender([&] {
    std::uint8_t seed = 0;
    for (std::size_t size : sizes) {
      ASSERT_TRUE(channel.guest->Send(MakeMessage(size, ++seed)).ok());
    }
  });
  std::uint8_t seed = 0;
  for (std::size_t size : sizes) {
    auto got = channel.host->Recv();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, MakeMessage(size, ++seed)) << "size " << size;
  }
  sender.join();
}

// Odd-sized messages march the ring's write offset through every alignment
// (977 is prime, so offsets mod any power-of-two capacity cycle through all
// residues), catching header-split and payload-split wrap bugs.
TEST_P(TransportContractTest, OddSizedStreamWrapsAtEveryOffset) {
  ChannelPair channel = MakeChannel();
  constexpr int kCount = 300;
  constexpr std::size_t kSize = 977;
  std::thread sender([&] {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(
          channel.guest->Send(MakeMessage(kSize, static_cast<std::uint8_t>(i)))
              .ok());
    }
  });
  for (int i = 0; i < kCount; ++i) {
    auto got = channel.host->Recv();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, MakeMessage(kSize, static_cast<std::uint8_t>(i)));
  }
  sender.join();
}

// Full duplex: both directions stream concurrently without cross-talk (the
// guest's TX ring is the host's RX ring and vice versa — a shared-cursor bug
// would corrupt one direction under simultaneous load).
TEST_P(TransportContractTest, FullDuplexConcurrentTraffic) {
  ChannelPair channel = MakeChannel();
  constexpr int kCount = 150;
  auto pump = [&](Transport* tx, std::uint8_t seed) {
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(
          tx->Send(MakeMessage(64 + i, static_cast<std::uint8_t>(seed + i)))
              .ok());
    }
  };
  auto drain = [&](Transport* rx, std::uint8_t seed) {
    for (int i = 0; i < kCount; ++i) {
      auto got = rx->Recv();
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got,
                MakeMessage(64 + i, static_cast<std::uint8_t>(seed + i)));
    }
  };
  std::thread guest_tx(pump, channel.guest.get(), 1);
  std::thread host_tx(pump, channel.host.get(), 101);
  std::thread guest_rx(drain, channel.guest.get(), 101);
  drain(channel.host.get(), 1);
  guest_tx.join();
  host_tx.join();
  guest_rx.join();
}

// Zero-length sends interleaved with data: empties are real messages with
// their own place in the order, not dropped or merged.
TEST_P(TransportContractTest, ZeroLengthInterleavedWithData) {
  ChannelPair channel = MakeChannel();
  constexpr int kPairs = 30;
  std::thread sender([&] {
    for (int i = 0; i < kPairs; ++i) {
      ASSERT_TRUE(channel.guest->Send({}).ok());
      ASSERT_TRUE(
          channel.guest->Send(MakeMessage(40, static_cast<std::uint8_t>(i)))
              .ok());
    }
  });
  for (int i = 0; i < kPairs; ++i) {
    auto empty = channel.host->Recv();
    ASSERT_TRUE(empty.ok());
    EXPECT_TRUE(empty->empty());
    auto data = channel.host->Recv();
    ASSERT_TRUE(data.ok());
    ASSERT_EQ(*data, MakeMessage(40, static_cast<std::uint8_t>(i)));
  }
  sender.join();
}

// Capability negotiation: the two endpoints of a channel must agree on the
// out-of-band buffer arena — same arena object on both ends (shm ring) or
// none on either (transports that share no memory).
TEST_P(TransportContractTest, EndpointsAgreeOnArenaCapability) {
  ChannelPair channel = MakeChannel();
  EXPECT_EQ(channel.guest->arena(), channel.host->arena());
  if (std::string(GetParam().first) == "shm_ring") {
    EXPECT_NE(channel.guest->arena(), nullptr);
  } else {
    EXPECT_EQ(channel.guest->arena(), nullptr);
  }
}

ChannelPair MustShm() {
  auto c = MakeShmRingChannel(1u << 16);
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

ChannelPair MustSocket() {
  auto c = MakeSocketPairChannel();
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportContractTest,
    ::testing::Values(
        std::make_pair("inproc", ChannelFactory([] {
                         return MakeInProcChannel(64);
                       })),
        std::make_pair("shm_ring", ChannelFactory(&MustShm)),
        std::make_pair("socketpair", ChannelFactory(&MustSocket))),
    [](const ::testing::TestParamInfo<TransportContractTest::ParamType>& info) {
      return info.param.first;
    });

// Fork-based test: the shm ring works across processes (the VM boundary).
TEST(ShmRingForkTest, CrossProcessRoundTrip) {
  auto channel = MakeShmRingChannel(1u << 14);
  ASSERT_TRUE(channel.ok());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child = guest: send 50 messages, expect doubled replies.
    for (int i = 0; i < 50; ++i) {
      Bytes m = MakeMessage(100 + i, static_cast<std::uint8_t>(i));
      if (!channel->guest->Send(m).ok()) {
        _exit(1);
      }
      auto reply = channel->guest->Recv();
      if (!reply.ok() || reply->size() != m.size() * 2) {
        _exit(2);
      }
    }
    _exit(0);
  }
  for (int i = 0; i < 50; ++i) {
    auto got = channel->host->Recv();
    ASSERT_TRUE(got.ok());
    Bytes doubled(got->size() * 2);
    ASSERT_TRUE(channel->host->Send(doubled).ok());
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(SocketPairForkTest, CrossProcessRoundTrip) {
  auto channel = MakeSocketPairChannel();
  ASSERT_TRUE(channel.ok());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Bytes m = MakeMessage(4096, 3);
    _exit(channel->guest->Send(m).ok() && channel->guest->Recv().ok() ? 0 : 1);
  }
  auto got = channel->host->Recv();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 4096u);
  ASSERT_TRUE(channel->host->Send(*got).ok());
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// Property test: random message sizes survive the shm ring byte-exactly,
// including sizes around the ring capacity (wrap-around paths).
TEST(ShmRingPropertyTest, RandomSizesRoundTrip) {
  auto channel = MakeShmRingChannel(4096);
  ASSERT_TRUE(channel.ok());
  Rng rng(7);
  std::vector<Bytes> sent;
  for (int i = 0; i < 100; ++i) {
    sent.push_back(MakeMessage(rng.NextBelow(10000),
                               static_cast<std::uint8_t>(rng.NextU64())));
  }
  std::thread sender([&] {
    for (const auto& m : sent) {
      ASSERT_TRUE(channel->guest->Send(m).ok());
    }
  });
  for (const auto& m : sent) {
    auto got = channel->host->Recv();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, m);
  }
  sender.join();
}

// ---------------------------------------------------------------------------
// Readiness contract: the event-driven router front end multiplexes every
// transport that exposes a readiness fd (socket fd, shm doorbell) on one
// epoll loop and drains it with AckReadiness + TryRecv. These tests pin the
// three behaviors that loop depends on: a spurious wakeup drains cleanly to
// NotFound, a frame that arrives in pieces parks and resumes without data
// loss, and a dead peer surfaces through the loop so the fd can be reaped.

class ReadinessContractTest
    : public ::testing::TestWithParam<std::pair<const char*, ChannelFactory>> {
 protected:
  ChannelPair MakeChannel() { return GetParam().second(); }
};

// Waits until the loop reports `token` readable (several Wait rounds are
// legal: readiness may be ack'd and re-raised).
bool WaitForToken(EventLoop* loop, std::uint64_t token, int rounds = 50) {
  for (int i = 0; i < rounds; ++i) {
    for (const auto& event : loop->Wait(100)) {
      if (event.token == token) {
        return true;
      }
    }
  }
  return false;
}

TEST_P(ReadinessContractTest, SpuriousWakeupDrainsToNotFound) {
  ChannelPair channel = MakeChannel();
  ASSERT_GE(channel.host->readiness_fd(), 0);
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  ASSERT_TRUE((*loop)->Add(channel.host->readiness_fd(), 7).ok());

  // Nothing pending: the level-triggered drain protocol must land on
  // NotFound, not block or fabricate a message.
  channel.host->AckReadiness();
  auto nothing = channel.host->TryRecv();
  ASSERT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.status().code(), StatusCode::kNotFound);

  // A real arrival raises readiness; the drain yields exactly one message
  // and then NotFound again — the extra TryRecv after the queue empties is
  // the everyday "spurious" case the loop must absorb.
  Bytes m = MakeMessage(512, 5);
  ASSERT_TRUE(channel.guest->Send(m).ok());
  ASSERT_TRUE(WaitForToken(loop->get(), 7));
  channel.host->AckReadiness();
  auto got = channel.host->TryRecv();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, m);
  auto empty = channel.host->TryRecv();
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kNotFound);
  (*loop)->Remove(channel.host->readiness_fd());
}

TEST_P(ReadinessContractTest, DeadPeerSurfacesThroughEventLoop) {
  ChannelPair channel = MakeChannel();
  ASSERT_GE(channel.host->readiness_fd(), 0);
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  ASSERT_TRUE((*loop)->Add(channel.host->readiness_fd(), 9).ok());

  channel.guest->Close();
  // The close must wake the loop (EOF readability or doorbell), and the
  // drain must classify the channel as gone so the router reaps the fd.
  ASSERT_TRUE(WaitForToken(loop->get(), 9));
  channel.host->AckReadiness();
  Status dead = OkStatus();
  for (int i = 0; i < 50; ++i) {
    auto got = channel.host->TryRecv();
    if (!got.ok() && got.status().code() != StatusCode::kNotFound) {
      dead = got.status();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(dead.code(), StatusCode::kUnavailable) << dead.ToString();
  (*loop)->Remove(channel.host->readiness_fd());
  // After the reap, the loop must go quiet: no stale events for the token.
  for (const auto& event : (*loop)->Wait(20)) {
    EXPECT_NE(event.token, 9u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ReadinessTransports, ReadinessContractTest,
    ::testing::Values(
        std::make_pair("shm_ring",
                       ChannelFactory([] {
                         auto c = MakeShmRingChannel(1u << 16);
                         EXPECT_TRUE(c.ok());
                         return std::move(*c);
                       })),
        std::make_pair("socketpair", ChannelFactory([] {
                         auto c = MakeSocketPairChannel();
                         EXPECT_TRUE(c.ok());
                         return std::move(*c);
                       }))),
    [](const ::testing::TestParamInfo<ReadinessContractTest::ParamType>&
           info) { return std::string(info.param.first); });

// A frame that arrives in pieces must park as partial state and complete
// once the rest lands — never block the loop, never tear the message. Raw
// fd writes simulate a slow sender mid-frame.
TEST(ReadinessPartialFrameTest, PartialFrameParksThenCompletes) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  TransportPtr host = MakeSocketTransportFromFd(fds[0], "test-host");
  ASSERT_NE(host, nullptr);
  ASSERT_GE(host->readiness_fd(), 0);

  Bytes m = MakeMessage(1024, 9);
  const std::uint32_t len = static_cast<std::uint32_t>(m.size());
  // Length prefix plus the first half of the body.
  ASSERT_EQ(write(fds[1], &len, sizeof(len)),
            static_cast<ssize_t>(sizeof(len)));
  ASSERT_EQ(write(fds[1], m.data(), 512), 512);

  host->AckReadiness();
  auto partial = host->TryRecv();
  ASSERT_FALSE(partial.ok());
  EXPECT_EQ(partial.status().code(), StatusCode::kNotFound)
      << "partial frame must park, not error: "
      << partial.status().ToString();

  // The rest arrives; the parked frame completes byte-exact.
  ASSERT_EQ(write(fds[1], m.data() + 512, 512), 512);
  auto got = host->TryRecv();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, m);

  // And a mid-length-prefix split parks too (the hardest boundary).
  Bytes m2 = MakeMessage(64, 17);
  const std::uint32_t len2 = static_cast<std::uint32_t>(m2.size());
  ASSERT_EQ(write(fds[1], &len2, 2), 2);
  auto half_prefix = host->TryRecv();
  ASSERT_FALSE(half_prefix.ok());
  EXPECT_EQ(half_prefix.status().code(), StatusCode::kNotFound);
  ASSERT_EQ(write(fds[1], reinterpret_cast<const char*>(&len2) + 2, 2), 2);
  ASSERT_EQ(write(fds[1], m2.data(), m2.size()),
            static_cast<ssize_t>(m2.size()));
  auto got2 = host->TryRecv();
  ASSERT_TRUE(got2.ok()) << got2.status().ToString();
  EXPECT_EQ(*got2, m2);
  close(fds[1]);
}

}  // namespace
}  // namespace ava
