// Unit tests for the API-agnostic guest runtime: call framing, batching
// flush rules, shadow-buffer registration/application, and async error
// latching — exercised against a scripted fake server on the other end of
// an in-process channel.
#include <gtest/gtest.h>

#include <thread>

#include "src/proto/wire.h"
#include "src/runtime/guest_endpoint.h"
#include "src/transport/transport.h"

namespace ava {
namespace {

// Seals a hand-built frame the way the router does before sending.
void SendSealed(Transport* transport, Bytes frame) {
  SealFrame(&frame);
  (void)transport->Send(frame);
}

// A scripted peer: runs a lambda per received message on its own thread.
// Incoming frames are CRC-checked and stripped, mirroring the router, so
// handlers see the raw wire message.
class FakeServer {
 public:
  using Handler = std::function<void(Transport*, const Bytes&)>;

  FakeServer(TransportPtr transport, Handler handler)
      : transport_(std::move(transport)), handler_(std::move(handler)) {
    thread_ = std::thread([this] {
      while (true) {
        auto message = transport_->Recv();
        if (!message.ok()) {
          return;
        }
        if (!CheckAndStripFrame(&*message).ok()) {
          continue;
        }
        handler_(transport_.get(), *message);
      }
    });
  }

  ~FakeServer() {
    transport_->Close();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  TransportPtr transport_;
  Handler handler_;
  std::thread thread_;
};

// Echo server: replies to sync calls with their own payload.
void EchoHandler(Transport* transport, const Bytes& message) {
  auto call = DecodeCall(message);
  if (!call.ok() || call->header.is_async()) {
    return;
  }
  ReplyHeader header;
  header.call_id = call->header.call_id;
  header.vm_id = call->header.vm_id;
  ReplyBuilder builder(header);
  builder.SetPayload(Bytes(call->payload.begin(), call->payload.end()));
  SendSealed(transport, std::move(builder).Finish());
}

TEST(GuestEndpointTest, SyncCallEchoesPayload) {
  auto channel = MakeInProcChannel();
  FakeServer server(std::move(channel.host), EchoHandler);
  GuestEndpoint endpoint(std::move(channel.guest), {});
  Bytes args = {1, 2, 3, 4};
  auto reply = endpoint.CallSync(5, 6, args);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, args);
  EXPECT_EQ(endpoint.stats().sync_calls, 1u);
}

TEST(GuestEndpointTest, CallIdsIncreaseAndVmIdStamped) {
  auto channel = MakeInProcChannel();
  std::vector<CallHeader> seen;
  std::mutex mu;
  FakeServer server(std::move(channel.host),
                    [&](Transport* transport, const Bytes& message) {
                      auto call = DecodeCall(message);
                      {
                        std::lock_guard<std::mutex> lock(mu);
                        seen.push_back(call->header);
                      }
                      EchoHandler(transport, message);
                    });
  GuestEndpoint::Options opts;
  opts.vm_id = 31;
  GuestEndpoint endpoint(std::move(channel.guest), opts);
  ASSERT_TRUE(endpoint.CallSync(1, 1, {}).ok());
  ASSERT_TRUE(endpoint.CallAsync(1, 2, {}).ok());
  ASSERT_TRUE(endpoint.CallSync(1, 3, {}).ok());
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_LT(seen[0].call_id, seen[1].call_id);
  EXPECT_LT(seen[1].call_id, seen[2].call_id);
  for (const auto& header : seen) {
    EXPECT_EQ(header.vm_id, 31u);
  }
  EXPECT_TRUE(seen[1].is_async());
  EXPECT_FALSE(seen[2].is_async());
}

TEST(GuestEndpointTest, BatchingBuffersUntilThresholdOrSync) {
  auto channel = MakeInProcChannel();
  std::atomic<int> batches{0};
  std::atomic<int> calls_in_batches{0};
  FakeServer server(std::move(channel.host),
                    [&](Transport* transport, const Bytes& message) {
                      auto kind = PeekKind(message);
                      if (kind.ok() && *kind == MsgKind::kBatch) {
                        auto calls = DecodeBatch(message);
                        ++batches;
                        calls_in_batches += static_cast<int>(calls->size());
                        return;
                      }
                      EchoHandler(transport, message);
                    });
  GuestEndpoint::Options opts;
  opts.batch_max_calls = 4;
  GuestEndpoint endpoint(std::move(channel.guest), opts);
  // 3 async calls: below threshold, nothing sent yet.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(endpoint.CallAsync(1, 1, {}).ok());
  }
  EXPECT_EQ(endpoint.stats().messages_sent, 0u);
  // A sync call flushes the batch first.
  ASSERT_TRUE(endpoint.CallSync(1, 2, {}).ok());
  EXPECT_EQ(batches.load(), 1);
  EXPECT_EQ(calls_in_batches.load(), 3);
  // Reaching the threshold flushes automatically.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(endpoint.CallAsync(1, 1, {}).ok());
  }
  for (int i = 0; i < 100 && batches.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(batches.load(), 2);
  EXPECT_EQ(calls_in_batches.load(), 7);
}

TEST(GuestEndpointTest, ExplicitFlushSendsPartialBatch) {
  auto channel = MakeInProcChannel();
  std::atomic<int> batches{0};
  FakeServer server(std::move(channel.host),
                    [&](Transport*, const Bytes& message) {
                      auto kind = PeekKind(message);
                      if (kind.ok() && *kind == MsgKind::kBatch) {
                        ++batches;
                      }
                    });
  GuestEndpoint::Options opts;
  opts.batch_max_calls = 100;
  GuestEndpoint endpoint(std::move(channel.guest), opts);
  ASSERT_TRUE(endpoint.CallAsync(1, 1, {}).ok());
  ASSERT_TRUE(endpoint.Flush().ok());
  for (int i = 0; i < 100 && batches.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(batches.load(), 1);
}

TEST(GuestEndpointTest, ShadowUpdatesApplyToRegisteredPointers) {
  auto channel = MakeInProcChannel();
  FakeServer server(
      std::move(channel.host), [&](Transport* transport, const Bytes& message) {
        auto call = DecodeCall(message);
        if (!call.ok() || call->header.is_async()) {
          return;
        }
        // The call payload names a shadow id; reply delivers data for it.
        ByteReader r(call->payload.data(), call->payload.size());
        const std::uint64_t shadow_id = r.GetU64();
        ReplyHeader header;
        header.call_id = call->header.call_id;
        ReplyBuilder builder(header);
        builder.SetPayload({});
        builder.AddShadow(shadow_id, Bytes{9, 8, 7, 6});
        SendSealed(transport, std::move(builder).Finish());
      });
  GuestEndpoint endpoint(std::move(channel.guest), {});
  std::uint8_t target[4] = {0, 0, 0, 0};
  const std::uint64_t shadow_id = endpoint.RegisterShadow(target, sizeof(target));
  EXPECT_NE(shadow_id, kAsyncErrorShadowId);
  ByteWriter args;
  args.PutU64(shadow_id);
  ASSERT_TRUE(endpoint.CallSync(1, 1, std::move(args).TakeBytes()).ok());
  EXPECT_EQ(target[0], 9);
  EXPECT_EQ(target[3], 6);
  EXPECT_EQ(endpoint.stats().shadow_updates, 1u);
}

TEST(GuestEndpointTest, ShadowRespectsRegisteredCapacity) {
  auto channel = MakeInProcChannel();
  FakeServer server(
      std::move(channel.host), [&](Transport* transport, const Bytes& message) {
        auto call = DecodeCall(message);
        if (!call.ok()) {
          return;
        }
        ByteReader r(call->payload.data(), call->payload.size());
        ReplyHeader header;
        header.call_id = call->header.call_id;
        ReplyBuilder builder(header);
        builder.SetPayload({});
        // Oversized shadow payload: must be clamped to the registration.
        builder.AddShadow(r.GetU64(), Bytes(64, 0xEE));
        SendSealed(transport, std::move(builder).Finish());
      });
  GuestEndpoint endpoint(std::move(channel.guest), {});
  std::uint8_t target[4] = {0, 0, 0, 0};
  std::uint8_t sentinel = 0x55;
  std::uint8_t* guard = &sentinel;  // adjacency is synthetic; check target only
  (void)guard;
  const std::uint64_t shadow_id = endpoint.RegisterShadow(target, 2);
  ByteWriter args;
  args.PutU64(shadow_id);
  ASSERT_TRUE(endpoint.CallSync(1, 1, std::move(args).TakeBytes()).ok());
  EXPECT_EQ(target[0], 0xEE);
  EXPECT_EQ(target[1], 0xEE);
  EXPECT_EQ(target[2], 0);  // beyond registered size: untouched
  EXPECT_EQ(target[3], 0);
}

TEST(GuestEndpointTest, AsyncErrorShadowLatches) {
  auto channel = MakeInProcChannel();
  FakeServer server(
      std::move(channel.host), [&](Transport* transport, const Bytes& message) {
        auto call = DecodeCall(message);
        if (!call.ok() || call->header.is_async()) {
          return;
        }
        ReplyHeader header;
        header.call_id = call->header.call_id;
        ReplyBuilder builder(header);
        builder.SetPayload({});
        std::int32_t code = -59;
        Bytes err(sizeof(code));
        std::memcpy(err.data(), &code, sizeof(code));
        builder.AddShadow(kAsyncErrorShadowId, err);
        SendSealed(transport, std::move(builder).Finish());
      });
  GuestEndpoint endpoint(std::move(channel.guest), {});
  ASSERT_TRUE(endpoint.CallSync(1, 1, {}).ok());
  EXPECT_EQ(endpoint.ConsumeAsyncError(), -59);
  EXPECT_EQ(endpoint.ConsumeAsyncError(), 0);  // consumed
}

TEST(GuestEndpointTest, RouterRejectionSurfacesStatusCode) {
  auto channel = MakeInProcChannel();
  FakeServer server(
      std::move(channel.host), [&](Transport* transport, const Bytes& message) {
        auto call = DecodeCall(message);
        ReplyHeader header;
        header.call_id = call->header.call_id;
        header.status_code =
            static_cast<std::int32_t>(StatusCode::kPermissionDenied);
        ReplyBuilder builder(header);
        SendSealed(transport, std::move(builder).Finish());
      });
  GuestEndpoint endpoint(std::move(channel.guest), {});
  auto reply = endpoint.CallSync(1, 1, {});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kPermissionDenied);
}

TEST(GuestEndpointTest, ClosedTransportFailsCleanly) {
  auto channel = MakeInProcChannel();
  channel.host->Close();
  GuestEndpoint endpoint(std::move(channel.guest), {});
  auto reply = endpoint.CallSync(1, 1, {});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace ava
