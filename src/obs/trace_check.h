// Validation of emitted chrome-trace JSON, used by the obs unit tests and
// the quickstart trace smoke test. Includes a minimal self-contained JSON
// parser (objects, arrays, strings, numbers, literals) so the check needs no
// external dependency.
#ifndef AVA_SRC_OBS_TRACE_CHECK_H_
#define AVA_SRC_OBS_TRACE_CHECK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace ava::obs {

// A parsed JSON value. Numbers are held as doubles (sufficient for trace
// validation).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  // Returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses a complete JSON document; trailing garbage is an error.
Result<JsonValue> ParseJson(const std::string& text);

struct TraceCheckReport {
  std::size_t events = 0;        // "X" events of any lane
  std::size_t guest_spans = 0;   // guest "call.sync" roundtrip spans
  std::size_t complete_spans = 0;  // guest spans with full hop coverage
  std::size_t server_spans = 0;  // "server.exec" spans
  std::size_t router_spans = 0;  // "router.queue" spans
  // Retry linkage (transfer-cache miss resend, transport retries): guest
  // spans carrying args.retry > 0, and how many of those share their trace
  // id with >= 2 server.exec spans — i.e. the resend is stitched to the
  // original attempt as ONE logical call instead of disconnected spans.
  std::size_t retried_spans = 0;
  std::size_t linked_retries = 0;
};

// Validates a chrome-trace document emitted by obs::Tracer: well-formed
// JSON, a traceEvents array, and — for every guest roundtrip span — at least
// `min_hops` distinct hop timestamps in its args plus matching router and
// server spans carrying the same trace id. Returns the tally on success.
Result<TraceCheckReport> CheckChromeTrace(const std::string& json_text,
                                          int min_hops = 5);

}  // namespace ava::obs

#endif  // AVA_SRC_OBS_TRACE_CHECK_H_
