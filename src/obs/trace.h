// Per-call distributed tracing for the AvA stack.
//
// A traced API call carries a trace context (trace id + hop timestamps) in
// the wire CallHeader/ReplyHeader, so one forwarded invocation can be
// followed guest-stub -> transport -> router RX / queue / rate-limit wait ->
// scheduler dispatch -> ApiServerSession execute (with its reported device
// cost) -> reply -> guest wake.
//
// Each layer reports what it saw to the process-wide Tracer, which renders a
// chrome://tracing / Perfetto-compatible JSON file at process exit:
//   pid  = VM id
//   tid  = pipeline lane (1 guest, 2 router, 3 server)
//   span = one "X" (complete) event; hop timestamps ride in "args"
//
// Enable with AVA_TRACE=1 (writes ava_trace.json in the CWD) or
// AVA_TRACE=<path>. When disabled (the default), trace ids stay 0 and the
// stack skips all trace work; the wire fields are still present but zero.
#ifndef AVA_SRC_OBS_TRACE_H_
#define AVA_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace ava::obs {

// Pipeline lane a span was observed on (becomes the chrome-trace tid).
enum class TraceLane : int {
  kGuest = 1,
  kRouter = 2,
  kServer = 3,
};

struct TraceArg {
  const char* key;  // must be a string literal / static storage
  std::int64_t value;
};

class Tracer {
 public:
  // Process-wide tracer, configured from AVA_TRACE on first use. First use
  // also arms the exit hook that writes the trace file.
  static Tracer& Default();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Mints a nonzero trace id.
  std::uint64_t NextTraceId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Records one complete span. `name` must be a string literal; timestamps
  // are MonotonicNowNs() values. No-op while disabled.
  void RecordSpan(TraceLane lane, const char* name, std::uint64_t vm_id,
                  std::uint64_t trace_id, std::int64_t start_ns,
                  std::int64_t end_ns, std::initializer_list<TraceArg> args);

  // Chrome trace JSON of everything recorded so far.
  std::string SerializeJson() const;

  // Writes SerializeJson() to `path`.
  Status WriteFile(const std::string& path) const;

  // Writes to the AVA_TRACE-configured path (appending ".<pid>" in a forked
  // child so parent and child do not clobber each other). No-op if disabled
  // or nothing was recorded.
  void Flush();

  std::size_t event_count() const;
  std::size_t dropped_count() const;

  // Test hooks: force-enable without the environment, and reset state.
  void EnableForTest(std::string path = "");
  void Clear();

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  struct Impl;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::unique_ptr<Impl> impl_;
};

// Shorthand used by instrumentation sites.
inline bool TraceEnabled() { return Tracer::Default().enabled(); }

}  // namespace ava::obs

#endif  // AVA_SRC_OBS_TRACE_H_
