// Live introspection endpoint: a unix-domain-socket admin channel served
// in-process by the router / API server, spoken to by `avactl`.
//
// Protocol (line-oriented, text):
//   request  := one line, "<command>[ <args>]\n"
//   response := zero or more payload lines, then a lone "." line
//   error    := "ERR <message>" line, then the "." terminator
// A connection may issue multiple requests; either side closing ends it.
// Payload lines that would start with "." are dotted-stuffed (".." prefix),
// SMTP-style, so any command output round-trips.
//
// Built-in commands: `ping` (liveness), `metrics` (Prometheus text
// exposition of the live MetricRegistry snapshot — never stalls hot-path
// updates), `flight` (flight-recorder text dump). Components register more
// (`sessions`, `account`) via RegisterCommand.
//
// The process-wide instance serves AVA_ADMIN_SOCK when that env var is set;
// both Router::Start() and ApiServerSession construction call
// EnsureDefaultServing() so whichever half of the stack comes up first
// exposes the plane.
#ifndef AVA_SRC_OBS_ADMIN_H_
#define AVA_SRC_OBS_ADMIN_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/result.h"

namespace ava::obs {

class AdminChannel {
 public:
  // Handler: command args (text after the verb, possibly empty) → reply
  // payload. Runs on the admin accept thread; must not block on the call
  // hot path (read metrics/snapshots, don't take dispatch locks).
  using Handler = std::function<std::string(const std::string& args)>;

  AdminChannel();
  ~AdminChannel();
  AdminChannel(const AdminChannel&) = delete;
  AdminChannel& operator=(const AdminChannel&) = delete;

  // Binds, listens, and starts the accept thread. Replaces a stale socket
  // file at `path`. Serving twice (or a path longer than sun_path) fails.
  Status Serve(const std::string& path);
  void Stop();

  // Last registration under a verb wins; registering "sessions"/"account"
  // re-binds them to the newest router, matching every other
  // latest-wins singleton in the stack.
  void RegisterCommand(const std::string& verb, Handler handler);

  bool serving() const;
  const std::string& path() const { return path_; }

  // The process-wide channel (lazily created, never destroyed).
  static AdminChannel& Default();
  // Starts Default() on AVA_ADMIN_SOCK if set and not yet serving.
  // Idempotent and cheap; safe to call from every Router/session start.
  static void EnsureDefaultServing();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  std::string Dispatch(const std::string& line);

  mutable std::mutex mutex_;
  std::map<std::string, Handler> handlers_;
  std::string path_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
};

// Client side, used by avactl and tests: connect, send `command`, read the
// dot-terminated reply. Returns the payload (dot-stuffing undone) or the
// connection/protocol error.
Result<std::string> AdminQuery(const std::string& path,
                               const std::string& command);

}  // namespace ava::obs

#endif  // AVA_SRC_OBS_ADMIN_H_
