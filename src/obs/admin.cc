#include "src/obs/admin.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "src/obs/flight.h"
#include "src/obs/metrics.h"

namespace ava::obs {

namespace {

// Dot-stuffs payload lines and appends the "." terminator.
std::string FrameReply(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  std::size_t start = 0;
  while (start <= payload.size()) {
    std::size_t end = payload.find('\n', start);
    const bool last = end == std::string::npos;
    std::string_view line(payload.data() + start,
                          (last ? payload.size() : end) - start);
    if (last && line.empty()) {
      break;  // trailing newline already closed the final line
    }
    if (!line.empty() && line[0] == '.') {
      out.push_back('.');
    }
    out.append(line);
    out.push_back('\n');
    if (last) {
      break;
    }
    start = end + 1;
  }
  out.append(".\n");
  return out;
}

bool SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

AdminChannel::AdminChannel() {
  RegisterCommand("ping", [](const std::string&) { return "pong"; });
  RegisterCommand("metrics", [](const std::string&) {
    return MetricRegistry::Default().Snapshot().PrometheusText();
  });
  RegisterCommand("flight", [](const std::string&) {
    return FlightRecorder::Default().Text();
  });
}

AdminChannel::~AdminChannel() { Stop(); }

Status AdminChannel::Serve(const std::string& path) {
  sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgument("admin socket path too long: " + path);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_.load(std::memory_order_relaxed)) {
      return FailedPrecondition("admin channel already serving " + path_);
    }
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Internal(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // replace a stale socket from a dead process
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Internal("bind/listen " + path + ": " + err);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = path;
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void AdminChannel::Stop() {
  int fd = -1;
  std::thread joiner;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.exchange(false)) {
      return;
    }
    fd = listen_fd_;
    listen_fd_ = -1;
    joiner = std::move(accept_thread_);
  }
  if (joiner.joinable()) {
    joiner.join();
  }
  if (fd >= 0) {
    ::close(fd);
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
  }
}

void AdminChannel::RegisterCommand(const std::string& verb, Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_[verb] = std::move(handler);
}

bool AdminChannel::serving() const {
  return running_.load(std::memory_order_acquire);
}

void AdminChannel::AcceptLoop() {
  // Poll with a short timeout so Stop() is observed promptly; connections
  // are served serially on this thread (the admin plane is low-rate).
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0) {
      continue;
    }
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    // Bound a stalled client so it cannot wedge the admin plane.
    timeval tv{2, 0};
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ServeConnection(conn);
    ::close(conn);
  }
}

void AdminChannel::ServeConnection(int fd) {
  std::string buffer;
  char chunk[1024];
  while (running_.load(std::memory_order_acquire)) {
    std::size_t nl;
    while ((nl = buffer.find('\n')) == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        return;  // EOF, timeout, or error: drop the connection
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      if (buffer.size() > 4096) {
        return;  // no sane request is this long
      }
    }
    std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (!SendAll(fd, FrameReply(Dispatch(line)))) {
      return;
    }
  }
}

std::string AdminChannel::Dispatch(const std::string& line) {
  const std::size_t space = line.find(' ');
  const std::string verb = line.substr(0, space);
  const std::string args =
      space == std::string::npos ? std::string() : line.substr(space + 1);
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = handlers_.find(verb);
    if (it != handlers_.end()) {
      handler = it->second;
    }
  }
  if (!handler) {
    return "ERR unknown command: " + verb;
  }
  return handler(args);
}

AdminChannel& AdminChannel::Default() {
  // Leaked: handlers registered by long-lived components may be invoked by
  // late admin queries; tear-down order is not worth racing at exit.
  static AdminChannel* channel = new AdminChannel();
  return *channel;
}

void AdminChannel::EnsureDefaultServing() {
  const char* path = std::getenv("AVA_ADMIN_SOCK");
  if (path == nullptr || path[0] == '\0') {
    return;
  }
  AdminChannel& channel = Default();
  if (channel.serving()) {
    return;
  }
  static std::mutex serve_mutex;
  std::lock_guard<std::mutex> lock(serve_mutex);
  if (!channel.serving()) {
    (void)channel.Serve(path);  // failure logged by callers via serving()
  }
}

Result<std::string> AdminQuery(const std::string& path,
                               const std::string& command) {
  sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgument("admin socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Internal(std::string("socket: ") + std::strerror(errno));
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Unavailable("connect " + path + ": " + err);
  }
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (!SendAll(fd, command + "\n")) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Unavailable("send: " + err);
  }
  std::string raw;
  char chunk[4096];
  bool terminated = false;
  while (!terminated) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      ::close(fd);
      return Unavailable("admin reply truncated (no terminator)");
    }
    raw.append(chunk, static_cast<std::size_t>(n));
    // Terminator: a "." alone on a line.
    if (raw == ".\n" || (raw.size() >= 3 &&
                         raw.compare(raw.size() - 3, 3, "\n.\n") == 0)) {
      terminated = true;
    }
  }
  ::close(fd);
  // Strip the terminator line, un-stuff leading dots.
  raw.erase(raw.size() - 2);  // drop ".\n" (possibly leaving "" or "...\n")
  std::string payload;
  payload.reserve(raw.size());
  std::size_t start = 0;
  while (start < raw.size()) {
    std::size_t end = raw.find('\n', start);
    if (end == std::string::npos) {
      end = raw.size();
    }
    std::string_view line(raw.data() + start, end - start);
    if (!line.empty() && line[0] == '.') {
      line.remove_prefix(1);
    }
    payload.append(line);
    payload.push_back('\n');
    start = end + 1;
  }
  if (payload.compare(0, 4, "ERR ") == 0) {
    payload.pop_back();
    return Internal(payload.substr(4));
  }
  return payload;
}

}  // namespace ava::obs
