// Always-on crash-safe flight recorder: a fixed-size lock-free ring of the
// last N call/event records, kept cheap enough to feed from the dispatch hot
// path (a handful of relaxed atomic stores, no allocation, no locks).
//
// Purpose: when a long soak dies with SIGSEGV, the core tells you where the
// process was; the flight ring tells you what the remoting plane was *doing*
// — the last ~4k forwarded calls with vm/trace/call ids, statuses, and
// costs. The ring is dumped from an async-signal-safe handler on
// SIGSEGV/SIGABRT (InstallCrashHandler) and on demand over the admin
// channel (`avactl flight`).
//
// Record protocol (per-slot seqlock, writer side):
//   ticket = head.fetch_add(1)             // global order, never reused
//   slot   = ticket % depth
//   slot.seq = 0                           // mark busy
//   slot.words[..] = record (incl. ticket) // relaxed atomic stores
//   slot.seq = ticket + 1 (release)        // publish; seq is never 0 again
// Readers (Snapshot / the signal handler) accept a slot only when seq is
// non-zero, stable across the read, and matches the ticket stored inside
// the record — a torn or in-progress slot is silently dropped, never
// blocked on. Every slot access is a relaxed/acquire atomic, so concurrent
// record+snapshot is data-race-free (TSan-clean) by construction.
//
// Signal-safety rules (DumpToFd + the crash handler):
//   - only async-signal-safe calls: open/write/close, atomic loads
//   - no allocation, no locking, no stdio; the dump path and a scratch
//     buffer are precomputed at InstallCrashHandler() time
//   - after dumping, the handler re-raises with SIG_DFL so the default
//     crash semantics (core, non-zero exit) are preserved.
//
// Binary dump format (little-endian, parse with ParseFlightDump):
//   magic "AVAFLT01" | u64 depth | u64 head | depth * FlightRecord
#ifndef AVA_SRC_OBS_FLIGHT_H_
#define AVA_SRC_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace ava::obs {

// Default ring depth when AVA_FLIGHT_DEPTH is unset (rounded up to a power
// of two, clamped to [64, 1<<20]).
inline constexpr std::size_t kDefaultFlightDepth = 4096;

enum class FlightKind : std::uint16_t {
  kNone = 0,
  kExecBegin = 1,  // arg = api_id<<32 | func_id, code = 0
  kExecEnd = 2,    // arg = cost_vns, code = status
  kReject = 3,     // arg = api_id<<32 | func_id, code = reject status
  kVmDead = 4,     // arg = 0, code = status that killed the channel
  kEvent = 5,      // free-form marker (tests, tools)
  kMigratePhase = 6,  // arg = MigratePhase the VM entered, code = 0
};

// One ring record: 48 bytes of PODs, fixed layout (serialized verbatim).
struct FlightRecord {
  std::uint64_t ticket = 0;    // global sequence number (0 = empty slot)
  std::uint64_t t_ns = 0;      // MonotonicNowNs at record time
  std::uint64_t trace_id = 0;
  std::uint64_t call_id = 0;
  std::uint64_t arg = 0;       // kind-specific payload (see FlightKind)
  std::uint32_t vm_id = 0;
  std::uint16_t kind = 0;      // FlightKind
  std::uint16_t code = 0;      // kind-specific status code
};
inline constexpr std::size_t kFlightRecordWords = 6;
static_assert(sizeof(FlightRecord) == kFlightRecordWords * 8);

class FlightRecorder {
 public:
  // Process-wide ring; depth from AVA_FLIGHT_DEPTH on first use.
  static FlightRecorder& Default();

  explicit FlightRecorder(std::size_t depth);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Lock-free, allocation-free; safe from any thread. `rec.ticket` is
  // assigned internally; `rec.t_ns`, if zero, is stamped with the current
  // monotonic clock.
  void Record(FlightRecord rec);

  // Convenience for one-line call-site ergonomics.
  void RecordEvent(FlightKind kind, std::uint32_t vm_id,
                   std::uint64_t trace_id, std::uint64_t call_id,
                   std::uint64_t arg, std::uint16_t code);

  // Consistent copy of the ring, oldest first; torn/in-progress slots are
  // dropped. Lock-free (reads slots with acquire loads).
  std::vector<FlightRecord> Snapshot() const;

  // Async-signal-safe binary dump (header + raw slots) using only write().
  // Returns false if any write failed/short-wrote.
  bool DumpToFd(int fd) const;

  // Human-readable rendering of Snapshot() (one line per record) — the
  // admin channel's `flight` reply.
  std::string Text() const;

  std::size_t depth() const { return depth_; }
  std::uint64_t records_written() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kFlightRecordWords];
  };

  std::size_t depth_;  // power of two
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

// Installs SIGSEGV/SIGABRT handlers that dump FlightRecorder::Default() to
// AVA_FLIGHT_DUMP (or "ava_flight.<pid>.bin" in the cwd) and re-raise with
// default disposition. Idempotent; resolves the path at install time so the
// handler itself allocates nothing.
void InstallCrashHandler();

// Parses a binary dump produced by DumpToFd. Invalid/torn slots are
// dropped; records come back oldest first. Returns false only when the
// header is unparseable (bad magic / truncated).
bool ParseFlightDump(std::span<const std::uint8_t> data,
                     std::vector<FlightRecord>* out);

// Renders records as Text() does (shared by avactl and tests).
std::string RenderFlightRecords(const std::vector<FlightRecord>& records);

}  // namespace ava::obs

#endif  // AVA_SRC_OBS_FLIGHT_H_
