// Per-VM accounting ledger: the substrate the fair scheduler (ROADMAP
// item 1) will read, fed by the router on every call completion.
//
// Tracks, per VM: cumulative virtual-device-nanoseconds, wire bytes,
// cached-bytes-not-charged (transfer-cache savings), and calls by status —
// plus 1 s / 10 s EWMA rates of vns and wire bytes so `avactl account` and
// the scheduler can see *recent* load, not just lifetime totals.
//
// Update cost is the whole point: RecordCall() is a handful of relaxed
// fetch_adds into a per-thread shard (cache-line aligned, so concurrent
// lanes of the same VM never bounce a line), no locks, no allocation — it
// rides the null-call path. All folding (shard sums, EWMA decay, registry
// gauge refresh) happens lazily on the *reader* side, under a snapshot
// mutex that updaters never touch.
#ifndef AVA_SRC_OBS_LEDGER_H_
#define AVA_SRC_OBS_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace ava::obs {

// Shard count: power of two, sized for the router's worker-lane fan-out.
inline constexpr unsigned kLedgerShards = 8;
// Status codes >= this fold into the last slot (covers StatusCode today
// with headroom; the wire carries a u8 anyway).
inline constexpr unsigned kLedgerStatusSlots = 16;

struct VmAccountSnapshot {
  std::uint64_t vm_id = 0;
  std::uint64_t calls = 0;
  std::uint64_t ok_calls = 0;
  std::uint64_t cost_vns = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t cached_bytes = 0;  // bytes served from cache, not re-sent
  std::uint64_t status_counts[kLedgerStatusSlots] = {};
  // EWMA rates (per second), decayed against a 1 s / 10 s time constant.
  double vns_rate_1s = 0.0;
  double vns_rate_10s = 0.0;
  double wire_rate_1s = 0.0;
  double wire_rate_10s = 0.0;
};

// One VM's account. Create through AccountingLedger::AccountFor().
class VmAccount {
 public:
  explicit VmAccount(std::uint64_t vm_id);
  VmAccount(const VmAccount&) = delete;
  VmAccount& operator=(const VmAccount&) = delete;

  // Hot path: relaxed atomics into this thread's shard, nothing else.
  void RecordCall(std::int64_t cost_vns, std::uint64_t wire_bytes,
                  std::uint64_t cached_bytes, std::uint8_t status) {
    Shard& s = shards_[ShardIndex()];
    s.calls.fetch_add(1, std::memory_order_relaxed);
    if (status == 0) {
      s.ok_calls.fetch_add(1, std::memory_order_relaxed);
    }
    if (cost_vns > 0) {
      s.cost_vns.fetch_add(static_cast<std::uint64_t>(cost_vns),
                           std::memory_order_relaxed);
    }
    s.wire_bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
    s.cached_bytes.fetch_add(cached_bytes, std::memory_order_relaxed);
    const unsigned slot = status < kLedgerStatusSlots
                              ? status
                              : kLedgerStatusSlots - 1;
    s.status_counts[slot].fetch_add(1, std::memory_order_relaxed);
  }

  // Reader side: folds shards and advances the EWMA state (under a mutex
  // updaters never take). `now_ns` defaults to the monotonic clock; tests
  // inject time to exercise decay deterministically.
  VmAccountSnapshot Snapshot(std::int64_t now_ns = 0);

  std::uint64_t vm_id() const { return vm_id_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> ok_calls{0};
    std::atomic<std::uint64_t> cost_vns{0};
    std::atomic<std::uint64_t> wire_bytes{0};
    std::atomic<std::uint64_t> cached_bytes{0};
    std::atomic<std::uint64_t> status_counts[kLedgerStatusSlots] = {};
  };

  static unsigned ShardIndex();

  std::uint64_t vm_id_;
  Shard shards_[kLedgerShards];

  // EWMA state, only touched under snapshot_mutex_.
  std::mutex snapshot_mutex_;
  std::int64_t last_ns_ = 0;
  std::uint64_t last_vns_ = 0;
  std::uint64_t last_wire_ = 0;
  double vns_rate_1s_ = 0.0;
  double vns_rate_10s_ = 0.0;
  double wire_rate_1s_ = 0.0;
  double wire_rate_10s_ = 0.0;

  // Registry gauges (ledger.vm<id>.*), refreshed on Snapshot so a metrics
  // scrape sees the ledger without touching the admin `account` command.
  std::shared_ptr<Gauge> g_cost_vns_;
  std::shared_ptr<Gauge> g_wire_bytes_;
  std::shared_ptr<Gauge> g_cached_bytes_;
  std::shared_ptr<Gauge> g_calls_;
  std::shared_ptr<Gauge> g_vns_rate_1s_;
};

// The per-router collection of VM accounts.
class AccountingLedger {
 public:
  AccountingLedger() = default;
  AccountingLedger(const AccountingLedger&) = delete;
  AccountingLedger& operator=(const AccountingLedger&) = delete;

  // Create-or-get; the returned pointer stays valid for the ledger's life
  // (callers cache it per channel, never re-resolve per call).
  std::shared_ptr<VmAccount> AccountFor(std::uint64_t vm_id);

  // Snapshots every account, ordered by vm id.
  std::vector<VmAccountSnapshot> SnapshotAll(std::int64_t now_ns = 0);

  // Human-readable table — the admin channel's `account` reply.
  std::string Text();

 private:
  std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<VmAccount>> accounts_;
};

}  // namespace ava::obs

#endif  // AVA_SRC_OBS_LEDGER_H_
