// Lock-light metrics for the AvA stack: counters, gauges, and fixed-bucket
// latency histograms with percentile queries, usable from any thread.
//
// Design:
//   - A metric cell (Counter/Gauge/Histogram) is a bundle of relaxed atomics;
//     updating one never takes a lock.
//   - The process-wide MetricRegistry hands out cells and remembers them by
//     name (weak references, so a cell dies with its owner). Creating a cell
//     takes the registry lock once; hot paths must cache the returned
//     shared_ptr, never re-resolve by name per operation.
//   - The same name may be registered many times (e.g. one `guest.sync_calls`
//     per endpoint instance). Each owner keeps exact per-instance values;
//     Dump() aggregates live cells by name (sum counters, merge histograms).
//   - Set AVA_METRICS_DUMP=stderr|stdout|<path> to print the aggregated
//     registry at process exit.
//
// Histogram buckets are fixed powers of two: bucket 0 holds values <= 0,
// bucket b >= 1 holds [2^(b-1), 2^b - 1]. Percentile queries interpolate
// linearly inside the selected bucket and clamp to the exact observed
// min/max, so a single-sample histogram reports that sample exactly.
#ifndef AVA_SRC_OBS_METRICS_H_
#define AVA_SRC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ava::obs {

class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

inline constexpr int kHistogramBuckets = 64;

// Point-in-time copy of a histogram, with the percentile math. Snapshots of
// same-named histograms can be merged for aggregate views.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  std::uint64_t buckets[kHistogramBuckets] = {};

  bool empty() const { return count == 0; }
  double Mean() const;
  // p in [0, 100]. Empty histograms report 0.
  double Percentile(double p) const;
  void Merge(const HistogramSnapshot& other);
};

class Histogram {
 public:
  static int BucketFor(std::int64_t value) {
    if (value <= 0) {
      return 0;
    }
    const int width = std::bit_width(static_cast<std::uint64_t>(value));
    return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
  }
  // Lower/upper value covered by a bucket (upper is inclusive).
  static std::int64_t BucketLow(int bucket);
  static std::int64_t BucketHigh(int bucket);

  void Record(std::int64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<std::uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

// Point-in-time aggregate of the whole registry: every live cell folded
// into its name plus the retired totals, deterministically name-sorted.
// Produced by MetricRegistry::Snapshot() without stalling hot-path updates
// (cells are relaxed atomics; only the name table is briefly locked).
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    std::uint64_t counter_sum = 0;
    bool has_counter = false;
    std::int64_t gauge_sum = 0;
    bool has_gauge = false;
    HistogramSnapshot histogram;
    bool has_histogram = false;
  };
  std::vector<Entry> entries;  // sorted ascending by name, no duplicates

  // Binary search by exact name; null when absent.
  const Entry* Find(std::string_view name) const;

  // The classic `=== ava metrics ===` human dump.
  std::string HumanText() const;
  // Prometheus text exposition format: names are prefixed `ava_` with
  // non-[a-zA-Z0-9_] characters mapped to `_`; histograms render as
  // summaries (_count/_sum plus p50/p95/p99 quantile samples).
  std::string PrometheusText() const;
};

class MetricRegistry {
 public:
  // The process-wide registry. First use arms the AVA_METRICS_DUMP
  // exit hook.
  static MetricRegistry& Default();

  // Each call creates a fresh cell registered under `name`; the registry
  // holds only a weak reference. Callers cache the shared_ptr and update
  // through it.
  std::shared_ptr<Counter> NewCounter(std::string name);
  std::shared_ptr<Gauge> NewGauge(std::string name);
  std::shared_ptr<Histogram> NewHistogram(std::string name);

  // Structured aggregate of all cells (live + retired), name-sorted. Holds
  // the registry mutex only while walking the name table; concurrent cell
  // updates proceed untouched (they are relaxed atomics), so a scrape never
  // stalls the call hot path.
  MetricsSnapshot Snapshot() const;

  // Human-readable dump of all live cells, aggregated by name and sorted
  // (= Snapshot().HumanText()).
  std::string Dump() const;

  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Latency sampling switch. Counters are cheap enough to stay on
// unconditionally, but every timing site (clock reads + histogram records +
// span emission) checks this flag first so an uninstrumented run pays only
// relaxed counter increments on the call hot path. The flag starts true when
// AVA_TRACE or AVA_METRICS_DUMP is set in the environment; benches and tests
// that want distributions without env plumbing call SetSamplingEnabled(true).
namespace metrics_internal {
extern std::atomic<bool> g_sampling_enabled;
}  // namespace metrics_internal

inline bool SamplingEnabled() {
  return metrics_internal::g_sampling_enabled.load(std::memory_order_relaxed);
}
void SetSamplingEnabled(bool enabled);

// Convenience constructors against the default registry.
inline std::shared_ptr<Counter> NewCounter(std::string name) {
  return MetricRegistry::Default().NewCounter(std::move(name));
}
inline std::shared_ptr<Gauge> NewGauge(std::string name) {
  return MetricRegistry::Default().NewGauge(std::move(name));
}
inline std::shared_ptr<Histogram> NewHistogram(std::string name) {
  return MetricRegistry::Default().NewHistogram(std::move(name));
}

}  // namespace ava::obs

#endif  // AVA_SRC_OBS_METRICS_H_
