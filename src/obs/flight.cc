#include "src/obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "src/common/status.h"
#include "src/common/vclock.h"

namespace ava::obs {

namespace {

constexpr char kFlightMagic[8] = {'A', 'V', 'A', 'F', 'L', 'T', '0', '1'};
constexpr std::size_t kFlightHeaderBytes = 8 + 8 + 8;

std::size_t FlightDepthFromEnv() {
  std::size_t depth = kDefaultFlightDepth;
  const char* env = std::getenv("AVA_FLIGHT_DEPTH");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      depth = static_cast<std::size_t>(v);
    } else {
      std::fprintf(stderr, "AVA_FLIGHT_DEPTH: malformed value '%s', using %zu\n",
                   env, depth);
    }
  }
  depth = std::clamp<std::size_t>(depth, 64, std::size_t{1} << 20);
  return std::bit_ceil(depth);
}

void PackRecord(const FlightRecord& rec, std::uint64_t words[kFlightRecordWords]) {
  words[0] = rec.ticket;
  words[1] = rec.t_ns;
  words[2] = rec.trace_id;
  words[3] = rec.call_id;
  words[4] = rec.arg;
  words[5] = static_cast<std::uint64_t>(rec.vm_id) << 32 |
             static_cast<std::uint64_t>(rec.kind) << 16 |
             static_cast<std::uint64_t>(rec.code);
}

FlightRecord UnpackRecord(const std::uint64_t words[kFlightRecordWords]) {
  FlightRecord rec;
  rec.ticket = words[0];
  rec.t_ns = words[1];
  rec.trace_id = words[2];
  rec.call_id = words[3];
  rec.arg = words[4];
  rec.vm_id = static_cast<std::uint32_t>(words[5] >> 32);
  rec.kind = static_cast<std::uint16_t>(words[5] >> 16);
  rec.code = static_cast<std::uint16_t>(words[5]);
  return rec;
}

const char* FlightKindName(std::uint16_t kind) {
  switch (static_cast<FlightKind>(kind)) {
    case FlightKind::kNone:
      return "none";
    case FlightKind::kExecBegin:
      return "exec_begin";
    case FlightKind::kExecEnd:
      return "exec_end";
    case FlightKind::kReject:
      return "reject";
    case FlightKind::kVmDead:
      return "vm_dead";
    case FlightKind::kEvent:
      return "event";
    case FlightKind::kMigratePhase:
      return "migrate_phase";
  }
  return "?";
}

// Writes all of `data`, retrying short writes; async-signal-safe.
bool WriteAll(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FlightRecorder& FlightRecorder::Default() {
  // Leaked: signal handlers and late-dying threads may record at any time.
  static FlightRecorder* recorder = new FlightRecorder(FlightDepthFromEnv());
  return *recorder;
}

FlightRecorder::FlightRecorder(std::size_t depth)
    : depth_(std::bit_ceil(std::max<std::size_t>(depth, 2))),
      mask_(depth_ - 1),
      slots_(new Slot[depth_]) {}

void FlightRecorder::Record(FlightRecord rec) {
  if (rec.t_ns == 0) {
    rec.t_ns = static_cast<std::uint64_t>(MonotonicNowNs());
  }
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  rec.ticket = ticket;
  std::uint64_t words[kFlightRecordWords];
  PackRecord(rec, words);
  Slot& slot = slots_[ticket & mask_];
  // Per-slot seqlock: 0 = write in progress; ticket+1 (never 0) = published.
  // A reader that straddles the write sees either seq==0 or a seq/ticket
  // mismatch and drops the slot — it never blocks or reads freely.
  slot.seq.store(0, std::memory_order_release);
  for (std::size_t i = 0; i < kFlightRecordWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(ticket + 1, std::memory_order_release);
}

void FlightRecorder::RecordEvent(FlightKind kind, std::uint32_t vm_id,
                                 std::uint64_t trace_id, std::uint64_t call_id,
                                 std::uint64_t arg, std::uint16_t code) {
  FlightRecord rec;
  rec.trace_id = trace_id;
  rec.call_id = call_id;
  rec.arg = arg;
  rec.vm_id = vm_id;
  rec.kind = static_cast<std::uint16_t>(kind);
  rec.code = code;
  Record(rec);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(depth_);
  for (std::size_t i = 0; i < depth_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == 0) {
      continue;
    }
    std::uint64_t words[kFlightRecordWords];
    for (std::size_t w = 0; w < kFlightRecordWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_acquire);
    }
    if (slot.seq.load(std::memory_order_acquire) != seq ||
        words[0] != seq - 1) {
      continue;  // torn by a concurrent writer; drop
    }
    out.push_back(UnpackRecord(words));
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.ticket < b.ticket;
            });
  return out;
}

bool FlightRecorder::DumpToFd(int fd) const {
  // Header: magic | depth | head. All multi-byte fields host-endian (the
  // dump is consumed on the same machine).
  std::uint8_t header[kFlightHeaderBytes];
  std::memcpy(header, kFlightMagic, 8);
  const std::uint64_t depth = depth_;
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  std::memcpy(header + 8, &depth, 8);
  std::memcpy(header + 16, &head, 8);
  if (!WriteAll(fd, header, sizeof(header))) {
    return false;
  }
  // Slots, one write per slot from a stack buffer: no allocation, atomic
  // loads only. Torn slots are written as-is; the parser's ticket check
  // drops them.
  for (std::size_t i = 0; i < depth_; ++i) {
    const Slot& slot = slots_[i];
    std::uint64_t words[kFlightRecordWords];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    for (std::size_t w = 0; w < kFlightRecordWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_acquire);
    }
    if (seq == 0 || slot.seq.load(std::memory_order_acquire) != seq ||
        words[0] != seq - 1) {
      std::memset(words, 0, sizeof(words));  // empty/torn → blank slot
    }
    if (!WriteAll(fd, words, sizeof(words))) {
      return false;
    }
  }
  return true;
}

std::string FlightRecorder::Text() const {
  return RenderFlightRecords(Snapshot());
}

std::string RenderFlightRecords(const std::vector<FlightRecord>& records) {
  std::ostringstream out;
  out << "=== ava flight recorder: " << records.size() << " records ===\n";
  for (const FlightRecord& r : records) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "#%llu t=%llu vm=%u %s trace=%llx call=%llu arg=%llu "
                  "code=%u\n",
                  static_cast<unsigned long long>(r.ticket),
                  static_cast<unsigned long long>(r.t_ns), r.vm_id,
                  FlightKindName(r.kind),
                  static_cast<unsigned long long>(r.trace_id),
                  static_cast<unsigned long long>(r.call_id),
                  static_cast<unsigned long long>(r.arg), r.code);
    out << line;
  }
  return out.str();
}

bool ParseFlightDump(std::span<const std::uint8_t> data,
                     std::vector<FlightRecord>* out) {
  out->clear();
  if (data.size() < kFlightHeaderBytes ||
      std::memcmp(data.data(), kFlightMagic, 8) != 0) {
    return false;
  }
  std::uint64_t depth = 0;
  std::memcpy(&depth, data.data() + 8, 8);
  const std::size_t slot_bytes = kFlightRecordWords * 8;
  const std::size_t slots =
      std::min<std::size_t>(depth, (data.size() - kFlightHeaderBytes) / slot_bytes);
  for (std::size_t i = 0; i < slots; ++i) {
    std::uint64_t words[kFlightRecordWords];
    std::memcpy(words, data.data() + kFlightHeaderBytes + i * slot_bytes,
                slot_bytes);
    FlightRecord rec = UnpackRecord(words);
    // Blank slots (never written, or blanked as torn by the dumper) have
    // kind == 0 and t_ns == 0; real records always stamp a clock.
    if (rec.t_ns == 0 && rec.kind == 0) {
      continue;
    }
    out->push_back(rec);
  }
  std::sort(out->begin(), out->end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.ticket < b.ticket;
            });
  return true;
}

// ------------------------- crash handler ----------------------------------

namespace {

// Resolved at install time so the handler allocates nothing.
char g_dump_path[512] = {0};
std::atomic<bool> g_handler_installed{false};

void CrashDumpHandler(int sig) {
  // Async-signal-safe only: open/write/close + atomic loads.
  if (g_dump_path[0] != '\0') {
    const int fd =
        ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      FlightRecorder::Default().DumpToFd(fd);
      ::close(fd);
      const char msg[] = "ava: flight recorder dumped to ";
      (void)!::write(STDERR_FILENO, msg, sizeof(msg) - 1);
      (void)!::write(STDERR_FILENO, g_dump_path,
                     std::strlen(g_dump_path));
      (void)!::write(STDERR_FILENO, "\n", 1);
    }
  }
  // Restore default disposition and re-raise: core files and wait statuses
  // look exactly as they would without the recorder.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void InstallCrashHandler() {
  bool expected = false;
  if (!g_handler_installed.compare_exchange_strong(expected, true)) {
    return;
  }
  const char* env = std::getenv("AVA_FLIGHT_DUMP");
  if (env != nullptr && env[0] != '\0') {
    std::snprintf(g_dump_path, sizeof(g_dump_path), "%s", env);
  } else {
    std::snprintf(g_dump_path, sizeof(g_dump_path), "ava_flight.%d.bin",
                  static_cast<int>(::getpid()));
  }
  // Touch Default() now so the handler never constructs it.
  FlightRecorder::Default();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = CrashDumpHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

}  // namespace ava::obs
