#include "src/obs/ledger.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/status.h"
#include "src/common/vclock.h"
#include "src/obs/metrics.h"

namespace ava::obs {

namespace {

// EWMA update over an irregular interval: decay the old rate towards the
// interval's average rate with alpha = 1 - exp(-dt/tau).
void Ewma(double* rate, double interval_rate, double dt_s, double tau_s) {
  const double alpha = 1.0 - std::exp(-dt_s / tau_s);
  *rate += (interval_rate - *rate) * alpha;
}

}  // namespace

unsigned VmAccount::ShardIndex() {
  static std::atomic<unsigned> next{0};
  static thread_local unsigned index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index & (kLedgerShards - 1);
}

VmAccount::VmAccount(std::uint64_t vm_id) : vm_id_(vm_id) {
  const std::string prefix = "ledger.vm" + std::to_string(vm_id) + ".";
  g_cost_vns_ = NewGauge(prefix + "cost_vns");
  g_wire_bytes_ = NewGauge(prefix + "wire_bytes");
  g_cached_bytes_ = NewGauge(prefix + "cached_bytes");
  g_calls_ = NewGauge(prefix + "calls");
  g_vns_rate_1s_ = NewGauge(prefix + "vns_rate_1s");
}

VmAccountSnapshot VmAccount::Snapshot(std::int64_t now_ns) {
  if (now_ns == 0) {
    now_ns = MonotonicNowNs();
  }
  VmAccountSnapshot snap;
  snap.vm_id = vm_id_;
  for (const Shard& s : shards_) {
    snap.calls += s.calls.load(std::memory_order_relaxed);
    snap.ok_calls += s.ok_calls.load(std::memory_order_relaxed);
    snap.cost_vns += s.cost_vns.load(std::memory_order_relaxed);
    snap.wire_bytes += s.wire_bytes.load(std::memory_order_relaxed);
    snap.cached_bytes += s.cached_bytes.load(std::memory_order_relaxed);
    for (unsigned i = 0; i < kLedgerStatusSlots; ++i) {
      snap.status_counts[i] +=
          s.status_counts[i].load(std::memory_order_relaxed);
    }
  }

  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (last_ns_ == 0) {
    // First observation: totals become the baseline; rates start at 0.
    last_ns_ = now_ns;
    last_vns_ = snap.cost_vns;
    last_wire_ = snap.wire_bytes;
  } else if (now_ns > last_ns_) {
    const double dt_s =
        static_cast<double>(now_ns - last_ns_) / 1e9;
    const double vns_rate =
        static_cast<double>(snap.cost_vns - last_vns_) / dt_s;
    const double wire_rate =
        static_cast<double>(snap.wire_bytes - last_wire_) / dt_s;
    Ewma(&vns_rate_1s_, vns_rate, dt_s, 1.0);
    Ewma(&vns_rate_10s_, vns_rate, dt_s, 10.0);
    Ewma(&wire_rate_1s_, wire_rate, dt_s, 1.0);
    Ewma(&wire_rate_10s_, wire_rate, dt_s, 10.0);
    last_ns_ = now_ns;
    last_vns_ = snap.cost_vns;
    last_wire_ = snap.wire_bytes;
  }
  snap.vns_rate_1s = vns_rate_1s_;
  snap.vns_rate_10s = vns_rate_10s_;
  snap.wire_rate_1s = wire_rate_1s_;
  snap.wire_rate_10s = wire_rate_10s_;

  g_cost_vns_->Set(static_cast<std::int64_t>(snap.cost_vns));
  g_wire_bytes_->Set(static_cast<std::int64_t>(snap.wire_bytes));
  g_cached_bytes_->Set(static_cast<std::int64_t>(snap.cached_bytes));
  g_calls_->Set(static_cast<std::int64_t>(snap.calls));
  g_vns_rate_1s_->Set(static_cast<std::int64_t>(snap.vns_rate_1s));
  return snap;
}

std::shared_ptr<VmAccount> AccountingLedger::AccountFor(std::uint64_t vm_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = accounts_[vm_id];
  if (slot == nullptr) {
    slot = std::make_shared<VmAccount>(vm_id);
  }
  return slot;
}

std::vector<VmAccountSnapshot> AccountingLedger::SnapshotAll(
    std::int64_t now_ns) {
  std::vector<std::shared_ptr<VmAccount>> accounts;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accounts.reserve(accounts_.size());
    for (const auto& [id, account] : accounts_) {
      accounts.push_back(account);
    }
  }
  std::vector<VmAccountSnapshot> out;
  out.reserve(accounts.size());
  for (const auto& account : accounts) {
    out.push_back(account->Snapshot(now_ns));
  }
  return out;
}

std::string AccountingLedger::Text() {
  const std::vector<VmAccountSnapshot> snaps = SnapshotAll();
  // Per-VM swap-tier residency rides along from the metric registry (the
  // swap manager refreshes swap.vm<id>.* gauges on every demotion pass).
  const MetricsSnapshot metrics = MetricRegistry::Default().Snapshot();
  auto tier_bytes = [&](std::uint64_t vm,
                        const char* tier) -> unsigned long long {
    const MetricsSnapshot::Entry* entry = metrics.Find(
        "swap.vm" + std::to_string(vm) + "." + tier + "_bytes");
    if (entry == nullptr || !entry->has_gauge || entry->gauge_sum < 0) {
      return 0;
    }
    return static_cast<unsigned long long>(entry->gauge_sum);
  };
  std::ostringstream out;
  out << "vm calls ok cost_vns wire_bytes cached_bytes "
         "vns_rate_1s vns_rate_10s wire_rate_1s "
         "dev_bytes host_bytes comp_bytes disk_bytes statuses\n";
  for (const VmAccountSnapshot& s : snaps) {
    char line[384];
    std::snprintf(line, sizeof(line),
                  "%llu %llu %llu %llu %llu %llu %.0f %.0f %.0f "
                  "%llu %llu %llu %llu ",
                  static_cast<unsigned long long>(s.vm_id),
                  static_cast<unsigned long long>(s.calls),
                  static_cast<unsigned long long>(s.ok_calls),
                  static_cast<unsigned long long>(s.cost_vns),
                  static_cast<unsigned long long>(s.wire_bytes),
                  static_cast<unsigned long long>(s.cached_bytes),
                  s.vns_rate_1s, s.vns_rate_10s, s.wire_rate_1s,
                  tier_bytes(s.vm_id, "device"), tier_bytes(s.vm_id, "host"),
                  tier_bytes(s.vm_id, "compressed"),
                  tier_bytes(s.vm_id, "disk"));
    out << line;
    bool first = true;
    for (unsigned i = 0; i < kLedgerStatusSlots; ++i) {
      if (s.status_counts[i] == 0) {
        continue;
      }
      out << (first ? "" : ",")
          << StatusCodeName(static_cast<StatusCode>(i)) << "="
          << s.status_counts[i];
      first = false;
    }
    if (first) {
      out << "-";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace ava::obs
