#include "src/obs/trace.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <sstream>

#include "src/common/log.h"

namespace ava::obs {

namespace {
// Cap the in-memory event buffer; a runaway traced loop should degrade the
// trace, not the process.
constexpr std::size_t kMaxEvents = 1u << 20;
}  // namespace

struct Tracer::Impl {
  struct Event {
    const char* name;
    TraceLane lane;
    std::uint64_t vm_id;
    std::uint64_t trace_id;
    std::int64_t start_ns;
    std::int64_t end_ns;
    std::vector<TraceArg> args;
  };

  mutable std::mutex mutex;
  std::vector<Event> events;
  std::size_t dropped = 0;
  std::string path;
  pid_t origin_pid = 0;
};

Tracer::Tracer() : impl_(std::make_unique<Impl>()) {
  const char* env = std::getenv("AVA_TRACE");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0) {
    return;
  }
  impl_->path = std::strcmp(env, "1") == 0 ? "ava_trace.json" : env;
  impl_->origin_pid = ::getpid();
  enabled_.store(true, std::memory_order_relaxed);
}

Tracer::~Tracer() = default;

Tracer& Tracer::Default() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    std::atexit([] { Tracer::Default().Flush(); });
    return t;
  }();
  return *tracer;
}

void Tracer::RecordSpan(TraceLane lane, const char* name, std::uint64_t vm_id,
                        std::uint64_t trace_id, std::int64_t start_ns,
                        std::int64_t end_ns,
                        std::initializer_list<TraceArg> args) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->events.size() >= kMaxEvents) {
    ++impl_->dropped;
    return;
  }
  Impl::Event event;
  event.name = name;
  event.lane = lane;
  event.vm_id = vm_id;
  event.trace_id = trace_id;
  event.start_ns = start_ns;
  event.end_ns = end_ns;
  event.args.assign(args.begin(), args.end());
  impl_->events.push_back(std::move(event));
}

std::string Tracer::SerializeJson() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  // Thread-name metadata: one entry per (vm, lane) pair seen.
  std::set<std::pair<std::uint64_t, int>> lanes;
  for (const auto& event : impl_->events) {
    lanes.emplace(event.vm_id, static_cast<int>(event.lane));
  }
  for (const auto& [vm, lane] : lanes) {
    const char* lane_name = lane == 1 ? "guest" : lane == 2 ? "router"
                                                            : "server";
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%llu,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", static_cast<unsigned long long>(vm), lane,
                  lane_name);
    out << buf;
    first = false;
  }
  for (const auto& event : impl_->events) {
    const double ts_us = static_cast<double>(event.start_ns) / 1000.0;
    const double dur_us =
        static_cast<double>(event.end_ns - event.start_ns) / 1000.0;
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"ava\",\"ph\":\"X\","
                  "\"pid\":%llu,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                  "\"args\":{\"trace_id\":%llu",
                  first ? "" : ",", event.name,
                  static_cast<unsigned long long>(event.vm_id),
                  static_cast<int>(event.lane), ts_us,
                  dur_us < 0 ? 0.0 : dur_us,
                  static_cast<unsigned long long>(event.trace_id));
    out << buf;
    first = false;
    for (const TraceArg& arg : event.args) {
      std::snprintf(buf, sizeof(buf), ",\"%s\":%lld", arg.key,
                    static_cast<long long>(arg.value));
      out << buf;
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

Status Tracer::WriteFile(const std::string& path) const {
  const std::string json = SerializeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open trace file " + path);
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    return Internal("short write to trace file " + path);
  }
  return OkStatus();
}

void Tracer::Flush() {
  if (!enabled()) {
    return;
  }
  std::string path;
  std::size_t dropped = 0;
  bool empty = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    path = impl_->path;
    dropped = impl_->dropped;
    empty = impl_->events.empty();
    // A forked child flushing the shared path would clobber the parent's
    // trace; give it its own file.
    if (impl_->origin_pid != 0 && ::getpid() != impl_->origin_pid) {
      path += "." + std::to_string(::getpid());
    }
  }
  if (path.empty() || empty) {
    return;
  }
  Status status = WriteFile(path);
  if (!status.ok()) {
    AVA_LOG(ERROR) << "trace flush failed: " << status;
    return;
  }
  if (dropped > 0) {
    AVA_LOG(WARNING) << "trace buffer overflowed; dropped " << dropped
                     << " spans";
  }
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->events.size();
}

std::size_t Tracer::dropped_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->dropped;
}

void Tracer::EnableForTest(std::string path) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->path = std::move(path);
  impl_->origin_pid = ::getpid();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->events.clear();
  impl_->dropped = 0;
}

}  // namespace ava::obs
