#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

namespace ava::obs {

// ----------------------------- sampling flag -------------------------------

namespace {

bool SamplingFromEnv() {
  const char* trace = std::getenv("AVA_TRACE");
  if (trace != nullptr && trace[0] != '\0' &&
      std::strcmp(trace, "0") != 0) {
    return true;
  }
  const char* dump = std::getenv("AVA_METRICS_DUMP");
  return dump != nullptr && dump[0] != '\0';
}

}  // namespace

namespace metrics_internal {
std::atomic<bool> g_sampling_enabled{SamplingFromEnv()};
}  // namespace metrics_internal

void SetSamplingEnabled(bool enabled) {
  metrics_internal::g_sampling_enabled.store(enabled,
                                             std::memory_order_relaxed);
}

// ------------------------------ histogram ----------------------------------

std::int64_t Histogram::BucketLow(int bucket) {
  if (bucket <= 0) {
    return 0;
  }
  return std::int64_t{1} << (bucket - 1);
}

std::int64_t Histogram::BucketHigh(int bucket) {
  if (bucket <= 0) {
    return 0;
  }
  if (bucket >= kHistogramBuckets - 1) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return (std::int64_t{1} << bucket) - 1;
}

void Histogram::Record(std::int64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::int64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramSnapshot::Mean() const {
  if (count == 0) {
    return 0.0;
  }
  return static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank (1-based): the smallest rank covering fraction p.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  double value = static_cast<double>(max == std::numeric_limits<std::int64_t>::min() ? 0 : max);
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    if (cumulative + buckets[b] >= rank) {
      // Interpolate position within the bucket's value range.
      const double lo = static_cast<double>(Histogram::BucketLow(b));
      const double hi =
          b >= kHistogramBuckets - 1
              ? static_cast<double>(max)
              : static_cast<double>(Histogram::BucketHigh(b));
      const double frac = static_cast<double>(rank - cumulative) /
                          static_cast<double>(buckets[b]);
      value = lo + (hi - lo) * frac;
      break;
    }
    cumulative += buckets[b];
  }
  // Clamp to the exact observed range: single-sample and narrow
  // distributions report exact values instead of bucket edges.
  value = std::max(value, static_cast<double>(min));
  value = std::min(value, static_cast<double>(max));
  return value;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

// ------------------------------ registry -----------------------------------

struct MetricRegistry::Impl {
  struct Entry {
    std::weak_ptr<Counter> counter;
    std::weak_ptr<Gauge> gauge;
    std::weak_ptr<Histogram> histogram;
  };
  // Final values of cells whose owners have been destroyed. Folding on cell
  // destruction keeps the exit dump complete even when every endpoint /
  // session is torn down before atexit runs.
  struct Retired {
    std::uint64_t counter_sum = 0;
    bool has_counter = false;
    std::int64_t gauge_sum = 0;
    bool has_gauge = false;
    HistogramSnapshot histogram;
    bool has_histogram = false;
  };
  mutable std::mutex mutex;
  std::multimap<std::string, Entry> entries;
  std::map<std::string, Retired> retired;

  void Prune() {
    for (auto it = entries.begin(); it != entries.end();) {
      const Entry& e = it->second;
      if (e.counter.expired() && e.gauge.expired() && e.histogram.expired()) {
        it = entries.erase(it);
      } else {
        ++it;
      }
    }
  }
};

MetricRegistry::MetricRegistry() : impl_(std::make_unique<Impl>()) {}
MetricRegistry::~MetricRegistry() = default;

namespace {

void DumpAtExit() {
  const char* dest = std::getenv("AVA_METRICS_DUMP");
  if (dest == nullptr || dest[0] == '\0' || std::strcmp(dest, "0") == 0) {
    return;
  }
  const std::string text = MetricRegistry::Default().Dump();
  if (std::strcmp(dest, "stdout") == 0 || std::strcmp(dest, "-") == 0) {
    std::fputs(text.c_str(), stdout);
  } else if (std::strcmp(dest, "stderr") == 0 || std::strcmp(dest, "1") == 0) {
    std::fputs(text.c_str(), stderr);
  } else {
    std::FILE* f = std::fopen(dest, "w");
    if (f != nullptr) {
      std::fputs(text.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "AVA_METRICS_DUMP: cannot open %s\n", dest);
    }
  }
}

}  // namespace

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = [] {
    auto* r = new MetricRegistry();
    std::atexit(DumpAtExit);
    return r;
  }();
  return *registry;
}

// The cell deleters reference impl_ directly; Default() leaks its registry,
// so the Impl outlives every cell, including cells owned by globals.
std::shared_ptr<Counter> MetricRegistry::NewCounter(std::string name) {
  Impl* impl = impl_.get();
  std::shared_ptr<Counter> cell(new Counter(), [impl, name](Counter* c) {
    {
      std::lock_guard<std::mutex> lock(impl->mutex);
      auto& retired = impl->retired[name];
      retired.counter_sum += c->Value();
      retired.has_counter = true;
    }
    delete c;
  });
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->Prune();
  Impl::Entry entry;
  entry.counter = cell;
  impl_->entries.emplace(std::move(name), std::move(entry));
  return cell;
}

std::shared_ptr<Gauge> MetricRegistry::NewGauge(std::string name) {
  Impl* impl = impl_.get();
  std::shared_ptr<Gauge> cell(new Gauge(), [impl, name](Gauge* g) {
    {
      std::lock_guard<std::mutex> lock(impl->mutex);
      auto& retired = impl->retired[name];
      retired.gauge_sum += g->Value();
      retired.has_gauge = true;
    }
    delete g;
  });
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->Prune();
  Impl::Entry entry;
  entry.gauge = cell;
  impl_->entries.emplace(std::move(name), std::move(entry));
  return cell;
}

std::shared_ptr<Histogram> MetricRegistry::NewHistogram(std::string name) {
  Impl* impl = impl_.get();
  std::shared_ptr<Histogram> cell(new Histogram(), [impl, name](Histogram* h) {
    {
      std::lock_guard<std::mutex> lock(impl->mutex);
      auto& retired = impl->retired[name];
      retired.histogram.Merge(h->Snapshot());
      retired.has_histogram = true;
    }
    delete h;
  });
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->Prune();
  Impl::Entry entry;
  entry.histogram = cell;
  impl_->entries.emplace(std::move(name), std::move(entry));
  return cell;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  // Aggregate live cells by name. std::map keeps the aggregate
  // deterministically name-sorted regardless of registration order or the
  // multimap's bucket layout.
  using Agg = MetricsSnapshot::Entry;
  std::map<std::string, Agg> by_name;
  // Pin the live cells and release the pins only after unlocking: if lock()
  // here grabbed the last reference to a dying cell, destroying it inside
  // this scope would re-take the registry mutex in the cell's deleter.
  std::vector<std::shared_ptr<Counter>> live_counters;
  std::vector<std::shared_ptr<Gauge>> live_gauges;
  std::vector<std::shared_ptr<Histogram>> live_histograms;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& [name, retired] : impl_->retired) {
      Agg& agg = by_name[name];
      agg.counter_sum += retired.counter_sum;
      agg.has_counter |= retired.has_counter;
      agg.gauge_sum += retired.gauge_sum;
      agg.has_gauge |= retired.has_gauge;
      if (retired.has_histogram) {
        agg.histogram.Merge(retired.histogram);
        agg.has_histogram = true;
      }
    }
    for (const auto& [name, entry] : impl_->entries) {
      Agg& agg = by_name[name];
      if (auto c = entry.counter.lock()) {
        agg.counter_sum += c->Value();
        agg.has_counter = true;
        live_counters.push_back(std::move(c));
      }
      if (auto g = entry.gauge.lock()) {
        agg.gauge_sum += g->Value();
        agg.has_gauge = true;
        live_gauges.push_back(std::move(g));
      }
      if (auto h = entry.histogram.lock()) {
        agg.histogram.Merge(h->Snapshot());
        agg.has_histogram = true;
        live_histograms.push_back(std::move(h));
      }
    }
  }
  live_counters.clear();
  live_gauges.clear();
  live_histograms.clear();
  MetricsSnapshot snap;
  snap.entries.reserve(by_name.size());
  for (auto& [name, agg] : by_name) {
    agg.name = name;
    snap.entries.push_back(std::move(agg));
  }
  return snap;
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    std::string_view name) const {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Entry& e, std::string_view n) { return e.name < n; });
  if (it == entries.end() || it->name != name) {
    return nullptr;
  }
  return &*it;
}

std::string MetricsSnapshot::HumanText() const {
  std::ostringstream out;
  out << "=== ava metrics ===\n";
  for (const Entry& agg : entries) {
    if (agg.has_counter) {
      out << "counter   " << agg.name << " = " << agg.counter_sum << "\n";
    }
    if (agg.has_gauge) {
      out << "gauge     " << agg.name << " = " << agg.gauge_sum << "\n";
    }
    if (agg.has_histogram) {
      const HistogramSnapshot& h = agg.histogram;
      out << "histogram " << agg.name << " count=" << h.count;
      if (!h.empty()) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      " mean=%.1f p50=%.1f p95=%.1f p99=%.1f min=%lld max=%lld",
                      h.Mean(), h.Percentile(50), h.Percentile(95),
                      h.Percentile(99), static_cast<long long>(h.min),
                      static_cast<long long>(h.max));
        out << buf;
      }
      out << "\n";
    }
  }
  return out.str();
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "ava_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::PrometheusText() const {
  std::ostringstream out;
  char buf[160];
  for (const Entry& agg : entries) {
    const std::string prom = PrometheusName(agg.name);
    if (agg.has_counter) {
      out << "# TYPE " << prom << " counter\n"
          << prom << " " << agg.counter_sum << "\n";
    }
    if (agg.has_gauge) {
      out << "# TYPE " << prom << " gauge\n"
          << prom << " " << agg.gauge_sum << "\n";
    }
    if (agg.has_histogram) {
      const HistogramSnapshot& h = agg.histogram;
      out << "# TYPE " << prom << " summary\n";
      if (!h.empty()) {
        std::snprintf(buf, sizeof(buf), "%.1f", h.Percentile(50));
        out << prom << "{quantile=\"0.5\"} " << buf << "\n";
        std::snprintf(buf, sizeof(buf), "%.1f", h.Percentile(95));
        out << prom << "{quantile=\"0.95\"} " << buf << "\n";
        std::snprintf(buf, sizeof(buf), "%.1f", h.Percentile(99));
        out << prom << "{quantile=\"0.99\"} " << buf << "\n";
      }
      out << prom << "_sum " << agg.histogram.sum << "\n"
          << prom << "_count " << agg.histogram.count << "\n";
    }
  }
  return out.str();
}

std::string MetricRegistry::Dump() const { return Snapshot().HumanText(); }

}  // namespace ava::obs
