#include "src/obs/trace_check.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace ava::obs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue value;
    AVA_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return DataLoss("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        return ParseLiteral("true", [out] {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = true;
        });
      case 'f':
        return ParseLiteral("false", [out] {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = false;
        });
      case 'n':
        return ParseLiteral("null",
                            [out] { out->kind = JsonValue::Kind::kNull; });
      default:
        return ParseNumber(out);
    }
  }

  template <typename Fn>
  Status ParseLiteral(const char* literal, Fn apply) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (!Consume(*p)) {
        return Error(std::string("bad literal, expected ") + literal);
      }
    }
    apply();
    return OkStatus();
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      return Error("malformed number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return OkStatus();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return OkStatus();
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Keep it simple: decode only as a replacement '?' — the tracer
            // never emits \u escapes.
            if (text_.size() - pos_ < 4) {
              return Error("truncated \\u escape");
            }
            pos_ += 4;
            out->push_back('?');
            break;
          }
          default:
            return Error("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    Consume('{');
    SkipWs();
    if (Consume('}')) {
      return OkStatus();
    }
    while (true) {
      SkipWs();
      std::string key;
      AVA_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      SkipWs();
      JsonValue value;
      AVA_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return OkStatus();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    Consume('[');
    SkipWs();
    if (Consume(']')) {
      return OkStatus();
    }
    while (true) {
      SkipWs();
      JsonValue value;
      AVA_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return OkStatus();
      }
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// The hop timestamps a complete guest roundtrip span must carry.
constexpr const char* kHopKeys[] = {
    "t_send_ns",       "t_rx_ns",       "t_dispatch_ns",
    "t_exec_start_ns", "t_exec_end_ns", "t_wake_ns",
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

Result<TraceCheckReport> CheckChromeTrace(const std::string& json_text,
                                          int min_hops) {
  AVA_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json_text));
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return DataLoss("trace document has no traceEvents array");
  }

  TraceCheckReport report;
  std::unordered_set<std::uint64_t> router_ids;
  std::unordered_map<std::uint64_t, int> server_span_counts;
  struct GuestSpan {
    std::uint64_t trace_id;
    int distinct_hops;
    int retry;
  };
  std::vector<GuestSpan> guest_spans;

  for (const JsonValue& event : events->array) {
    if (!event.is_object()) {
      return DataLoss("traceEvents entry is not an object");
    }
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->string != "X") {
      continue;  // metadata etc.
    }
    const JsonValue* name = event.Find("name");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* dur = event.Find("dur");
    const JsonValue* args = event.Find("args");
    if (name == nullptr || ts == nullptr || dur == nullptr ||
        args == nullptr || !args->is_object()) {
      return DataLoss("span missing name/ts/dur/args");
    }
    const JsonValue* trace_id = args->Find("trace_id");
    if (trace_id == nullptr) {
      return DataLoss("span '" + name->string + "' missing args.trace_id");
    }
    const auto id = static_cast<std::uint64_t>(trace_id->number);
    ++report.events;
    if (name->string == "router.queue") {
      ++report.router_spans;
      router_ids.insert(id);
    } else if (name->string == "server.exec") {
      ++report.server_spans;
      ++server_span_counts[id];
    } else if (name->string == "call.sync") {
      ++report.guest_spans;
      std::set<std::int64_t> distinct;
      for (const char* key : kHopKeys) {
        const JsonValue* hop = args->Find(key);
        if (hop == nullptr) {
          return DataLoss("guest span missing hop " + std::string(key));
        }
        distinct.insert(static_cast<std::int64_t>(hop->number));
      }
      int retry = 0;
      if (const JsonValue* r = args->Find("retry"); r != nullptr) {
        retry = static_cast<int>(r->number);
      }
      guest_spans.push_back(
          GuestSpan{id, static_cast<int>(distinct.size()), retry});
    }
  }

  for (const GuestSpan& span : guest_spans) {
    auto server_it = server_span_counts.find(span.trace_id);
    const int server_count =
        server_it == server_span_counts.end() ? 0 : server_it->second;
    if (span.distinct_hops >= min_hops && router_ids.count(span.trace_id) &&
        server_count > 0) {
      ++report.complete_spans;
    }
    if (span.retry > 0) {
      ++report.retried_spans;
      // A linked retry means the original attempt reached the server under
      // the SAME trace id: at least retry+1 server.exec spans share it.
      if (server_count >= span.retry + 1) {
        ++report.linked_retries;
      }
    }
  }
  return report;
}

}  // namespace ava::obs
