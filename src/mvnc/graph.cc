#include "src/mvnc/graph.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mvnc {
namespace {

constexpr std::uint32_t kMagic = 0x434E564D;  // "MVNC"
constexpr std::uint32_t kVersion = 1;

// Shape after a conv/pool layer given same/valid padding.
std::int32_t OutDim(std::int32_t in, std::int32_t kernel, std::int32_t stride,
                    bool same) {
  if (same) {
    return (in + stride - 1) / stride;
  }
  return (in - kernel) / stride + 1;
}

struct Shape {
  bool flat = false;
  std::int32_t c = 0, h = 0, w = 0, n = 0;
  std::size_t Elements() const {
    return flat ? static_cast<std::size_t>(n)
                : static_cast<std::size_t>(c) * h * w;
  }
};

ava::Result<Shape> InferShapes(const GraphDef& def,
                               std::vector<Shape>* per_layer) {
  Shape s;
  s.c = def.input_c;
  s.h = def.input_h;
  s.w = def.input_w;
  for (const Layer& layer : def.layers) {
    switch (layer.kind) {
      case LayerKind::kConv2d: {
        if (s.flat) {
          return ava::InvalidArgument("conv2d after flatten");
        }
        std::size_t expect = static_cast<std::size_t>(layer.out_channels) *
                             s.c * layer.kernel * layer.kernel;
        if (layer.weights.size() != expect ||
            layer.bias.size() != static_cast<std::size_t>(layer.out_channels)) {
          return ava::InvalidArgument("conv2d weight shape mismatch");
        }
        s.h = OutDim(s.h, layer.kernel, layer.stride, layer.same_padding);
        s.w = OutDim(s.w, layer.kernel, layer.stride, layer.same_padding);
        s.c = layer.out_channels;
        break;
      }
      case LayerKind::kMaxPool: {
        if (s.flat) {
          return ava::InvalidArgument("maxpool after flatten");
        }
        s.h = (s.h - layer.kernel) / layer.stride + 1;
        s.w = (s.w - layer.kernel) / layer.stride + 1;
        if (s.h <= 0 || s.w <= 0) {
          return ava::InvalidArgument("maxpool collapses activation");
        }
        break;
      }
      case LayerKind::kDense: {
        std::size_t inputs = s.Elements();
        std::size_t expect = static_cast<std::size_t>(layer.units) * inputs;
        if (layer.weights.size() != expect ||
            layer.bias.size() != static_cast<std::size_t>(layer.units)) {
          return ava::InvalidArgument("dense weight shape mismatch");
        }
        s.flat = true;
        s.n = layer.units;
        break;
      }
      case LayerKind::kSoftmax:
        if (!s.flat) {
          return ava::InvalidArgument("softmax requires a flat activation");
        }
        break;
    }
    if (per_layer != nullptr) {
      per_layer->push_back(s);
    }
  }
  return s;
}

}  // namespace

ava::Bytes GraphDef::Serialize() const {
  ava::ByteWriter w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  w.PutString(name);
  w.PutI32(input_c);
  w.PutI32(input_h);
  w.PutI32(input_w);
  w.PutU32(static_cast<std::uint32_t>(layers.size()));
  for (const Layer& layer : layers) {
    w.PutU8(static_cast<std::uint8_t>(layer.kind));
    w.PutBool(layer.relu);
    w.PutI32(layer.out_channels);
    w.PutI32(layer.kernel);
    w.PutI32(layer.stride);
    w.PutBool(layer.same_padding);
    w.PutI32(layer.units);
    w.PutBlob(layer.weights.data(), layer.weights.size() * sizeof(float));
    w.PutBlob(layer.bias.data(), layer.bias.size() * sizeof(float));
  }
  return std::move(w).TakeBytes();
}

ava::Result<GraphDef> GraphDef::Deserialize(const void* data,
                                            std::size_t size) {
  ava::ByteReader r(data, size);
  if (r.GetU32() != kMagic) {
    return ava::InvalidArgument("not an MVNC graph file");
  }
  if (r.GetU32() != kVersion) {
    return ava::InvalidArgument("unsupported MVNC graph version");
  }
  GraphDef def;
  def.name = r.GetString();
  def.input_c = r.GetI32();
  def.input_h = r.GetI32();
  def.input_w = r.GetI32();
  const std::uint32_t num_layers = r.GetU32();
  if (def.input_c <= 0 || def.input_h <= 0 || def.input_w <= 0 ||
      num_layers > 256) {
    return ava::InvalidArgument("malformed MVNC graph header");
  }
  for (std::uint32_t i = 0; i < num_layers && !r.failed(); ++i) {
    Layer layer;
    layer.kind = static_cast<LayerKind>(r.GetU8());
    layer.relu = r.GetBool();
    layer.out_channels = r.GetI32();
    layer.kernel = r.GetI32();
    layer.stride = r.GetI32();
    layer.same_padding = r.GetBool();
    layer.units = r.GetI32();
    auto weights = r.GetBlobView();
    layer.weights.resize(weights.size() / sizeof(float));
    if (!weights.empty()) {
      std::memcpy(layer.weights.data(), weights.data(), weights.size());
    }
    auto bias = r.GetBlobView();
    layer.bias.resize(bias.size() / sizeof(float));
    if (!bias.empty()) {
      std::memcpy(layer.bias.data(), bias.data(), bias.size());
    }
    def.layers.push_back(std::move(layer));
  }
  AVA_RETURN_IF_ERROR(r.status());
  // Validate shapes now so AllocateGraph rejects bad files.
  AVA_RETURN_IF_ERROR(InferShapes(def, nullptr).status());
  return def;
}

ava::Result<std::size_t> GraphDef::OutputElements() const {
  AVA_ASSIGN_OR_RETURN(Shape s, InferShapes(*this, nullptr));
  return s.Elements();
}

ava::Result<Tensor> GraphDef::Run(const Tensor& input,
                                  std::uint64_t* flops) const {
  if (input.ElementCount() != InputElements()) {
    return ava::InvalidArgument("input tensor has wrong element count");
  }
  std::uint64_t ops = 0;
  // Current activation.
  std::vector<float> act = input.data;
  std::int32_t c = input_c, h = input_h, w = input_w;
  bool flat = false;
  std::int32_t flat_n = 0;

  for (const Layer& layer : layers) {
    switch (layer.kind) {
      case LayerKind::kConv2d: {
        const std::int32_t oc = layer.out_channels;
        const std::int32_t k = layer.kernel;
        const std::int32_t stride = layer.stride;
        const std::int32_t oh = OutDim(h, k, stride, layer.same_padding);
        const std::int32_t ow = OutDim(w, k, stride, layer.same_padding);
        const std::int32_t pad =
            layer.same_padding ? ((oh - 1) * stride + k - h + 1) / 2 : 0;
        std::vector<float> out(static_cast<std::size_t>(oc) * oh * ow);
        for (std::int32_t o = 0; o < oc; ++o) {
          for (std::int32_t y = 0; y < oh; ++y) {
            for (std::int32_t x = 0; x < ow; ++x) {
              float acc = layer.bias[static_cast<std::size_t>(o)];
              for (std::int32_t ic = 0; ic < c; ++ic) {
                for (std::int32_t ky = 0; ky < k; ++ky) {
                  const std::int32_t sy = y * stride + ky - pad;
                  if (sy < 0 || sy >= h) {
                    continue;
                  }
                  for (std::int32_t kx = 0; kx < k; ++kx) {
                    const std::int32_t sx = x * stride + kx - pad;
                    if (sx < 0 || sx >= w) {
                      continue;
                    }
                    acc += act[(static_cast<std::size_t>(ic) * h + sy) * w +
                               sx] *
                           layer.weights[((static_cast<std::size_t>(o) * c +
                                           ic) * k + ky) * k + kx];
                  }
                }
              }
              if (layer.relu && acc < 0.0f) {
                acc = 0.0f;
              }
              out[(static_cast<std::size_t>(o) * oh + y) * ow + x] = acc;
            }
          }
        }
        ops += 2ull * oc * oh * ow * c * k * k;
        act = std::move(out);
        c = oc;
        h = oh;
        w = ow;
        break;
      }
      case LayerKind::kMaxPool: {
        const std::int32_t k = layer.kernel;
        const std::int32_t stride = layer.stride;
        const std::int32_t oh = (h - k) / stride + 1;
        const std::int32_t ow = (w - k) / stride + 1;
        std::vector<float> out(static_cast<std::size_t>(c) * oh * ow);
        for (std::int32_t ic = 0; ic < c; ++ic) {
          for (std::int32_t y = 0; y < oh; ++y) {
            for (std::int32_t x = 0; x < ow; ++x) {
              float best = -1e30f;
              for (std::int32_t ky = 0; ky < k; ++ky) {
                for (std::int32_t kx = 0; kx < k; ++kx) {
                  best = std::max(
                      best, act[(static_cast<std::size_t>(ic) * h +
                                 y * stride + ky) * w + x * stride + kx]);
                }
              }
              out[(static_cast<std::size_t>(ic) * oh + y) * ow + x] = best;
            }
          }
        }
        ops += static_cast<std::uint64_t>(c) * oh * ow * k * k;
        act = std::move(out);
        h = oh;
        w = ow;
        break;
      }
      case LayerKind::kDense: {
        const std::size_t inputs = act.size();
        const std::int32_t units = layer.units;
        std::vector<float> out(static_cast<std::size_t>(units));
        for (std::int32_t u = 0; u < units; ++u) {
          float acc = layer.bias[static_cast<std::size_t>(u)];
          const float* row =
              layer.weights.data() + static_cast<std::size_t>(u) * inputs;
          for (std::size_t i = 0; i < inputs; ++i) {
            acc += row[i] * act[i];
          }
          if (layer.relu && acc < 0.0f) {
            acc = 0.0f;
          }
          out[static_cast<std::size_t>(u)] = acc;
        }
        ops += 2ull * units * inputs;
        act = std::move(out);
        flat = true;
        flat_n = units;
        break;
      }
      case LayerKind::kSoftmax: {
        float max_v = *std::max_element(act.begin(), act.end());
        float sum = 0.0f;
        for (float& v : act) {
          v = std::exp(v - max_v);
          sum += v;
        }
        for (float& v : act) {
          v /= sum;
        }
        ops += 3ull * act.size();
        break;
      }
    }
  }
  if (flops != nullptr) {
    *flops += ops;
  }
  Tensor out;
  if (flat) {
    out.shape = {flat_n};
  } else {
    out.shape = {c, h, w};
  }
  out.data = std::move(act);
  return out;
}

GraphBuilder::GraphBuilder(std::int32_t c, std::int32_t h, std::int32_t w,
                           std::uint64_t seed)
    : c_(c), h_(h), w_(w), rng_(seed) {
  def_.input_c = c;
  def_.input_h = h;
  def_.input_w = w;
  def_.name = "graph";
}

GraphBuilder& GraphBuilder::Conv2d(std::int32_t out_channels,
                                   std::int32_t kernel, std::int32_t stride,
                                   bool relu) {
  Layer layer;
  layer.kind = LayerKind::kConv2d;
  layer.relu = relu;
  layer.out_channels = out_channels;
  layer.kernel = kernel;
  layer.stride = stride;
  layer.same_padding = true;
  const std::size_t n = static_cast<std::size_t>(out_channels) * c_ * kernel *
                        kernel;
  layer.weights.resize(n);
  const float scale =
      1.0f / std::sqrt(static_cast<float>(c_ * kernel * kernel));
  for (auto& v : layer.weights) {
    v = rng_.NextFloat(-scale, scale);
  }
  layer.bias.resize(static_cast<std::size_t>(out_channels));
  for (auto& v : layer.bias) {
    v = rng_.NextFloat(-0.1f, 0.1f);
  }
  def_.layers.push_back(std::move(layer));
  c_ = out_channels;
  h_ = OutDim(h_, kernel, stride, true);
  w_ = OutDim(w_, kernel, stride, true);
  return *this;
}

GraphBuilder& GraphBuilder::MaxPool(std::int32_t kernel, std::int32_t stride) {
  if (stride == 0) {
    stride = kernel;
  }
  Layer layer;
  layer.kind = LayerKind::kMaxPool;
  layer.kernel = kernel;
  layer.stride = stride;
  def_.layers.push_back(std::move(layer));
  h_ = (h_ - kernel) / stride + 1;
  w_ = (w_ - kernel) / stride + 1;
  return *this;
}

GraphBuilder& GraphBuilder::Dense(std::int32_t units, bool relu) {
  const std::size_t inputs =
      flat_ ? static_cast<std::size_t>(flat_n_)
            : static_cast<std::size_t>(c_) * h_ * w_;
  Layer layer;
  layer.kind = LayerKind::kDense;
  layer.relu = relu;
  layer.units = units;
  layer.weights.resize(static_cast<std::size_t>(units) * inputs);
  const float scale = 1.0f / std::sqrt(static_cast<float>(inputs));
  for (auto& v : layer.weights) {
    v = rng_.NextFloat(-scale, scale);
  }
  layer.bias.resize(static_cast<std::size_t>(units));
  for (auto& v : layer.bias) {
    v = rng_.NextFloat(-0.1f, 0.1f);
  }
  def_.layers.push_back(std::move(layer));
  flat_ = true;
  flat_n_ = units;
  return *this;
}

GraphBuilder& GraphBuilder::Softmax() {
  Layer layer;
  layer.kind = LayerKind::kSoftmax;
  def_.layers.push_back(std::move(layer));
  return *this;
}

GraphBuilder& GraphBuilder::Named(const std::string& name) {
  def_.name = name;
  return *this;
}

}  // namespace mvnc
