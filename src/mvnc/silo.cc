// The MVNC device engine and the 10 public API entry points.
#include "src/mvnc/silo.h"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <string>
#include <thread>

#include "src/common/log.h"
#include "src/mvnc/graph.h"

// ---------------------------------------------------------------------------
// Records.
// ---------------------------------------------------------------------------

struct mvnc_device_rec {
  mvnc::MvncSilo* silo = nullptr;
  mvnc::DeviceEngine* engine = nullptr;
  std::int32_t index = 0;
};

struct mvnc_graph_rec {
  mvnc_device device = nullptr;
  mvnc::GraphDef def;
  std::size_t weight_bytes = 0;
  std::size_t output_elements = 0;
  // Completed results, FIFO; guarded by the engine mutex.
  std::deque<mvnc::Tensor> results;
  std::uint32_t pending = 0;
  std::int32_t iterations = 0;
  float last_time_ms = 0.0f;
};

namespace mvnc {

// One virtual compute stick: a worker thread running inferences FIFO.
class DeviceEngine {
 public:
  explicit DeviceEngine(const MvncConfig& config) : config_(config) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }

  ~DeviceEngine() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    if (worker_.joinable()) {
      worker_.join();
    }
  }

  bool ChargeMemory(std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (memory_used_ + bytes > config_.device_memory_bytes) {
      return false;
    }
    memory_used_ += bytes;
    ++loaded_graphs_;
    return true;
  }

  void RefundMemory(std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    memory_used_ -= bytes;
    --loaded_graphs_;
  }

  void SubmitInference(mvnc_graph graph, Tensor input) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++graph->pending;
      queue_.emplace_back(graph, std::move(input));
    }
    work_cv_.notify_one();
  }

  // Blocks for the next completed result of `graph`.
  mvnc_status WaitResult(mvnc_graph graph, Tensor* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return stopping_ || !graph->results.empty() ||
             (graph->pending == 0 && graph->results.empty());
    });
    if (graph->results.empty()) {
      return MVNC_NO_DATA;  // nothing queued: nothing will ever arrive
    }
    *out = std::move(graph->results.front());
    graph->results.pop_front();
    return MVNC_OK;
  }

  // Blocks until no inference for `graph` is queued or running.
  void DrainGraph(mvnc_graph graph) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return stopping_ || graph->pending == 0; });
    graph->results.clear();
  }

  std::int32_t loaded_graphs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return loaded_graphs_;
  }

  MvncCounters Counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
  }

 private:
  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) {
          return;
        }
        continue;
      }
      auto [graph, input] = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();

      std::uint64_t flops = 0;
      auto result = graph->def.Run(input, &flops);

      lock.lock();
      const std::int64_t cost =
          config_.vns_per_command +
          static_cast<std::int64_t>(static_cast<double>(flops) *
                                    config_.vns_per_flop);
      counters_.virtual_time_ns += cost;
      counters_.flops += flops;
      ++counters_.inferences;
      if (result.ok()) {
        graph->results.push_back(std::move(*result));
      } else {
        AVA_LOG(WARNING) << "mvnc inference failed: " << result.status();
        // Deliver an empty tensor so GetResult unblocks with NO_DATA later.
      }
      ++graph->iterations;
      graph->last_time_ms = static_cast<float>(cost) * 1e-6f;
      --graph->pending;
      lock.unlock();
      done_cv_.notify_all();
      lock.lock();
    }
  }

  MvncConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::pair<mvnc_graph, Tensor>> queue_;
  bool stopping_ = false;
  std::size_t memory_used_ = 0;
  std::int32_t loaded_graphs_ = 0;
  MvncCounters counters_;

  std::thread worker_;
};

MvncSilo::MvncSilo(const MvncConfig& config) : config_(config) {
  for (std::int32_t i = 0; i < config_.num_devices; ++i) {
    engines_.push_back(std::make_unique<DeviceEngine>(config_));
  }
}

MvncSilo::~MvncSilo() = default;

void MvncSilo::RegisterHandle(void* handle) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  handles_.insert(handle);
}

void MvncSilo::UnregisterHandle(void* handle) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  handles_.erase(handle);
}

bool MvncSilo::ValidateHandle(void* handle) {
  if (handle == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return handles_.count(handle) != 0;
}

MvncCounters MvncSilo::Counters() const {
  MvncCounters total;
  for (const auto& engine : engines_) {
    MvncCounters c = engine->Counters();
    total.inferences += c.inferences;
    total.flops += c.flops;
    total.virtual_time_ns += c.virtual_time_ns;
  }
  return total;
}

DeviceEngine* MvncSilo::EngineAt(std::int32_t index) {
  if (index < 0 || index >= static_cast<std::int32_t>(engines_.size())) {
    return nullptr;
  }
  return engines_[static_cast<std::size_t>(index)].get();
}

namespace {
std::unique_ptr<MvncSilo>& SiloSlot() {
  static auto* slot = new std::unique_ptr<MvncSilo>;
  return *slot;
}
}  // namespace

MvncSilo& DefaultMvncSilo() {
  auto& slot = SiloSlot();
  if (slot == nullptr) {
    slot = std::make_unique<MvncSilo>(MvncConfig());
  }
  return *slot;
}

void ResetMvncSilo(const MvncConfig& config) {
  auto& slot = SiloSlot();
  slot.reset();
  slot = std::make_unique<MvncSilo>(config);
}

}  // namespace mvnc

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

namespace {

mvnc_status ReturnOption(const void* src, std::uint32_t src_size, void* data,
                         std::uint32_t data_capacity,
                         std::uint32_t* data_size) {
  if (data != nullptr) {
    if (data_capacity < src_size) {
      return MVNC_INVALID_PARAMETERS;
    }
    std::memcpy(data, src, src_size);
  }
  if (data_size != nullptr) {
    *data_size = src_size;
  }
  return MVNC_OK;
}

}  // namespace

extern "C" {

mvnc_status mvncGetDeviceName(std::int32_t index, char* name,
                              std::uint32_t name_size) {
  if (name == nullptr || name_size == 0) {
    return MVNC_INVALID_PARAMETERS;
  }
  if (index < 0 || index >= mvnc::DefaultMvncSilo().num_devices()) {
    return MVNC_DEVICE_NOT_FOUND;
  }
  std::string device_name = "ncs" + std::to_string(index);
  if (device_name.size() + 1 > name_size) {
    return MVNC_INVALID_PARAMETERS;
  }
  std::memcpy(name, device_name.c_str(), device_name.size() + 1);
  return MVNC_OK;
}

mvnc_status mvncOpenDevice(const char* name, mvnc_device* device) {
  if (name == nullptr || device == nullptr) {
    return MVNC_INVALID_PARAMETERS;
  }
  std::string n(name);
  if (n.rfind("ncs", 0) != 0) {
    return MVNC_DEVICE_NOT_FOUND;
  }
  std::int32_t index = std::atoi(n.c_str() + 3);
  mvnc::DeviceEngine* engine = mvnc::DefaultMvncSilo().EngineAt(index);
  if (engine == nullptr) {
    return MVNC_DEVICE_NOT_FOUND;
  }
  auto* rec = new mvnc_device_rec;
  rec->silo = &mvnc::DefaultMvncSilo();
  rec->engine = engine;
  rec->index = index;
  mvnc::DefaultMvncSilo().RegisterHandle(rec);
  *device = rec;
  return MVNC_OK;
}

mvnc_status mvncCloseDevice(mvnc_device device) {
  if (!mvnc::DefaultMvncSilo().ValidateHandle(device)) {
    return MVNC_INVALID_HANDLE;
  }
  if (device->engine->loaded_graphs() > 0) {
    return MVNC_BUSY;
  }
  mvnc::DefaultMvncSilo().UnregisterHandle(device);
  delete device;
  return MVNC_OK;
}

mvnc_status mvncAllocateGraph(mvnc_device device, mvnc_graph* graph,
                              const void* graph_file,
                              std::uint32_t graph_file_size) {
  if (!mvnc::DefaultMvncSilo().ValidateHandle(device)) {
    return MVNC_INVALID_HANDLE;
  }
  if (graph == nullptr || graph_file == nullptr || graph_file_size == 0) {
    return MVNC_INVALID_PARAMETERS;
  }
  auto def = mvnc::GraphDef::Deserialize(graph_file, graph_file_size);
  if (!def.ok()) {
    return MVNC_UNSUPPORTED_GRAPH_FILE;
  }
  std::size_t weight_bytes = 0;
  for (const auto& layer : def->layers) {
    weight_bytes += (layer.weights.size() + layer.bias.size()) * sizeof(float);
  }
  if (!device->engine->ChargeMemory(weight_bytes)) {
    return MVNC_OUT_OF_MEMORY;
  }
  auto out_elems = def->OutputElements();
  auto* rec = new mvnc_graph_rec;
  rec->device = device;
  rec->def = std::move(*def);
  rec->weight_bytes = weight_bytes;
  rec->output_elements = out_elems.ok() ? *out_elems : 0;
  mvnc::DefaultMvncSilo().RegisterHandle(rec);
  *graph = rec;
  return MVNC_OK;
}

mvnc_status mvncDeallocateGraph(mvnc_graph graph) {
  if (!mvnc::DefaultMvncSilo().ValidateHandle(graph)) {
    return MVNC_INVALID_HANDLE;
  }
  graph->device->engine->DrainGraph(graph);
  graph->device->engine->RefundMemory(graph->weight_bytes);
  mvnc::DefaultMvncSilo().UnregisterHandle(graph);
  delete graph;
  return MVNC_OK;
}

mvnc_status mvncLoadTensor(mvnc_graph graph, const void* tensor,
                           std::uint32_t tensor_size) {
  if (!mvnc::DefaultMvncSilo().ValidateHandle(graph)) {
    return MVNC_INVALID_HANDLE;
  }
  const std::size_t expect = graph->def.InputElements() * sizeof(float);
  if (tensor == nullptr || tensor_size != expect) {
    return MVNC_INVALID_PARAMETERS;
  }
  mvnc::Tensor input = mvnc::Tensor::Chw(graph->def.input_c,
                                         graph->def.input_h,
                                         graph->def.input_w);
  std::memcpy(input.data.data(), tensor, tensor_size);
  graph->device->engine->SubmitInference(graph, std::move(input));
  return MVNC_OK;
}

mvnc_status mvncGetResult(mvnc_graph graph, void* result,
                          std::uint32_t result_capacity,
                          std::uint32_t* result_size) {
  if (!mvnc::DefaultMvncSilo().ValidateHandle(graph)) {
    return MVNC_INVALID_HANDLE;
  }
  mvnc::Tensor out;
  mvnc_status status = graph->device->engine->WaitResult(graph, &out);
  if (status != MVNC_OK) {
    return status;
  }
  const std::uint32_t bytes =
      static_cast<std::uint32_t>(out.data.size() * sizeof(float));
  if (result_size != nullptr) {
    *result_size = bytes;
  }
  if (result == nullptr || result_capacity < bytes) {
    return MVNC_INVALID_PARAMETERS;
  }
  std::memcpy(result, out.data.data(), bytes);
  return MVNC_OK;
}

mvnc_status mvncGetGraphOption(mvnc_graph graph, std::int32_t option,
                               void* data, std::uint32_t data_capacity,
                               std::uint32_t* data_size) {
  if (!mvnc::DefaultMvncSilo().ValidateHandle(graph)) {
    return MVNC_INVALID_HANDLE;
  }
  switch (option) {
    case MVNC_ITERATIONS:
      return ReturnOption(&graph->iterations, sizeof(graph->iterations), data,
                          data_capacity, data_size);
    case MVNC_TIME_TAKEN:
      return ReturnOption(&graph->last_time_ms, sizeof(graph->last_time_ms),
                          data, data_capacity, data_size);
    case MVNC_OUTPUT_SIZE: {
      std::int32_t bytes =
          static_cast<std::int32_t>(graph->output_elements * sizeof(float));
      return ReturnOption(&bytes, sizeof(bytes), data, data_capacity,
                          data_size);
    }
    default:
      return MVNC_INVALID_PARAMETERS;
  }
}

mvnc_status mvncSetGraphOption(mvnc_graph graph, std::int32_t option,
                               const void* data, std::uint32_t data_size) {
  if (!mvnc::DefaultMvncSilo().ValidateHandle(graph)) {
    return MVNC_INVALID_HANDLE;
  }
  if (option == MVNC_ITERATIONS && data != nullptr &&
      data_size == sizeof(std::int32_t)) {
    std::memcpy(&graph->iterations, data, sizeof(std::int32_t));
    return MVNC_OK;
  }
  return MVNC_INVALID_PARAMETERS;
}

mvnc_status mvncGetDeviceOption(mvnc_device device, std::int32_t option,
                                void* data, std::uint32_t data_capacity,
                                std::uint32_t* data_size) {
  if (!mvnc::DefaultMvncSilo().ValidateHandle(device)) {
    return MVNC_INVALID_HANDLE;
  }
  switch (option) {
    case MVNC_LOADED_GRAPHS: {
      std::int32_t n = device->engine->loaded_graphs();
      return ReturnOption(&n, sizeof(n), data, data_capacity, data_size);
    }
    case MVNC_DEVICE_VTIME_NS: {
      std::int64_t v = device->engine->Counters().virtual_time_ns;
      return ReturnOption(&v, sizeof(v), data, data_capacity, data_size);
    }
    default:
      return MVNC_INVALID_PARAMETERS;
  }
}

}  // extern "C"
