// MVNC — the "vendor" neural-compute-stick silo used in place of the Intel
// Movidius NCSDK (see DESIGN.md §2). API shape follows NCSDK v1: open a
// device by name, allocate a compiled graph onto it, stream input tensors,
// fetch results. 10 public entry points; everything below them (the graph
// format, the inference engine, the device worker) is the silo.
#ifndef AVA_SRC_MVNC_MVNC_H_
#define AVA_SRC_MVNC_MVNC_H_

#include <cstddef>
#include <cstdint>

extern "C" {

using mvnc_status = std::int32_t;
using mvnc_device = struct mvnc_device_rec*;
using mvnc_graph = struct mvnc_graph_rec*;

constexpr mvnc_status MVNC_OK = 0;
constexpr mvnc_status MVNC_BUSY = -1;
constexpr mvnc_status MVNC_ERROR = -2;
constexpr mvnc_status MVNC_OUT_OF_MEMORY = -3;
constexpr mvnc_status MVNC_DEVICE_NOT_FOUND = -4;
constexpr mvnc_status MVNC_INVALID_PARAMETERS = -5;
constexpr mvnc_status MVNC_INVALID_HANDLE = -7;
constexpr mvnc_status MVNC_UNSUPPORTED_GRAPH_FILE = -10;
constexpr mvnc_status MVNC_NO_DATA = -25;

// Graph options (mvncGetGraphOption / mvncSetGraphOption).
constexpr std::int32_t MVNC_ITERATIONS = 0;        // int32: inferences run
constexpr std::int32_t MVNC_TIME_TAKEN = 1;        // float: last inference ms (virtual)
constexpr std::int32_t MVNC_OUTPUT_SIZE = 2;       // int32: result bytes

// Device options (mvncGetDeviceOption).
constexpr std::int32_t MVNC_LOADED_GRAPHS = 100;   // int32
constexpr std::int32_t MVNC_DEVICE_VTIME_NS = 101; // int64: virtual ns consumed

// Enumerates virtual sticks: fills `name` ("ncs0", "ncs1", ...) for `index`,
// MVNC_DEVICE_NOT_FOUND past the end.
mvnc_status mvncGetDeviceName(std::int32_t index, char* name,
                              std::uint32_t name_size);

mvnc_status mvncOpenDevice(const char* name, mvnc_device* device);
mvnc_status mvncCloseDevice(mvnc_device device);

// Loads a compiled graph file (see graph.h for the format) onto the device.
mvnc_status mvncAllocateGraph(mvnc_device device, mvnc_graph* graph,
                              const void* graph_file,
                              std::uint32_t graph_file_size);
mvnc_status mvncDeallocateGraph(mvnc_graph graph);

// Queues one input tensor (float32, the graph's input shape) for inference.
mvnc_status mvncLoadTensor(mvnc_graph graph, const void* tensor,
                           std::uint32_t tensor_size);

// Blocks for the next completed inference; writes up to result_capacity
// bytes and the true size.
mvnc_status mvncGetResult(mvnc_graph graph, void* result,
                          std::uint32_t result_capacity,
                          std::uint32_t* result_size);

mvnc_status mvncGetGraphOption(mvnc_graph graph, std::int32_t option,
                               void* data, std::uint32_t data_capacity,
                               std::uint32_t* data_size);
mvnc_status mvncSetGraphOption(mvnc_graph graph, std::int32_t option,
                               const void* data, std::uint32_t data_size);
mvnc_status mvncGetDeviceOption(mvnc_device device, std::int32_t option,
                                void* data, std::uint32_t data_capacity,
                                std::uint32_t* data_size);

}  // extern "C"

#endif  // AVA_SRC_MVNC_MVNC_H_
