// Internal spine of the MVNC silo: configuration, device engines, handle
// registry, and test hooks. Applications use only mvnc.h.
#ifndef AVA_SRC_MVNC_SILO_H_
#define AVA_SRC_MVNC_SILO_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/mvnc/mvnc.h"

namespace mvnc {

struct MvncConfig {
  std::int32_t num_devices = 1;
  // Budget for loaded graph weights per stick (the NCS has scarce onboard
  // memory — the paper notes such devices are best time-shared whole).
  std::size_t device_memory_bytes = 64u << 20;
  // Virtual-time model.
  double vns_per_flop = 0.25;
  std::int64_t vns_per_command = 5000;
};

struct MvncCounters {
  std::uint64_t inferences = 0;
  std::uint64_t flops = 0;
  std::int64_t virtual_time_ns = 0;
};

class DeviceEngine;

class MvncSilo {
 public:
  explicit MvncSilo(const MvncConfig& config);
  ~MvncSilo();

  MvncSilo(const MvncSilo&) = delete;
  MvncSilo& operator=(const MvncSilo&) = delete;

  const MvncConfig& config() const { return config_; }
  std::int32_t num_devices() const { return config_.num_devices; }

  // Live-handle registry (same role as the VCL one).
  void RegisterHandle(void* handle);
  void UnregisterHandle(void* handle);
  bool ValidateHandle(void* handle);

  MvncCounters Counters() const;

  // Devices indexed 0..num_devices-1; named "ncs<i>".
  DeviceEngine* EngineAt(std::int32_t index);

 private:
  MvncConfig config_;
  std::vector<std::unique_ptr<DeviceEngine>> engines_;
  mutable std::mutex registry_mutex_;
  std::unordered_set<void*> handles_;
};

MvncSilo& DefaultMvncSilo();
void ResetMvncSilo(const MvncConfig& config = MvncConfig());

}  // namespace mvnc

#endif  // AVA_SRC_MVNC_SILO_H_
