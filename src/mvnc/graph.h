// The MVNC graph format and inference engine: a from-scratch forward-only
// CNN evaluator (conv2d, maxpool, dense, relu, softmax) over NCHW float32
// tensors, plus the serialized "compiled graph file" that mvncAllocateGraph
// consumes and a builder for constructing networks in tests and workloads.
#ifndef AVA_SRC_MVNC_GRAPH_H_
#define AVA_SRC_MVNC_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/serial.h"

namespace mvnc {

// A dense float tensor with a [channels, height, width] or flat shape.
struct Tensor {
  std::vector<std::int32_t> shape;
  std::vector<float> data;

  static Tensor Chw(std::int32_t c, std::int32_t h, std::int32_t w) {
    Tensor t;
    t.shape = {c, h, w};
    t.data.assign(static_cast<std::size_t>(c) * h * w, 0.0f);
    return t;
  }
  static Tensor Flat(std::int32_t n) {
    Tensor t;
    t.shape = {n};
    t.data.assign(static_cast<std::size_t>(n), 0.0f);
    return t;
  }
  std::size_t ElementCount() const { return data.size(); }
};

enum class LayerKind : std::uint8_t {
  kConv2d = 1,
  kMaxPool = 2,
  kDense = 3,
  kSoftmax = 4,
};

struct Layer {
  LayerKind kind = LayerKind::kDense;
  bool relu = false;
  // kConv2d: weights [out_ch][in_ch][k][k], bias [out_ch]; stride; same-pad.
  std::int32_t out_channels = 0;
  std::int32_t kernel = 0;
  std::int32_t stride = 1;
  bool same_padding = true;
  // kMaxPool: kernel/stride reused.
  // kDense: weights [units][inputs], bias [units].
  std::int32_t units = 0;
  std::vector<float> weights;
  std::vector<float> bias;
};

struct GraphDef {
  std::int32_t input_c = 0;
  std::int32_t input_h = 0;
  std::int32_t input_w = 0;
  std::string name;
  std::vector<Layer> layers;

  std::size_t InputElements() const {
    return static_cast<std::size_t>(input_c) * input_h * input_w;
  }

  // The "compiled graph file" (what mvncAllocateGraph takes).
  ava::Bytes Serialize() const;
  static ava::Result<GraphDef> Deserialize(const void* data, std::size_t size);

  // Runs one forward pass. Returns the output tensor and accumulates the
  // floating-point-op count into *flops (for the virtual-time model).
  ava::Result<Tensor> Run(const Tensor& input, std::uint64_t* flops) const;

  // Output element count for a valid graph (runs shape inference).
  ava::Result<std::size_t> OutputElements() const;
};

// Builder for tests / workloads: appends layers with seeded random weights.
class GraphBuilder {
 public:
  GraphBuilder(std::int32_t c, std::int32_t h, std::int32_t w,
               std::uint64_t seed = 1);

  GraphBuilder& Conv2d(std::int32_t out_channels, std::int32_t kernel,
                       std::int32_t stride = 1, bool relu = true);
  GraphBuilder& MaxPool(std::int32_t kernel, std::int32_t stride = 0);
  GraphBuilder& Dense(std::int32_t units, bool relu = true);
  GraphBuilder& Softmax();
  GraphBuilder& Named(const std::string& name);

  GraphDef Build() const { return def_; }
  ava::Bytes BuildFile() const { return def_.Serialize(); }

 private:
  // Current activation shape, tracked for weight sizing.
  std::int32_t c_, h_, w_;
  bool flat_ = false;
  std::int32_t flat_n_ = 0;
  GraphDef def_;
  ava::Rng rng_;
};

}  // namespace mvnc

#endif  // AVA_SRC_MVNC_GRAPH_H_
