// QAT — a QuickAssist-style lookaside offload silo (compression, integrity,
// symmetric crypto). The paper names Intel QuickAssist as the next API it
// plans to auto-virtualize (§5); this silo realizes that plan on a software
// device: a real LZSS compressor, CRC-64 integrity, and an XTEA stream
// cipher behind a session-oriented C API. 8 public entry points.
#ifndef AVA_SRC_QAT_QAT_H_
#define AVA_SRC_QAT_QAT_H_

#include <cstdint>

extern "C" {

using qat_status = std::int32_t;
using qat_session = struct qat_session_rec*;

constexpr qat_status QAT_OK = 0;
constexpr qat_status QAT_FAIL = -1;
constexpr qat_status QAT_INVALID_PARAM = -2;
constexpr qat_status QAT_INVALID_SESSION = -3;
constexpr qat_status QAT_BUFFER_TOO_SMALL = -4;
constexpr qat_status QAT_NO_KEY = -5;
constexpr qat_status QAT_CORRUPT_DATA = -6;

// Session algorithms.
constexpr std::int32_t QAT_SVC_COMPRESSION = 0;
constexpr std::int32_t QAT_SVC_CRYPTO = 1;

qat_status qatOpenSession(std::int32_t service, qat_session* session);
qat_status qatCloseSession(qat_session session);

// Compression service (LZSS). dst_size receives the produced byte count.
qat_status qatCompress(qat_session session, const void* src,
                       std::uint32_t src_size, void* dst,
                       std::uint32_t dst_capacity, std::uint32_t* dst_size);
qat_status qatDecompress(qat_session session, const void* src,
                         std::uint32_t src_size, void* dst,
                         std::uint32_t dst_capacity, std::uint32_t* dst_size);

// Integrity (CRC-64/XZ polynomial).
qat_status qatChecksum(qat_session session, const void* src,
                       std::uint32_t src_size, std::uint64_t* crc);

// Crypto service (XTEA-CTR): symmetric, so Encrypt is its own inverse.
qat_status qatSetKey(qat_session session, const void* key,
                     std::uint32_t key_size);  // exactly 16 bytes
qat_status qatEncrypt(qat_session session, const void* src,
                      std::uint32_t src_size, void* dst,
                      std::uint32_t dst_capacity, std::uint32_t* dst_size);

// Lifetime statistics for the session.
qat_status qatGetStats(qat_session session, std::uint64_t* bytes_processed);

}  // extern "C"

#endif  // AVA_SRC_QAT_QAT_H_
