// The QAT silo implementation: the 8 public entry points over the codec
// engines, with handle validation and accounting.
#include "src/qat/silo.h"

#include <cstring>

#include "src/qat/codecs.h"

struct qat_session_rec {
  std::int32_t service = QAT_SVC_COMPRESSION;
  bool has_key = false;
  std::uint32_t key[4] = {0, 0, 0, 0};
  std::uint64_t nonce = 0;
  std::uint64_t bytes_processed = 0;
};

namespace qat {

void QatSilo::RegisterHandle(void* handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  handles_.insert(handle);
}

void QatSilo::UnregisterHandle(void* handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  handles_.erase(handle);
}

bool QatSilo::ValidateHandle(void* handle) {
  if (handle == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return handles_.count(handle) != 0;
}

void QatSilo::Charge(std::uint64_t in, std::uint64_t out) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.operations;
  counters_.bytes_in += in;
  counters_.bytes_out += out;
}

QatCounters QatSilo::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

namespace {
std::unique_ptr<QatSilo>& SiloSlot() {
  static auto* slot = new std::unique_ptr<QatSilo>;
  return *slot;
}
}  // namespace

QatSilo& DefaultQatSilo() {
  auto& slot = SiloSlot();
  if (slot == nullptr) {
    slot = std::make_unique<QatSilo>();
  }
  return *slot;
}

void ResetQatSilo() {
  auto& slot = SiloSlot();
  slot.reset();
  slot = std::make_unique<QatSilo>();
}

}  // namespace qat

extern "C" {

qat_status qatOpenSession(std::int32_t service, qat_session* session) {
  if (session == nullptr ||
      (service != QAT_SVC_COMPRESSION && service != QAT_SVC_CRYPTO)) {
    return QAT_INVALID_PARAM;
  }
  auto* rec = new qat_session_rec;
  rec->service = service;
  qat::DefaultQatSilo().RegisterHandle(rec);
  *session = rec;
  return QAT_OK;
}

qat_status qatCloseSession(qat_session session) {
  if (!qat::DefaultQatSilo().ValidateHandle(session)) {
    return QAT_INVALID_SESSION;
  }
  qat::DefaultQatSilo().UnregisterHandle(session);
  delete session;
  return QAT_OK;
}

qat_status qatCompress(qat_session session, const void* src,
                       std::uint32_t src_size, void* dst,
                       std::uint32_t dst_capacity, std::uint32_t* dst_size) {
  if (!qat::DefaultQatSilo().ValidateHandle(session)) {
    return QAT_INVALID_SESSION;
  }
  if (src == nullptr || dst == nullptr || session->service != QAT_SVC_COMPRESSION) {
    return QAT_INVALID_PARAM;
  }
  ava::Bytes out = qat::LzssCompress(
      static_cast<const std::uint8_t*>(src), src_size);
  if (dst_size != nullptr) {
    *dst_size = static_cast<std::uint32_t>(out.size());
  }
  if (out.size() > dst_capacity) {
    return QAT_BUFFER_TOO_SMALL;
  }
  std::memcpy(dst, out.data(), out.size());
  session->bytes_processed += src_size;
  qat::DefaultQatSilo().Charge(src_size, out.size());
  return QAT_OK;
}

qat_status qatDecompress(qat_session session, const void* src,
                         std::uint32_t src_size, void* dst,
                         std::uint32_t dst_capacity, std::uint32_t* dst_size) {
  if (!qat::DefaultQatSilo().ValidateHandle(session)) {
    return QAT_INVALID_SESSION;
  }
  if (src == nullptr || dst == nullptr || session->service != QAT_SVC_COMPRESSION) {
    return QAT_INVALID_PARAM;
  }
  auto out = qat::LzssDecompress(static_cast<const std::uint8_t*>(src),
                                 src_size);
  if (!out.ok()) {
    return QAT_CORRUPT_DATA;
  }
  if (dst_size != nullptr) {
    *dst_size = static_cast<std::uint32_t>(out->size());
  }
  if (out->size() > dst_capacity) {
    return QAT_BUFFER_TOO_SMALL;
  }
  std::memcpy(dst, out->data(), out->size());
  session->bytes_processed += src_size;
  qat::DefaultQatSilo().Charge(src_size, out->size());
  return QAT_OK;
}

qat_status qatChecksum(qat_session session, const void* src,
                       std::uint32_t src_size, std::uint64_t* crc) {
  if (!qat::DefaultQatSilo().ValidateHandle(session)) {
    return QAT_INVALID_SESSION;
  }
  if (src == nullptr || crc == nullptr) {
    return QAT_INVALID_PARAM;
  }
  *crc = qat::Crc64(static_cast<const std::uint8_t*>(src), src_size);
  session->bytes_processed += src_size;
  qat::DefaultQatSilo().Charge(src_size, sizeof(*crc));
  return QAT_OK;
}

qat_status qatSetKey(qat_session session, const void* key,
                     std::uint32_t key_size) {
  if (!qat::DefaultQatSilo().ValidateHandle(session)) {
    return QAT_INVALID_SESSION;
  }
  if (key == nullptr || key_size != 16 || session->service != QAT_SVC_CRYPTO) {
    return QAT_INVALID_PARAM;
  }
  std::memcpy(session->key, key, 16);
  // Deterministic per-key nonce so the CTR stream is self-inverse across
  // calls (toy-device property, documented in qat.h).
  session->nonce = qat::Crc64(static_cast<const std::uint8_t*>(key), 16);
  session->has_key = true;
  return QAT_OK;
}

qat_status qatEncrypt(qat_session session, const void* src,
                      std::uint32_t src_size, void* dst,
                      std::uint32_t dst_capacity, std::uint32_t* dst_size) {
  if (!qat::DefaultQatSilo().ValidateHandle(session)) {
    return QAT_INVALID_SESSION;
  }
  if (src == nullptr || dst == nullptr || session->service != QAT_SVC_CRYPTO) {
    return QAT_INVALID_PARAM;
  }
  if (!session->has_key) {
    return QAT_NO_KEY;
  }
  if (dst_size != nullptr) {
    *dst_size = src_size;
  }
  if (src_size > dst_capacity) {
    return QAT_BUFFER_TOO_SMALL;
  }
  qat::XteaCtr(session->key, session->nonce,
               static_cast<const std::uint8_t*>(src),
               static_cast<std::uint8_t*>(dst), src_size);
  session->bytes_processed += src_size;
  qat::DefaultQatSilo().Charge(src_size, src_size);
  return QAT_OK;
}

qat_status qatGetStats(qat_session session, std::uint64_t* bytes_processed) {
  if (!qat::DefaultQatSilo().ValidateHandle(session)) {
    return QAT_INVALID_SESSION;
  }
  if (bytes_processed == nullptr) {
    return QAT_INVALID_PARAM;
  }
  *bytes_processed = session->bytes_processed;
  return QAT_OK;
}

}  // extern "C"
