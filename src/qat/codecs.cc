#include "src/qat/codecs.h"

#include <cstring>

namespace qat {
namespace {

constexpr std::size_t kWindow = 4096;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 18;

}  // namespace

std::size_t LzssBound(std::size_t size) {
  return 4 + size + size / 8 + 2;
}

std::size_t LzssCompressInto(const std::uint8_t* src, std::size_t size,
                             std::uint8_t* dst, std::size_t cap) {
  if (cap < LzssBound(size)) {
    return 0;
  }
  std::size_t out = 0;
  const std::uint32_t header = static_cast<std::uint32_t>(size);
  std::memcpy(dst + out, &header, 4);
  out += 4;
  std::size_t pos = 0;
  while (pos < size) {
    const std::size_t flag_at = out;
    dst[out++] = 0;
    std::uint8_t flags = 0;
    for (int item = 0; item < 8 && pos < size; ++item) {
      // Greedy search for the longest match in the window.
      std::size_t best_len = 0;
      std::size_t best_off = 0;
      const std::size_t window_start = pos > kWindow ? pos - kWindow : 0;
      const std::size_t max_len =
          size - pos < kMaxMatch ? size - pos : kMaxMatch;
      if (max_len >= kMinMatch) {
        for (std::size_t cand = window_start; cand < pos; ++cand) {
          std::size_t len = 0;
          while (len < max_len && src[cand + len] == src[pos + len]) {
            ++len;
          }
          if (len > best_len) {
            best_len = len;
            best_off = pos - cand;
            if (len == max_len) {
              break;
            }
          }
        }
      }
      if (best_len >= kMinMatch) {
        // Match: 12-bit offset (1-based), 4-bit length - kMinMatch.
        const std::uint16_t token = static_cast<std::uint16_t>(
            ((best_off - 1) << 4) | (best_len - kMinMatch));
        std::memcpy(dst + out, &token, 2);
        out += 2;
        pos += best_len;
      } else {
        flags = static_cast<std::uint8_t>(flags | (1u << item));
        dst[out++] = src[pos++];
      }
    }
    dst[flag_at] = flags;
  }
  return out;
}

ava::Bytes LzssCompress(const std::uint8_t* src, std::size_t size) {
  ava::Bytes out(LzssBound(size));
  out.resize(LzssCompressInto(src, size, out.data(), out.size()));
  return out;
}

ava::Result<ava::Bytes> LzssDecompress(const std::uint8_t* src,
                                       std::size_t size) {
  ava::ByteReader r(src, size);
  const std::uint32_t out_size = r.GetU32();
  if (out_size > (1u << 30)) {
    return ava::DataLoss("lzss: implausible output size");
  }
  ava::Bytes out;
  out.reserve(out_size);
  while (out.size() < out_size) {
    const std::uint8_t flags = r.GetU8();
    if (r.failed()) {
      return ava::DataLoss("lzss: truncated stream");
    }
    for (int item = 0; item < 8 && out.size() < out_size; ++item) {
      if (flags & (1u << item)) {
        out.push_back(r.GetU8());
      } else {
        const std::uint16_t token = r.GetU16();
        const std::size_t offset = (token >> 4) + 1;
        const std::size_t length = (token & 0xF) + kMinMatch;
        if (offset > out.size()) {
          return ava::DataLoss("lzss: match offset before stream start");
        }
        for (std::size_t i = 0; i < length; ++i) {
          out.push_back(out[out.size() - offset]);
        }
      }
      if (r.failed()) {
        return ava::DataLoss("lzss: truncated stream");
      }
    }
  }
  if (out.size() != out_size) {
    return ava::DataLoss("lzss: size mismatch");
  }
  return out;
}

std::uint64_t Crc64(const std::uint8_t* data, std::size_t size) {
  static const std::uint64_t* table = [] {
    static std::uint64_t t[256];
    constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ull;  // reflected
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  std::uint64_t crc = ~0ull;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void XteaCtr(const std::uint32_t key[4], std::uint64_t nonce,
             const std::uint8_t* src, std::uint8_t* dst, std::size_t size) {
  std::uint64_t counter = 0;
  std::size_t pos = 0;
  while (pos < size) {
    // Encrypt the (nonce, counter) block with 32 XTEA rounds.
    std::uint32_t v0 = static_cast<std::uint32_t>(nonce ^ counter);
    std::uint32_t v1 =
        static_cast<std::uint32_t>((nonce >> 32) ^ (counter >> 32) ^ 0x9E3779B9u);
    std::uint32_t sum = 0;
    constexpr std::uint32_t kDelta = 0x9E3779B9u;
    for (int round = 0; round < 32; ++round) {
      v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
      sum += kDelta;
      v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
    }
    std::uint8_t keystream[8];
    std::memcpy(keystream, &v0, 4);
    std::memcpy(keystream + 4, &v1, 4);
    const std::size_t n = size - pos < 8 ? size - pos : 8;
    for (std::size_t i = 0; i < n; ++i) {
      dst[pos + i] = src[pos + i] ^ keystream[i];
    }
    pos += n;
    ++counter;
  }
}

}  // namespace qat
