// Internal spine of the QAT silo: handle registry, counters, test hooks.
// Unlike VCL/MVNC this device completes work synchronously in the call
// (lookaside acceleration with immediate polling), so there is no worker
// thread — which also exercises the spec language's all-sync corner.
#ifndef AVA_SRC_QAT_SILO_H_
#define AVA_SRC_QAT_SILO_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "src/qat/qat.h"

namespace qat {

struct QatCounters {
  std::uint64_t operations = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class QatSilo {
 public:
  void RegisterHandle(void* handle);
  void UnregisterHandle(void* handle);
  bool ValidateHandle(void* handle);

  void Charge(std::uint64_t in, std::uint64_t out);
  QatCounters Counters() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_set<void*> handles_;
  QatCounters counters_;
};

QatSilo& DefaultQatSilo();
void ResetQatSilo();

}  // namespace qat

#endif  // AVA_SRC_QAT_SILO_H_
