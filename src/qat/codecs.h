// The QAT silo's internal engines: LZSS compression, CRC-64, XTEA-CTR.
// Deliberately real (not stubs): round-trips are exact, the cipher is the
// published XTEA schedule, and the CRC matches the CRC-64/XZ vector suite.
#ifndef AVA_SRC_QAT_CODECS_H_
#define AVA_SRC_QAT_CODECS_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/common/serial.h"

namespace qat {

// LZSS with a 4 KiB sliding window and 3..18-byte matches. Format: groups
// of 8 items preceded by a flag byte (bit i set = literal); matches encode
// (offset, length) in 2 bytes. Always terminates; worst case ~9/8 expansion
// plus the 4-byte size header.
ava::Bytes LzssCompress(const std::uint8_t* src, std::size_t size);

// Destination-buffer variant: compresses into the caller-provided `dst`
// (at least LzssBound(size) bytes) and returns the number of bytes
// written, or 0 when `cap` is too small. Produces byte-identical output to
// LzssCompress without the intermediate allocation — the swap manager's
// demotion path compresses straight into its tier buffer through this.
std::size_t LzssCompressInto(const std::uint8_t* src, std::size_t size,
                             std::uint8_t* dst, std::size_t cap);

// Returns DataLoss on malformed input (truncation, bad offsets).
ava::Result<ava::Bytes> LzssDecompress(const std::uint8_t* src,
                                       std::size_t size);

// Upper bound of the compressed size for `size` input bytes.
std::size_t LzssBound(std::size_t size);

// CRC-64/XZ (poly 0x42F0E1EBA9EA3693 reflected, init/xorout ~0).
std::uint64_t Crc64(const std::uint8_t* data, std::size_t size);

// XTEA in counter mode: encrypt == decrypt. Key is 128 bits; the nonce is
// supplied per call (the session uses a running message counter).
void XteaCtr(const std::uint32_t key[4], std::uint64_t nonce,
             const std::uint8_t* src, std::uint8_t* dst, std::size_t size);

}  // namespace qat

#endif  // AVA_SRC_QAT_CODECS_H_
