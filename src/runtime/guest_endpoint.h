// GuestEndpoint: the API-agnostic, guest-side half of the AvA runtime.
//
// CAvA-generated guest stubs marshal arguments and hand them to this class,
// which owns the transport, assigns call ids, waits for replies to
// synchronous calls, batches asynchronous calls (lazy RPC, §4.2), and
// applies piggybacked shadow-buffer updates to registered application
// pointers (how a non-blocking read's data reaches the guest).
//
// Safe for concurrent application threads multiplexing the one channel:
// sends serialize under the endpoint lock, and replies demultiplex by call
// id. At any moment at most one blocked caller is the *reader* — it drains
// the transport without holding the lock, routes each reply to the waiter
// whose call id it names, and hands the reader role off when its own reply
// (or deadline) arrives. Callers whose replies arrive out of order wake
// individually; nobody's reply is ever consumed by the wrong thread.
#ifndef AVA_SRC_RUNTIME_GUEST_ENDPOINT_H_
#define AVA_SRC_RUNTIME_GUEST_ENDPOINT_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/proto/marshal.h"
#include "src/proto/wire.h"
#include "src/transport/arena.h"
#include "src/transport/transport.h"

namespace ava {

class BulkScope;

class GuestEndpoint {
 public:
  struct Options {
    VmId vm_id = 1;
    // Maximum async calls buffered before an automatic flush. 0 disables
    // batching: every async call is sent immediately.
    std::size_t batch_max_calls = 0;
    // Ablation hook (§5 "unoptimized specification"): treat every call as
    // synchronous regardless of its spec annotation. Generated stubs consult
    // this flag.
    bool force_sync = false;
    // Per-sync-call deadline, milliseconds. 0 = wait forever. A negative
    // value (the default) reads AVA_CALL_DEADLINE_MS at construction,
    // falling back to 0 when unset. Expiry classifies as DeadlineExceeded;
    // a closed/dead transport classifies as Unavailable.
    std::int64_t call_deadline_ms = -1;
    // Retries for calls the CAvA spec marks `idempotent` (retry eligibility
    // never extends further: a retried non-idempotent call could re-execute
    // side effects). 0 disables retry entirely.
    int max_retries = 2;
    // First retry backoff; doubles each attempt, plus uniform jitter of up
    // to the current backoff (decorrelates competing guests).
    std::int64_t retry_backoff_us = 200;
    // Circuit breaker: after this many consecutive transport-layer failures
    // sync calls fail fast with Unavailable instead of re-probing a dead
    // channel. <= 0 disables the breaker.
    int breaker_threshold = 8;
    // How long the breaker stays open before admitting one probe call.
    std::int64_t breaker_cooldown_ms = 100;
    // Bulk buffers at least this large go out-of-band through the shared
    // buffer arena when the transport provides one (shm ring); smaller
    // buffers and arena-less transports marshal inline. 0 disables the
    // arena path entirely. A negative value (the default) reads
    // AVA_ARENA_THRESHOLD at construction, falling back to 64 KiB.
    std::int64_t arena_threshold_bytes = -1;
    // `reusable;` in-buffers at least this large go through the
    // content-addressed transfer cache: hashed at every send, and sent as a
    // 24-byte descriptor once the server acks the digest as resident. 0
    // disables the guest-side cache path entirely. A negative value (the
    // default) reads AVA_XFER_CACHE_MIN at construction, falling back to
    // 64 KiB; AVA_XFER_CACHE_BYTES=0 (server cache off) also disables it.
    std::int64_t xfer_cache_min_bytes = -1;
  };

  // Thin view over the endpoint's obs::MetricRegistry cells
  // (guest.vm<id>.*); kept for existing callers.
  struct Stats {
    std::uint64_t sync_calls = 0;
    std::uint64_t async_calls = 0;
    std::uint64_t messages_sent = 0;   // transport messages (batches count 1)
    std::uint64_t shadow_updates = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
  };

  GuestEndpoint(TransportPtr transport, const Options& options);
  ~GuestEndpoint();

  GuestEndpoint(const GuestEndpoint&) = delete;
  GuestEndpoint& operator=(const GuestEndpoint&) = delete;

  // Synchronous call: flushes any pending batch, sends, blocks for the
  // reply, applies shadow updates, and returns the reply payload. A non-OK
  // status means the call never executed (transport failure or router
  // rejection) — the generated stub maps it to the API's error code.
  Result<Bytes> CallSync(std::uint16_t api_id, std::uint32_t func_id,
                         Bytes args);

  // Asynchronous call: fire-and-forget (or buffered when batching).
  Status CallAsync(std::uint16_t api_id, std::uint32_t func_id, Bytes args);

  // Zero-copy variants used by generated stubs: `message` was produced by
  // ava::BeginCall + argument marshaling; the endpoint patches the identity
  // fields in place and sends without re-encoding. `retriable` comes from
  // the spec's `idempotent` annotation: only such calls are re-sent (with a
  // fresh call id) after a transport-classified failure. `bulk` is the
  // call's BulkScope when it marshaled any transfer-cache hit: a kCacheMiss
  // reply (server evicted or restarted) triggers exactly one inline
  // retransmission-and-install retry — safe regardless of idempotency,
  // because the server rejects a missing digest before executing the call.
  Result<Bytes> CallSyncPrepared(Bytes message, bool retriable = false,
                                 BulkScope* bulk = nullptr);
  Status CallAsyncPrepared(Bytes message);

  // Registers an application pointer to receive a future shadow-buffer
  // update of at most `size` bytes. Returns the shadow id to marshal.
  std::uint64_t RegisterShadow(void* ptr, std::size_t size);

  // Sends any buffered async batch now.
  Status Flush();

  // Live-migration cutover / warm failover: atomically re-points this
  // endpoint at a fresh channel (to the migration target). The old transport
  // is closed — waking any blocked reader, which fails every call still
  // waiting on the old channel with its transport error — and kept alive
  // (retired) until endpoint destruction so the reader's in-flight receive
  // never touches freed memory. Callers then observe normal transport-failure
  // semantics: `idempotent;` calls re-send on the new channel, the rest
  // surface Unavailable. Resets the circuit breaker and forgets
  // transfer-cache residency (the new server's cache starts cold).
  Status ReplaceTransport(TransportPtr fresh);

  // Last API error latched from an asynchronous call, delivered on a later
  // reply (§4.2: async calls cannot report errors faithfully). 0 = none.
  std::int32_t ConsumeAsyncError();

  bool force_sync() const { return options_.force_sync; }
  VmId vm_id() const { return options_.vm_id; }
  Stats stats() const;

  // Out-of-band bulk path, as negotiated with the transport at construction.
  // Null when the transport shares no memory or the threshold disables it.
  const std::shared_ptr<BufferArena>& bulk_arena() const { return arena_; }
  std::size_t arena_threshold_bytes() const { return arena_threshold_; }
  // Arena-path health, for tests and diagnostics: buffers that moved
  // out-of-band, and eligible buffers that fell back inline (exhaustion).
  std::uint64_t arena_allocs() const { return arena_allocs_->Value(); }
  std::uint64_t arena_fallbacks() const { return arena_fallbacks_->Value(); }

  // Transfer-cache path, as resolved at construction. 0 = disabled.
  std::size_t xfer_cache_min_bytes() const { return xfer_cache_min_; }
  // Cache-path health: descriptor-only sends, install sends, and calls
  // re-sent inline after a server-side kCacheMiss. A send whose payload was
  // spliced back inline by a miss retry settles as neither hit nor saved
  // bytes — hits/bytes_saved count only payloads that never traveled.
  std::uint64_t xfer_hits() const { return xfer_hits_->Value(); }
  std::uint64_t xfer_bytes_saved() const { return xfer_bytes_saved_->Value(); }
  std::uint64_t xfer_installs() const { return xfer_installs_->Value(); }
  std::uint64_t xfer_miss_retries() const {
    return xfer_miss_retries_->Value();
  }
  // Digests the server has acked as resident (test/diagnostic view).
  std::size_t xfer_resident_count() const;

  // Distribution of synchronous forwarded-call round-trip latency (ns),
  // from send to reply receipt. Use Percentile(50/95/99) for tail views.
  obs::HistogramSnapshot sync_latency() const {
    return sync_latency_ns_->Snapshot();
  }

 private:
  friend class BulkScope;
  void NoteArenaAlloc(std::uint64_t bytes);
  void NoteArenaFallback();
  // Resident-digest set shared with BulkScope. Guarded by cache_mutex_
  // (not mutex_): PutIn runs during stub marshaling, before the endpoint
  // lock is taken. Lock order where both are held: mutex_ then cache_mutex_.
  bool XferLookupResident(std::uint64_t hash, std::uint64_t length,
                          std::uint32_t* slot);
  void XferDropResident(std::uint64_t hash);
  void XferMarkResident(const CachedDesc& desc);
  // Records a sighting of a payload's cheap prefix fingerprint and reports
  // whether it has been seen before. Full-payload hashing and installs are
  // gated on the SECOND sighting: a stream of never-repeating payloads
  // pays only the few-KiB prefix probe per send.
  bool XferNoteSighting(std::uint64_t prefix_key, std::uint64_t length);
  void NoteXferHit(std::uint64_t bytes);
  void NoteXferInstall();

  Status SendSealedLocked(Bytes* message);
  Status FlushLocked();
  void ApplyShadowsLocked(const DecodedReply& reply);
  // CallSyncPrepared body; split out so the public wrapper can maintain the
  // guest.concurrent_callers gauge across every return path.
  Result<Bytes> CallSyncPreparedImpl(Bytes message, bool retriable,
                                     BulkScope* bulk);
  // One send + reply-wait under the configured deadline. `*message` must be
  // unsealed on entry and comes back sealed (strip 4 bytes to reuse it).
  // Enters and returns with `lock` held; drops it while reading the
  // transport (reader role) or waiting on reply_cv_ (follower).
  // `trace_id` is minted once per *logical* call by the caller: every
  // attempt (transport retry or cache-miss resend) re-stamps the same id,
  // so Perfetto shows one logical call. `retry` counts prior attempts and
  // is attached to the closing span as the `retry` arg.
  Result<Bytes> SyncAttempt(std::unique_lock<std::mutex>& lock,
                            Bytes* message, std::uint64_t trace_id,
                            int retry);
  // Breaker admission: OK, or fail-fast Unavailable while open.
  Status BreakerAdmitLocked();
  void BreakerRecordLocked(bool transport_ok);

  Options options_;
  TransportPtr transport_;
  std::shared_ptr<BufferArena> arena_;  // from transport_->arena(), may be null
  std::size_t arena_threshold_ = 0;     // resolved; 0 = arena path disabled
  std::size_t xfer_cache_min_ = 0;      // resolved; 0 = cache path disabled

  // Digests the server acked as resident, keyed by hash. Bounded: past the
  // cap, arbitrary entries are dropped (a dropped digest only costs a
  // redundant install; a server-side eviction is discovered through the
  // kCacheMiss retry either way).
  mutable std::mutex cache_mutex_;
  struct ResidentDigest {
    std::uint64_t length = 0;
    std::uint32_t slot = 0;
  };
  std::unordered_map<std::uint64_t, ResidentDigest> resident_;
  // Prefix fingerprints of payloads sighted at least once, keyed by the
  // prefix digest with the payload length as the value. Same cap/drop
  // policy as resident_; losing an entry merely delays an install by one
  // more sighting, and a prefix collision only costs a redundant install
  // attempt (the cache itself is keyed by verified full digests).
  std::unordered_map<std::uint64_t, std::uint64_t> seen_once_;

  mutable std::mutex mutex_;
  CallId next_call_id_ = 1;
  std::uint64_t next_shadow_id_ = 1;
  struct ShadowTarget {
    void* ptr = nullptr;
    std::size_t size = 0;
  };
  std::unordered_map<std::uint64_t, ShadowTarget> shadows_;
  std::vector<Bytes> pending_batch_;
  std::int32_t latched_async_error_ = 0;

  // Reply demultiplexing (all under mutex_). One stack-allocated waiter per
  // blocked sync caller, keyed by call id. The reader routes each received
  // reply to its waiter (raw = checksum-stripped frame; the waiter decodes
  // it after waking) or fails every waiter when the transport dies.
  struct SyncWaiter {
    Bytes raw;
    bool done = false;
    Status status = OkStatus();  // non-OK: transport failed while waiting
    // Which transport generation the call was sent on. A reader that saw its
    // generation's transport die fails only waiters of that generation or
    // older; calls already re-sent on a replacement channel keep waiting.
    std::uint64_t epoch = 0;
  };
  std::unordered_map<CallId, SyncWaiter*> waiters_;
  bool reader_active_ = false;
  std::condition_variable reply_cv_;
  // Bumped by ReplaceTransport. Old transports move to retired_transports_
  // (never freed before the endpoint) so the reader's lock-free receive on a
  // raw snapshot stays safe across a swap.
  std::uint64_t transport_epoch_ = 0;
  std::vector<TransportPtr> retired_transports_;

  // Circuit-breaker state (all under mutex_).
  int consecutive_failures_ = 0;
  std::int64_t breaker_open_until_ns_ = 0;
  Rng retry_rng_;

  // Metric cells (registered as guest.vm<id>.*; stats() composes them).
  std::shared_ptr<obs::Counter> sync_calls_;
  std::shared_ptr<obs::Counter> async_calls_;
  std::shared_ptr<obs::Counter> messages_sent_;
  std::shared_ptr<obs::Counter> shadow_updates_;
  std::shared_ptr<obs::Counter> bytes_sent_;
  std::shared_ptr<obs::Counter> bytes_received_;
  // Application threads currently inside a sync call (process-global name;
  // the registry aggregates same-named cells across endpoints).
  std::shared_ptr<obs::Gauge> concurrent_callers_;
  std::shared_ptr<obs::Histogram> sync_latency_ns_;
  // Failure-handling counters (process-global names; the registry
  // aggregates same-named cells across endpoints).
  std::shared_ptr<obs::Counter> calls_retried_;
  std::shared_ptr<obs::Counter> calls_deadline_exceeded_;
  std::shared_ptr<obs::Counter> breaker_fast_fails_;
  // Arena-path counters (process-global; aggregated across endpoints).
  std::shared_ptr<obs::Counter> arena_bytes_;
  std::shared_ptr<obs::Counter> arena_allocs_;
  std::shared_ptr<obs::Counter> arena_fallbacks_;
  // Transfer-cache counters (process-global; aggregated across endpoints).
  std::shared_ptr<obs::Counter> xfer_hits_;
  std::shared_ptr<obs::Counter> xfer_installs_;
  std::shared_ptr<obs::Counter> xfer_bytes_saved_;
  std::shared_ptr<obs::Counter> xfer_miss_retries_;
  // 1 while the circuit breaker is open (guest.vm<id>.breaker_open); the
  // router's admin `sessions` table reads it from the registry snapshot.
  std::shared_ptr<obs::Gauge> breaker_open_;
  bool trace_enabled_ = false;  // cached Tracer state at construction
};

// BulkScope: per-call owner of the bulk-buffer encoding decision. Generated
// stubs create one on the stack around a call, marshal every eligible
// `buffer(size)` parameter through it, patch the accumulated byte count into
// the call header (router bytes-per-second accounting), and let the
// destructor release any arena slots once the reply has been consumed — the
// release point that makes the zero-copy out-path safe: the server writes
// into the slot before replying, the guest copies out after the reply, and
// only then does the slot recycle.
//
// `allow_arena = false` forces inline marshaling (async/batched calls, and
// `record;`-annotated calls whose payloads are replayed after migration —
// a replayed arena descriptor would point at a recycled slot). The same
// flag gates the transfer-cache path: a replayed kBulkCached descriptor
// would dangle just like a replayed arena slot, and async calls have no
// sync reply to carry the kCacheMiss retry handshake.
class BulkScope {
 public:
  BulkScope(GuestEndpoint* endpoint, bool allow_arena);
  ~BulkScope();

  BulkScope(const BulkScope&) = delete;
  BulkScope& operator=(const BulkScope&) = delete;

  // Marshals a nullable in-buffer: marker + (inline blob | arena descriptor
  // | transfer-cache descriptor). `reusable` comes from the spec's
  // `reusable;` annotation: such buffers are re-hashed at every send (a
  // guest that mutated the bytes since the last call can never alias a
  // stale digest) and travel as a 24-byte kBulkCached descriptor once the
  // server has acked the digest, or as a kBulkCachedInstall (descriptor +
  // payload) until then.
  void PutIn(ByteWriter* w, const void* data, std::size_t bytes,
             bool reusable = false);

  // Marshals an out-buffer request: where the server should put `capacity`
  // bytes. Arena-backed outs pre-acquire the slot here so the reply only
  // needs to carry a length.
  void PutOut(ByteWriter* w, void* ptr, std::size_t capacity);

  // Reads one out-buffer result from the reply, in PutOut order, copying up
  // to `capacity` bytes into `dst`. Returns bytes copied.
  std::size_t ReadOut(ByteReader* r, void* dst, std::size_t capacity);

  // Total bytes routed through the arena, for the call header's bulk_bytes
  // field (router policy accounting).
  std::uint64_t arena_bytes() const { return arena_bytes_count_; }

  // Total payload bytes elided by transfer-cache hits, for the call
  // header's cached_bytes field. The router counts these for observability
  // but does not charge them against the per-VM byte budget — the whole
  // point of the cache.
  std::uint64_t cached_bytes() const { return cached_bytes_count_; }

  // True when this call's frame carries at least one kBulkCached hit that a
  // kCacheMiss reply would require re-sending.
  bool has_cache_hits() const { return !cache_records_.empty(); }

  // Rewrites `message` (unsealed) after a kCacheMiss reply: every
  // kBulkCached hit descriptor becomes a kBulkCachedInstall carrying the
  // payload inline, the header's cached_bytes field drops to zero, and the
  // hit digests are forgotten endpoint-wide (the server evidently lost
  // them). Called at most once per call by CallSyncPrepared.
  void RewriteForMiss(Bytes* message);

 private:
  bool Eligible(std::size_t bytes) const {
    return arena_ != nullptr && threshold_ > 0 && bytes >= threshold_;
  }
  bool CacheEligible(std::size_t bytes) const {
    return cache_min_ > 0 && bytes >= cache_min_;
  }
  // The arena-or-inline encoding shared by plain and install-path in-buffers.
  void PutInPayload(ByteWriter* w, const void* data, std::size_t bytes);

  // Per PutOut: index into held_, or -1 (non-arena). Inline storage keeps
  // the common all-inline call free of heap traffic; no spec function comes
  // close to the cap, but overflow degrades to the vector rather than UB.
  void PushOut(int held_index) {
    if (outs_count_ < kInlineOuts) {
      outs_inline_[outs_count_] = held_index;
    } else {
      outs_overflow_.push_back(held_index);
    }
    ++outs_count_;
  }
  int OutAt(std::size_t i) const {
    return i < kInlineOuts ? outs_inline_[i] : outs_overflow_[i - kInlineOuts];
  }

  static constexpr std::size_t kInlineOuts = 8;

  // One per kBulkCached hit in the frame: enough to splice the payload back
  // in if the server misses. `data` stays valid for the whole call — the
  // caller's buffer outlives the stub invocation by contract.
  struct CacheRecord {
    std::size_t marker_offset = 0;  // offset of the marker byte in the frame
    const void* data = nullptr;
    std::size_t bytes = 0;
    std::uint64_t hash = 0;
  };

  GuestEndpoint* endpoint_;
  std::shared_ptr<BufferArena> arena_;  // null when disallowed or absent
  std::size_t threshold_ = 0;
  std::size_t cache_min_ = 0;  // 0 = transfer-cache path disabled
  std::vector<BufferArena::Slot> held_;  // allocates only on the arena path
  std::vector<CacheRecord> cache_records_;
  int outs_inline_[kInlineOuts];
  std::vector<int> outs_overflow_;
  std::size_t outs_count_ = 0;
  std::size_t next_out_ = 0;
  std::uint64_t arena_bytes_count_ = 0;
  std::uint64_t cached_bytes_count_ = 0;
};

}  // namespace ava

#endif  // AVA_SRC_RUNTIME_GUEST_ENDPOINT_H_
