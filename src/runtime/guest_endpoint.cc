#include "src/runtime/guest_endpoint.h"

#include <cstring>
#include <utility>

#include "src/common/log.h"

namespace ava {

GuestEndpoint::GuestEndpoint(TransportPtr transport, const Options& options)
    : options_(options), transport_(std::move(transport)) {}

GuestEndpoint::~GuestEndpoint() {
  if (transport_ != nullptr) {
    // Best-effort: deliver buffered async work before going away.
    std::lock_guard<std::mutex> lock(mutex_);
    (void)FlushLocked();
    transport_->Close();
  }
}

Result<Bytes> GuestEndpoint::CallSync(std::uint16_t api_id,
                                      std::uint32_t func_id, Bytes args) {
  CallHeader header;
  header.api_id = api_id;
  header.func_id = func_id;
  return CallSyncPrepared(EncodeCall(header, args));
}

Status GuestEndpoint::CallAsync(std::uint16_t api_id, std::uint32_t func_id,
                                Bytes args) {
  CallHeader header;
  header.api_id = api_id;
  header.func_id = func_id;
  return CallAsyncPrepared(EncodeCall(header, args));
}

Result<Bytes> GuestEndpoint::CallSyncPrepared(Bytes message) {
  std::lock_guard<std::mutex> lock(mutex_);
  AVA_RETURN_IF_ERROR(FlushLocked());
  const CallId call_id = next_call_id_++;
  PatchCallIdentity(&message, call_id, options_.vm_id, 0);
  AVA_RETURN_IF_ERROR(SendLocked(message));
  ++stats_.sync_calls;

  // Per-VM calls are fully serialized (one in-flight sync call), so the next
  // reply is ours; tolerate stray replies defensively.
  for (int attempts = 0; attempts < 1024; ++attempts) {
    AVA_ASSIGN_OR_RETURN(Bytes raw, transport_->Recv());
    stats_.bytes_received += raw.size();
    AVA_ASSIGN_OR_RETURN(DecodedReply reply, DecodeReply(raw));
    ApplyShadowsLocked(reply);
    if (reply.header.call_id != call_id) {
      AVA_LOG(WARNING) << "dropping stray reply for call "
                       << reply.header.call_id;
      continue;
    }
    if (reply.header.status_code != 0) {
      return Status(static_cast<StatusCode>(reply.header.status_code),
                    "call rejected by router/server");
    }
    return Bytes(reply.payload.begin(), reply.payload.end());
  }
  return Internal("no reply for call after draining 1024 messages");
}

Status GuestEndpoint::CallAsyncPrepared(Bytes message) {
  std::lock_guard<std::mutex> lock(mutex_);
  PatchCallIdentity(&message, next_call_id_++, options_.vm_id,
                    kCallFlagAsync);
  ++stats_.async_calls;
  if (options_.batch_max_calls > 1) {
    pending_batch_.push_back(std::move(message));
    if (pending_batch_.size() >= options_.batch_max_calls) {
      return FlushLocked();
    }
    return OkStatus();
  }
  return SendLocked(message);
}

std::uint64_t GuestEndpoint::RegisterShadow(void* ptr, std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_shadow_id_++;
  shadows_[id] = ShadowTarget{ptr, size};
  return id;
}

Status GuestEndpoint::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return FlushLocked();
}

std::int32_t GuestEndpoint::ConsumeAsyncError() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int32_t err = latched_async_error_;
  latched_async_error_ = 0;
  return err;
}

GuestEndpoint::Stats GuestEndpoint::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Status GuestEndpoint::SendLocked(const Bytes& message) {
  stats_.bytes_sent += message.size();
  ++stats_.messages_sent;
  return transport_->Send(message);
}

Status GuestEndpoint::FlushLocked() {
  if (pending_batch_.empty()) {
    return OkStatus();
  }
  Bytes batch = EncodeBatch(pending_batch_);
  pending_batch_.clear();
  return SendLocked(batch);
}

void GuestEndpoint::ApplyShadowsLocked(const DecodedReply& reply) {
  for (const ShadowUpdate& update : reply.shadows) {
    if (update.shadow_id == kAsyncErrorShadowId) {
      if (update.data.size() >= sizeof(std::int32_t)) {
        std::memcpy(&latched_async_error_, update.data.data(),
                    sizeof(std::int32_t));
      }
      continue;
    }
    auto it = shadows_.find(update.shadow_id);
    if (it == shadows_.end()) {
      AVA_LOG(WARNING) << "shadow update for unknown id " << update.shadow_id;
      continue;
    }
    const std::size_t n = std::min(it->second.size, update.data.size());
    if (it->second.ptr != nullptr && n > 0) {
      std::memcpy(it->second.ptr, update.data.data(), n);
    }
    shadows_.erase(it);
    ++stats_.shadow_updates;
  }
}

}  // namespace ava
