#include "src/runtime/guest_endpoint.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "src/common/hash64.h"
#include "src/common/log.h"
#include "src/common/vclock.h"
#include "src/obs/trace.h"

namespace ava {
namespace {

// Transport-classified failures: the call may never have executed (or its
// reply was lost), so an idempotent call is safe to re-send. Everything else
// (router rejection, server handler error) already carries an answer —
// retrying would only repeat it.
bool IsTransportFailure(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kDataLoss;
}

std::int64_t DeadlineMsFromEnv() {
  const char* env = std::getenv("AVA_CALL_DEADLINE_MS");
  if (env == nullptr || env[0] == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long long ms = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || ms < 0) {
    AVA_LOG(ERROR) << "ignoring malformed AVA_CALL_DEADLINE_MS: " << env;
    return 0;
  }
  return static_cast<std::int64_t>(ms);
}

constexpr std::int64_t kDefaultArenaThresholdBytes = 64 << 10;

std::int64_t ArenaThresholdFromEnv() {
  const char* env = std::getenv("AVA_ARENA_THRESHOLD");
  if (env == nullptr || env[0] == '\0') {
    return kDefaultArenaThresholdBytes;
  }
  char* end = nullptr;
  const long long bytes = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || bytes < 0) {
    AVA_LOG(ERROR) << "ignoring malformed AVA_ARENA_THRESHOLD: " << env;
    return kDefaultArenaThresholdBytes;
  }
  return static_cast<std::int64_t>(bytes);
}

constexpr std::int64_t kDefaultXferCacheMinBytes = 64 << 10;

std::int64_t XferCacheMinFromEnv() {
  const char* env = std::getenv("AVA_XFER_CACHE_MIN");
  if (env == nullptr || env[0] == '\0') {
    return kDefaultXferCacheMinBytes;
  }
  char* end = nullptr;
  const long long bytes = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || bytes < 0) {
    AVA_LOG(ERROR) << "ignoring malformed AVA_XFER_CACHE_MIN: " << env;
    return kDefaultXferCacheMinBytes;
  }
  return static_cast<std::int64_t>(bytes);
}

// The server cache is sized by AVA_XFER_CACHE_BYTES; an explicit 0 disables
// it, so the guest should not spend hashes and install traffic either. Only
// a well-formed "0" disables — anything else defers to the server default.
bool XferCacheDisabledByEnv() {
  const char* env = std::getenv("AVA_XFER_CACHE_BYTES");
  if (env == nullptr || env[0] == '\0') {
    return false;
  }
  char* end = nullptr;
  const long long bytes = std::strtoll(env, &end, 10);
  return end != env && *end == '\0' && bytes == 0;
}

// Resident-digest cap: past this, arbitrary entries are dropped. 8192
// digests is ~192 KiB of bookkeeping and far beyond what a 64 MiB server
// budget can keep resident for >=64 KiB payloads.
constexpr std::size_t kResidentDigestCap = 8192;

// How much of a payload the sighting pre-filter fingerprints. Big enough
// that unrelated payloads virtually never collide, small enough that a
// never-repeating stream pays ~a microsecond per send instead of a
// full-payload hash pass.
constexpr std::size_t kXferPrefixProbeBytes = 4096;

}  // namespace

GuestEndpoint::GuestEndpoint(TransportPtr transport, const Options& options)
    : options_(options),
      transport_(std::move(transport)),
      retry_rng_(0x5eedULL ^ options.vm_id) {
  if (options_.call_deadline_ms < 0) {
    options_.call_deadline_ms = DeadlineMsFromEnv();
  }
  if (options_.arena_threshold_bytes < 0) {
    options_.arena_threshold_bytes = ArenaThresholdFromEnv();
  }
  if (options_.arena_threshold_bytes > 0 && transport_ != nullptr) {
    arena_ = transport_->arena();
    if (arena_ != nullptr) {
      arena_threshold_ =
          static_cast<std::size_t>(options_.arena_threshold_bytes);
    }
  }
  if (options_.xfer_cache_min_bytes < 0) {
    options_.xfer_cache_min_bytes = XferCacheMinFromEnv();
  }
  if (XferCacheDisabledByEnv()) {
    options_.xfer_cache_min_bytes = 0;
  }
  xfer_cache_min_ = static_cast<std::size_t>(options_.xfer_cache_min_bytes);
  const std::string prefix = "guest.vm" + std::to_string(options_.vm_id) + ".";
  auto& registry = obs::MetricRegistry::Default();
  sync_calls_ = registry.NewCounter(prefix + "sync_calls");
  async_calls_ = registry.NewCounter(prefix + "async_calls");
  messages_sent_ = registry.NewCounter(prefix + "messages_sent");
  shadow_updates_ = registry.NewCounter(prefix + "shadow_updates");
  bytes_sent_ = registry.NewCounter(prefix + "bytes_sent");
  bytes_received_ = registry.NewCounter(prefix + "bytes_received");
  concurrent_callers_ = registry.NewGauge("guest.concurrent_callers");
  sync_latency_ns_ = registry.NewHistogram("guest.sync_roundtrip_ns");
  calls_retried_ = registry.NewCounter("calls.retried");
  calls_deadline_exceeded_ = registry.NewCounter("calls.deadline_exceeded");
  breaker_fast_fails_ = registry.NewCounter("calls.breaker_fast_fails");
  breaker_open_ = registry.NewGauge(prefix + "breaker_open");
  arena_bytes_ = registry.NewCounter("guest.arena_bytes");
  arena_allocs_ = registry.NewCounter("guest.arena_allocs");
  arena_fallbacks_ = registry.NewCounter("guest.arena_fallbacks");
  xfer_hits_ = registry.NewCounter("guest.xfer_hits");
  xfer_installs_ = registry.NewCounter("guest.xfer_installs");
  xfer_bytes_saved_ = registry.NewCounter("guest.xfer_bytes_saved");
  xfer_miss_retries_ = registry.NewCounter("calls.cache_miss_retried");
  trace_enabled_ = obs::TraceEnabled();
}

void GuestEndpoint::NoteArenaAlloc(std::uint64_t bytes) {
  arena_allocs_->Increment();
  arena_bytes_->Increment(bytes);
}

void GuestEndpoint::NoteArenaFallback() { arena_fallbacks_->Increment(); }

bool GuestEndpoint::XferLookupResident(std::uint64_t hash,
                                       std::uint64_t length,
                                       std::uint32_t* slot) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = resident_.find(hash);
  if (it == resident_.end() || it->second.length != length) {
    return false;
  }
  *slot = it->second.slot;
  return true;
}

void GuestEndpoint::XferDropResident(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  resident_.erase(hash);
}

void GuestEndpoint::XferMarkResident(const CachedDesc& desc) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (resident_.size() >= kResidentDigestCap &&
      resident_.find(desc.hash) == resident_.end()) {
    resident_.erase(resident_.begin());
  }
  resident_[desc.hash] = ResidentDigest{desc.length, desc.slot};
}

bool GuestEndpoint::XferNoteSighting(std::uint64_t prefix_key,
                                     std::uint64_t length) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = seen_once_.find(prefix_key);
  if (it != seen_once_.end() && it->second == length) {
    return true;
  }
  if (seen_once_.size() >= kResidentDigestCap && it == seen_once_.end()) {
    seen_once_.erase(seen_once_.begin());
  }
  seen_once_[prefix_key] = length;
  return false;
}

void GuestEndpoint::NoteXferHit(std::uint64_t bytes) {
  xfer_hits_->Increment();
  xfer_bytes_saved_->Increment(bytes);
}

void GuestEndpoint::NoteXferInstall() { xfer_installs_->Increment(); }

std::size_t GuestEndpoint::xfer_resident_count() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return resident_.size();
}

GuestEndpoint::~GuestEndpoint() {
  if (transport_ != nullptr) {
    // Best-effort: deliver buffered async work before going away.
    std::lock_guard<std::mutex> lock(mutex_);
    (void)FlushLocked();
    transport_->Close();
  }
}

Result<Bytes> GuestEndpoint::CallSync(std::uint16_t api_id,
                                      std::uint32_t func_id, Bytes args) {
  CallHeader header;
  header.api_id = api_id;
  header.func_id = func_id;
  return CallSyncPrepared(EncodeCall(header, args));
}

Status GuestEndpoint::CallAsync(std::uint16_t api_id, std::uint32_t func_id,
                                Bytes args) {
  CallHeader header;
  header.api_id = api_id;
  header.func_id = func_id;
  return CallAsyncPrepared(EncodeCall(header, args));
}

Result<Bytes> GuestEndpoint::CallSyncPrepared(Bytes message, bool retriable,
                                              BulkScope* bulk) {
  concurrent_callers_->Add(1);
  Result<Bytes> result =
      CallSyncPreparedImpl(std::move(message), retriable, bulk);
  concurrent_callers_->Add(-1);
  return result;
}

Result<Bytes> GuestEndpoint::CallSyncPreparedImpl(Bytes message,
                                                  bool retriable,
                                                  BulkScope* bulk) {
  std::unique_lock<std::mutex> lock(mutex_);
  AVA_RETURN_IF_ERROR(BreakerAdmitLocked());
  AVA_RETURN_IF_ERROR(FlushLocked());
  const int max_attempts =
      retriable ? 1 + std::max(options_.max_retries, 0) : 1;
  std::int64_t backoff_us = options_.retry_backoff_us;
  bool miss_retried = false;
  int attempt = 0;
  // One trace id per *logical* call: transport retries and the cache-miss
  // resend all stamp the same id, so the trace shows one call with a
  // `retry` count instead of disconnected spans.
  const std::uint64_t trace_id =
      trace_enabled_ ? obs::Tracer::Default().NextTraceId() : 0;
  int resend_count = 0;
  Status last = OkStatus();
  while (true) {
    Result<Bytes> reply = SyncAttempt(lock, &message, trace_id, resend_count);
    if (reply.ok()) {
      BreakerRecordLocked(/*transport_ok=*/true);
      return reply;
    }
    last = reply.status();
    if (last.code() == StatusCode::kCacheMiss && bulk != nullptr &&
        bulk->has_cache_hits() && !miss_retried) {
      // The server no longer holds a digest this call referenced (evicted
      // or restarted). It rejected the call before executing anything, so
      // one immediate inline retransmission-and-install is safe even for
      // non-idempotent calls — and it does not consume the transport retry
      // budget. SyncAttempt left the frame sealed: strip the checksum
      // so the rewrite and the next seal see the raw message.
      miss_retried = true;
      ++resend_count;
      xfer_miss_retries_->Increment();
      message.resize(message.size() - sizeof(std::uint32_t));
      bulk->RewriteForMiss(&message);
      continue;
    }
    // An admission reject (the router's bounded ingress queue was full) is
    // transient by construction: queued work is draining. Idempotent calls
    // retry through it with the normal backoff, but the channel itself is
    // healthy — the breaker must not trip on load shedding.
    const bool admission_reject =
        last.code() == StatusCode::kResourceExhausted;
    if (!admission_reject && !IsTransportFailure(last.code())) {
      // An answered rejection (rate limit, handler error) is not a channel
      // problem — no breaker bump, no retry.
      return last;
    }
    if (!admission_reject) {
      BreakerRecordLocked(/*transport_ok=*/false);
    }
    if (++attempt >= max_attempts) {
      return last;
    }
    calls_retried_->Increment();
    ++resend_count;
    const std::int64_t jitter_us =
        backoff_us > 0 ? retry_rng_.NextInRange(0, backoff_us) : 0;
    if (backoff_us + jitter_us > 0) {
      // Back off without the lock: other application threads keep calling.
      lock.unlock();
      std::this_thread::sleep_for(
          std::chrono::microseconds(backoff_us + jitter_us));
      lock.lock();
    }
    backoff_us *= 2;
    // Each attempt re-sends the sealed frame from the previous one: strip
    // the checksum so the identity patch + reseal see the raw message.
    message.resize(message.size() - sizeof(std::uint32_t));
  }
}

// One send + reply wait. A fresh call id per attempt means a late reply to
// an earlier attempt is identifiable as stray and dropped, rather than being
// mistaken for this attempt's answer.
//
// Multiplexing protocol: each blocked caller registers a waiter under its
// call id. At most one caller — the reader — drains the transport (without
// the lock) and routes every reply to its waiter; the rest sleep on
// reply_cv_. The reader steps down after each receive, so when its own
// reply arrives (or its deadline fires) another blocked caller takes over.
// A dead transport fails every waiter at once; a caller's deadline fails
// only that caller.
Result<Bytes> GuestEndpoint::SyncAttempt(std::unique_lock<std::mutex>& lock,
                                         Bytes* message,
                                         std::uint64_t trace_id, int retry) {
  const CallId call_id = next_call_id_++;
  PatchCallIdentity(message, call_id, options_.vm_id, 0);
  const bool sampling = obs::SamplingEnabled();
  const std::int64_t t_send = sampling ? MonotonicNowNs() : 0;
  if (trace_enabled_) {
    PatchCallTrace(message, trace_id, t_send);
  }
  const std::int64_t deadline_ns =
      options_.call_deadline_ms > 0
          ? MonotonicNowNs() + options_.call_deadline_ms * 1000000
          : 0;
  SyncWaiter waiter;
  waiter.epoch = transport_epoch_;
  waiters_[call_id] = &waiter;
  if (Status sent = SendSealedLocked(message); !sent.ok()) {
    waiters_.erase(call_id);
    return sent;
  }
  sync_calls_->Increment();

  while (!waiter.done) {
    if (!reader_active_) {
      // ---- reader: drain the transport for everyone ----
      reader_active_ = true;
      // Snapshot the transport under the lock: ReplaceTransport may swap the
      // member while we receive, but the snapshot stays alive (retired, not
      // freed) and its Close() wakes this receive.
      Transport* const rx_transport = transport_.get();
      const std::uint64_t reader_epoch = transport_epoch_;
      lock.unlock();
      Result<Bytes> received =
          deadline_ns > 0
              ? rx_transport->RecvTimeout(deadline_ns - MonotonicNowNs())
              : rx_transport->Recv();
      // Bulk completion reap: with one reply in hand, opportunistically
      // drain whatever else is already deliverable so every waiting caller
      // gets routed under a single lock acquisition instead of one
      // reader-wakeup round trip each (the SQ/CQ transport hands the whole
      // published completion batch over in one pass).
      std::vector<Bytes> reaped;
      if (received.ok()) {
        reaped.push_back(*std::move(received));
        constexpr std::size_t kReapBatch = 16;
        (void)rx_transport->TryRecvBatch(&reaped, kReapBatch - 1);
      }
      lock.lock();
      reader_active_ = false;
      if (!received.ok()) {
        const Status err = received.status();
        if (err.code() == StatusCode::kDeadlineExceeded) {
          // Only this caller's deadline fired; the channel itself may be
          // fine. Hand the reader role to another waiter and bail out.
          reply_cv_.notify_all();
          if (!waiter.done) {
            waiters_.erase(call_id);
            calls_deadline_exceeded_->Increment();
            return err;
          }
          break;
        }
        // The transport this reader was draining is gone: no reply sent on
        // it (or earlier generations) can arrive anymore. Calls already
        // re-sent on a replacement transport keep waiting.
        for (auto& [id, other] : waiters_) {
          if (!other->done && other->epoch <= reader_epoch) {
            other->done = true;
            other->status = err;
          }
        }
        reply_cv_.notify_all();
        if (waiter.done) {
          break;  // common exit below surfaces waiter.status
        }
        continue;  // our call rode a newer transport; resume waiting
      }
      Status routing_error = OkStatus();
      for (Bytes& raw : reaped) {
        bytes_received_->Increment(raw.size());
        if (Status crc = CheckAndStripFrame(&raw); !crc.ok()) {
          // A corrupted reply names no trustworthy call id, so it cannot
          // be routed. Classify it to this caller — matching the classic
          // single-caller behavior exactly — after the rest of the batch
          // is routed; any other affected caller's own deadline covers the
          // loss.
          if (routing_error.ok()) {
            routing_error = crc;
          }
          continue;
        }
        auto decoded = DecodeReply(raw);
        if (!decoded.ok()) {
          if (routing_error.ok()) {
            routing_error = decoded.status();
          }
          continue;
        }
        // Shadows apply at routing time (we hold the lock), whichever
        // caller the reply belongs to: piggybacked state must land before
        // that caller — possibly this thread — resumes.
        ApplyShadowsLocked(*decoded);
        auto it = waiters_.find(decoded->header.call_id);
        if (it == waiters_.end()) {
          AVA_LOG(WARNING) << "dropping stray reply for call "
                           << decoded->header.call_id;
          continue;
        }
        it->second->raw = std::move(raw);
        it->second->done = true;
      }
      // One notification for the whole reaped batch: followers whose
      // replies landed wake together instead of one per reader lap.
      reply_cv_.notify_all();
      if (!routing_error.ok() && !waiter.done) {
        waiters_.erase(call_id);
        return routing_error;
      }
      continue;
    }
    // ---- follower: wait for my reply or for the reader role ----
    if (deadline_ns > 0) {
      const std::int64_t remaining_ns = deadline_ns - MonotonicNowNs();
      const bool woke =
          remaining_ns > 0 &&
          reply_cv_.wait_for(lock, std::chrono::nanoseconds(remaining_ns),
                             [&] { return waiter.done || !reader_active_; });
      if (!woke && !waiter.done) {
        waiters_.erase(call_id);
        calls_deadline_exceeded_->Increment();
        return DeadlineExceeded("sync call deadline exceeded");
      }
    } else {
      reply_cv_.wait(lock, [&] { return waiter.done || !reader_active_; });
    }
  }
  waiters_.erase(call_id);
  if (!waiter.status.ok()) {
    return waiter.status;
  }
  AVA_ASSIGN_OR_RETURN(DecodedReply reply, DecodeReply(waiter.raw));
  const std::int64_t t_wake = sampling ? MonotonicNowNs() : 0;
  if (sampling) {
    sync_latency_ns_->Record(t_wake - t_send);
  }
  if (reply.header.trace_id != 0) {
    // Close the span: the guest is the only layer that sees every hop.
    obs::Tracer::Default().RecordSpan(
        obs::TraceLane::kGuest, "call.sync", options_.vm_id,
        reply.header.trace_id, t_send, t_wake,
        {{"t_send_ns", t_send},
         {"t_rx_ns", reply.header.t_rx_ns},
         {"t_dispatch_ns", reply.header.t_dispatch_ns},
         {"t_exec_start_ns", reply.header.t_exec_start_ns},
         {"t_exec_end_ns", reply.header.t_exec_end_ns},
         {"t_wake_ns", t_wake},
         {"call_id", static_cast<std::int64_t>(call_id)},
         {"retry", retry},
         {"cost_vns", reply.header.cost_vns}});
  }
  if (reply.header.status_code != 0) {
    return Status(static_cast<StatusCode>(reply.header.status_code),
                  "call rejected by router/server");
  }
  return Bytes(reply.payload.begin(), reply.payload.end());
}

Status GuestEndpoint::BreakerAdmitLocked() {
  if (options_.breaker_threshold <= 0 || breaker_open_until_ns_ == 0) {
    return OkStatus();
  }
  if (MonotonicNowNs() < breaker_open_until_ns_) {
    breaker_fast_fails_->Increment();
    return Unavailable("circuit breaker open (consecutive transport failures)");
  }
  // Cooldown elapsed: half-open. Let this call through as the probe; its
  // outcome (BreakerRecordLocked) re-opens or resets the breaker.
  breaker_open_until_ns_ = 0;
  breaker_open_->Set(0);
  return OkStatus();
}

void GuestEndpoint::BreakerRecordLocked(bool transport_ok) {
  if (options_.breaker_threshold <= 0) {
    return;
  }
  if (transport_ok) {
    consecutive_failures_ = 0;
    breaker_open_until_ns_ = 0;
    breaker_open_->Set(0);
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.breaker_threshold) {
    breaker_open_until_ns_ =
        MonotonicNowNs() + options_.breaker_cooldown_ms * 1000000;
    breaker_open_->Set(1);
  }
}

Status GuestEndpoint::CallAsyncPrepared(Bytes message) {
  std::lock_guard<std::mutex> lock(mutex_);
  PatchCallIdentity(&message, next_call_id_++, options_.vm_id,
                    kCallFlagAsync);
  if (trace_enabled_) {
    PatchCallTrace(&message, obs::Tracer::Default().NextTraceId(),
                   MonotonicNowNs());
  }
  async_calls_->Increment();
  if (options_.batch_max_calls > 1) {
    // Batched entries stay unsealed: the checksum protects the outer
    // transport frame, and the batch is sealed once at flush.
    pending_batch_.push_back(std::move(message));
    if (pending_batch_.size() >= options_.batch_max_calls) {
      return FlushLocked();
    }
    return OkStatus();
  }
  return SendSealedLocked(&message);
}

std::uint64_t GuestEndpoint::RegisterShadow(void* ptr, std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_shadow_id_++;
  shadows_[id] = ShadowTarget{ptr, size};
  return id;
}

Status GuestEndpoint::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return FlushLocked();
}

Status GuestEndpoint::ReplaceTransport(TransportPtr fresh) {
  if (fresh == nullptr) {
    return InvalidArgument("ReplaceTransport: null transport");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // Close BEFORE retiring: a blocked reader wakes with Unavailable, sees the
  // bumped epoch, and fails only the calls that rode the old generation.
  if (transport_ != nullptr) {
    transport_->Close();
    retired_transports_.push_back(std::move(transport_));
  }
  transport_ = std::move(fresh);
  ++transport_epoch_;
  // Re-negotiate the out-of-band bulk path with the new channel.
  arena_ = nullptr;
  arena_threshold_ = 0;
  if (options_.arena_threshold_bytes > 0) {
    arena_ = transport_->arena();
    if (arena_ != nullptr) {
      arena_threshold_ =
          static_cast<std::size_t>(options_.arena_threshold_bytes);
    }
  }
  // The old channel's failures say nothing about the new one.
  consecutive_failures_ = 0;
  breaker_open_until_ns_ = 0;
  breaker_open_->Set(0);
  {
    // Lock order: mutex_ then cache_mutex_ (see cache_mutex_ comment).
    // The target server's transfer cache starts cold; stale residency would
    // make the first reusable send travel as an unanswerable descriptor.
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    resident_.clear();
    seen_once_.clear();
  }
  return OkStatus();
}

std::int32_t GuestEndpoint::ConsumeAsyncError() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int32_t err = latched_async_error_;
  latched_async_error_ = 0;
  return err;
}

GuestEndpoint::Stats GuestEndpoint::stats() const {
  Stats stats;
  stats.sync_calls = sync_calls_->Value();
  stats.async_calls = async_calls_->Value();
  stats.messages_sent = messages_sent_->Value();
  stats.shadow_updates = shadow_updates_->Value();
  stats.bytes_sent = bytes_sent_->Value();
  stats.bytes_received = bytes_received_->Value();
  return stats;
}

Status GuestEndpoint::SendSealedLocked(Bytes* message) {
  SealFrame(message);
  bytes_sent_->Increment(message->size());
  messages_sent_->Increment();
  return transport_->Send(*message);
}

Status GuestEndpoint::FlushLocked() {
  if (pending_batch_.empty()) {
    return OkStatus();
  }
  Bytes batch = EncodeBatch(pending_batch_);
  pending_batch_.clear();
  return SendSealedLocked(&batch);
}

void GuestEndpoint::ApplyShadowsLocked(const DecodedReply& reply) {
  for (const ShadowUpdate& update : reply.shadows) {
    if (update.shadow_id == kXferCacheAckShadowId) {
      // Transfer-cache install acks: the server verified and installed
      // these digests while executing the call. Delivered even on error
      // replies — the installs happened regardless of the call's outcome.
      ByteReader r(update.data);
      while (r.remaining() > 0 && !r.failed()) {
        const CachedDesc desc = GetCachedDesc(&r);
        if (!r.failed()) {
          XferMarkResident(desc);
        }
      }
      continue;
    }
    if (update.shadow_id == kAsyncErrorShadowId) {
      if (update.data.size() >= sizeof(std::int32_t)) {
        std::memcpy(&latched_async_error_, update.data.data(),
                    sizeof(std::int32_t));
      }
      continue;
    }
    auto it = shadows_.find(update.shadow_id);
    if (it == shadows_.end()) {
      AVA_LOG(WARNING) << "shadow update for unknown id " << update.shadow_id;
      continue;
    }
    const std::size_t n = std::min(it->second.size, update.data.size());
    if (it->second.ptr != nullptr && n > 0) {
      std::memcpy(it->second.ptr, update.data.data(), n);
    }
    shadows_.erase(it);
    shadow_updates_->Increment();
  }
}

// ------------------------------- BulkScope ---------------------------------

BulkScope::BulkScope(GuestEndpoint* endpoint, bool allow_arena)
    : endpoint_(endpoint) {
  if (allow_arena) {
    arena_ = endpoint_->bulk_arena();
    threshold_ = endpoint_->arena_threshold_bytes();
    // Unlike the arena, the cache path needs no shared memory — it works on
    // any transport — but it does need a sync reply (for the kCacheMiss
    // handshake) and no replay (a replayed descriptor could alias whatever
    // the cache holds later), the same conditions allow_arena encodes.
    cache_min_ = endpoint_->xfer_cache_min_bytes();
  }
}

BulkScope::~BulkScope() {
  // The scope outlives the call (including every retry attempt), so slots
  // release only after no descriptor referencing them can still be in
  // flight. Release is generation-checked, so this is safe even if the
  // reply was lost and the server never observed the call.
  for (const BufferArena::Slot& slot : held_) {
    arena_->Release(slot.slot, slot.generation);
  }
  // Hit accounting is settled here, not at marshal time: a kCacheMiss reply
  // makes RewriteForMiss splice the payload back inline (and drop its
  // record), so those bytes traveled after all and must not count as saved.
  for (const CacheRecord& record : cache_records_) {
    endpoint_->NoteXferHit(record.bytes);
  }
}

void BulkScope::PutIn(ByteWriter* w, const void* data, std::size_t bytes,
                      bool reusable) {
  if (data == nullptr) {
    w->PutU8(kBulkNull);
    return;
  }
  if (reusable && CacheEligible(bytes)) {
    // Cheap pre-filter before any full-payload work: fingerprint only the
    // first few KiB. A prefix never seen before means this content cannot
    // be resident, so a cold stream pays ~a microsecond here and sends the
    // payload plain — no full hash, no install. Only once a prefix repeats
    // does the full digest get computed. A prefix collision between
    // different payloads merely triggers a redundant install attempt; the
    // full digest (verified server-side) is what keys the cache.
    const std::size_t prefix_len =
        bytes < kXferPrefixProbeBytes ? bytes : kXferPrefixProbeBytes;
    const std::uint64_t prefix_key = Hash64(data, prefix_len);
    if (!endpoint_->XferNoteSighting(prefix_key, bytes)) {
      PutInPayload(w, data, bytes);
      return;
    }
    // Re-hash the full payload at every send past the filter: the digest
    // always describes the bytes as they are NOW, so a guest that mutated
    // the buffer since the last call can never alias a stale cache entry.
    CachedDesc desc;
    desc.hash = Hash64(data, bytes);
    desc.length = bytes;
    if (endpoint_->XferLookupResident(desc.hash, desc.length, &desc.slot)) {
      CacheRecord record;
      record.marker_offset = w->size();
      record.data = data;
      record.bytes = bytes;
      record.hash = desc.hash;
      cache_records_.push_back(record);
      w->PutU8(kBulkCached);
      PutCachedDesc(w, desc);
      cached_bytes_count_ += bytes;
      return;
    }
    // Seen before but not resident: send the payload once more, asking the
    // server to install it under this digest. The install ack arrives as a
    // shadow on the reply; the next identical send becomes a
    // descriptor-only hit.
    w->PutU8(kBulkCachedInstall);
    PutCachedDesc(w, desc);
    endpoint_->NoteXferInstall();
    PutInPayload(w, data, bytes);
    return;
  }
  PutInPayload(w, data, bytes);
}

void BulkScope::PutInPayload(ByteWriter* w, const void* data,
                             std::size_t bytes) {
  if (Eligible(bytes)) {
    BufferArena::Slot slot;
    if (arena_->Acquire(bytes, &slot)) {
      std::memcpy(slot.data, data, bytes);
      held_.push_back(slot);
      w->PutU8(kBulkArena);
      PutArenaDesc(w, arena_->DescFor(slot, bytes));
      arena_bytes_count_ += bytes;
      endpoint_->NoteArenaAlloc(bytes);
      return;
    }
    endpoint_->NoteArenaFallback();
  }
  w->PutU8(kBulkInline);
  w->PutBlob(data, bytes);
}

void BulkScope::RewriteForMiss(Bytes* message) {
  if (cache_records_.empty()) {
    return;
  }
  // Each hit in the frame is marker (1) + CachedDesc (24); it becomes
  // kBulkCachedInstall + the same descriptor + an inline blob, so the
  // server verifies the digest and installs before executing the call.
  constexpr std::size_t kHitEncodingSize = 25;
  std::size_t extra = 0;
  for (const CacheRecord& record : cache_records_) {
    extra += 1 + sizeof(std::uint64_t) + record.bytes;
  }
  Bytes out;
  out.reserve(message->size() + extra);
  std::size_t pos = 0;
  for (const CacheRecord& record : cache_records_) {
    out.insert(out.end(), message->begin() + pos,
               message->begin() + static_cast<std::ptrdiff_t>(
                                      record.marker_offset));
    out.push_back(kBulkCachedInstall);
    out.insert(out.end(),
               message->begin() +
                   static_cast<std::ptrdiff_t>(record.marker_offset + 1),
               message->begin() + static_cast<std::ptrdiff_t>(
                                      record.marker_offset + kHitEncodingSize));
    out.push_back(kBulkInline);
    const std::uint64_t length = record.bytes;
    const auto* length_bytes = reinterpret_cast<const std::uint8_t*>(&length);
    out.insert(out.end(), length_bytes, length_bytes + sizeof(length));
    const auto* payload = static_cast<const std::uint8_t*>(record.data);
    out.insert(out.end(), payload, payload + record.bytes);
    pos = record.marker_offset + kHitEncodingSize;
    // The server evidently lost this digest; forget it so later calls
    // re-install instead of repeating the miss.
    endpoint_->XferDropResident(record.hash);
  }
  out.insert(out.end(), message->begin() + static_cast<std::ptrdiff_t>(pos),
             message->end());
  // The elided bytes now travel in the frame: zero the header's
  // cached_bytes field so router accounting matches what is on the wire.
  const std::uint64_t zero = 0;
  std::memcpy(out.data() + kCallCachedBytesOffset, &zero, sizeof(zero));
  *message = std::move(out);
  cache_records_.clear();
  cached_bytes_count_ = 0;
}

void BulkScope::PutOut(ByteWriter* w, void* ptr, std::size_t capacity) {
  if (ptr == nullptr) {
    w->PutU8(kBulkNull);
    PushOut(-1);
    return;
  }
  if (Eligible(capacity)) {
    BufferArena::Slot slot;
    if (arena_->Acquire(capacity, &slot)) {
      held_.push_back(slot);
      PushOut(static_cast<int>(held_.size()) - 1);
      w->PutU8(kBulkArena);
      PutArenaDesc(w, arena_->DescFor(slot, capacity));
      arena_bytes_count_ += capacity;
      endpoint_->NoteArenaAlloc(capacity);
      return;
    }
    endpoint_->NoteArenaFallback();
  }
  w->PutU8(kBulkInline);
  w->PutU64(static_cast<std::uint64_t>(capacity));
  PushOut(-1);
}

std::size_t BulkScope::ReadOut(ByteReader* r, void* dst,
                               std::size_t capacity) {
  int held_index = -1;
  if (next_out_ < outs_count_) {
    held_index = OutAt(next_out_);
  }
  ++next_out_;
  const std::uint8_t marker = r->GetU8();
  if (marker == kBulkArena) {
    // The reply only carries the byte count; the payload is already in the
    // slot this scope pre-acquired in PutOut.
    const std::uint64_t length = r->GetU64();
    if (held_index < 0 || !r->status().ok()) {
      return 0;
    }
    const BufferArena::Slot& slot = held_[static_cast<std::size_t>(held_index)];
    const std::size_t n =
        std::min(static_cast<std::size_t>(length), capacity);
    if (dst != nullptr && n > 0) {
      std::memcpy(dst, slot.data, n);
    }
    return n;
  }
  if (marker == kBulkInline) {
    auto view = r->GetBlobView();
    const std::size_t n = std::min(view.size(), capacity);
    if (dst != nullptr && n > 0) {
      std::memcpy(dst, view.data(), n);
    }
    return n;
  }
  // kBulkNull (server produced no value) or garbage (reader flags failure).
  return 0;
}

}  // namespace ava
