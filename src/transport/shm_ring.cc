// Shared-memory ring transport: the stand-in for a hypervisor-managed FIFO
// (the SVGA-style interposable transport the paper builds on). Two
// single-producer single-consumer byte rings live in one anonymous shared
// mapping, so the channel keeps working across fork().
//
// Framing: u32 length prefix + payload, written as a byte stream (a message
// larger than the ring is streamed through it chunk by chunk).
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/common/vclock.h"
#include "src/transport/arena.h"
#include "src/transport/transport.h"
#include "src/transport/transport_metrics.h"

namespace ava {
namespace {

transport_internal::KindMetrics& Metrics() {
  static transport_internal::KindMetrics metrics =
      transport_internal::MakeKindMetrics("shm");
  return metrics;
}

struct RingHeader {
  std::atomic<std::uint64_t> produced;  // total bytes written
  std::atomic<std::uint64_t> consumed;  // total bytes read
  std::atomic<std::uint32_t> closed;
  std::uint64_t capacity;
};

constexpr std::size_t kHeaderSize = 64;  // cache-line padded
static_assert(sizeof(RingHeader) <= kHeaderSize);

// Adaptive wait: spin briefly, then sleep with escalating duration. No
// yield() phase: on a loaded core, yielding against a runnable peer forces a
// context switch per iteration, which dwarfs the latency it saves.
void BackoffWait(int* spins) {
  if (*spins < 1024) {
    ++*spins;
    return;
  }
  const int level = std::min((*spins - 1024) / 8, 4);
  ++*spins;
  std::this_thread::sleep_for(std::chrono::microseconds(10 << level));
}

class Ring {
 public:
  // Placement view over shared memory: header + data area.
  static Ring At(std::uint8_t* base, std::size_t capacity) {
    return Ring(reinterpret_cast<RingHeader*>(base), base + kHeaderSize,
                capacity);
  }

  void Init() {
    header_->produced.store(0, std::memory_order_relaxed);
    header_->consumed.store(0, std::memory_order_relaxed);
    header_->closed.store(0, std::memory_order_relaxed);
    header_->capacity = capacity_;
  }

  void Close() { header_->closed.store(1, std::memory_order_release); }
  bool IsClosed() const {
    return header_->closed.load(std::memory_order_acquire) != 0;
  }

  std::size_t AvailableToRead() const {
    return static_cast<std::size_t>(
        header_->produced.load(std::memory_order_acquire) -
        header_->consumed.load(std::memory_order_acquire));
  }

  // Writes exactly `size` bytes, blocking for space. Fails when closed.
  // `progress_doorbell` (an eventfd, -1 to disable) is rung after every
  // partial write that leaves the writer waiting for space: an event-driven
  // reader parked mid-frame must learn there are new bytes to drain, or the
  // blocked writer and the doorbell-waiting reader deadlock on any message
  // larger than the ring.
  Status WriteAll(const void* data, std::size_t size,
                  int progress_doorbell = -1) {
    const auto* src = static_cast<const std::uint8_t*>(data);
    std::size_t written = 0;
    int spins = 0;
    while (written < size) {
      if (IsClosed()) {
        return Unavailable("shm ring closed");
      }
      const std::uint64_t produced =
          header_->produced.load(std::memory_order_relaxed);
      const std::uint64_t consumed =
          header_->consumed.load(std::memory_order_acquire);
      const std::size_t free_bytes =
          capacity_ - static_cast<std::size_t>(produced - consumed);
      if (free_bytes == 0) {
        BackoffWait(&spins);
        continue;
      }
      spins = 0;
      const std::size_t n = std::min(free_bytes, size - written);
      CopyIn(produced, src + written, n);
      header_->produced.store(produced + n, std::memory_order_release);
      written += n;
      if (written < size && progress_doorbell >= 0) {
        const std::uint64_t one = 1;
        (void)!::write(progress_doorbell, &one, sizeof(one));
      }
    }
    return OkStatus();
  }

  // Non-blocking partial read: consumes up to `max` immediately available
  // bytes, returns how many (0 when the ring is empty right now).
  std::size_t ReadSome(void* data, std::size_t max) {
    const std::uint64_t consumed =
        header_->consumed.load(std::memory_order_relaxed);
    const std::uint64_t produced =
        header_->produced.load(std::memory_order_acquire);
    const std::size_t avail = static_cast<std::size_t>(produced - consumed);
    const std::size_t n = std::min(avail, max);
    if (n > 0) {
      CopyOut(consumed, static_cast<std::uint8_t*>(data), n);
      header_->consumed.store(consumed + n, std::memory_order_release);
    }
    return n;
  }

  // ReadAll with a monotonic deadline. Partial progress before expiry is
  // reported via `*consumed_any` so the caller can decide about poisoning.
  Status ReadAllDeadline(void* data, std::size_t size,
                         std::int64_t deadline_ns, bool* consumed_any) {
    auto* dst = static_cast<std::uint8_t*>(data);
    std::size_t read = 0;
    int spins = 0;
    while (read < size) {
      const std::uint64_t consumed =
          header_->consumed.load(std::memory_order_relaxed);
      const std::uint64_t produced =
          header_->produced.load(std::memory_order_acquire);
      const std::size_t avail = static_cast<std::size_t>(produced - consumed);
      if (avail == 0) {
        if (IsClosed()) {
          return Unavailable("shm ring closed");
        }
        if (MonotonicNowNs() >= deadline_ns) {
          return DeadlineExceeded("shm ring recv timed out");
        }
        BackoffWait(&spins);
        continue;
      }
      spins = 0;
      const std::size_t n = std::min(avail, size - read);
      CopyOut(consumed, dst + read, n);
      header_->consumed.store(consumed + n, std::memory_order_release);
      read += n;
      *consumed_any = true;
    }
    return OkStatus();
  }

  // Reads exactly `size` bytes, blocking for data. Fails when closed and
  // drained.
  Status ReadAll(void* data, std::size_t size) {
    auto* dst = static_cast<std::uint8_t*>(data);
    std::size_t read = 0;
    int spins = 0;
    while (read < size) {
      const std::uint64_t consumed =
          header_->consumed.load(std::memory_order_relaxed);
      const std::uint64_t produced =
          header_->produced.load(std::memory_order_acquire);
      const std::size_t avail = static_cast<std::size_t>(produced - consumed);
      if (avail == 0) {
        if (IsClosed()) {
          return Unavailable("shm ring closed");
        }
        BackoffWait(&spins);
        continue;
      }
      spins = 0;
      const std::size_t n = std::min(avail, size - read);
      CopyOut(consumed, dst + read, n);
      header_->consumed.store(consumed + n, std::memory_order_release);
      read += n;
    }
    return OkStatus();
  }

 private:
  Ring(RingHeader* header, std::uint8_t* data, std::size_t capacity)
      : header_(header), data_(data), capacity_(capacity) {}

  void CopyIn(std::uint64_t at, const std::uint8_t* src, std::size_t n) {
    const std::size_t pos = static_cast<std::size_t>(at % capacity_);
    const std::size_t first = std::min(n, capacity_ - pos);
    std::memcpy(data_ + pos, src, first);
    if (n > first) {
      std::memcpy(data_, src + first, n - first);
    }
  }

  void CopyOut(std::uint64_t at, std::uint8_t* dst, std::size_t n) {
    const std::size_t pos = static_cast<std::size_t>(at % capacity_);
    const std::size_t first = std::min(n, capacity_ - pos);
    std::memcpy(dst, data_ + pos, first);
    if (n > first) {
      std::memcpy(dst + first, data_, n - first);
    }
  }

  RingHeader* header_;
  std::uint8_t* data_;
  std::size_t capacity_;
};

// The whole shared mapping: two rings back to back.
struct Region {
  std::uint8_t* base = nullptr;
  std::size_t total = 0;

  ~Region() {
    if (base != nullptr) {
      ::munmap(base, total);
    }
  }
};

class ShmEndpoint final : public Transport {
 public:
  // The doorbells are eventfds created before any fork (each endpoint owns
  // its pair of descriptors — dup()ed per endpoint, so destruction on one
  // side, or in one process, never closes the other's). door_tx is rung
  // after every Send/Close; door_rx is this endpoint's readiness fd. Either
  // may be -1 (doorbell-less legacy channel).
  ShmEndpoint(std::shared_ptr<Region> region, Ring tx, Ring rx,
              std::string name, std::shared_ptr<BufferArena> arena,
              int door_tx = -1, int door_rx = -1)
      : region_(std::move(region)),
        tx_(tx),
        rx_(rx),
        name_(std::move(name)),
        arena_(std::move(arena)),
        door_tx_(door_tx),
        door_rx_(door_rx) {}

  ~ShmEndpoint() override {
    Close();
    if (door_tx_ >= 0) {
      ::close(door_tx_);
    }
    if (door_rx_ >= 0) {
      ::close(door_rx_);
    }
  }

  Status Send(const Bytes& message) override {
    const bool sampling = obs::SamplingEnabled();
    const std::int64_t start_ns = sampling ? MonotonicNowNs() : 0;
    transport_internal::KindMetrics& m = Metrics();
    std::lock_guard<std::mutex> lock(send_mutex_);
    const std::uint32_t len = static_cast<std::uint32_t>(message.size());
    AVA_RETURN_IF_ERROR(tx_.WriteAll(&len, sizeof(len), door_tx_));
    AVA_RETURN_IF_ERROR(tx_.WriteAll(message.data(), message.size(), door_tx_));
    RingDoorbell();
    m.msgs_sent->Increment();
    m.bytes_sent->Increment(message.size());
    if (sampling) {
      m.send_ns->Record(MonotonicNowNs() - start_ns);
    }
    return OkStatus();
  }

  Result<Bytes> Recv() override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    if (!body_active_) {
      AVA_RETURN_IF_ERROR(
          rx_.ReadAll(len_buf_ + len_have_, sizeof(len_buf_) - len_have_));
      BeginBodyLocked();
    }
    AVA_RETURN_IF_ERROR(
        rx_.ReadAll(body_.data() + body_have_, body_.size() - body_have_));
    body_have_ = body_.size();
    return FinishBodyLocked();
  }

  Result<Bytes> RecvTimeout(std::int64_t timeout_ns) override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    const std::int64_t deadline_ns =
        MonotonicNowNs() + std::max<std::int64_t>(timeout_ns, 0);
    // A partial frame left behind by an earlier TryRecv counts as consumed
    // progress: expiring now would strand the reader mid-frame too.
    bool consumed_any = len_have_ > 0 || body_active_;
    Status status = OkStatus();
    if (!body_active_) {
      status = rx_.ReadAllDeadline(len_buf_ + len_have_,
                                   sizeof(len_buf_) - len_have_, deadline_ns,
                                   &consumed_any);
      if (status.ok()) {
        BeginBodyLocked();
      }
    }
    if (status.ok()) {
      status = rx_.ReadAllDeadline(body_.data() + body_have_,
                                   body_.size() - body_have_, deadline_ns,
                                   &consumed_any);
      if (status.ok()) {
        body_have_ = body_.size();
      }
    }
    if (!status.ok()) {
      if (status.code() == StatusCode::kDeadlineExceeded && consumed_any) {
        // The next reader would misparse the remaining payload bytes as a
        // length prefix; a byte ring cannot resync mid-frame, so poison it.
        Close();
        return DeadlineExceeded("shm ring recv timed out mid-frame (poisoned)");
      }
      return status;
    }
    return FinishBodyLocked();
  }

  // Incremental non-blocking receive: consumes whatever bytes are available
  // right now and parks the partial frame in endpoint state when the ring
  // runs dry. Safe for an event-loop caller — never blocks, even mid-frame
  // (the writer's progress doorbell re-arms readiness as more bytes land).
  Result<Bytes> TryRecv() override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    while (!body_active_) {
      const std::size_t n =
          rx_.ReadSome(len_buf_ + len_have_, sizeof(len_buf_) - len_have_);
      if (n == 0) {
        if (rx_.IsClosed() && rx_.AvailableToRead() == 0) {
          return Unavailable("shm ring closed");
        }
        return NotFound("no message pending");
      }
      len_have_ += n;
      if (len_have_ == sizeof(len_buf_)) {
        BeginBodyLocked();
      }
    }
    while (body_have_ < body_.size()) {
      const std::size_t n =
          rx_.ReadSome(body_.data() + body_have_, body_.size() - body_have_);
      if (n == 0) {
        if (rx_.IsClosed() && rx_.AvailableToRead() == 0) {
          return Unavailable("shm ring closed mid-frame");
        }
        return NotFound("no message pending");
      }
      body_have_ += n;
    }
    return FinishBodyLocked();
  }

  void Close() override {
    tx_.Close();
    rx_.Close();
    // Wake an event-driven receiver so it observes the closed ring.
    RingDoorbell();
  }

  std::string name() const override { return name_; }

  std::shared_ptr<BufferArena> arena() const override { return arena_; }

  int readiness_fd() const override { return door_rx_; }

  void AckReadiness() override {
    if (door_rx_ < 0) {
      return;
    }
    std::uint64_t drained = 0;
    // Nonblocking (EFD_NONBLOCK): EAGAIN just means no pending rings.
    (void)!::read(door_rx_, &drained, sizeof(drained));
  }

 private:
  void RingDoorbell() {
    if (door_tx_ < 0) {
      return;
    }
    const std::uint64_t one = 1;
    (void)!::write(door_tx_, &one, sizeof(one));
  }

  // Completed length prefix → allocate the body and switch phases.
  // recv_mutex_ held.
  void BeginBodyLocked() {
    std::uint32_t len = 0;
    std::memcpy(&len, len_buf_, sizeof(len));
    len_have_ = 0;
    body_.resize(len);
    body_have_ = 0;
    body_active_ = true;
  }

  // Completed body → reset reassembly state and hand the frame out.
  // recv_mutex_ held.
  Bytes FinishBodyLocked() {
    body_active_ = false;
    body_have_ = 0;
    transport_internal::KindMetrics& m = Metrics();
    m.msgs_received->Increment();
    m.bytes_received->Increment(body_.size());
    return std::move(body_);
  }

  std::shared_ptr<Region> region_;
  Ring tx_;
  Ring rx_;
  std::mutex send_mutex_;
  std::mutex recv_mutex_;
  std::string name_;
  std::shared_ptr<BufferArena> arena_;
  const int door_tx_;
  const int door_rx_;

  // Partial-frame reassembly state, shared by the blocking and non-blocking
  // receive paths; guarded by recv_mutex_.
  std::uint8_t len_buf_[4] = {0, 0, 0, 0};
  std::size_t len_have_ = 0;
  Bytes body_;
  std::size_t body_have_ = 0;
  bool body_active_ = false;
};

}  // namespace

Result<ChannelPair> MakeShmRingChannel(std::size_t ring_bytes) {
  if (ring_bytes < 256) {
    return InvalidArgument("shm ring too small");
  }
  const std::size_t per_ring = kHeaderSize + ring_bytes;
  const std::size_t total = 2 * per_ring;
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return Internal("mmap failed for shm ring");
  }
  auto region = std::make_shared<Region>();
  region->base = static_cast<std::uint8_t*>(base);
  region->total = total;

  Ring g2h = Ring::At(region->base, ring_bytes);
  Ring h2g = Ring::At(region->base + per_ring, ring_bytes);
  g2h.Init();
  h2g.Init();

  // The bulk-data arena shares the channel's fork lifecycle: created here,
  // before any fork, so both endpoints address the same pages. The mapping
  // is lazily committed — channels that never move bulk data pay nothing.
  // Arena creation failure degrades to inline marshaling, not an error.
  std::shared_ptr<BufferArena> arena;
  if (auto created = BufferArena::Create(); created.ok()) {
    arena = *std::move(created);
  }

  // Doorbell eventfds, one per direction, created before any fork so both
  // processes share the same kernel counters. Each endpoint gets its own
  // descriptor for each doorbell (dup), so per-endpoint destruction closes
  // only its copies. Failure degrades to doorbell-less rings (readiness -1,
  // the router falls back to a blocking reader thread).
  const int bell_g2h = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  const int bell_h2g = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  int guest_tx = -1, guest_rx = -1, host_tx = -1, host_rx = -1;
  if (bell_g2h >= 0 && bell_h2g >= 0) {
    guest_tx = bell_g2h;  // guest sends ring the g2h bell
    guest_rx = bell_h2g;  // guest wakes on the h2g bell
    host_tx = ::dup(bell_h2g);
    host_rx = ::dup(bell_g2h);
    if (host_tx < 0 || host_rx < 0) {
      if (host_tx >= 0) ::close(host_tx);
      if (host_rx >= 0) ::close(host_rx);
      ::close(bell_g2h);
      ::close(bell_h2g);
      guest_tx = guest_rx = host_tx = host_rx = -1;
    }
  } else {
    if (bell_g2h >= 0) ::close(bell_g2h);
    if (bell_h2g >= 0) ::close(bell_h2g);
  }

  ChannelPair pair;
  pair.guest = std::make_unique<ShmEndpoint>(region, g2h, h2g, "shm:guest",
                                             arena, guest_tx, guest_rx);
  pair.host = std::make_unique<ShmEndpoint>(region, h2g, g2h, "shm:host",
                                            arena, host_tx, host_rx);
  return pair;
}

}  // namespace ava
