// Shared-memory ring transport: the stand-in for a hypervisor-managed FIFO
// (the SVGA-style interposable transport the paper builds on). Two
// single-producer single-consumer byte rings live in one anonymous shared
// mapping, so the channel keeps working across fork().
//
// Framing: u32 length prefix + payload, written as a byte stream (a message
// larger than the ring is streamed through it chunk by chunk).
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/common/vclock.h"
#include "src/transport/arena.h"
#include "src/transport/transport.h"
#include "src/transport/transport_metrics.h"

namespace ava {
namespace {

transport_internal::KindMetrics& Metrics() {
  static transport_internal::KindMetrics metrics =
      transport_internal::MakeKindMetrics("shm");
  return metrics;
}

struct RingHeader {
  std::atomic<std::uint64_t> produced;  // total bytes written
  std::atomic<std::uint64_t> consumed;  // total bytes read
  std::atomic<std::uint32_t> closed;
  std::uint64_t capacity;
};

constexpr std::size_t kHeaderSize = 64;  // cache-line padded
static_assert(sizeof(RingHeader) <= kHeaderSize);

// Adaptive wait: spin briefly, then sleep with escalating duration. No
// yield() phase: on a loaded core, yielding against a runnable peer forces a
// context switch per iteration, which dwarfs the latency it saves.
void BackoffWait(int* spins) {
  if (*spins < 1024) {
    ++*spins;
    return;
  }
  const int level = std::min((*spins - 1024) / 8, 4);
  ++*spins;
  std::this_thread::sleep_for(std::chrono::microseconds(10 << level));
}

class Ring {
 public:
  // Placement view over shared memory: header + data area.
  static Ring At(std::uint8_t* base, std::size_t capacity) {
    return Ring(reinterpret_cast<RingHeader*>(base), base + kHeaderSize,
                capacity);
  }

  void Init() {
    header_->produced.store(0, std::memory_order_relaxed);
    header_->consumed.store(0, std::memory_order_relaxed);
    header_->closed.store(0, std::memory_order_relaxed);
    header_->capacity = capacity_;
  }

  void Close() { header_->closed.store(1, std::memory_order_release); }
  bool IsClosed() const {
    return header_->closed.load(std::memory_order_acquire) != 0;
  }

  std::size_t AvailableToRead() const {
    return static_cast<std::size_t>(
        header_->produced.load(std::memory_order_acquire) -
        header_->consumed.load(std::memory_order_acquire));
  }

  // Writes exactly `size` bytes, blocking for space. Fails when closed.
  Status WriteAll(const void* data, std::size_t size) {
    const auto* src = static_cast<const std::uint8_t*>(data);
    std::size_t written = 0;
    int spins = 0;
    while (written < size) {
      if (IsClosed()) {
        return Unavailable("shm ring closed");
      }
      const std::uint64_t produced =
          header_->produced.load(std::memory_order_relaxed);
      const std::uint64_t consumed =
          header_->consumed.load(std::memory_order_acquire);
      const std::size_t free_bytes =
          capacity_ - static_cast<std::size_t>(produced - consumed);
      if (free_bytes == 0) {
        BackoffWait(&spins);
        continue;
      }
      spins = 0;
      const std::size_t n = std::min(free_bytes, size - written);
      CopyIn(produced, src + written, n);
      header_->produced.store(produced + n, std::memory_order_release);
      written += n;
    }
    return OkStatus();
  }

  // ReadAll with a monotonic deadline. Partial progress before expiry is
  // reported via `*consumed_any` so the caller can decide about poisoning.
  Status ReadAllDeadline(void* data, std::size_t size,
                         std::int64_t deadline_ns, bool* consumed_any) {
    auto* dst = static_cast<std::uint8_t*>(data);
    std::size_t read = 0;
    int spins = 0;
    while (read < size) {
      const std::uint64_t consumed =
          header_->consumed.load(std::memory_order_relaxed);
      const std::uint64_t produced =
          header_->produced.load(std::memory_order_acquire);
      const std::size_t avail = static_cast<std::size_t>(produced - consumed);
      if (avail == 0) {
        if (IsClosed()) {
          return Unavailable("shm ring closed");
        }
        if (MonotonicNowNs() >= deadline_ns) {
          return DeadlineExceeded("shm ring recv timed out");
        }
        BackoffWait(&spins);
        continue;
      }
      spins = 0;
      const std::size_t n = std::min(avail, size - read);
      CopyOut(consumed, dst + read, n);
      header_->consumed.store(consumed + n, std::memory_order_release);
      read += n;
      *consumed_any = true;
    }
    return OkStatus();
  }

  // Reads exactly `size` bytes, blocking for data. Fails when closed and
  // drained.
  Status ReadAll(void* data, std::size_t size) {
    auto* dst = static_cast<std::uint8_t*>(data);
    std::size_t read = 0;
    int spins = 0;
    while (read < size) {
      const std::uint64_t consumed =
          header_->consumed.load(std::memory_order_relaxed);
      const std::uint64_t produced =
          header_->produced.load(std::memory_order_acquire);
      const std::size_t avail = static_cast<std::size_t>(produced - consumed);
      if (avail == 0) {
        if (IsClosed()) {
          return Unavailable("shm ring closed");
        }
        BackoffWait(&spins);
        continue;
      }
      spins = 0;
      const std::size_t n = std::min(avail, size - read);
      CopyOut(consumed, dst + read, n);
      header_->consumed.store(consumed + n, std::memory_order_release);
      read += n;
    }
    return OkStatus();
  }

 private:
  Ring(RingHeader* header, std::uint8_t* data, std::size_t capacity)
      : header_(header), data_(data), capacity_(capacity) {}

  void CopyIn(std::uint64_t at, const std::uint8_t* src, std::size_t n) {
    const std::size_t pos = static_cast<std::size_t>(at % capacity_);
    const std::size_t first = std::min(n, capacity_ - pos);
    std::memcpy(data_ + pos, src, first);
    if (n > first) {
      std::memcpy(data_, src + first, n - first);
    }
  }

  void CopyOut(std::uint64_t at, std::uint8_t* dst, std::size_t n) {
    const std::size_t pos = static_cast<std::size_t>(at % capacity_);
    const std::size_t first = std::min(n, capacity_ - pos);
    std::memcpy(dst, data_ + pos, first);
    if (n > first) {
      std::memcpy(dst + first, data_, n - first);
    }
  }

  RingHeader* header_;
  std::uint8_t* data_;
  std::size_t capacity_;
};

// The whole shared mapping: two rings back to back.
struct Region {
  std::uint8_t* base = nullptr;
  std::size_t total = 0;

  ~Region() {
    if (base != nullptr) {
      ::munmap(base, total);
    }
  }
};

class ShmEndpoint final : public Transport {
 public:
  ShmEndpoint(std::shared_ptr<Region> region, Ring tx, Ring rx,
              std::string name, std::shared_ptr<BufferArena> arena)
      : region_(std::move(region)),
        tx_(tx),
        rx_(rx),
        name_(std::move(name)),
        arena_(std::move(arena)) {}

  ~ShmEndpoint() override { Close(); }

  Status Send(const Bytes& message) override {
    const bool sampling = obs::SamplingEnabled();
    const std::int64_t start_ns = sampling ? MonotonicNowNs() : 0;
    transport_internal::KindMetrics& m = Metrics();
    std::lock_guard<std::mutex> lock(send_mutex_);
    const std::uint32_t len = static_cast<std::uint32_t>(message.size());
    AVA_RETURN_IF_ERROR(tx_.WriteAll(&len, sizeof(len)));
    AVA_RETURN_IF_ERROR(tx_.WriteAll(message.data(), message.size()));
    m.msgs_sent->Increment();
    m.bytes_sent->Increment(message.size());
    if (sampling) {
      m.send_ns->Record(MonotonicNowNs() - start_ns);
    }
    return OkStatus();
  }

  Result<Bytes> Recv() override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    std::uint32_t len = 0;
    AVA_RETURN_IF_ERROR(rx_.ReadAll(&len, sizeof(len)));
    Bytes message(len);
    AVA_RETURN_IF_ERROR(rx_.ReadAll(message.data(), len));
    transport_internal::KindMetrics& m = Metrics();
    m.msgs_received->Increment();
    m.bytes_received->Increment(message.size());
    return message;
  }

  Result<Bytes> RecvTimeout(std::int64_t timeout_ns) override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    const std::int64_t deadline_ns =
        MonotonicNowNs() + std::max<std::int64_t>(timeout_ns, 0);
    std::uint32_t len = 0;
    bool consumed_any = false;
    Status status =
        rx_.ReadAllDeadline(&len, sizeof(len), deadline_ns, &consumed_any);
    Bytes message;
    if (status.ok()) {
      message.resize(len);
      status = rx_.ReadAllDeadline(message.data(), len, deadline_ns,
                                   &consumed_any);
    }
    if (!status.ok()) {
      if (status.code() == StatusCode::kDeadlineExceeded && consumed_any) {
        // The next reader would misparse the remaining payload bytes as a
        // length prefix; a byte ring cannot resync mid-frame, so poison it.
        Close();
        return DeadlineExceeded("shm ring recv timed out mid-frame (poisoned)");
      }
      return status;
    }
    transport_internal::KindMetrics& m = Metrics();
    m.msgs_received->Increment();
    m.bytes_received->Increment(message.size());
    return message;
  }

  Result<Bytes> TryRecv() override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    if (rx_.AvailableToRead() < sizeof(std::uint32_t)) {
      return rx_.IsClosed() ? Unavailable("shm ring closed")
                            : NotFound("no message pending");
    }
    std::uint32_t len = 0;
    AVA_RETURN_IF_ERROR(rx_.ReadAll(&len, sizeof(len)));
    Bytes message(len);
    AVA_RETURN_IF_ERROR(rx_.ReadAll(message.data(), len));
    transport_internal::KindMetrics& m = Metrics();
    m.msgs_received->Increment();
    m.bytes_received->Increment(message.size());
    return message;
  }

  void Close() override {
    tx_.Close();
    rx_.Close();
  }

  std::string name() const override { return name_; }

  std::shared_ptr<BufferArena> arena() const override { return arena_; }

 private:
  std::shared_ptr<Region> region_;
  Ring tx_;
  Ring rx_;
  std::mutex send_mutex_;
  std::mutex recv_mutex_;
  std::string name_;
  std::shared_ptr<BufferArena> arena_;
};

}  // namespace

Result<ChannelPair> MakeShmRingChannel(std::size_t ring_bytes) {
  if (ring_bytes < 256) {
    return InvalidArgument("shm ring too small");
  }
  const std::size_t per_ring = kHeaderSize + ring_bytes;
  const std::size_t total = 2 * per_ring;
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return Internal("mmap failed for shm ring");
  }
  auto region = std::make_shared<Region>();
  region->base = static_cast<std::uint8_t*>(base);
  region->total = total;

  Ring g2h = Ring::At(region->base, ring_bytes);
  Ring h2g = Ring::At(region->base + per_ring, ring_bytes);
  g2h.Init();
  h2g.Init();

  // The bulk-data arena shares the channel's fork lifecycle: created here,
  // before any fork, so both endpoints address the same pages. The mapping
  // is lazily committed — channels that never move bulk data pay nothing.
  // Arena creation failure degrades to inline marshaling, not an error.
  std::shared_ptr<BufferArena> arena;
  if (auto created = BufferArena::Create(); created.ok()) {
    arena = *std::move(created);
  }

  ChannelPair pair;
  pair.guest =
      std::make_unique<ShmEndpoint>(region, g2h, h2g, "shm:guest", arena);
  pair.host =
      std::make_unique<ShmEndpoint>(region, h2g, g2h, "shm:host", arena);
  return pair;
}

}  // namespace ava
