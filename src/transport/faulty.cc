// FaultyTransport implementation. See faulty.h for the spec grammar.
#include "src/transport/faulty.h"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"

namespace ava {
namespace {

struct FaultMetrics {
  std::shared_ptr<obs::Counter> injected;
  std::shared_ptr<obs::Counter> dropped;
  std::shared_ptr<obs::Counter> corrupted;
  std::shared_ptr<obs::Counter> delayed;
  std::shared_ptr<obs::Counter> disconnects;
};

FaultMetrics& Metrics() {
  static FaultMetrics metrics = [] {
    auto& registry = obs::MetricRegistry::Default();
    FaultMetrics m;
    m.injected = registry.NewCounter("faults.injected");
    m.dropped = registry.NewCounter("faults.dropped");
    m.corrupted = registry.NewCounter("faults.corrupted");
    m.delayed = registry.NewCounter("faults.delayed");
    m.disconnects = registry.NewCounter("faults.disconnects");
    return m;
  }();
  return metrics;
}

class FaultyTransport final : public Transport {
 public:
  FaultyTransport(TransportPtr inner, const FaultSpec& spec)
      : inner_(std::move(inner)), spec_(spec), rng_(spec.seed) {}

  Status Send(const Bytes& message) override {
    FaultMetrics& m = Metrics();
    std::int64_t sleep_us = 0;
    bool drop = false;
    bool corrupt = false;
    bool disconnect = false;
    {
      // One lock for all randomized decisions keeps multi-threaded runs
      // deterministic in aggregate (same seed → same fault counts).
      std::lock_guard<std::mutex> lock(mutex_);
      if (spec_.disconnect_after >= 0 && sends_ >= spec_.disconnect_after) {
        disconnect = true;
      } else {
        ++sends_;
        drop = spec_.drop > 0.0 && rng_.NextBool(spec_.drop);
        corrupt =
            !drop && spec_.corrupt > 0.0 && rng_.NextBool(spec_.corrupt);
        sleep_us = spec_.delay_us;
        if (spec_.jitter_us > 0) {
          sleep_us += rng_.NextInRange(0, spec_.jitter_us);
        }
      }
    }
    if (disconnect) {
      m.injected->Increment();
      m.disconnects->Increment();
      inner_->Close();
      return Unavailable("fault injection: forced disconnect");
    }
    if (sleep_us > 0) {
      m.delayed->Increment();
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    }
    if (drop) {
      // A dropped message still "succeeds" from the sender's point of view —
      // exactly what a lossy interconnect looks like to the caller.
      m.injected->Increment();
      m.dropped->Increment();
      return OkStatus();
    }
    if (corrupt && !message.empty()) {
      m.injected->Increment();
      m.corrupted->Increment();
      Bytes mangled = message;
      std::size_t at;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        at = static_cast<std::size_t>(rng_.NextBelow(mangled.size()));
      }
      mangled[at] ^= 0xFF;
      return inner_->Send(mangled);
    }
    return inner_->Send(message);
  }

  Result<Bytes> Recv() override { return inner_->Recv(); }

  Result<Bytes> RecvTimeout(std::int64_t timeout_ns) override {
    return inner_->RecvTimeout(timeout_ns);
  }

  Result<Bytes> TryRecv() override { return inner_->TryRecv(); }

  // Receive-side faults don't exist (every fault injects on Send), so batch
  // reaping forwards wholesale — a wrapped record ring keeps its one-lock
  // drain.
  Result<std::size_t> TryRecvBatch(std::vector<Bytes>* out,
                                   std::size_t max) override {
    return inner_->TryRecvBatch(out, max);
  }

  void Close() override { inner_->Close(); }

  std::string name() const override { return "faulty:" + inner_->name(); }

  // Fault injection targets the command stream; the bulk arena (when the
  // inner transport has one) passes through so arena descriptors inside
  // corrupted frames still resolve against real slots.
  std::shared_ptr<BufferArena> arena() const override {
    return inner_->arena();
  }

 private:
  TransportPtr inner_;
  const FaultSpec spec_;
  std::mutex mutex_;
  Rng rng_;
  std::int64_t sends_ = 0;
};

// Parses one scalar; returns false on garbage or trailing characters.
bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

bool ParseInt(const std::string& text, std::int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

bool ParseU64(const std::string& text, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

}  // namespace

Result<FaultSpec> ParseFaultSpec(const std::string& text) {
  FaultSpec spec;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string pair = text.substr(start, comma - start);
    start = comma + 1;
    if (pair.empty()) {
      continue;
    }
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return InvalidArgument("fault spec entry missing '=': " + pair);
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    bool ok = false;
    if (key == "drop") {
      ok = ParseDouble(value, &spec.drop) && spec.drop >= 0.0 &&
           spec.drop <= 1.0;
    } else if (key == "corrupt") {
      ok = ParseDouble(value, &spec.corrupt) && spec.corrupt >= 0.0 &&
           spec.corrupt <= 1.0;
    } else if (key == "delay_us") {
      ok = ParseInt(value, &spec.delay_us) && spec.delay_us >= 0;
    } else if (key == "jitter_us") {
      ok = ParseInt(value, &spec.jitter_us) && spec.jitter_us >= 0;
    } else if (key == "disconnect_after") {
      ok = ParseInt(value, &spec.disconnect_after) &&
           spec.disconnect_after >= 0;
    } else if (key == "seed") {
      ok = ParseU64(value, &spec.seed);
    } else {
      return InvalidArgument("unknown fault spec key: " + key);
    }
    if (!ok) {
      return InvalidArgument("bad fault spec value: " + pair);
    }
  }
  return spec;
}

Result<FaultSpec> FaultSpecFromEnv() {
  const char* env = std::getenv("AVA_FAULT_SPEC");
  if (env == nullptr || env[0] == '\0') {
    return FaultSpec{};
  }
  return ParseFaultSpec(env);
}

TransportPtr MakeFaultyTransport(TransportPtr inner, const FaultSpec& spec) {
  return std::make_unique<FaultyTransport>(std::move(inner), spec);
}

TransportPtr WrapFaultyFromEnv(TransportPtr inner) {
  Result<FaultSpec> spec = FaultSpecFromEnv();
  if (!spec.ok()) {
    AVA_LOG(ERROR) << "ignoring malformed AVA_FAULT_SPEC: "
                   << spec.status().message();
    return inner;
  }
  if (!spec->Enabled()) {
    return inner;
  }
  return MakeFaultyTransport(std::move(inner), *spec);
}

}  // namespace ava
