// FaultyTransport: a deterministic fault-injection decorator over any
// Transport. Wraps an inner endpoint and perturbs traffic according to a
// FaultSpec — dropped sends, added latency, flipped payload bits, and forced
// disconnects — so failure handling up the stack (deadlines, retry, CRC
// rejection, session reaping) can be exercised reproducibly from a seed.
//
// Spec grammar (comma-separated key=value pairs, all keys optional):
//
//   drop=P               probability in [0,1] a Send is silently dropped
//   corrupt=P            probability a sent payload gets one byte flipped
//   delay_us=N           fixed extra latency, microseconds, on each Send
//   jitter_us=N          extra uniform [0,N] microseconds on each Send
//   disconnect_after=N   hard-Close the transport after N successful Sends
//   seed=S               RNG seed (default 1)
//
// Example: AVA_FAULT_SPEC="drop=0.01,delay_us=500,corrupt=0.001"
//
// Faults apply on the Send path only: one faulty side is enough to exercise
// both directions of a call, and keeping Recv passthrough preserves the
// receiver's blocking/timeout semantics exactly.
#ifndef AVA_SRC_TRANSPORT_FAULTY_H_
#define AVA_SRC_TRANSPORT_FAULTY_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/transport/transport.h"

namespace ava {

struct FaultSpec {
  double drop = 0.0;
  double corrupt = 0.0;
  std::int64_t delay_us = 0;
  std::int64_t jitter_us = 0;
  // < 0 means "never". 0 means "disconnect before the first send".
  std::int64_t disconnect_after = -1;
  std::uint64_t seed = 1;

  bool Enabled() const {
    return drop > 0.0 || corrupt > 0.0 || delay_us > 0 || jitter_us > 0 ||
           disconnect_after >= 0;
  }
};

// Parses the grammar above. Unknown keys and malformed values are errors, so
// a typo in AVA_FAULT_SPEC cannot silently disable a chaos run.
Result<FaultSpec> ParseFaultSpec(const std::string& text);

// Reads AVA_FAULT_SPEC. Returns a disabled (default) spec when unset or
// empty; fails on a malformed value.
Result<FaultSpec> FaultSpecFromEnv();

// Wraps `inner` when AVA_FAULT_SPEC is set and valid; returns `inner`
// unchanged when unset. A malformed spec logs and also returns `inner`
// unchanged (tests use ParseFaultSpec directly for strictness).
TransportPtr WrapFaultyFromEnv(TransportPtr inner);

}  // namespace ava

#endif  // AVA_SRC_TRANSPORT_FAULTY_H_
