#include "src/transport/arena.h"

#include <sys/mman.h>

#include <string>

namespace ava {
namespace {

// Arena ids are minted process-wide. Peers obtain the same arena by sharing
// the object across fork() (like the shm ring's Region), so ids created
// before the fork agree on both sides; a descriptor minted against any other
// arena fails the id check in Resolve.
std::atomic<std::uint32_t> g_next_arena_id{1};

}  // namespace

Result<std::shared_ptr<BufferArena>> BufferArena::Create(
    std::size_t slot_bytes, std::uint32_t slot_count) {
  if (slot_bytes == 0 || slot_count == 0) {
    return InvalidArgument("arena needs at least one non-empty slot");
  }
  // Keep slots cache-line aligned: the control block is 64 * slot_count
  // bytes, so aligning slot_bytes keeps every data slot 64-byte aligned,
  // which lets the server cast arena views to element types directly.
  slot_bytes = (slot_bytes + 63) & ~static_cast<std::size_t>(63);
  const std::size_t total =
      static_cast<std::size_t>(slot_count) * sizeof(SlotCtl) +
      static_cast<std::size_t>(slot_count) * slot_bytes;
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return Internal("mmap failed for buffer arena (" + std::to_string(total) +
                    " bytes)");
  }
  const std::uint32_t id =
      g_next_arena_id.fetch_add(1, std::memory_order_relaxed);
  auto arena = std::shared_ptr<BufferArena>(new BufferArena(
      id, static_cast<std::uint8_t*>(base), total, slot_bytes, slot_count));
  for (std::uint32_t i = 0; i < slot_count; ++i) {
    arena->ctl(i)->state.store(0, std::memory_order_relaxed);
    arena->ctl(i)->generation.store(0, std::memory_order_relaxed);
  }
  return arena;
}

BufferArena::~BufferArena() {
  if (base_ != nullptr) {
    ::munmap(base_, total_);
  }
}

bool BufferArena::Acquire(std::size_t bytes, Slot* out) {
  if (bytes > slot_bytes_) {
    return false;
  }
  const std::uint32_t start =
      next_.fetch_add(1, std::memory_order_relaxed) % slot_count_;
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    const std::uint32_t slot = (start + i) % slot_count_;
    std::uint32_t expected = 0;
    if (ctl(slot)->state.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      const std::uint32_t gen =
          ctl(slot)->generation.fetch_add(1, std::memory_order_acq_rel) + 1;
      out->slot = slot;
      out->generation = gen;
      out->data = data(slot);
      return true;
    }
  }
  return false;
}

void BufferArena::Release(std::uint32_t slot, std::uint32_t generation) {
  if (slot >= slot_count_) {
    return;
  }
  // Only the generation that acquired the slot may free it: a stale or
  // duplicate release (the slot was already recycled) must not free someone
  // else's allocation.
  if (ctl(slot)->generation.load(std::memory_order_acquire) != generation) {
    return;
  }
  std::uint32_t expected = 1;
  ctl(slot)->state.compare_exchange_strong(expected, 0,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed);
}

Result<std::span<std::uint8_t>> BufferArena::Resolve(const ArenaDesc& desc) {
  if (desc.arena_id != id_) {
    return InvalidArgument("arena descriptor for wrong arena " +
                           std::to_string(desc.arena_id));
  }
  if (desc.slot >= slot_count_) {
    return InvalidArgument("arena slot out of range: " +
                           std::to_string(desc.slot));
  }
  if (desc.length > slot_bytes_) {
    return InvalidArgument("arena descriptor length exceeds slot size");
  }
  if (ctl(desc.slot)->state.load(std::memory_order_acquire) != 1) {
    return InvalidArgument("arena slot not held");
  }
  if (ctl(desc.slot)->generation.load(std::memory_order_acquire) !=
      desc.generation) {
    return InvalidArgument("stale arena descriptor generation");
  }
  return std::span<std::uint8_t>(data(desc.slot),
                                 static_cast<std::size_t>(desc.length));
}

std::uint32_t BufferArena::SlotsInUse() const {
  std::uint32_t held = 0;
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    held += ctl(i)->state.load(std::memory_order_acquire) == 1 ? 1 : 0;
  }
  return held;
}

}  // namespace ava
