// In-process transport: two bounded message queues cross-wired between the
// endpoints. The reference implementation of the Transport contract.
#include <condition_variable>
#include <deque>
#include <mutex>

#include "src/common/vclock.h"
#include "src/transport/transport.h"
#include "src/transport/transport_metrics.h"

namespace ava {
namespace {

transport_internal::KindMetrics& Metrics() {
  static transport_internal::KindMetrics metrics =
      transport_internal::MakeKindMetrics("inproc");
  return metrics;
}

// One direction of the channel.
struct Pipe {
  std::mutex mutex;
  std::condition_variable can_send;
  std::condition_variable can_recv;
  std::deque<Bytes> queue;
  std::size_t capacity = 0;
  bool closed = false;
};

struct Shared {
  Pipe a_to_b;
  Pipe b_to_a;
};

class InProcEndpoint final : public Transport {
 public:
  InProcEndpoint(std::shared_ptr<Shared> shared, Pipe* tx, Pipe* rx,
                 std::string name)
      : shared_(std::move(shared)), tx_(tx), rx_(rx), name_(std::move(name)) {}

  ~InProcEndpoint() override { Close(); }

  Status Send(const Bytes& message) override {
    const bool sampling = obs::SamplingEnabled();
    const std::int64_t start_ns = sampling ? MonotonicNowNs() : 0;
    transport_internal::KindMetrics& m = Metrics();
    std::unique_lock<std::mutex> lock(tx_->mutex);
    tx_->can_send.wait(lock, [&] {
      return tx_->closed || tx_->queue.size() < tx_->capacity;
    });
    if (tx_->closed) {
      return Unavailable("inproc channel closed");
    }
    tx_->queue.push_back(message);
    lock.unlock();
    tx_->can_recv.notify_one();
    m.msgs_sent->Increment();
    m.bytes_sent->Increment(message.size());
    if (sampling) {
      m.send_ns->Record(MonotonicNowNs() - start_ns);
    }
    return OkStatus();
  }

  Result<Bytes> Recv() override {
    std::unique_lock<std::mutex> lock(rx_->mutex);
    rx_->can_recv.wait(lock, [&] { return rx_->closed || !rx_->queue.empty(); });
    if (rx_->queue.empty()) {
      return Unavailable("inproc channel closed");
    }
    Bytes message = std::move(rx_->queue.front());
    rx_->queue.pop_front();
    lock.unlock();
    rx_->can_send.notify_one();
    transport_internal::KindMetrics& m = Metrics();
    m.msgs_received->Increment();
    m.bytes_received->Increment(message.size());
    return message;
  }

  Result<Bytes> RecvTimeout(std::int64_t timeout_ns) override {
    std::unique_lock<std::mutex> lock(rx_->mutex);
    // Message queues hand over whole frames, so a timeout never leaves a
    // partially consumed message behind: no poisoning needed here.
    const bool ready = rx_->can_recv.wait_for(
        lock, std::chrono::nanoseconds(std::max<std::int64_t>(timeout_ns, 0)),
        [&] { return rx_->closed || !rx_->queue.empty(); });
    if (!ready) {
      return DeadlineExceeded("inproc recv timed out");
    }
    if (rx_->queue.empty()) {
      return Unavailable("inproc channel closed");
    }
    Bytes message = std::move(rx_->queue.front());
    rx_->queue.pop_front();
    lock.unlock();
    rx_->can_send.notify_one();
    transport_internal::KindMetrics& m = Metrics();
    m.msgs_received->Increment();
    m.bytes_received->Increment(message.size());
    return message;
  }

  Result<Bytes> TryRecv() override {
    std::unique_lock<std::mutex> lock(rx_->mutex);
    if (rx_->queue.empty()) {
      return rx_->closed ? Unavailable("inproc channel closed")
                         : NotFound("no message pending");
    }
    Bytes message = std::move(rx_->queue.front());
    rx_->queue.pop_front();
    lock.unlock();
    rx_->can_send.notify_one();
    transport_internal::KindMetrics& m = Metrics();
    m.msgs_received->Increment();
    m.bytes_received->Increment(message.size());
    return message;
  }

  void Close() override {
    for (Pipe* pipe : {tx_, rx_}) {
      {
        std::lock_guard<std::mutex> lock(pipe->mutex);
        pipe->closed = true;
      }
      pipe->can_recv.notify_all();
      pipe->can_send.notify_all();
    }
  }

  std::string name() const override { return name_; }

 private:
  std::shared_ptr<Shared> shared_;  // keeps the pipes alive
  Pipe* tx_;
  Pipe* rx_;
  std::string name_;
};

}  // namespace

ChannelPair MakeInProcChannel(std::size_t capacity_messages) {
  auto shared = std::make_shared<Shared>();
  shared->a_to_b.capacity = capacity_messages;
  shared->b_to_a.capacity = capacity_messages;
  ChannelPair pair;
  pair.guest = std::make_unique<InProcEndpoint>(shared, &shared->a_to_b,
                                                &shared->b_to_a, "inproc:guest");
  pair.host = std::make_unique<InProcEndpoint>(shared, &shared->b_to_a,
                                               &shared->a_to_b, "inproc:host");
  return pair;
}

}  // namespace ava
