// Per-kind transport counters, shared by the concrete transports. Each
// transport kind (inproc, shm, socket) owns one static set of cells named
// transport.<kind>.*; all endpoints of that kind aggregate into them.
#ifndef AVA_SRC_TRANSPORT_TRANSPORT_METRICS_H_
#define AVA_SRC_TRANSPORT_TRANSPORT_METRICS_H_

#include <memory>
#include <string>

#include "src/obs/metrics.h"

namespace ava {
namespace transport_internal {

struct KindMetrics {
  std::shared_ptr<obs::Counter> msgs_sent;
  std::shared_ptr<obs::Counter> bytes_sent;
  std::shared_ptr<obs::Counter> msgs_received;
  std::shared_ptr<obs::Counter> bytes_received;
  std::shared_ptr<obs::Histogram> send_ns;
};

inline KindMetrics MakeKindMetrics(const char* kind) {
  auto& registry = obs::MetricRegistry::Default();
  const std::string prefix = std::string("transport.") + kind + ".";
  KindMetrics m;
  m.msgs_sent = registry.NewCounter(prefix + "msgs_sent");
  m.bytes_sent = registry.NewCounter(prefix + "bytes_sent");
  m.msgs_received = registry.NewCounter(prefix + "msgs_received");
  m.bytes_received = registry.NewCounter(prefix + "bytes_received");
  m.send_ns = registry.NewHistogram(prefix + "send_ns");
  return m;
}

}  // namespace transport_internal
}  // namespace ava

#endif  // AVA_SRC_TRANSPORT_TRANSPORT_METRICS_H_
