// Transport abstraction for AvA's API remoting.
//
// The paper's key interposition claim is that API calls travel over
// *hypervisor-managed* transport rather than an opaque RPC socket. This
// module provides the pluggable transports:
//
//   - InProc:   bounded in-process queues (unit tests, single-process guests)
//   - ShmRing:  a shared-memory ring pair usable across fork() — the stand-in
//               for the virtio-style FIFO a hypervisor would manage
//   - Socket:   AF_UNIX or TCP byte streams — disaggregated accelerators
//
// A Transport endpoint is a duplex message pipe: Send() delivers one
// length-delimited message to the peer; Recv() blocks for the next one.
// Thread-safety: any number of senders, one receiver at a time.
#ifndef AVA_SRC_TRANSPORT_TRANSPORT_H_
#define AVA_SRC_TRANSPORT_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/serial.h"

namespace ava {

class BufferArena;

class Transport {
 public:
  virtual ~Transport() = default;

  // Delivers one message to the peer. Blocks while the channel is full.
  // Fails with Unavailable once either side has closed.
  virtual Status Send(const Bytes& message) = 0;

  // Blocks for the next message. Fails with Unavailable when the channel is
  // closed and drained.
  virtual Result<Bytes> Recv() = 0;

  // Recv with a relative timeout. Expiring while no byte of the next frame
  // has been consumed returns DeadlineExceeded and leaves the channel
  // intact; expiring mid-frame (a peer stalled or died halfway through a
  // message) cannot be resynchronized on byte-stream transports, so the
  // endpoint is closed ("poisoned") before DeadlineExceeded is returned.
  // timeout_ns <= 0 means "only what is already deliverable".
  virtual Result<Bytes> RecvTimeout(std::int64_t timeout_ns) = 0;

  // Non-blocking receive: returns NotFound immediately when no message is
  // pending, Unavailable when closed and drained.
  virtual Result<Bytes> TryRecv() = 0;

  // Bulk non-blocking receive: appends up to `max` immediately deliverable
  // messages to *out and returns how many landed. Returns the TryRecv()
  // error (NotFound / Unavailable) only when *zero* messages were reaped;
  // a terminal status behind reaped messages resurfaces on the next call.
  // The default adapts TryRecv(); record-ring transports override it to
  // drain a whole completion batch under one lock acquisition.
  virtual Result<std::size_t> TryRecvBatch(std::vector<Bytes>* out,
                                           std::size_t max) {
    std::size_t got = 0;
    while (got < max) {
      auto message = TryRecv();
      if (!message.ok()) {
        if (got == 0) {
          return message.status();
        }
        break;
      }
      out->push_back(*std::move(message));
      ++got;
    }
    return got;
  }

  // Closes both directions; pending receivers wake with Unavailable after
  // draining queued messages.
  virtual void Close() = 0;

  virtual std::string name() const = 0;

  // ---- readiness plumbing (event-driven receivers) ----
  // A pollable fd that becomes readable when TryRecv() may make progress:
  // the socket fd itself, or an eventfd doorbell for shared-memory rings.
  // -1 means "no readiness support" — the router falls back to a dedicated
  // blocking reader thread (inproc, fault-injection wrappers).
  virtual int readiness_fd() const { return -1; }

  // Clears the edge state behind readiness_fd() (drains a doorbell
  // counter). Call BEFORE draining messages with TryRecv(): a signal
  // arriving after the ack re-arms the fd, so no wakeup is ever lost.
  // Spurious wakeups (ack then nothing pending) are expected and benign —
  // TryRecv() simply returns NotFound. No-op for level-triggered fds.
  virtual void AckReadiness() {}

  // Capability negotiation for the out-of-band bulk path: the shared-memory
  // buffer arena reachable from both ends of this channel, or nullptr when
  // the transport cannot share memory (inproc pairs could but gain nothing;
  // sockets may cross machines). Callers fall back to inline marshaling
  // when absent — the wire format is valid either way.
  virtual std::shared_ptr<BufferArena> arena() const { return nullptr; }
};

using TransportPtr = std::unique_ptr<Transport>;

// A connected endpoint pair. By convention `guest` lives in the VM /
// application and `host` in the router/API-server process.
struct ChannelPair {
  TransportPtr guest;
  TransportPtr host;
};

// ----------------------------- constructors --------------------------------

// In-process channel with a bounded per-direction queue (messages).
ChannelPair MakeInProcChannel(std::size_t capacity_messages = 1024);

// Shared-memory ring channel. Each direction is a single-producer,
// single-consumer byte ring of `ring_bytes`. The backing pages are
// MAP_SHARED | MAP_ANONYMOUS, so both endpoints remain usable across a
// fork(): create the pair first, fork, then use `guest` in the child and
// `host` in the parent (or vice versa). Multiple senders on one endpoint are
// serialized internally.
Result<ChannelPair> MakeShmRingChannel(std::size_t ring_bytes = 1u << 20);

// AF_UNIX socketpair channel (also usable across fork()).
Result<ChannelPair> MakeSocketPairChannel();

// Submission/completion-queue record-ring channel (lock-free multi-producer
// submit, batch reaping, doorbell suppression). Full declaration with its
// config struct and test hooks lives in src/transport/sqcq_ring.h.

// Wraps an already-connected stream socket fd (takes ownership). Used by
// tests that need byte-level control of the peer side (partial frames,
// abrupt closes) while this end behaves like any socket transport.
TransportPtr MakeSocketTransportFromFd(int fd, std::string name);

// TCP endpoints for disaggregated accelerators: the API server listens, the
// guest connects.
Result<TransportPtr> TcpListenAccept(std::uint16_t port);
Result<TransportPtr> TcpConnect(const std::string& host, std::uint16_t port);

// Decorator injecting deterministic faults (see src/transport/faulty.h).
// Declared here so callers can wrap any endpoint without a new include.
struct FaultSpec;
TransportPtr MakeFaultyTransport(TransportPtr inner, const FaultSpec& spec);

}  // namespace ava

#endif  // AVA_SRC_TRANSPORT_TRANSPORT_H_
