// Socket transports: AF_UNIX socketpair (cross-fork) and TCP (disaggregated
// accelerators). Framing: u32 length prefix + payload.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <string>

#include "src/common/vclock.h"
#include "src/transport/transport.h"
#include "src/transport/transport_metrics.h"

namespace ava {
namespace {

transport_internal::KindMetrics& Metrics() {
  static transport_internal::KindMetrics metrics =
      transport_internal::MakeKindMetrics("socket");
  return metrics;
}

Status WriteAllFd(int fd, const void* data, std::size_t size) {
  const auto* src = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    ssize_t n = ::send(fd, src + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Unavailable(std::string("socket send failed: ") +
                         std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return OkStatus();
}

Status ReadAllFd(int fd, void* data, std::size_t size) {
  auto* dst = static_cast<std::uint8_t*>(data);
  std::size_t read = 0;
  while (read < size) {
    ssize_t n = ::recv(fd, dst + read, size - read, 0);
    if (n == 0) {
      return Unavailable("socket closed by peer");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Unavailable(std::string("socket recv failed: ") +
                         std::strerror(errno));
    }
    read += static_cast<std::size_t>(n);
  }
  return OkStatus();
}

// Waits until `fd` is readable or `deadline_ns` (monotonic) passes. Returns
// OK when readable, DeadlineExceeded on expiry, Unavailable on poll error.
Status WaitReadable(int fd, std::int64_t deadline_ns) {
  for (;;) {
    const std::int64_t remaining_ns = deadline_ns - MonotonicNowNs();
    if (remaining_ns <= 0) {
      return DeadlineExceeded("socket recv timed out");
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int timeout_ms =
        static_cast<int>(std::min<std::int64_t>((remaining_ns + 999999) / 1000000,
                                                1000));
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Unavailable(std::string("socket poll failed: ") +
                         std::strerror(errno));
    }
    if (rc > 0) {
      return OkStatus();  // readable, an error, or EOF — recv() will tell
    }
  }
}

// ReadAllFd under a deadline. `*consumed_any` reports whether any byte was
// taken off the stream before a failure, which is what decides poisoning.
Status ReadAllFdDeadline(int fd, void* data, std::size_t size,
                         std::int64_t deadline_ns, bool* consumed_any) {
  auto* dst = static_cast<std::uint8_t*>(data);
  std::size_t read = 0;
  while (read < size) {
    AVA_RETURN_IF_ERROR(WaitReadable(fd, deadline_ns));
    ssize_t n = ::recv(fd, dst + read, size - read, MSG_DONTWAIT);
    if (n == 0) {
      return Unavailable("socket closed by peer");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Unavailable(std::string("socket recv failed: ") +
                         std::strerror(errno));
    }
    read += static_cast<std::size_t>(n);
    *consumed_any = true;
  }
  return OkStatus();
}

class SocketEndpoint final : public Transport {
 public:
  SocketEndpoint(int fd, std::string name) : fd_(fd), name_(std::move(name)) {}

  ~SocketEndpoint() override {
    Close();
    ::close(fd_);
  }

  Status Send(const Bytes& message) override {
    const bool sampling = obs::SamplingEnabled();
    const std::int64_t start_ns = sampling ? MonotonicNowNs() : 0;
    transport_internal::KindMetrics& m = Metrics();
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (closed_.load(std::memory_order_acquire)) {
      return Unavailable("socket closed");
    }
    const std::uint32_t len = static_cast<std::uint32_t>(message.size());
    AVA_RETURN_IF_ERROR(WriteAllFd(fd_, &len, sizeof(len)));
    AVA_RETURN_IF_ERROR(WriteAllFd(fd_, message.data(), message.size()));
    m.msgs_sent->Increment();
    m.bytes_sent->Increment(message.size());
    if (sampling) {
      m.send_ns->Record(MonotonicNowNs() - start_ns);
    }
    return OkStatus();
  }

  Result<Bytes> Recv() override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    if (closed_.load(std::memory_order_acquire)) {
      return Unavailable("socket closed");
    }
    // Complete any frame TryRecv() left half-assembled before this call.
    if (!body_active_) {
      AVA_RETURN_IF_ERROR(
          ReadAllFd(fd_, len_buf_ + len_have_, sizeof(len_buf_) - len_have_));
      BeginBodyLocked();
    }
    AVA_RETURN_IF_ERROR(
        ReadAllFd(fd_, body_.data() + body_have_, body_.size() - body_have_));
    return FinishBodyLocked();
  }

  Result<Bytes> RecvTimeout(std::int64_t timeout_ns) override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    if (closed_.load(std::memory_order_acquire)) {
      return Unavailable("socket closed");
    }
    const std::int64_t deadline_ns =
        MonotonicNowNs() + std::max<std::int64_t>(timeout_ns, 0);
    // A frame TryRecv() left half-assembled counts as consumed stream bytes:
    // expiring now is a mid-frame expiry, which must poison.
    bool consumed_any = len_have_ > 0 || body_active_;
    Status status = OkStatus();
    if (!body_active_) {
      status = ReadAllFdDeadline(fd_, len_buf_ + len_have_,
                                 sizeof(len_buf_) - len_have_, deadline_ns,
                                 &consumed_any);
      if (status.ok()) {
        BeginBodyLocked();
      }
    }
    if (status.ok()) {
      status = ReadAllFdDeadline(fd_, body_.data() + body_have_,
                                 body_.size() - body_have_, deadline_ns,
                                 &consumed_any);
    }
    if (!status.ok()) {
      if (status.code() == StatusCode::kDeadlineExceeded && consumed_any) {
        // A partial frame sits on the stream; there is no way to resync a
        // byte stream mid-frame, so poison the endpoint.
        Close();
        return DeadlineExceeded("socket recv timed out mid-frame (poisoned)");
      }
      return status;
    }
    return FinishBodyLocked();
  }

  // Non-blocking incremental reassembly: reads whatever the kernel has,
  // remembers partial progress across calls, and never stalls the caller —
  // the event loop serves hundreds of sessions from one thread, so a guest
  // that has written half a frame must cost NotFound, not a blocked read.
  Result<Bytes> TryRecv() override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    if (closed_.load(std::memory_order_acquire)) {
      return Unavailable("socket closed");
    }
    while (!body_active_) {
      ssize_t n = ::recv(fd_, len_buf_ + len_have_,
                         sizeof(len_buf_) - len_have_, MSG_DONTWAIT);
      if (n == 0) {
        return Unavailable("socket closed by peer");
      }
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return NotFound("no message pending");
        }
        return Unavailable(std::string("socket recv failed: ") +
                           std::strerror(errno));
      }
      len_have_ += static_cast<std::size_t>(n);
      if (len_have_ == sizeof(len_buf_)) {
        BeginBodyLocked();
      }
    }
    while (body_have_ < body_.size()) {
      ssize_t n = ::recv(fd_, body_.data() + body_have_,
                         body_.size() - body_have_, MSG_DONTWAIT);
      if (n == 0) {
        return Unavailable("socket closed by peer");
      }
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Partial frame parked; the fd turning readable resumes it here.
          return NotFound("no message pending");
        }
        return Unavailable(std::string("socket recv failed: ") +
                           std::strerror(errno));
      }
      body_have_ += static_cast<std::size_t>(n);
    }
    return FinishBodyLocked();
  }

  void Close() override {
    // Only shutdown() here: another thread may be blocked in recv()/send() on
    // fd_, and close() would free the descriptor number for reuse under it.
    // shutdown() wakes blocked peers with EOF/EPIPE; the destructor (sole
    // owner, no concurrent calls by contract) releases the fd.
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  std::string name() const override { return name_; }

  // The socket is its own readiness signal (level-triggered on buffered
  // bytes, HUP on peer close); no doorbell or ack needed.
  int readiness_fd() const override { return fd_; }

 private:
  // Length prefix complete: switch reassembly to the payload phase.
  void BeginBodyLocked() {
    std::uint32_t len = 0;
    std::memcpy(&len, len_buf_, sizeof(len));
    len_have_ = 0;
    body_.resize(len);
    body_have_ = 0;
    body_active_ = true;
  }

  // Payload complete: reset reassembly state and hand the frame out.
  Result<Bytes> FinishBodyLocked() {
    body_active_ = false;
    body_have_ = 0;
    transport_internal::KindMetrics& m = Metrics();
    m.msgs_received->Increment();
    m.bytes_received->Increment(body_.size());
    return std::move(body_);
  }

  const int fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mutex_;
  std::mutex recv_mutex_;
  std::string name_;
  // Frame-reassembly state (guarded by recv_mutex_): a frame may arrive in
  // arbitrarily many readable chunks under the event loop.
  std::uint8_t len_buf_[sizeof(std::uint32_t)] = {};
  std::size_t len_have_ = 0;
  Bytes body_;
  std::size_t body_have_ = 0;
  bool body_active_ = false;
};

}  // namespace

TransportPtr MakeSocketTransportFromFd(int fd, std::string name) {
  return std::make_unique<SocketEndpoint>(fd, std::move(name));
}

Result<ChannelPair> MakeSocketPairChannel() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Internal(std::string("socketpair failed: ") + std::strerror(errno));
  }
  ChannelPair pair;
  pair.guest = std::make_unique<SocketEndpoint>(fds[0], "unix:guest");
  pair.host = std::make_unique<SocketEndpoint>(fds[1], "unix:host");
  return pair;
}

Result<TransportPtr> TcpListenAccept(std::uint16_t port) {
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Internal("socket() failed");
  }
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listener);
    return Internal(std::string("bind failed: ") + std::strerror(errno));
  }
  if (::listen(listener, 1) != 0) {
    ::close(listener);
    return Internal("listen failed");
  }
  int conn = ::accept(listener, nullptr, nullptr);
  ::close(listener);
  if (conn < 0) {
    return Internal("accept failed");
  }
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TransportPtr(std::make_unique<SocketEndpoint>(
      conn, "tcp:server:" + std::to_string(port)));
}

Result<TransportPtr> TcpConnect(const std::string& host, std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Internal("socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad IPv4 address: " + host);
  }
  // Retry briefly: the server side may still be binding.
  for (int attempt = 0;; ++attempt) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (attempt > 200) {
      ::close(fd);
      return Unavailable(std::string("connect failed: ") +
                         std::strerror(errno));
    }
    ::usleep(10000);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TransportPtr(std::make_unique<SocketEndpoint>(
      fd, "tcp:client:" + std::to_string(port)));
}

}  // namespace ava
