// SQ/CQ record-ring transport implementation. See sqcq_ring.h for the
// layout and DESIGN.md §15 for the memory-ordering contract. The protocol
// in one paragraph:
//
//   Producers claim `n` contiguous slots with claim.fetch_add(n) (wait-free;
//   no lock, no CAS loop), wait for each claimed slot to come free
//   (slot.seq == pos, acquire — pairs with the consumer's release when it
//   freed the previous lap), write header + payload as plain stores, then
//   publish each slot with slot.seq = pos + 1 (release). The single
//   consumer reads head's record only when every slot of it is published
//   (acquire), copies out, and frees with slot.seq = pos + depth (release).
//   Doorbells are Dekker-paired with the armed flag: the producer's
//   seq_cst fence after publish vs the consumer's seq_cst armed-store
//   before its final emptiness re-check — one of them always observes the
//   other, so a sleeping consumer is never missed and an awake one costs
//   no syscall.
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/vclock.h"
#include "src/transport/arena.h"
#include "src/transport/sqcq_ring.h"
#include "src/transport/transport_metrics.h"

namespace ava {
namespace {

using sqcq::kEnd;
using sqcq::kMid;
using sqcq::kSlotHdrBytes;
using sqcq::kStart;
using sqcq::kWhole;
using sqcq::RingHdr;
using sqcq::SlotHdr;

transport_internal::KindMetrics& Metrics() {
  static transport_internal::KindMetrics metrics =
      transport_internal::MakeKindMetrics("sqcq");
  return metrics;
}

// Same escalation policy as the byte ring (see shm_ring.cc): spin briefly,
// then sleep with growing duration — no yield() phase.
void BackoffWait(int* spins) {
  if (*spins < 1024) {
    ++*spins;
    return;
  }
  const int level = std::min((*spins - 1024) / 8, 4);
  ++*spins;
  std::this_thread::sleep_for(std::chrono::microseconds(10 << level));
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// On a single-CPU machine pause-spinning is worse than useless: the waiter
// burns the exact quantum the producer needs to publish. There the spin
// phase yields instead — the scheduler hands the core to the peer, and
// because `armed` stays 0 the whole time, the peer's publish skips the
// doorbell syscall entirely.
bool SingleCpu() {
  static const bool single = std::thread::hardware_concurrency() <= 1;
  return single;
}

std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return end == value ? fallback : static_cast<std::int64_t>(parsed);
}

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

struct Region {
  std::uint8_t* base = nullptr;
  std::size_t total = 0;
  ~Region() {
    if (base != nullptr) {
      ::munmap(base, total);
    }
  }
};

// Every knob resolved once at channel creation; both endpoints share it.
struct Resolved {
  std::size_t depth;
  std::size_t stride;
  std::size_t payload;
  std::size_t wave_slots;  // max slots per record (contiguous claim bound)
  std::size_t wave_bytes;
  std::size_t max_message_bytes;
  std::int64_t coalesce_ns;
  int coalesce_calls;
  std::int64_t spin_ns;
};

std::size_t SlotsFor(std::size_t bytes, std::size_t payload) {
  return bytes == 0 ? 1 : (bytes + payload - 1) / payload;
}

class SqcqEndpoint final : public Transport {
 public:
  SqcqEndpoint(std::shared_ptr<Region> region, SqcqRawRing tx, SqcqRawRing rx,
               Resolved cfg, std::uint64_t initial_cursor, std::string name,
               std::shared_ptr<BufferArena> arena, int door_tx, int door_rx)
      : region_(std::move(region)),
        tx_(tx),
        rx_(rx),
        cfg_(cfg),
        name_(std::move(name)),
        arena_(std::move(arena)),
        door_tx_(door_tx),
        door_rx_(door_rx),
        rx_head_(initial_cursor) {}

  ~SqcqEndpoint() override {
    Close();
    if (door_tx_ >= 0) {
      ::close(door_tx_);
    }
    if (door_rx_ >= 0) {
      ::close(door_rx_);
    }
  }

  Status Send(const Bytes& message) override {
    const bool sampling = obs::SamplingEnabled();
    const std::int64_t start_ns = sampling ? MonotonicNowNs() : 0;
    if (message.size() > cfg_.max_message_bytes) {
      return InvalidArgument("sqcq message exceeds max_message_bytes");
    }
    // SendRecord only re-checks the flag while waiting for a slot to free
    // up, so an empty ring needs this entry check to refuse post-close
    // sends (own close and peer close both mark the ring).
    if (tx_.hdr->closed.load(std::memory_order_acquire) != 0) {
      return Unavailable("sqcq ring closed");
    }
    if (message.size() <= cfg_.wave_bytes) {
      // Fast path: one contiguous record, no lock anywhere.
      AVA_RETURN_IF_ERROR(SendRecord(kWhole, message.data(), message.size(),
                                     message.size()));
    } else {
      // Giant message: serialize fragments on this endpoint so the
      // consumer sees exactly one interleaved stream per direction.
      // Records from *other* whole-message senders may interleave freely —
      // they carry their own role flag and deliver immediately.
      std::lock_guard<std::mutex> lock(stream_mutex_);
      std::size_t off = 0;
      bool first = true;
      while (off < message.size()) {
        const std::size_t chunk =
            std::min(cfg_.wave_bytes, message.size() - off);
        const std::uint16_t role =
            first ? kStart : (off + chunk == message.size() ? kEnd : kMid);
        AVA_RETURN_IF_ERROR(
            SendRecord(role, message.data() + off, chunk, message.size()));
        off += chunk;
        first = false;
      }
    }
    transport_internal::KindMetrics& m = Metrics();
    m.msgs_sent->Increment();
    m.bytes_sent->Increment(message.size());
    if (sampling) {
      m.send_ns->Record(MonotonicNowNs() - start_ns);
    }
    return OkStatus();
  }

  Result<Bytes> Recv() override { return RecvInternal(/*deadline_ns=*/0); }

  Result<Bytes> RecvTimeout(std::int64_t timeout_ns) override {
    const std::int64_t deadline_ns =
        MonotonicNowNs() + std::max<std::int64_t>(timeout_ns, 0);
    return RecvInternal(deadline_ns);
  }

  Result<Bytes> TryRecv() override {
    FlushDoorbell();
    std::lock_guard<std::mutex> lock(recv_mutex_);
    for (;;) {
      auto message = PollMessageLocked();
      if (message.ok() || message.status().code() != StatusCode::kNotFound) {
        return message;
      }
      if (ArmLocked()) {
        continue;  // a record landed (or close raced) while arming
      }
      return NotFound("no message pending");
    }
  }

  Result<std::size_t> TryRecvBatch(std::vector<Bytes>* out,
                                   std::size_t max) override {
    FlushDoorbell();
    std::lock_guard<std::mutex> lock(recv_mutex_);
    std::size_t got = 0;
    while (got < max) {
      auto message = PollMessageLocked();
      if (message.ok()) {
        out->push_back(*std::move(message));
        ++got;
        continue;
      }
      if (message.status().code() == StatusCode::kNotFound) {
        if (ArmLocked()) {
          continue;
        }
        // Drained dry and armed: the next publish rings the doorbell, so
        // an event-loop caller can go back to waiting with nothing lost.
        if (got == 0) {
          return message.status();
        }
        return got;
      }
      // Unavailable / DataLoss: deliver what we reaped; the terminal
      // status resurfaces on the next call.
      if (got == 0) {
        return message.status();
      }
      return got;
    }
    return got;  // hit `max` without going dry: caller should revisit
  }

  void Close() override {
    tx_.hdr->closed.store(1, std::memory_order_release);
    rx_.hdr->closed.store(1, std::memory_order_release);
    // Wake the peer's consumer *and* our own (a reader of this endpoint may
    // be asleep in ppoll on door_rx_ — it must observe the closed flag).
    FlushDoorbell();
    RingFd(door_tx_);
    RingFd(door_rx_);
  }

  std::string name() const override { return name_; }

  std::shared_ptr<BufferArena> arena() const override { return arena_; }

  int readiness_fd() const override { return door_rx_; }

  void AckReadiness() override {
    if (door_rx_ < 0) {
      return;
    }
    std::uint64_t drained = 0;
    (void)!::read(door_rx_, &drained, sizeof(drained));
    // We are clearly awake and about to drain; suppress producer doorbells
    // until the drain goes dry and re-arms.
    rx_.hdr->armed.store(0, std::memory_order_relaxed);
  }

 private:
  // ---------------------------- producer side ----------------------------

  Status SendRecord(std::uint16_t role, const std::uint8_t* src,
                    std::size_t frag_len, std::size_t total_len) {
    const std::size_t nslots = SlotsFor(frag_len, cfg_.payload);
    const std::uint64_t pos =
        tx_.hdr->claim.fetch_add(nslots, std::memory_order_relaxed);
    std::size_t off = 0;
    for (std::size_t k = 0; k < nslots; ++k) {
      SlotHdr* slot = tx_.slot(pos + k);
      int spins = 0;
      // Wait for the slot to come around (consumer freed the previous
      // lap). The acquire pairs with the consumer's release-free, so its
      // reads of the old payload happen-before our overwrite.
      while (slot->seq.load(std::memory_order_acquire) != pos + k) {
        if (tx_.hdr->closed.load(std::memory_order_acquire) != 0) {
          return Unavailable("sqcq ring closed");
        }
        BackoffWait(&spins);
      }
      if (k == 0) {
        slot->frag_len = static_cast<std::uint32_t>(frag_len);
        slot->flags = role;
        slot->reserved = 0;
        slot->total_len = total_len;
      }
      const std::size_t chunk = std::min(cfg_.payload, frag_len - off);
      if (chunk > 0) {
        std::memcpy(tx_.slot_payload(pos + k), src + off, chunk);
      }
      off += chunk;
    }
    for (std::size_t k = 0; k < nslots; ++k) {
      tx_.slot(pos + k)->seq.store(pos + k + 1, std::memory_order_release);
    }
    DoorbellAfterPublish();
    return OkStatus();
  }

  void DoorbellAfterPublish() {
    // Dekker pair with ArmLocked(): publish (release) → fence → armed load
    // vs armed store (seq_cst) → record re-check. At least one side sees
    // the other's write; a sleeping consumer is never missed.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (tx_.hdr->armed.load(std::memory_order_relaxed) == 0) {
      return;  // consumer is awake (draining or spinning): no syscall owed
    }
    if (cfg_.coalesce_ns <= 0) {
      RingFd(door_tx_);
      return;
    }
    // Adaptive coalescing: defer the wakeup until enough submissions or
    // enough time has accumulated. Consumers cap their sleep at ~2 windows
    // (see SleepCapNs), so a deferred doorbell is still observed promptly.
    const int pending = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::int64_t now = MonotonicNowNs();
    if (pending == 1) {
      first_pending_ns_.store(now, std::memory_order_relaxed);
    }
    if (pending >= cfg_.coalesce_calls ||
        now - first_pending_ns_.load(std::memory_order_relaxed) >=
            cfg_.coalesce_ns) {
      FlushDoorbell();
    }
  }

  // Flushes any doorbell deferred by coalescing. Called on the count/
  // deadline thresholds, on Close, and at the entry of every receive on
  // this endpoint (a sync caller about to sleep must push its own
  // submissions out first, or it waits on a reply the server never saw).
  void FlushDoorbell() {
    if (pending_.exchange(0, std::memory_order_relaxed) > 0) {
      RingFd(door_tx_);
    }
  }

  static void RingFd(int fd) {
    if (fd < 0) {
      return;
    }
    const std::uint64_t one = 1;
    (void)!::write(fd, &one, sizeof(one));
  }

  // ---------------------------- consumer side ----------------------------
  // All consumer state (rx_head_, stream reassembly, recv_error_) is
  // guarded by recv_mutex_; the shared hdr->head is a diagnostic mirror
  // only and never trusted for reads, so a forged head cannot over-read.

  bool RxClosedLocked() const {
    return rx_.hdr->closed.load(std::memory_order_acquire) != 0;
  }

  // Would PollMessageLocked() make progress right now? True when the head
  // record is fully published, the header is malformed (poisoning is
  // progress), or the ring is closed (Unavailable is progress).
  bool RecordReadyLocked() const {
    const std::uint64_t pos = rx_head_;
    const SlotHdr* first = rx_.slot(pos);
    if (first->seq.load(std::memory_order_acquire) != pos + 1) {
      return RxClosedLocked();
    }
    const std::uint32_t frag_len = first->frag_len;
    if (frag_len > cfg_.wave_bytes) {
      return true;
    }
    const std::size_t nslots = SlotsFor(frag_len, cfg_.payload);
    for (std::size_t k = 1; k < nslots; ++k) {
      if (rx_.slot(pos + k)->seq.load(std::memory_order_acquire) !=
          pos + k + 1) {
        return RxClosedLocked();
      }
    }
    return true;
  }

  Result<Bytes> PoisonLocked(const char* why) {
    recv_error_ = DataLoss(why);
    Close();
    return recv_error_;
  }

  // Pulls the next complete *message* without waiting. NotFound: nothing
  // fully published (a partially published record or fragment stream stays
  // parked — record rings resynchronize, unlike byte streams). Unavailable:
  // closed and the head record will never complete (this is where a crashed
  // producer's claimed-but-unpublished sqe gets skipped). DataLoss: the
  // peer wrote a malformed header; the ring is poisoned, never over-read.
  Result<Bytes> PollMessageLocked() {
    if (!recv_error_.ok()) {
      return recv_error_;
    }
    for (;;) {
      const std::uint64_t pos = rx_head_;
      SlotHdr* first = rx_.slot(pos);
      if (first->seq.load(std::memory_order_acquire) != pos + 1) {
        if (RxClosedLocked()) {
          return Unavailable("sqcq ring closed");
        }
        return NotFound("no message pending");
      }
      const std::uint32_t frag_len = first->frag_len;
      const std::uint16_t flags = first->flags;
      const std::uint64_t total_len = first->total_len;
      if (frag_len > cfg_.wave_bytes || flags > kEnd ||
          total_len > cfg_.max_message_bytes) {
        return PoisonLocked("sqcq record header invalid");
      }
      const std::size_t nslots = SlotsFor(frag_len, cfg_.payload);
      bool complete = true;
      for (std::size_t k = 1; k < nslots; ++k) {
        if (rx_.slot(pos + k)->seq.load(std::memory_order_acquire) !=
            pos + k + 1) {
          complete = false;
          break;
        }
      }
      if (!complete) {
        if (RxClosedLocked()) {
          return Unavailable("sqcq ring closed mid-record");
        }
        return NotFound("no message pending");
      }
      // Copy the record out, then free its slots for the next lap.
      Bytes record(frag_len);
      std::size_t off = 0;
      for (std::size_t k = 0; k < nslots; ++k) {
        const std::size_t chunk = std::min(cfg_.payload, frag_len - off);
        if (chunk > 0) {
          std::memcpy(record.data() + off, rx_.slot_payload(pos + k), chunk);
        }
        off += chunk;
        rx_.slot(pos + k)->seq.store(pos + k + cfg_.depth,
                                     std::memory_order_release);
      }
      rx_head_ = pos + nslots;
      rx_.hdr->head.store(rx_head_, std::memory_order_relaxed);

      switch (flags) {
        case kWhole:
          if (stream_active_ || total_len != frag_len) {
            return PoisonLocked("sqcq whole record inconsistent");
          }
          return Delivered(std::move(record));
        case kStart:
          if (stream_active_ || total_len <= frag_len) {
            return PoisonLocked("sqcq fragment start inconsistent");
          }
          stream_active_ = true;
          stream_total_ = total_len;
          stream_ = std::move(record);
          stream_.reserve(total_len);
          continue;
        case kMid:
        case kEnd:
          if (!stream_active_ || total_len != stream_total_ ||
              stream_.size() + frag_len > stream_total_) {
            return PoisonLocked("sqcq fragment continuation inconsistent");
          }
          stream_.insert(stream_.end(), record.begin(), record.end());
          if (flags == kEnd) {
            if (stream_.size() != stream_total_) {
              return PoisonLocked("sqcq fragment stream truncated");
            }
            stream_active_ = false;
            stream_total_ = 0;
            return Delivered(std::move(stream_));
          }
          continue;
        default:
          return PoisonLocked("sqcq record role invalid");
      }
    }
  }

  Result<Bytes> Delivered(Bytes&& message) {
    transport_internal::KindMetrics& m = Metrics();
    m.msgs_received->Increment();
    m.bytes_received->Increment(message.size());
    return std::move(message);
  }

  // Arms the doorbell, then re-checks for progress (the Dekker pair with
  // DoorbellAfterPublish). Returns true — disarmed, caller must retry —
  // when a record completed or the ring closed during the race window.
  bool ArmLocked() {
    rx_.hdr->armed.store(1, std::memory_order_seq_cst);
    // Full fence before the re-check: the seq_cst store alone does not
    // order the subsequent acquire loads of slot seq after it (on ARMv8
    // RCpc an LDAPR may hoist above the STLR), and a hoisted stale read
    // paired with the producer reading armed==0 is a lost doorbell. This
    // mirrors the fence in DoorbellAfterPublish — both sides of the Dekker
    // pair need one.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (RecordReadyLocked()) {
      rx_.hdr->armed.store(0, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // With coalescing on, a producer may owe us a doorbell for up to one
  // window; never sleep much longer than that or a deferred wakeup becomes
  // a stall. Off (the default): sleep until rung.
  std::int64_t SleepCapNs() const {
    if (cfg_.coalesce_ns <= 0) {
      return -1;
    }
    return std::max<std::int64_t>(2 * cfg_.coalesce_ns, 200000);
  }

  Result<Bytes> RecvInternal(std::int64_t deadline_ns) {
    FlushDoorbell();
    std::unique_lock<std::mutex> lock(recv_mutex_);
    int fallback_spins = 0;
    for (;;) {
      auto message = PollMessageLocked();
      if (message.ok() || message.status().code() != StatusCode::kNotFound) {
        return message;
      }
      std::int64_t now = MonotonicNowNs();
      if (deadline_ns > 0 && now >= deadline_ns) {
        return DeadlineExceeded("sqcq recv timed out");
      }
      // Polling phase of the hybrid: spin briefly before paying for the
      // eventfd round trip — under load the next record lands within the
      // spin window and the doorbell stays silent.
      if (cfg_.spin_ns > 0) {
        std::int64_t spin_end = now + cfg_.spin_ns;
        if (deadline_ns > 0) {
          spin_end = std::min(spin_end, deadline_ns);
        }
        bool ready = false;
        while (!ready && MonotonicNowNs() < spin_end) {
          if (SingleCpu()) {
            std::this_thread::yield();
            ready = RecordReadyLocked();
          } else {
            for (int i = 0; i < 64 && !ready; ++i) {
              ready = RecordReadyLocked();
              CpuRelax();
            }
          }
        }
        if (ready) {
          continue;
        }
      }
      if (door_rx_ < 0) {
        // Doorbell-less fallback (eventfd creation failed): degrade to the
        // byte ring's escalating backoff poll.
        BackoffWait(&fallback_spins);
        continue;
      }
      if (ArmLocked()) {
        continue;
      }
      std::int64_t wait_ns = deadline_ns > 0 ? deadline_ns - MonotonicNowNs()
                                             : -1;
      if (deadline_ns > 0 && wait_ns <= 0) {
        // Deadline expired while spinning/arming: with coalescing off the
        // negative remainder would otherwise become poll(fd, -1) — an
        // unbounded sleep. Disarm and loop; the top-of-loop check returns
        // DeadlineExceeded (or a record that just landed).
        rx_.hdr->armed.store(0, std::memory_order_relaxed);
        continue;
      }
      const std::int64_t cap = SleepCapNs();
      if (cap > 0 && (wait_ns < 0 || wait_ns > cap)) {
        wait_ns = cap;
      }
      struct pollfd pfd = {door_rx_, POLLIN, 0};
      if (wait_ns < 0) {
        (void)::poll(&pfd, 1, -1);
      } else {
        struct timespec ts;
        ts.tv_sec = wait_ns / 1000000000;
        ts.tv_nsec = wait_ns % 1000000000;
        (void)::ppoll(&pfd, 1, &ts, nullptr);
      }
      std::uint64_t drained = 0;
      (void)!::read(door_rx_, &drained, sizeof(drained));
      rx_.hdr->armed.store(0, std::memory_order_relaxed);
    }
  }

  std::shared_ptr<Region> region_;
  SqcqRawRing tx_;
  SqcqRawRing rx_;
  const Resolved cfg_;
  std::string name_;
  std::shared_ptr<BufferArena> arena_;
  const int door_tx_;
  const int door_rx_;

  // Producer-side: fragment streams serialize here; whole records never
  // touch it. Coalescing state is endpoint-local (a deferred doorbell is
  // owed by whoever published, flushed by whoever acts next).
  std::mutex stream_mutex_;
  std::atomic<int> pending_{0};
  std::atomic<std::int64_t> first_pending_ns_{0};

  // Consumer-side, guarded by recv_mutex_.
  std::mutex recv_mutex_;
  std::uint64_t rx_head_;
  bool stream_active_ = false;
  std::uint64_t stream_total_ = 0;
  Bytes stream_;
  Status recv_error_ = OkStatus();
};

void InitRing(const SqcqRawRing& ring, std::uint64_t initial_cursor) {
  new (ring.hdr) RingHdr;
  ring.hdr->claim.store(initial_cursor, std::memory_order_relaxed);
  ring.hdr->head.store(initial_cursor, std::memory_order_relaxed);
  ring.hdr->closed.store(0, std::memory_order_relaxed);
  // Born armed: until a consumer runs its first drain (which disarms and
  // re-arms on dry), every publish rings the doorbell. An epoll consumer
  // attaches the fd and simply waits — without this, the first message
  // would race the consumer's first arm and nobody would ever be rung.
  ring.hdr->armed.store(1, std::memory_order_relaxed);
  const std::uint64_t mask = ring.depth - 1;
  for (std::uint64_t p = 0; p < ring.depth; ++p) {
    // First position >= initial_cursor that maps to physical slot p
    // (wrap-safe u64 arithmetic — the wraparound property test starts the
    // index space just below UINT64_MAX).
    std::uint64_t s = (initial_cursor & ~mask) | p;
    if (s - initial_cursor >= ring.depth) {
      s += ring.depth;
    }
    SlotHdr* slot = reinterpret_cast<SlotHdr*>(ring.slot_base + p * ring.stride);
    new (slot) SlotHdr;
    slot->seq.store(s, std::memory_order_relaxed);
    slot->frag_len = 0;
    slot->flags = 0;
    slot->reserved = 0;
    slot->total_len = 0;
  }
}

}  // namespace

Result<ChannelPair> MakeSqcqChannel(const SqcqConfig& config, SqcqRaw* raw) {
  Resolved r;
  std::size_t depth =
      config.depth != 0
          ? config.depth
          : static_cast<std::size_t>(
                std::max<std::int64_t>(EnvInt("AVA_SQCQ_DEPTH", 256), 4));
  depth = RoundUpPow2(std::max<std::size_t>(depth, 4));
  if (depth > (1u << 20)) {
    return InvalidArgument("sqcq depth too large");
  }
  std::size_t slot_bytes =
      config.slot_bytes != 0
          ? config.slot_bytes
          : static_cast<std::size_t>(
                std::max<std::int64_t>(EnvInt("AVA_SQCQ_SLOT_BYTES", 512), 64));
  slot_bytes = std::max<std::size_t>(slot_bytes, 64);
  slot_bytes = (slot_bytes + 7) & ~std::size_t{7};
  r.depth = depth;
  r.stride = slot_bytes;
  r.payload = slot_bytes - kSlotHdrBytes;
  r.wave_slots = std::max<std::size_t>(depth / 4, 1);
  r.wave_bytes = r.wave_slots * r.payload;
  r.max_message_bytes = config.max_message_bytes;
  const std::int64_t coalesce_us =
      config.coalesce_us >= 0 ? config.coalesce_us
                              : std::max<std::int64_t>(
                                    EnvInt("AVA_SQCQ_COALESCE_US", 0), 0);
  r.coalesce_ns = coalesce_us * 1000;
  r.coalesce_calls =
      config.coalesce_calls > 0
          ? config.coalesce_calls
          : static_cast<int>(std::max<std::int64_t>(
                EnvInt("AVA_SQCQ_COALESCE_CALLS", 16), 1));
  const std::int64_t spin_us =
      config.spin_us >= 0
          ? config.spin_us
          : std::min<std::int64_t>(
                std::max<std::int64_t>(EnvInt("AVA_SQCQ_SPIN_US", 60), 0),
                100000);
  r.spin_ns = spin_us * 1000;

  const std::size_t per_ring = sizeof(RingHdr) + depth * slot_bytes;
  const std::size_t total = 2 * per_ring;
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return Internal("mmap failed for sqcq ring");
  }
  auto region = std::make_shared<Region>();
  region->base = static_cast<std::uint8_t*>(base);
  region->total = total;

  auto make_view = [&](std::size_t offset) {
    SqcqRawRing ring;
    ring.hdr = reinterpret_cast<RingHdr*>(region->base + offset);
    ring.slot_base = region->base + offset + sizeof(RingHdr);
    ring.depth = static_cast<std::uint32_t>(depth);
    ring.stride = static_cast<std::uint32_t>(slot_bytes);
    ring.payload = static_cast<std::uint32_t>(r.payload);
    return ring;
  };
  SqcqRawRing g2h = make_view(0);
  SqcqRawRing h2g = make_view(per_ring);
  InitRing(g2h, config.initial_cursor);
  InitRing(h2g, config.initial_cursor);
  if (raw != nullptr) {
    raw->g2h = g2h;
    raw->h2g = h2g;
  }

  // Bulk-data arena and doorbell eventfds: same pre-fork lifecycle and
  // degradation story as MakeShmRingChannel (see shm_ring.cc).
  std::shared_ptr<BufferArena> arena;
  if (auto created = BufferArena::Create(); created.ok()) {
    arena = *std::move(created);
  }
  const int bell_g2h = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  const int bell_h2g = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  int guest_tx = -1, guest_rx = -1, host_tx = -1, host_rx = -1;
  if (bell_g2h >= 0 && bell_h2g >= 0) {
    guest_tx = bell_g2h;
    guest_rx = bell_h2g;
    host_tx = ::dup(bell_h2g);
    host_rx = ::dup(bell_g2h);
    if (host_tx < 0 || host_rx < 0) {
      if (host_tx >= 0) ::close(host_tx);
      if (host_rx >= 0) ::close(host_rx);
      ::close(bell_g2h);
      ::close(bell_h2g);
      guest_tx = guest_rx = host_tx = host_rx = -1;
    }
  } else {
    if (bell_g2h >= 0) ::close(bell_g2h);
    if (bell_h2g >= 0) ::close(bell_h2g);
  }

  ChannelPair pair;
  pair.guest = std::make_unique<SqcqEndpoint>(region, g2h, h2g, r,
                                              config.initial_cursor,
                                              "sqcq:guest", arena, guest_tx,
                                              guest_rx);
  pair.host = std::make_unique<SqcqEndpoint>(region, h2g, g2h, r,
                                             config.initial_cursor,
                                             "sqcq:host", arena, host_tx,
                                             host_rx);
  return pair;
}

}  // namespace ava
