// Submission/completion-queue shared-memory transport (DESIGN.md §15).
//
// Where the classic shm byte ring (shm_ring.cc) streams length-prefixed
// bytes through two SPSC rings — serializing every Send under a mutex and
// ringing an eventfd per message — this transport is a pair of fixed-depth
// *record* rings modeled on hardware RPC queue pairs: each direction is a
// multi-producer single-consumer array of slots claimed wait-free with
// fetch_add and published with per-slot sequence numbers, so concurrent
// senders never take a lock and the doorbell eventfd is written only when
// the consumer is actually asleep ("armed").
//
// Layout per direction (one anonymous MAP_SHARED mapping holds both):
//
//   RingHdr   { claim | head | closed+armed }   (one cache line each)
//   Slot[depth] { seq | frag_len flags total_len | payload[stride-32] }
//
// A message that fits `wave` slots travels as one contiguous record
// (kWhole); larger messages serialize on a per-endpoint streamer mutex and
// travel as fragment records (kStart/kMid/kEnd) the consumer reassembles —
// so the lock-free fast path covers every command-sized frame while 3 MiB
// bulk frames still stream through a 128 KiB ring.
//
// The consumer (router event loop via TryRecv/TryRecvBatch, guest reply
// reaper via Recv/RecvTimeout) reaps *batches*: one mutex acquisition
// drains every published record. Blocking receivers spin briefly
// (AVA_SQCQ_SPIN_US) before arming the doorbell — the polling-vs-wakeup
// hybrid — and producers may defer an armed doorbell for
// AVA_SQCQ_COALESCE_US / AVA_SQCQ_COALESCE_CALLS to batch wakeups.
#ifndef AVA_SRC_TRANSPORT_SQCQ_RING_H_
#define AVA_SRC_TRANSPORT_SQCQ_RING_H_

#include <atomic>
#include <cstdint>

#include "src/transport/transport.h"

namespace ava {

struct SqcqConfig {
  // Slots per direction; 0 = $AVA_SQCQ_DEPTH or 256. Rounded up to a power
  // of two, floor 4.
  std::size_t depth = 0;
  // Bytes per slot including the 32-byte record header; 0 =
  // $AVA_SQCQ_SLOT_BYTES or 512. Floor 64.
  std::size_t slot_bytes = 0;
  // Producer-side doorbell coalescing window; <0 = $AVA_SQCQ_COALESCE_US or
  // 0 (off). When on, a doorbell owed to an armed consumer may be deferred
  // until this many microseconds — or `coalesce_calls` publishes — have
  // accumulated, and consumers cap their sleep so a deferred doorbell is
  // still observed within ~2 windows.
  std::int64_t coalesce_us = -1;
  // Publish-count flush threshold; 0 = $AVA_SQCQ_COALESCE_CALLS or 16.
  int coalesce_calls = 0;
  // Blocking-receive spin budget before arming the doorbell eventfd; <0 =
  // $AVA_SQCQ_SPIN_US or 60.
  std::int64_t spin_us = -1;
  // Test hook: start both index spaces at this cursor (wraparound tests
  // begin near UINT64_MAX). 0 for production channels.
  std::uint64_t initial_cursor = 0;
  // Upper bound accepted for a single message (validated on the consumer
  // side too: a forged total_len beyond this poisons the ring cleanly).
  std::size_t max_message_bytes = 256u << 20;
};

namespace sqcq {

// Record roles carried in Slot flags. A record is one contiguous slot claim;
// a message is one kWhole record or a kStart (+kMid...) +kEnd sequence.
inline constexpr std::uint16_t kWhole = 0;
inline constexpr std::uint16_t kStart = 1;
inline constexpr std::uint16_t kMid = 2;
inline constexpr std::uint16_t kEnd = 3;

// Shared-memory ring header. Each contended field sits on its own cache
// line; `claim` is bumped by producers, `head` and `armed` by the consumer.
struct alignas(64) RingHdr {
  std::atomic<std::uint64_t> claim;  // next unclaimed slot position
  char pad0[56];
  std::atomic<std::uint64_t> head;   // next unconsumed slot position
  char pad1[56];
  std::atomic<std::uint32_t> closed;
  std::atomic<std::uint32_t> armed;  // 1 = consumer sleeping, ring the bell
  char pad2[56];
};
static_assert(sizeof(RingHdr) == 192);

// Per-slot record header; payload follows at byte 32. `seq` is the Vyukov
// sequence gate: == pos → free to claim, == pos+1 → published, == pos+depth
// → consumed (free for the next lap). The plain fields are written by the
// claiming producer before the release-publish of `seq` and read by the
// consumer after its acquire-load — that pair is their only ordering.
struct SlotHdr {
  std::atomic<std::uint64_t> seq;
  std::uint32_t frag_len;   // payload bytes in THIS record
  std::uint16_t flags;      // kWhole / kStart / kMid / kEnd
  std::uint16_t reserved;
  std::uint64_t total_len;  // whole-message bytes (kWhole/kStart: authoritative)
};
inline constexpr std::size_t kSlotHdrBytes = 32;
static_assert(sizeof(SlotHdr) <= kSlotHdrBytes);

}  // namespace sqcq

// Raw pointers into one live ring's shared state. Test-only: lets property
// and crash tests play a malicious or dying peer (forge cursors, claim a
// slot and never publish) without friending the implementation.
struct SqcqRawRing {
  sqcq::RingHdr* hdr = nullptr;
  std::uint8_t* slot_base = nullptr;
  std::uint32_t depth = 0;
  std::uint32_t stride = 0;   // slot_bytes
  std::uint32_t payload = 0;  // stride - kSlotHdrBytes

  sqcq::SlotHdr* slot(std::uint64_t pos) const {
    return reinterpret_cast<sqcq::SlotHdr*>(
        slot_base + (pos & (depth - 1)) * stride);
  }
  std::uint8_t* slot_payload(std::uint64_t pos) const {
    return slot_base + (pos & (depth - 1)) * stride + sqcq::kSlotHdrBytes;
  }
};

struct SqcqRaw {
  SqcqRawRing g2h;  // guest submissions (sqe ring)
  SqcqRawRing h2g;  // host completions (cqe ring)
};

// Creates a connected SQ/CQ channel pair. Like MakeShmRingChannel the
// backing pages are MAP_SHARED | MAP_ANONYMOUS and the doorbell eventfds
// are created before any fork(), so the pair stays usable across one.
// `raw`, when non-null, receives test-only views into the shared state.
Result<ChannelPair> MakeSqcqChannel(const SqcqConfig& config = {},
                                    SqcqRaw* raw = nullptr);

}  // namespace ava

#endif  // AVA_SRC_TRANSPORT_SQCQ_RING_H_
