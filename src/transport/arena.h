// BufferArena: a fixed-slot shared-memory arena for out-of-band bulk data.
//
// Serializing a multi-megabyte buffer argument into the command block costs
// two full copies plus a trip through the transport ring. When guest and API
// server already share memory (the shm-ring transport's fork-shared
// mapping), the bytes can instead be placed once into an arena slot and the
// wire frame carries only a 20-byte ArenaDesc. The arena lives in its own
// MAP_SHARED | MAP_ANONYMOUS mapping, created alongside the ring pair before
// fork(), so both processes address the same pages.
//
// Concurrency/ownership model:
//   - Slots are acquired with a CAS on a per-slot state word and stamped
//     with a generation counter; the descriptor carries that generation.
//   - The GUEST owns every slot it acquires (for in-arguments it fills them;
//     for out-arguments the server writes into them) and releases them after
//     the call's reply is consumed. The server only resolves descriptors —
//     it never acquires or releases, so a crashed or malicious peer cannot
//     corrupt the guest's allocation state.
//   - Release is generation-checked and idempotent: double release and
//     release of a recycled slot are no-ops.
//   - Resolve validates arena id, slot index, held state, generation, and
//     length, so a corrupt or forged descriptor is rejected with a clean
//     Status instead of ever dereferencing out-of-bounds memory.
//
// Exhaustion is not an error: Acquire returns false and the caller marshals
// inline (the pre-arena wire format), trading throughput for progress.
#ifndef AVA_SRC_TRANSPORT_ARENA_H_
#define AVA_SRC_TRANSPORT_ARENA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "src/common/result.h"
#include "src/proto/marshal.h"

namespace ava {

class BufferArena {
 public:
  static constexpr std::size_t kDefaultSlotBytes = 8u << 20;  // 8 MiB
  static constexpr std::uint32_t kDefaultSlotCount = 16;

  // Maps the shared region and initializes slot controls. The mapping is
  // lazily committed, so an idle arena costs virtual address space only.
  static Result<std::shared_ptr<BufferArena>> Create(
      std::size_t slot_bytes = kDefaultSlotBytes,
      std::uint32_t slot_count = kDefaultSlotCount);

  ~BufferArena();

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  // A held slot, as seen by its owner.
  struct Slot {
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
    std::uint8_t* data = nullptr;
  };

  // Acquires a free slot able to hold `bytes`. Returns false when `bytes`
  // exceeds the slot size or all slots are held (caller falls back inline).
  bool Acquire(std::size_t bytes, Slot* out);

  // Releases a held slot. Generation-checked and idempotent.
  void Release(std::uint32_t slot, std::uint32_t generation);

  // Validates `desc` against this arena and maps it to the slot's bytes.
  // InvalidArgument on any mismatch: wrong arena id, slot out of range, slot
  // not held, stale generation, or length exceeding the slot.
  Result<std::span<std::uint8_t>> Resolve(const ArenaDesc& desc);

  // Descriptor for a held slot carrying `length` valid (or expected) bytes.
  ArenaDesc DescFor(const Slot& slot, std::uint64_t length) const {
    ArenaDesc d;
    d.arena_id = id_;
    d.slot = slot.slot;
    d.length = length;
    d.generation = slot.generation;
    return d;
  }

  std::uint32_t id() const { return id_; }
  std::size_t slot_bytes() const { return slot_bytes_; }
  std::uint32_t slot_count() const { return slot_count_; }

  // Held-slot count (tests and exhaustion diagnostics; O(slot_count)).
  std::uint32_t SlotsInUse() const;

 private:
  // Per-slot control word, padded to a cache line. Lives in the shared
  // mapping so acquire/release/resolve agree across fork().
  struct SlotCtl {
    std::atomic<std::uint32_t> state;       // 0 = free, 1 = held
    std::atomic<std::uint32_t> generation;  // bumped on every acquire
    std::uint8_t pad[56];
  };
  static_assert(sizeof(SlotCtl) == 64);
  static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
                "slot controls must be lock-free to work across processes");

  BufferArena(std::uint32_t id, std::uint8_t* base, std::size_t total,
              std::size_t slot_bytes, std::uint32_t slot_count)
      : id_(id),
        base_(base),
        total_(total),
        slot_bytes_(slot_bytes),
        slot_count_(slot_count) {}

  SlotCtl* ctl(std::uint32_t slot) const {
    return reinterpret_cast<SlotCtl*>(base_) + slot;
  }
  std::uint8_t* data(std::uint32_t slot) const {
    return base_ + static_cast<std::size_t>(slot_count_) * sizeof(SlotCtl) +
           static_cast<std::size_t>(slot) * slot_bytes_;
  }

  const std::uint32_t id_;
  std::uint8_t* base_;
  const std::size_t total_;
  const std::size_t slot_bytes_;
  const std::uint32_t slot_count_;
  // Rotating start index spreads acquisition across slots (process-local;
  // purely a scan-start hint, correctness comes from the CAS).
  std::atomic<std::uint32_t> next_{0};
};

}  // namespace ava

#endif  // AVA_SRC_TRANSPORT_ARENA_H_
