// Token-bucket rate limiter used by the router to enforce per-VM
// calls-per-second and bytes-per-second policies at the transport layer
// (§4.3 "the router enforces various policies, e.g. rate limiting").
#ifndef AVA_SRC_ROUTER_RATE_LIMITER_H_
#define AVA_SRC_ROUTER_RATE_LIMITER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/common/vclock.h"

namespace ava {

class TokenBucket {
 public:
  // rate == 0 disables the limiter. Burst defaults to one second of tokens.
  explicit TokenBucket(double rate_per_sec = 0.0, double burst = 0.0)
      : rate_(rate_per_sec),
        burst_(burst > 0 ? burst : rate_per_sec),
        tokens_(burst_),
        last_refill_ns_(MonotonicNowNs()),
        enabled_(rate_per_sec > 0.0) {}

  // Re-arms the limiter. Safe to call while other threads are inside
  // Acquire/TryAcquire: the router reconfigures buckets on hot attach while
  // RX threads are already drawing from them. A thread blocked in Acquire
  // observes the new rate on its next refill check (including rate 0, which
  // releases it immediately).
  void Configure(double rate_per_sec, double burst = 0.0) {
    std::lock_guard<std::mutex> lock(mutex_);
    rate_ = rate_per_sec;
    burst_ = burst > 0 ? burst : rate_per_sec;
    tokens_ = burst_;
    last_refill_ns_ = MonotonicNowNs();
    enabled_.store(rate_per_sec > 0.0, std::memory_order_relaxed);
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Blocks the calling thread until `amount` tokens are available, then
  // consumes them. Returns the time spent waiting in nanoseconds.
  std::int64_t Acquire(double amount) {
    // Disabled is the common case on the per-call path; skip the lock. A
    // racing Configure is benign either way: the locked loop below
    // re-checks rate_ before ever consuming or waiting.
    if (!enabled_.load(std::memory_order_relaxed)) {
      return 0;
    }
    std::int64_t waited = 0;
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (rate_ <= 0.0) {
          return waited;  // limiter disabled (possibly mid-wait)
        }
        Refill();
        if (AdmissibleLocked(amount)) {
          tokens_ -= amount;
          return waited;
        }
      }
      const std::int64_t t0 = MonotonicNowNs();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      waited += MonotonicNowNs() - t0;
    }
  }

  // Returns tokens taken by a TryAcquire whose frame was not admitted after
  // all (e.g. folded back into a parked batch to preserve FIFO). Capped at
  // burst, like any refill.
  void Refund(double amount) {
    if (!enabled_.load(std::memory_order_relaxed)) {
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    tokens_ = std::min(burst_, tokens_ + amount);
  }

  // Non-blocking variant: consumes and returns true when enough tokens.
  bool TryAcquire(double amount) {
    if (!enabled_.load(std::memory_order_relaxed)) {
      return true;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (rate_ <= 0.0) {
      return true;
    }
    Refill();
    if (tokens_ >= amount) {
      tokens_ -= amount;
      return true;
    }
    return false;
  }

  // Non-blocking variant for requests that may exceed burst capacity (a
  // parked router batch that folded many frames together, or one batch
  // message carrying more calls than the per-second burst). Plain
  // TryAcquire can never satisfy `amount > burst` — the bucket cannot hold
  // that many tokens — which would starve the request forever. Once the
  // bucket is full, admit it and let the balance go negative: refills pay
  // the debt off before anything else is admitted, so the long-run rate
  // still holds; only the burst shape is exceeded for that one request.
  bool TryAcquireSaturating(double amount) {
    if (!enabled_.load(std::memory_order_relaxed)) {
      return true;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (rate_ <= 0.0) {
      return true;
    }
    Refill();
    if (AdmissibleLocked(amount)) {
      tokens_ -= amount;
      return true;
    }
    return false;
  }

 private:
  // Enough tokens, or an oversized request facing a full bucket (which is
  // as ready as the bucket can ever be — admit in debt, see
  // TryAcquireSaturating). Blocking Acquire uses the same rule so an
  // oversized amount waits for saturation instead of spinning forever.
  bool AdmissibleLocked(double amount) const {
    return tokens_ >= amount || (amount > burst_ && tokens_ >= burst_);
  }

  void Refill() {
    const std::int64_t now = MonotonicNowNs();
    const double elapsed_s = static_cast<double>(now - last_refill_ns_) * 1e-9;
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
    last_refill_ns_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  std::int64_t last_refill_ns_;
  // Lock-free mirror of `rate_ > 0` so disabled buckets cost one relaxed
  // load per call instead of a mutex round trip.
  std::atomic<bool> enabled_;
  mutable std::mutex mutex_;
};

}  // namespace ava

#endif  // AVA_SRC_ROUTER_RATE_LIMITER_H_
