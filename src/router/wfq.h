// Deficit-weighted fair queueing over virtual device time (vns) — the
// router's tenant scheduler, replacing the original ad-hoc vruntime scan.
//
// The paper's interposition claim (§4.3) is that the virtual-device boundary
// lets the hypervisor "rate-limit, schedule, and account" guest work. This
// module is the schedule part, as a self-contained core:
//
//   - Deficit round robin over a tenant ring: each time the service cursor
//     reaches a tenant its deficit is refilled by quantum × weight, capped
//     at one quantum × weight — a tenant that idles banks *nothing*, so an
//     idle-then-bursty VM can claim at most one deficit round of credit.
//   - Post-paid charging: device cost is known only after execution (the
//     reply carries the server-accounted vns), so a tenant may overdraw its
//     deficit by at most one call; the overdraft carries forward and is
//     repaid out of future refills. CAvA cost hints (CallHeader::cost_hint)
//     let the router pre-charge an estimate at dispatch to shrink the
//     overdraft window.
//   - A normalized-vruntime window veto for closed-loop guests: a tenant
//     whose vruntime/weight is more than a window ahead of the slowest
//     *active* contender is held even when it has work, which makes weights
//     bind for request-reply guests whose queue is momentarily empty while
//     they wait on completions (the deficit ring alone cannot see them).
//   - Device-time allotment pacing (VmPolicy::device_vns_per_sec): charged
//     cost accrues as debt that drains at the allotted rate; a tenant with
//     positive debt is ineligible.
//
// Everything time-dependent goes through a SchedClock, so the deterministic
// simulator in tests/sched_sim_test.cc can drive thousands of virtual
// tenants through this exact code with zero real threads. The class is NOT
// internally synchronized: the router calls it under its own mutex, the
// simulator from one thread.
#ifndef AVA_SRC_ROUTER_WFQ_H_
#define AVA_SRC_ROUTER_WFQ_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/common/vclock.h"

namespace ava {

// Time source for the scheduler. The router injects the monotonic clock;
// the simulator injects a hand-advanced fake.
class SchedClock {
 public:
  virtual ~SchedClock() = default;
  virtual std::int64_t NowNs() const = 0;
};

class MonotonicSchedClock final : public SchedClock {
 public:
  std::int64_t NowNs() const override { return MonotonicNowNs(); }
};

struct WfqOptions {
  // Service a tenant may accumulate per ring visit (and the cap on banked
  // credit). Roughly a few small calls or a fraction of one large kernel.
  double quantum_vns = 50000.0;
  // Normalized-vruntime slack before a tenant must wait for active
  // contenders (the closed-loop weight-enforcement window).
  double window_vns = 250000.0;
  // How recently a tenant must have been charged/touched to count as an
  // active contender for the window veto and for vruntime re-join snapping.
  std::int64_t active_window_ns = 50000000;  // 50 ms
};

class WfqScheduler {
 public:
  explicit WfqScheduler(const SchedClock* clock, WfqOptions options = {});

  // Registers a tenant. Its vruntime joins at the current active minimum so
  // a newcomer neither starves others nor forfeits its share. weight <= 0 is
  // clamped to a tiny positive share. allot_vns_per_sec 0 = unlimited.
  void AddTenant(std::uint64_t id, double weight, double allot_vns_per_sec);
  void RemoveTenant(std::uint64_t id);
  bool HasTenant(std::uint64_t id) const;
  std::size_t tenant_count() const { return tenants_.size(); }

  // Declares whether the tenant has dispatchable work *and* capacity right
  // now (the router folds queue, pause, death and parallelism into this).
  // Going not-runnable forfeits any banked positive deficit — the classic
  // DRR "queue empty resets the deficit counter" rule; overdraft persists.
  // Coming back after an idle gap re-joins at the active vruntime floor.
  void SetRunnable(std::uint64_t id, bool runnable);

  // Records scheduling-relevant activity (enqueue/dispatch) for the recency
  // window without charging cost.
  void TouchActivity(std::uint64_t id);

  // Picks the tenant to serve next, honoring ring order, deficits, the
  // window veto, and allotment pacing. Returns false when nothing may
  // dispatch right now. Does not consume anything: callers report the
  // dispatch back via Charge() (hint) and/or the completion charge.
  bool PickNext(std::uint64_t* out_id);

  // Charges `cost_vns` of device time: vruntime and allotment debt grow,
  // the deficit shrinks. Negative cost is the reconciliation path (the
  // pre-charged hint exceeded the server-accounted cost). Unknown ids are
  // ignored (the tenant died with calls in flight).
  void Charge(std::uint64_t id, std::int64_t cost_vns);

  // True when the last PickNext() held back at least one runnable tenant on
  // pacing or the window veto: eligibility then changes with wall time, so
  // idle workers must poll rather than sleep indefinitely.
  bool throttle_pending() const { return throttle_pending_; }

  // Introspection (admin `sessions` table, tests).
  double WeightOf(std::uint64_t id) const;
  double DeficitOf(std::uint64_t id) const;
  double VruntimeOf(std::uint64_t id) const;

 private:
  struct Tenant {
    double weight = 1.0;
    double allot_per_sec = 0.0;
    double deficit = 0.0;
    double vruntime = 0.0;   // cumulative charged vns
    double vns_debt = 0.0;   // allotment pacing debt
    std::int64_t debt_decay_ns = 0;
    std::int64_t last_activity_ns = 0;
    bool runnable = false;
  };

  Tenant* Find(std::uint64_t id);
  const Tenant* Find(std::uint64_t id) const;
  // Drains allotment debt at the configured rate up to `now`.
  void DecayDebt(Tenant* t, std::int64_t now) const;
  // Smallest vruntime/weight among tenants active within the recency
  // window and not held by pacing. Returns false when no one is active.
  bool MinActiveKey(std::int64_t now, const Tenant* skip, double* key) const;

  const SchedClock* clock_;
  WfqOptions options_;
  std::unordered_map<std::uint64_t, Tenant> tenants_;
  // Service rotation. Ids are appended at AddTenant and erased at
  // RemoveTenant; cursor_ indexes the tenant currently holding the turn.
  std::vector<std::uint64_t> ring_;
  std::size_t cursor_ = 0;
  bool throttle_pending_ = false;
};

// Resolves a VM's scheduler weight: `requested` when positive, else
// AVA_VM_WEIGHT when set and well-formed (0 < w <= 1e6), else 1.0.
double ResolveVmWeight(double requested);

// Resolves a VM's bounded ingress-queue depth (admission control):
// `requested` when positive, else AVA_ROUTER_QUEUE_DEPTH when set and
// well-formed (1..1048576), else kDefaultQueueDepth.
inline constexpr std::size_t kDefaultQueueDepth = 4096;
std::size_t ResolveQueueDepth(std::size_t requested);

// Jain's fairness index over per-tenant (weight-normalized) service shares:
// (Σx)² / (n·Σx²). 1.0 = perfectly fair, 1/n = one tenant took everything.
// Empty or all-zero input yields 1.0 (nothing was unfairly divided).
double JainIndex(const std::vector<double>& shares);

// Per-tenant FIFO execution lanes with a bounded total queue — the intra-VM
// half of the scheduler (WFQ picks the VM, lanes order work within it).
// Extracted from the router so the deterministic simulator runs the same
// bookkeeping the live router runs. Semantics (unchanged from PR 5):
//   - items with one lane key stay strictly FIFO, at most one in flight
//     (`busy`); distinct lanes may overlap
//   - a lane exists only while it holds or executes work
//   - Push beyond `capacity` total queued items is refused (admission
//     control; 0 = unbounded)
// Not internally synchronized (router's mutex / simulator's single thread).
template <typename Item>
class LaneSet {
 public:
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t capacity() const { return capacity_; }

  // False when the set is full — the caller rejects the item.
  bool Push(std::uint64_t lane_key, Item item) {
    if (capacity_ != 0 && queued_ >= capacity_) {
      return false;
    }
    Lane& lane = lanes_[lane_key];
    lane.queue.push_back(std::move(item));
    ++queued_;
    if (!lane.busy && lane.queue.size() == 1) {
      ready_.push_back(lane_key);
    }
    return true;
  }

  bool HasReady() const { return !ready_.empty(); }

  // True when the next Push would be refused. Callers that need the item
  // intact on rejection (to build an error reply) test this first.
  bool Full() const { return capacity_ != 0 && queued_ >= capacity_; }

  // Pops the front item of the front ready lane and marks that lane busy.
  // False when nothing is ready.
  bool PopReady(std::uint64_t* lane_key, Item* item) {
    if (ready_.empty()) {
      return false;
    }
    *lane_key = ready_.front();
    ready_.pop_front();
    Lane& lane = lanes_.find(*lane_key)->second;
    lane.busy = true;
    *item = std::move(lane.queue.front());
    lane.queue.pop_front();
    --queued_;
    return true;
  }

  // Completion: un-busies the lane, re-readies it if it still holds work,
  // erases it otherwise.
  void FinishLane(std::uint64_t lane_key) {
    auto it = lanes_.find(lane_key);
    if (it == lanes_.end()) {
      return;
    }
    it->second.busy = false;
    if (it->second.queue.empty()) {
      lanes_.erase(it);
    } else {
      ready_.push_back(lane_key);
    }
  }

  std::size_t queued() const { return queued_; }
  std::size_t lanes() const { return lanes_.size(); }
  std::size_t ready() const { return ready_.size(); }
  std::size_t LaneDepth(std::uint64_t lane_key) const {
    auto it = lanes_.find(lane_key);
    return it == lanes_.end() ? 0 : it->second.queue.size();
  }

 private:
  struct Lane {
    std::deque<Item> queue;
    bool busy = false;
  };

  std::unordered_map<std::uint64_t, Lane> lanes_;
  std::deque<std::uint64_t> ready_;
  std::size_t queued_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace ava

#endif  // AVA_SRC_ROUTER_WFQ_H_
