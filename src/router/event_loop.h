// Thin epoll wrapper behind the router's event-driven front end: one loop
// thread multiplexes every readiness-capable guest transport (sockets, shm
// doorbells), replacing the thread-per-VM blocking readers that capped the
// router at a handful of sessions. Transports without a readiness fd
// (inproc, fault-injection wrappers) keep the legacy blocking reader.
//
// Level-triggered: the router drains each ready transport via TryRecv until
// NotFound, so a wakeup can never be lost between drain and re-arm. Wake()
// (an eventfd) interrupts Wait() for control-plane work (stop, park retry).
//
// Thread-safety: Add/Mod/Remove/Wake may be called from any thread
// (epoll_ctl and eventfd writes are kernel-serialized); Wait() is owned by
// the single loop thread.
#ifndef AVA_SRC_ROUTER_EVENT_LOOP_H_
#define AVA_SRC_ROUTER_EVENT_LOOP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/result.h"

namespace ava {

class EventLoop {
 public:
  struct Event {
    std::uint64_t token = 0;
    bool readable = false;
    bool hangup = false;  // EPOLLHUP/EPOLLERR: peer side is gone
  };

  static Result<std::unique_ptr<EventLoop>> Create();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` for read readiness, delivering `token` with its events.
  Status Add(int fd, std::uint64_t token);
  // Re-arms or parks an fd: want_read=false leaves it registered but mute
  // (ingress backpressure while a rate-limited frame waits for tokens).
  Status Mod(int fd, std::uint64_t token, bool want_read);
  void Remove(int fd);

  // Interrupts a concurrent Wait(). Coalesced; consumed internally (no
  // Event is surfaced for it).
  void Wake();

  // Blocks up to timeout_ms (-1 = until an event or Wake) and returns the
  // ready set. The returned reference is invalidated by the next Wait.
  const std::vector<Event>& Wait(int timeout_ms);

 private:
  EventLoop(int epoll_fd, int wake_fd);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::vector<Event> out_;
};

}  // namespace ava

#endif  // AVA_SRC_ROUTER_EVENT_LOOP_H_
