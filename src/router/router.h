// The AvA invocation router: the hypervisor-resident interposition point
// (Figure 3). Every forwarded API call crosses it, which is what restores
// the interposition API remoting classically gives up (§2, §4.3).
//
// Responsibilities:
//   - verification: parse and sanity-check every command block; reject
//     messages whose vm_id does not match the attached channel
//   - policy: per-VM token-bucket rate limiting (calls/s, bytes/s)
//   - admission: bounded per-VM ingress queues; work beyond the bound is
//     rejected with ResourceExhausted instead of queued without limit
//   - scheduling: deficit-weighted fair queueing over virtual device time
//     (src/router/wfq.h) — WFQ picks the VM, lanes order work within it
//   - accounting: per-VM forwarded calls, bytes, waits, and device cost
//
// Threads: ingest is event-driven — a single epoll loop thread
// (src/router/event_loop.h) multiplexes every readiness-capable guest
// transport (sockets, shm doorbell rings), so a thousand attached sessions
// cost one thread, not a thousand. Transports without a readiness fd
// (inproc, fault-injection wrappers) keep a dedicated blocking reader
// thread. A shared pool of executor workers dispatches verified calls onto
// ApiServerSessions.
//
// Within a VM, calls are partitioned into per-object execution lanes keyed
// by the call's lane key (the wire id of the object it operates on, stamped
// by the generated guest stub). Calls in one lane stay strictly FIFO with at
// most one in flight — API ordering per object is preserved — while calls in
// distinct lanes may run concurrently, bounded by the VM's resolved
// parallelism (VmPolicy::max_parallelism / AVA_VM_PARALLELISM). At
// parallelism 1 every call shares a single lane, restoring the historical
// strictly-serial per-VM ordering exactly.
#ifndef AVA_SRC_ROUTER_ROUTER_H_
#define AVA_SRC_ROUTER_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/obs/admin.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/proto/wire.h"
#include "src/router/event_loop.h"
#include "src/router/rate_limiter.h"
#include "src/router/wfq.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"

namespace ava {

// Resolves a VM's intra-VM parallelism bound: `requested` when positive,
// else AVA_VM_PARALLELISM when set and well-formed, else hardware threads
// divided by the number of attached VMs (floor 1). Exposed for tests.
int ResolveVmParallelism(int requested, std::size_t vm_count);

// Per-VM resource policy, from the spec's resource-usage configuration.
struct VmPolicy {
  // Scheduler share under backlog (deficit-weighted fair queueing). 0 = auto:
  // AVA_VM_WEIGHT when set and well-formed, else 1.0.
  double weight = 0.0;
  double calls_per_sec = 0.0;   // 0 = unlimited
  double bytes_per_sec = 0.0;   // 0 = unlimited
  // Device-time allotment (§4.3 "how much of each specified API resource
  // (e.g., device time) each VM is allotted"): the VM's calls may consume at
  // most this much modeled device time per wall second; dispatch of further
  // calls is delayed once the allotment is exhausted. 0 = unlimited.
  double device_vns_per_sec = 0.0;
  std::size_t max_message_bytes = 256u << 20;
  // Admission bound: total verified calls queued for this VM at once.
  // Ingress beyond the bound is rejected with ResourceExhausted. 0 = auto:
  // AVA_ROUTER_QUEUE_DEPTH when set, else kDefaultQueueDepth.
  std::size_t queue_depth = 0;
  // Upper bound on this VM's concurrently executing calls (its distinct
  // execution lanes in flight at once). 0 = auto: AVA_VM_PARALLELISM when
  // set, else hardware threads / attached VM count (floor 1). Resolved once
  // at attach time. 1 restores the classic one-call-in-flight-per-VM model.
  int max_parallelism = 0;
};

class Router {
 public:
  // Thin view composed from the channel's obs::MetricRegistry cells
  // (router.vm<id>.*); kept for existing callers.
  struct VmStats {
    std::uint64_t calls_forwarded = 0;
    std::uint64_t calls_rejected = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t bytes_received = 0;
    std::int64_t rate_limit_wait_ns = 0;
    std::int64_t cost_vns = 0;  // device cost charged to this VM
  };

  Router();
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Attaches a VM: the host end of its transport and its API-server session.
  // Must be called before Start() or while running (hot attach).
  Status AttachVm(VmId vm_id, TransportPtr transport,
                  std::shared_ptr<ApiServerSession> session,
                  const VmPolicy& policy = VmPolicy());

  void Start();
  void Stop();

  // Drains the VM's in-flight calls and stops dispatching further ones
  // (migration suspend). Queued calls stay queued.
  Status PauseVm(VmId vm_id);
  Status ResumeVm(VmId vm_id);

  // Stop-and-copy freeze: waits until the VM has no queued AND no in-flight
  // calls, then pauses it in the same critical section — so the instant this
  // returns OK the VM's object state is quiescent and stays that way until
  // ResumeVm (abort) or DetachVm (cutover). Unlike PauseVm, queued calls are
  // allowed to finish first; a guest that keeps submitting can hold the
  // queue non-empty, so the wait is bounded by `timeout_ms` (<= 0 waits
  // forever) and expiry returns DeadlineExceeded with the VM left running.
  Status QuiesceVm(VmId vm_id, std::int64_t timeout_ms);

  // Cutover: force-detaches a VM whose guest has been re-pointed at another
  // server — marks the channel dead (closing its transport) and reaps it.
  // The session shared_ptr stays valid for callers that still hold it.
  Status DetachVm(VmId vm_id);

  Result<VmStats> StatsFor(VmId vm_id) const;

  // The parallelism bound resolved for this VM at attach time.
  Result<int> ParallelismFor(VmId vm_id) const;

  // Detaches every dead VM (peer transport gone, work drained): joins its
  // RX thread (if any) and frees its channel. Returns how many were removed.
  // Dead channels are also replaced transparently when AttachVm() reuses the
  // id.
  std::size_t ReapDeadVms();

  // Total sessions this router has marked dead (monotone; survives reaping).
  std::uint64_t sessions_reaped() const { return sessions_reaped_->Value(); }

  // ---- live introspection plane ----
  // Per-VM accounting ledger fed on every call completion (cumulative +
  // EWMA device-time/bytes; the fair scheduler's input signal).
  obs::AccountingLedger& ledger() { return ledger_; }
  // Binds this router (latest-wins) behind the admin channel's `sessions`
  // and `account` commands. Start() does this automatically against
  // AdminChannel::Default(); tests may register a private channel.
  void RegisterAdmin(obs::AdminChannel* admin);
  // The `sessions` table: one row per attached VM with scheduler state,
  // lane/queue depths, circuit-breaker and transfer-cache residency, and the
  // WFQ weight/deficit columns.
  std::string SessionsText() const;

 private:
  // One verified, rate-limited message awaiting dispatch, with the hop
  // timestamp the router observed at receive time (per-call tracing).
  struct PendingCall {
    Bytes message;
    std::int64_t rx_ns = 0;
  };

  // Per-VM accounting cells, registered as router.vm<id>.* in the default
  // MetricRegistry. StatsFor() composes them into a VmStats.
  struct VmMetrics {
    std::shared_ptr<obs::Counter> calls_forwarded;
    std::shared_ptr<obs::Counter> calls_rejected;
    std::shared_ptr<obs::Counter> messages_received;
    std::shared_ptr<obs::Counter> bytes_received;
    std::shared_ptr<obs::Counter> rate_limit_wait_ns;
    std::shared_ptr<obs::Counter> cost_vns;
  };

  // The dispatch units one verified frame expands to, plus its token-bucket
  // charges. Produced by VerifyFrame, consumed by the two ingest paths.
  struct IngestBatch {
    std::vector<std::pair<Bytes, std::uint64_t>> units;  // (frame, lane key)
    double call_count = 1.0;
    double charge_bytes = 0.0;
    std::int64_t rx_ns = 0;
  };

  struct VmChannel {
    VmId vm_id = 0;
    TransportPtr transport;
    std::shared_ptr<ApiServerSession> session;
    VmPolicy policy;
    double weight = 1.0;          // resolved at attach (ResolveVmWeight)
    int max_parallelism = 1;      // resolved at attach
    TokenBucket call_bucket;
    TokenBucket byte_bucket;
    VmMetrics metrics;
    // Ledger account, cached at attach so the completion path never
    // re-resolves by id (relaxed-atomic updates only).
    std::shared_ptr<obs::VmAccount> account;

    // Verified calls awaiting dispatch, partitioned into per-object FIFO
    // lanes with a bounded total depth (admission control).
    LaneSet<PendingCall> ingress;
    int in_flight = 0;  // executing now, bounded by parallelism
    bool paused = false;
    bool rx_done = false;
    // Set when the session is finished (transport closed and work drained,
    // or a reply send failed). A dead channel schedules nothing.
    bool dead = false;

    // True when this channel's ingest is driven by the shared event loop
    // (transport has a readiness fd); false = dedicated blocking RX thread.
    bool on_loop = false;
    std::thread rx_thread;

    // A frame that verified but could not take its rate-limit tokens
    // without blocking. Owned by the loop thread exclusively: the channel's
    // fd is parked (epoll-muted) while this is set, and only the loop
    // thread parks/unparks.
    std::unique_ptr<IngestBatch> parked;
    bool parked_call_paid = false;   // call bucket already satisfied
    std::int64_t park_start_ns = 0;  // for rate_limit_wait accounting
  };

  // ---- ingest (loop thread or per-VM RX thread) ----
  void RxLoop(VmChannel* channel);
  void LoopMain();
  // Verifies one frame (CRC, size, vm id, parse) and expands it into
  // dispatch units. False when the frame was consumed here (rejected or
  // dropped); metrics and error replies are already handled.
  bool VerifyFrame(VmChannel* channel, Bytes message, IngestBatch* out);
  // Enqueues a verified batch under mutex_: admission control, lane
  // bookkeeping, scheduler runnable/activity updates, worker wakeup.
  void EnqueueBatch(VmChannel* channel, IngestBatch* batch,
                    std::int64_t waited_ns);
  // Drains `channel`'s transport via TryRecv until dry, parked, or the
  // per-visit frame cap. Returns true when more frames may be pending
  // (revisit without waiting).
  bool DrainChannel(const std::shared_ptr<VmChannel>& channel);
  // Parks a verified-but-unpaid frame on its channel and mutes the fd until
  // RetryParked() wins the tokens. Loop thread only.
  void ParkChannel(VmChannel* channel, IngestBatch batch, bool call_paid);
  // Retries the rate-limit tokens of every parked channel; unparks (re-arms
  // epoll) on success and pushes the unparked vm onto `work` — the park may
  // have cut a drain short with frames still on the ring and the doorbell
  // disarmed, so only a forced drain pass guarantees they are ever reaped.
  // Loop thread only.
  void RetryParked(std::deque<VmId>* work);
  // Starts ingest for a channel: event-loop registration when the transport
  // exposes a readiness fd, else a blocking RX thread. Caller holds mutex_.
  void StartIngestLocked(VmChannel* channel);
  // Lazily creates the event loop + its thread. False if epoll setup failed
  // (callers fall back to an RX thread). Caller holds mutex_.
  bool EnsureLoopLocked();

  // ---- dispatch (worker pool) ----
  void WorkerLoop();
  // Pops one call from `channel`'s front ready lane and executes it,
  // dropping `lock` around the session call and reply send. Caller holds
  // `lock`; it is held again on return.
  void DispatchOne(VmChannel* channel, std::unique_lock<std::mutex>& lock);
  // Spawns workers until the pool matches current demand. Caller holds
  // mutex_; only grows, never shrinks (Stop() joins everything).
  void EnsureWorkersLocked();
  // Recomputes the channel's WFQ runnable bit from queue/pause/death/
  // parallelism state. Caller holds mutex_.
  void UpdateRunnableLocked(VmChannel* channel);
  // Marks the channel dead when its transport is done and all work has
  // drained. Caller holds mutex_.
  void MaybeMarkDeadLocked(VmChannel* channel);
  // Marks a channel dead, deregisters it from the scheduler and event loop,
  // and closes its transport. Caller holds mutex_.
  void MarkDeadLocked(VmChannel* channel);
  // Sends an error reply for a rejected synchronous call.
  void RejectCall(VmChannel* channel, const CallHeader& header,
                  StatusCode code);
  // Admission reject for one queued-beyond-bound unit (may be a whole async
  // batch frame). Counts, ledgers, flight-records; returns the error reply
  // to send (sync calls only) so the caller can send it outside mutex_.
  Bytes RejectUnitLocked(VmChannel* channel, const Bytes& unit);

  mutable std::mutex mutex_;
  // Workers sleep on sched_cv_; control-plane waiters (PauseVm's drain)
  // sleep on drain_cv_. Keeping them apart lets the hot enqueue/complete
  // paths wake a single worker without racing a drain waiter for the signal.
  std::condition_variable sched_cv_;
  std::condition_variable drain_cv_;
  // True while one worker holds the timed-poll duty for time-gated WFQ
  // eligibility (allotment pacing, vruntime window veto). Everyone else
  // blocks until signaled — a thousand idle sessions must not cost a
  // worker-pool's worth of 200us wakeups. Guarded by mutex_.
  bool sched_poller_active_ = false;
  // shared_ptr: the loop thread pins a channel while draining its transport
  // outside mutex_, so a concurrent reap can never free it mid-drain.
  std::unordered_map<VmId, std::shared_ptr<VmChannel>> channels_;
  std::vector<std::thread> workers_;
  bool running_ = false;
  bool stopping_ = false;

  // ---- event-driven front end ----
  std::unique_ptr<EventLoop> loop_;  // created lazily, guarded by mutex_
  std::thread loop_thread_;
  bool loop_stop_ = false;  // guarded by mutex_
  // Channels currently parked on rate limits. Loop thread only.
  std::vector<VmId> parked_vms_;

  // ---- scheduling ----
  MonotonicSchedClock sched_clock_;
  // Deficit-weighted fair queue over virtual device time. Guarded by mutex_.
  WfqScheduler wfq_;

  // Per-hop latency distributions (ns), shared across this router's VMs.
  std::shared_ptr<obs::Histogram> queue_wait_ns_;   // RX -> dispatch
  std::shared_ptr<obs::Histogram> exec_ns_;         // dispatch -> reply built
  std::shared_ptr<obs::Histogram> rate_wait_ns_;    // token-bucket stalls
  // Lane occupancy: calls executing concurrently right now (all VMs), and
  // the per-lane queue depth observed at each enqueue.
  std::shared_ptr<obs::Gauge> lanes_active_;
  std::shared_ptr<obs::Histogram> lane_queue_depth_;
  // Failure-handling counters.
  std::shared_ptr<obs::Counter> sessions_reaped_;
  std::shared_ptr<obs::Counter> crc_rejected_;
  // Admission-control rejects (per-VM ingress queue full).
  std::shared_ptr<obs::Counter> overload_rejected_;
  // Bulk bytes that moved out-of-band through the buffer arena (accounted
  // against the per-VM byte budget alongside on-wire bytes).
  std::shared_ptr<obs::Counter> arena_bytes_;
  // Bulk bytes elided by transfer-cache hits: the server already held the
  // payload, so nothing moved. Observed but never charged against the
  // per-VM byte budget — that is the point of the cache.
  std::shared_ptr<obs::Counter> cached_bytes_;
  // Per-VM accounting ledger (see ledger()).
  obs::AccountingLedger ledger_;
};

}  // namespace ava

#endif  // AVA_SRC_ROUTER_ROUTER_H_
