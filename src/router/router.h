// The AvA invocation router: the hypervisor-resident interposition point
// (Figure 3). Every forwarded API call crosses it, which is what restores
// the interposition API remoting classically gives up (§2, §4.3).
//
// Responsibilities:
//   - verification: parse and sanity-check every command block; reject
//     messages whose vm_id does not match the attached channel
//   - policy: per-VM token-bucket rate limiting (calls/s, bytes/s)
//   - scheduling: weighted fair queuing over reported device cost — the VM
//     with the smallest weighted virtual runtime runs next
//   - accounting: per-VM forwarded calls, bytes, waits, and device cost
//
// Threads: one RX thread per VM (receive + verify + rate-limit), one
// executor thread per VM (run the call on the VM's ApiServerSession, reply),
// and one scheduler thread arbitrating which VM's pending call dispatches
// next. Per-VM calls stay strictly FIFO with one call in flight, preserving
// API ordering semantics.
#ifndef AVA_SRC_ROUTER_ROUTER_H_
#define AVA_SRC_ROUTER_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/common/result.h"
#include "src/obs/metrics.h"
#include "src/proto/wire.h"
#include "src/router/rate_limiter.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"

namespace ava {

// Per-VM resource policy, from the spec's resource-usage configuration.
struct VmPolicy {
  double weight = 1.0;          // share under backlog (weighted fair queuing)
  double calls_per_sec = 0.0;   // 0 = unlimited
  double bytes_per_sec = 0.0;   // 0 = unlimited
  // Device-time allotment (§4.3 "how much of each specified API resource
  // (e.g., device time) each VM is allotted"): the VM's calls may consume at
  // most this much modeled device time per wall second; dispatch of further
  // calls is delayed once the allotment is exhausted. 0 = unlimited.
  double device_vns_per_sec = 0.0;
  std::size_t max_message_bytes = 256u << 20;
};

class Router {
 public:
  // Thin view composed from the channel's obs::MetricRegistry cells
  // (router.vm<id>.*); kept for existing callers.
  struct VmStats {
    std::uint64_t calls_forwarded = 0;
    std::uint64_t calls_rejected = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t bytes_received = 0;
    std::int64_t rate_limit_wait_ns = 0;
    std::int64_t cost_vns = 0;  // device cost charged to this VM
  };

  Router();
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Attaches a VM: the host end of its transport and its API-server session.
  // Must be called before Start() or while running (hot attach).
  Status AttachVm(VmId vm_id, TransportPtr transport,
                  std::shared_ptr<ApiServerSession> session,
                  const VmPolicy& policy = VmPolicy());

  void Start();
  void Stop();

  // Drains the VM's in-flight call and stops dispatching further ones
  // (migration suspend). Queued calls stay queued.
  Status PauseVm(VmId vm_id);
  Status ResumeVm(VmId vm_id);

  Result<VmStats> StatsFor(VmId vm_id) const;

  // Detaches every dead VM (peer transport gone, work drained): joins its
  // threads and frees its channel. Returns how many were removed. Dead
  // channels are also replaced transparently when AttachVm() reuses the id.
  std::size_t ReapDeadVms();

  // Total sessions this router has marked dead (monotone; survives reaping).
  std::uint64_t sessions_reaped() const { return sessions_reaped_->Value(); }

 private:
  // One verified, rate-limited message awaiting dispatch, with the hop
  // timestamp the router observed at receive time (per-call tracing).
  struct PendingCall {
    Bytes message;
    std::int64_t rx_ns = 0;
  };

  // Per-VM accounting cells, registered as router.vm<id>.* in the default
  // MetricRegistry. StatsFor() composes them into a VmStats.
  struct VmMetrics {
    std::shared_ptr<obs::Counter> calls_forwarded;
    std::shared_ptr<obs::Counter> calls_rejected;
    std::shared_ptr<obs::Counter> messages_received;
    std::shared_ptr<obs::Counter> bytes_received;
    std::shared_ptr<obs::Counter> rate_limit_wait_ns;
    std::shared_ptr<obs::Counter> cost_vns;
  };

  struct VmChannel {
    VmId vm_id = 0;
    TransportPtr transport;
    std::shared_ptr<ApiServerSession> session;
    VmPolicy policy;
    TokenBucket call_bucket;
    TokenBucket byte_bucket;
    VmMetrics metrics;

    std::deque<PendingCall> pending;  // verified, awaiting dispatch
    bool in_flight = false;
    bool paused = false;
    bool rx_done = false;
    // Set by the executor when the session is finished (transport closed and
    // work drained, or a reply send failed). A dead channel schedules
    // nothing; its threads have exited or are exiting.
    bool dead = false;
    double vruntime = 0.0;
    // Device-time debt for the allotment pacer: completed calls add their
    // cost; the debt drains at policy.device_vns_per_sec. A VM with positive
    // debt is ineligible to dispatch.
    double vns_debt = 0.0;
    std::int64_t debt_decay_ns = 0;
    std::int64_t last_activity_ns = 0;  // last enqueue or completion

    std::thread rx_thread;
    std::thread exec_thread;
  };

  void RxLoop(VmChannel* channel);
  void ExecLoop(VmChannel* channel);
  // Marks a channel dead and closes its transport. Caller holds mutex_.
  void MarkDeadLocked(VmChannel* channel);
  // True when `channel` holds the minimum weighted vruntime among VMs with
  // pending work (the WFQ dispatch condition). Caller holds mutex_.
  bool EligibleLocked(VmChannel* channel);
  // Sends an error reply for a rejected synchronous call.
  void RejectCall(VmChannel* channel, const CallHeader& header,
                  StatusCode code);

  mutable std::mutex mutex_;
  std::condition_variable sched_cv_;
  std::unordered_map<VmId, std::unique_ptr<VmChannel>> channels_;
  bool running_ = false;
  bool stopping_ = false;

  // Per-hop latency distributions (ns), shared across this router's VMs.
  std::shared_ptr<obs::Histogram> queue_wait_ns_;   // RX -> dispatch
  std::shared_ptr<obs::Histogram> exec_ns_;         // dispatch -> reply built
  std::shared_ptr<obs::Histogram> rate_wait_ns_;    // token-bucket stalls
  // Failure-handling counters.
  std::shared_ptr<obs::Counter> sessions_reaped_;
  std::shared_ptr<obs::Counter> crc_rejected_;
  // Bulk bytes that moved out-of-band through the buffer arena (accounted
  // against the per-VM byte budget alongside on-wire bytes).
  std::shared_ptr<obs::Counter> arena_bytes_;
  // Bulk bytes elided by transfer-cache hits: the server already held the
  // payload, so nothing moved. Observed but never charged against the
  // per-VM byte budget — that is the point of the cache.
  std::shared_ptr<obs::Counter> cached_bytes_;
};

}  // namespace ava

#endif  // AVA_SRC_ROUTER_ROUTER_H_
