// The AvA invocation router: the hypervisor-resident interposition point
// (Figure 3). Every forwarded API call crosses it, which is what restores
// the interposition API remoting classically gives up (§2, §4.3).
//
// Responsibilities:
//   - verification: parse and sanity-check every command block; reject
//     messages whose vm_id does not match the attached channel
//   - policy: per-VM token-bucket rate limiting (calls/s, bytes/s)
//   - scheduling: weighted fair queuing over reported device cost — the VM
//     with the smallest weighted virtual runtime runs next
//   - accounting: per-VM forwarded calls, bytes, waits, and device cost
//
// Threads: one RX thread per VM (receive + verify + rate-limit) and a shared
// pool of executor workers that dispatch calls onto ApiServerSessions.
// Within a VM, calls are partitioned into per-object execution lanes keyed
// by the call's lane key (the wire id of the object it operates on, stamped
// by the generated guest stub). Calls in one lane stay strictly FIFO with at
// most one in flight — API ordering per object is preserved — while calls in
// distinct lanes may run concurrently, bounded by the VM's resolved
// parallelism (VmPolicy::max_parallelism / AVA_VM_PARALLELISM). At
// parallelism 1 every call shares a single lane, restoring the historical
// strictly-serial per-VM ordering exactly.
#ifndef AVA_SRC_ROUTER_ROUTER_H_
#define AVA_SRC_ROUTER_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/obs/admin.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/proto/wire.h"
#include "src/router/rate_limiter.h"
#include "src/server/api_server.h"
#include "src/transport/transport.h"

namespace ava {

// Resolves a VM's intra-VM parallelism bound: `requested` when positive,
// else AVA_VM_PARALLELISM when set and well-formed, else hardware threads
// divided by the number of attached VMs (floor 1). Exposed for tests.
int ResolveVmParallelism(int requested, std::size_t vm_count);

// Per-VM resource policy, from the spec's resource-usage configuration.
struct VmPolicy {
  double weight = 1.0;          // share under backlog (weighted fair queuing)
  double calls_per_sec = 0.0;   // 0 = unlimited
  double bytes_per_sec = 0.0;   // 0 = unlimited
  // Device-time allotment (§4.3 "how much of each specified API resource
  // (e.g., device time) each VM is allotted"): the VM's calls may consume at
  // most this much modeled device time per wall second; dispatch of further
  // calls is delayed once the allotment is exhausted. 0 = unlimited.
  double device_vns_per_sec = 0.0;
  std::size_t max_message_bytes = 256u << 20;
  // Upper bound on this VM's concurrently executing calls (its distinct
  // execution lanes in flight at once). 0 = auto: AVA_VM_PARALLELISM when
  // set, else hardware threads / attached VM count (floor 1). Resolved once
  // at attach time. 1 restores the classic one-call-in-flight-per-VM model.
  int max_parallelism = 0;
};

class Router {
 public:
  // Thin view composed from the channel's obs::MetricRegistry cells
  // (router.vm<id>.*); kept for existing callers.
  struct VmStats {
    std::uint64_t calls_forwarded = 0;
    std::uint64_t calls_rejected = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t bytes_received = 0;
    std::int64_t rate_limit_wait_ns = 0;
    std::int64_t cost_vns = 0;  // device cost charged to this VM
  };

  Router();
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Attaches a VM: the host end of its transport and its API-server session.
  // Must be called before Start() or while running (hot attach).
  Status AttachVm(VmId vm_id, TransportPtr transport,
                  std::shared_ptr<ApiServerSession> session,
                  const VmPolicy& policy = VmPolicy());

  void Start();
  void Stop();

  // Drains the VM's in-flight calls and stops dispatching further ones
  // (migration suspend). Queued calls stay queued.
  Status PauseVm(VmId vm_id);
  Status ResumeVm(VmId vm_id);

  Result<VmStats> StatsFor(VmId vm_id) const;

  // The parallelism bound resolved for this VM at attach time.
  Result<int> ParallelismFor(VmId vm_id) const;

  // Detaches every dead VM (peer transport gone, work drained): joins its
  // RX thread and frees its channel. Returns how many were removed. Dead
  // channels are also replaced transparently when AttachVm() reuses the id.
  std::size_t ReapDeadVms();

  // Total sessions this router has marked dead (monotone; survives reaping).
  std::uint64_t sessions_reaped() const { return sessions_reaped_->Value(); }

  // ---- live introspection plane ----
  // Per-VM accounting ledger fed on every call completion (cumulative +
  // EWMA device-time/bytes; the future fair scheduler's input).
  obs::AccountingLedger& ledger() { return ledger_; }
  // Binds this router (latest-wins) behind the admin channel's `sessions`
  // and `account` commands. Start() does this automatically against
  // AdminChannel::Default(); tests may register a private channel.
  void RegisterAdmin(obs::AdminChannel* admin);
  // The `sessions` table: one row per attached VM with scheduler state,
  // lane/queue depths, circuit-breaker and transfer-cache residency.
  std::string SessionsText() const;

 private:
  // One verified, rate-limited message awaiting dispatch, with the hop
  // timestamp the router observed at receive time (per-call tracing).
  struct PendingCall {
    Bytes message;
    std::int64_t rx_ns = 0;
  };

  // One per-object execution lane: a FIFO of verified calls touching the
  // same object, with at most one call in flight (`busy`). Lanes exist only
  // while they hold or execute work; an idle lane is erased.
  struct Lane {
    std::deque<PendingCall> queue;
    bool busy = false;
  };

  // Per-VM accounting cells, registered as router.vm<id>.* in the default
  // MetricRegistry. StatsFor() composes them into a VmStats.
  struct VmMetrics {
    std::shared_ptr<obs::Counter> calls_forwarded;
    std::shared_ptr<obs::Counter> calls_rejected;
    std::shared_ptr<obs::Counter> messages_received;
    std::shared_ptr<obs::Counter> bytes_received;
    std::shared_ptr<obs::Counter> rate_limit_wait_ns;
    std::shared_ptr<obs::Counter> cost_vns;
  };

  struct VmChannel {
    VmId vm_id = 0;
    TransportPtr transport;
    std::shared_ptr<ApiServerSession> session;
    VmPolicy policy;
    int max_parallelism = 1;  // resolved at attach
    TokenBucket call_bucket;
    TokenBucket byte_bucket;
    VmMetrics metrics;
    // Ledger account, cached at attach so the completion path never
    // re-resolves by id (relaxed-atomic updates only).
    std::shared_ptr<obs::VmAccount> account;

    // Verified calls awaiting dispatch, partitioned by lane key.
    std::unordered_map<std::uint64_t, Lane> lanes;
    // Dispatch order across this VM's lanes. Invariant: a lane key appears
    // here exactly once iff its lane has queued work and is not busy.
    std::deque<std::uint64_t> ready_lanes;
    std::size_t queued_calls = 0;  // total across all lanes
    int in_flight = 0;             // executing now, bounded by parallelism
    bool paused = false;
    bool rx_done = false;
    // Set when the session is finished (transport closed and work drained,
    // or a reply send failed). A dead channel schedules nothing.
    bool dead = false;
    double vruntime = 0.0;
    // Device-time debt for the allotment pacer: completed calls add their
    // cost; the debt drains at policy.device_vns_per_sec. A VM with positive
    // debt is ineligible to dispatch.
    double vns_debt = 0.0;
    std::int64_t debt_decay_ns = 0;
    std::int64_t last_activity_ns = 0;  // last enqueue or completion

    std::thread rx_thread;
  };

  void RxLoop(VmChannel* channel);
  void WorkerLoop();
  // Appends `message` to its lane, maintaining the ready-lane invariant.
  // Caller holds mutex_.
  void EnqueueLocked(VmChannel* channel, std::uint64_t lane_key,
                     Bytes message, std::int64_t rx_ns);
  // Picks the WFQ-minimal channel that may dispatch now, folding dead-VM
  // detection into the scan. Null when nothing is dispatchable. Caller
  // holds mutex_.
  VmChannel* PickChannelLocked();
  // True when `channel` may dispatch (capacity, ready work, debt) and its
  // weighted vruntime is not meaningfully ahead of any *active* contender.
  // Caller holds mutex_.
  bool EligibleLocked(VmChannel* channel, std::int64_t now);
  // Pops one call from `channel`'s front ready lane and executes it,
  // dropping `lock` around the session call and reply send. Caller holds
  // `lock`; it is held again on return.
  void DispatchOne(VmChannel* channel, std::unique_lock<std::mutex>& lock);
  // Spawns workers until the pool matches current demand. Caller holds
  // mutex_; only grows, never shrinks (Stop() joins everything).
  void EnsureWorkersLocked();
  // Marks a channel dead and closes its transport. Caller holds mutex_.
  void MarkDeadLocked(VmChannel* channel);
  // Sends an error reply for a rejected synchronous call.
  void RejectCall(VmChannel* channel, const CallHeader& header,
                  StatusCode code);

  mutable std::mutex mutex_;
  // Workers sleep on sched_cv_; control-plane waiters (PauseVm's drain)
  // sleep on drain_cv_. Keeping them apart lets the hot enqueue/complete
  // paths wake a single worker without racing a drain waiter for the signal.
  std::condition_variable sched_cv_;
  std::condition_variable drain_cv_;
  std::unordered_map<VmId, std::unique_ptr<VmChannel>> channels_;
  std::vector<std::thread> workers_;
  bool running_ = false;
  bool stopping_ = false;

  // Per-hop latency distributions (ns), shared across this router's VMs.
  std::shared_ptr<obs::Histogram> queue_wait_ns_;   // RX -> dispatch
  std::shared_ptr<obs::Histogram> exec_ns_;         // dispatch -> reply built
  std::shared_ptr<obs::Histogram> rate_wait_ns_;    // token-bucket stalls
  // Lane occupancy: calls executing concurrently right now (all VMs), and
  // the per-lane queue depth observed at each enqueue.
  std::shared_ptr<obs::Gauge> lanes_active_;
  std::shared_ptr<obs::Histogram> lane_queue_depth_;
  // Failure-handling counters.
  std::shared_ptr<obs::Counter> sessions_reaped_;
  std::shared_ptr<obs::Counter> crc_rejected_;
  // Bulk bytes that moved out-of-band through the buffer arena (accounted
  // against the per-VM byte budget alongside on-wire bytes).
  std::shared_ptr<obs::Counter> arena_bytes_;
  // Bulk bytes elided by transfer-cache hits: the server already held the
  // payload, so nothing moved. Observed but never charged against the
  // per-VM byte budget — that is the point of the cache.
  std::shared_ptr<obs::Counter> cached_bytes_;
  // Per-VM accounting ledger (see ledger()).
  obs::AccountingLedger ledger_;
};

}  // namespace ava

#endif  // AVA_SRC_ROUTER_ROUTER_H_
