#include "src/router/router.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/log.h"
#include "src/obs/flight.h"
#include "src/obs/trace.h"

namespace ava {
namespace {

// Backstop on the shared executor pool: the pool is sized to the sum of the
// attached VMs' parallelism bounds, capped here so a crowd of wide VMs
// cannot spawn unbounded threads.
constexpr std::size_t kMaxWorkers = 64;

// The router currently answering admin `sessions`/`account` queries.
// Latest-wins (like every other singleton in the stack); cleared on
// destruction so a stale query gets an error, never a dangling pointer.
std::mutex g_admin_router_mutex;
Router* g_admin_router = nullptr;

}  // namespace

int ResolveVmParallelism(int requested, std::size_t vm_count) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("AVA_VM_PARALLELISM");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0 && parsed <= 1024) {
      return static_cast<int>(parsed);
    }
    AVA_LOG(ERROR) << "malformed AVA_VM_PARALLELISM '" << env
                   << "', using auto";
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  const std::size_t vms = std::max<std::size_t>(vm_count, 1);
  return std::max(1, static_cast<int>(hw / vms));
}

Router::Router() {
  auto& registry = obs::MetricRegistry::Default();
  queue_wait_ns_ = registry.NewHistogram("router.queue_wait_ns");
  exec_ns_ = registry.NewHistogram("router.exec_ns");
  rate_wait_ns_ = registry.NewHistogram("router.rate_limit_wait_ns");
  lanes_active_ = registry.NewGauge("router.lanes_active");
  lane_queue_depth_ = registry.NewHistogram("router.lane_queue_depth");
  sessions_reaped_ = registry.NewCounter("sessions.reaped");
  crc_rejected_ = registry.NewCounter("router.crc_rejected");
  arena_bytes_ = registry.NewCounter("router.arena_bytes");
  cached_bytes_ = registry.NewCounter("router.cached_bytes");
}

Router::~Router() {
  Stop();
  std::lock_guard<std::mutex> lock(g_admin_router_mutex);
  if (g_admin_router == this) {
    g_admin_router = nullptr;
  }
}

Status Router::AttachVm(VmId vm_id, TransportPtr transport,
                        std::shared_ptr<ApiServerSession> session,
                        const VmPolicy& policy) {
  // A dead channel under this id is replaced: its RX thread is joined
  // outside the lock (it only needs mutex_ transiently to finish exiting).
  std::unique_ptr<VmChannel> stale;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = channels_.find(vm_id);
    if (it != channels_.end()) {
      if (!it->second->dead) {
        return AlreadyExists("vm " + std::to_string(vm_id) +
                             " already attached");
      }
      stale = std::move(it->second);
      channels_.erase(it);
    }
  }
  if (stale != nullptr) {
    if (stale->rx_thread.joinable()) {
      stale->rx_thread.join();
    }
    stale.reset();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (channels_.count(vm_id) != 0) {
    return AlreadyExists("vm " + std::to_string(vm_id) + " already attached");
  }
  if (transport == nullptr || session == nullptr) {
    return InvalidArgument("transport and session are required");
  }
  auto channel = std::make_unique<VmChannel>();
  channel->vm_id = vm_id;
  channel->transport = std::move(transport);
  channel->session = std::move(session);
  // Capability negotiation: the session may only resolve arena descriptors
  // against the arena reachable through this VM's own transport.
  channel->session->SetArena(channel->transport->arena());
  channel->policy = policy;
  channel->max_parallelism =
      ResolveVmParallelism(policy.max_parallelism, channels_.size() + 1);
  channel->call_bucket.Configure(policy.calls_per_sec);
  channel->byte_bucket.Configure(policy.bytes_per_sec);
  const std::string prefix = "router.vm" + std::to_string(vm_id) + ".";
  auto& registry = obs::MetricRegistry::Default();
  channel->metrics.calls_forwarded =
      registry.NewCounter(prefix + "calls_forwarded");
  channel->metrics.calls_rejected =
      registry.NewCounter(prefix + "calls_rejected");
  channel->metrics.messages_received =
      registry.NewCounter(prefix + "messages_received");
  channel->metrics.bytes_received =
      registry.NewCounter(prefix + "bytes_received");
  channel->metrics.rate_limit_wait_ns =
      registry.NewCounter(prefix + "rate_limit_wait_ns");
  channel->metrics.cost_vns = registry.NewCounter(prefix + "cost_vns");
  channel->account = ledger_.AccountFor(vm_id);
  // Join the fair queue at the current minimum so the newcomer neither
  // starves others nor forfeits its share.
  double min_vruntime = 0.0;
  bool first = true;
  for (const auto& [id, ch] : channels_) {
    if (first || ch->vruntime < min_vruntime) {
      min_vruntime = ch->vruntime;
      first = false;
    }
  }
  channel->vruntime = first ? 0.0 : min_vruntime;
  channel->debt_decay_ns = MonotonicNowNs();
  VmChannel* raw = channel.get();
  channels_[vm_id] = std::move(channel);
  if (running_ && !stopping_) {
    raw->rx_thread = std::thread([this, raw] { RxLoop(raw); });
    EnsureWorkersLocked();
  }
  return OkStatus();
}

void Router::Start() {
  // Expose the introspection plane before accepting traffic: serve
  // AVA_ADMIN_SOCK if configured and point `sessions`/`account` here.
  obs::AdminChannel::EnsureDefaultServing();
  RegisterAdmin(&obs::AdminChannel::Default());
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    return;
  }
  running_ = true;
  stopping_ = false;
  for (auto& [id, channel] : channels_) {
    VmChannel* raw = channel.get();
    raw->rx_thread = std::thread([this, raw] { RxLoop(raw); });
  }
  EnsureWorkersLocked();
}

void Router::EnsureWorkersLocked() {
  if (!running_ || stopping_) {
    return;
  }
  std::size_t target = 0;
  for (const auto& [id, channel] : channels_) {
    if (!channel->dead) {
      target += static_cast<std::size_t>(channel->max_parallelism);
    }
  }
  target = std::min(target, kMaxWorkers);
  while (workers_.size() < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Router::Stop() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      return;
    }
    stopping_ = true;
    for (auto& [id, channel] : channels_) {
      channel->transport->Close();
    }
    workers.swap(workers_);
  }
  sched_cv_.notify_all();
  drain_cv_.notify_all();
  for (std::thread& worker : workers) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  for (auto& [id, channel] : channels_) {
    if (channel->rx_thread.joinable()) {
      channel->rx_thread.join();
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

Status Router::PauseVm(VmId vm_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = channels_.find(vm_id);
  if (it == channels_.end()) {
    return NotFound("unknown vm " + std::to_string(vm_id));
  }
  VmChannel* channel = it->second.get();
  channel->paused = true;
  // Drain every in-flight call.
  drain_cv_.wait(lock, [&] { return channel->in_flight == 0 || stopping_; });
  return OkStatus();
}

Status Router::ResumeVm(VmId vm_id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = channels_.find(vm_id);
    if (it == channels_.end()) {
      return NotFound("unknown vm " + std::to_string(vm_id));
    }
    it->second->paused = false;
  }
  sched_cv_.notify_all();
  return OkStatus();
}

Result<Router::VmStats> Router::StatsFor(VmId vm_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = channels_.find(vm_id);
  if (it == channels_.end()) {
    return NotFound("unknown vm " + std::to_string(vm_id));
  }
  const VmMetrics& m = it->second->metrics;
  VmStats stats;
  stats.calls_forwarded = m.calls_forwarded->Value();
  stats.calls_rejected = m.calls_rejected->Value();
  stats.messages_received = m.messages_received->Value();
  stats.bytes_received = m.bytes_received->Value();
  stats.rate_limit_wait_ns =
      static_cast<std::int64_t>(m.rate_limit_wait_ns->Value());
  stats.cost_vns = static_cast<std::int64_t>(m.cost_vns->Value());
  return stats;
}

void Router::RegisterAdmin(obs::AdminChannel* admin) {
  {
    std::lock_guard<std::mutex> lock(g_admin_router_mutex);
    g_admin_router = this;
  }
  // Handlers capture nothing: they resolve the live router through the
  // guarded global, so a query after this router dies gets an error line,
  // never a dangling pointer.
  admin->RegisterCommand("sessions", [](const std::string&) -> std::string {
    std::lock_guard<std::mutex> lock(g_admin_router_mutex);
    if (g_admin_router == nullptr) {
      return "ERR no live router";
    }
    return g_admin_router->SessionsText();
  });
  admin->RegisterCommand("account", [](const std::string&) -> std::string {
    std::lock_guard<std::mutex> lock(g_admin_router_mutex);
    if (g_admin_router == nullptr) {
      return "ERR no live router";
    }
    return g_admin_router->ledger().Text();
  });
}

std::string Router::SessionsText() const {
  // Breaker state lives guest-side; it reaches the router only through the
  // guest.vm<id>.breaker_open registry gauge, so snapshot the registry
  // first (its mutex is independent of ours — no ordering hazard).
  const obs::MetricsSnapshot metrics =
      obs::MetricRegistry::Default().Snapshot();
  std::ostringstream out;
  out << "vm state lanes ready queued in_flight parallelism forwarded "
         "rejected cost_vns breaker_open xfer_entries xfer_bytes "
         "xfer_budget\n";
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const VmChannel*> rows;
  rows.reserve(channels_.size());
  for (const auto& [id, channel] : channels_) {
    rows.push_back(channel.get());
  }
  std::sort(rows.begin(), rows.end(),
            [](const VmChannel* a, const VmChannel* b) {
              return a->vm_id < b->vm_id;
            });
  for (const VmChannel* channel : rows) {
    const char* state =
        channel->dead ? "dead" : (channel->paused ? "paused" : "running");
    std::int64_t breaker_open = 0;
    if (const auto* cell = metrics.Find(
            "guest.vm" + std::to_string(channel->vm_id) + ".breaker_open");
        cell != nullptr && cell->has_gauge) {
      breaker_open = cell->gauge_sum;
    }
    const TransferCache& cache = channel->session->context().xfer_cache();
    out << channel->vm_id << " " << state << " " << channel->lanes.size()
        << " " << channel->ready_lanes.size() << " "
        << channel->queued_calls << " " << channel->in_flight << " "
        << channel->max_parallelism << " "
        << channel->metrics.calls_forwarded->Value() << " "
        << channel->metrics.calls_rejected->Value() << " "
        << channel->metrics.cost_vns->Value() << " " << breaker_open << " "
        << cache.entries() << " " << cache.size_bytes() << " "
        << cache.budget_bytes() << "\n";
  }
  return out.str();
}

Result<int> Router::ParallelismFor(VmId vm_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = channels_.find(vm_id);
  if (it == channels_.end()) {
    return NotFound("unknown vm " + std::to_string(vm_id));
  }
  return it->second->max_parallelism;
}

void Router::MarkDeadLocked(VmChannel* channel) {
  if (channel->dead) {
    return;
  }
  channel->dead = true;
  sessions_reaped_->Increment();
  obs::FlightRecorder::Default().RecordEvent(
      obs::FlightKind::kVmDead, static_cast<std::uint32_t>(channel->vm_id),
      0, 0, 0, 0);
  channel->transport->Close();  // unblocks the RX thread if still alive
  AVA_LOG(INFO) << "vm " << channel->vm_id << ": session reaped";
}

std::size_t Router::ReapDeadVms() {
  std::vector<std::unique_ptr<VmChannel>> dead;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = channels_.begin(); it != channels_.end();) {
      if (it->second->dead) {
        dead.push_back(std::move(it->second));
        it = channels_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: the exiting threads may still touch mutex_.
  for (auto& channel : dead) {
    if (channel->rx_thread.joinable()) {
      channel->rx_thread.join();
    }
  }
  return dead.size();
}

void Router::RejectCall(VmChannel* channel, const CallHeader& header,
                        StatusCode code) {
  channel->metrics.calls_rejected->Increment();
  if (channel->account != nullptr) {
    channel->account->RecordCall(0, 0, 0, static_cast<std::uint8_t>(code));
  }
  obs::FlightRecorder::Default().RecordEvent(
      obs::FlightKind::kReject, static_cast<std::uint32_t>(channel->vm_id),
      header.trace_id, header.call_id,
      static_cast<std::uint64_t>(header.api_id) << 32 | header.func_id,
      static_cast<std::uint16_t>(code));
  if (header.is_async()) {
    return;  // nothing to reply to
  }
  ReplyHeader reply;
  reply.call_id = header.call_id;
  reply.vm_id = header.vm_id;
  reply.status_code = static_cast<std::int32_t>(code);
  ReplyBuilder builder(reply);
  Bytes frame = std::move(builder).Finish();
  SealFrame(&frame);
  (void)channel->transport->Send(frame);
}

void Router::EnqueueLocked(VmChannel* channel, std::uint64_t lane_key,
                           Bytes message, std::int64_t rx_ns) {
  Lane& lane = channel->lanes[lane_key];
  lane.queue.push_back(PendingCall{std::move(message), rx_ns});
  ++channel->queued_calls;
  if (!lane.busy && lane.queue.size() == 1) {
    channel->ready_lanes.push_back(lane_key);
  }
  if (obs::SamplingEnabled()) {
    lane_queue_depth_->Record(static_cast<std::int64_t>(lane.queue.size()));
  }
}

void Router::RxLoop(VmChannel* channel) {
  // max_parallelism is written before this thread starts, constant after.
  const bool lanes_on = channel->max_parallelism > 1;
  while (true) {
    auto message = channel->transport->Recv();
    if (!message.ok()) {
      break;  // transport closed
    }
    const bool sampling = obs::SamplingEnabled();
    const std::int64_t rx_ns = sampling ? MonotonicNowNs() : 0;
    // ---- verification ----
    channel->metrics.messages_received->Increment();
    channel->metrics.bytes_received->Increment(message->size());
    // Checksum first: nothing in a corrupt frame (not even the call id) can
    // be trusted, so there is no one to send an error reply to — reject and
    // let the guest's deadline/retry machinery handle the loss per-call.
    if (Status crc = CheckAndStripFrame(&*message); !crc.ok()) {
      crc_rejected_->Increment();
      channel->metrics.calls_rejected->Increment();
      AVA_LOG_EVERY_N(WARNING, 64)
          << "vm " << channel->vm_id << ": corrupt frame rejected";
      continue;
    }
    if (message->size() > channel->policy.max_message_bytes) {
      AVA_LOG_EVERY_N(WARNING, 64) << "vm " << channel->vm_id
                                   << ": oversized message rejected";
      // The frame verified, so its header is trustworthy enough to answer:
      // a sync caller gets a classified error instead of a hang.
      if (auto oversized = DecodeCall(*message); oversized.ok()) {
        RejectCall(channel, oversized->header, StatusCode::kInvalidArgument);
      }
      continue;
    }
    auto kind = PeekKind(*message);
    if (!kind.ok()) {
      AVA_LOG_EVERY_N(WARNING, 64)
          << "vm " << channel->vm_id << ": unparseable message";
      continue;
    }
    double call_count = 1.0;
    std::uint64_t bulk_bytes = 0;
    std::uint64_t cached_bytes = 0;
    // The dispatch units this frame expands to: (message, lane key). A
    // batch splits into per-call units when the VM runs lanes concurrently
    // so each call lands on its object's lane; at parallelism 1 everything
    // shares lane 0 and the batch stays whole — identical behavior to the
    // classic serial executor.
    std::vector<std::pair<Bytes, std::uint64_t>> units;
    if (*kind == MsgKind::kCall) {
      if (auto bulk = PeekCallBulkBytes(*message); bulk.ok()) {
        bulk_bytes = *bulk;
      }
      if (auto cached = PeekCallCachedBytes(*message); cached.ok()) {
        cached_bytes = *cached;
      }
      auto decoded = DecodeCall(*message);
      if (!decoded.ok()) {
        AVA_LOG_EVERY_N(WARNING, 64)
            << "vm " << channel->vm_id << ": malformed call";
        continue;
      }
      if (decoded->header.vm_id != channel->vm_id) {
        // A guest claiming another VM's identity: the core isolation check.
        AVA_LOG_EVERY_N(WARNING, 64)
            << "vm " << channel->vm_id << ": spoofed vm id "
            << decoded->header.vm_id;
        RejectCall(channel, decoded->header, StatusCode::kPermissionDenied);
        continue;
      }
      const std::uint64_t lane_key = lanes_on ? decoded->header.lane_key : 0;
      units.emplace_back(std::move(*message), lane_key);
    } else if (*kind == MsgKind::kBatch) {
      auto calls = DecodeBatch(*message);
      if (!calls.ok()) {
        continue;
      }
      call_count = static_cast<double>(calls->size());
      bool ok = true;
      std::vector<std::uint64_t> lane_keys;
      lane_keys.reserve(calls->size());
      for (const Bytes& call : *calls) {
        auto decoded = DecodeCall(call);
        if (!decoded.ok() || decoded->header.vm_id != channel->vm_id ||
            !decoded->header.is_async()) {
          ok = false;
          break;
        }
        lane_keys.push_back(decoded->header.lane_key);
      }
      if (!ok) {
        AVA_LOG_EVERY_N(WARNING, 64)
            << "vm " << channel->vm_id << ": bad batch dropped";
        continue;
      }
      if (lanes_on) {
        for (std::size_t i = 0; i < calls->size(); ++i) {
          units.emplace_back(std::move((*calls)[i]), lane_keys[i]);
        }
      } else {
        units.emplace_back(std::move(*message), 0);
      }
    } else {
      continue;  // replies never flow guest -> router
    }
    // ---- rate limiting (blocks this VM's stream only) ----
    // Arena pass-through bytes never cross the command ring, but they are
    // still data the VM moved: charge them against the same byte budget so
    // the out-of-band path cannot launder bandwidth past policy.
    if (bulk_bytes > 0) {
      arena_bytes_->Increment(bulk_bytes);
    }
    // Transfer-cache hits are the opposite case: the named bytes never move
    // at all — the server already holds them — so they are counted for
    // observability but NOT charged against the byte budget. Policed guests
    // keep their full bandwidth allotment for bytes that actually travel.
    if (cached_bytes > 0) {
      cached_bytes_->Increment(cached_bytes);
    }
    std::int64_t waited = channel->call_bucket.Acquire(call_count);
    waited += channel->byte_bucket.Acquire(
        static_cast<double>(message->size()) +
        static_cast<double>(bulk_bytes));
    if (sampling && waited > 0) {
      rate_wait_ns_->Record(waited);
    }
    // ---- enqueue for the workers ----
    {
      std::lock_guard<std::mutex> lock(mutex_);
      channel->metrics.rate_limit_wait_ns->Increment(
          static_cast<std::uint64_t>(waited));
      channel->last_activity_ns = MonotonicNowNs();
      for (auto& [unit, lane_key] : units) {
        EnqueueLocked(channel, lane_key, std::move(unit), rx_ns);
      }
    }
    // One new dispatchable unit needs one worker; wake the whole pool only
    // when a batch split fanned out across lanes.
    if (units.size() == 1) {
      sched_cv_.notify_one();
    } else {
      sched_cv_.notify_all();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    channel->rx_done = true;
  }
  sched_cv_.notify_all();
  drain_cv_.notify_all();
}

// Weighted-fair arbitration is evaluated by the shared worker pool directly
// (no separate scheduler hop). A VM may dispatch its next call when its
// weighted vruntime is not meaningfully ahead of any *active* contender —
// active meaning it has work queued, in flight, or finished work recently.
// The recency clause makes weights bind even for closed-loop guests whose
// router queue is momentarily empty while they wait on device completions.
namespace {
constexpr double kWfqWindowVns = 250000.0;      // slack before a VM must wait
constexpr std::int64_t kActiveWindowNs = 50000000;  // 50 ms recency
}  // namespace

bool Router::EligibleLocked(VmChannel* channel, std::int64_t now) {
  if (channel->paused || channel->dead || channel->ready_lanes.empty() ||
      channel->in_flight >= channel->max_parallelism) {
    return false;
  }
  // Device-time allotment: drain the debt at the configured rate and hold
  // the VM while it is still over budget.
  if (channel->policy.device_vns_per_sec > 0.0) {
    const double elapsed_s =
        static_cast<double>(now - channel->debt_decay_ns) * 1e-9;
    channel->debt_decay_ns = now;
    channel->vns_debt = std::max(
        0.0, channel->vns_debt - elapsed_s * channel->policy.device_vns_per_sec);
    if (channel->vns_debt > 0.0) {
      return false;
    }
  }
  const double my_key =
      channel->vruntime / std::max(channel->policy.weight, 1e-9);
  for (auto& [id, other] : channels_) {
    if (other.get() == channel || other->paused || other->dead) {
      continue;
    }
    const bool active = other->in_flight > 0 || other->queued_calls > 0 ||
                        now - other->last_activity_ns < kActiveWindowNs;
    if (!active) {
      continue;
    }
    // A contender currently held by its own device-time allotment must not
    // stall us: its stale (low) vruntime does not represent demand.
    if (other->policy.device_vns_per_sec > 0.0) {
      const double other_debt =
          other->vns_debt -
          static_cast<double>(now - other->debt_decay_ns) * 1e-9 *
              other->policy.device_vns_per_sec;
      if (other_debt > 0.0) {
        continue;
      }
    }
    const double key =
        other->vruntime / std::max(other->policy.weight, 1e-9);
    if (my_key > key + kWfqWindowVns) {
      return false;
    }
  }
  return true;
}

Router::VmChannel* Router::PickChannelLocked() {
  const std::int64_t now = MonotonicNowNs();
  VmChannel* best = nullptr;
  double best_key = 0.0;
  for (auto& [id, entry] : channels_) {
    VmChannel* channel = entry.get();
    // Graceful degradation: once the guest's transport is gone and every
    // queued call has drained, the session is dead — mark it reaped so
    // ReapDeadVms() (or a reattach) can collect it.
    if (!channel->dead && channel->rx_done && channel->queued_calls == 0 &&
        channel->in_flight == 0) {
      MarkDeadLocked(channel);
      sched_cv_.notify_all();
      continue;
    }
    if (!EligibleLocked(channel, now)) {
      continue;
    }
    const double key =
        channel->vruntime / std::max(channel->policy.weight, 1e-9);
    if (best == nullptr || key < best_key) {
      best = channel;
      best_key = key;
    }
  }
  return best;
}

void Router::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    VmChannel* pick = PickChannelLocked();
    if (pick == nullptr) {
      // wait_for rather than wait: debt-paced eligibility changes with wall
      // time, not only with state transitions.
      sched_cv_.wait_for(lock, std::chrono::microseconds(200));
      continue;
    }
    DispatchOne(pick, lock);
  }
}

void Router::DispatchOne(VmChannel* channel,
                         std::unique_lock<std::mutex>& lock) {
  const std::uint64_t lane_key = channel->ready_lanes.front();
  channel->ready_lanes.pop_front();
  Lane& lane = channel->lanes.find(lane_key)->second;
  lane.busy = true;
  PendingCall pending = std::move(lane.queue.front());
  lane.queue.pop_front();
  --channel->queued_calls;
  ++channel->in_flight;
  channel->metrics.calls_forwarded->Increment();
  lanes_active_->Add(1);
  lock.unlock();

  Bytes message = std::move(pending.message);
  const bool sampling = obs::SamplingEnabled();
  const std::int64_t dispatch_ns = sampling ? MonotonicNowNs() : 0;
  if (sampling) {
    queue_wait_ns_->Record(dispatch_ns - pending.rx_ns);
  }

  std::int64_t cost = 0;
  std::uint8_t ledger_status = 0;
  auto reply = channel->session->Execute(message, &cost);
  if (reply.ok() && reply->has_value()) {
    // The reply carries the server-accounted cost; prefer it.
    auto peeked = PeekReplyCost(**reply);
    if (peeked.ok()) {
      cost = *peeked;
    }
    if (auto status = PeekReplyStatus(**reply); status.ok()) {
      ledger_status = static_cast<std::uint8_t>(
          std::clamp<std::int32_t>(*status, 0, 255));
    }
    // Stamp the router hops into the reply so the guest can close the
    // span, and emit the router's own view of the queue wait.
    if (sampling) {
      auto trace_id = PeekReplyTraceId(**reply);
      if (trace_id.ok() && *trace_id != 0) {
        PatchReplyRouterTrace(&**reply, pending.rx_ns, dispatch_ns);
        obs::Tracer::Default().RecordSpan(
            obs::TraceLane::kRouter, "router.queue", channel->vm_id,
            *trace_id, pending.rx_ns, dispatch_ns,
            {{"queue_wait_ns", dispatch_ns - pending.rx_ns}});
      }
    }
  } else if (!reply.ok()) {
    ledger_status = static_cast<std::uint8_t>(reply.status().code());
    AVA_LOG(WARNING) << "vm " << channel->vm_id
                     << ": execute failed: " << reply.status();
    // A sync caller is blocked on this call: answer with a classified
    // error frame rather than leaving it to its deadline.
    if (auto call = DecodeCall(message);
        call.ok() && !call->header.is_async()) {
      ReplyHeader error;
      error.call_id = call->header.call_id;
      error.vm_id = call->header.vm_id;
      error.status_code = static_cast<std::int32_t>(reply.status().code());
      ReplyBuilder builder(error);
      reply = std::optional<Bytes>(std::move(builder).Finish());
    }
  }
  if (sampling) {
    exec_ns_->Record(MonotonicNowNs() - dispatch_ns);
  }

  // Ledger: every completion (success or failure) lands in the VM's
  // account — relaxed atomics into a per-thread shard, no locks, cheap
  // enough for the null-call path. Wire bytes = frame + arena pass-through;
  // cache-elided bytes are tracked separately (never charged).
  {
    std::uint64_t wire_bytes = message.size();
    if (auto bulk = PeekCallBulkBytes(message); bulk.ok()) {
      wire_bytes += *bulk;
    }
    std::uint64_t cached = 0;
    if (auto c = PeekCallCachedBytes(message); c.ok()) {
      cached = *c;
    }
    channel->account->RecordCall(cost, wire_bytes, cached, ledger_status);
  }

  // Account BEFORE replying: a guest that receives the reply must observe
  // the call's cost in the router's books.
  lock.lock();
  channel->vruntime += static_cast<double>(std::max<std::int64_t>(cost, 0));
  channel->vns_debt += static_cast<double>(std::max<std::int64_t>(cost, 0));
  channel->metrics.cost_vns->Increment(
      static_cast<std::uint64_t>(std::max<std::int64_t>(cost, 0)));
  channel->last_activity_ns = MonotonicNowNs();
  // Lane bookkeeping: re-find the lane — the map may have rehashed while
  // the lock was dropped. The entry itself cannot have been erased: a busy
  // lane is never in ready_lanes and only this worker finishes it.
  auto lane_it = channel->lanes.find(lane_key);
  lane_it->second.busy = false;
  if (lane_it->second.queue.empty()) {
    channel->lanes.erase(lane_it);
  } else {
    channel->ready_lanes.push_back(lane_key);
  }
  --channel->in_flight;
  lanes_active_->Add(-1);
  // This worker loops back to PickChannelLocked itself, so at most one
  // *additional* worker can use the freed capacity — waking the whole pool
  // on every completion just burns context switches on small calls.
  if (!channel->ready_lanes.empty() &&
      channel->in_flight < channel->max_parallelism) {
    sched_cv_.notify_one();
  }
  if (channel->in_flight == 0) {
    drain_cv_.notify_all();
  }
  if (reply.ok() && reply->has_value()) {
    lock.unlock();
    SealFrame(&**reply);
    const Status sent = channel->transport->Send(**reply);
    lock.lock();
    if (!sent.ok()) {
      // The guest can no longer hear us; finish draining and reap.
      AVA_LOG_EVERY_N(WARNING, 64)
          << "vm " << channel->vm_id << ": reply send failed: " << sent;
    }
  }
}

}  // namespace ava
